file(REMOVE_RECURSE
  "CMakeFiles/tfo_core.dir/bridge_conn.cpp.o"
  "CMakeFiles/tfo_core.dir/bridge_conn.cpp.o.d"
  "CMakeFiles/tfo_core.dir/fault_detector.cpp.o"
  "CMakeFiles/tfo_core.dir/fault_detector.cpp.o.d"
  "CMakeFiles/tfo_core.dir/output_queue.cpp.o"
  "CMakeFiles/tfo_core.dir/output_queue.cpp.o.d"
  "CMakeFiles/tfo_core.dir/primary_bridge.cpp.o"
  "CMakeFiles/tfo_core.dir/primary_bridge.cpp.o.d"
  "CMakeFiles/tfo_core.dir/replica_chain.cpp.o"
  "CMakeFiles/tfo_core.dir/replica_chain.cpp.o.d"
  "CMakeFiles/tfo_core.dir/replica_group.cpp.o"
  "CMakeFiles/tfo_core.dir/replica_group.cpp.o.d"
  "CMakeFiles/tfo_core.dir/secondary_bridge.cpp.o"
  "CMakeFiles/tfo_core.dir/secondary_bridge.cpp.o.d"
  "libtfo_core.a"
  "libtfo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
