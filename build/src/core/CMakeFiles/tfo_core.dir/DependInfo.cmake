
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bridge_conn.cpp" "src/core/CMakeFiles/tfo_core.dir/bridge_conn.cpp.o" "gcc" "src/core/CMakeFiles/tfo_core.dir/bridge_conn.cpp.o.d"
  "/root/repo/src/core/fault_detector.cpp" "src/core/CMakeFiles/tfo_core.dir/fault_detector.cpp.o" "gcc" "src/core/CMakeFiles/tfo_core.dir/fault_detector.cpp.o.d"
  "/root/repo/src/core/output_queue.cpp" "src/core/CMakeFiles/tfo_core.dir/output_queue.cpp.o" "gcc" "src/core/CMakeFiles/tfo_core.dir/output_queue.cpp.o.d"
  "/root/repo/src/core/primary_bridge.cpp" "src/core/CMakeFiles/tfo_core.dir/primary_bridge.cpp.o" "gcc" "src/core/CMakeFiles/tfo_core.dir/primary_bridge.cpp.o.d"
  "/root/repo/src/core/replica_chain.cpp" "src/core/CMakeFiles/tfo_core.dir/replica_chain.cpp.o" "gcc" "src/core/CMakeFiles/tfo_core.dir/replica_chain.cpp.o.d"
  "/root/repo/src/core/replica_group.cpp" "src/core/CMakeFiles/tfo_core.dir/replica_group.cpp.o" "gcc" "src/core/CMakeFiles/tfo_core.dir/replica_group.cpp.o.d"
  "/root/repo/src/core/secondary_bridge.cpp" "src/core/CMakeFiles/tfo_core.dir/secondary_bridge.cpp.o" "gcc" "src/core/CMakeFiles/tfo_core.dir/secondary_bridge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tfo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tfo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tfo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ip/CMakeFiles/tfo_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/tfo_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/tfo_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
