# Empty dependencies file for tfo_core.
# This may be replaced when dependencies are built.
