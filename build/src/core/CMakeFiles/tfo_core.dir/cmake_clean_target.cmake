file(REMOVE_RECURSE
  "libtfo_core.a"
)
