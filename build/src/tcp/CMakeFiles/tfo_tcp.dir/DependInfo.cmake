
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/connection.cpp" "src/tcp/CMakeFiles/tfo_tcp.dir/connection.cpp.o" "gcc" "src/tcp/CMakeFiles/tfo_tcp.dir/connection.cpp.o.d"
  "/root/repo/src/tcp/segment.cpp" "src/tcp/CMakeFiles/tfo_tcp.dir/segment.cpp.o" "gcc" "src/tcp/CMakeFiles/tfo_tcp.dir/segment.cpp.o.d"
  "/root/repo/src/tcp/tcp_layer.cpp" "src/tcp/CMakeFiles/tfo_tcp.dir/tcp_layer.cpp.o" "gcc" "src/tcp/CMakeFiles/tfo_tcp.dir/tcp_layer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tfo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tfo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tfo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ip/CMakeFiles/tfo_ip.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
