# Empty dependencies file for tfo_tcp.
# This may be replaced when dependencies are built.
