file(REMOVE_RECURSE
  "libtfo_tcp.a"
)
