file(REMOVE_RECURSE
  "CMakeFiles/tfo_tcp.dir/connection.cpp.o"
  "CMakeFiles/tfo_tcp.dir/connection.cpp.o.d"
  "CMakeFiles/tfo_tcp.dir/segment.cpp.o"
  "CMakeFiles/tfo_tcp.dir/segment.cpp.o.d"
  "CMakeFiles/tfo_tcp.dir/tcp_layer.cpp.o"
  "CMakeFiles/tfo_tcp.dir/tcp_layer.cpp.o.d"
  "libtfo_tcp.a"
  "libtfo_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfo_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
