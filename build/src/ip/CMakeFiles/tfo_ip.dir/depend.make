# Empty dependencies file for tfo_ip.
# This may be replaced when dependencies are built.
