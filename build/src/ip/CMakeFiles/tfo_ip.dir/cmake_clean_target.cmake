file(REMOVE_RECURSE
  "libtfo_ip.a"
)
