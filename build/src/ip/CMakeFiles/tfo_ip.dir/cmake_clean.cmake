file(REMOVE_RECURSE
  "CMakeFiles/tfo_ip.dir/arp.cpp.o"
  "CMakeFiles/tfo_ip.dir/arp.cpp.o.d"
  "CMakeFiles/tfo_ip.dir/datagram.cpp.o"
  "CMakeFiles/tfo_ip.dir/datagram.cpp.o.d"
  "CMakeFiles/tfo_ip.dir/ip_layer.cpp.o"
  "CMakeFiles/tfo_ip.dir/ip_layer.cpp.o.d"
  "CMakeFiles/tfo_ip.dir/router.cpp.o"
  "CMakeFiles/tfo_ip.dir/router.cpp.o.d"
  "libtfo_ip.a"
  "libtfo_ip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfo_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
