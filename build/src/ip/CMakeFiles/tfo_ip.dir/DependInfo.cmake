
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ip/arp.cpp" "src/ip/CMakeFiles/tfo_ip.dir/arp.cpp.o" "gcc" "src/ip/CMakeFiles/tfo_ip.dir/arp.cpp.o.d"
  "/root/repo/src/ip/datagram.cpp" "src/ip/CMakeFiles/tfo_ip.dir/datagram.cpp.o" "gcc" "src/ip/CMakeFiles/tfo_ip.dir/datagram.cpp.o.d"
  "/root/repo/src/ip/ip_layer.cpp" "src/ip/CMakeFiles/tfo_ip.dir/ip_layer.cpp.o" "gcc" "src/ip/CMakeFiles/tfo_ip.dir/ip_layer.cpp.o.d"
  "/root/repo/src/ip/router.cpp" "src/ip/CMakeFiles/tfo_ip.dir/router.cpp.o" "gcc" "src/ip/CMakeFiles/tfo_ip.dir/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tfo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tfo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tfo_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
