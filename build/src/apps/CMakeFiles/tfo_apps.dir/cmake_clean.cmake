file(REMOVE_RECURSE
  "CMakeFiles/tfo_apps.dir/echo.cpp.o"
  "CMakeFiles/tfo_apps.dir/echo.cpp.o.d"
  "CMakeFiles/tfo_apps.dir/ftp.cpp.o"
  "CMakeFiles/tfo_apps.dir/ftp.cpp.o.d"
  "CMakeFiles/tfo_apps.dir/host.cpp.o"
  "CMakeFiles/tfo_apps.dir/host.cpp.o.d"
  "CMakeFiles/tfo_apps.dir/http.cpp.o"
  "CMakeFiles/tfo_apps.dir/http.cpp.o.d"
  "CMakeFiles/tfo_apps.dir/store.cpp.o"
  "CMakeFiles/tfo_apps.dir/store.cpp.o.d"
  "CMakeFiles/tfo_apps.dir/topology.cpp.o"
  "CMakeFiles/tfo_apps.dir/topology.cpp.o.d"
  "CMakeFiles/tfo_apps.dir/trace.cpp.o"
  "CMakeFiles/tfo_apps.dir/trace.cpp.o.d"
  "libtfo_apps.a"
  "libtfo_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfo_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
