# Empty dependencies file for tfo_apps.
# This may be replaced when dependencies are built.
