
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/echo.cpp" "src/apps/CMakeFiles/tfo_apps.dir/echo.cpp.o" "gcc" "src/apps/CMakeFiles/tfo_apps.dir/echo.cpp.o.d"
  "/root/repo/src/apps/ftp.cpp" "src/apps/CMakeFiles/tfo_apps.dir/ftp.cpp.o" "gcc" "src/apps/CMakeFiles/tfo_apps.dir/ftp.cpp.o.d"
  "/root/repo/src/apps/host.cpp" "src/apps/CMakeFiles/tfo_apps.dir/host.cpp.o" "gcc" "src/apps/CMakeFiles/tfo_apps.dir/host.cpp.o.d"
  "/root/repo/src/apps/http.cpp" "src/apps/CMakeFiles/tfo_apps.dir/http.cpp.o" "gcc" "src/apps/CMakeFiles/tfo_apps.dir/http.cpp.o.d"
  "/root/repo/src/apps/store.cpp" "src/apps/CMakeFiles/tfo_apps.dir/store.cpp.o" "gcc" "src/apps/CMakeFiles/tfo_apps.dir/store.cpp.o.d"
  "/root/repo/src/apps/topology.cpp" "src/apps/CMakeFiles/tfo_apps.dir/topology.cpp.o" "gcc" "src/apps/CMakeFiles/tfo_apps.dir/topology.cpp.o.d"
  "/root/repo/src/apps/trace.cpp" "src/apps/CMakeFiles/tfo_apps.dir/trace.cpp.o" "gcc" "src/apps/CMakeFiles/tfo_apps.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tfo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tfo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tfo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ip/CMakeFiles/tfo_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/tfo_tcp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
