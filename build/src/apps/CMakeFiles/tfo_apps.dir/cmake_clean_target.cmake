file(REMOVE_RECURSE
  "libtfo_apps.a"
)
