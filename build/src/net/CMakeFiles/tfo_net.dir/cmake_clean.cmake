file(REMOVE_RECURSE
  "CMakeFiles/tfo_net.dir/medium.cpp.o"
  "CMakeFiles/tfo_net.dir/medium.cpp.o.d"
  "CMakeFiles/tfo_net.dir/nic.cpp.o"
  "CMakeFiles/tfo_net.dir/nic.cpp.o.d"
  "libtfo_net.a"
  "libtfo_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfo_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
