# Empty dependencies file for tfo_net.
# This may be replaced when dependencies are built.
