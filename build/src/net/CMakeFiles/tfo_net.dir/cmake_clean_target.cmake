file(REMOVE_RECURSE
  "libtfo_net.a"
)
