file(REMOVE_RECURSE
  "libtfo_common.a"
)
