# Empty dependencies file for tfo_common.
# This may be replaced when dependencies are built.
