file(REMOVE_RECURSE
  "CMakeFiles/tfo_common.dir/checksum.cpp.o"
  "CMakeFiles/tfo_common.dir/checksum.cpp.o.d"
  "CMakeFiles/tfo_common.dir/logging.cpp.o"
  "CMakeFiles/tfo_common.dir/logging.cpp.o.d"
  "CMakeFiles/tfo_common.dir/stats.cpp.o"
  "CMakeFiles/tfo_common.dir/stats.cpp.o.d"
  "libtfo_common.a"
  "libtfo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
