file(REMOVE_RECURSE
  "libtfo_sim.a"
)
