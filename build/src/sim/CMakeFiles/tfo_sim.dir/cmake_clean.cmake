file(REMOVE_RECURSE
  "CMakeFiles/tfo_sim.dir/simulator.cpp.o"
  "CMakeFiles/tfo_sim.dir/simulator.cpp.o.d"
  "libtfo_sim.a"
  "libtfo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
