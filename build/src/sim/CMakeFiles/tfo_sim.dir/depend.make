# Empty dependencies file for tfo_sim.
# This may be replaced when dependencies are built.
