file(REMOVE_RECURSE
  "CMakeFiles/failover_apps_test.dir/failover_apps_test.cpp.o"
  "CMakeFiles/failover_apps_test.dir/failover_apps_test.cpp.o.d"
  "failover_apps_test"
  "failover_apps_test.pdb"
  "failover_apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failover_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
