# Empty compiler generated dependencies file for failover_apps_test.
# This may be replaced when dependencies are built.
