# Empty dependencies file for wan_ftp_failover_test.
# This may be replaced when dependencies are built.
