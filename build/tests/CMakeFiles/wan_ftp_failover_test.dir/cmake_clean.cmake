file(REMOVE_RECURSE
  "CMakeFiles/wan_ftp_failover_test.dir/wan_ftp_failover_test.cpp.o"
  "CMakeFiles/wan_ftp_failover_test.dir/wan_ftp_failover_test.cpp.o.d"
  "wan_ftp_failover_test"
  "wan_ftp_failover_test.pdb"
  "wan_ftp_failover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_ftp_failover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
