# Empty dependencies file for chain_apps_test.
# This may be replaced when dependencies are built.
