file(REMOVE_RECURSE
  "CMakeFiles/chain_apps_test.dir/chain_apps_test.cpp.o"
  "CMakeFiles/chain_apps_test.dir/chain_apps_test.cpp.o.d"
  "chain_apps_test"
  "chain_apps_test.pdb"
  "chain_apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
