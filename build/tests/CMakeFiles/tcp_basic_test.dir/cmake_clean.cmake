file(REMOVE_RECURSE
  "CMakeFiles/tcp_basic_test.dir/tcp_basic_test.cpp.o"
  "CMakeFiles/tcp_basic_test.dir/tcp_basic_test.cpp.o.d"
  "tcp_basic_test"
  "tcp_basic_test.pdb"
  "tcp_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
