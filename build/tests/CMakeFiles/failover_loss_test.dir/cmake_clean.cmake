file(REMOVE_RECURSE
  "CMakeFiles/failover_loss_test.dir/failover_loss_test.cpp.o"
  "CMakeFiles/failover_loss_test.dir/failover_loss_test.cpp.o.d"
  "failover_loss_test"
  "failover_loss_test.pdb"
  "failover_loss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failover_loss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
