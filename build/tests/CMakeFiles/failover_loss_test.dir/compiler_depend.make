# Empty compiler generated dependencies file for failover_loss_test.
# This may be replaced when dependencies are built.
