# Empty dependencies file for failover_basic_test.
# This may be replaced when dependencies are built.
