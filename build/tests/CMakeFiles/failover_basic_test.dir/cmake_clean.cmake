file(REMOVE_RECURSE
  "CMakeFiles/failover_basic_test.dir/failover_basic_test.cpp.o"
  "CMakeFiles/failover_basic_test.dir/failover_basic_test.cpp.o.d"
  "failover_basic_test"
  "failover_basic_test.pdb"
  "failover_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failover_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
