file(REMOVE_RECURSE
  "CMakeFiles/tcp_retransmit_test.dir/tcp_retransmit_test.cpp.o"
  "CMakeFiles/tcp_retransmit_test.dir/tcp_retransmit_test.cpp.o.d"
  "tcp_retransmit_test"
  "tcp_retransmit_test.pdb"
  "tcp_retransmit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_retransmit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
