# Empty dependencies file for tcp_retransmit_test.
# This may be replaced when dependencies are built.
