file(REMOVE_RECURSE
  "CMakeFiles/fault_detector_test.dir/fault_detector_test.cpp.o"
  "CMakeFiles/fault_detector_test.dir/fault_detector_test.cpp.o.d"
  "fault_detector_test"
  "fault_detector_test.pdb"
  "fault_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
