# Empty dependencies file for fault_detector_test.
# This may be replaced when dependencies are built.
