file(REMOVE_RECURSE
  "CMakeFiles/output_queue_test.dir/output_queue_test.cpp.o"
  "CMakeFiles/output_queue_test.dir/output_queue_test.cpp.o.d"
  "output_queue_test"
  "output_queue_test.pdb"
  "output_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/output_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
