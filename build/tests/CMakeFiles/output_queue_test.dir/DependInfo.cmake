
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/output_queue_test.cpp" "tests/CMakeFiles/output_queue_test.dir/output_queue_test.cpp.o" "gcc" "tests/CMakeFiles/output_queue_test.dir/output_queue_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/tfo_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tfo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/tfo_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/ip/CMakeFiles/tfo_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tfo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tfo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tfo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
