# Empty compiler generated dependencies file for output_queue_test.
# This may be replaced when dependencies are built.
