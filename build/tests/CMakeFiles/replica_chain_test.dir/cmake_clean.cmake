file(REMOVE_RECURSE
  "CMakeFiles/replica_chain_test.dir/replica_chain_test.cpp.o"
  "CMakeFiles/replica_chain_test.dir/replica_chain_test.cpp.o.d"
  "replica_chain_test"
  "replica_chain_test.pdb"
  "replica_chain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
