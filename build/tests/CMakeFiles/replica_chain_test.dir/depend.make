# Empty dependencies file for replica_chain_test.
# This may be replaced when dependencies are built.
