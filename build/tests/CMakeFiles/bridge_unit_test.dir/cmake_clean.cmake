file(REMOVE_RECURSE
  "CMakeFiles/bridge_unit_test.dir/bridge_unit_test.cpp.o"
  "CMakeFiles/bridge_unit_test.dir/bridge_unit_test.cpp.o.d"
  "bridge_unit_test"
  "bridge_unit_test.pdb"
  "bridge_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridge_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
