# Empty compiler generated dependencies file for bridge_unit_test.
# This may be replaced when dependencies are built.
