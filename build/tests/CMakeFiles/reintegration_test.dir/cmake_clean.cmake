file(REMOVE_RECURSE
  "CMakeFiles/reintegration_test.dir/reintegration_test.cpp.o"
  "CMakeFiles/reintegration_test.dir/reintegration_test.cpp.o.d"
  "reintegration_test"
  "reintegration_test.pdb"
  "reintegration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reintegration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
