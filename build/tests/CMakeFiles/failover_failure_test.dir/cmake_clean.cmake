file(REMOVE_RECURSE
  "CMakeFiles/failover_failure_test.dir/failover_failure_test.cpp.o"
  "CMakeFiles/failover_failure_test.dir/failover_failure_test.cpp.o.d"
  "failover_failure_test"
  "failover_failure_test.pdb"
  "failover_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failover_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
