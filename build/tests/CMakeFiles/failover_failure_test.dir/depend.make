# Empty dependencies file for failover_failure_test.
# This may be replaced when dependencies are built.
