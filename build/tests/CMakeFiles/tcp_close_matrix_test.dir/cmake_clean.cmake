file(REMOVE_RECURSE
  "CMakeFiles/tcp_close_matrix_test.dir/tcp_close_matrix_test.cpp.o"
  "CMakeFiles/tcp_close_matrix_test.dir/tcp_close_matrix_test.cpp.o.d"
  "tcp_close_matrix_test"
  "tcp_close_matrix_test.pdb"
  "tcp_close_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_close_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
