# Empty compiler generated dependencies file for tcp_close_matrix_test.
# This may be replaced when dependencies are built.
