file(REMOVE_RECURSE
  "CMakeFiles/tcp_keepalive_test.dir/tcp_keepalive_test.cpp.o"
  "CMakeFiles/tcp_keepalive_test.dir/tcp_keepalive_test.cpp.o.d"
  "tcp_keepalive_test"
  "tcp_keepalive_test.pdb"
  "tcp_keepalive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_keepalive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
