# Empty compiler generated dependencies file for tcp_keepalive_test.
# This may be replaced when dependencies are built.
