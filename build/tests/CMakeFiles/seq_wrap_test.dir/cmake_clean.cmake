file(REMOVE_RECURSE
  "CMakeFiles/seq_wrap_test.dir/seq_wrap_test.cpp.o"
  "CMakeFiles/seq_wrap_test.dir/seq_wrap_test.cpp.o.d"
  "seq_wrap_test"
  "seq_wrap_test.pdb"
  "seq_wrap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_wrap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
