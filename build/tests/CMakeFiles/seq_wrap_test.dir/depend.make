# Empty dependencies file for seq_wrap_test.
# This may be replaced when dependencies are built.
