file(REMOVE_RECURSE
  "CMakeFiles/failover_teardown_test.dir/failover_teardown_test.cpp.o"
  "CMakeFiles/failover_teardown_test.dir/failover_teardown_test.cpp.o.d"
  "failover_teardown_test"
  "failover_teardown_test.pdb"
  "failover_teardown_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failover_teardown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
