# Empty dependencies file for failover_teardown_test.
# This may be replaced when dependencies are built.
