# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/ip_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_segment_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_basic_test[1]_include.cmake")
include("/root/repo/build/tests/output_queue_test[1]_include.cmake")
include("/root/repo/build/tests/failover_basic_test[1]_include.cmake")
include("/root/repo/build/tests/failover_failure_test[1]_include.cmake")
include("/root/repo/build/tests/failover_loss_test[1]_include.cmake")
include("/root/repo/build/tests/fault_detector_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/failover_apps_test[1]_include.cmake")
include("/root/repo/build/tests/http_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_retransmit_test[1]_include.cmake")
include("/root/repo/build/tests/bridge_unit_test[1]_include.cmake")
include("/root/repo/build/tests/failover_teardown_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_property_test[1]_include.cmake")
include("/root/repo/build/tests/failover_property_test[1]_include.cmake")
include("/root/repo/build/tests/replica_chain_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_keepalive_test[1]_include.cmake")
include("/root/repo/build/tests/seq_wrap_test[1]_include.cmake")
include("/root/repo/build/tests/chain_apps_test[1]_include.cmake")
include("/root/repo/build/tests/reintegration_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_close_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/wan_ftp_failover_test[1]_include.cmake")
