file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_client_to_server.dir/bench_fig3_client_to_server.cpp.o"
  "CMakeFiles/bench_fig3_client_to_server.dir/bench_fig3_client_to_server.cpp.o.d"
  "bench_fig3_client_to_server"
  "bench_fig3_client_to_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_client_to_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
