# Empty compiler generated dependencies file for bench_fig3_client_to_server.
# This may be replaced when dependencies are built.
