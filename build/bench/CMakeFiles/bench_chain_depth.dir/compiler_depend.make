# Empty compiler generated dependencies file for bench_chain_depth.
# This may be replaced when dependencies are built.
