file(REMOVE_RECURSE
  "CMakeFiles/bench_chain_depth.dir/bench_chain_depth.cpp.o"
  "CMakeFiles/bench_chain_depth.dir/bench_chain_depth.cpp.o.d"
  "bench_chain_depth"
  "bench_chain_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chain_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
