file(REMOVE_RECURSE
  "CMakeFiles/bench_connection_setup.dir/bench_connection_setup.cpp.o"
  "CMakeFiles/bench_connection_setup.dir/bench_connection_setup.cpp.o.d"
  "bench_connection_setup"
  "bench_connection_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_connection_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
