# Empty dependencies file for bench_connection_setup.
# This may be replaced when dependencies are built.
