file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_server_to_client.dir/bench_fig4_server_to_client.cpp.o"
  "CMakeFiles/bench_fig4_server_to_client.dir/bench_fig4_server_to_client.cpp.o.d"
  "bench_fig4_server_to_client"
  "bench_fig4_server_to_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_server_to_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
