# Empty compiler generated dependencies file for bench_fig4_server_to_client.
# This may be replaced when dependencies are built.
