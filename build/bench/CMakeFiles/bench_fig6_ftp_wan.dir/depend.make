# Empty dependencies file for bench_fig6_ftp_wan.
# This may be replaced when dependencies are built.
