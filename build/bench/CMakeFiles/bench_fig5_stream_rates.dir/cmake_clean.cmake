file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_stream_rates.dir/bench_fig5_stream_rates.cpp.o"
  "CMakeFiles/bench_fig5_stream_rates.dir/bench_fig5_stream_rates.cpp.o.d"
  "bench_fig5_stream_rates"
  "bench_fig5_stream_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_stream_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
