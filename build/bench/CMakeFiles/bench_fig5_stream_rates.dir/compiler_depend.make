# Empty compiler generated dependencies file for bench_fig5_stream_rates.
# This may be replaced when dependencies are built.
