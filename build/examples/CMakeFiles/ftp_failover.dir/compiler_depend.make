# Empty compiler generated dependencies file for ftp_failover.
# This may be replaced when dependencies are built.
