file(REMOVE_RECURSE
  "CMakeFiles/ftp_failover.dir/ftp_failover.cpp.o"
  "CMakeFiles/ftp_failover.dir/ftp_failover.cpp.o.d"
  "ftp_failover"
  "ftp_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftp_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
