# Empty dependencies file for repair_cycle.
# This may be replaced when dependencies are built.
