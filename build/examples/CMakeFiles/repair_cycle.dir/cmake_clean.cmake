file(REMOVE_RECURSE
  "CMakeFiles/repair_cycle.dir/repair_cycle.cpp.o"
  "CMakeFiles/repair_cycle.dir/repair_cycle.cpp.o.d"
  "repair_cycle"
  "repair_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
