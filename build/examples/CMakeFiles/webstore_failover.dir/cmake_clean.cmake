file(REMOVE_RECURSE
  "CMakeFiles/webstore_failover.dir/webstore_failover.cpp.o"
  "CMakeFiles/webstore_failover.dir/webstore_failover.cpp.o.d"
  "webstore_failover"
  "webstore_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webstore_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
