# Empty compiler generated dependencies file for webstore_failover.
# This may be replaced when dependencies are built.
