# Empty compiler generated dependencies file for chain_failover.
# This may be replaced when dependencies are built.
