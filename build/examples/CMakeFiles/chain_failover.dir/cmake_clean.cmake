file(REMOVE_RECURSE
  "CMakeFiles/chain_failover.dir/chain_failover.cpp.o"
  "CMakeFiles/chain_failover.dir/chain_failover.cpp.o.d"
  "chain_failover"
  "chain_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
