# Empty compiler generated dependencies file for multitier_backend.
# This may be replaced when dependencies are built.
