file(REMOVE_RECURSE
  "CMakeFiles/multitier_backend.dir/multitier_backend.cpp.o"
  "CMakeFiles/multitier_backend.dir/multitier_backend.cpp.o.d"
  "multitier_backend"
  "multitier_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multitier_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
