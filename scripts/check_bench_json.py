#!/usr/bin/env python3
"""Validate BENCH_*.json bench artifacts against the schema in OBSERVABILITY.md.

Usage:
    check_bench_json.py FILE [FILE ...]    validate artifact files
    check_bench_json.py --self-test        run the validator's own checks

Exit status 0 when every file (and the self-test) passes, 1 otherwise.
Uses only the Python standard library.
"""

import json
import sys

SCHEMA_VERSION = 1

# Event names emitted by src/obs/timeline.cpp (to_string). Kept in sync by
# the self-referential check in tests/obs_test.cpp.
KNOWN_EVENTS = {
    "conn_created",
    "handshake_merged",
    "segment_merged",
    "empty_ack_emitted",
    "retransmit_forwarded",
    "divergence",
    "conn_closed",
    "tombstone_created",
    "tombstone_expired",
    "stray_fin_acked",
    "stray_fin_suppressed",
    "takeover_start",
    "takeover_complete",
    "secondary_failed",
    "peer_declared_failed",
    "host_failed",
}

HIST_KEYS = {"count", "sum", "min", "max", "mean", "p50", "p99"}


class SchemaError(Exception):
    pass


def _expect(cond, msg):
    if not cond:
        raise SchemaError(msg)


def _check_table(i, table):
    _expect(isinstance(table, dict), f"tables[{i}] is not an object")
    for key in ("title", "columns", "rows"):
        _expect(key in table, f"tables[{i}] missing '{key}'")
    cols = table["columns"]
    _expect(isinstance(cols, list) and cols, f"tables[{i}].columns empty")
    _expect(all(isinstance(c, str) for c in cols),
            f"tables[{i}].columns has a non-string entry")
    for j, row in enumerate(table["rows"]):
        _expect(isinstance(row, list), f"tables[{i}].rows[{j}] is not a list")
        _expect(len(row) == len(cols),
                f"tables[{i}].rows[{j}] has {len(row)} cells, "
                f"expected {len(cols)}")
        _expect(all(isinstance(c, str) for c in row),
                f"tables[{i}].rows[{j}] has a non-string cell")


def _check_metrics(host, metrics):
    _expect(isinstance(metrics, dict), f"host '{host}': metrics not an object")
    for key in ("counters", "gauges", "histograms"):
        _expect(key in metrics, f"host '{host}': metrics missing '{key}'")
    for name, v in metrics["counters"].items():
        _expect(isinstance(v, int) and v >= 0,
                f"host '{host}': counter '{name}' is not a non-negative int")
    for name, v in metrics["gauges"].items():
        _expect(isinstance(v, dict) and {"value", "max"} <= set(v),
                f"host '{host}': gauge '{name}' missing value/max")
    for name, h in metrics["histograms"].items():
        _expect(isinstance(h, dict) and HIST_KEYS <= set(h),
                f"host '{host}': histogram '{name}' missing {sorted(HIST_KEYS - set(h))}")


def _check_timeline(host, timeline):
    _expect(isinstance(timeline, list), f"host '{host}': timeline not a list")
    prev_t = -1
    for k, ev in enumerate(timeline):
        _expect(isinstance(ev, dict), f"host '{host}': timeline[{k}] not an object")
        for key in ("t_ns", "event"):
            _expect(key in ev, f"host '{host}': timeline[{k}] missing '{key}'")
        _expect(isinstance(ev["t_ns"], int) and ev["t_ns"] >= 0,
                f"host '{host}': timeline[{k}].t_ns invalid")
        _expect(ev["event"] in KNOWN_EVENTS,
                f"host '{host}': timeline[{k}] unknown event '{ev['event']}'")
        _expect(ev["t_ns"] >= prev_t,
                f"host '{host}': timeline[{k}] goes backwards in time")
        prev_t = ev["t_ns"]


def _check_profiles(profiles):
    _expect(isinstance(profiles, list) and profiles,
            "'profiles' must be a non-empty list when present")
    for i, p in enumerate(profiles):
        _expect(isinstance(p, dict), f"profiles[{i}] is not an object")
        for key in ("name", "seed", "params", "oracles"):
            _expect(key in p, f"profiles[{i}] missing '{key}'")
        _expect(isinstance(p["name"], str) and p["name"],
                f"profiles[{i}].name is not a non-empty string")
        _expect(isinstance(p["seed"], int) and p["seed"] >= 0,
                f"profiles[{i}].seed is not a non-negative int")
        _expect(isinstance(p["params"], dict),
                f"profiles[{i}].params is not an object")
        oracles = p["oracles"]
        _expect(isinstance(oracles, dict) and oracles,
                f"profiles[{i}].oracles is not a non-empty object")
        for name, v in oracles.items():
            _expect(isinstance(v, bool),
                    f"profiles[{i}].oracles['{name}'] is not a bool")


def _check_storm(storm):
    _expect(isinstance(storm, dict), "'storm' is not an object")
    for key in ("points", "alloc"):
        _expect(key in storm, f"storm missing '{key}'")
    points = storm["points"]
    _expect(isinstance(points, list) and points,
            "storm.points must be a non-empty list")
    prev_conns = 0
    for i, p in enumerate(points):
        _expect(isinstance(p, dict), f"storm.points[{i}] is not an object")
        for key in ("conns", "bytes_per_conn", "takeover_p50_ns",
                    "takeover_p99_ns"):
            _expect(key in p, f"storm.points[{i}] missing '{key}'")
            _expect(isinstance(p[key], (int, float)) and p[key] >= 0,
                    f"storm.points[{i}].{key} is not a non-negative number")
        _expect(p["conns"] > prev_conns,
                f"storm.points[{i}].conns not strictly increasing")
        prev_conns = p["conns"]
        _expect(p["takeover_p99_ns"] >= p["takeover_p50_ns"],
                f"storm.points[{i}]: p99 below p50")
    alloc = storm["alloc"]
    _expect(isinstance(alloc, dict), "storm.alloc is not an object")
    for key in ("cycles", "legacy_allocs", "wheel_allocs", "ratio"):
        _expect(key in alloc, f"storm.alloc missing '{key}'")
        _expect(isinstance(alloc[key], (int, float)) and alloc[key] >= 0,
                f"storm.alloc.{key} is not a non-negative number")
    _expect(alloc["ratio"] >= 5,
            f"storm.alloc.ratio {alloc['ratio']} below the 5x gate")


def _check_shard(shard):
    _expect(isinstance(shard, dict), "'shard' is not an object")
    for key in ("gro", "points"):
        _expect(key in shard, f"shard missing '{key}'")
    gro = shard["gro"]
    _expect(isinstance(gro, dict), "shard.gro is not an object")
    for key in ("mss", "base_segments_per_s", "gro_segments_per_s", "speedup",
                "frames_batched", "gro_coalesced"):
        _expect(key in gro, f"shard.gro missing '{key}'")
        _expect(isinstance(gro[key], (int, float)) and gro[key] >= 0,
                f"shard.gro.{key} is not a non-negative number")
    sanitized = gro.get("sanitized", False)
    _expect(isinstance(sanitized, bool), "shard.gro.sanitized is not a bool")
    # Wall-clock gates are native-build only: a sanitizer build records its
    # numbers but is exempt from the speedup floor (the bench binary makes
    # the same call; see bench_shard.cpp).
    if not sanitized:
        _expect(gro["speedup"] >= 1.3,
                f"shard.gro.speedup {gro['speedup']} below the 1.3x gate")
    _expect(gro["gro_coalesced"] > 0, "shard.gro.gro_coalesced is zero")
    points = shard["points"]
    _expect(isinstance(points, list) and points,
            "shard.points must be a non-empty list")
    prev_lanes = 0
    p99 = None
    for i, p in enumerate(points):
        _expect(isinstance(p, dict), f"shard.points[{i}] is not an object")
        for key in ("lanes", "segments_per_s", "takeover_p99_ns", "wall_s"):
            _expect(key in p, f"shard.points[{i}] missing '{key}'")
            _expect(isinstance(p[key], (int, float)) and p[key] >= 0,
                    f"shard.points[{i}].{key} is not a non-negative number")
        _expect(p["lanes"] > prev_lanes,
                f"shard.points[{i}].lanes not strictly increasing")
        prev_lanes = p["lanes"]
        _expect(p["segments_per_s"] > 0,
                f"shard.points[{i}].segments_per_s is zero")
        _expect(p["takeover_p99_ns"] > 0,
                f"shard.points[{i}].takeover_p99_ns is zero")
        if p99 is None:
            p99 = p["takeover_p99_ns"]
        _expect(p["takeover_p99_ns"] == p99,
                f"shard.points[{i}].takeover_p99_ns differs across lane "
                f"counts — the lane merge leaked into simulated time")


def _check_churn(churn):
    _expect(isinstance(churn, dict), "'churn' is not an object")
    for key in ("requests_per_conn", "points"):
        _expect(key in churn, f"churn missing '{key}'")
    _expect(isinstance(churn["requests_per_conn"], int)
            and churn["requests_per_conn"] >= 1,
            "churn.requests_per_conn must be an int >= 1")
    points = churn["points"]
    _expect(isinstance(points, list) and points,
            "churn.points must be a non-empty list")
    prev_cps = 0
    for i, p in enumerate(points):
        _expect(isinstance(p, dict), f"churn.points[{i}] is not an object")
        for key in ("offered_cps", "duration_s", "conns_started",
                    "conns_established", "conns_completed", "conns_failed",
                    "requests_sent", "responses_ok", "requests_per_s",
                    "latency_p50_ns", "latency_p99_ns", "setup_p50_ns",
                    "setup_p99_ns", "listen_overflows", "time_wait_recycled",
                    "embryonic_reaped", "growth_bytes_per_conn"):
            _expect(key in p, f"churn.points[{i}] missing '{key}'")
            _expect(isinstance(p[key], (int, float)) and p[key] >= 0,
                    f"churn.points[{i}].{key} is not a non-negative number")
        _expect(p["offered_cps"] > prev_cps,
                f"churn.points[{i}].offered_cps not strictly increasing")
        prev_cps = p["offered_cps"]
        _expect(p["latency_p99_ns"] >= p["latency_p50_ns"],
                f"churn.points[{i}]: latency p99 below p50")
        _expect(p["setup_p99_ns"] >= p["setup_p50_ns"],
                f"churn.points[{i}]: setup p99 below p50")
        _expect(p["conns_completed"] <= p["conns_started"],
                f"churn.points[{i}]: more completions than starts")
        _expect(p["responses_ok"] <= p["requests_sent"],
                f"churn.points[{i}]: more responses than requests")
        # Open-loop gate: an unhealthy run still reports the offered rate,
        # so a collapse shows up as failures, not a smaller denominator.
        _expect(p["conns_failed"] <= 0.05 * p["conns_started"],
                f"churn.points[{i}]: more than 5% of connections failed")


def _check_attack(attack):
    _expect(isinstance(attack, dict), "'attack' is not an object")
    for key in ("injected_total", "connections_killed", "spoof_dropped",
                "challenge_acks", "challenge_acks_limited", "icmp_rejected",
                "hb_auth_failed", "baseline_steady_ms", "baseline_failover_ms",
                "worst_slowdown"):
        _expect(key in attack, f"attack missing '{key}'")
        _expect(isinstance(attack[key], (int, float)) and attack[key] >= 0,
                f"attack.{key} is not a non-negative number")
    _expect(attack["injected_total"] > 0,
            "attack.injected_total is zero — the adversary matrix never ran")
    # The headline gate: an off-path adversary must never tear a bridged
    # connection down, however many segments it sprays.
    _expect(attack["connections_killed"] == 0,
            f"attack.connections_killed {attack['connections_killed']} != 0")
    _expect(attack["worst_slowdown"] <= 5,
            f"attack.worst_slowdown {attack['worst_slowdown']} above the "
            f"5x goodput-degradation gate")


def check_document(doc):
    """Raises SchemaError when `doc` violates the bench artifact schema."""
    _expect(isinstance(doc, dict), "top level is not an object")
    for key in ("bench", "schema_version", "tables", "hosts"):
        _expect(key in doc, f"missing top-level key '{key}'")
    _expect(isinstance(doc["bench"], str) and doc["bench"],
            "'bench' is not a non-empty string")
    _expect(doc["schema_version"] == SCHEMA_VERSION,
            f"schema_version {doc['schema_version']!r} != {SCHEMA_VERSION}")
    _expect(isinstance(doc["tables"], list) and doc["tables"],
            "'tables' must be a non-empty list")
    for i, table in enumerate(doc["tables"]):
        _check_table(i, table)
    _expect(isinstance(doc["hosts"], list) and doc["hosts"],
            "'hosts' must be a non-empty list")
    for host_obj in doc["hosts"]:
        _expect(isinstance(host_obj, dict) and "host" in host_obj,
                "hosts[] entry missing 'host'")
        host = host_obj["host"]
        for key in ("t_ns", "metrics", "timeline"):
            _expect(key in host_obj, f"host '{host}' missing '{key}'")
        _check_metrics(host, host_obj["metrics"])
        _check_timeline(host, host_obj["timeline"])
    if "profiles" in doc:
        _check_profiles(doc["profiles"])
    if "storm" in doc:
        _check_storm(doc["storm"])
    if "shard" in doc:
        _check_shard(doc["shard"])
    if "churn" in doc:
        _check_churn(doc["churn"])
    if "attack" in doc:
        _check_attack(doc["attack"])


def check_file(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL {path}: {e}")
        return False
    try:
        check_document(doc)
    except SchemaError as e:
        print(f"FAIL {path}: {e}")
        return False
    n_events = sum(len(h["timeline"]) for h in doc["hosts"])
    extra = ""
    if "profiles" in doc:
        n_red = sum(not all(p["oracles"].values()) for p in doc["profiles"])
        extra = (f", {len(doc['profiles'])} profile(s)"
                 + (f" ({n_red} with red oracles)" if n_red else ""))
    print(f"OK   {path}: bench '{doc['bench']}', {len(doc['tables'])} table(s), "
          f"{len(doc['hosts'])} host(s), {n_events} timeline event(s){extra}")
    return True


def self_test():
    good = {
        "bench": "demo",
        "schema_version": SCHEMA_VERSION,
        "tables": [{"title": "t", "columns": ["a", "b"], "rows": [["1", "2"]]}],
        "hosts": [{
            "host": "primary",
            "t_ns": 5,
            "metrics": {
                "counters": {"bridge.merged_segments": 3},
                "gauges": {"bridge.connections": {"value": 1, "max": 2}},
                "histograms": {"bridge.merged_payload_bytes": {
                    "count": 1, "sum": 8.0, "min": 8.0, "max": 8.0,
                    "mean": 8.0, "p50": 8.0, "p99": 8.0}},
            },
            "timeline": [
                {"t_ns": 1, "host": "primary", "event": "conn_created",
                 "conn": "k", "detail": ""},
                {"t_ns": 4, "host": "primary", "event": "takeover_start",
                 "conn": "", "detail": ""},
            ],
        }],
        "profiles": [{
            "name": "uniform2_steady",
            "seed": 101,
            "params": {"loss": 0.02},
            "oracles": {"stream_intact": True, "conserved": True},
        }],
        "storm": {
            "points": [
                {"conns": 1000, "bytes_per_conn": 7000,
                 "takeover_p50_ns": 2.0e8, "takeover_p99_ns": 2.1e8},
                {"conns": 100000, "bytes_per_conn": 6800,
                 "takeover_p50_ns": 2.0e8, "takeover_p99_ns": 3.5e8},
            ],
            "alloc": {"cycles": 200000, "legacy_allocs": 400000,
                      "wheel_allocs": 0, "ratio": 400000.0},
        },
        "shard": {
            "gro": {"mss": 1460, "base_segments_per_s": 100000.0,
                    "gro_segments_per_s": 180000.0, "speedup": 1.8,
                    "frames_batched": 50000, "gro_coalesced": 30000},
            "points": [
                {"lanes": 1, "segments_per_s": 180000.0,
                 "takeover_p99_ns": 2.1e8, "wall_s": 1.5},
                {"lanes": 2, "segments_per_s": 175000.0,
                 "takeover_p99_ns": 2.1e8, "wall_s": 1.6},
                {"lanes": 4, "segments_per_s": 170000.0,
                 "takeover_p99_ns": 2.1e8, "wall_s": 1.7},
            ],
        },
        "churn": {
            "requests_per_conn": 2,
            "points": [
                {"offered_cps": 2000.0, "duration_s": 3.0,
                 "conns_started": 5974, "conns_established": 5974,
                 "conns_completed": 5974, "conns_failed": 0,
                 "requests_sent": 11948, "responses_ok": 11948,
                 "requests_per_s": 3983.0,
                 "latency_p50_ns": 2.0e4, "latency_p99_ns": 9.0e4,
                 "setup_p50_ns": 4.0e4, "setup_p99_ns": 1.0e9,
                 "listen_overflows": 0, "time_wait_recycled": 0,
                 "embryonic_reaped": 0, "growth_bytes_per_conn": 362.0},
                {"offered_cps": 10000.0, "duration_s": 3.0,
                 "conns_started": 30077, "conns_established": 30077,
                 "conns_completed": 30050, "conns_failed": 27,
                 "requests_sent": 60154, "responses_ok": 60100,
                 "requests_per_s": 20033.0,
                 "latency_p50_ns": 2.0e4, "latency_p99_ns": 1.3e5,
                 "setup_p50_ns": 4.0e4, "setup_p99_ns": 1.0e9,
                 "listen_overflows": 9987, "time_wait_recycled": 13693,
                 "embryonic_reaped": 0, "growth_bytes_per_conn": 346.0},
            ],
        },
        "attack": {
            "injected_total": 52000, "connections_killed": 0,
            "spoof_dropped": 1200, "challenge_acks": 310,
            "challenge_acks_limited": 40, "icmp_rejected": 18,
            "hb_auth_failed": 900, "baseline_steady_ms": 810.0,
            "baseline_failover_ms": 1020.0, "worst_slowdown": 1.2,
        },
    }
    check_document(good)

    import copy
    bad_cases = [
        ("missing bench", lambda d: d.pop("bench")),
        ("wrong schema_version", lambda d: d.update(schema_version=99)),
        ("ragged table row", lambda d: d["tables"][0]["rows"].append(["only-one"])),
        ("unknown event", lambda d: d["hosts"][0]["timeline"][0].update(
            event="not_a_real_event")),
        ("time going backwards", lambda d: d["hosts"][0]["timeline"][1].update(
            t_ns=0)),
        ("negative counter", lambda d: d["hosts"][0]["metrics"]["counters"].update(
            {"bridge.merged_segments": -1})),
        ("gauge missing max", lambda d: d["hosts"][0]["metrics"]["gauges"].update(
            {"bridge.connections": {"value": 1}})),
        ("empty hosts", lambda d: d.update(hosts=[])),
        ("profiles not a list", lambda d: d.update(profiles={})),
        ("profile missing name", lambda d: d["profiles"][0].pop("name")),
        ("profile negative seed", lambda d: d["profiles"][0].update(seed=-1)),
        ("profile non-bool oracle", lambda d: d["profiles"][0]["oracles"].update(
            {"stream_intact": "yes"})),
        ("storm missing points", lambda d: d["storm"].pop("points")),
        ("storm empty points", lambda d: d["storm"].update(points=[])),
        ("storm point missing p99", lambda d: d["storm"]["points"][0].pop(
            "takeover_p99_ns")),
        ("storm p99 below p50", lambda d: d["storm"]["points"][0].update(
            takeover_p99_ns=1.0)),
        ("storm conns not increasing", lambda d: d["storm"]["points"][1].update(
            conns=1000)),
        ("storm negative bytes", lambda d: d["storm"]["points"][0].update(
            bytes_per_conn=-1)),
        ("storm alloc missing ratio", lambda d: d["storm"]["alloc"].pop("ratio")),
        ("storm ratio below gate", lambda d: d["storm"]["alloc"].update(
            ratio=2.0)),
        ("shard missing gro", lambda d: d["shard"].pop("gro")),
        ("shard speedup below gate", lambda d: d["shard"]["gro"].update(
            speedup=1.1)),
        ("shard non-bool sanitized waiver", lambda d: d["shard"]["gro"].update(
            speedup=1.1, sanitized="yes")),
        ("shard never coalesced", lambda d: d["shard"]["gro"].update(
            gro_coalesced=0)),
        ("shard empty points", lambda d: d["shard"].update(points=[])),
        ("shard point missing wall_s", lambda d: d["shard"]["points"][0].pop(
            "wall_s")),
        ("shard lanes not increasing", lambda d: d["shard"]["points"][2].update(
            lanes=2)),
        ("shard zero throughput", lambda d: d["shard"]["points"][1].update(
            segments_per_s=0)),
        ("shard p99 drifts across lanes", lambda d: d["shard"]["points"][2].update(
            takeover_p99_ns=9.9e8)),
        ("churn missing points", lambda d: d["churn"].pop("points")),
        ("churn empty points", lambda d: d["churn"].update(points=[])),
        ("churn zero requests_per_conn", lambda d: d["churn"].update(
            requests_per_conn=0)),
        ("churn point missing overflows", lambda d: d["churn"]["points"][0].pop(
            "listen_overflows")),
        ("churn cps not increasing", lambda d: d["churn"]["points"][1].update(
            offered_cps=2000.0)),
        ("churn latency p99 below p50", lambda d: d["churn"]["points"][0].update(
            latency_p99_ns=1.0e4)),
        ("churn setup p99 below p50", lambda d: d["churn"]["points"][0].update(
            setup_p99_ns=1.0e4)),
        ("churn completions exceed starts", lambda d: d["churn"]["points"][0].update(
            conns_completed=99999)),
        ("churn responses exceed requests", lambda d: d["churn"]["points"][0].update(
            responses_ok=99999)),
        ("churn failure rate above 5%", lambda d: d["churn"]["points"][1].update(
            conns_failed=5000)),
        ("churn negative growth", lambda d: d["churn"]["points"][0].update(
            growth_bytes_per_conn=-1)),
        ("attack missing killed", lambda d: d["attack"].pop(
            "connections_killed")),
        ("attack connection killed", lambda d: d["attack"].update(
            connections_killed=1)),
        ("attack nothing injected", lambda d: d["attack"].update(
            injected_total=0)),
        ("attack negative challenge count", lambda d: d["attack"].update(
            challenge_acks=-5)),
        ("attack slowdown above gate", lambda d: d["attack"].update(
            worst_slowdown=8.0)),
    ]
    for name, mutate in bad_cases:
        doc = copy.deepcopy(good)
        mutate(doc)
        try:
            check_document(doc)
        except SchemaError:
            continue
        print(f"FAIL self-test: '{name}' was not rejected")
        return False
    print(f"OK   self-test: valid document accepted, "
          f"{len(bad_cases)} invalid mutations rejected")
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 1
    ok = True
    files = []
    for arg in argv[1:]:
        if arg == "--self-test":
            ok = self_test() and ok
        else:
            files.append(arg)
    for path in files:
        ok = check_file(path) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
