// Ethernet II frames and wire-time accounting.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/bytes.hpp"
#include "net/mac.hpp"
#include "wire/packet_buffer.hpp"

namespace tfo::net {

/// EtherType values used by the stack.
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
};

struct EthernetFrame {
  MacAddress dst;
  MacAddress src;
  EtherType type = EtherType::kIpv4;
  /// Shared wire buffer: copying a frame (fan-out to N receivers, NIC rx
  /// scheduling) shares the storage instead of duplicating the bytes.
  wire::PacketBuffer payload;
  /// Receive-side offload metadata (not wire bytes): the GRO engine has
  /// verified the embedded IP/TCP checksums, so upper layers may skip
  /// their own verification pass (CHECKSUM_UNNECESSARY in Linux terms).
  bool checksums_verified = false;

  static constexpr std::size_t kHeaderBytes = 14;   // dst + src + ethertype
  static constexpr std::size_t kCrcBytes = 4;
  static constexpr std::size_t kMinPayload = 46;    // 64-byte minimum frame
  /// Preamble + SFD (8) and inter-frame gap (12): occupy the wire but
  /// carry no frame data.
  static constexpr std::size_t kWireOverheadBytes = 20;

  /// Octets of frame proper on the wire (header + padded payload + CRC).
  std::size_t frame_bytes() const {
    return kHeaderBytes + std::max(payload.size(), kMinPayload) + kCrcBytes;
  }

  /// Octet-equivalents of wire occupancy, including preamble and IFG.
  std::size_t wire_bytes() const { return frame_bytes() + kWireOverheadBytes; }
};

}  // namespace tfo::net
