#include "net/impairment.hpp"

#include <algorithm>

namespace tfo::net {

Impairment::Impairment(ImpairmentParams params)
    : params_(params), rng_(params.seed) {}

void Impairment::configure(ImpairmentParams params) {
  params_ = params;
  rng_ = Rng(params.seed);
  bad_state_ = false;
}

Impairment::Plan Impairment::plan(const Nic* sender, const Nic& receiver,
                                  const EthernetFrame& frame) {
  Plan p;
  if (!enabled() || (target_ && !target_(sender, receiver, frame))) {
    p.copies.push_back({});
    return p;
  }
  p.tracked = true;
  ++offered_;
  mirror(ctr_offered_, 1);

  // Loss first: the bursty chain advances once per considered delivery,
  // then the uniform model gets its draw. Draw order is fixed so the
  // schedule is reproducible from the seed alone.
  bool drop = false;
  if (params_.gilbert.enabled()) {
    if (bad_state_) {
      if (rng_.bernoulli(params_.gilbert.p_exit_bad)) bad_state_ = false;
    } else {
      if (rng_.bernoulli(params_.gilbert.p_enter_bad)) bad_state_ = true;
    }
    drop = rng_.bernoulli(bad_state_ ? params_.gilbert.loss_bad
                                     : params_.gilbert.loss_good);
  }
  if (!drop && params_.loss > 0.0) drop = rng_.bernoulli(params_.loss);
  if (drop) {
    ++dropped_;
    mirror(ctr_dropped_, 1);
    return p;  // no copies
  }

  std::size_t copies = 1;
  if (params_.duplicate > 0.0 && rng_.bernoulli(params_.duplicate)) {
    copies = 2;
    ++duplicated_;
    mirror(ctr_duplicated_, 1);
  }
  for (std::size_t i = 0; i < copies; ++i) {
    Copy c;
    if (i > 0) c.extra_delay = params_.duplicate_delay;
    if (params_.reorder > 0.0 && rng_.bernoulli(params_.reorder)) {
      c.extra_delay += static_cast<SimDuration>(
          rng_.uniform(1, static_cast<std::uint64_t>(
                              std::max<SimDuration>(params_.reorder_delay, 1))));
    }
    if (c.extra_delay > 0) {
      ++reordered_;
      mirror(ctr_reordered_, 1);
    }
    if (params_.corrupt > 0.0 && rng_.bernoulli(params_.corrupt)) {
      c.corrupted = true;
      ++corrupted_;
      mirror(ctr_corrupted_, 1);
    }
    p.copies.push_back(c);
  }
  return p;
}

EthernetFrame Impairment::corrupt_frame(const EthernetFrame& frame) {
  // The copy shares the original's storage; the first mutable access
  // below copy-on-writes, so the intact copies delivered to other
  // receivers never see the flipped bytes.
  EthernetFrame f = frame;
  if (f.payload.empty()) return f;
  const int flips = static_cast<int>(
      rng_.uniform(1, static_cast<std::uint64_t>(
                          std::max(params_.corrupt_max_bytes, 1))));
  for (int i = 0; i < flips; ++i) {
    const std::size_t at = rng_.uniform(0, f.payload.size() - 1);
    // XOR with a non-zero byte: a corrupted copy always differs.
    f.payload[at] ^= static_cast<std::uint8_t>(rng_.uniform(1, 255));
  }
  return f;
}

void Impairment::bind_registry(obs::Registry& reg) {
  ctr_offered_ = &reg.counter("net.impairment.offered");
  ctr_dropped_ = &reg.counter("net.impairment.dropped");
  ctr_duplicated_ = &reg.counter("net.impairment.duplicated");
  ctr_reordered_ = &reg.counter("net.impairment.reordered");
  ctr_corrupted_ = &reg.counter("net.impairment.corrupted");
  ctr_delivered_ = &reg.counter("net.impairment.delivered");
  ctr_detached_ = &reg.counter("net.impairment.detached");
  // Back-fill activity from before the bind so the registry view satisfies
  // the same conservation invariant as the internal counters. Binding two
  // engines to one registry aggregates them.
  ctr_offered_->inc(offered_);
  ctr_dropped_->inc(dropped_);
  ctr_duplicated_->inc(duplicated_);
  ctr_reordered_->inc(reordered_);
  ctr_corrupted_->inc(corrupted_);
  ctr_delivered_->inc(delivered_);
  ctr_detached_->inc(detached_);
}

}  // namespace tfo::net
