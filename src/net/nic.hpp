// Simulated network interface controller.
//
// The NIC is where the paper's promiscuous receive mode lives: with
// `set_promiscuous(true)` the secondary server's interface passes up frames
// addressed to the primary (§3.1); disabling it is step 2 of the §5
// takeover. `set_enabled(false)` models a crashed host going silent.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/frame.hpp"
#include "net/medium.hpp"
#include "sim/simulator.hpp"

namespace tfo::net {

struct NicParams {
  /// Fixed host protocol-processing latency charged on frame receive,
  /// standing in for interrupt + kernel stack traversal time on the
  /// paper's Pentium-III-era machines.
  SimDuration rx_processing = microseconds(30);
  /// Additional uniform jitter in [0, rx_jitter) added per frame (models
  /// interrupt/scheduling variance; gives the paper-style median≠max).
  SimDuration rx_jitter = 0;
  /// Seed for the jitter stream (combined with the NIC's MAC).
  std::uint64_t jitter_seed = 99;
};

class Nic {
 public:
  /// The receive handler. `to_us` is true when the frame was addressed to
  /// this NIC (unicast match or broadcast); promiscuous captures deliver
  /// with to_us == false.
  using RxHandler = std::function<void(const EthernetFrame&, bool to_us)>;

  Nic(sim::Simulator& sim, std::string name, MacAddress mac, NicParams params = {});
  ~Nic();
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  void attach(Medium& medium);
  void detach();

  /// Transmits a frame; the source MAC is stamped with this NIC's address.
  void send(EthernetFrame frame);

  void set_rx_handler(RxHandler h) { rx_ = std::move(h); }

  /// Adds a passive observer called synchronously at frame arrival (before
  /// the processing delay). Observers never affect delivery; tracers and
  /// tests use this to watch the wire.
  void add_observer(RxHandler observer) { observers_.push_back(std::move(observer)); }
  void set_promiscuous(bool on) { promiscuous_ = on; }
  bool promiscuous() const { return promiscuous_; }

  /// A disabled NIC neither transmits nor receives (fail-stop host model).
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  const MacAddress& mac() const { return mac_; }
  const std::string& name() const { return name_; }

  std::uint64_t tx_frames() const { return tx_frames_; }
  std::uint64_t rx_frames() const { return rx_frames_; }
  std::uint64_t tx_bytes() const { return tx_bytes_; }
  std::uint64_t rx_bytes() const { return rx_bytes_; }

  /// Called by the medium to hand over a frame (internal plumbing).
  void deliver(const EthernetFrame& frame);

 private:
  sim::Simulator& sim_;
  std::string name_;
  MacAddress mac_;
  NicParams params_;
  Medium* medium_ = nullptr;
  RxHandler rx_;
  std::vector<RxHandler> observers_;
  bool promiscuous_ = false;
  bool enabled_ = true;
  std::uint64_t tx_frames_ = 0, rx_frames_ = 0;
  std::uint64_t tx_bytes_ = 0, rx_bytes_ = 0;
  Rng jitter_rng_;
  SimTime rx_floor_ = 0;  // monotonic delivery-time floor
};

}  // namespace tfo::net
