// Simulated network interface controller.
//
// The NIC is where the paper's promiscuous receive mode lives: with
// `set_promiscuous(true)` the secondary server's interface passes up frames
// addressed to the primary (§3.1); disabling it is step 2 of the §5
// takeover. `set_enabled(false)` models a crashed host going silent.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/frame.hpp"
#include "net/gro.hpp"
#include "net/medium.hpp"
#include "sim/lane.hpp"
#include "sim/simulator.hpp"

namespace tfo::net {

struct NicParams {
  /// Fixed host protocol-processing latency charged on frame receive,
  /// standing in for interrupt + kernel stack traversal time on the
  /// paper's Pentium-III-era machines.
  SimDuration rx_processing = microseconds(30);
  /// Additional uniform jitter in [0, rx_jitter) added per frame (models
  /// interrupt/scheduling variance; gives the paper-style median≠max).
  SimDuration rx_jitter = 0;
  /// Seed for the jitter stream (combined with the NIC's MAC).
  std::uint64_t jitter_seed = 99;

  /// Rx batching: with a value > 1 the NIC stages arrivals in a batch
  /// ring and hands them up the stack together — one rx_processing charge
  /// and one scheduler event per *batch* (NAPI-style interrupt
  /// mitigation), with GRO coalescing of abutting in-order TCP segments.
  /// The value caps the ring: a full ring flushes without waiting out the
  /// window. 0/1 keeps the legacy per-frame path, bit-identical to
  /// pre-batching behaviour. Jitter is not applied in batching mode.
  std::size_t rx_batch_max = 1;
  /// Extra time beyond rx_processing a partial batch waits for more
  /// frames before flushing (the interrupt-coalescing window).
  SimDuration rx_batch_window = 0;
  /// Tx batching: with a value > 1 outbound frames are staged in a ring
  /// flushed to the medium at the end of the current event (one burst).
  /// 0/1 transmits immediately.
  std::size_t tx_batch_max = 1;
  /// GRO coalescing limits (effective only with rx batching on).
  GroParams gro;
};

/// Batch-path telemetry, mirrored into per-host obs as lane.* counters.
struct NicBatchStats {
  std::uint64_t rx_batches = 0;       ///< rx ring flushes
  std::uint64_t frames_batched = 0;   ///< frames that went through a batch
  std::uint64_t tx_batches = 0;       ///< tx ring flushes
  std::uint64_t tx_frames_batched = 0;
};

class Nic {
 public:
  /// The receive handler. `to_us` is true when the frame was addressed to
  /// this NIC (unicast match or broadcast); promiscuous captures deliver
  /// with to_us == false.
  using RxHandler = std::function<void(const EthernetFrame&, bool to_us)>;

  Nic(sim::Simulator& sim, std::string name, MacAddress mac, NicParams params = {});
  ~Nic();
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  void attach(Medium& medium);
  void detach();

  /// Transmits a frame; the source MAC is stamped with this NIC's address.
  void send(EthernetFrame frame);

  void set_rx_handler(RxHandler h) { rx_ = std::move(h); }

  /// Adds a passive observer called synchronously at frame arrival (before
  /// the processing delay). Observers never affect delivery; tracers and
  /// tests use this to watch the wire.
  void add_observer(RxHandler observer) { observers_.push_back(std::move(observer)); }
  void set_promiscuous(bool on) { promiscuous_ = on; }
  bool promiscuous() const { return promiscuous_; }

  /// A disabled NIC neither transmits nor receives (fail-stop host model).
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Installs the lane set used to shard rx batches RSS-style across
  /// worker lanes (nullptr = single-lane inline execution). The NIC does
  /// not own it; typically the host's.
  void set_lane_set(sim::LaneSet* lanes) { lanes_ = lanes; }

  const NicBatchStats& batch_stats() const { return batch_stats_; }
  const GroStats& gro_stats() const { return gro_stats_; }

  const MacAddress& mac() const { return mac_; }
  const std::string& name() const { return name_; }

  std::uint64_t tx_frames() const { return tx_frames_; }
  std::uint64_t rx_frames() const { return rx_frames_; }
  std::uint64_t tx_bytes() const { return tx_bytes_; }
  std::uint64_t rx_bytes() const { return rx_bytes_; }

  /// Called by the medium to hand over a frame (internal plumbing).
  void deliver(const EthernetFrame& frame);

 private:
  void enqueue_rx(const EthernetFrame& frame, bool to_us);
  void flush_rx();
  void flush_tx();

  sim::Simulator& sim_;
  std::string name_;
  MacAddress mac_;
  NicParams params_;
  Medium* medium_ = nullptr;
  RxHandler rx_;
  std::vector<RxHandler> observers_;
  bool promiscuous_ = false;
  bool enabled_ = true;
  std::uint64_t tx_frames_ = 0, rx_frames_ = 0;
  std::uint64_t tx_bytes_ = 0, rx_bytes_ = 0;
  Rng jitter_rng_;
  SimTime rx_floor_ = 0;  // monotonic delivery-time floor

  // Batched data path (rx_batch_max / tx_batch_max > 1).
  sim::LaneSet* lanes_ = nullptr;
  std::vector<RxFrame> rx_ring_;
  sim::EventId rx_flush_event_ = sim::kNoEvent;
  SimTime rx_flush_floor_ = 0;  // first arrival + rx_processing
  std::vector<EthernetFrame> tx_ring_;
  bool tx_flush_scheduled_ = false;
  NicBatchStats batch_stats_;
  GroStats gro_stats_;
};

}  // namespace tfo::net
