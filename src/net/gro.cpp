#include "net/gro.hpp"

#include <cstring>

#include "common/checksum.hpp"

namespace tfo::net {

namespace {

// Raw IPv4/TCP offsets (no-options headers only; anything fancier is
// ineligible and passes through untouched).
constexpr std::size_t kIpHdr = 20;
constexpr std::size_t kTcpHdr = 20;
constexpr std::uint8_t kFlagPsh = 0x08;
constexpr std::uint8_t kFlagAck = 0x10;

std::uint16_t get16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}
std::uint32_t get32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

/// One's-complement sum of the RFC 793 pseudo-header read straight from
/// the IP header bytes (src @12, dst @16).
std::uint32_t pseudo_sum(const std::uint8_t* ip, std::size_t tcp_len) {
  std::uint32_t sum = 0;
  sum += get16(ip + 12);
  sum += get16(ip + 14);
  sum += get16(ip + 16);
  sum += get16(ip + 18);
  sum += 6;  // zero byte + protocol (TCP)
  sum += static_cast<std::uint32_t>(tcp_len) & 0xffff;
  return sum;
}

/// A structurally merge-eligible frame, checksum-verified, with pointers
/// into the frame's own payload storage (valid until the frame moves).
struct Candidate {
  const std::uint8_t* ip = nullptr;   // 20-byte IPv4 header
  const std::uint8_t* tcp = nullptr;  // TCP header + payload
  std::size_t payload_len = 0;        // TCP payload bytes
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint16_t payload_sum = 0;  // folded one's-complement sum of payload
  std::uint16_t window = 0;
  bool psh = false;
};

/// Rotating a one's-complement sum by one byte is ×2^8 mod (2^16 - 1):
/// the contribution of a byte run that lands at an odd offset.
std::uint16_t swap16(std::uint16_t v) {
  return static_cast<std::uint16_t>((v >> 8) | (v << 8));
}

/// Parses a frame into a merge candidate. Returns false when ineligible
/// (must pass through untouched); bumps `bad_checksum` when the only
/// reason is a checksum that does not verify.
bool parse_candidate(const EthernetFrame& f, Candidate& c, GroStats& stats) {
  if (f.type != EtherType::kIpv4) return false;
  const std::uint8_t* p = f.payload.data();
  const std::size_t n = f.payload.size();
  if (n < kIpHdr + kTcpHdr) return false;
  if (p[0] != 0x45) return false;            // IPv4, no IP options
  if (get16(p + 6) != 0) return false;       // no fragmentation
  if (p[9] != 6) return false;               // TCP
  const std::size_t tot_len = get16(p + 2);  // trims Ethernet runt padding
  if (tot_len < kIpHdr + kTcpHdr || tot_len > n) return false;
  const std::uint8_t* tcp = p + kIpHdr;
  const std::size_t tcp_len = tot_len - kIpHdr;
  if ((tcp[12] >> 4) != 5) return false;     // no TCP options (SYN, divert)
  const std::uint8_t flags = tcp[13];
  if (flags != kFlagAck && flags != (kFlagAck | kFlagPsh)) return false;
  if (get16(tcp + 18) != 0) return false;    // urgent pointer unused
  if (tcp_len == kTcpHdr) return false;      // pure ACKs pass through
  // Both checksums must verify before these bytes may be folded into a
  // merged segment whose checksums are recomputed from scratch.
  if (ones_complement_sum(BytesView(p, kIpHdr)) != 0xffff) {
    ++stats.bad_checksum;
    return false;
  }
  // Split the verification sum at the header/payload boundary: the
  // payload's contribution is reused verbatim when the merged segment's
  // checksum is composed (one's-complement sums concatenate, 2^16 ≡ 1).
  const std::uint16_t hdr_sum =
      ones_complement_sum(BytesView(tcp, kTcpHdr), pseudo_sum(p, tcp_len));
  const std::uint16_t payload_sum =
      ones_complement_sum(BytesView(tcp + kTcpHdr, tcp_len - kTcpHdr));
  std::uint32_t total = std::uint32_t{hdr_sum} + payload_sum;
  while (total >> 16) total = (total & 0xffff) + (total >> 16);
  if (total != 0xffff) {
    ++stats.bad_checksum;
    return false;
  }
  c.ip = p;
  c.tcp = tcp;
  c.payload_len = tcp_len - kTcpHdr;
  c.seq = get32(tcp + 4);
  c.ack = get32(tcp + 8);
  c.payload_sum = payload_sum;
  c.window = get16(tcp + 14);
  c.psh = (flags & kFlagPsh) != 0;
  return true;
}

/// True when `c` extends the run headed by `head` whose next expected
/// sequence number is `next_seq`: same flow (MACs, addresses, ports), same
/// ack and window, contiguous payload.
bool continues_run(const EthernetFrame& head_frame, const Candidate& head,
                   std::uint32_t next_seq, const EthernetFrame& f,
                   const Candidate& c) {
  return f.dst == head_frame.dst && f.src == head_frame.src &&
         std::memcmp(c.ip + 12, head.ip + 12, 8) == 0 &&  // src + dst addr
         std::memcmp(c.tcp, head.tcp, 4) == 0 &&          // src + dst port
         c.seq == next_seq && c.ack == head.ack && c.window == head.window;
}

}  // namespace

std::size_t rss_hash(const EthernetFrame& frame) {
  const std::uint8_t* p = frame.payload.data();
  if (frame.type != EtherType::kIpv4 || frame.payload.size() < kIpHdr + kTcpHdr ||
      p[0] != 0x45 || p[9] != 6) {
    return 0;  // non-TCP traffic pins to lane 0
  }
  // The receiver-relative 4-tuple, packed and finalized exactly like
  // tcp::ConnKeyHash (local = IP destination).
  const std::uint32_t src_ip = get32(p + 12);
  const std::uint32_t dst_ip = get32(p + 16);
  const std::uint16_t src_port = get16(p + kIpHdr);
  const std::uint16_t dst_port = get16(p + kIpHdr + 2);
  std::uint64_t x = (static_cast<std::uint64_t>(dst_ip) << 32) |
                    (static_cast<std::uint64_t>(dst_port) << 16) | src_port;
  x ^= static_cast<std::uint64_t>(src_ip) * 0x9E3779B97F4A7C15ull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<std::size_t>(x);
}

void gro_coalesce(const GroParams& params, std::vector<RxFrame>&& in,
                  std::vector<RxFrame>& out, GroStats& stats) {
  stats.frames_in += in.size();

  // The active run: indices into `in` plus each member's parsed view
  // (pointers stay valid — frames are not moved until their run flushes).
  std::vector<std::size_t> run;
  std::vector<Candidate> cands;
  std::uint32_t next_seq = 0;
  std::size_t next_arrival = 0;
  std::size_t run_payload = 0;

  auto flush = [&] {
    if (run.empty()) return;
    if (run.size() == 1) {
      // Runs of one pass through byte-identical — no re-serialization.
      // Its checksums verified during candidate parsing, so the stack
      // need not walk the payload again (CHECKSUM_UNNECESSARY).
      in[run.front()].frame.checksums_verified = true;
      out.push_back(std::move(in[run.front()]));
      ++stats.frames_out;
      run.clear();
      cands.clear();
      return;
    }
    // Build the merged segment: payloads back to back, then the head's
    // TCP and IP headers prepended with length/flags/checksums patched.
    const Candidate& head = cands.front();
    wire::PacketBuffer buf =
        wire::PacketBuffer::alloc(run_payload, wire::PacketBuffer::kDefaultHeadroom);
    std::uint8_t* w = buf.mutable_data();
    for (const Candidate& c : cands) {
      std::memcpy(w, c.tcp + kTcpHdr, c.payload_len);
      w += c.payload_len;
    }
    const std::size_t tcp_len = kTcpHdr + run_payload;
    std::uint8_t* tcp = buf.prepend(kTcpHdr);
    std::memcpy(tcp, head.tcp, kTcpHdr);
    if (cands.back().psh) tcp[13] |= kFlagPsh;
    write_u16(tcp + 16, 0);
    // Compose the checksum from the members' already-verified payload sums
    // instead of re-walking the merged bytes; a member landing at an odd
    // byte offset contributes its sum rotated one byte.
    std::uint32_t sum = pseudo_sum(head.ip, tcp_len);
    sum += ones_complement_sum(BytesView(tcp, kTcpHdr));
    bool odd = false;
    for (const Candidate& c : cands) {
      sum += odd ? swap16(c.payload_sum) : c.payload_sum;
      odd ^= (c.payload_len & 1) != 0;
    }
    while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
    write_u16(tcp + 16, static_cast<std::uint16_t>(~sum & 0xffff));
    std::uint8_t* ip = buf.prepend(kIpHdr);
    std::memcpy(ip, head.ip, kIpHdr);
    write_u16(ip + 2, static_cast<std::uint16_t>(kIpHdr + tcp_len));
    write_u16(ip + 10, 0);
    write_u16(ip + 10, inet_checksum(BytesView(ip, kIpHdr)));

    const RxFrame& head_rx = in[run.front()];
    RxFrame merged;
    merged.frame.dst = head_rx.frame.dst;
    merged.frame.src = head_rx.frame.src;
    merged.frame.type = EtherType::kIpv4;
    merged.frame.payload = std::move(buf);
    // Every member verified and the merged checksums are correct by
    // construction: the stack may skip its own verification pass.
    merged.frame.checksums_verified = true;
    merged.to_us = head_rx.to_us;
    merged.seq = head_rx.seq;
    out.push_back(std::move(merged));
    ++stats.frames_out;
    stats.coalesced += run.size() - 1;
    run.clear();
    cands.clear();
  };

  for (std::size_t i = 0; i < in.size(); ++i) {
    Candidate c;
    if (!parse_candidate(in[i].frame, c, stats)) {
      flush();
      out.push_back(std::move(in[i]));
      ++stats.frames_out;
      continue;
    }
    // A run may only grow across frames that ABUT in the global arrival
    // order (`RxFrame::seq` consecutive). Any intervening frame — even one
    // routed to a different lane — breaks the run, which makes coalescing
    // a pure function of the arrival sequence: every lane count produces
    // byte-identical merged frames (the determinism contract, DESIGN.md §8).
    if (!run.empty() && run.size() < params.max_merged &&
        run_payload + c.payload_len <= params.max_payload &&
        in[i].seq == next_arrival &&
        continues_run(in[run.front()].frame, cands.front(), next_seq,
                      in[i].frame, c)) {
      run.push_back(i);
      cands.push_back(c);
      run_payload += c.payload_len;
      next_seq += static_cast<std::uint32_t>(c.payload_len);
      next_arrival = in[i].seq + 1;
      // PSH marks a delivery boundary: include it, then close the run.
      if (c.psh) flush();
      continue;
    }
    flush();
    run.push_back(i);
    cands.push_back(c);
    run_payload = c.payload_len;
    next_seq = c.seq + static_cast<std::uint32_t>(c.payload_len);
    next_arrival = in[i].seq + 1;
    if (c.psh) flush();  // a PSH segment can head a run but never grow one
  }
  flush();
}

}  // namespace tfo::net
