#include "net/medium.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "net/nic.hpp"

namespace tfo::net {

// ---------------------------------------------------------------- Shared

SharedMedium::SharedMedium(sim::Simulator& sim, SharedMediumParams params)
    : sim_(sim), params_(params), loss_rng_(params.loss_seed) {}

void SharedMedium::attach(Nic* nic) { nics_.push_back(nic); }

void SharedMedium::detach(Nic* nic) {
  nics_.erase(std::remove(nics_.begin(), nics_.end(), nic), nics_.end());
}

SimDuration SharedMedium::wire_time(const EthernetFrame& f) const {
  const std::uint64_t bits = static_cast<std::uint64_t>(f.wire_bytes()) * 8;
  return static_cast<SimDuration>(bits * 1'000'000'000ull / params_.bandwidth_bps);
}

void SharedMedium::transmit(Nic* sender, EthernetFrame frame) {
  const SimDuration tx = wire_time(frame);
  SimTime start = sim_.now();
  if (params_.half_duplex) {
    // One wire: all transmissions serialize against each other.
    if (busy_until_ > start) {
      ++deferrals_;
      start = busy_until_;
    }
    busy_until_ = start + static_cast<SimTime>(tx);
  } else {
    // Switched (full duplex): each sender owns an independent uplink and
    // serializes only against itself.
    SimTime& sender_busy = tx_busy_until_[sender];
    if (sender_busy > start) {
      ++deferrals_;
      start = sender_busy;
    }
    sender_busy = start + static_cast<SimTime>(tx);
  }
  wire_bytes_carried_ += frame.wire_bytes();
  const SimTime arrive =
      start + static_cast<SimTime>(tx) + static_cast<SimTime>(params_.propagation);
  sim_.schedule_at(arrive, [this, sender, f = std::move(frame)] { deliver(sender, f); });
}

void SharedMedium::deliver(Nic* sender, const EthernetFrame& frame) {
  // Snapshot: a receive handler may attach/detach NICs (e.g. failover).
  const std::vector<Nic*> nics = nics_;
  for (Nic* nic : nics) {
    if (nic == sender) continue;
    if (loss_fn_ && loss_fn_(*sender, *nic, frame)) continue;
    if (params_.loss_probability > 0.0 && loss_rng_.bernoulli(params_.loss_probability)) {
      continue;
    }
    nic->deliver(frame);
  }
}

// ---------------------------------------------------------- PointToPoint

PointToPointLink::PointToPointLink(sim::Simulator& sim, PointToPointParams params)
    : sim_(sim), params_(params), loss_rng_(params.loss_seed) {}

void PointToPointLink::attach(Nic* nic) {
  if (ends_[0] == nullptr) {
    ends_[0] = nic;
  } else if (ends_[1] == nullptr) {
    ends_[1] = nic;
  } else {
    TFO_ASSERT(false, "PointToPointLink supports exactly two endpoints");
  }
}

void PointToPointLink::detach(Nic* nic) {
  for (auto& end : ends_) {
    if (end == nic) end = nullptr;
  }
}

SimDuration PointToPointLink::wire_time(const EthernetFrame& f) const {
  const std::uint64_t bits = static_cast<std::uint64_t>(f.wire_bytes()) * 8;
  return static_cast<SimDuration>(bits * 1'000'000'000ull / params_.bandwidth_bps);
}

void PointToPointLink::transmit(Nic* sender, EthernetFrame frame) {
  int side = -1;
  if (sender == ends_[0]) side = 0;
  if (sender == ends_[1]) side = 1;
  TFO_ASSERT(side >= 0, "transmit from NIC not attached to link");
  Nic* peer = ends_[1 - side];
  if (peer == nullptr) return;

  Direction& dir = dir_[side];
  if (dir.in_flight >= params_.queue_limit) {
    ++drops_queue_;
    return;
  }
  if (params_.loss_probability > 0.0 && loss_rng_.bernoulli(params_.loss_probability)) {
    ++drops_loss_;
    return;
  }
  const SimDuration tx = wire_time(frame);
  const SimTime start = std::max(sim_.now(), dir.busy_until);
  dir.busy_until = start + static_cast<SimTime>(tx);
  ++dir.in_flight;
  const SimTime arrive = dir.busy_until + static_cast<SimTime>(params_.propagation);
  sim_.schedule_at(arrive, [this, side, peer, f = std::move(frame)] {
    --dir_[side].in_flight;
    peer->deliver(f);
  });
}

}  // namespace tfo::net
