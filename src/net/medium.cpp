#include "net/medium.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "net/nic.hpp"

namespace tfo::net {

namespace {

/// Folds the legacy loss knobs into the impairment pipeline: the old
/// `loss_probability`/`loss_seed` pair configures the uniform-loss stage
/// and its seed, preserving the pre-pipeline drop schedules bit-for-bit.
ImpairmentParams fold_legacy_loss(ImpairmentParams ip, double loss_probability,
                                  std::uint64_t loss_seed) {
  if (loss_probability > 0.0) {
    if (ip.loss == 0.0) ip.loss = loss_probability;
    ip.seed = loss_seed;
  }
  return ip;
}

}  // namespace

// ---------------------------------------------------------------- Shared

SharedMedium::SharedMedium(sim::Simulator& sim, SharedMediumParams params)
    : sim_(sim),
      params_(params),
      impairment_(fold_legacy_loss(params.impairment, params.loss_probability,
                                   params.loss_seed)) {}

void SharedMedium::attach(Nic* nic) {
  if (!attached_.insert(nic).second) return;  // already attached
  nics_.push_back(nic);
}

void SharedMedium::detach(Nic* nic) {
  if (attached_.erase(nic) == 0) return;
  // Null the slot in place — a delivery pass may be mid-iteration over
  // nics_, and the erase is batched: one compaction sweep per simulation
  // instant, no matter how many NICs a failover storm detaches.
  *std::find(nics_.begin(), nics_.end(), nic) = nullptr;
  // A full-duplex port's busy state dies with its NIC: a later attach that
  // reuses the allocation must not inherit another port's schedule.
  tx_busy_until_.erase(nic);
  if (!sweep_scheduled_) {
    sweep_scheduled_ = true;
    sim_.schedule_after(0, [this] {
      sweep_scheduled_ = false;
      nics_.erase(std::remove(nics_.begin(), nics_.end(), nullptr), nics_.end());
    });
  }
}

bool SharedMedium::is_attached(const Nic* nic) const {
  return attached_.contains(nic);
}

SimDuration SharedMedium::wire_time(const EthernetFrame& f) const {
  const std::uint64_t bits = static_cast<std::uint64_t>(f.wire_bytes()) * 8;
  return static_cast<SimDuration>(bits * 1'000'000'000ull / params_.bandwidth_bps);
}

void SharedMedium::transmit(Nic* sender, EthernetFrame frame) {
  const SimDuration tx = wire_time(frame);
  SimTime start = sim_.now();
  if (params_.half_duplex) {
    // One wire: all transmissions serialize against each other.
    if (busy_until_ > start) {
      ++deferrals_;
      start = busy_until_;
    }
    busy_until_ = start + static_cast<SimTime>(tx);
  } else {
    // Switched (full duplex): each sender owns an independent uplink and
    // serializes only against itself.
    SimTime& sender_busy = tx_busy_until_[sender];
    if (sender_busy > start) {
      ++deferrals_;
      start = sender_busy;
    }
    sender_busy = start + static_cast<SimTime>(tx);
  }
  wire_bytes_carried_ += frame.wire_bytes();
  const SimTime arrive =
      start + static_cast<SimTime>(tx) + static_cast<SimTime>(params_.propagation);
  sim_.schedule_at(arrive, [this, sender, f = std::move(frame)] { deliver(sender, f); });
}

void SharedMedium::deliver(Nic* sender, const EthernetFrame& frame) {
  // Iterate the live roster by index — no per-frame snapshot copy. A
  // receive handler may attach/detach NICs (e.g. failover) mid-pass:
  // detach nulls the slot in place (checked fresh each step, so an
  // earlier receiver detaching — and destroying — a later one is safe),
  // and attaches land beyond `limit`, invisible to this pass like they
  // were to the old snapshot.
  const std::size_t limit = nics_.size();
  // The sender may itself have detached — or been destroyed by a host
  // kill — while the frame was in flight; it is only safe to dereference
  // while still attached. (The raw pointer is still used for the
  // self-delivery comparison, which never dereferences.)
  Nic* live_sender = is_attached(sender) ? sender : nullptr;
  for (std::size_t i = 0; i < limit; ++i) {
    Nic* nic = nics_[i];
    if (nic == sender) continue;
    if (nic == nullptr || !attached_.contains(nic)) {
      ++drops_detached_;
      continue;
    }
    // Targeted loss rules need the sending NIC; with the sender gone the
    // frame is past targeting and falls through to the pipeline.
    if (loss_fn_ && live_sender && loss_fn_(*live_sender, *nic, frame)) continue;
    Impairment::Plan plan = impairment_.plan(live_sender, *nic, frame);
    for (const Impairment::Copy& copy : plan.copies) {
      if (copy.extra_delay <= 0 && !copy.corrupted) {
        deliver_copy(nic, frame, plan.tracked);
        continue;
      }
      EthernetFrame f = copy.corrupted ? impairment_.corrupt_frame(frame) : frame;
      if (copy.extra_delay <= 0) {
        deliver_copy(nic, f, plan.tracked);
      } else {
        sim_.schedule_after(copy.extra_delay,
                            [this, nic, f = std::move(f), tracked = plan.tracked] {
                              deliver_copy(nic, f, tracked);
                            });
      }
    }
  }
}

void SharedMedium::deliver_copy(Nic* receiver, const EthernetFrame& frame,
                                bool tracked) {
  // Delayed copies resolve the receiver again at their own delivery time.
  if (!is_attached(receiver)) {
    ++drops_detached_;
    if (tracked) impairment_.note_detached();
    return;
  }
  if (tracked) impairment_.note_delivered();
  receiver->deliver(frame);
}

// ---------------------------------------------------------- PointToPoint

PointToPointLink::PointToPointLink(sim::Simulator& sim, PointToPointParams params)
    : sim_(sim),
      params_(params),
      impairment_(fold_legacy_loss(params.impairment, params.loss_probability,
                                   params.loss_seed)) {}

void PointToPointLink::attach(Nic* nic) {
  if (ends_[0] == nullptr) {
    ends_[0] = nic;
  } else if (ends_[1] == nullptr) {
    ends_[1] = nic;
  } else {
    TFO_ASSERT(false, "PointToPointLink supports exactly two endpoints");
  }
}

void PointToPointLink::detach(Nic* nic) {
  for (auto& end : ends_) {
    if (end == nic) end = nullptr;
  }
}

SimDuration PointToPointLink::wire_time(const EthernetFrame& f) const {
  const std::uint64_t bits = static_cast<std::uint64_t>(f.wire_bytes()) * 8;
  return static_cast<SimDuration>(bits * 1'000'000'000ull / params_.bandwidth_bps);
}

void PointToPointLink::transmit(Nic* sender, EthernetFrame frame) {
  int side = -1;
  if (sender == ends_[0]) side = 0;
  if (sender == ends_[1]) side = 1;
  TFO_ASSERT(side >= 0, "transmit from NIC not attached to link");
  Nic* peer = ends_[1 - side];
  if (peer == nullptr) return;

  Direction& dir = dir_[side];
  Impairment::Plan plan = impairment_.plan(sender, *peer, frame);
  if (plan.copies.empty()) {
    ++drops_loss_;
    return;
  }
  const SimDuration tx = wire_time(frame);
  const SimTime start = std::max(sim_.now(), dir.busy_until);
  bool occupied_wire = false;
  for (const Impairment::Copy& copy : plan.copies) {
    // Each copy occupies a queue slot until its own arrival.
    if (dir.in_flight >= params_.queue_limit) {
      ++drops_queue_;
      if (plan.tracked) impairment_.note_detached();
      continue;
    }
    if (!occupied_wire) {
      dir.busy_until = start + static_cast<SimTime>(tx);
      occupied_wire = true;
    }
    ++dir.in_flight;
    EthernetFrame f = copy.corrupted ? impairment_.corrupt_frame(frame) : frame;
    const SimTime arrive = dir.busy_until + static_cast<SimTime>(params_.propagation) +
                           static_cast<SimTime>(copy.extra_delay);
    // The peer is resolved at delivery time, not captured here: the NIC at
    // the far end may detach — or be destroyed by a host kill — while the
    // frame is in flight, and a frame must never land on a dead endpoint.
    sim_.schedule_at(arrive, [this, side, tracked = plan.tracked,
                              f = std::move(f)] {
      --dir_[side].in_flight;
      Nic* receiver = ends_[1 - side];
      if (receiver == nullptr) {
        ++drops_detached_;
        if (tracked) impairment_.note_detached();
        return;
      }
      if (tracked) impairment_.note_delivered();
      receiver->deliver(f);
    });
  }
}

}  // namespace tfo::net
