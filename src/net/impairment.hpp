// Composable network impairment engine.
//
// Real networks do more than lose frames: they lose them in bursts, deliver
// them twice, deliver them late (reordering), and deliver them damaged. The
// transparent-interposition design of the paper (§4's loss-case analysis,
// §8's teardown corner cases) is exactly the kind of layer that breaks under
// such conditions, so every simulated medium runs its deliveries through one
// `Impairment` pipeline:
//
//   loss      — uniform per-delivery Bernoulli loss, plus a Gilbert–Elliott
//               two-state chain for bursty loss (good/bad state with
//               per-state loss probabilities);
//   duplicate — a delivery is made twice, the second copy optionally
//               delayed (far-reordered duplicates are the §8 stray-FIN
//               trigger);
//   reorder   — per-copy extra delay jitter, which genuinely reorders
//               frames at the receiving NIC (the NIC only guarantees
//               in-arrival-order handup);
//   corrupt   — random byte flips in the frame payload; the IP header and
//               TCP checksums at the receive path are what must catch them.
//
// All decisions draw from one explicitly seeded Rng, so a failing
// impairment schedule is reproducible bit-for-bit from its seed. A target
// predicate scopes the pipeline to particular (sender, receiver) pairs,
// generalizing the per-receiver `LossFn` the §4 tests use.
//
// The engine also keeps conservation counters (offered, dropped,
// duplicated, reordered, corrupted, delivered, detached) and can mirror
// them into an `obs::Registry` as `net.impairment.*`; tests use the
// invariant  offered + duplicated == delivered + dropped + detached.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/frame.hpp"
#include "obs/metrics.hpp"

namespace tfo::net {

class Nic;

/// Two-state Markov loss model (Gilbert–Elliott): the chain advances one
/// step per considered delivery; each state has its own loss probability.
/// Disabled unless `p_enter_bad > 0`.
struct GilbertElliottParams {
  double p_enter_bad = 0.0;  // P(good -> bad) per delivery
  double p_exit_bad = 0.0;   // P(bad -> good) per delivery
  double loss_good = 0.0;    // loss probability while in the good state
  double loss_bad = 1.0;     // loss probability while in the bad state

  bool enabled() const { return p_enter_bad > 0.0; }
};

struct ImpairmentParams {
  /// Uniform per-delivery loss probability (0 disables).
  double loss = 0.0;
  /// Bursty loss overlay; consulted before the uniform model.
  GilbertElliottParams gilbert;
  /// Probability a delivery is duplicated (one extra copy).
  double duplicate = 0.0;
  /// Fixed extra delay applied to the duplicate copy (0 = back-to-back).
  SimDuration duplicate_delay = 0;
  /// Probability a copy is delayed by reorder jitter.
  double reorder = 0.0;
  /// Maximum extra delay for a reordered copy; the actual delay is uniform
  /// in [1, reorder_delay] ns.
  SimDuration reorder_delay = milliseconds(2);
  /// Probability a copy is delivered with corrupted payload bytes.
  double corrupt = 0.0;
  /// Maximum number of bytes flipped in a corrupted copy (>= 1).
  int corrupt_max_bytes = 3;
  /// Seed for the impairment decision stream.
  std::uint64_t seed = 4242;

  bool any_enabled() const {
    return loss > 0.0 || gilbert.enabled() || duplicate > 0.0 ||
           reorder > 0.0 || corrupt > 0.0;
  }
};

/// Scopes the pipeline to particular deliveries. `sender` is null when the
/// sending NIC is unknown or already detached at delivery time. The frame is
/// the one about to be delivered — targeted tests typically restrict to
/// `EtherType::kIpv4`, since only IP traffic carries receive-path checksums
/// that can catch a corrupted copy (ARP has none).
using ImpairmentTargetFn = std::function<bool(
    const Nic* sender, const Nic& receiver, const EthernetFrame& frame)>;

class Impairment {
 public:
  /// One scheduled delivery of a frame copy.
  struct Copy {
    SimDuration extra_delay = 0;
    bool corrupted = false;
  };

  /// The pipeline's verdict for one delivery. `copies` empty == dropped.
  /// `tracked` is false when the engine is disabled or the delivery is out
  /// of target scope — the medium must then skip the note_*() calls.
  struct Plan {
    std::vector<Copy> copies;
    bool tracked = false;
  };

  explicit Impairment(ImpairmentParams params = {});

  /// Replaces the parameters mid-run (the decision stream reseeds).
  /// Counters are preserved — reconfiguring a running soak phase must not
  /// break conservation checks.
  void configure(ImpairmentParams params);

  /// Restricts impairments to deliveries matching `fn` (nullptr clears).
  void set_target(ImpairmentTargetFn fn) { target_ = std::move(fn); }

  bool enabled() const { return params_.any_enabled(); }
  const ImpairmentParams& params() const { return params_; }

  /// Decides the fate of one delivery. Draws happen in a fixed order, so
  /// the schedule is a deterministic function of (seed, call sequence).
  Plan plan(const Nic* sender, const Nic& receiver, const EthernetFrame& frame);

  /// Returns a copy of `frame` with 1..corrupt_max_bytes payload bytes
  /// XOR-flipped (never a no-op flip). Draws from the same stream.
  EthernetFrame corrupt_frame(const EthernetFrame& frame);

  // Outcome notes from the owning medium, for tracked copies only.
  void note_delivered() { ++delivered_; mirror(ctr_delivered_, 1); }
  void note_detached() { ++detached_; mirror(ctr_detached_, 1); }

  /// Mirrors the conservation counters into `reg` as `net.impairment.*`,
  /// starting from the current values. Call before traffic flows (metric
  /// handles resolve once; earlier activity is back-filled).
  void bind_registry(obs::Registry& reg);

  struct Counters {
    std::uint64_t offered = 0;     // deliveries considered by the pipeline
    std::uint64_t dropped = 0;     // deliveries lost (uniform or bursty)
    std::uint64_t duplicated = 0;  // extra copies produced
    std::uint64_t reordered = 0;   // copies given extra delay
    std::uint64_t corrupted = 0;   // copies delivered with flipped bytes
    std::uint64_t delivered = 0;   // copies handed to a live NIC
    std::uint64_t detached = 0;    // copies dropped: receiver went away
  };
  Counters counters() const {
    return {offered_,   dropped_,   duplicated_, reordered_,
            corrupted_, delivered_, detached_};
  }

  /// Conservation invariant every run must keep: each considered delivery
  /// ends as exactly one of delivered/dropped/detached per copy.
  bool conserved() const {
    return offered_ + duplicated_ == delivered_ + dropped_ + detached_;
  }

  /// True while the Gilbert–Elliott chain sits in the bad state.
  bool in_bad_state() const { return bad_state_; }

 private:
  void mirror(obs::Counter* c, std::uint64_t n) {
    if (c != nullptr) c->inc(n);
  }

  ImpairmentParams params_;
  ImpairmentTargetFn target_;
  Rng rng_;
  bool bad_state_ = false;

  std::uint64_t offered_ = 0, dropped_ = 0, duplicated_ = 0;
  std::uint64_t reordered_ = 0, corrupted_ = 0;
  std::uint64_t delivered_ = 0, detached_ = 0;

  obs::Counter* ctr_offered_ = nullptr;
  obs::Counter* ctr_dropped_ = nullptr;
  obs::Counter* ctr_duplicated_ = nullptr;
  obs::Counter* ctr_reordered_ = nullptr;
  obs::Counter* ctr_corrupted_ = nullptr;
  obs::Counter* ctr_delivered_ = nullptr;
  obs::Counter* ctr_detached_ = nullptr;
};

}  // namespace tfo::net
