// GRO-style receive coalescing of abutting in-order TCP segments.
//
// A batched NIC hands the stack *runs* of back-to-back data segments from
// the same flow merged into one larger segment — the simulator's analogue
// of kernel Generic Receive Offload. One traversal of IP parse, TCP demux,
// bridge tap and ACK machinery then covers what used to be N traversals,
// which is where the batched data path's segments/s win comes from.
//
// Like real GRO this lives below IP and parses raw headers: src/net cannot
// see ip/ or tcp/ types (layering points the other way), and a hardware
// coalescer would not either. Only bit-exact candidates merge — IPv4 with
// no options or fragmentation, TCP with no options and only ACK/PSH flags,
// contiguous sequence numbers, identical ack/window — and both the IP and
// TCP checksums of every constituent are verified *before* its bytes are
// folded in, because the merged segment's checksums are recomputed and
// must never launder a corrupt frame into a valid-looking one. Anything
// else passes through byte-identical, so coalescing is semantically
// invisible (gro_test pins this down against uncoalesced delivery).
#pragma once

#include <cstdint>
#include <vector>

#include "net/frame.hpp"

namespace tfo::net {

/// One received frame staged in a NIC's rx batch ring. `seq` is the
/// frame's global arrival index within its batch: after per-lane
/// coalescing (a merged segment inherits its run head's seq) the NIC
/// merges lane outputs back into ascending-seq order, which restores
/// global arrival order independent of how the batch was sharded — the
/// deterministic lane merge key (virtual time, arrival seq).
struct RxFrame {
  EthernetFrame frame;
  bool to_us = false;
  std::size_t seq = 0;
};

struct GroParams {
  /// Maximum constituent segments folded into one merged segment.
  std::size_t max_merged = 8;
  /// Cap on the merged TCP payload (stays well under the receive window).
  std::size_t max_payload = 60000;
};

struct GroStats {
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  /// Frames absorbed into a neighbour (frames_in - frames_out).
  std::uint64_t coalesced = 0;
  /// Structurally mergeable frames rejected by checksum verification.
  std::uint64_t bad_checksum = 0;
};

/// RSS steering hash for lane partition: splitmix64-mixed 4-tuple for
/// IPv4/TCP frames (the same finalizer as `tcp::ConnKeyHash`, reapplied
/// here over raw header bytes), 0 for everything else — non-TCP traffic
/// pins to lane 0.
std::size_t rss_hash(const EthernetFrame& frame);

/// Coalesces one lane's arrival-ordered frames. Appends outputs to `out`
/// preserving arrival order (a merged segment takes its run head's
/// position). Pure computation over its inputs — safe to run on a lane
/// worker concurrently with other lanes.
void gro_coalesce(const GroParams& params, std::vector<RxFrame>&& in,
                  std::vector<RxFrame>& out, GroStats& stats);

}  // namespace tfo::net
