#include "net/nic.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace tfo::net {

Nic::Nic(sim::Simulator& sim, std::string name, MacAddress mac, NicParams params)
    : sim_(sim),
      name_(std::move(name)),
      mac_(mac),
      params_(params),
      jitter_rng_(params.jitter_seed ^ std::hash<MacAddress>{}(mac)) {}

Nic::~Nic() { detach(); }

void Nic::attach(Medium& medium) {
  detach();
  medium_ = &medium;
  medium_->attach(this);
}

void Nic::detach() {
  if (medium_ != nullptr) {
    medium_->detach(this);
    medium_ = nullptr;
  }
}

void Nic::send(EthernetFrame frame) {
  if (!enabled_ || medium_ == nullptr) return;
  frame.src = mac_;
  // Ethernet minimum frame: pad runt payloads to 46 bytes with zeros, as
  // real hardware does. Receivers recover the true length from the IP
  // total_length field (ARP likewise tolerates trailing padding).
  if (frame.payload.size() < EthernetFrame::kMinPayload) {
    frame.payload.append(EthernetFrame::kMinPayload - frame.payload.size());
  }
  ++tx_frames_;
  tx_bytes_ += frame.payload.size();
  TFO_LOG(kTrace, "nic") << name_ << " tx " << frame.payload.size() << "B -> "
                         << frame.dst.str();
  if (params_.tx_batch_max > 1) {
    // Tx burst ring: stage the frame and flush the whole burst to the
    // medium at the end of the current event (one medium transaction per
    // burst, frames still enter the wire in send order).
    tx_ring_.push_back(std::move(frame));
    if (tx_ring_.size() >= params_.tx_batch_max) {
      flush_tx();
    } else if (!tx_flush_scheduled_) {
      tx_flush_scheduled_ = true;
      sim_.schedule_after(0, [this] { flush_tx(); });
    }
    return;
  }
  medium_->transmit(this, std::move(frame));
}

void Nic::flush_tx() {
  tx_flush_scheduled_ = false;
  if (tx_ring_.empty()) return;
  std::vector<EthernetFrame> burst;
  burst.swap(tx_ring_);
  if (!enabled_ || medium_ == nullptr) return;  // crashed mid-burst: drop
  ++batch_stats_.tx_batches;
  batch_stats_.tx_frames_batched += burst.size();
  for (EthernetFrame& f : burst) medium_->transmit(this, std::move(f));
}

void Nic::deliver(const EthernetFrame& frame) {
  if (!enabled_) return;
  const bool to_us = frame.dst == mac_ || frame.dst.is_broadcast();
  if (!to_us && !promiscuous_) return;
  ++rx_frames_;
  rx_bytes_ += frame.payload.size();
  for (auto& obs : observers_) obs(frame, to_us);
  if (!rx_) return;
  if (params_.rx_batch_max > 1) {
    enqueue_rx(frame, to_us);
    return;
  }
  // Charge the host's protocol-processing latency, then hand up the stack.
  SimDuration delay = params_.rx_processing;
  if (params_.rx_jitter > 0) {
    delay += static_cast<SimDuration>(
        jitter_rng_.uniform(0, static_cast<std::uint64_t>(params_.rx_jitter) - 1));
  }
  // Jitter must not reorder deliveries: a NIC hands frames up in arrival
  // order.
  SimTime target = sim_.now() + static_cast<SimTime>(delay);
  if (target < rx_floor_) target = rx_floor_;
  rx_floor_ = target;
  sim_.schedule_at(target, [this, frame, to_us] {
    if (enabled_ && rx_) rx_(frame, to_us);
  });
}

void Nic::enqueue_rx(const EthernetFrame& frame, bool to_us) {
  RxFrame rx;
  rx.frame = frame;
  rx.to_us = to_us;
  rx.seq = rx_ring_.size();
  rx_ring_.push_back(std::move(rx));
  if (rx_ring_.size() == 1) {
    // First frame of the batch arms the flush and pays the processing
    // charge; followers within the window ride for free (the batching
    // win). The monotonic floor keeps batch N+1 behind batch N.
    rx_flush_floor_ = sim_.now() + static_cast<SimTime>(params_.rx_processing);
    SimTime target =
        rx_flush_floor_ + static_cast<SimTime>(params_.rx_batch_window);
    if (target < rx_floor_) target = rx_floor_;
    rx_flush_event_ = sim_.schedule_at(target, [this] { flush_rx(); });
    rx_floor_ = target;
  } else if (rx_ring_.size() >= params_.rx_batch_max) {
    // Full ring flushes as soon as the processing charge allows instead
    // of waiting out the rest of the window.
    SimTime target = std::max(sim_.now(), rx_flush_floor_);
    sim_.cancel(rx_flush_event_);
    rx_flush_event_ = sim_.schedule_at(target, [this] { flush_rx(); });
    rx_floor_ = std::max(rx_floor_, target);
  }
}

void Nic::flush_rx() {
  rx_flush_event_ = sim::kNoEvent;
  if (rx_ring_.empty()) return;
  std::vector<RxFrame> batch;
  batch.swap(rx_ring_);
  if (!enabled_ || !rx_) return;
  ++batch_stats_.rx_batches;
  batch_stats_.frames_batched += batch.size();

  // RSS partition: shard the batch by flow hash across the lanes, GRO
  // each lane independently (speculatively, on worker threads when the
  // lane set runs parallel), then merge lane outputs back into global
  // arrival order by seq. The merge key makes delivery order — and thus
  // every downstream effect — independent of the lane count.
  const unsigned lane_count = lanes_ != nullptr ? lanes_->lanes() : 1;
  std::vector<std::vector<RxFrame>> lane_in(lane_count);
  for (RxFrame& f : batch) {
    const unsigned lane =
        lane_count > 1 ? lanes_->lane_for(rss_hash(f.frame)) : 0;
    lane_in[lane].push_back(std::move(f));
  }
  std::vector<std::vector<RxFrame>> lane_out(lane_count);
  std::vector<GroStats> lane_stats(lane_count);
  for (unsigned lane = 0; lane < lane_count; ++lane) {
    if (lane_in[lane].empty()) continue;
    if (lanes_ != nullptr) {
      lanes_->submit(lane, [this, in = &lane_in[lane], out = &lane_out[lane],
                            st = &lane_stats[lane]]() -> sim::LaneSet::Commit {
        gro_coalesce(params_.gro, std::move(*in), *out, *st);
        return {};  // results land in lane-private slots; nothing to publish
      });
    } else {
      gro_coalesce(params_.gro, std::move(lane_in[lane]), lane_out[lane],
                   lane_stats[lane]);
    }
  }
  if (lanes_ != nullptr) lanes_->run_round();

  std::vector<RxFrame> merged;
  std::size_t total = 0;
  for (const auto& lo : lane_out) total += lo.size();
  merged.reserve(total);
  for (auto& lo : lane_out) {
    for (RxFrame& f : lo) merged.push_back(std::move(f));
  }
  std::sort(merged.begin(), merged.end(),
            [](const RxFrame& a, const RxFrame& b) { return a.seq < b.seq; });
  for (const GroStats& st : lane_stats) {
    gro_stats_.frames_in += st.frames_in;
    gro_stats_.frames_out += st.frames_out;
    gro_stats_.coalesced += st.coalesced;
    gro_stats_.bad_checksum += st.bad_checksum;
  }
  for (RxFrame& f : merged) {
    if (!enabled_ || !rx_) break;  // a handler may crash this host mid-batch
    rx_(f.frame, f.to_us);
  }
}

}  // namespace tfo::net
