#include "net/nic.hpp"

#include "common/logging.hpp"

namespace tfo::net {

Nic::Nic(sim::Simulator& sim, std::string name, MacAddress mac, NicParams params)
    : sim_(sim),
      name_(std::move(name)),
      mac_(mac),
      params_(params),
      jitter_rng_(params.jitter_seed ^ std::hash<MacAddress>{}(mac)) {}

Nic::~Nic() { detach(); }

void Nic::attach(Medium& medium) {
  detach();
  medium_ = &medium;
  medium_->attach(this);
}

void Nic::detach() {
  if (medium_ != nullptr) {
    medium_->detach(this);
    medium_ = nullptr;
  }
}

void Nic::send(EthernetFrame frame) {
  if (!enabled_ || medium_ == nullptr) return;
  frame.src = mac_;
  // Ethernet minimum frame: pad runt payloads to 46 bytes with zeros, as
  // real hardware does. Receivers recover the true length from the IP
  // total_length field (ARP likewise tolerates trailing padding).
  if (frame.payload.size() < EthernetFrame::kMinPayload) {
    frame.payload.append(EthernetFrame::kMinPayload - frame.payload.size());
  }
  ++tx_frames_;
  tx_bytes_ += frame.payload.size();
  TFO_LOG(kTrace, "nic") << name_ << " tx " << frame.payload.size() << "B -> "
                         << frame.dst.str();
  medium_->transmit(this, std::move(frame));
}

void Nic::deliver(const EthernetFrame& frame) {
  if (!enabled_) return;
  const bool to_us = frame.dst == mac_ || frame.dst.is_broadcast();
  if (!to_us && !promiscuous_) return;
  ++rx_frames_;
  rx_bytes_ += frame.payload.size();
  for (auto& obs : observers_) obs(frame, to_us);
  if (!rx_) return;
  // Charge the host's protocol-processing latency, then hand up the stack.
  SimDuration delay = params_.rx_processing;
  if (params_.rx_jitter > 0) {
    delay += static_cast<SimDuration>(
        jitter_rng_.uniform(0, static_cast<std::uint64_t>(params_.rx_jitter) - 1));
  }
  // Jitter must not reorder deliveries: a NIC hands frames up in arrival
  // order.
  SimTime target = sim_.now() + static_cast<SimTime>(delay);
  if (target < rx_floor_) target = rx_floor_;
  rx_floor_ = target;
  sim_.schedule_at(target, [this, frame, to_us] {
    if (enabled_ && rx_) rx_(frame, to_us);
  });
}

}  // namespace tfo::net
