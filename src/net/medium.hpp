// Simulated Ethernet segments and point-to-point links.
//
// `SharedMedium` models the paper's testbed: a 100 Mbit/s Ethernet
// collision domain. In half-duplex mode (the default) only one frame
// occupies the wire at a time, so diverted secondary→primary reply traffic
// contends with primary→client traffic — the effect behind the paper's
// Figure 5 receive-rate gap. Every attached NIC sees every frame, which is
// what lets the secondary server snoop in promiscuous mode (§3.1).
//
// `PointToPointLink` models a WAN hop (bandwidth, propagation delay,
// random loss, finite queue) for the paper's FTP experiment (Figure 6).
//
// Both media run every delivery through an `Impairment` pipeline
// (net/impairment.hpp): uniform and bursty loss, duplication, reordering
// jitter and byte corruption, per-receiver-targetable and deterministically
// seeded. The legacy `loss_probability`/`loss_seed` knobs remain as thin
// wrappers that configure the pipeline's uniform-loss stage.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/frame.hpp"
#include "net/impairment.hpp"
#include "sim/simulator.hpp"

namespace tfo::net {

class Nic;

/// Decides, per delivery, whether a frame is lost between a sender and one
/// receiver. Per-receiver loss lets tests reproduce the paper's §4 cases
/// ("the secondary server drops the client segment although the primary
/// server receives it"). Consulted before the impairment pipeline.
using LossFn = std::function<bool(const Nic& sender, const Nic& receiver,
                                  const EthernetFrame& frame)>;

/// Common interface: a place NICs attach to and transmit through.
class Medium {
 public:
  virtual ~Medium() = default;
  virtual void attach(Nic* nic) = 0;
  virtual void detach(Nic* nic) = 0;
  virtual void transmit(Nic* sender, EthernetFrame frame) = 0;
};

struct SharedMediumParams {
  /// Link speed in bits per second (paper testbed: 100 Mbit/s).
  std::uint64_t bandwidth_bps = 100'000'000;
  /// One-way propagation delay across the segment.
  SimDuration propagation = microseconds(1);
  /// Half-duplex: the wire serializes all transmissions (hub semantics).
  /// Full-duplex: each sender owns an independent transmit path (switch
  /// semantics without per-port forwarding tables).
  bool half_duplex = true;
  /// Legacy uniform per-delivery loss knobs: folded into
  /// `impairment.loss`/`impairment.seed` at construction (0 disables).
  double loss_probability = 0.0;
  std::uint64_t loss_seed = 42;
  /// Impairment pipeline configuration (loss/duplication/reorder/corrupt).
  ImpairmentParams impairment;
};

class SharedMedium : public Medium {
 public:
  SharedMedium(sim::Simulator& sim, SharedMediumParams params = {});

  void attach(Nic* nic) override;
  void detach(Nic* nic) override;
  void transmit(Nic* sender, EthernetFrame frame) override;

  /// Installs an additional loss rule, consulted before the impairment
  /// pipeline. Return true to drop. Pass nullptr to clear.
  void set_loss_fn(LossFn fn) { loss_fn_ = std::move(fn); }

  /// The delivery impairment pipeline (reconfigure/target/counters).
  Impairment& impairment() { return impairment_; }
  const Impairment& impairment() const { return impairment_; }

  /// Total simulated octet-equivalents put on the wire (contention metric).
  std::uint64_t wire_bytes_carried() const { return wire_bytes_carried_; }
  /// Number of transmissions that had to wait for a busy wire.
  std::uint64_t deferrals() const { return deferrals_; }
  /// Frame copies dropped because the receiver detached (or was destroyed)
  /// while the copy was in flight.
  std::uint64_t drops_detached() const { return drops_detached_; }

  const SharedMediumParams& params() const { return params_; }

 private:
  SimDuration wire_time(const EthernetFrame& f) const;
  void deliver(Nic* sender, const EthernetFrame& frame);
  void deliver_copy(Nic* receiver, const EthernetFrame& frame, bool tracked);
  bool is_attached(const Nic* nic) const;

  sim::Simulator& sim_;
  SharedMediumParams params_;
  /// Attachment roster. Detach nulls the slot in place instead of erasing
  /// (a delivery pass may be iterating); one deferred compaction sweep per
  /// simulation instant erases the nulls. Membership checks go through
  /// `attached_` — O(1), where the old per-delivery vector scan was O(n)
  /// per frame and dominated 100k-host media.
  std::vector<Nic*> nics_;
  std::unordered_set<const Nic*> attached_;
  bool sweep_scheduled_ = false;
  SimTime busy_until_ = 0;  // half-duplex: the single wire
  std::unordered_map<Nic*, SimTime> tx_busy_until_;  // full-duplex: per port
  LossFn loss_fn_;
  Impairment impairment_;
  std::uint64_t wire_bytes_carried_ = 0;
  std::uint64_t deferrals_ = 0;
  std::uint64_t drops_detached_ = 0;
};

struct PointToPointParams {
  std::uint64_t bandwidth_bps = 10'000'000;  // a modest WAN uplink
  SimDuration propagation = milliseconds(10);
  /// Legacy uniform loss knobs: folded into the impairment pipeline.
  double loss_probability = 0.0;
  std::uint64_t loss_seed = 43;
  /// Maximum frames queued per direction before tail drop.
  std::size_t queue_limit = 64;
  /// Impairment pipeline configuration (loss/duplication/reorder/corrupt).
  ImpairmentParams impairment;
};

/// Full-duplex two-endpoint link with finite FIFO queues per direction.
class PointToPointLink : public Medium {
 public:
  PointToPointLink(sim::Simulator& sim, PointToPointParams params = {});

  void attach(Nic* nic) override;
  void detach(Nic* nic) override;
  void transmit(Nic* sender, EthernetFrame frame) override;

  /// The delivery impairment pipeline (reconfigure/target/counters).
  Impairment& impairment() { return impairment_; }
  const Impairment& impairment() const { return impairment_; }

  std::uint64_t drops_queue() const { return drops_queue_; }
  std::uint64_t drops_loss() const { return drops_loss_; }
  /// Copies dropped because the destination endpoint detached (or was
  /// destroyed) while the copy was in flight.
  std::uint64_t drops_detached() const { return drops_detached_; }
  const PointToPointParams& params() const { return params_; }

 private:
  struct Direction {
    SimTime busy_until = 0;
    std::size_t in_flight = 0;
  };
  SimDuration wire_time(const EthernetFrame& f) const;

  sim::Simulator& sim_;
  PointToPointParams params_;
  Nic* ends_[2] = {nullptr, nullptr};
  Direction dir_[2];  // dir_[i]: traffic transmitted by ends_[i]
  Impairment impairment_;
  std::uint64_t drops_queue_ = 0;
  std::uint64_t drops_loss_ = 0;
  std::uint64_t drops_detached_ = 0;
};

}  // namespace tfo::net
