// Ethernet MAC addresses.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

namespace tfo::net {

struct MacAddress {
  std::array<std::uint8_t, 6> b{};

  static MacAddress broadcast() {
    return MacAddress{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
  }

  /// Deterministic locally-administered address derived from a small id.
  static MacAddress from_id(std::uint32_t id) {
    return MacAddress{{0x02, 0x00, static_cast<std::uint8_t>(id >> 24),
                       static_cast<std::uint8_t>(id >> 16),
                       static_cast<std::uint8_t>(id >> 8),
                       static_cast<std::uint8_t>(id)}};
  }

  bool is_broadcast() const { return *this == broadcast(); }

  std::string str() const {
    char buf[18];
    std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", b[0], b[1],
                  b[2], b[3], b[4], b[5]);
    return buf;
  }

  friend bool operator==(const MacAddress&, const MacAddress&) = default;
};

}  // namespace tfo::net

template <>
struct std::hash<tfo::net::MacAddress> {
  std::size_t operator()(const tfo::net::MacAddress& m) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (auto byte : m.b) h = (h ^ byte) * 1099511628211ull;
    return h;
  }
};
