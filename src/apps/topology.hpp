// Canned topologies matching the paper's testbeds.
//
//   Lan — one shared 100 Mb/s Ethernet segment with a client C, primary
//         server P, secondary server S, and an optional unreplicated
//         back-end host T (for §7.2 server-initiated connections).
//         This is the §9 measurement setup.
//
//   Wan — the same server LAN behind a router, with the client across a
//         bandwidth/latency/loss-shaped point-to-point link: the Figure 6
//         FTP environment.
#pragma once

#include <memory>
#include <optional>

#include "apps/host.hpp"
#include "ip/router.hpp"
#include "net/medium.hpp"
#include "sim/simulator.hpp"

namespace tfo::apps {

struct LanParams {
  net::SharedMediumParams medium;
  net::NicParams nic;
  tcp::TcpParams tcp;
  ip::ArpParams arp;
  bool with_backend = false;
  std::uint64_t seed = 11;
  /// Pre-populate every ARP cache (the paper warmed caches before timing).
  bool warm_arp = true;
  /// Lane configuration applied to every host (see HostParams::lanes).
  sim::LaneConfig lanes;
  /// Event-queue implementation for the topology's shared Simulator.
  sim::SchedulerKind scheduler = sim::SchedulerKind::kTimingWheel;
};

struct Lan {
  explicit Lan(sim::SchedulerKind scheduler = sim::SchedulerKind::kTimingWheel)
      : sim(scheduler) {}

  sim::Simulator sim;
  std::unique_ptr<net::SharedMedium> wire;
  std::unique_ptr<Host> client;
  std::unique_ptr<Host> primary;
  std::unique_ptr<Host> secondary;
  std::unique_ptr<Host> backend;  // optional unreplicated server T

  static constexpr const char* kClientAddr = "10.0.0.10";
  static constexpr const char* kPrimaryAddr = "10.0.0.1";
  static constexpr const char* kSecondaryAddr = "10.0.0.2";
  static constexpr const char* kBackendAddr = "10.0.0.3";
};

std::unique_ptr<Lan> make_lan(LanParams params = {});

struct WanParams {
  net::SharedMediumParams lan_medium;
  net::PointToPointParams wan_link;
  net::NicParams nic;
  tcp::TcpParams tcp;
  ip::ArpParams arp;
  /// Extra latency before the router's ARP cache reflects an update
  /// (stretches the paper's takeover interval T).
  ip::ArpParams router_arp;
  std::uint64_t seed = 12;
  bool warm_arp = true;
  /// Lane configuration applied to every host (see HostParams::lanes).
  sim::LaneConfig lanes;
};

struct Wan {
  sim::Simulator sim;
  std::unique_ptr<net::SharedMedium> lan_wire;
  std::unique_ptr<net::PointToPointLink> wan_wire;
  std::unique_ptr<ip::Router> router;
  std::unique_ptr<Host> client;  // across the WAN
  std::unique_ptr<Host> primary;
  std::unique_ptr<Host> secondary;

  static constexpr const char* kClientAddr = "192.168.1.10";
  static constexpr const char* kRouterWanAddr = "192.168.1.254";
  static constexpr const char* kRouterLanAddr = "10.0.0.254";
  static constexpr const char* kPrimaryAddr = "10.0.0.1";
  static constexpr const char* kSecondaryAddr = "10.0.0.2";
};

std::unique_ptr<Wan> make_wan(WanParams params = {});

}  // namespace tfo::apps
