// A simulated host: NIC + ARP + IP + TCP wired together, with a fail-stop
// switch. Hosts are protocol-stack-complete but bridge-agnostic — the
// failover machinery in src/core attaches to a host via the IP hook and
// TCP tap interfaces, exactly as the paper inserts its bridge between the
// TCP and IP layers of the server kernels.
#pragma once

#include <memory>
#include <string>

#include "ip/arp.hpp"
#include "ip/ip_layer.hpp"
#include "net/medium.hpp"
#include "net/nic.hpp"
#include "obs/obs.hpp"
#include "sim/lane.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_layer.hpp"
#include "wire/packet_buffer.hpp"

namespace tfo::apps {

struct HostParams {
  std::string name = "host";
  ip::Ipv4 addr;
  int prefix_len = 24;
  net::NicParams nic;
  ip::ArpParams arp;
  tcp::TcpParams tcp;
  /// Seed for this host's ISN generator and other local randomness.
  std::uint64_t seed = 7;
  /// Lane configuration for the sharded data path (NIC rx batches, TCP
  /// connection shards). The TFO_LANES environment variable overrides it
  /// at host construction; results are bit-identical either way — the
  /// lane merge order is deterministic by design.
  sim::LaneConfig lanes;
};

class Host {
 public:
  Host(sim::Simulator& sim, HostParams params, net::Medium& medium);
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  sim::Simulator& simulator() { return sim_; }
  sim::LaneSet& lanes() { return *lanes_; }
  net::Nic& nic() { return *nic_; }
  ip::ArpEntity& arp() { return *arp_; }
  ip::IpLayer& ip() { return *ip_; }
  tcp::TcpLayer& tcp() { return *tcp_; }

  ip::Ipv4 address() const { return params_.addr; }
  const std::string& name() const { return params_.name; }

  void set_default_gateway(ip::Ipv4 gw) { ip_->set_default_gateway(gw); }

  /// Fail-stop: the host goes silent instantly and forever.
  void fail();
  bool failed() const { return failed_; }

  // --- observability (see OBSERVABILITY.md).

  /// The host-wide observability hub the attached layers and bridges
  /// publish into.
  obs::Hub& obs() { return obs_; }
  const obs::Hub& obs() const { return obs_; }
  obs::Registry& metrics() { return obs_.registry; }
  obs::EventLog& timeline() { return obs_.timeline; }

  /// Point-in-time copy of every metric this host's components publish.
  obs::Snapshot metrics_snapshot() const {
    refresh_wire_counters();
    refresh_sim_counters();
    refresh_lane_counters();
    return obs_.registry.snapshot();
  }

  /// The host's full observability state — metrics plus failover timeline
  /// — as one JSON object (schema in OBSERVABILITY.md).
  std::string snapshot_json() const;

 private:
  /// Mirrors the process-global wire::buffer_stats() into this host's
  /// registry as net.alloc.* / net.bytes_copied counters. The stats are
  /// global (the buffer layer has no host notion), so each host publishes
  /// the delta since its own construction; within one simulation that is
  /// the run's packet-buffer activity, and it is deterministic because
  /// identical runs construct their hosts at identical points in the
  /// global allocation sequence.
  void refresh_wire_counters() const;

  /// Mirrors the shared Simulator's scheduler instrumentation into this
  /// host's registry as sim.wheel.* counters. Like the wire counters, the
  /// stats belong to a shared object (every host in a topology runs on
  /// one Simulator), so each host publishes the delta since its own
  /// construction.
  void refresh_sim_counters() const;

  /// Mirrors the NIC's batch/GRO statistics and the lane set's merge
  /// statistics into lane.* counters. Unlike every other counter family,
  /// lane.* describes the *execution strategy*, not the simulated system:
  /// merge stalls and cross-handoffs legitimately vary with the lane
  /// count, so the determinism contract (DESIGN.md §8) excludes lane.*
  /// from cross-lane-count snapshot comparisons.
  void refresh_lane_counters() const;

  sim::Simulator& sim_;
  obs::Hub obs_;
  HostParams params_;
  std::unique_ptr<sim::LaneSet> lanes_;
  std::unique_ptr<net::Nic> nic_;
  std::unique_ptr<ip::ArpEntity> arp_;
  std::unique_ptr<ip::IpLayer> ip_;
  std::unique_ptr<tcp::TcpLayer> tcp_;
  bool failed_ = false;

  // Wire-buffer accounting mirror (see refresh_wire_counters).
  wire::BufferStats wire_baseline_;
  mutable wire::BufferStats wire_published_;
  obs::Counter* ctr_alloc_buffers_ = nullptr;
  obs::Counter* ctr_alloc_bytes_ = nullptr;
  obs::Counter* ctr_alloc_copies_ = nullptr;
  obs::Counter* ctr_alloc_shares_ = nullptr;
  obs::Counter* ctr_bytes_copied_ = nullptr;

  // Scheduler instrumentation mirror (see refresh_sim_counters).
  sim::Simulator::Stats sim_baseline_;
  mutable sim::Simulator::Stats sim_published_;
  obs::Counter* ctr_sim_scheduled_ = nullptr;
  obs::Counter* ctr_sim_cancelled_ = nullptr;
  obs::Counter* ctr_sim_fired_ = nullptr;
  obs::Counter* ctr_sim_wheel_inserts_ = nullptr;
  obs::Counter* ctr_sim_heap_inserts_ = nullptr;
  obs::Counter* ctr_sim_cascades_ = nullptr;
  obs::Gauge* gau_sim_pool_events_ = nullptr;

  // Lane/batching telemetry mirror (see refresh_lane_counters). The NIC
  // and LaneSet are host-owned, so published-delta tracking starts at 0.
  mutable std::uint64_t lane_published_frames_batched_ = 0;
  mutable std::uint64_t lane_published_gro_coalesced_ = 0;
  mutable std::uint64_t lane_published_merge_stalls_ = 0;
  obs::Counter* ctr_lane_frames_batched_ = nullptr;
  obs::Counter* ctr_lane_gro_coalesced_ = nullptr;
  obs::Counter* ctr_lane_merge_stalls_ = nullptr;
};

}  // namespace tfo::apps
