// Off-path adversary (the RFC 5961 threat model): a host that injects
// spoofed segments it has no business sending — it never sees the
// victim's traffic, so every sequence number, port, and nonce is a
// guess. Attachable to any topology (shared medium or behind a router);
// the IP layer stamps whatever source address the attacker claims, which
// is exactly the blind-spoofing capability the hardening in src/tcp and
// src/core must withstand.
//
// Attack repertoire:
//   * blind RST sweeps — teardown attempts striding the sequence space
//     (RFC 5961 §3: only an exact RCV.NXT match may kill a connection);
//   * blind SYNs — in-window SYNs against synchronized connections
//     (§4: must elicit a challenge ACK, never a teardown);
//   * blind data injection — payload at guessed offsets (§5 ACK check
//     plus receive-window check dispose of it);
//   * ACK-window probing — pure ACKs sweeping the ACK space to locate
//     SND.UNA (§5.2: old ACKs die silently, future ACKs are challenged);
//   * forged ICMP fragmentation-needed — PMTUD quench attacks (the TCP
//     layer validates the quoted sequence against in-flight data and
//     clamps at min_pmtu);
//   * forged heartbeats — fault-detector liveness spoofing with a wrong
//     nonce seed (fault.hb_auth_failed).
//
// Everything is driven by a seeded Rng: the same config and seed inject
// the identical attack stream, so the determinism lane matrix holds with
// an attacker in the topology.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "apps/host.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"

namespace tfo::apps {

enum class AttackKind : std::uint8_t {
  kBlindRst = 0,
  kBlindSyn,
  kBlindData,
  kAckProbe,
  kIcmpFrag,
  kForgedHeartbeat,
};
inline constexpr std::size_t kAttackKinds = 6;

struct AttackerConfig {
  /// Destination of the injected traffic (e.g. the service address).
  ip::Ipv4 victim;
  /// Claimed source — the endpoint being impersonated (e.g. the client).
  ip::Ipv4 spoof_src;
  /// Server-side port of the connections under attack.
  std::uint16_t victim_port = 80;
  /// Claimed-source port guessing range. The deterministic ephemeral
  /// allocator hands out ports from 49152 up, so a narrow range here
  /// models an attacker that has already guessed the 4-tuple — the
  /// hardest case for the sequence-number defenses.
  std::uint16_t port_lo = 49152;
  std::uint16_t port_hi = 49160;

  /// Attacks to run; injections cycle through this list. Empty means
  /// every kind except forged heartbeats.
  std::vector<AttackKind> kinds;

  /// Injection rate (segments/s) and attack window from start().
  double rate = 2000.0;
  SimDuration duration = seconds(1);

  /// Blind sweeps stride the 32-bit sequence space by this much per
  /// injection (the classic windows-per-scan RST attack shape).
  std::uint32_t seq_stride = 8192;
  /// When set, guesses cluster uniformly within ±seq_spread of the hint
  /// instead of sweeping — models a partially informed attacker.
  std::optional<Seq32> seq_hint;
  std::uint32_t seq_spread = 1u << 20;
  /// Separate hint for the ACK field (the victim's *send* space is a
  /// different sequence circle than its receive space). Unset: random.
  std::optional<Seq32> ack_hint;

  /// Claimed source for forged heartbeats (a replica address); any()
  /// disables nothing — it is simply what the forgery claims. The nonce
  /// is derived from hb_seed_guess, which a real attacker does not know.
  ip::Ipv4 hb_spoof_src;
  std::uint64_t hb_seed_guess = 0xbad5eed;

  /// MTU claimed by forged ICMP fragmentation-needed messages.
  std::uint32_t icmp_mtu = 68;

  std::uint64_t seed = 99;
};

class Attacker {
 public:
  Attacker(Host& host, AttackerConfig cfg);
  Attacker(const Attacker&) = delete;
  Attacker& operator=(const Attacker&) = delete;
  ~Attacker();

  /// Begins injecting at the current sim time.
  void start();
  bool done() const { return done_; }

  std::uint64_t injected() const { return injected_; }
  std::uint64_t injected(AttackKind k) const {
    return by_kind_[static_cast<std::size_t>(k)];
  }

 private:
  void schedule_next();
  void inject_one();
  Seq32 guess_seq();
  Seq32 guess_ack();
  std::uint16_t guess_port();
  void send_tcp(std::uint8_t flags, std::uint16_t src_port, Seq32 seq, Seq32 ack,
                std::size_t payload_bytes);
  void send_icmp(std::uint16_t src_port);
  void send_heartbeat();

  Host& host_;
  AttackerConfig cfg_;
  Rng rng_;
  SimTime end_ = 0;
  bool done_ = true;
  std::uint64_t injected_ = 0;
  std::array<std::uint64_t, kAttackKinds> by_kind_{};
  std::uint32_t sweep_seq_ = 0;
  /// Liveness sentinel: scheduled injections may outlive the attacker.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  obs::Counter* ctr_injected_ = nullptr;
};

}  // namespace tfo::apps
