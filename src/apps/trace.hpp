// Frame tracing: a tcpdump-style observer that records every frame a NIC
// hands up (or a promiscuous tap sees), decoding Ethernet/IP/TCP headers
// into one-line summaries. Used by tests to assert wire-level behaviour
// and by humans to debug protocol interactions.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "ip/addr.hpp"
#include "net/frame.hpp"
#include "net/nic.hpp"
#include "sim/simulator.hpp"

namespace tfo::apps {

/// One decoded frame observation.
struct TraceRecord {
  SimTime at = 0;
  std::string nic;       // capture point
  bool to_us = true;     // false: promiscuous capture
  net::MacAddress src_mac, dst_mac;
  net::EtherType type = net::EtherType::kIpv4;

  // IP layer (valid when `has_ip`).
  bool has_ip = false;
  ip::Ipv4 src_ip, dst_ip;
  std::uint8_t proto = 0;

  // TCP layer (valid when `has_tcp`).
  bool has_tcp = false;
  std::uint16_t src_port = 0, dst_port = 0;
  std::uint32_t seq = 0, ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 0;
  std::size_t payload_len = 0;
  bool has_orig_dst_option = false;

  /// tcpdump-ish one-liner.
  std::string summary() const;
};

/// Attaches to a NIC as a passive observer and records everything the NIC
/// receives. The tracer must outlive the traffic of interest and the NIC
/// must outlive the tracer's registration (in practice: construct the
/// tracer after the host, keep both for the run).
class FrameTracer {
 public:
  /// `capture_promiscuous`: also record frames not addressed to the NIC.
  FrameTracer(sim::Simulator& sim, net::Nic& nic, bool capture_promiscuous = true);

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// Number of records matching a predicate.
  std::size_t count(const std::function<bool(const TraceRecord&)>& pred) const;

  /// Renders the whole capture, one line per frame.
  std::string dump() const;

  /// Decodes a frame into a record (no capture side effects); exposed for
  /// tests and ad-hoc tooling.
  static TraceRecord decode(const net::EthernetFrame& frame, bool to_us, SimTime at,
                            const std::string& nic_name);

 private:
  sim::Simulator& sim_;
  std::string nic_name_;
  bool capture_promiscuous_;
  std::vector<TraceRecord> records_;
};

}  // namespace tfo::apps
