#include "apps/ftp.hpp"

#include <cstdio>

#include "common/logging.hpp"

namespace tfo::apps {

// ------------------------------------------------------------------ server

FtpServer::FtpServer(tcp::TcpLayer& tcp, Params params)
    : tcp_(tcp), params_(params) {
  tcp_.listen(params_.ctrl_port,
              [this](std::shared_ptr<tcp::Connection> c) { on_accept(std::move(c)); },
              params_.opts);
}

void FtpServer::reply(Session& s, const std::string& text) {
  s.ctrl->send(to_bytes(text + "\r\n"));
}

void FtpServer::on_accept(std::shared_ptr<tcp::Connection> conn) {
  tcp::Connection* raw = conn.get();
  const std::uint64_t id = raw->id();
  Session s;
  s.ctrl = std::move(conn);
  sessions_.emplace(id, std::move(s));
  reply(sessions_[id], "220 tfo-ftpd ready");

  raw->on_readable = [this, raw, id] {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    Bytes data;
    raw->recv(data);
    for (std::uint8_t ch : data) {
      if (ch == '\n') {
        std::string line = std::move(it->second.linebuf);
        it->second.linebuf.clear();
        if (!line.empty() && line.back() == '\r') line.pop_back();
        on_line(id, line);
        it = sessions_.find(id);          // QUIT may erase; on_line may rehash
        if (it == sessions_.end()) return;
      } else {
        it->second.linebuf.push_back(static_cast<char>(ch));
      }
    }
  };
  raw->on_peer_fin = [raw] { raw->close(); };
  raw->on_closed = [this, id](tcp::CloseReason) { sessions_.erase(id); };
  if (raw->rx_available() > 0) raw->on_readable();
}

void FtpServer::on_line(std::uint64_t id, const std::string& line) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  Session& s = it->second;

  char arg[256] = {0};
  if (std::sscanf(line.c_str(), "USER %255s", arg) == 1) {
    s.authed = true;
    reply(s, "230 User logged in");
    return;
  }
  if (!s.authed) {
    reply(s, "530 Not logged in");
    return;
  }
  unsigned port = 0;
  if (std::sscanf(line.c_str(), "PORT %u", &port) == 1 && port <= 65535) {
    s.client_data_port = static_cast<std::uint16_t>(port);
    reply(s, "200 PORT command successful");
    return;
  }
  if (std::sscanf(line.c_str(), "RETR %255s", arg) == 1) {
    start_retr(s, arg);
    return;
  }
  if (std::sscanf(line.c_str(), "STOR %255s", arg) == 1) {
    start_stor(s, arg);
    return;
  }
  if (line == "QUIT") {
    reply(s, "221 Goodbye");
    s.ctrl->close();
    return;
  }
  reply(s, "500 Unknown command");
}

void FtpServer::start_retr(Session& s, const std::string& name) {
  auto file = fs_.find(name);
  if (file == fs_.end()) {
    reply(s, "550 File not found");
    return;
  }
  if (s.client_data_port == 0) {
    reply(s, "503 Use PORT first");
    return;
  }
  reply(s, "150 Opening data connection");
  // Active mode: connect from our data port to the client's listener —
  // with a replicated server this is the §7.2 server-initiated path.
  s.data = tcp_.connect(s.ctrl->key().remote_ip, s.client_data_port, params_.opts,
                        params_.data_port);
  const std::uint64_t id = s.ctrl->id();
  // Send the file as soon as the connection exists; close afterwards.
  const Bytes& content = file->second;
  s.data->on_established = [this, id, content] {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    Session& sess = it->second;
    sess.data->send(content);
    sess.data->close();
  };
  s.data->on_closed = [this, id](tcp::CloseReason r) {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    Session& sess = it->second;
    sess.data.reset();
    ++transfers_;
    reply(sess, r == tcp::CloseReason::kGraceful ? "226 Transfer complete"
                                                 : "426 Transfer aborted");
  };
}

void FtpServer::start_stor(Session& s, const std::string& name) {
  if (s.client_data_port == 0) {
    reply(s, "503 Use PORT first");
    return;
  }
  reply(s, "150 Opening data connection");
  s.stor_name = name;
  s.incoming.clear();
  s.data = tcp_.connect(s.ctrl->key().remote_ip, s.client_data_port, params_.opts,
                        params_.data_port);
  const std::uint64_t id = s.ctrl->id();
  tcp::Connection* data = s.data.get();
  s.data->on_readable = [this, id, data] {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    data->recv(it->second.incoming);
  };
  s.data->on_peer_fin = [data] { data->close(); };
  s.data->on_closed = [this, id](tcp::CloseReason r) {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    Session& sess = it->second;
    if (r == tcp::CloseReason::kGraceful) {
      fs_[sess.stor_name] = std::move(sess.incoming);
      ++transfers_;
      reply(sess, "226 Transfer complete");
    } else {
      reply(sess, "426 Transfer aborted");
    }
    sess.incoming.clear();
    sess.data.reset();
  };
}

// ------------------------------------------------------------------ client

FtpClient::FtpClient(tcp::TcpLayer& tcp, ip::Ipv4 server, std::uint16_t ctrl_port,
                     tcp::SocketOptions opts)
    : tcp_(tcp) {
  ctrl_ = tcp_.connect(server, ctrl_port, opts);
  ctrl_->on_readable = [this] { on_ctrl_data(); };
}

FtpClient::~FtpClient() {
  // Connections may outlive the client object; silence their callbacks.
  for (auto& conn : {ctrl_, data_}) {
    if (conn) {
      conn->on_established = nullptr;
      conn->on_readable = nullptr;
      conn->on_peer_fin = nullptr;
      conn->on_closed = nullptr;
    }
  }
  if (data_port_ != 0) tcp_.close_listener(data_port_);
}

void FtpClient::on_ctrl_data() {
  Bytes data;
  ctrl_->recv(data);
  for (std::uint8_t ch : data) {
    if (ch == '\n') {
      std::string line = std::move(linebuf_);
      linebuf_.clear();
      if (!line.empty() && line.back() == '\r') line.pop_back();
      on_reply(line);
    } else {
      linebuf_.push_back(static_cast<char>(ch));
    }
  }
}

void FtpClient::login(std::function<void(bool)> done) {
  op_ = Op::kLogin;
  op_done_ = std::move(done);
  ctrl_->send(to_bytes("USER anonymous\r\n"));
}

void FtpClient::open_data_listener(
    std::function<void(std::shared_ptr<tcp::Connection>)> on_conn) {
  data_port_ = tcp_.allocate_ephemeral_port();
  data_rx_.clear();
  data_closed_ = false;
  ctrl_226_ = false;
  tcp_.listen(data_port_, [this, on_conn = std::move(on_conn)](
                              std::shared_ptr<tcp::Connection> c) {
    tcp_.close_listener(data_port_);
    data_ = c;
    data_opened_at_ = tcp_.simulator().now();
    on_conn(std::move(c));
  });
}

void FtpClient::get(const std::string& name, std::function<void(bool, Bytes)> done) {
  op_ = Op::kPortForGet;
  op_file_ = name;
  op_done_get_ = std::move(done);
  open_data_listener([this](std::shared_ptr<tcp::Connection> c) {
    tcp::Connection* raw = c.get();
    raw->on_readable = [this, raw] { raw->recv(data_rx_); };
    raw->on_peer_fin = [raw] { raw->close(); };
    raw->on_closed = [this](tcp::CloseReason) {
      data_closed_ = true;
      data_closed_at_ = tcp_.simulator().now();
      maybe_finish_get();
    };
    if (raw->rx_available() > 0) raw->on_readable();
  });
  char buf[64];
  std::snprintf(buf, sizeof(buf), "PORT %u\r\n", data_port_);
  ctrl_->send(to_bytes(buf));
}

void FtpClient::put(const std::string& name, Bytes content,
                    std::function<void(bool)> done) {
  op_ = Op::kPortForPut;
  op_file_ = name;
  op_content_ = std::move(content);
  op_done_ = std::move(done);
  open_data_listener([this](std::shared_ptr<tcp::Connection> c) {
    c->send(op_content_, [this] { put_written_at_ = tcp_.simulator().now(); });
    c->close();
  });
  char buf[64];
  std::snprintf(buf, sizeof(buf), "PORT %u\r\n", data_port_);
  ctrl_->send(to_bytes(buf));
}

void FtpClient::maybe_finish_get() {
  if (op_ == Op::kGet && data_closed_ && ctrl_226_) {
    op_ = Op::kNone;
    auto done = std::move(op_done_get_);
    if (done) done(true, std::move(data_rx_));
    data_rx_.clear();
  }
}

void FtpClient::on_reply(const std::string& line) {
  if (line.size() < 3) return;
  const std::string code = line.substr(0, 3);
  switch (op_) {
    case Op::kLogin:
      if (code == "230") {
        op_ = Op::kNone;
        if (op_done_) op_done_(true);
      } else if (code == "530") {
        op_ = Op::kNone;
        if (op_done_) op_done_(false);
      }
      break;
    case Op::kPortForGet:
      if (code == "200") {
        op_ = Op::kGet;
        ctrl_->send(to_bytes("RETR " + op_file_ + "\r\n"));
      }
      break;
    case Op::kPortForPut:
      if (code == "200") {
        op_ = Op::kPut;
        ctrl_->send(to_bytes("STOR " + op_file_ + "\r\n"));
      }
      break;
    case Op::kGet:
      if (code == "226") {
        ctrl_226_ = true;
        maybe_finish_get();
      } else if (code == "550" || code == "426" || code == "503") {
        op_ = Op::kNone;
        if (op_done_get_) op_done_get_(false, {});
      }
      break;
    case Op::kPut:
      if (code == "226") {
        op_ = Op::kNone;
        if (op_done_) op_done_(true);
      } else if (code == "426" || code == "503") {
        op_ = Op::kNone;
        if (op_done_) op_done_(false);
      }
      break;
    case Op::kNone:
      break;
  }
}

void FtpClient::quit() {
  ctrl_->send(to_bytes("QUIT\r\n"));
  ctrl_->close();
}

}  // namespace tfo::apps
