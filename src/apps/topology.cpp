#include "apps/topology.hpp"

namespace tfo::apps {

namespace {

HostParams host_params(const char* name, const char* addr, const LanParams& p,
                       std::uint64_t seed) {
  HostParams hp;
  hp.name = name;
  hp.addr = ip::Ipv4::parse(addr);
  hp.nic = p.nic;
  hp.arp = p.arp;
  hp.tcp = p.tcp;
  hp.seed = seed;
  hp.lanes = p.lanes;
  return hp;
}

void warm_pair(Host& a, Host& b) {
  a.arp().add_static(b.address(), b.nic().mac());
  b.arp().add_static(a.address(), a.nic().mac());
}

}  // namespace

std::unique_ptr<Lan> make_lan(LanParams params) {
  auto lan = std::make_unique<Lan>(params.scheduler);
  lan->wire = std::make_unique<net::SharedMedium>(lan->sim, params.medium);
  lan->client = std::make_unique<Host>(
      lan->sim, host_params("client", Lan::kClientAddr, params, params.seed + 1),
      *lan->wire);
  lan->primary = std::make_unique<Host>(
      lan->sim, host_params("primary", Lan::kPrimaryAddr, params, params.seed + 2),
      *lan->wire);
  lan->secondary = std::make_unique<Host>(
      lan->sim, host_params("secondary", Lan::kSecondaryAddr, params, params.seed + 3),
      *lan->wire);
  if (params.with_backend) {
    lan->backend = std::make_unique<Host>(
        lan->sim, host_params("backend", Lan::kBackendAddr, params, params.seed + 4),
        *lan->wire);
  }
  if (params.warm_arp) {
    warm_pair(*lan->client, *lan->primary);
    warm_pair(*lan->client, *lan->secondary);
    warm_pair(*lan->primary, *lan->secondary);
    if (lan->backend) {
      warm_pair(*lan->backend, *lan->primary);
      warm_pair(*lan->backend, *lan->secondary);
      warm_pair(*lan->backend, *lan->client);
    }
  }
  return lan;
}

std::unique_ptr<Wan> make_wan(WanParams params) {
  auto wan = std::make_unique<Wan>();
  wan->lan_wire = std::make_unique<net::SharedMedium>(wan->sim, params.lan_medium);
  wan->wan_wire = std::make_unique<net::PointToPointLink>(wan->sim, params.wan_link);

  LanParams lp;
  lp.nic = params.nic;
  lp.arp = params.arp;
  lp.tcp = params.tcp;
  lp.lanes = params.lanes;

  wan->primary = std::make_unique<Host>(
      wan->sim, host_params("primary", Wan::kPrimaryAddr, lp, params.seed + 2),
      *wan->lan_wire);
  wan->secondary = std::make_unique<Host>(
      wan->sim, host_params("secondary", Wan::kSecondaryAddr, lp, params.seed + 3),
      *wan->lan_wire);
  wan->client = std::make_unique<Host>(
      wan->sim, host_params("client", Wan::kClientAddr, lp, params.seed + 1),
      *wan->wan_wire);

  wan->router = std::make_unique<ip::Router>(wan->sim, "router");
  wan->router->add_port(*wan->lan_wire, ip::Ipv4::parse(Wan::kRouterLanAddr), 24,
                        params.nic, params.router_arp);
  wan->router->add_port(*wan->wan_wire, ip::Ipv4::parse(Wan::kRouterWanAddr), 24,
                        params.nic, params.router_arp);

  const auto gw_lan = ip::Ipv4::parse(Wan::kRouterLanAddr);
  const auto gw_wan = ip::Ipv4::parse(Wan::kRouterWanAddr);
  wan->primary->set_default_gateway(gw_lan);
  wan->secondary->set_default_gateway(gw_lan);
  wan->client->set_default_gateway(gw_wan);

  if (params.warm_arp) {
    wan->primary->arp().add_static(wan->secondary->address(),
                                   wan->secondary->nic().mac());
    wan->secondary->arp().add_static(wan->primary->address(),
                                     wan->primary->nic().mac());
    wan->primary->arp().add_static(gw_lan, wan->router->nic(0).mac());
    wan->secondary->arp().add_static(gw_lan, wan->router->nic(0).mac());
    wan->client->arp().add_static(gw_wan, wan->router->nic(1).mac());
    wan->router->arp(0).add_static(wan->primary->address(),
                                   wan->primary->nic().mac());
    wan->router->arp(0).add_static(wan->secondary->address(),
                                   wan->secondary->nic().mac());
    wan->router->arp(1).add_static(wan->client->address(),
                                   wan->client->nic().mac());
  }
  return wan;
}

}  // namespace tfo::apps
