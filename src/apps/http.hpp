// A compact HTTP/1.0/1.1 server and client — the paper's introduction
// motivates exactly this deployment: "a replicated Web server that
// accepts connection requests from unreplicated clients" (§1).
//
// Server: GET/HEAD over a static in-memory document tree. HTTP/1.0
// requests get one response and the server closes (the original
// semantics, preserved for the failover tests); HTTP/1.1 requests
// default to keep-alive, serving any number of sequential requests per
// connection until "Connection: close" — the short-exchange shape the
// churn load generator (loadgen.hpp) drives. Responses are a pure
// function of the request, so replicas are deterministic as the
// failover system requires.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "tcp/tcp_layer.hpp"

namespace tfo::apps {

class HttpServer {
 public:
  HttpServer(tcp::TcpLayer& tcp, std::uint16_t port = 80, tcp::SocketOptions opts = {});

  /// Publishes a document at `path` (e.g. "/index.html").
  void add_document(const std::string& path, Bytes body,
                    std::string content_type = "text/html");

  std::uint64_t requests_served() const { return requests_; }
  std::uint64_t responses_404() const { return not_found_; }

 private:
  struct Document {
    Bytes body;
    std::string content_type;
  };
  struct Session {
    std::shared_ptr<tcp::Connection> conn;
    std::string buf;
  };

  void on_accept(std::shared_ptr<tcp::Connection> conn);
  /// Serves one parsed request; returns false when the connection was
  /// closed (HTTP/1.0 or "Connection: close") and the session is done.
  bool handle_request(tcp::Connection* conn, const std::string& request);

  std::map<std::string, Document> docs_;
  // Keyed by Connection::id(), not the pointer: a recycled allocation
  // must not inherit a dead session's buffer (ABA).
  std::unordered_map<std::uint64_t, Session> sessions_;
  std::uint64_t requests_ = 0;
  std::uint64_t not_found_ = 0;
};

/// One-shot HTTP/1.0 client: connect, GET, collect the response, close.
class HttpClient {
 public:
  struct Response {
    int status = 0;
    std::string headers;  // raw header block
    Bytes body;
  };
  using Handler = std::function<void(bool ok, Response)>;

  HttpClient(tcp::TcpLayer& tcp, ip::Ipv4 server, std::uint16_t port = 80);
  ~HttpClient();

  /// Issues `GET path`; `done` fires when the server closes the response.
  void get(const std::string& path, Handler done);

 private:
  void finish();
  void detach();
  tcp::TcpLayer& tcp_;
  ip::Ipv4 server_;
  std::uint16_t port_;
  std::shared_ptr<tcp::Connection> conn_;
  Bytes raw_;
  Handler done_;
  bool finished_ = false;
};

}  // namespace tfo::apps
