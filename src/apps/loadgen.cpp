#include "apps/loadgen.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hpp"

namespace tfo::apps {

LoadGen::LoadGen(sim::Simulator& sim, std::vector<tcp::TcpLayer*> clients,
                 LoadGenConfig cfg, obs::Hub* hub)
    : sim_(sim), clients_(std::move(clients)), cfg_(std::move(cfg)), rng_(cfg_.seed) {
  if (cfg_.mix.empty()) cfg_.mix.push_back({"/", 1});
  for (const auto& e : cfg_.mix) mix_total_weight_ += e.weight;
  if (cfg_.requests_per_conn < 1) cfg_.requests_per_conn = 1;
  // Reserve the sample store up front so memory-bounded churn benches
  // measure the stack's growth, not the recorder's reallocation.
  const double expected_conns =
      static_cast<double>(cfg_.duration) / 1e9 * cfg_.conns_per_sec;
  latencies_.reserve(static_cast<std::size_t>(
      (expected_conns * 1.25 + 64) * cfg_.requests_per_conn));
  setup_latencies_.reserve(
      static_cast<std::size_t>(expected_conns * 1.25 + 64));
  if (hub != nullptr) {
    auto& reg = hub->registry;
    ctr_started_ = &reg.counter("loadgen.conns_started");
    ctr_established_ = &reg.counter("loadgen.conns_established");
    ctr_completed_ = &reg.counter("loadgen.conns_completed");
    ctr_failed_ = &reg.counter("loadgen.conns_failed");
    ctr_connect_failures_ = &reg.counter("loadgen.connect_failures");
    ctr_requests_sent_ = &reg.counter("loadgen.requests_sent");
    ctr_responses_ok_ = &reg.counter("loadgen.responses_ok");
    ctr_responses_bad_ = &reg.counter("loadgen.responses_bad");
    hist_latency_ = &reg.histogram("loadgen.request_latency_ns");
    hist_setup_ = &reg.histogram("loadgen.setup_latency_ns");
  }
}

LoadGen::~LoadGen() {
  // Connections may outlive the generator inside the TCP layer; their
  // callbacks must not fire into freed memory.
  for (auto& [id, c] : conns_) {
    if (!c.conn) continue;
    c.conn->on_established = nullptr;
    c.conn->on_readable = nullptr;
    c.conn->on_peer_fin = nullptr;
    c.conn->on_closed = nullptr;
  }
}

void LoadGen::start() {
  arrivals_end_ = sim_.now() + static_cast<SimTime>(cfg_.duration);
  arrivals_done_ = false;
  // The first arrival fires immediately; every subsequent gap comes from
  // the seeded schedule, never from connection completions (open loop).
  sim_.schedule_after(0, [this] {
    launch_conn();
    schedule_next_arrival();
  });
}

void LoadGen::schedule_next_arrival() {
  if (cfg_.max_conns != 0 && started_ >= cfg_.max_conns) {
    arrivals_done_ = true;
    return;
  }
  const double mean_gap_ns = 1e9 / cfg_.conns_per_sec;
  const double gap =
      cfg_.exponential_arrivals ? rng_.exponential(mean_gap_ns) : mean_gap_ns;
  const SimTime next =
      sim_.now() + static_cast<SimTime>(std::max(1.0, gap));
  if (next > arrivals_end_) {
    arrivals_done_ = true;
    return;
  }
  sim_.schedule_at(next, [this] {
    launch_conn();
    schedule_next_arrival();
  });
}

const std::string& LoadGen::pick_path() {
  std::uint32_t r = static_cast<std::uint32_t>(
      rng_.uniform(0, mix_total_weight_ - 1));
  for (const auto& e : cfg_.mix) {
    if (r < e.weight) return e.path;
    r -= e.weight;
  }
  return cfg_.mix.back().path;
}

void LoadGen::launch_conn() {
  ++started_;
  if (ctr_started_) ctr_started_->inc();
  tcp::TcpLayer* layer = clients_[(started_ - 1) % clients_.size()];
  auto conn = layer->connect(cfg_.server, cfg_.port, cfg_.socket);
  if (!conn) {
    // Local refusal: the client host's ephemeral-port space is exhausted.
    ++failed_;
    ++connect_failures_;
    if (ctr_failed_) ctr_failed_->inc();
    if (ctr_connect_failures_) ctr_connect_failures_->inc();
    return;
  }
  const std::uint64_t id = conn->id();
  Conn& c = conns_[id];
  c.conn = std::move(conn);
  c.remaining = cfg_.requests_per_conn;
  c.launched_at = sim_.now();
  c.conn->on_established = [this, id] {
    ++established_;
    if (ctr_established_) ctr_established_->inc();
    auto it = conns_.find(id);
    if (it != conns_.end()) {
      const SimDuration setup =
          static_cast<SimDuration>(sim_.now() - it->second.launched_at);
      setup_latencies_.push_back(setup);
      if (hist_setup_) hist_setup_->observe(static_cast<std::uint64_t>(setup));
    }
    send_request(id);
  };
  c.conn->on_readable = [this, id] { consume_responses(id); };
  c.conn->on_peer_fin = [this, id] {
    // Server closed (after the "Connection: close" response, or early
    // under failure). Drain what arrived with the FIN, then close our
    // side so the teardown completes.
    consume_responses(id);
    auto it2 = conns_.find(id);
    if (it2 != conns_.end()) it2->second.conn->close();
  };
  c.conn->on_closed = [this, id](tcp::CloseReason reason) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    // Graceful close with every response consumed is success; anything
    // else (RST, timeout, early FIN) failed the connection.
    finish_conn(id, reason == tcp::CloseReason::kGraceful &&
                        it->second.remaining == 0 && !it->second.inflight);
  };
}

void LoadGen::send_request(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  c.thinking = false;
  if (c.remaining <= 0 || c.inflight) return;
  const bool last = c.remaining == 1;
  const std::string request = "GET " + pick_path() +
                              " HTTP/1.1\r\nHost: loadgen\r\nConnection: " +
                              (last ? "close" : "keep-alive") + "\r\n\r\n";
  c.inflight = true;
  c.sent_at = sim_.now();
  ++requests_sent_;
  if (ctr_requests_sent_) ctr_requests_sent_->inc();
  c.conn->send(to_bytes(request));
}

void LoadGen::consume_responses(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  Bytes data;
  c.conn->recv(data);
  c.rx += to_string(data);
  // Parse complete responses (header block + Content-Length body).
  while (c.inflight) {
    const auto header_end = c.rx.find("\r\n\r\n");
    if (header_end == std::string::npos) return;
    std::size_t content_length = 0;
    {
      // Our HttpServer always emits Content-Length with this exact name.
      const auto cl = c.rx.find("Content-Length:");
      if (cl != std::string::npos && cl < header_end) {
        content_length = static_cast<std::size_t>(
            std::strtoull(c.rx.c_str() + cl + 15, nullptr, 10));
      }
    }
    const std::size_t total = header_end + 4 + content_length;
    if (c.rx.size() < total) return;

    int status = 0;
    std::sscanf(c.rx.c_str(), "HTTP/1.%*d %d", &status);
    c.rx.erase(0, total);
    c.inflight = false;
    --c.remaining;
    const SimDuration lat = static_cast<SimDuration>(sim_.now() - c.sent_at);
    latencies_.push_back(lat);
    if (hist_latency_) hist_latency_->observe(static_cast<std::uint64_t>(lat));
    if (status == 200) {
      ++responses_ok_;
      if (ctr_responses_ok_) ctr_responses_ok_->inc();
    } else {
      ++responses_bad_;
      if (ctr_responses_bad_) ctr_responses_bad_->inc();
    }
    if (c.remaining > 0) {
      if (cfg_.think_time > 0) {
        c.thinking = true;
        sim_.schedule_after(cfg_.think_time, [this, id] {
          auto it2 = conns_.find(id);
          if (it2 != conns_.end() && it2->second.thinking) send_request(id);
        });
      } else {
        send_request(id);
      }
    }
    // remaining == 0: the last request carried "Connection: close"; we
    // wait for the server's FIN and count completion in on_closed.
  }
}

void LoadGen::finish_conn(std::uint64_t id, bool ok) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  if (ok) {
    ++completed_;
    if (ctr_completed_) ctr_completed_->inc();
  } else {
    ++failed_;
    if (ctr_failed_) ctr_failed_->inc();
    TFO_LOG(kDebug, "loadgen") << "connection " << id << " failed with "
                               << it->second.remaining << " request(s) left";
  }
  conns_.erase(it);
}

}  // namespace tfo::apps
