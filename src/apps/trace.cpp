#include "apps/trace.hpp"

#include <sstream>

#include "common/bytes.hpp"
#include "ip/datagram.hpp"
#include "tcp/segment.hpp"

namespace tfo::apps {

std::string TraceRecord::summary() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  os << "[" << static_cast<double>(at) / 1e3 << "us] " << nic
     << (to_us ? "" : " (promisc)") << " ";
  if (!has_ip) {
    os << (type == net::EtherType::kArp ? "ARP" : "ETH") << " " << src_mac.str() << " > "
       << dst_mac.str();
    return os.str();
  }
  os << src_ip.str();
  if (has_tcp) os << ":" << src_port;
  os << " > " << dst_ip.str();
  if (has_tcp) os << ":" << dst_port;
  if (!has_tcp) {
    os << " proto=" << static_cast<int>(proto);
    return os.str();
  }
  os << " [";
  if (flags & tcp::Flags::kSyn) os << "S";
  if (flags & tcp::Flags::kFin) os << "F";
  if (flags & tcp::Flags::kRst) os << "R";
  if (flags & tcp::Flags::kPsh) os << "P";
  if (flags & tcp::Flags::kAck) os << ".";
  os << "] seq=" << seq << " ack=" << ack << " win=" << window
     << " len=" << payload_len;
  if (has_orig_dst_option) os << " odst";
  return os.str();
}

TraceRecord FrameTracer::decode(const net::EthernetFrame& frame, bool to_us, SimTime at,
                                const std::string& nic_name) {
  TraceRecord r;
  r.at = at;
  r.nic = nic_name;
  r.to_us = to_us;
  r.src_mac = frame.src;
  r.dst_mac = frame.dst;
  r.type = frame.type;
  if (frame.type != net::EtherType::kIpv4) return r;
  auto dgram = ip::IpDatagram::parse(frame.payload);
  if (!dgram) return r;
  r.has_ip = true;
  r.src_ip = dgram->src;
  r.dst_ip = dgram->dst;
  r.proto = static_cast<std::uint8_t>(dgram->proto);
  if (dgram->proto != ip::Proto::kTcp) return r;
  auto seg = tcp::TcpSegment::parse(dgram->payload, dgram->src, dgram->dst);
  if (!seg) return r;
  r.has_tcp = true;
  r.src_port = seg->src_port;
  r.dst_port = seg->dst_port;
  r.seq = seg->seq;
  r.ack = seg->ack;
  r.flags = seg->flags;
  r.window = seg->window;
  r.payload_len = seg->payload.size();
  r.has_orig_dst_option = seg->orig_dst.has_value();
  return r;
}

FrameTracer::FrameTracer(sim::Simulator& sim, net::Nic& nic, bool capture_promiscuous)
    : sim_(sim), nic_name_(nic.name()), capture_promiscuous_(capture_promiscuous) {
  nic.add_observer([this](const net::EthernetFrame& frame, bool to_us) {
    if (!to_us && !capture_promiscuous_) return;
    records_.push_back(decode(frame, to_us, sim_.now(), nic_name_));
  });
}

std::size_t FrameTracer::count(
    const std::function<bool(const TraceRecord&)>& pred) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (pred(r)) ++n;
  }
  return n;
}

std::string FrameTracer::dump() const {
  std::ostringstream os;
  for (const auto& r : records_) os << r.summary() << '\n';
  return os.str();
}

}  // namespace tfo::apps
