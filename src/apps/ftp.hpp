// A compact FTP (RFC 959 subset) in *active* mode — the paper's §9
// real-world application. Active mode matters here: every data transfer
// has the **server** open a connection from its data port (20) to an
// ephemeral listener on the client, which exercises the §7.2
// server-initiated establishment path of the failover bridge.
//
// Control-channel subset: USER, PORT <port>, RETR <file>, STOR <file>,
// QUIT. Files live in an in-memory filesystem (identical across replicas).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "tcp/tcp_layer.hpp"

namespace tfo::apps {

class FtpServer {
 public:
  struct Params {
    std::uint16_t ctrl_port = 21;
    std::uint16_t data_port = 20;
    tcp::SocketOptions opts;  // applied to the control listener and data conns
  };

  FtpServer(tcp::TcpLayer& tcp, Params params);
  explicit FtpServer(tcp::TcpLayer& tcp) : FtpServer(tcp, Params{}) {}

  void add_file(const std::string& name, Bytes content) {
    fs_[name] = std::move(content);
  }
  const std::map<std::string, Bytes>& files() const { return fs_; }
  std::uint64_t transfers_completed() const { return transfers_; }

 private:
  struct Session {
    std::shared_ptr<tcp::Connection> ctrl;
    std::string linebuf;
    bool authed = false;
    std::uint16_t client_data_port = 0;
    std::shared_ptr<tcp::Connection> data;
    Bytes incoming;
    std::string stor_name;
  };

  void on_accept(std::shared_ptr<tcp::Connection> conn);
  void on_line(std::uint64_t id, const std::string& line);
  void start_retr(Session& s, const std::string& name);
  void start_stor(Session& s, const std::string& name);
  void reply(Session& s, const std::string& text);

  tcp::TcpLayer& tcp_;
  Params params_;
  std::map<std::string, Bytes> fs_;
  // Keyed by Connection::id(), not the pointer: a recycled allocation
  // must not inherit a dead session's state (ABA).
  std::unordered_map<std::uint64_t, Session> sessions_;
  std::uint64_t transfers_ = 0;
};

class FtpClient {
 public:
  FtpClient(tcp::TcpLayer& tcp, ip::Ipv4 server, std::uint16_t ctrl_port = 21,
            tcp::SocketOptions opts = {});
  ~FtpClient();

  /// Sends USER; `done(true)` once the server accepts.
  void login(std::function<void(bool)> done);
  /// Downloads `name`; done(ok, content).
  void get(const std::string& name, std::function<void(bool, Bytes)> done);
  /// Uploads `content` as `name`; done(ok).
  void put(const std::string& name, Bytes content, std::function<void(bool)> done);
  void quit();

  bool control_open() const {
    return ctrl_ && ctrl_->state() == tcp::TcpState::kEstablished;
  }

  // Transfer timing, for rate reporting "as indicated by the FTP client"
  // (paper Figure 6): the data-connection open/close instants and, for
  // uploads, the instant the payload was fully written to the stack.
  SimTime data_opened_at() const { return data_opened_at_; }
  SimTime data_closed_at() const { return data_closed_at_; }
  SimTime put_written_at() const { return put_written_at_; }

 private:
  void on_ctrl_data();
  void on_reply(const std::string& line);
  void open_data_listener(std::function<void(std::shared_ptr<tcp::Connection>)> on_conn);

  tcp::TcpLayer& tcp_;
  std::shared_ptr<tcp::Connection> ctrl_;
  std::string linebuf_;

  // One operation in flight at a time (FTP control is sequential).
  enum class Op { kNone, kLogin, kPortForGet, kGet, kPortForPut, kPut };
  Op op_ = Op::kNone;
  std::string op_file_;
  Bytes op_content_;
  std::function<void(bool)> op_done_;
  std::function<void(bool, Bytes)> op_done_get_;

  std::uint16_t data_port_ = 0;
  std::shared_ptr<tcp::Connection> data_;
  Bytes data_rx_;
  bool data_closed_ = false;
  bool ctrl_226_ = false;
  SimTime data_opened_at_ = 0;
  SimTime data_closed_at_ = 0;
  SimTime put_written_at_ = 0;
  void maybe_finish_get();
};

}  // namespace tfo::apps
