// A deterministic on-line store — the paper's own example of a service
// suitable for active replication ("An on-line store is an example of a
// deterministic service", §1). Replies are a pure function of the request
// sequence on a connection, so the primary and secondary replicas produce
// byte-identical streams.
//
// Line protocol (requests and replies newline-terminated):
//   LIST               -> "ITEM <name> <price-cents> <stock>" per item, "END"
//   BROWSE <name>      -> "ITEM <name> <price-cents> <stock>" | "NOITEM"
//   BUY <name> <qty>   -> "OK <order-id> <total-cents>" | "NOSTOCK" | "NOITEM"
//   QUIT               -> "BYE" and server-side close
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "tcp/tcp_layer.hpp"

namespace tfo::apps {

struct StoreItem {
  std::string name;
  std::uint32_t price_cents;
  std::uint32_t stock;
};

/// The default demo catalog (identical on every replica).
std::vector<StoreItem> default_catalog();

class StoreServer {
 public:
  StoreServer(tcp::TcpLayer& tcp, std::uint16_t port,
              std::vector<StoreItem> catalog = default_catalog(),
              tcp::SocketOptions opts = {});

  std::uint64_t orders_placed() const { return orders_; }
  std::uint64_t requests_served() const { return requests_; }

 private:
  struct Session {
    std::shared_ptr<tcp::Connection> conn;
    std::string linebuf;
    /// Per-connection inventory view and order counter: state is scoped
    /// to the connection so replies stay deterministic per connection
    /// regardless of how other clients interleave (the determinism model
    /// the paper assumes; see DESIGN.md).
    std::map<std::string, std::uint32_t> stock;
    std::uint32_t next_order = 1;
  };

  void on_accept(std::shared_ptr<tcp::Connection> conn);
  std::string handle(Session& s, const std::string& line);

  std::vector<StoreItem> catalog_;
  // Keyed by Connection::id(), not the pointer: a recycled allocation
  // must not inherit a dead session's stock view (ABA).
  std::unordered_map<std::uint64_t, Session> sessions_;
  std::uint64_t orders_ = 0;
  std::uint64_t requests_ = 0;
};

/// A scripted store client used by examples and tests: sends requests one
/// at a time and collects the replies.
class StoreClient {
 public:
  StoreClient(tcp::TcpLayer& tcp, ip::Ipv4 server, std::uint16_t port,
              tcp::SocketOptions opts = {});
  ~StoreClient();

  /// Queues a request (without trailing newline). Replies accumulate in
  /// replies() in order.
  void request(const std::string& line);
  void quit();

  const std::vector<std::string>& replies() const { return replies_; }
  bool connected() const {
    return conn_ && conn_->state() == tcp::TcpState::kEstablished;
  }
  bool closed() const { return closed_; }
  tcp::Connection& connection() { return *conn_; }

 private:
  void on_data();
  std::shared_ptr<tcp::Connection> conn_;
  std::string linebuf_;
  std::vector<std::string> replies_;
  bool closed_ = false;
};

}  // namespace tfo::apps
