// Basic traffic servers used by the measurement harnesses (§9) and tests:
//
//   EchoServer  — returns every received byte (request/reply workloads).
//   SinkServer  — consumes and counts bytes (client→server transfer and
//                 send-rate measurements, Figures 3 and 5).
//   BlastServer — on a "GET <n>\n" request, replies with n pattern bytes
//                 (server→client transfer and receive-rate measurements,
//                 Figures 4 and 5). Deterministic per connection, as the
//                 paper's active replication requires.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "tcp/tcp_layer.hpp"

namespace tfo::apps {

/// Deterministic payload generator shared by BlastServer and the benches
/// so transferred content can be verified byte-for-byte.
Bytes deterministic_payload(std::size_t n, std::uint32_t seed = 0);

// Session tables are keyed by Connection::id() — a monotonic counter —
// never by the Connection's address: under churn the allocator hands a new
// connection the memory of a dead one, and a pointer key would let it
// inherit the dead session's state (classic ABA).

class EchoServer {
 public:
  EchoServer(tcp::TcpLayer& tcp, std::uint16_t port, tcp::SocketOptions opts = {});
  std::uint64_t bytes_echoed() const { return bytes_; }
  std::size_t live_sessions() const { return sessions_.size(); }

 private:
  void on_accept(std::shared_ptr<tcp::Connection> conn);
  std::unordered_map<std::uint64_t, std::shared_ptr<tcp::Connection>> sessions_;
  std::uint64_t bytes_ = 0;
};

class SinkServer {
 public:
  SinkServer(tcp::TcpLayer& tcp, std::uint16_t port, tcp::SocketOptions opts = {});
  std::uint64_t bytes_received() const { return bytes_; }
  std::size_t live_sessions() const { return sessions_.size(); }

 private:
  void on_accept(std::shared_ptr<tcp::Connection> conn);
  std::unordered_map<std::uint64_t, std::shared_ptr<tcp::Connection>> sessions_;
  std::uint64_t bytes_ = 0;
};

class BlastServer {
 public:
  BlastServer(tcp::TcpLayer& tcp, std::uint16_t port, tcp::SocketOptions opts = {});
  std::uint64_t bytes_sent() const { return bytes_; }

 private:
  void on_accept(std::shared_ptr<tcp::Connection> conn);
  void on_line(tcp::Connection* conn, const std::string& line);
  struct Session {
    std::shared_ptr<tcp::Connection> conn;
    std::string linebuf;
  };
  std::unordered_map<std::uint64_t, Session> sessions_;
  std::uint64_t bytes_ = 0;
};

}  // namespace tfo::apps
