#include "apps/store.hpp"

#include <cstdio>
#include <sstream>

namespace tfo::apps {

std::vector<StoreItem> default_catalog() {
  return {
      {"espresso-machine", 24999, 12},
      {"grinder", 8999, 40},
      {"kettle", 3499, 100},
      {"scale", 2199, 7},
      {"filter-papers", 499, 500},
  };
}

StoreServer::StoreServer(tcp::TcpLayer& tcp, std::uint16_t port,
                         std::vector<StoreItem> catalog, tcp::SocketOptions opts)
    : catalog_(std::move(catalog)) {
  tcp.listen(port, [this](std::shared_ptr<tcp::Connection> c) { on_accept(std::move(c)); },
             opts);
}

void StoreServer::on_accept(std::shared_ptr<tcp::Connection> conn) {
  tcp::Connection* raw = conn.get();
  const std::uint64_t id = raw->id();
  Session s;
  s.conn = std::move(conn);
  for (const auto& item : catalog_) s.stock[item.name] = item.stock;
  sessions_.emplace(id, std::move(s));

  raw->on_readable = [this, raw, id] {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    Bytes data;
    raw->recv(data);
    for (std::uint8_t ch : data) {
      if (ch != '\n') {
        it->second.linebuf.push_back(static_cast<char>(ch));
        continue;
      }
      std::string line = std::move(it->second.linebuf);
      it->second.linebuf.clear();
      ++requests_;
      const std::string reply = handle(it->second, line);
      if (!reply.empty()) raw->send(to_bytes(reply));
      if (line == "QUIT") {
        raw->close();
        return;
      }
    }
  };
  raw->on_peer_fin = [raw] { raw->close(); };
  raw->on_closed = [this, id](tcp::CloseReason) { sessions_.erase(id); };
  if (raw->rx_available() > 0) raw->on_readable();
}

std::string StoreServer::handle(Session& s, const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  auto find_item = [&](const std::string& name) -> const StoreItem* {
    for (const auto& item : catalog_) {
      if (item.name == name) return &item;
    }
    return nullptr;
  };

  if (cmd == "LIST") {
    std::ostringstream out;
    for (const auto& item : catalog_) {
      out << "ITEM " << item.name << ' ' << item.price_cents << ' '
          << s.stock[item.name] << '\n';
    }
    out << "END\n";
    return out.str();
  }
  if (cmd == "BROWSE") {
    std::string name;
    in >> name;
    const StoreItem* item = find_item(name);
    if (item == nullptr) return "NOITEM\n";
    std::ostringstream out;
    out << "ITEM " << item->name << ' ' << item->price_cents << ' '
        << s.stock[item->name] << '\n';
    return out.str();
  }
  if (cmd == "BUY") {
    std::string name;
    std::uint32_t qty = 0;
    in >> name >> qty;
    const StoreItem* item = find_item(name);
    if (item == nullptr) return "NOITEM\n";
    if (qty == 0 || s.stock[name] < qty) return "NOSTOCK\n";
    s.stock[name] -= qty;
    ++orders_;
    std::ostringstream out;
    out << "OK " << s.next_order++ << ' ' << item->price_cents * qty << '\n';
    return out.str();
  }
  if (cmd == "QUIT") return "BYE\n";
  return "ERR\n";
}

// ----------------------------------------------------------------- client

StoreClient::StoreClient(tcp::TcpLayer& tcp, ip::Ipv4 server, std::uint16_t port,
                         tcp::SocketOptions opts) {
  conn_ = tcp.connect(server, port, opts);
  conn_->on_readable = [this] { on_data(); };
  conn_->on_closed = [this](tcp::CloseReason) { closed_ = true; };
}

StoreClient::~StoreClient() {
  // The connection may outlive the client object; silence its callbacks.
  if (conn_) {
    conn_->on_readable = nullptr;
    conn_->on_closed = nullptr;
  }
}

void StoreClient::on_data() {
  Bytes data;
  conn_->recv(data);
  for (std::uint8_t ch : data) {
    if (ch == '\n') {
      replies_.push_back(std::move(linebuf_));
      linebuf_.clear();
    } else {
      linebuf_.push_back(static_cast<char>(ch));
    }
  }
}

void StoreClient::request(const std::string& line) { conn_->send(to_bytes(line + "\n")); }

void StoreClient::quit() {
  request("QUIT");
  conn_->close();
}

}  // namespace tfo::apps
