#include "apps/attacker.hpp"

#include "common/bytes.hpp"
#include "common/logging.hpp"
#include "ip/icmp.hpp"
#include "tcp/segment.hpp"

namespace tfo::apps {

using tcp::Flags;

Attacker::Attacker(Host& host, AttackerConfig cfg)
    : host_(host), cfg_(std::move(cfg)), rng_(cfg_.seed) {
  if (cfg_.kinds.empty()) {
    cfg_.kinds = {AttackKind::kBlindRst, AttackKind::kBlindSyn,
                  AttackKind::kBlindData, AttackKind::kAckProbe,
                  AttackKind::kIcmpFrag};
  }
  if (cfg_.hb_spoof_src.is_any()) cfg_.hb_spoof_src = cfg_.spoof_src;
  ctr_injected_ = &host_.obs().registry.counter("attacker.injected");
}

Attacker::~Attacker() { alive_.reset(); }

void Attacker::start() {
  done_ = false;
  end_ = host_.simulator().now() +
         static_cast<SimTime>(cfg_.duration);
  TFO_LOG(kInfo, "attacker") << host_.name() << ": attacking "
                             << cfg_.victim.str() << ":" << cfg_.victim_port
                             << " as " << cfg_.spoof_src.str() << " at "
                             << cfg_.rate << "/s";
  schedule_next();
}

void Attacker::schedule_next() {
  if (host_.simulator().now() >= end_ || cfg_.rate <= 0.0) {
    done_ = true;
    return;
  }
  const SimDuration gap =
      std::max<SimDuration>(1, static_cast<SimDuration>(1e9 / cfg_.rate));
  host_.simulator().schedule_after(gap,
                                   [this, w = std::weak_ptr<bool>(alive_)] {
    if (w.expired()) return;
    inject_one();
    schedule_next();
  });
}

Seq32 Attacker::guess_seq() {
  if (cfg_.seq_hint) {
    const std::uint32_t spread = std::max<std::uint32_t>(cfg_.seq_spread, 1);
    const auto off = static_cast<std::uint32_t>(rng_.uniform(0, 2ull * spread));
    return *cfg_.seq_hint + off - spread;
  }
  // Classic blind sweep: stride the whole space so some guess eventually
  // lands in any window — the defense must hold for the lucky ones too.
  sweep_seq_ += cfg_.seq_stride;
  return sweep_seq_;
}

Seq32 Attacker::guess_ack() {
  if (cfg_.ack_hint) {
    const std::uint32_t spread = std::max<std::uint32_t>(cfg_.seq_spread, 1);
    const auto off = static_cast<std::uint32_t>(rng_.uniform(0, 2ull * spread));
    return *cfg_.ack_hint + off - spread;
  }
  return rng_.next_u32();
}

std::uint16_t Attacker::guess_port() {
  return static_cast<std::uint16_t>(rng_.uniform(cfg_.port_lo, cfg_.port_hi));
}

void Attacker::inject_one() {
  const AttackKind kind = cfg_.kinds[injected_ % cfg_.kinds.size()];
  const std::uint16_t port = guess_port();
  switch (kind) {
    case AttackKind::kBlindRst:
      send_tcp(Flags::kRst, port, guess_seq(), 0, 0);
      break;
    case AttackKind::kBlindSyn:
      send_tcp(Flags::kSyn, port, guess_seq(), 0, 0);
      break;
    case AttackKind::kBlindData:
      send_tcp(Flags::kAck | Flags::kPsh, port, guess_seq(), guess_ack(), 512);
      break;
    case AttackKind::kAckProbe:
      send_tcp(Flags::kAck, port, guess_seq(), guess_ack(), 0);
      break;
    case AttackKind::kIcmpFrag:
      send_icmp(port);
      break;
    case AttackKind::kForgedHeartbeat:
      send_heartbeat();
      break;
  }
  ++injected_;
  ++by_kind_[static_cast<std::size_t>(kind)];
  ctr_injected_->inc();
}

void Attacker::send_tcp(std::uint8_t flags, std::uint16_t src_port, Seq32 seq,
                        Seq32 ack, std::size_t payload_bytes) {
  tcp::TcpSegment seg;
  seg.src_port = src_port;
  seg.dst_port = cfg_.victim_port;
  seg.seq = seq;
  seg.flags = flags;
  if (flags & Flags::kAck) seg.ack = ack;
  seg.window = 65535;
  if (payload_bytes > 0) {
    seg.payload = wire::PacketBuffer(Bytes(payload_bytes, 0x41));
  }
  // The IP layer stamps whatever source we claim: blind spoofing.
  host_.ip().send(ip::Proto::kTcp, cfg_.spoof_src, cfg_.victim,
                  seg.take_wire(cfg_.spoof_src, cfg_.victim));
}

void Attacker::send_icmp(std::uint16_t src_port) {
  // Forged "fragmentation needed" quoting victim→client traffic we never
  // saw: the quoted sequence number is a guess, the claimed MTU absurd.
  ip::IcmpMessage msg;
  msg.type = ip::kIcmpDestUnreachable;
  msg.code = ip::kIcmpFragNeeded;
  msg.mtu = cfg_.icmp_mtu;
  msg.quoted_src = cfg_.victim;
  msg.quoted_dst = cfg_.spoof_src;
  msg.quoted_src_port = cfg_.victim_port;
  msg.quoted_dst_port = src_port;
  msg.quoted_seq = static_cast<std::uint32_t>(guess_seq());
  host_.ip().send(ip::Proto::kIcmp, ip::Ipv4::any(), cfg_.victim,
                  msg.serialize());
}

void Attacker::send_heartbeat() {
  // Forged liveness: correct shape ("HB", plausible k), wrong key — the
  // nonce chain is seeded with a secret the attacker does not hold, so
  // this must land in fault.hb_auth_failed, never re-arm a deadline.
  const std::uint64_t k =
      static_cast<std::uint64_t>(host_.simulator().now()) +
      rng_.uniform(0, 1'000'000'000ull);
  Bytes b = to_bytes("HB");
  put_u64(b, k);
  put_u64(b, cfg_.hb_seed_guess ^ rng_.next_u64());
  host_.ip().send(ip::Proto::kHeartbeat, cfg_.hb_spoof_src, cfg_.victim,
                  std::move(b));
}

}  // namespace tfo::apps
