#include "apps/host.hpp"

#include "obs/json.hpp"

namespace tfo::apps {

Host::Host(sim::Simulator& sim, HostParams params, net::Medium& medium)
    : sim_(sim), params_(std::move(params)) {
  nic_ = std::make_unique<net::Nic>(sim_, params_.name + ".eth0",
                                    net::MacAddress::from_id(params_.addr.v),
                                    params_.nic);
  ip_ = std::make_unique<ip::IpLayer>(sim_);
  arp_ = std::make_unique<ip::ArpEntity>(
      sim_, *nic_, [this] { return ip_->local_addresses(); }, params_.arp);
  ip_->add_interface({nic_.get(), arp_.get(), params_.addr, params_.prefix_len});
  tcp_ = std::make_unique<tcp::TcpLayer>(sim_, *ip_, params_.tcp, params_.seed);
  ip_->set_observability(&obs_);
  tcp_->set_observability(&obs_);

  nic_->set_rx_handler([this](const net::EthernetFrame& frame, bool to_us) {
    switch (frame.type) {
      case net::EtherType::kArp:
        arp_->handle_frame(frame);
        break;
      case net::EtherType::kIpv4:
        ip_->handle_frame(frame, to_us);
        break;
    }
  });
  nic_->attach(medium);
}

void Host::fail() {
  failed_ = true;
  nic_->set_enabled(false);
  obs_.timeline.record(sim_.now(), obs::EventKind::kHostFailed, {}, params_.name);
}

std::string Host::snapshot_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("host").value(params_.name);
  w.key("t_ns").value(static_cast<std::uint64_t>(sim_.now()));
  w.key("metrics").raw(obs::metrics_json(params_.name, obs_.registry.snapshot()));
  w.key("timeline").raw(obs::timeline_json(params_.name, obs_.timeline));
  w.end_object();
  return w.str();
}

}  // namespace tfo::apps
