#include "apps/host.hpp"

namespace tfo::apps {

Host::Host(sim::Simulator& sim, HostParams params, net::Medium& medium)
    : sim_(sim), params_(std::move(params)) {
  nic_ = std::make_unique<net::Nic>(sim_, params_.name + ".eth0",
                                    net::MacAddress::from_id(params_.addr.v),
                                    params_.nic);
  ip_ = std::make_unique<ip::IpLayer>(sim_);
  arp_ = std::make_unique<ip::ArpEntity>(
      sim_, *nic_, [this] { return ip_->local_addresses(); }, params_.arp);
  ip_->add_interface({nic_.get(), arp_.get(), params_.addr, params_.prefix_len});
  tcp_ = std::make_unique<tcp::TcpLayer>(sim_, *ip_, params_.tcp, params_.seed);

  nic_->set_rx_handler([this](const net::EthernetFrame& frame, bool to_us) {
    switch (frame.type) {
      case net::EtherType::kArp:
        arp_->handle_frame(frame);
        break;
      case net::EtherType::kIpv4:
        ip_->handle_frame(frame, to_us);
        break;
    }
  });
  nic_->attach(medium);
}

void Host::fail() {
  failed_ = true;
  nic_->set_enabled(false);
}

}  // namespace tfo::apps
