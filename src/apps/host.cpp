#include "apps/host.hpp"

#include "obs/json.hpp"

namespace tfo::apps {

Host::Host(sim::Simulator& sim, HostParams params, net::Medium& medium)
    : sim_(sim), params_(std::move(params)) {
  // Resolve the lane configuration first: the TCP layer shards its
  // connection table by it, and the NIC partitions rx batches across it.
  const sim::LaneConfig lane_cfg = sim::lane_config_from_env(params_.lanes);
  params_.lanes = lane_cfg;
  params_.tcp.lanes = lane_cfg.lanes;
  lanes_ = std::make_unique<sim::LaneSet>(lane_cfg);
  nic_ = std::make_unique<net::Nic>(sim_, params_.name + ".eth0",
                                    net::MacAddress::from_id(params_.addr.v),
                                    params_.nic);
  nic_->set_lane_set(lanes_.get());
  ip_ = std::make_unique<ip::IpLayer>(sim_);
  arp_ = std::make_unique<ip::ArpEntity>(
      sim_, *nic_, [this] { return ip_->local_addresses(); }, params_.arp);
  ip_->add_interface({nic_.get(), arp_.get(), params_.addr, params_.prefix_len});
  tcp_ = std::make_unique<tcp::TcpLayer>(sim_, *ip_, params_.tcp, params_.seed);
  ip_->set_observability(&obs_);
  tcp_->set_observability(&obs_);

  nic_->set_rx_handler([this](const net::EthernetFrame& frame, bool to_us) {
    switch (frame.type) {
      case net::EtherType::kArp:
        arp_->handle_frame(frame);
        break;
      case net::EtherType::kIpv4:
        ip_->handle_frame(frame, to_us);
        break;
    }
  });
  nic_->attach(medium);

  // Snapshot the global wire-buffer accounting so this host's mirrored
  // counters start at zero (see refresh_wire_counters).
  wire_baseline_ = wire::buffer_stats();
  auto& reg = obs_.registry;
  ctr_alloc_buffers_ = &reg.counter("net.alloc.buffers");
  ctr_alloc_bytes_ = &reg.counter("net.alloc.bytes");
  ctr_alloc_copies_ = &reg.counter("net.alloc.copies");
  ctr_alloc_shares_ = &reg.counter("net.alloc.shares");
  ctr_bytes_copied_ = &reg.counter("net.bytes_copied");

  // Scheduler instrumentation mirror, same delta-since-construction
  // scheme (the Simulator is shared by every host in the topology).
  sim_baseline_ = sim_.stats();
  ctr_sim_scheduled_ = &reg.counter("sim.wheel.scheduled");
  ctr_sim_cancelled_ = &reg.counter("sim.wheel.cancelled");
  ctr_sim_fired_ = &reg.counter("sim.wheel.fired");
  ctr_sim_wheel_inserts_ = &reg.counter("sim.wheel.inserts");
  ctr_sim_heap_inserts_ = &reg.counter("sim.wheel.heap_inserts");
  ctr_sim_cascades_ = &reg.counter("sim.wheel.cascades");
  gau_sim_pool_events_ = &reg.gauge("sim.wheel.pool_events");

  // Lane/batching telemetry. The NIC and LaneSet are owned per-host, so
  // their stats start at zero — published-delta mirroring needs no
  // construction baseline.
  ctr_lane_frames_batched_ = &reg.counter("lane.frames_batched");
  ctr_lane_gro_coalesced_ = &reg.counter("lane.gro_coalesced");
  ctr_lane_merge_stalls_ = &reg.counter("lane.merge_stalls");
}

void Host::refresh_wire_counters() const {
  const wire::BufferStats& now = wire::buffer_stats();
  // Counters only move forward: if the global stats were reset underneath
  // us (bench/test hygiene), hold the published value rather than wrap.
  const auto mirror = [](obs::Counter* c, std::uint64_t now_v,
                         std::uint64_t base, std::uint64_t& published) {
    const std::uint64_t delta = now_v >= base ? now_v - base : now_v;
    if (delta > published) {
      c->inc(delta - published);
      published = delta;
    }
  };
  mirror(ctr_alloc_buffers_, now.allocations, wire_baseline_.allocations,
         wire_published_.allocations);
  mirror(ctr_alloc_bytes_, now.allocated_bytes, wire_baseline_.allocated_bytes,
         wire_published_.allocated_bytes);
  mirror(ctr_alloc_copies_, now.deep_copies, wire_baseline_.deep_copies,
         wire_published_.deep_copies);
  mirror(ctr_alloc_shares_, now.shares, wire_baseline_.shares,
         wire_published_.shares);
  mirror(ctr_bytes_copied_, now.copied_bytes, wire_baseline_.copied_bytes,
         wire_published_.copied_bytes);
}

void Host::refresh_sim_counters() const {
  const sim::Simulator::Stats& now = sim_.stats();
  const auto mirror = [](obs::Counter* c, std::uint64_t now_v, std::uint64_t base,
                         std::uint64_t& published) {
    const std::uint64_t delta = now_v >= base ? now_v - base : now_v;
    if (delta > published) {
      c->inc(delta - published);
      published = delta;
    }
  };
  mirror(ctr_sim_scheduled_, now.scheduled, sim_baseline_.scheduled,
         sim_published_.scheduled);
  mirror(ctr_sim_cancelled_, now.cancelled, sim_baseline_.cancelled,
         sim_published_.cancelled);
  mirror(ctr_sim_fired_, now.fired, sim_baseline_.fired, sim_published_.fired);
  mirror(ctr_sim_wheel_inserts_, now.wheel_inserts, sim_baseline_.wheel_inserts,
         sim_published_.wheel_inserts);
  mirror(ctr_sim_heap_inserts_, now.heap_inserts, sim_baseline_.heap_inserts,
         sim_published_.heap_inserts);
  mirror(ctr_sim_cascades_, now.cascades, sim_baseline_.cascades,
         sim_published_.cascades);
  // Pool footprint is a point-in-time value, not a delta.
  gau_sim_pool_events_->set(static_cast<std::int64_t>(now.pool_events));
}

void Host::refresh_lane_counters() const {
  const auto mirror = [](obs::Counter* c, std::uint64_t now_v,
                         std::uint64_t& published) {
    if (now_v > published) {
      c->inc(now_v - published);
      published = now_v;
    }
  };
  mirror(ctr_lane_frames_batched_, nic_->batch_stats().frames_batched,
         lane_published_frames_batched_);
  mirror(ctr_lane_gro_coalesced_, nic_->gro_stats().coalesced,
         lane_published_gro_coalesced_);
  mirror(ctr_lane_merge_stalls_, lanes_->stats().merge_stalls,
         lane_published_merge_stalls_);
}

void Host::fail() {
  failed_ = true;
  nic_->set_enabled(false);
  obs_.timeline.record(sim_.now(), obs::EventKind::kHostFailed, {}, params_.name);
}

std::string Host::snapshot_json() const {
  refresh_wire_counters();
  refresh_sim_counters();
  refresh_lane_counters();
  obs::JsonWriter w;
  w.begin_object();
  w.key("host").value(params_.name);
  w.key("t_ns").value(static_cast<std::uint64_t>(sim_.now()));
  w.key("metrics").raw(obs::metrics_json(params_.name, obs_.registry.snapshot()));
  w.key("timeline").raw(obs::timeline_json(params_.name, obs_.timeline));
  w.end_object();
  return w.str();
}

}  // namespace tfo::apps
