#include "apps/echo.hpp"

#include <cstdio>

namespace tfo::apps {

Bytes deterministic_payload(std::size_t n, std::uint32_t seed) {
  Bytes b(n);
  std::uint32_t x = seed * 2654435761u + 88172645u;
  for (std::size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    b[i] = static_cast<std::uint8_t>(x);
  }
  return b;
}

// ------------------------------------------------------------------ Echo

EchoServer::EchoServer(tcp::TcpLayer& tcp, std::uint16_t port, tcp::SocketOptions opts) {
  tcp.listen(port, [this](std::shared_ptr<tcp::Connection> c) { on_accept(std::move(c)); },
             opts);
}

void EchoServer::on_accept(std::shared_ptr<tcp::Connection> conn) {
  tcp::Connection* raw = conn.get();
  const std::uint64_t id = raw->id();
  sessions_[id] = conn;
  raw->on_readable = [this, raw] {
    Bytes data;
    raw->recv(data);
    bytes_ += data.size();
    if (!data.empty()) raw->send(std::move(data));
  };
  raw->on_peer_fin = [raw] { raw->close(); };
  raw->on_closed = [this, id](tcp::CloseReason) { sessions_.erase(id); };
  // Data may have raced ahead of the accept callback.
  if (raw->rx_available() > 0) raw->on_readable();
}

// ------------------------------------------------------------------ Sink

SinkServer::SinkServer(tcp::TcpLayer& tcp, std::uint16_t port, tcp::SocketOptions opts) {
  tcp.listen(port, [this](std::shared_ptr<tcp::Connection> c) { on_accept(std::move(c)); },
             opts);
}

void SinkServer::on_accept(std::shared_ptr<tcp::Connection> conn) {
  tcp::Connection* raw = conn.get();
  const std::uint64_t id = raw->id();
  sessions_[id] = conn;
  raw->on_readable = [this, raw] {
    Bytes data;
    raw->recv(data);
    bytes_ += data.size();
  };
  raw->on_peer_fin = [raw] { raw->close(); };
  raw->on_closed = [this, id](tcp::CloseReason) { sessions_.erase(id); };
  if (raw->rx_available() > 0) raw->on_readable();
}

// ----------------------------------------------------------------- Blast

BlastServer::BlastServer(tcp::TcpLayer& tcp, std::uint16_t port, tcp::SocketOptions opts) {
  tcp.listen(port, [this](std::shared_ptr<tcp::Connection> c) { on_accept(std::move(c)); },
             opts);
}

void BlastServer::on_accept(std::shared_ptr<tcp::Connection> conn) {
  tcp::Connection* raw = conn.get();
  const std::uint64_t id = raw->id();
  sessions_[id] = {conn, {}};
  raw->on_readable = [this, raw, id] {
    Bytes data;
    raw->recv(data);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    for (std::uint8_t ch : data) {
      if (ch == '\n') {
        on_line(raw, it->second.linebuf);
        it->second.linebuf.clear();
      } else {
        it->second.linebuf.push_back(static_cast<char>(ch));
      }
    }
  };
  raw->on_peer_fin = [raw] { raw->close(); };
  raw->on_closed = [this, id](tcp::CloseReason) { sessions_.erase(id); };
  if (raw->rx_available() > 0) raw->on_readable();
}

void BlastServer::on_line(tcp::Connection* conn, const std::string& line) {
  // Protocol: "GET <bytes> [seed]" → that many deterministic bytes.
  if (line.rfind("GET ", 0) != 0) return;
  std::size_t n = 0;
  std::uint32_t seed = 0;
  std::sscanf(line.c_str() + 4, "%zu %u", &n, &seed);
  bytes_ += n;
  conn->send(deterministic_payload(n, seed));
}

}  // namespace tfo::apps
