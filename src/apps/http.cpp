#include "apps/http.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace tfo::apps {

HttpServer::HttpServer(tcp::TcpLayer& tcp, std::uint16_t port, tcp::SocketOptions opts) {
  tcp.listen(port, [this](std::shared_ptr<tcp::Connection> c) { on_accept(std::move(c)); },
             opts);
}

void HttpServer::add_document(const std::string& path, Bytes body,
                              std::string content_type) {
  docs_[path] = {std::move(body), std::move(content_type)};
}

namespace {

/// Case-insensitive search for a "Connection:" header token in the raw
/// header block (requests are small; a linear scan is fine).
bool connection_header_says(const std::string& request, const char* token) {
  std::string lower;
  lower.reserve(request.size());
  for (char c : request) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  const auto h = lower.find("connection:");
  if (h == std::string::npos) return false;
  const auto eol = lower.find("\r\n", h);
  const std::string value =
      lower.substr(h + 11, (eol == std::string::npos ? lower.size() : eol) - h - 11);
  return value.find(token) != std::string::npos;
}

}  // namespace

void HttpServer::on_accept(std::shared_ptr<tcp::Connection> conn) {
  tcp::Connection* raw = conn.get();
  const std::uint64_t id = raw->id();
  sessions_[id] = {std::move(conn), {}};
  raw->on_readable = [this, raw, id] {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    Bytes data;
    raw->recv(data);
    it->second.buf += to_string(data);
    // Serve every complete request buffered so far (keep-alive clients
    // may pipeline several). A complete request ends with an empty line.
    for (;;) {
      it = sessions_.find(id);  // handle_request may have ended the session
      if (it == sessions_.end()) return;
      const auto end = it->second.buf.find("\r\n\r\n");
      if (end == std::string::npos) return;
      const std::string request = it->second.buf.substr(0, end);
      it->second.buf.erase(0, end + 4);
      if (!handle_request(raw, request)) return;
    }
  };
  raw->on_peer_fin = [raw] { raw->close(); };
  raw->on_closed = [this, id](tcp::CloseReason) { sessions_.erase(id); };
  if (raw->rx_available() > 0) raw->on_readable();
}

bool HttpServer::handle_request(tcp::Connection* conn, const std::string& request) {
  ++requests_;
  char method[8] = {0};
  char path[512] = {0};
  char version[16] = {0};
  std::sscanf(request.c_str(), "%7s %511s %15s", method, path, version);
  const std::string m = method;
  const bool head = m == "HEAD";
  // HTTP/1.1 defaults to keep-alive, HTTP/1.0 (and anything unversioned)
  // to close; an explicit Connection header overrides either default.
  const bool http11 = std::string(version) == "HTTP/1.1";
  bool keep_alive = http11;
  if (connection_header_says(request, "close")) keep_alive = false;
  if (connection_header_says(request, "keep-alive")) keep_alive = true;
  const char* proto = http11 ? "HTTP/1.1" : "HTTP/1.0";

  std::ostringstream head_out;
  Bytes body;
  auto it = docs_.find(path);
  if ((m != "GET" && !head)) {
    head_out << proto << " 501 Not Implemented\r\nContent-Length: 0\r\n";
  } else if (it == docs_.end()) {
    ++not_found_;
    const std::string msg = "<html><body>404 not found</body></html>";
    head_out << proto << " 404 Not Found\r\nContent-Type: text/html\r\n"
             << "Content-Length: " << msg.size() << "\r\n";
    if (!head) body = to_bytes(msg);
  } else {
    head_out << proto << " 200 OK\r\nContent-Type: " << it->second.content_type
             << "\r\nContent-Length: " << it->second.body.size() << "\r\n";
    if (!head) body = it->second.body;
  }
  head_out << "Connection: " << (keep_alive ? "keep-alive" : "close") << "\r\n\r\n";
  Bytes response = to_bytes(head_out.str());
  append(response, body);
  conn->send(std::move(response));
  if (!keep_alive) conn->close();  // HTTP/1.0 semantics: response, then close
  return keep_alive;
}

// ------------------------------------------------------------------ client

HttpClient::HttpClient(tcp::TcpLayer& tcp, ip::Ipv4 server, std::uint16_t port)
    : tcp_(tcp), server_(server), port_(port) {}

HttpClient::~HttpClient() { detach(); }

void HttpClient::detach() {
  // The connection may outlive this object (teardown in flight); its
  // callbacks must never fire into freed memory.
  if (conn_) {
    conn_->on_established = nullptr;
    conn_->on_readable = nullptr;
    conn_->on_peer_fin = nullptr;
    conn_->on_closed = nullptr;
  }
}

void HttpClient::get(const std::string& path, Handler done) {
  detach();
  done_ = std::move(done);
  finished_ = false;
  raw_.clear();
  conn_ = tcp_.connect(server_, port_, {.nodelay = true});
  conn_->on_established = [this, path] {
    conn_->send(to_bytes("GET " + path + " HTTP/1.0\r\n\r\n"));
  };
  conn_->on_readable = [this] { conn_->recv(raw_); };
  conn_->on_peer_fin = [this] {
    conn_->recv(raw_);
    conn_->close();
    finish();
  };
  conn_->on_closed = [this](tcp::CloseReason reason) {
    if (reason != tcp::CloseReason::kGraceful && !finished_) {
      finished_ = true;
      if (done_) done_(false, {});
      return;
    }
    finish();
  };
}

void HttpClient::finish() {
  if (finished_) return;
  finished_ = true;
  Response resp;
  const std::string text = to_string(raw_);
  const auto header_end = text.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    if (done_) done_(false, {});
    return;
  }
  resp.headers = text.substr(0, header_end);
  std::sscanf(resp.headers.c_str(), "HTTP/1.0 %d", &resp.status);
  resp.body.assign(raw_.begin() + static_cast<long>(header_end + 4), raw_.end());
  if (done_) done_(true, std::move(resp));
}

}  // namespace tfo::apps
