// Open-loop HTTP load generator (the shape of Apache TrafficServer's
// jtest): connection arrivals come from a seeded schedule at a configured
// connections/s rate, independent of how fast the server answers — so a
// slow or failing-over server faces the same offered load as a healthy
// one, and client-visible latency measures the server, not the generator.
//
// Each connection runs `requests_per_conn` sequential HTTP/1.1 keep-alive
// requests drawn from a weighted path mix, with a fixed think time
// between them; the last request carries "Connection: close". Per-request
// client-visible latency (send of the first byte to receipt of the full
// response) is recorded raw and into an obs histogram.
//
// The generator must outlive the simulation run (its connection callbacks
// capture `this`); benches and tests keep it on the stack beside the
// Simulator, destroyed first.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_layer.hpp"

namespace tfo::apps {

struct LoadGenConfig {
  ip::Ipv4 server;
  std::uint16_t port = 80;

  /// Offered connection-arrival rate. With exponential_arrivals the gaps
  /// are Poisson with this mean rate; otherwise they are uniform 1/rate.
  double conns_per_sec = 1000.0;
  /// Arrivals stop after this window (measured from start()).
  SimDuration duration = seconds(1);
  /// Hard cap on connections launched; 0 means duration-bound only.
  std::uint64_t max_conns = 0;

  /// Keep-alive depth: sequential requests per connection.
  int requests_per_conn = 1;
  /// Pause between a response and the connection's next request.
  SimDuration think_time = 0;

  struct MixEntry {
    std::string path;
    std::uint32_t weight = 1;
  };
  /// Weighted request mix; empty means 100% "/".
  std::vector<MixEntry> mix;

  bool exponential_arrivals = true;
  std::uint64_t seed = 1;
  tcp::SocketOptions socket{.nodelay = true};
};

class LoadGen {
 public:
  /// `clients`: one or more client-host TCP layers; connections round-
  /// robin across them, spreading the ephemeral-port load (one layer
  /// caps out at 16384 concurrent ports). `hub` (optional) receives the
  /// loadgen.* counters and the request-latency histogram.
  LoadGen(sim::Simulator& sim, std::vector<tcp::TcpLayer*> clients,
          LoadGenConfig cfg, obs::Hub* hub = nullptr);
  ~LoadGen();
  LoadGen(const LoadGen&) = delete;
  LoadGen& operator=(const LoadGen&) = delete;

  /// Begins the arrival schedule at the current sim time.
  void start();

  /// The arrival window has elapsed (or max_conns was hit): no further
  /// connections will be launched.
  bool arrivals_done() const { return arrivals_done_; }
  /// All launched connections have completed or failed.
  bool done() const { return arrivals_done_ && conns_.empty(); }

  std::uint64_t conns_started() const { return started_; }
  std::uint64_t conns_established() const { return established_; }
  std::uint64_t conns_completed() const { return completed_; }
  std::uint64_t conns_failed() const { return failed_; }
  /// connect() refused locally (ephemeral-port exhaustion) — a subset of
  /// conns_failed.
  std::uint64_t connect_failures() const { return connect_failures_; }
  std::uint64_t requests_sent() const { return requests_sent_; }
  std::uint64_t responses_ok() const { return responses_ok_; }
  std::uint64_t responses_bad() const { return responses_bad_; }
  std::uint64_t live_conns() const { return conns_.size(); }

  /// Raw client-visible per-request latencies, in arrival order of the
  /// responses (exact percentiles; the obs histogram is bucketed).
  const std::vector<SimDuration>& latencies() const { return latencies_; }

  /// Raw connection-setup latencies (connect() to established). At high
  /// churn a server blackout shows up here, not in request latency: a
  /// connection's whole life is shorter than the outage, so the stalled
  /// party is the handshake (SYN retries against a dropped backlog), not
  /// an established exchange.
  const std::vector<SimDuration>& setup_latencies() const {
    return setup_latencies_;
  }

 private:
  struct Conn {
    std::shared_ptr<tcp::Connection> conn;
    int remaining = 0;        // requests not yet answered
    std::string rx;           // partial response bytes
    SimTime launched_at = 0;  // when connect() was issued
    SimTime sent_at = 0;      // when the in-flight request went out
    bool inflight = false;    // a request awaits its response
    bool thinking = false;    // think-time pause before the next request
  };

  void schedule_next_arrival();
  void launch_conn();
  void send_request(std::uint64_t id);
  void consume_responses(std::uint64_t id);
  void finish_conn(std::uint64_t id, bool ok);
  const std::string& pick_path();

  sim::Simulator& sim_;
  std::vector<tcp::TcpLayer*> clients_;
  LoadGenConfig cfg_;
  Rng rng_;
  std::uint32_t mix_total_weight_ = 0;
  SimTime arrivals_end_ = 0;
  bool arrivals_done_ = true;

  std::unordered_map<std::uint64_t, Conn> conns_;  // by Connection::id
  std::uint64_t started_ = 0;
  std::uint64_t established_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t connect_failures_ = 0;
  std::uint64_t requests_sent_ = 0;
  std::uint64_t responses_ok_ = 0;
  std::uint64_t responses_bad_ = 0;
  std::vector<SimDuration> latencies_;
  std::vector<SimDuration> setup_latencies_;

  obs::Counter* ctr_started_ = nullptr;
  obs::Counter* ctr_established_ = nullptr;
  obs::Counter* ctr_completed_ = nullptr;
  obs::Counter* ctr_failed_ = nullptr;
  obs::Counter* ctr_connect_failures_ = nullptr;
  obs::Counter* ctr_requests_sent_ = nullptr;
  obs::Counter* ctr_responses_ok_ = nullptr;
  obs::Counter* ctr_responses_bad_ = nullptr;
  obs::Histogram* hist_latency_ = nullptr;
  obs::Histogram* hist_setup_ = nullptr;
};

}  // namespace tfo::apps
