#include "tcp/connection.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "tcp/tcp_layer.hpp"

namespace tfo::tcp {

const char* state_name(TcpState s) {
  switch (s) {
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynRcvd: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kTimeWait: return "TIME_WAIT";
    case TcpState::kClosed: return "CLOSED";
  }
  return "?";
}

Connection::Connection(TcpLayer& owner, ConnKey key, TcpParams params,
                       bool failover_flagged)
    : owner_(owner),
      key_(key),
      id_(owner.allocate_conn_id()),
      params_(params),
      failover_flagged_(failover_flagged),
      nodelay_(!params.nagle),
      eff_mss_(params.mss),
      rto_(params.initial_rto),
      rto_timer_(owner.simulator()),
      delack_timer_(owner.simulator()),
      persist_timer_(owner.simulator()),
      time_wait_timer_(owner.simulator()),
      keepalive_timer_(owner.simulator()) {
  cwnd_ = params_.congestion_control
              ? params_.initial_cwnd_segments * params_.mss
              : 0x3fffffffu;
  quickack_left_ = params_.quickack_segments;
}

Connection::~Connection() { release_all_ooo(); }

// --------------------------------------------- out-of-order stash budget

bool Connection::stash_ooo(std::uint64_t off, wire::PacketBuffer data) {
  if (ooo_bytes_ + data.size() > params_.ooo_budget_bytes) {
    // Over budget: refuse to pin another frame. The caller still sends
    // the dup-ACK, and the sender's retransmission recovers the data.
    owner_.note_ooo_budget_drop();
    return false;
  }
  const std::size_t n = data.size();
  if (ooo_.emplace(off, std::move(data)).second) {
    ooo_bytes_ += n;
    owner_.note_pinned_delta(static_cast<std::int64_t>(n));
  }
  return true;
}

std::map<std::uint64_t, wire::PacketBuffer>::iterator Connection::drop_ooo_entry(
    std::map<std::uint64_t, wire::PacketBuffer>::iterator it) {
  const std::size_t n = it->second.size();
  ooo_bytes_ -= n;
  owner_.note_pinned_delta(-static_cast<std::int64_t>(n));
  return ooo_.erase(it);
}

void Connection::release_all_ooo() {
  if (ooo_bytes_ > 0) owner_.note_pinned_delta(-static_cast<std::int64_t>(ooo_bytes_));
  ooo_bytes_ = 0;
  ooo_.clear();
}

std::size_t Connection::send_queue_pending() const {
  std::size_t n = 0;
  for (const auto& w : app_writes_) n += w.data.size() - w.moved;
  return n;
}

Connection::Info Connection::info() const {
  Info i;
  i.timeouts = stat_timeouts_;
  i.fast_retransmits = stat_fast_retransmits_;
  i.segments_sent = stat_segments_sent_;
  i.segments_received = stat_segments_received_;
  i.srtt = srtt_;
  i.rto = rto_;
  i.cwnd = cwnd_;
  i.ssthresh = ssthresh_;
  i.snd_wnd = snd_wnd_;
  i.bytes_in_flight = snd_nxt_ - snd_una_;
  return i;
}

// --------------------------------------------------------------- opening

void Connection::start_active_open() {
  iss_ = owner_.generate_isn(key_);
  snd_una_ = 0;
  snd_nxt_ = 0;
  state_ = TcpState::kSynSent;
  send_syn(/*with_ack=*/false);
}

void Connection::start_passive_open(const TcpSegment& syn) {
  TFO_ASSERT(syn.syn(), "passive open requires a SYN segment");
  iss_ = owner_.generate_isn(key_);
  irs_ = syn.seq;
  rcv_nxt_ = 1;  // the SYN consumed offset 0
  if (syn.mss) eff_mss_ = std::min<std::uint32_t>(params_.mss, *syn.mss);
  snd_wnd_ = syn.window;
  max_snd_wnd_ = std::max(max_snd_wnd_, snd_wnd_);
  state_ = TcpState::kSynRcvd;
  send_syn(/*with_ack=*/true);
}

void Connection::send_syn(bool with_ack) {
  TcpSegment seg;
  seg.src_port = key_.local_port;
  seg.dst_port = key_.remote_port;
  seg.seq = iss_;
  seg.flags = Flags::kSyn;
  if (with_ack) {
    seg.flags |= Flags::kAck;
    seg.ack = seq_add(irs_, static_cast<std::int64_t>(rcv_nxt_));
  }
  seg.window = static_cast<std::uint16_t>(
      std::min<std::size_t>(params_.recv_buf, 65535));
  seg.mss = params_.mss;
  snd_nxt_ = std::max<std::uint64_t>(snd_nxt_, 1);  // SYN occupies offset 0
  highest_sent_ = std::max(highest_sent_, snd_nxt_);
  last_adv_wnd_ = seg.window;
  emit(std::move(seg));
  arm_rto();
}

// ------------------------------------------------------------ app calls

void Connection::send(Bytes data, std::function<void()> on_accepted) {
  if (state_ == TcpState::kClosed || fin_queued_) {
    TFO_LOG(kWarn, "tcp") << key_.str() << " send() on closed/closing connection";
    return;
  }
  app_writes_.push_back(
      {std::move(data), 0, std::move(on_accepted), owner_.simulator().now()});
  pump_app_writes();
  try_send();
}

std::size_t Connection::recv(Bytes& out, std::size_t max) {
  const std::size_t n = std::min(max, rx_buf_.size());
  out.insert(out.end(), rx_buf_.begin(), rx_buf_.begin() + static_cast<long>(n));
  rx_buf_.erase(rx_buf_.begin(), rx_buf_.begin() + static_cast<long>(n));
  if (n > 0) on_window_open();
  return n;
}

void Connection::close() {
  switch (state_) {
    case TcpState::kSynSent:
      // BSD semantics: complete the handshake, flush queued data, then
      // FIN. Tearing down here would silently discard pending writes.
      if (app_writes_.empty() && send_buf_.empty()) {
        teardown(CloseReason::kGraceful);
      } else {
        close_requested_ = true;
      }
      return;
    case TcpState::kSynRcvd:
    case TcpState::kEstablished:
      leave_embryonic();  // closing out of SYN_RCVD frees the backlog slot
      fin_queued_ = true;
      state_ = TcpState::kFinWait1;
      try_send();
      return;
    case TcpState::kCloseWait:
      fin_queued_ = true;
      state_ = TcpState::kLastAck;
      try_send();
      return;
    default:
      return;  // already closing/closed
  }
}

void Connection::abort() {
  if (state_ != TcpState::kClosed && state_ != TcpState::kTimeWait) send_rst();
  teardown(CloseReason::kAborted);
}

// ---------------------------------------------------------- send engine

void Connection::pump_app_writes() {
  while (!app_writes_.empty()) {
    PendingWrite& w = app_writes_.front();
    const std::size_t space =
        params_.send_buf > send_buf_.size() ? params_.send_buf - send_buf_.size() : 0;
    const std::size_t take = std::min(space, w.data.size() - w.moved);
    if (take > 0) {
      send_buf_.insert(send_buf_.end(), w.data.begin() + static_cast<long>(w.moved),
                       w.data.begin() + static_cast<long>(w.moved + take));
      w.moved += take;
    }
    if (w.moved == w.data.size()) {
      auto cb = std::move(w.on_accepted);
      // Completion happens no earlier than the user→kernel copy of the
      // whole message would take (Figure 3's sub-buffer slope), and is
      // always deferred so it cannot re-enter try_send mid-flight.
      const SimTime copy_done =
          w.enqueued_at + static_cast<SimTime>(params_.send_copy_ns_per_byte) *
                              w.data.size();
      app_writes_.pop_front();
      if (cb) {
        owner_.simulator().schedule_at(std::max(copy_done, owner_.simulator().now()),
                                       std::move(cb));
      }
    } else {
      break;  // buffer full
    }
  }
}

std::uint32_t Connection::usable_window() const {
  const std::uint32_t wnd = std::min<std::uint32_t>(snd_wnd_, cwnd_);
  const std::uint32_t flight = in_flight();
  return wnd > flight ? wnd - flight : 0;
}

bool Connection::fin_ready_at(std::uint64_t offset) const {
  // Our FIN goes on the wire once every buffered byte precedes `offset`.
  return fin_queued_ && offset == send_base_ + send_buf_.size() &&
         app_writes_.empty();
}

void Connection::try_send() {
  if (state_ == TcpState::kClosed || state_ == TcpState::kTimeWait ||
      state_ == TcpState::kSynSent || state_ == TcpState::kSynRcvd) {
    return;
  }
  bool sent_any = false;
  for (;;) {
    const std::uint64_t buffered_end = send_base_ + send_buf_.size();
    std::uint64_t avail = buffered_end > snd_nxt_ ? buffered_end - snd_nxt_ : 0;
    const bool fin_now = fin_ready_at(snd_nxt_ + avail) && !fin_offset_;
    if (avail == 0 && !fin_now) break;

    std::uint32_t win = usable_window();
    if (win == 0) {
      if (in_flight() == 0 && !persist_timer_.armed()) {
        // Zero-window deadlock guard: arm the persist timer.
        persist_backoff_ = params_.persist_interval;
        persist_timer_.start(persist_backoff_, [this] { on_rto(); });
      }
      break;
    }

    std::uint32_t len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>({avail, eff_mss_, win}));

    // Nagle: hold small segments while data is in flight.
    if (!nodelay_ && len < eff_mss_ && in_flight() > 0 && !fin_now &&
        len == avail) {
      break;
    }
    if (len == 0 && !fin_now) break;

    TcpSegment seg;
    seg.src_port = key_.local_port;
    seg.dst_port = key_.remote_port;
    seg.seq = seq_add(iss_, static_cast<std::int64_t>(snd_nxt_));
    seg.flags = Flags::kAck;
    seg.ack = seq_add(irs_, static_cast<std::int64_t>(rcv_nxt_));
    const std::size_t head = static_cast<std::size_t>(snd_nxt_ - send_base_);
    seg.payload.assign(send_buf_.begin() + static_cast<long>(head),
                       send_buf_.begin() + static_cast<long>(head + len));
    snd_nxt_ += len;
    if (fin_ready_at(snd_nxt_) && len == avail) {
      seg.flags |= Flags::kFin;
      fin_offset_ = snd_nxt_;
      snd_nxt_ += 1;
    }
    if (snd_nxt_ > highest_sent_) highest_sent_ = snd_nxt_;
    if (snd_nxt_ == buffered_end + (fin_offset_ ? 1 : 0)) seg.flags |= Flags::kPsh;
    seg.window = static_cast<std::uint16_t>(std::min<std::size_t>(
        params_.recv_buf - rx_buf_.size(), 65535));
    last_adv_wnd_ = seg.window;
    bytes_sent_total_ += len;

    if (!rtt_measuring_) {
      rtt_measuring_ = true;
      rtt_offset_ = snd_nxt_;
      rtt_start_ = owner_.simulator().now();
    }
    emit(std::move(seg));
    sent_any = true;
    segs_since_ack_ = 0;
    delack_timer_.stop();  // the ACK rode along
    if (!rto_timer_.armed()) arm_rto();
  }
  if (sent_any) persist_timer_.stop();
}

void Connection::emit(TcpSegment seg) {
  ++stat_segments_sent_;
  TFO_LOG(kTrace, "tcp") << key_.str() << " [" << state_name(state_) << "] tx "
                         << seg.summary();
  owner_.send_segment(std::move(seg), key_.local_ip, key_.remote_ip);
}

void Connection::send_ack_now() {
  TcpSegment seg;
  seg.src_port = key_.local_port;
  seg.dst_port = key_.remote_port;
  seg.seq = seq_add(iss_, static_cast<std::int64_t>(snd_nxt_));
  seg.flags = Flags::kAck;
  seg.ack = seq_add(irs_, static_cast<std::int64_t>(rcv_nxt_));
  seg.window = static_cast<std::uint16_t>(std::min<std::size_t>(
      params_.recv_buf - rx_buf_.size(), 65535));
  last_adv_wnd_ = seg.window;
  segs_since_ack_ = 0;
  delack_timer_.stop();
  emit(std::move(seg));
}

void Connection::send_challenge_ack() {
  if (!owner_.approve_challenge_ack(*this)) return;
  send_ack_now();
}

bool Connection::on_icmp_frag_needed(Seq32 quoted_seq, std::uint32_t claimed_mtu) {
  // The quoted segment must be one of ours and still in flight: its
  // sequence number must fall in [SND.UNA, SND.NXT). An off-path forger
  // does not know our sequence space (RFC 6528 keyed ISNs), so this is
  // the same guessing problem as a blind RST.
  const std::int32_t d =
      seq_diff(quoted_seq, seq_add(iss_, static_cast<std::int64_t>(snd_una_)));
  const std::int64_t off = static_cast<std::int64_t>(snd_una_) + d;
  if (off < static_cast<std::int64_t>(snd_una_) ||
      off >= static_cast<std::int64_t>(snd_nxt_)) {
    return false;
  }
  // Clamp the claimed next-hop MTU at the RFC 1191 floor so even a valid
  // (or lucky) message cannot collapse the MSS to a sliver, then shrink —
  // never grow — the effective MSS. 40 = IP + TCP header bytes.
  const std::uint32_t mtu =
      std::max<std::uint32_t>(claimed_mtu, params_.min_pmtu);
  const std::uint32_t new_mss = mtu - 40;
  if (new_mss < eff_mss_) {
    TFO_LOG(kDebug, "tcp") << key_.str() << " PMTU update: eff_mss "
                           << eff_mss_ << " -> " << new_mss;
    eff_mss_ = new_mss;
  }
  return true;
}

void Connection::send_rst() {
  TcpSegment seg;
  seg.src_port = key_.local_port;
  seg.dst_port = key_.remote_port;
  seg.seq = seq_add(iss_, static_cast<std::int64_t>(snd_nxt_));
  seg.flags = Flags::kRst | Flags::kAck;
  seg.ack = seq_add(irs_, static_cast<std::int64_t>(rcv_nxt_));
  emit(std::move(seg));
}

void Connection::schedule_ack() {
  if (quickack_left_ > 0) {
    --quickack_left_;
    send_ack_now();
    return;
  }
  ++segs_since_ack_;
  if (segs_since_ack_ >= params_.ack_every_segments) {
    send_ack_now();
  } else if (!delack_timer_.armed()) {
    delack_timer_.start(params_.delayed_ack, [this] { send_ack_now(); });
  }
}

// -------------------------------------------------------- retransmission

void Connection::arm_rto() {
  rto_timer_.start(rto_, [this] { on_rto(); });
}

void Connection::on_rto() {
  if (state_ == TcpState::kClosed || state_ == TcpState::kTimeWait) return;

  if (state_ == TcpState::kSynSent || state_ == TcpState::kSynRcvd) {
    if (++retries_ > params_.max_syn_retries) {
      teardown(CloseReason::kTimeout);
      return;
    }
    rto_ = std::min<SimDuration>(rto_ * 2, params_.max_rto);
    send_syn(state_ == TcpState::kSynRcvd);
    return;
  }

  const bool anything_outstanding =
      in_flight() > 0 || snd_una_ < send_base_ + send_buf_.size() ||
      (fin_offset_ && snd_una_ <= *fin_offset_);
  if (!anything_outstanding) return;

  if (++retries_ > params_.max_retries) {
    teardown(CloseReason::kTimeout);
    return;
  }
  ++stat_timeouts_;
  // Karn: never sample RTT across a retransmission.
  rtt_measuring_ = false;
  // Congestion response to loss.
  if (params_.congestion_control) {
    ssthresh_ = std::max<std::uint32_t>(in_flight() / 2, 2 * eff_mss_);
    cwnd_ = eff_mss_;
  }
  rto_ = std::min<SimDuration>(rto_ * 2, params_.max_rto);
  // Tahoe-style go-back-N: rewind so the paced output engine refills the
  // whole [snd_una, old snd_nxt) gap under slow start, instead of
  // recovering one segment per timeout.
  snd_nxt_ = snd_una_;
  if (fin_offset_ && *fin_offset_ >= snd_nxt_) {
    fin_offset_.reset();  // the FIN will be re-emitted at the right point
  }
  try_send();
  if (!rto_timer_.armed()) arm_rto();
}

void Connection::retransmit_head() {
  const std::uint64_t buffered_end = send_base_ + send_buf_.size();
  std::uint32_t len = 0;
  if (snd_una_ < buffered_end) {
    len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>({buffered_end - snd_una_, eff_mss_,
                                 std::max<std::uint32_t>(snd_wnd_, 1)}));
  }
  TcpSegment seg;
  seg.src_port = key_.local_port;
  seg.dst_port = key_.remote_port;
  seg.seq = seq_add(iss_, static_cast<std::int64_t>(snd_una_));
  seg.flags = Flags::kAck;
  seg.ack = seq_add(irs_, static_cast<std::int64_t>(rcv_nxt_));
  seg.window = static_cast<std::uint16_t>(std::min<std::size_t>(
      params_.recv_buf - rx_buf_.size(), 65535));
  if (len > 0) {
    const std::size_t head = static_cast<std::size_t>(snd_una_ - send_base_);
    seg.payload.assign(send_buf_.begin() + static_cast<long>(head),
                       send_buf_.begin() + static_cast<long>(head + len));
  }
  if (fin_offset_ && snd_una_ + len == *fin_offset_) seg.flags |= Flags::kFin;
  emit(std::move(seg));
}

void Connection::rtt_sample_maybe(std::uint64_t acked_to) {
  if (!rtt_measuring_ || acked_to < rtt_offset_) return;
  rtt_measuring_ = false;
  const SimDuration r =
      static_cast<SimDuration>(owner_.simulator().now() - rtt_start_);
  if (!rtt_valid_) {
    srtt_ = r;
    rttvar_ = r / 2;
    rtt_valid_ = true;
  } else {
    const SimDuration err = srtt_ > r ? srtt_ - r : r - srtt_;
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + r) / 8;
  }
  rto_ = std::clamp<SimDuration>(srtt_ + std::max<SimDuration>(4 * rttvar_, milliseconds(1)),
                                 params_.min_rto, params_.max_rto);
}

// ------------------------------------------------------------- inbound

void Connection::handle_segment(const TcpSegment& seg) {
  ++stat_segments_received_;
  // Any inbound traffic proves the peer is alive: reset keepalive.
  if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait) {
    arm_keepalive();
  }
  TFO_LOG(kTrace, "tcp") << key_.str() << " [" << state_name(state_) << "] rx "
                         << seg.summary();

  if (state_ == TcpState::kClosed) return;

  // --- SYN_SENT: expect SYN (ACK of our SYN) per RFC 793 §3.4.
  if (state_ == TcpState::kSynSent) {
    if (seg.rst()) {
      if (seg.has_ack() && seg.ack == seq_add(iss_, 1)) teardown(CloseReason::kRefused);
      return;
    }
    if (!seg.syn()) return;
    if (seg.has_ack() && seg.ack != seq_add(iss_, 1)) return;  // bogus
    irs_ = seg.seq;
    rcv_nxt_ = 1;
    if (seg.mss) eff_mss_ = std::min<std::uint32_t>(params_.mss, *seg.mss);
    snd_wnd_ = seg.window;
    max_snd_wnd_ = std::max(max_snd_wnd_, snd_wnd_);
    if (seg.has_ack()) {
      snd_una_ = 1;
      retries_ = 0;
      rto_timer_.stop();
      enter_established();
      send_ack_now();
    }
    return;
  }

  if (state_ == TcpState::kTimeWait) {
    // RFC 1337 (TIME-WAIT assassination hazards): nothing received in
    // TIME_WAIT may cut the 2MSL quiet period short. The only legitimate
    // reincarnation path is the layer's recycle check, which runs before
    // demux and requires a strictly newer ISN.
    if (seg.rst()) {
      // A stray or old-duplicate RST would "assassinate" the quiet
      // period and let old segments corrupt the next incarnation: drop.
      TFO_LOG(kDebug, "tcp") << key_.str()
                             << " RST ignored in TIME_WAIT (RFC 1337)";
      return;
    }
    if (seg.syn()) {
      // An old duplicate SYN that failed the recycle criterion (its ISN
      // is not newer than what we acknowledged). Answer with our current
      // ACK; the peer — if live — resets that stale handshake and
      // retries with a fresh, newer ISN. Routed through the challenge-ACK
      // budget: a SYN flood at a TIME_WAIT-heavy port must not turn us
      // into an ACK amplifier.
      send_challenge_ack();
      return;
    }
    if (seg.fin()) {
      // Peer retransmitted its FIN: our final ACK was lost. Re-ACK and
      // restart the 2MSL clock.
      send_ack_now();
      enter_time_wait();
    }
    return;
  }

  // --- RST. RFC 5961 §3.2 tightens RFC 793 p.37: only a reset whose
  // sequence number is exactly RCV.NXT tears the connection down. One
  // that is merely inside the receive window draws a rate-limited
  // challenge ACK — a genuine peer that truly lost the connection
  // answers the challenge with an exact-sequence RST, while a blind
  // attacker sweeping the window gains nothing. Everything else is
  // silently discarded. Unsolicited resets built by the failover bridge
  // must therefore carry the client-facing SND.NXT to take effect.
  if (seg.rst()) {
    const std::int32_t rst_rel =
        seq_diff(seg.seq, seq_add(irs_, static_cast<std::int64_t>(rcv_nxt_)));
    const bool in_window =
        last_adv_wnd_ == 0
            ? rst_rel == 0
            : rst_rel >= 0 && rst_rel < static_cast<std::int32_t>(last_adv_wnd_);
    if (!in_window) {
      TFO_LOG(kDebug, "tcp") << key_.str() << " out-of-window RST dropped "
                             << seg.summary();
      return;
    }
    if (rst_rel != 0) {
      TFO_LOG(kDebug, "tcp") << key_.str()
                             << " in-window inexact RST challenged "
                             << seg.summary();
      send_challenge_ack();
      return;
    }
    teardown(CloseReason::kReset);
    return;
  }

  // --- SYN on a synchronized connection (RFC 5961 §4.2): never resync or
  // tear down, whatever the sequence number says; answer with a
  // rate-limited challenge ACK and drop the segment. A peer that
  // genuinely rebooted responds to the challenge with an exact-sequence
  // RST, which the branch above honours. (In SYN_RCVD — not yet
  // synchronized — a duplicate SYN stays ignored; our RTO retransmits
  // the SYN|ACK.)
  if (seg.syn()) {
    if (state_ != TcpState::kSynRcvd) send_challenge_ack();
    return;
  }

  // --- Window/sequence plausibility: drop segments entirely outside a
  // generous window around rcv_nxt (protects unwrapping from garbage).
  const std::int32_t rel = seq_diff(seg.seq, seq_add(irs_, static_cast<std::int64_t>(rcv_nxt_)));
  if (rel < -(1 << 30) || rel > (1 << 30)) return;

  // RFC 793 p.72: once synchronized, a segment without ACK is dropped —
  // otherwise a blind injector could slip payload past the RFC 5961 §5.2
  // ACK acceptability check simply by clearing the flag.
  if (!seg.has_ack()) return;
  if (!process_ack(seg)) return;  // unacceptable ACK: drop whole segment
  if (state_ == TcpState::kClosed) return;  // ack processing may tear down

  if (!seg.payload.empty()) process_data(seg);
  if (seg.fin()) process_fin(seg);
}

bool Connection::process_ack(const TcpSegment& seg) {
  // Unwrap the ack field to a stream offset around snd_una_.
  const std::int32_t d =
      seq_diff(seg.ack, seq_add(iss_, static_cast<std::int64_t>(snd_una_)));
  const std::int64_t ack_off_s = static_cast<std::int64_t>(snd_una_) + d;
  if (ack_off_s < 0) return false;
  const std::uint64_t ack_off = static_cast<std::uint64_t>(ack_off_s);

  // RFC 5961 §5.2 ACK acceptability: anything older than
  // SND.UNA − MAX.SND.WND is a stale duplicate or a blind probe — drop it
  // silently before it can feed the dupack or window machinery.
  if (ack_off + max_snd_wnd_ < snd_una_) return false;

  if (state_ == TcpState::kSynRcvd) {
    if (ack_off >= 1) {
      snd_una_ = std::max<std::uint64_t>(snd_una_, 1);
      retries_ = 0;
      rto_timer_.stop();
      enter_established();
      // Fall through: the ACK may also carry data/window updates.
    } else {
      return false;
    }
  }

  if (ack_off > snd_nxt_) {
    if (ack_off > highest_sent_) {
      // Acks something never sent: bogus (RFC 5961 §5.2's upper bound).
      // Challenge rather than plain-ACK so a blind ACK-window prober
      // cannot extract unlimited responses.
      send_challenge_ack();
      return false;
    }
    // Ack of data sent before an RTO rewind: catch the send point up.
    snd_nxt_ = ack_off;
    if (fin_queued_ && !fin_offset_ &&
        ack_off == send_base_ + send_buf_.size() + 1) {
      fin_offset_ = ack_off - 1;  // the rewound FIN was acknowledged too
    }
  }

  if (ack_off > snd_una_) {
    const std::uint64_t acked = ack_off - snd_una_;
    snd_una_ = ack_off;
    retries_ = 0;
    dupacks_ = 0;
    rtt_sample_maybe(ack_off);
    // New data acknowledged: collapse any exponential backoff back to the
    // smoothed estimate (RFC 6298 §5.7 / BSD behaviour). Without this a
    // loss burst leaves the connection crawling at max_rto forever.
    if (rtt_valid_) {
      rto_ = std::clamp<SimDuration>(
          srtt_ + std::max<SimDuration>(4 * rttvar_, milliseconds(1)),
          params_.min_rto, params_.max_rto);
    } else {
      rto_ = params_.initial_rto;
    }
    // Trim the send buffer below snd_una_ (SYN/FIN occupy no buffer).
    const std::uint64_t data_acked_to = std::min(ack_off, send_base_ + send_buf_.size());
    if (data_acked_to > send_base_) {
      send_buf_.erase(send_buf_.begin(),
                      send_buf_.begin() + static_cast<long>(data_acked_to - send_base_));
      send_base_ = data_acked_to;
    }
    if (params_.congestion_control) {
      if (cwnd_ < ssthresh_) {
        cwnd_ += static_cast<std::uint32_t>(std::min<std::uint64_t>(acked, eff_mss_));
      } else {
        cwnd_ += std::max<std::uint32_t>(1, eff_mss_ * eff_mss_ / cwnd_);
      }
    }
    if (snd_una_ == snd_nxt_) {
      rto_timer_.stop();
    } else {
      arm_rto();
    }
    pump_app_writes();
  } else if (ack_off == snd_una_ && in_flight() > 0 && seg.payload.empty() &&
             !seg.fin() && seg.window == snd_wnd_) {
    if (++dupacks_ == params_.dupack_threshold) {
      ++stat_fast_retransmits_;
      // Fast retransmit.
      if (params_.congestion_control) {
        ssthresh_ = std::max<std::uint32_t>(in_flight() / 2, 2 * eff_mss_);
        cwnd_ = ssthresh_;
      }
      rtt_measuring_ = false;
      retransmit_head();
      arm_rto();
    }
  }

  // Window update (RFC 793 WL1/WL2 discipline, in offset space).
  const std::int32_t seq_rel =
      seq_diff(seg.seq, seq_add(irs_, static_cast<std::int64_t>(rcv_nxt_)));
  const std::uint64_t seq_off =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(rcv_nxt_) + seq_rel);
  if (wl1_ < seq_off || (wl1_ == seq_off && wl2_ <= ack_off)) {
    const std::uint32_t old_wnd = snd_wnd_;
    snd_wnd_ = seg.window;
    max_snd_wnd_ = std::max(max_snd_wnd_, snd_wnd_);
    wl1_ = seq_off;
    wl2_ = ack_off;
    if (old_wnd == 0 && snd_wnd_ > 0) persist_timer_.stop();
  }

  maybe_advance_close_states();
  if (state_ != TcpState::kClosed) try_send();
  return true;
}

void Connection::process_data(const TcpSegment& seg) {
  const std::int32_t rel =
      seq_diff(seg.seq, seq_add(irs_, static_cast<std::int64_t>(rcv_nxt_)));
  const std::int64_t start = static_cast<std::int64_t>(rcv_nxt_) + rel;
  const std::int64_t end = start + static_cast<std::int64_t>(seg.payload.size());

  if (end <= static_cast<std::int64_t>(rcv_nxt_)) {
    // Entirely old data — retransmission; re-ACK immediately (the peer is
    // missing our ACK).
    send_ack_now();
    return;
  }

  // A share of the arriving frame's storage; the trims below are offset
  // moves, not byte copies.
  wire::PacketBuffer data = seg.payload;
  std::uint64_t off = static_cast<std::uint64_t>(std::max<std::int64_t>(start, 0));
  if (start < static_cast<std::int64_t>(rcv_nxt_)) {
    data.trim_front(
        static_cast<std::size_t>(static_cast<std::int64_t>(rcv_nxt_) - start));
    off = rcv_nxt_;
  }

  const std::size_t room = params_.recv_buf - rx_buf_.size();
  if (off == rcv_nxt_) {
    if (data.size() > room) data.trim_to(room);  // beyond window: dropped
    if (data.empty()) {
      send_ack_now();  // window probe: answer with current window
      return;
    }
    rcv_nxt_ += data.size();
    bytes_received_total_ += data.size();
    append(rx_buf_, data);
    deliver_in_order();
    schedule_ack();
    if (!ooo_.empty()) send_ack_now();  // still a gap above us
    if (on_readable) on_readable();
  } else {
    // Out of order: stash and duplicate-ACK to trigger fast retransmit.
    if (!data.empty() && data.size() <= room) {
      stash_ooo(off, std::move(data));
    }
    send_ack_now();
  }
}

void Connection::deliver_in_order() {
  // Merge any out-of-order runs that are now contiguous.
  for (auto it = ooo_.begin(); it != ooo_.end();) {
    if (it->first > rcv_nxt_) break;
    const wire::PacketBuffer& run = it->second;
    const std::uint64_t run_end = it->first + run.size();
    if (run_end > rcv_nxt_) {
      const std::size_t skip = static_cast<std::size_t>(rcv_nxt_ - it->first);
      const std::size_t room = params_.recv_buf - rx_buf_.size();
      std::size_t take = std::min(run.size() - skip, room);
      rx_buf_.insert(rx_buf_.end(), run.begin() + static_cast<long>(skip),
                     run.begin() + static_cast<long>(skip + take));
      rcv_nxt_ += take;
      bytes_received_total_ += take;
      if (take < run.size() - skip) break;  // buffer full
    }
    it = drop_ooo_entry(it);
  }
}

void Connection::process_fin(const TcpSegment& seg) {
  const std::int32_t rel =
      seq_diff(seg.seq, seq_add(irs_, static_cast<std::int64_t>(rcv_nxt_)));
  const std::int64_t fin_off =
      static_cast<std::int64_t>(rcv_nxt_) + rel + static_cast<std::int64_t>(seg.payload.size());
  if (fin_off < 0) return;
  peer_fin_offset_ = static_cast<std::uint64_t>(fin_off);

  if (*peer_fin_offset_ != rcv_nxt_) {
    // FIN beyond data we have not received yet; wait for the gap to fill.
    send_ack_now();
    return;
  }
  rcv_nxt_ += 1;  // the FIN consumes one sequence position
  send_ack_now();

  // Transition BEFORE notifying the application: on_peer_fin handlers
  // commonly call close(), which must see CLOSE_WAIT (-> LAST_ACK), not
  // the pre-FIN state.
  switch (state_) {
    case TcpState::kEstablished:
      state_ = TcpState::kCloseWait;
      break;
    case TcpState::kFinWait1:
      // Our FIN not yet acked (otherwise we'd be in FIN_WAIT_2).
      state_ = TcpState::kClosing;
      maybe_advance_close_states();
      break;
    case TcpState::kFinWait2:
      enter_time_wait();
      break;
    default:
      break;
  }

  if (!peer_fin_delivered_) {
    peer_fin_delivered_ = true;
    if (on_peer_fin) on_peer_fin();
  }
}

void Connection::maybe_advance_close_states() {
  const bool fin_acked = fin_offset_ && snd_una_ > *fin_offset_;
  switch (state_) {
    case TcpState::kFinWait1:
      if (fin_acked) state_ = TcpState::kFinWait2;
      break;
    case TcpState::kClosing:
      if (fin_acked) enter_time_wait();
      break;
    case TcpState::kLastAck:
      if (fin_acked) teardown(CloseReason::kGraceful);
      break;
    default:
      break;
  }
}

void Connection::on_window_open() {
  // App drained the receive buffer; if we had been advertising a closed
  // (or nearly closed) window, update the peer so it can resume.
  const std::size_t now_free = params_.recv_buf - rx_buf_.size();
  if (last_adv_wnd_ < eff_mss_ &&
      now_free >= std::max<std::size_t>(eff_mss_, params_.recv_buf / 4)) {
    if (state_ == TcpState::kEstablished || state_ == TcpState::kFinWait1 ||
        state_ == TcpState::kFinWait2) {
      send_ack_now();
    }
  }
}

// ------------------------------------------------------------ lifecycle

void Connection::arm_keepalive() {
  if (params_.keepalive_idle <= 0) return;
  keepalive_unanswered_ = 0;
  keepalive_timer_.start(params_.keepalive_idle, [this] { on_keepalive(); });
}

void Connection::on_keepalive() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) return;
  if (++keepalive_unanswered_ > params_.keepalive_probes) {
    TFO_LOG(kDebug, "tcp") << key_.str() << " keepalive: peer unresponsive";
    teardown(CloseReason::kTimeout);
    return;
  }
  // Classic probe: a pure ACK with seq one below snd_nxt forces the peer
  // to answer with its current ACK (a duplicate from its point of view).
  TcpSegment seg;
  seg.src_port = key_.local_port;
  seg.dst_port = key_.remote_port;
  seg.seq = seq_add(iss_, static_cast<std::int64_t>(snd_nxt_) - 1);
  seg.flags = Flags::kAck;
  seg.ack = seq_add(irs_, static_cast<std::int64_t>(rcv_nxt_));
  seg.window = static_cast<std::uint16_t>(
      std::min<std::size_t>(params_.recv_buf - rx_buf_.size(), 65535));
  emit(std::move(seg));
  keepalive_timer_.start(params_.keepalive_interval, [this] { on_keepalive(); });
}

void Connection::leave_embryonic() {
  if (!embryonic_) return;
  embryonic_ = false;
  owner_.note_embryonic_done(key_.local_port);
}

void Connection::enter_established() {
  leave_embryonic();
  state_ = TcpState::kEstablished;
  rto_timer_.stop();
  arm_keepalive();
  if (on_established) on_established();
  if (close_requested_ && state_ == TcpState::kEstablished) {
    close_requested_ = false;
    close();
    return;
  }
  try_send();
}

void Connection::enter_time_wait() {
  state_ = TcpState::kTimeWait;
  rto_timer_.stop();
  delack_timer_.stop();
  persist_timer_.stop();
  time_wait_timer_.start(2 * params_.msl, [this] { teardown(CloseReason::kGraceful); });
}

void Connection::teardown(CloseReason reason) {
  if (state_ == TcpState::kClosed) return;
  leave_embryonic();
  state_ = TcpState::kClosed;
  rto_timer_.stop();
  delack_timer_.stop();
  persist_timer_.stop();
  time_wait_timer_.stop();
  keepalive_timer_.stop();
  // Fail any writes still queued, and unpin any stashed frames: a closed
  // connection must not keep frame storage alive until destruction.
  app_writes_.clear();
  release_all_ooo();
  if (on_closed) on_closed(reason);
  owner_.connection_closed(key_, id_);
}

}  // namespace tfo::tcp
