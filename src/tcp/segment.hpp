// TCP segment wire format (RFC 793), including the options this system
// needs: Maximum Segment Size (RFC 879) and the failover bridge's
// "original destination" option — the paper's §3.1 mechanism by which the
// secondary marks diverted segments with the address of the client they
// were really meant for.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/seq32.hpp"
#include "ip/addr.hpp"
#include "wire/packet_buffer.hpp"

namespace tfo::tcp {

struct Flags {
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;
};

struct TcpSegment {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Seq32 seq = 0;
  Seq32 ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 0;
  /// MSS option; present on SYN segments.
  std::optional<std::uint16_t> mss;
  /// Original-destination option (experimental kind 253): carried on
  /// segments the secondary bridge diverts to the primary so the primary
  /// bridge can recover the client address (§3.1).
  std::optional<ip::Ipv4> orig_dst;
  /// Shared wire buffer: on rx a zero-copy slice of the arriving frame;
  /// on tx built once with headroom so serialization prepends in place.
  wire::PacketBuffer payload;

  bool syn() const { return flags & Flags::kSyn; }
  bool fin() const { return flags & Flags::kFin; }
  bool rst() const { return flags & Flags::kRst; }
  bool has_ack() const { return flags & Flags::kAck; }
  bool psh() const { return flags & Flags::kPsh; }

  /// Sequence space the segment occupies (payload + SYN + FIN).
  std::uint32_t seg_len() const {
    return static_cast<std::uint32_t>(payload.size()) + (syn() ? 1 : 0) +
           (fin() ? 1 : 0);
  }

  std::size_t header_bytes() const;

  /// Serializes with a valid checksum over the RFC 793 pseudo-header for
  /// the given IP endpoints. Legacy copying path, kept as the
  /// byte-identical reference for take_wire() (and for callers that want
  /// a detached copy).
  Bytes serialize(ip::Ipv4 src_ip, ip::Ipv4 dst_ip) const;

  /// Zero-copy serialization: prepends the TCP header (with valid
  /// pseudo-header checksum) into the payload buffer's headroom — in
  /// place when the storage is exclusively owned — and returns the
  /// buffer. Consumes the payload (empty afterwards). Byte-identical to
  /// serialize().
  wire::PacketBuffer take_wire(ip::Ipv4 src_ip, ip::Ipv4 dst_ip);

  /// Parses and verifies the checksum against the pseudo-header. Returns
  /// nullopt on malformed input or checksum mismatch. Copies the payload.
  /// Pass `verify_checksum = false` when a lower layer (GRO receive
  /// offload) already walked the bytes and vouches for them.
  static std::optional<TcpSegment> parse(BytesView wire, ip::Ipv4 src_ip,
                                         ip::Ipv4 dst_ip,
                                         bool verify_checksum = true);

  /// Zero-copy parse: the returned segment's payload is a slice of
  /// `wire`'s storage past the TCP header. No byte copies.
  static std::optional<TcpSegment> parse(const wire::PacketBuffer& wire,
                                         ip::Ipv4 src_ip, ip::Ipv4 dst_ip,
                                         bool verify_checksum = true);

  /// Disambiguator: a Bytes argument converts equally well to BytesView
  /// and PacketBuffer, so route it to the view overload explicitly.
  static std::optional<TcpSegment> parse(const Bytes& wire, ip::Ipv4 src_ip,
                                         ip::Ipv4 dst_ip) {
    return parse(BytesView(wire), src_ip, dst_ip);
  }

  /// Byte offset of the 16-bit checksum field within a serialized segment
  /// (for in-place incremental fix-up after address rewrites).
  static constexpr std::size_t kChecksumOffset = 16;

  /// Human-readable one-liner for logs ("SYN seq=.. ack=.. len=..").
  std::string summary() const;
};

/// Patches the TCP checksum inside a serialized segment after one of the
/// pseudo-header IP addresses changed — the paper's incremental checksum
/// fix ("subtract the original bytes ... add the new bytes", §3.1).
void patch_checksum_for_address_change(Bytes& tcp_wire, ip::Ipv4 old_addr,
                                       ip::Ipv4 new_addr);

/// The same §3.1 fix-up directly on a shared wire buffer: unshares first
/// (copy-on-write) so a snooped frame whose storage a pending delivery
/// still references is never corrupted, then patches the two checksum
/// bytes in place — no parse→mutate→re-serialize round trip.
void patch_checksum_for_address_change(wire::PacketBuffer& tcp_wire,
                                       ip::Ipv4 old_addr, ip::Ipv4 new_addr);

}  // namespace tfo::tcp
