// Tunable parameters of the TCP implementation.
#pragma once

#include <cstdint>

#include "common/time.hpp"

namespace tfo::tcp {

struct TcpParams {
  /// Maximum segment size we advertise and never exceed.
  std::uint16_t mss = 1460;
  /// Send/receive buffer capacities. The paper's 64 KByte send buffer is
  /// what flattens Figure 3 below 32 KB messages.
  std::size_t send_buf = 65536;
  std::size_t recv_buf = 65536;

  /// Nagle's algorithm default; per-socket TCP_NODELAY overrides.
  bool nagle = true;

  /// Cost of copying application data into the socket send buffer, in
  /// nanoseconds per byte (the user→kernel copy of send()). 0 models an
  /// infinitely fast copy; ~8 ns/B matches the paper's late-90s hosts and
  /// produces Figure 3's sub-buffer slope.
  std::int64_t send_copy_ns_per_byte = 0;

  /// Delayed-ACK interval and the every-Nth-segment immediate-ACK rule.
  SimDuration delayed_ack = milliseconds(100);
  int ack_every_segments = 2;
  /// Immediate ACKs for the first N data segments of a connection
  /// (Linux-style initial quickack), so the peer's slow start is not
  /// stalled by delayed-ACK parity.
  int quickack_segments = 8;

  /// Retransmission timeout bounds (RFC 6298 computation in between).
  SimDuration min_rto = milliseconds(200);
  SimDuration max_rto = seconds(60);
  SimDuration initial_rto = seconds(1);

  /// Persist (zero-window probe) timer.
  SimDuration persist_interval = milliseconds(500);
  SimDuration persist_max = seconds(60);

  /// Maximum segment lifetime; TIME_WAIT holds for 2*MSL. Kept short by
  /// default so experiments with thousands of connections stay fast.
  SimDuration msl = milliseconds(500);

  /// Default listen backlog: the number of embryonic (SYN_RCVD)
  /// connections a listener may hold at once. SYNs beyond the bound are
  /// dropped silently (tcp.listen_overflows) — the client's SYN
  /// retransmission retries once the queue drains, exactly like a real
  /// stack under a burst. Per-listener override: SocketOptions::backlog.
  std::uint32_t listen_backlog = 128;

  /// Cap on the PacketBuffer bytes one connection may pin in its
  /// out-of-order stash. Each stashed slice shares (pins) the storage of
  /// the frame it arrived in, so without a cap a reordering burst across
  /// 100k connections multiplies frame lifetimes unboundedly. Segments
  /// beyond the budget are dropped — TCP-legal: the dup-ACK still goes
  /// out and the sender's retransmission delivers the data in order.
  std::size_t ooo_budget_bytes = 256 * 1024;

  /// Congestion control (slow start + AIMD). Disable for an unlimited
  /// window (useful in controlled unit tests).
  bool congestion_control = true;
  std::uint32_t initial_cwnd_segments = 2;
  int dupack_threshold = 3;

  /// SYN retransmission limit before giving up on connect.
  int max_syn_retries = 5;
  /// Data retransmission limit before aborting the connection.
  int max_retries = 12;

  /// Number of lanes the connection table is sharded across (RSS-style,
  /// by ConnKeyHash). Set by the host from its lane configuration; 1 keeps
  /// the single flat table. Purely an execution-layout knob: lookup
  /// results and iteration *contents* are identical for every value.
  unsigned lanes = 1;

  /// RFC 5961 challenge ACKs: an in-window-but-inexact RST, any SYN on a
  /// synchronized connection, and an ACK beyond everything ever sent are
  /// each answered with a rate-limited pure ACK instead of a teardown (or
  /// silence). The budgets bound the ACK amplification an off-path
  /// attacker can extract: a global per-layer allowance plus a
  /// per-connection allowance, both refreshed every interval (the shape
  /// of Linux's tcp_challenge_ack_limit).
  std::uint32_t challenge_ack_limit = 1000;
  std::uint32_t challenge_ack_per_conn = 10;
  SimDuration challenge_ack_interval = seconds(1);

  /// PMTUD hardening: an ICMP fragmentation-needed can never push the
  /// effective path MTU below this floor (RFC 1191's lowest common
  /// plateau, the same clamp Linux applies), so a forged ICMP cannot
  /// collapse the MSS to a throughput-killing sliver. The quoted segment
  /// must additionally match in-flight data or the message is rejected
  /// outright (tcp.icmp_rejected).
  std::uint16_t min_pmtu = 552;

  /// TCP keepalive: after `keepalive_idle` of silence on an established
  /// connection, send probes every `keepalive_interval`; abort after
  /// `keepalive_probes` unanswered probes. 0 idle disables (the default,
  /// like real stacks without SO_KEEPALIVE).
  SimDuration keepalive_idle = 0;
  SimDuration keepalive_interval = seconds(5);
  int keepalive_probes = 3;
};

}  // namespace tfo::tcp
