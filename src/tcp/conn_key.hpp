// The 4-tuple identifying a TCP connection (§7.1: "a TCP connection is
// uniquely identified by the 4-tuple").
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "ip/addr.hpp"

namespace tfo::tcp {

struct ConnKey {
  ip::Ipv4 local_ip;
  std::uint16_t local_port = 0;
  ip::Ipv4 remote_ip;
  std::uint16_t remote_port = 0;

  friend bool operator==(const ConnKey&, const ConnKey&) = default;
  /// Lexicographic field order: a stable, hash-independent total order for
  /// sweeps that must visit connections identically for every lane count.
  friend auto operator<=>(const ConnKey&, const ConnKey&) = default;

  ConnKey reversed() const { return {remote_ip, remote_port, local_ip, local_port}; }

  std::string str() const {
    return local_ip.str() + ":" + std::to_string(local_port) + "<->" +
           remote_ip.str() + ":" + std::to_string(remote_port);
  }
};

/// 64-bit mixed hash over the packed 4-tuple. The demux tables probe on
/// this for every segment, so it must spread keys that differ only in the
/// low port bits (the storm workload: thousands of connections between the
/// same two addresses, consecutive ephemeral ports) — the old ×31 combiner
/// put those in adjacent buckets and degraded open addressing to linear
/// scans. splitmix64 finalizer: every input bit avalanches.
struct ConnKeyHash {
  std::size_t operator()(const ConnKey& k) const noexcept {
    std::uint64_t x = (static_cast<std::uint64_t>(k.local_ip.v) << 32) |
                      (static_cast<std::uint64_t>(k.local_port) << 16) |
                      k.remote_port;
    x ^= static_cast<std::uint64_t>(k.remote_ip.v) * 0x9E3779B97F4A7C15ull;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

}  // namespace tfo::tcp

template <>
struct std::hash<tfo::tcp::ConnKey> {
  std::size_t operator()(const tfo::tcp::ConnKey& k) const noexcept {
    return tfo::tcp::ConnKeyHash{}(k);
  }
};
