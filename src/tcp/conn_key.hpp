// The 4-tuple identifying a TCP connection (§7.1: "a TCP connection is
// uniquely identified by the 4-tuple").
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "ip/addr.hpp"

namespace tfo::tcp {

struct ConnKey {
  ip::Ipv4 local_ip;
  std::uint16_t local_port = 0;
  ip::Ipv4 remote_ip;
  std::uint16_t remote_port = 0;

  friend bool operator==(const ConnKey&, const ConnKey&) = default;

  ConnKey reversed() const { return {remote_ip, remote_port, local_ip, local_port}; }

  std::string str() const {
    return local_ip.str() + ":" + std::to_string(local_port) + "<->" +
           remote_ip.str() + ":" + std::to_string(remote_port);
  }
};

}  // namespace tfo::tcp

template <>
struct std::hash<tfo::tcp::ConnKey> {
  std::size_t operator()(const tfo::tcp::ConnKey& k) const noexcept {
    std::size_t h = std::hash<std::uint32_t>{}(k.local_ip.v);
    h = h * 31 + k.local_port;
    h = h * 31 + std::hash<std::uint32_t>{}(k.remote_ip.v);
    h = h * 31 + k.remote_port;
    return h;
  }
};
