// The per-host TCP layer: connection demux, listeners, ISN/ephemeral-port
// generation, RST handling — and the segment *taps* at the TCP/IP boundary
// where the failover bridges attach (the paper's bridge sublayer sits
// "between the TCP layer and the IP layer", §1).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hpp"
#include "common/rng.hpp"
#include "common/sharded.hpp"
#include "ip/ip_layer.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "tcp/connection.hpp"
#include "tcp/conn_key.hpp"
#include "tcp/params.hpp"
#include "tcp/segment.hpp"

namespace tfo::tcp {

enum class TapVerdict { kContinue, kConsume, kDrop };

/// Outbound tap: sees every segment this host's TCP layer is about to
/// hand to IP, with mutable addresses. Runs before serialization, so any
/// mutation is checksummed correctly on the wire.
using OutboundTap = std::function<TapVerdict(TcpSegment&, ip::Ipv4& src, ip::Ipv4& dst)>;

/// Inbound tap: sees every TCP segment after parse/checksum-verify and
/// before connection demux.
using InboundTap =
    std::function<TapVerdict(TcpSegment&, ip::Ipv4& src, ip::Ipv4& dst, const ip::RxMeta&)>;

using TapId = std::uint64_t;

/// Options applied to sockets created by connect()/listen().
struct SocketOptions {
  bool nodelay = false;
  /// The paper's §7 method 1: mark this socket's connection as a TCP
  /// failover connection.
  bool failover = false;
  /// Listen backlog override (embryonic-connection bound); 0 uses
  /// TcpParams::listen_backlog.
  std::uint32_t backlog = 0;
};

class TcpLayer {
 public:
  using AcceptHandler = std::function<void(std::shared_ptr<Connection>)>;

  TcpLayer(sim::Simulator& sim, ip::IpLayer& ip, TcpParams params = {},
           std::uint64_t seed = 1);

  sim::Simulator& simulator() { return sim_; }
  ip::IpLayer& ip() { return ip_; }
  const TcpParams& params() const { return params_; }
  TcpParams& mutable_params() { return params_; }

  /// Starts listening on `port`; `on_accept` fires once per connection
  /// when it reaches ESTABLISHED.
  void listen(std::uint16_t port, AcceptHandler on_accept, SocketOptions opts = {});
  void close_listener(std::uint16_t port);
  /// True if a listener exists on `port` with the failover socket option
  /// set (§7 method 1; the secondary bridge consults this to classify
  /// snooped SYNs).
  bool listener_is_failover(std::uint16_t port) const;

  /// Active open to `remote`. The returned connection is in SYN_SENT;
  /// observe on_established / on_closed.
  std::shared_ptr<Connection> connect(ip::Ipv4 remote_ip, std::uint16_t remote_port,
                                      SocketOptions opts = {},
                                      std::uint16_t local_port = 0);

  std::shared_ptr<Connection> find(const ConnKey& key) const;
  std::size_t connection_count() const { return conns_.size(); }

  /// Iterates over all live connections (diagnostics; bridge attachment
  /// to a host with pre-existing connections).
  void for_each_connection(const std::function<void(const Connection&)>& fn) const {
    conns_.for_each(
        [&fn](const ConnKey&, const std::shared_ptr<Connection>& c) { fn(*c); });
  }

  TapId add_outbound_tap(OutboundTap tap);
  TapId add_inbound_tap(InboundTap tap);
  void remove_tap(TapId id);

  /// Emission path used by connections; runs outbound taps then IP send.
  void send_segment(TcpSegment seg, ip::Ipv4 src, ip::Ipv4 dst);

  /// Emission bypassing taps (bridge re-emission of merged segments).
  /// Takes the segment by value: callers that std::move get an in-place
  /// header prepend into the payload's headroom; callers that pass an
  /// lvalue pay one storage share plus a copy-on-write at serialization.
  void send_segment_raw(TcpSegment seg, ip::Ipv4 src, ip::Ipv4 dst);

  /// Rebinds every connection whose local address is `from` — and for
  /// which `filter` returns true — to `to`, rekeying the demux table
  /// (IP takeover support, DESIGN.md §5.2). A null filter matches all.
  void rekey_local_address(ip::Ipv4 from, ip::Ipv4 to,
                           const std::function<bool(const Connection&)>& filter = {});

  /// Test hook: force the ISN of the next connection created.
  void set_next_isn(Seq32 isn) { forced_isn_ = isn; }

  /// Test hook: restrict the ephemeral port range (inclusive). Makes
  /// port-space exhaustion reachable in a unit test without opening
  /// 16384 connections.
  void set_ephemeral_range(std::uint16_t lo, std::uint16_t hi) {
    eph_lo_ = lo;
    eph_hi_ = hi;
    next_ephemeral_ = lo;
  }

  /// Attaches this layer to a host's observability hub (null detaches).
  /// Called by apps::Host at construction; standalone layers run bare.
  void set_observability(obs::Hub* hub);
  obs::Hub* observability() const { return obs_; }

  /// RFC 6528-style ISN: a monotonic clock component plus a per-4-tuple
  /// keyed offset. Successive connections on the same tuple always get a
  /// strictly increasing ISN — the monotonicity TIME_WAIT recycling keys
  /// on. (set_next_isn overrides the next call.)
  Seq32 generate_isn(const ConnKey& key);
  /// Returns 0 when the ephemeral space is exhausted (the caller's
  /// connect() fails like a real stack's EADDRNOTAVAIL, instead of
  /// asserting out of a churn experiment).
  std::uint16_t allocate_ephemeral_port();

  // Internal (Connection support).
  /// `id` guards the deferred erase against ABA: if the 4-tuple was
  /// recycled before the erase runs, the new connection must survive.
  void connection_closed(const ConnKey& key, std::uint64_t id);
  /// An embryonic (SYN_RCVD) connection left the listen queue on `port`
  /// (established, timed out, or reset) — frees one backlog slot.
  void note_embryonic_done(std::uint16_t port);
  /// Monotonic per-layer connection id — never reused, unlike the 4-tuple
  /// or the Connection's address. Applications key session state on this
  /// (see src/apps) so a recycled allocation can't inherit stale state.
  std::uint64_t allocate_conn_id() { return next_conn_id_++; }
  /// Connections report PacketBuffer bytes they pin (out-of-order slices)
  /// so the aggregate is visible as the tcp.conn_bytes_pinned gauge.
  void note_pinned_delta(std::int64_t delta);
  /// A connection dropped an out-of-order segment because stashing it
  /// would exceed params().ooo_budget_bytes.
  void note_ooo_budget_drop();
  /// RFC 5961 §7 rate limiting: charges one challenge ACK against both the
  /// layer-wide and `conn`'s per-connection budget for the current
  /// interval. Returns false (tcp.challenge_acks_limited) when either
  /// budget is exhausted; true (tcp.challenge_acks) when the ACK may go
  /// out. Budgets refresh when the interval timer — one timing-wheel slot
  /// per busy interval, not one per connection — advances the epoch.
  bool approve_challenge_ack(Connection& conn);

 private:
  struct Listener {
    AcceptHandler on_accept;
    SocketOptions opts;
    /// Embryonic (SYN_RCVD) connections currently charged to this
    /// listener's backlog.
    std::uint32_t pending = 0;
    // Per-listener accept-rate counters (tcp.listen.<port>.*), resolved
    // in listen()/set_observability; null when no hub is attached.
    obs::Counter* ctr_accepted = nullptr;
    obs::Counter* ctr_overflows = nullptr;
  };

  void on_datagram(const ip::IpDatagram& dgram, const ip::RxMeta& meta);
  /// ICMP fragmentation-needed: validated against the quoted connection's
  /// in-flight data before any MSS change (tcp.icmp_rejected otherwise).
  void on_icmp(const ip::IpDatagram& dgram, const ip::RxMeta& meta);
  void handle_for_listener(const TcpSegment& seg, ip::Ipv4 src, ip::Ipv4 dst);
  void send_rst_for(const TcpSegment& seg, ip::Ipv4 src, ip::Ipv4 dst);
  void insert_conn(const ConnKey& key, std::shared_ptr<Connection> conn);
  /// Drops one reference to `port` in port_use_, erasing the entry when
  /// the count reaches zero (the map holds live ports only).
  void release_port(std::uint16_t port);
  void resolve_listener_counters(std::uint16_t port, Listener& l);
  /// BSD-style TIME_WAIT recycling: a new SYN whose ISN is strictly newer
  /// than everything the old incarnation acknowledged evicts the
  /// TIME_WAIT connection and re-enters the listen path.
  bool maybe_recycle_time_wait(const std::shared_ptr<Connection>& conn,
                               const TcpSegment& seg);

  sim::Simulator& sim_;
  ip::IpLayer& ip_;
  TcpParams params_;
  Rng rng_;
  /// The demux table, sharded by ConnKeyHash across params.lanes lanes so
  /// a lane's segments only probe its own shard. Failover rekeys may move
  /// a connection between shards (cross-lane handoff, lane.cross_handoffs).
  ShardedMap<ConnKey, std::shared_ptr<Connection>, ConnKeyHash> conns_;
  /// Live-connection refcount per local port: O(1) collision checks in
  /// allocate_ephemeral_port (the old scan over conns_ made opening N
  /// connections O(N²) — fatal at storm scale). Holds only ports that are
  /// actually in use — the allocator probes with find() and never inserts,
  /// so a churn run's port scan cannot bloat the table with zero entries,
  /// and an idle host's footprint is O(live ports), not O(65536).
  struct PortHash {
    std::size_t operator()(std::uint16_t p) const noexcept {
      std::uint64_t x = p;
      x *= 0x9E3779B97F4A7C15ull;
      x ^= x >> 32;
      return static_cast<std::size_t>(x);
    }
  };
  FlatMap<std::uint16_t, std::uint32_t, PortHash> port_use_;
  std::unordered_map<std::uint16_t, Listener> listeners_;
  std::vector<std::pair<TapId, OutboundTap>> out_taps_;
  std::vector<std::pair<TapId, InboundTap>> in_taps_;
  TapId next_tap_id_ = 1;
  std::uint16_t eph_lo_ = 49152;
  std::uint16_t eph_hi_ = 65535;
  std::uint16_t next_ephemeral_ = 49152;
  /// Key folded into every generated ISN's per-tuple offset (RFC 6528's
  /// F(4-tuple, secret)); drawn from the layer seed at construction.
  std::uint64_t isn_secret_ = 0;
  std::uint64_t next_conn_id_ = 1;
  std::int64_t pinned_bytes_ = 0;
  std::optional<Seq32> forced_isn_;

  /// Challenge-ACK rate limiting (RFC 5961 §7). The epoch counts completed
  /// intervals; connections compare their own epoch against it to refresh
  /// per-connection budgets lazily. The timer runs only while challenges
  /// are being issued (armed on first use per interval).
  sim::Timer challenge_timer_;
  std::uint64_t challenge_epoch_ = 1;
  std::uint32_t challenge_global_used_ = 0;

  // Observability handles (null when no hub is attached). The counter
  // pointers are resolved once in set_observability — the per-segment
  // paths must not pay a map lookup.
  obs::Hub* obs_ = nullptr;
  obs::Counter* ctr_segments_sent_ = nullptr;
  obs::Counter* ctr_segments_received_ = nullptr;
  obs::Counter* ctr_segments_malformed_ = nullptr;
  obs::Counter* ctr_rst_sent_ = nullptr;
  obs::Counter* ctr_conns_opened_ = nullptr;
  obs::Counter* ctr_conns_accepted_ = nullptr;
  obs::Counter* ctr_ooo_budget_drops_ = nullptr;
  obs::Counter* ctr_cross_handoffs_ = nullptr;
  obs::Counter* ctr_listen_overflows_ = nullptr;
  obs::Counter* ctr_tw_recycled_ = nullptr;
  obs::Counter* ctr_challenge_acks_ = nullptr;
  obs::Counter* ctr_challenge_limited_ = nullptr;
  obs::Counter* ctr_icmp_rejected_ = nullptr;
  obs::Gauge* gau_connections_ = nullptr;
  obs::Gauge* gau_pinned_bytes_ = nullptr;
};

}  // namespace tfo::tcp
