#include "tcp/tcp_layer.hpp"

#include <algorithm>
#include <string>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "ip/icmp.hpp"

namespace tfo::tcp {

TcpLayer::TcpLayer(sim::Simulator& sim, ip::IpLayer& ip, TcpParams params,
                   std::uint64_t seed)
    : sim_(sim),
      ip_(ip),
      params_(params),
      rng_(seed),
      conns_(params.lanes == 0 ? 1 : params.lanes),
      challenge_timer_(sim) {
  isn_secret_ = rng_.next_u64();
  ip_.register_protocol(ip::Proto::kTcp,
                        [this](const ip::IpDatagram& d, const ip::RxMeta& m) {
                          on_datagram(d, m);
                        });
  ip_.register_protocol(ip::Proto::kIcmp,
                        [this](const ip::IpDatagram& d, const ip::RxMeta& m) {
                          on_icmp(d, m);
                        });
}

void TcpLayer::set_observability(obs::Hub* hub) {
  obs_ = hub;
  if (!hub) {
    ctr_segments_sent_ = ctr_segments_received_ = ctr_segments_malformed_ = nullptr;
    ctr_rst_sent_ = ctr_conns_opened_ = ctr_conns_accepted_ = nullptr;
    ctr_ooo_budget_drops_ = ctr_cross_handoffs_ = nullptr;
    ctr_listen_overflows_ = ctr_tw_recycled_ = nullptr;
    ctr_challenge_acks_ = ctr_challenge_limited_ = ctr_icmp_rejected_ = nullptr;
    gau_connections_ = gau_pinned_bytes_ = nullptr;
    for (auto& [port, l] : listeners_) l.ctr_accepted = l.ctr_overflows = nullptr;
    return;
  }
  auto& reg = hub->registry;
  ctr_segments_sent_ = &reg.counter("tcp.segments_sent");
  ctr_segments_received_ = &reg.counter("tcp.segments_received");
  ctr_segments_malformed_ = &reg.counter("tcp.segments_malformed");
  ctr_rst_sent_ = &reg.counter("tcp.rst_sent");
  ctr_conns_opened_ = &reg.counter("tcp.connections_opened");
  ctr_conns_accepted_ = &reg.counter("tcp.connections_accepted");
  ctr_ooo_budget_drops_ = &reg.counter("tcp.ooo_dropped_budget");
  ctr_cross_handoffs_ = &reg.counter("lane.cross_handoffs");
  ctr_listen_overflows_ = &reg.counter("tcp.listen_overflows");
  ctr_tw_recycled_ = &reg.counter("tcp.time_wait_recycled");
  ctr_challenge_acks_ = &reg.counter("tcp.challenge_acks");
  ctr_challenge_limited_ = &reg.counter("tcp.challenge_acks_limited");
  ctr_icmp_rejected_ = &reg.counter("tcp.icmp_rejected");
  gau_connections_ = &reg.gauge("tcp.connections");
  gau_pinned_bytes_ = &reg.gauge("tcp.conn_bytes_pinned");
  gau_pinned_bytes_->set(pinned_bytes_);
  // Listeners created before the hub was attached get their per-port
  // counters now (apps::Host wires observability after construction, but
  // tests may listen() first).
  for (auto& [port, l] : listeners_) resolve_listener_counters(port, l);
}

void TcpLayer::resolve_listener_counters(std::uint16_t port, Listener& l) {
  if (!obs_) return;
  const std::string prefix = "tcp.listen." + std::to_string(port);
  l.ctr_accepted = &obs_->registry.counter(prefix + ".accepted");
  l.ctr_overflows = &obs_->registry.counter(prefix + ".overflows");
}

void TcpLayer::note_pinned_delta(std::int64_t delta) {
  pinned_bytes_ += delta;
  if (gau_pinned_bytes_) gau_pinned_bytes_->set(pinned_bytes_);
}

void TcpLayer::note_ooo_budget_drop() {
  if (ctr_ooo_budget_drops_) ctr_ooo_budget_drops_->inc();
}

bool TcpLayer::approve_challenge_ack(Connection& conn) {
  // Lazy per-connection refresh: a connection that last challenged in an
  // older interval gets a fresh budget, without any per-connection timer.
  if (conn.challenge_epoch_ != challenge_epoch_) {
    conn.challenge_epoch_ = challenge_epoch_;
    conn.challenge_used_ = 0;
  }
  if (challenge_global_used_ >= params_.challenge_ack_limit ||
      conn.challenge_used_ >= params_.challenge_ack_per_conn) {
    if (ctr_challenge_limited_) ctr_challenge_limited_->inc();
    return false;
  }
  ++challenge_global_used_;
  ++conn.challenge_used_;
  if (ctr_challenge_acks_) ctr_challenge_acks_->inc();
  // One wheel slot per busy interval: armed on the interval's first
  // challenge, idle otherwise.
  if (!challenge_timer_.armed()) {
    challenge_timer_.start(params_.challenge_ack_interval, [this] {
      ++challenge_epoch_;
      challenge_global_used_ = 0;
    });
  }
  return true;
}

void TcpLayer::on_icmp(const ip::IpDatagram& dgram, const ip::RxMeta& meta) {
  (void)meta;
  const auto msg = ip::IcmpMessage::parse(dgram.payload);
  if (!msg || msg->type != ip::kIcmpDestUnreachable ||
      msg->code != ip::kIcmpFragNeeded || msg->quoted_proto != 6) {
    if (msg && ctr_icmp_rejected_) ctr_icmp_rejected_->inc();
    return;
  }
  // The quoted datagram is one *we* sent, so its source is our local end:
  // demux on {quoted src, quoted src port, quoted dst, quoted dst port}.
  const ConnKey key{msg->quoted_src, msg->quoted_src_port, msg->quoted_dst,
                    msg->quoted_dst_port};
  const auto conn = find(key);
  if (!conn ||
      !conn->on_icmp_frag_needed(static_cast<Seq32>(msg->quoted_seq), msg->mtu)) {
    // No such connection, or the quoted sequence number is not in flight:
    // a stale message or an off-path forgery. Never act on it.
    if (ctr_icmp_rejected_) ctr_icmp_rejected_->inc();
    TFO_LOG(kDebug, "tcp") << "ICMP frag-needed rejected for " << key.str();
    return;
  }
}

Seq32 TcpLayer::generate_isn(const ConnKey& key) {
  if (forced_isn_) {
    const Seq32 isn = *forced_isn_;
    forced_isn_.reset();
    return isn;
  }
  // RFC 6528: ISN = M + F(4-tuple, secret). M is a ~1µs-tick clock, so a
  // reconnect on a recycled 4-tuple always carries an ISN strictly above
  // anything the previous incarnation could have sent — the monotonicity
  // the TIME_WAIT recycle check compares against. F is constant per
  // tuple, so it cancels in that comparison.
  const std::uint64_t clock = sim_.now() >> 10;
  std::uint64_t f = ConnKeyHash{}(key) ^ isn_secret_;
  f *= 0x2545F4914F6CDD1Dull;
  f ^= f >> 32;
  return static_cast<Seq32>(clock + f);
}

std::uint16_t TcpLayer::allocate_ephemeral_port() {
  // Deterministic allocation: replicated applications performing the same
  // active opens in the same order get the same ports on both replicas
  // (required for §7.2 server-initiated failover connections).
  const int span = eph_hi_ - eph_lo_ + 1;
  for (int i = 0; i < span; ++i) {
    const std::uint16_t port = next_ephemeral_;
    next_ephemeral_ = next_ephemeral_ >= eph_hi_ ? eph_lo_ : next_ephemeral_ + 1;
    // Probe only — a scan over the port space must not populate the map
    // with dead zero entries (find, never operator[]).
    if (!listeners_.contains(port) && port_use_.find_value(port) == nullptr) {
      return port;
    }
  }
  // Exhausted: fail the allocation like EADDRNOTAVAIL. Under churn this
  // is a load signal, not a programming error — TIME_WAIT recycling and
  // 2MSL expiry will free ports for later connects.
  TFO_LOG(kDebug, "tcp") << "ephemeral port space exhausted";
  return 0;
}

void TcpLayer::insert_conn(const ConnKey& key, std::shared_ptr<Connection> conn) {
  auto r = conns_.try_emplace(key);
  if (r.second) ++*port_use_.try_emplace(key.local_port, 0u).first;
  *r.first = std::move(conn);
  if (gau_connections_) gau_connections_->set(static_cast<std::int64_t>(conns_.size()));
}

void TcpLayer::release_port(std::uint16_t port) {
  if (auto* n = port_use_.find_value(port)) {
    if (--*n == 0) port_use_.erase(port);
  }
}

void TcpLayer::listen(std::uint16_t port, AcceptHandler on_accept, SocketOptions opts) {
  Listener l{std::move(on_accept), opts};
  resolve_listener_counters(port, l);
  listeners_[port] = std::move(l);
}

void TcpLayer::close_listener(std::uint16_t port) { listeners_.erase(port); }

bool TcpLayer::listener_is_failover(std::uint16_t port) const {
  auto it = listeners_.find(port);
  return it != listeners_.end() && it->second.opts.failover;
}

std::shared_ptr<Connection> TcpLayer::connect(ip::Ipv4 remote_ip,
                                              std::uint16_t remote_port,
                                              SocketOptions opts,
                                              std::uint16_t local_port) {
  ConnKey key;
  key.local_ip = ip_.address();
  key.local_port = local_port != 0 ? local_port : allocate_ephemeral_port();
  if (key.local_port == 0) return nullptr;  // ephemeral space exhausted
  key.remote_ip = remote_ip;
  key.remote_port = remote_port;
  auto conn = std::make_shared<Connection>(*this, key, params_, opts.failover);
  if (opts.nodelay) conn->set_nodelay(true);
  insert_conn(key, conn);
  if (ctr_conns_opened_) ctr_conns_opened_->inc();
  conn->start_active_open();
  return conn;
}

std::shared_ptr<Connection> TcpLayer::find(const ConnKey& key) const {
  const auto* v = conns_.find_value(key);
  return v == nullptr ? nullptr : *v;
}

TapId TcpLayer::add_outbound_tap(OutboundTap tap) {
  const TapId id = next_tap_id_++;
  out_taps_.emplace_back(id, std::move(tap));
  return id;
}

TapId TcpLayer::add_inbound_tap(InboundTap tap) {
  const TapId id = next_tap_id_++;
  in_taps_.emplace_back(id, std::move(tap));
  return id;
}

void TcpLayer::remove_tap(TapId id) {
  auto drop = [id](auto& vec) {
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [id](const auto& p) { return p.first == id; }),
              vec.end());
  };
  drop(out_taps_);
  drop(in_taps_);
}

void TcpLayer::send_segment(TcpSegment seg, ip::Ipv4 src, ip::Ipv4 dst) {
  for (auto& [id, tap] : out_taps_) {
    switch (tap(seg, src, dst)) {
      case TapVerdict::kContinue: break;
      case TapVerdict::kConsume: return;
      case TapVerdict::kDrop: return;
    }
  }
  send_segment_raw(std::move(seg), src, dst);
}

void TcpLayer::send_segment_raw(TcpSegment seg, ip::Ipv4 src, ip::Ipv4 dst) {
  if (ctr_segments_sent_) ctr_segments_sent_->inc();
  // take_wire prepends the TCP header into the payload's headroom — in
  // place whenever this call owns the payload storage exclusively.
  ip_.send(ip::Proto::kTcp, src, dst, seg.take_wire(src, dst));
}

void TcpLayer::rekey_local_address(ip::Ipv4 from, ip::Ipv4 to,
                                   const std::function<bool(const Connection&)>& filter) {
  // Collect-then-move: FlatMap iterators do not survive erase, and the
  // move order must not depend on hash-table slot order. Sorting by the
  // stable connection id keeps the rekey deterministic.
  std::vector<std::shared_ptr<Connection>> moved;
  conns_.for_each([&](const ConnKey& key, const std::shared_ptr<Connection>& conn) {
    if (key.local_ip == from && (!filter || filter(*conn))) moved.push_back(conn);
  });
  std::sort(moved.begin(), moved.end(),
            [](const auto& a, const auto& b) { return a->id() < b->id(); });
  for (auto& conn : moved) {
    const ConnKey old_key = conn->key();
    if (conns_.erase(old_key)) release_port(old_key.local_port);
    conn->rebind_local_ip(to);
    const ConnKey new_key = conn->key();  // read before the move nulls conn
    // Rekeying changes the 4-tuple hash, so a failed-over connection may
    // migrate to a different lane's shard: a cross-lane handoff.
    if (conns_.shard_of(new_key) != conns_.shard_of(old_key) &&
        ctr_cross_handoffs_ != nullptr) {
      ctr_cross_handoffs_->inc();
    }
    insert_conn(new_key, std::move(conn));
  }
}

void TcpLayer::connection_closed(const ConnKey& key, std::uint64_t id) {
  // Deferred: the connection may be deep in its own call stack. The id
  // check guards against ABA — if TIME_WAIT recycling (or any same-tick
  // reconnect) re-populated this 4-tuple before the erase runs, the slot
  // now holds a different, live connection that must survive.
  sim_.schedule_after(0, [this, key, id] {
    const auto* v = conns_.find_value(key);
    if (v == nullptr || (*v)->id() != id) return;
    conns_.erase(key);
    release_port(key.local_port);
    if (gau_connections_) gau_connections_->set(static_cast<std::int64_t>(conns_.size()));
  });
}

void TcpLayer::note_embryonic_done(std::uint16_t port) {
  auto it = listeners_.find(port);
  if (it != listeners_.end() && it->second.pending > 0) --it->second.pending;
}

void TcpLayer::on_datagram(const ip::IpDatagram& dgram, const ip::RxMeta& meta) {
  auto parsed = TcpSegment::parse(dgram.payload, dgram.src, dgram.dst,
                                  /*verify_checksum=*/!meta.checksums_verified);
  if (!parsed) {
    TFO_LOG(kDebug, "tcp") << "segment dropped (bad checksum or malformed)";
    if (ctr_segments_malformed_) ctr_segments_malformed_->inc();
    return;
  }
  if (ctr_segments_received_) ctr_segments_received_->inc();
  TcpSegment seg = std::move(*parsed);
  ip::Ipv4 src = dgram.src;
  ip::Ipv4 dst = dgram.dst;

  for (auto& [id, tap] : in_taps_) {
    switch (tap(seg, src, dst, meta)) {
      case TapVerdict::kContinue: break;
      case TapVerdict::kConsume: return;
      case TapVerdict::kDrop: return;
    }
  }

  ConnKey key{dst, seg.dst_port, src, seg.src_port};
  if (auto* connp = conns_.find_value(key)) {
    // Hold a reference: recycling erases the table slot under us.
    std::shared_ptr<Connection> conn = *connp;
    if (maybe_recycle_time_wait(conn, seg)) {
      handle_for_listener(seg, src, dst);
      return;
    }
    conn->handle_segment(seg);
    return;
  }
  if (seg.syn() && !seg.has_ack()) {
    handle_for_listener(seg, src, dst);
    return;
  }
  if (!seg.rst()) send_rst_for(seg, src, dst);
}

bool TcpLayer::maybe_recycle_time_wait(const std::shared_ptr<Connection>& conn,
                                       const TcpSegment& seg) {
  // BSD-style recycling on the listening side only: a fresh SYN for a
  // 4-tuple parked in TIME_WAIT may cut 2MSL short iff its ISN is
  // strictly newer than everything the previous incarnation acknowledged
  // — then no old segment can fall inside the new receive window, which
  // is the whole point of the quiet period. RFC 6528 ISNs make the
  // criterion hold for every genuine reconnect; old duplicate SYNs fail
  // it and fall through to the RFC 1337 handling in the connection.
  if (conn->state() != TcpState::kTimeWait) return false;
  if (!seg.syn() || seg.has_ack()) return false;
  if (!listeners_.contains(seg.dst_port)) return false;
  if (seq_diff(seg.seq, conn->rcv_nxt_abs()) <= 0) return false;
  if (ctr_tw_recycled_) ctr_tw_recycled_->inc();
  TFO_LOG(kDebug, "tcp") << conn->key().str() << " TIME_WAIT recycled by newer SYN";
  // Evict synchronously so the listener path can claim the 4-tuple now;
  // the teardown's own deferred erase is id-guarded and becomes a no-op.
  const ConnKey key = conn->key();
  if (conns_.erase(key)) release_port(key.local_port);
  if (gau_connections_) gau_connections_->set(static_cast<std::int64_t>(conns_.size()));
  conn->teardown(CloseReason::kGraceful);
  return true;
}

void TcpLayer::handle_for_listener(const TcpSegment& seg, ip::Ipv4 src, ip::Ipv4 dst) {
  auto it = listeners_.find(seg.dst_port);
  if (it == listeners_.end()) {
    send_rst_for(seg, src, dst);
    return;
  }
  Listener& l = it->second;
  const std::uint32_t backlog =
      l.opts.backlog != 0 ? l.opts.backlog : params_.listen_backlog;
  if (l.pending >= backlog) {
    // Listen queue full: drop the SYN silently, exactly like a real stack
    // under a burst — no RST, the client's SYN retransmission retries
    // after the queue drains. Allocating anyway would let a SYN flood
    // grow the connection table without bound.
    if (ctr_listen_overflows_) ctr_listen_overflows_->inc();
    if (l.ctr_overflows) l.ctr_overflows->inc();
    TFO_LOG(kDebug, "tcp") << "listen backlog full on port " << seg.dst_port
                           << ", SYN dropped";
    return;
  }
  ++l.pending;
  ConnKey key{dst, seg.dst_port, src, seg.src_port};
  auto conn = std::make_shared<Connection>(*this, key, params_, l.opts.failover);
  if (l.opts.nodelay) conn->set_nodelay(true);
  conn->embryonic_ = true;  // charged to the listener's backlog
  insert_conn(key, conn);
  if (ctr_conns_accepted_) ctr_conns_accepted_->inc();
  if (l.ctr_accepted) l.ctr_accepted->inc();
  // Surface the connection to the application when it completes the
  // handshake (BSD semantics: accept returns an ESTABLISHED socket).
  conn->on_established = [conn_weak = std::weak_ptr<Connection>(conn),
                          cb = l.on_accept] {
    if (auto c = conn_weak.lock()) {
      if (cb) cb(c);
    }
  };
  conn->start_passive_open(seg);
}

void TcpLayer::send_rst_for(const TcpSegment& seg, ip::Ipv4 src, ip::Ipv4 dst) {
  TcpSegment rst;
  rst.src_port = seg.dst_port;
  rst.dst_port = seg.src_port;
  rst.flags = Flags::kRst;
  if (seg.has_ack()) {
    rst.seq = seg.ack;
  } else {
    rst.flags |= Flags::kAck;
    rst.seq = 0;
    rst.ack = seq_add(seg.seq, seg.seg_len());
  }
  TFO_LOG(kDebug, "tcp") << "RST for stray segment " << seg.summary();
  if (ctr_rst_sent_) ctr_rst_sent_->inc();
  send_segment(std::move(rst), dst, src);
}

}  // namespace tfo::tcp
