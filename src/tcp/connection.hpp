// One TCP connection endpoint: the RFC 793 state machine with sliding-
// window flow control, RFC 6298 retransmission, delayed ACKs, Nagle,
// zero-window probing, slow start/AIMD congestion control, and the full
// close handshake including TIME_WAIT.
//
// Applications drive a Connection through the Socket facade
// (tcp/socket.hpp); the TcpLayer owns demux and segment I/O.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "common/bytes.hpp"
#include "common/seq32.hpp"
#include "common/time.hpp"
#include "sim/timer.hpp"
#include "tcp/conn_key.hpp"
#include "tcp/params.hpp"
#include "tcp/segment.hpp"

namespace tfo::tcp {

class TcpLayer;

enum class TcpState {
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kClosing,
  kLastAck,
  kTimeWait,
  kClosed,
};

const char* state_name(TcpState s);

/// Why a connection reached kClosed.
enum class CloseReason {
  kGraceful,       // both FINs exchanged and acknowledged
  kReset,          // peer sent RST
  kTimeout,        // retransmission limit exceeded
  kRefused,        // connect() rejected (RST in SYN_SENT)
  kAborted,        // local abort()
};

class Connection : public std::enable_shared_from_this<Connection> {
 public:
  /// Created via TcpLayer::connect / listener accept path only.
  Connection(TcpLayer& owner, ConnKey key, TcpParams params, bool failover_flagged);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // ------------------------------------------------------------ app API
  /// Queues `data` for transmission. `on_accepted` fires when the last
  /// byte has been handed to the stack's send buffer — the paper's §9
  /// definition of send completion ("the send call returns when the
  /// application has passed the last byte to the stack").
  void send(Bytes data, std::function<void()> on_accepted = nullptr);

  /// Moves up to `max` received bytes into `out`; returns the count.
  std::size_t recv(Bytes& out, std::size_t max = SIZE_MAX);
  std::size_t rx_available() const { return rx_buf_.size(); }

  /// Graceful close of our sending direction (FIN after queued data).
  void close();
  /// Immediate teardown with RST.
  void abort();

  void set_nodelay(bool on) { nodelay_ = on; }

  // ---------------------------------------------------------- callbacks
  std::function<void()> on_established;
  std::function<void()> on_readable;
  /// Peer closed its sending direction (we saw its FIN).
  std::function<void()> on_peer_fin;
  std::function<void(CloseReason)> on_closed;

  // ------------------------------------------------------------- state
  TcpState state() const { return state_; }
  const ConnKey& key() const { return key_; }
  /// Monotonic id assigned at construction, unique for the owning layer's
  /// lifetime. Applications key session tables on this instead of the
  /// Connection* (which the allocator recycles) or the 4-tuple (which a
  /// reconnecting client reuses).
  std::uint64_t id() const { return id_; }
  /// RCV.NXT as an absolute 32-bit sequence number (IRS + offset). The
  /// layer's TIME_WAIT recycle check compares a new SYN's ISN against
  /// this: strictly newer means no old segment can enter the new window.
  Seq32 rcv_nxt_abs() const { return seq_add(irs_, static_cast<std::int64_t>(rcv_nxt_)); }
  /// PacketBuffer bytes currently pinned by the out-of-order stash.
  std::size_t ooo_bytes_pinned() const { return ooo_bytes_; }
  bool failover_flagged() const { return failover_flagged_; }
  std::uint64_t bytes_sent_total() const { return bytes_sent_total_; }
  std::uint64_t bytes_received_total() const { return bytes_received_total_; }
  std::uint32_t effective_mss() const { return eff_mss_; }
  /// Receive window most recently advertised to the peer.
  std::uint16_t advertised_window() const { return last_adv_wnd_; }
  std::size_t send_buffer_used() const { return send_buf_.size(); }
  std::size_t send_queue_pending() const;

  /// Introspection snapshot (diagnostics, tests, benches).
  struct Info {
    std::uint64_t timeouts = 0;          // RTO firings
    std::uint64_t fast_retransmits = 0;  // 3-dupack recoveries
    std::uint64_t segments_sent = 0;
    std::uint64_t segments_received = 0;
    SimDuration srtt = 0;
    SimDuration rto = 0;
    std::uint32_t cwnd = 0;
    std::uint32_t ssthresh = 0;
    std::uint32_t snd_wnd = 0;
    std::uint64_t bytes_in_flight = 0;
  };
  Info info() const;

  // --------------------------------------------- driven by the TcpLayer
  void start_active_open();
  void start_passive_open(const TcpSegment& syn);
  void handle_segment(const TcpSegment& seg);
  /// Rebinds the local IP (IP takeover rekey; see DESIGN.md §5.2).
  void rebind_local_ip(ip::Ipv4 new_ip) { key_.local_ip = new_ip; }

 private:
  // Segment emission.
  void emit(TcpSegment seg);
  void send_syn(bool with_ack);
  void send_ack_now();
  /// RFC 5961 challenge ACK: a pure ACK of the current state, sent only if
  /// the layer's global and this connection's per-connection rate budgets
  /// allow it (tcp.challenge_acks / tcp.challenge_acks_limited).
  void send_challenge_ack();
  void send_rst();
  void schedule_ack();

  /// ICMP fragmentation-needed for this connection. Validates the quoted
  /// sequence number against in-flight data and clamps the claimed MTU at
  /// params.min_pmtu before shrinking eff_mss_. Returns false when the
  /// message was rejected as implausible (forged or stale).
  bool on_icmp_frag_needed(Seq32 quoted_seq, std::uint32_t claimed_mtu);

  // Output engine.
  void try_send();
  std::uint32_t in_flight() const { return static_cast<std::uint32_t>(snd_nxt_ - snd_una_); }
  std::uint32_t usable_window() const;
  void pump_app_writes();
  bool fin_ready_at(std::uint64_t offset) const;

  // Retransmission machinery.
  void arm_rto();
  void on_rto();
  void retransmit_head();
  void rtt_sample_maybe(std::uint64_t acked_to);

  // Inbound processing helpers.
  /// Returns false when the ACK is unacceptable under RFC 5961 §5.2 (a
  /// stale duplicate or a blind probe) — the caller must then drop the
  /// whole segment, payload included: otherwise spoofed data riding an
  /// unacceptable ACK would still reach the receive queue.
  bool process_ack(const TcpSegment& seg);
  void process_data(const TcpSegment& seg);
  void process_fin(const TcpSegment& seg);
  void deliver_in_order();
  void on_window_open();

  // Out-of-order stash accounting (pinned-byte budget).
  bool stash_ooo(std::uint64_t off, wire::PacketBuffer data);
  std::map<std::uint64_t, wire::PacketBuffer>::iterator drop_ooo_entry(
      std::map<std::uint64_t, wire::PacketBuffer>::iterator it);
  void release_all_ooo();

  // Lifecycle.
  void enter_established();
  void enter_time_wait();
  void teardown(CloseReason reason);
  void maybe_advance_close_states();
  /// Releases this connection's listen-backlog slot (first exit from
  /// SYN_RCVD only; idempotent).
  void leave_embryonic();

  TcpLayer& owner_;
  ConnKey key_;
  std::uint64_t id_;
  TcpParams params_;
  bool failover_flagged_;
  bool nodelay_ = false;
  /// True while this passive-open connection occupies a slot in its
  /// listener's backlog (set by TcpLayer::handle_for_listener, cleared on
  /// the first exit from SYN_RCVD).
  bool embryonic_ = false;

  TcpState state_ = TcpState::kClosed;

  // --- send side (all offsets are 64-bit unwrapped stream positions;
  // offset 0 == ISS, so SYN occupies [0,1) and data starts at 1).
  Seq32 iss_ = 0;
  std::uint64_t snd_una_ = 0;  // oldest unacknowledged offset
  std::uint64_t snd_nxt_ = 0;  // next offset to send
  std::uint64_t highest_sent_ = 0;  // high-water mark (survives RTO rewinds)
  std::uint32_t snd_wnd_ = 0;  // peer's advertised window
  std::uint32_t max_snd_wnd_ = 0;  // largest window the peer ever advertised
  std::uint64_t wl1_ = 0;      // seq offset of last window update
  std::uint64_t wl2_ = 0;      // ack offset of last window update
  Bytes send_buf_;             // send_buf_[0] is stream offset send_base_
  std::uint64_t send_base_ = 1;
  struct PendingWrite {
    Bytes data;
    std::size_t moved = 0;
    std::function<void()> on_accepted;
    SimTime enqueued_at = 0;  // when the app issued the send()
  };
  std::deque<PendingWrite> app_writes_;
  bool fin_queued_ = false;
  bool close_requested_ = false;  // close() arrived during the handshake
  std::optional<std::uint64_t> fin_offset_;  // stream offset of our FIN
  std::uint64_t bytes_sent_total_ = 0;

  // --- receive side (offset 0 == IRS; data starts at 1).
  Seq32 irs_ = 0;
  std::uint64_t rcv_nxt_ = 0;
  Bytes rx_buf_;
  // Out-of-order runs by offset: zero-copy slices of the frames the data
  // arrived in, retained until the gap below them fills. ooo_bytes_ is
  // the pinned-slice total, bounded by params_.ooo_budget_bytes and
  // mirrored into the layer-wide tcp.conn_bytes_pinned gauge.
  std::map<std::uint64_t, wire::PacketBuffer> ooo_;
  std::size_t ooo_bytes_ = 0;
  std::optional<std::uint64_t> peer_fin_offset_;
  bool peer_fin_delivered_ = false;
  int segs_since_ack_ = 0;
  int quickack_left_ = 0;  // initialized from params in the constructor
  std::uint64_t bytes_received_total_ = 0;

  // --- MSS / congestion.
  std::uint32_t eff_mss_;
  std::uint32_t cwnd_;
  std::uint32_t ssthresh_ = 0x40000000;
  int dupacks_ = 0;

  // --- RTO (RFC 6298).
  SimDuration srtt_ = 0;
  SimDuration rttvar_ = 0;
  SimDuration rto_;
  bool rtt_valid_ = false;
  bool rtt_measuring_ = false;
  std::uint64_t rtt_offset_ = 0;
  SimTime rtt_start_ = 0;
  int retries_ = 0;

  sim::Timer rto_timer_;
  sim::Timer delack_timer_;
  sim::Timer persist_timer_;
  sim::Timer time_wait_timer_;
  sim::Timer keepalive_timer_;
  int keepalive_unanswered_ = 0;
  SimDuration persist_backoff_ = 0;

  // Keepalive helpers.
  void arm_keepalive();
  void on_keepalive();

  std::uint16_t last_adv_wnd_ = 0;

  // Per-connection challenge-ACK budget, refreshed lazily when the layer's
  // interval epoch advances (no per-connection timer).
  std::uint64_t challenge_epoch_ = 0;
  std::uint32_t challenge_used_ = 0;

  // Diagnostics.
  std::uint64_t stat_timeouts_ = 0;
  std::uint64_t stat_fast_retransmits_ = 0;
  std::uint64_t stat_segments_sent_ = 0;
  std::uint64_t stat_segments_received_ = 0;

  friend class TcpLayer;
};

}  // namespace tfo::tcp
