#include "tcp/segment.hpp"

#include <cstring>
#include <sstream>

#include "common/checksum.hpp"

namespace tfo::tcp {

namespace {

constexpr std::uint8_t kOptEnd = 0;
constexpr std::uint8_t kOptNop = 1;
constexpr std::uint8_t kOptMss = 2;
constexpr std::uint8_t kOptOrigDst = 253;  // experimental (RFC 4727 range)

/// One's-complement sum of the RFC 793 pseudo-header, computed directly
/// from the field values — no 12-byte scratch allocation per segment.
std::uint32_t pseudo_header_sum(ip::Ipv4 src, ip::Ipv4 dst,
                                std::size_t tcp_len) {
  std::uint32_t sum = 0;
  sum += src.v >> 16;
  sum += src.v & 0xffff;
  sum += dst.v >> 16;
  sum += dst.v & 0xffff;
  sum += 6;  // zero byte + protocol (TCP)
  sum += static_cast<std::uint32_t>(tcp_len) & 0xffff;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return sum;
}

/// Writes the TCP header (checksum placeholder zero) for `s` into `h`.
/// Single writer shared by the copying and in-place serialization paths
/// so they stay byte-identical.
void write_header(std::uint8_t* h, const TcpSegment& s, std::size_t hdr) {
  std::uint8_t* p = h;
  p = write_u16(p, s.src_port);
  p = write_u16(p, s.dst_port);
  p = write_u32(p, s.seq);
  p = write_u32(p, s.ack);
  p = write_u8(p, static_cast<std::uint8_t>((hdr / 4) << 4));  // data offset
  p = write_u8(p, s.flags);
  p = write_u16(p, s.window);
  p = write_u16(p, 0);  // checksum placeholder
  p = write_u16(p, 0);  // urgent pointer (unused)
  if (s.mss) {
    p = write_u8(p, kOptMss);
    p = write_u8(p, 4);
    p = write_u16(p, *s.mss);
  }
  if (s.orig_dst) {
    p = write_u8(p, kOptOrigDst);
    p = write_u8(p, 6);
    p = write_u32(p, s.orig_dst->v);
  }
  while (p < h + hdr) p = write_u8(p, kOptEnd);
}

/// Checksums a serialized segment in place: sum over pseudo-header + wire
/// with the placeholder at zero, result written at kChecksumOffset.
void finish_checksum(std::uint8_t* wire, std::size_t wire_len, ip::Ipv4 src_ip,
                     ip::Ipv4 dst_ip) {
  const std::uint32_t ph_sum = pseudo_header_sum(src_ip, dst_ip, wire_len);
  const std::uint16_t ck = static_cast<std::uint16_t>(
      ~ones_complement_sum(BytesView(wire, wire_len), ph_sum) & 0xffff);
  write_u16(wire + TcpSegment::kChecksumOffset, ck);
}

}  // namespace

std::size_t TcpSegment::header_bytes() const {
  std::size_t opts = 0;
  if (mss) opts += 4;
  if (orig_dst) opts += 6;
  // Pad options to a 32-bit boundary.
  opts = (opts + 3) & ~std::size_t{3};
  return 20 + opts;
}

Bytes TcpSegment::serialize(ip::Ipv4 src_ip, ip::Ipv4 dst_ip) const {
  const std::size_t hdr = header_bytes();
  Bytes out(hdr + payload.size());
  write_header(out.data(), *this, hdr);
  if (!payload.empty()) {
    std::memcpy(out.data() + hdr, payload.data(), payload.size());
  }
  finish_checksum(out.data(), out.size(), src_ip, dst_ip);
  return out;
}

wire::PacketBuffer TcpSegment::take_wire(ip::Ipv4 src_ip, ip::Ipv4 dst_ip) {
  const std::size_t hdr = header_bytes();
  wire::PacketBuffer w = std::move(payload);
  payload.clear();
  std::uint8_t* h = w.prepend(hdr);
  write_header(h, *this, hdr);
  finish_checksum(h, w.size(), src_ip, dst_ip);
  return w;
}

namespace {

/// Header + options parse shared by both overloads; everything except the
/// payload. Returns the header length, or nullopt on malformed input or
/// checksum mismatch.
std::optional<std::size_t> parse_header(BytesView wire, ip::Ipv4 src_ip,
                                        ip::Ipv4 dst_ip, TcpSegment& seg,
                                        bool verify_checksum) {
  if (wire.size() < 20) return std::nullopt;
  const std::size_t hdr = static_cast<std::size_t>(wire[12] >> 4) * 4;
  if (hdr < 20 || hdr > wire.size()) return std::nullopt;

  // Verify checksum: one's-complement sum over pseudo-header + segment
  // must fold to 0xffff (i.e. inet checksum over both is 0). Skipped when
  // the NIC's receive offload already verified these bytes.
  if (verify_checksum) {
    const std::uint32_t ph_sum = pseudo_header_sum(src_ip, dst_ip, wire.size());
    if (static_cast<std::uint16_t>(~ones_complement_sum(wire, ph_sum) & 0xffff) != 0) {
      return std::nullopt;
    }
  }

  seg.src_port = get_u16(wire, 0);
  seg.dst_port = get_u16(wire, 2);
  seg.seq = get_u32(wire, 4);
  seg.ack = get_u32(wire, 8);
  seg.flags = wire[13];
  seg.window = get_u16(wire, 14);

  std::size_t off = 20;
  while (off < hdr) {
    const std::uint8_t kind = wire[off];
    if (kind == kOptEnd) break;
    if (kind == kOptNop) {
      ++off;
      continue;
    }
    if (off + 1 >= hdr) return std::nullopt;
    const std::uint8_t len = wire[off + 1];
    if (len < 2 || off + len > hdr) return std::nullopt;
    switch (kind) {
      case kOptMss:
        if (len != 4) return std::nullopt;
        seg.mss = get_u16(wire, off + 2);
        break;
      case kOptOrigDst:
        if (len != 6) return std::nullopt;
        seg.orig_dst = ip::Ipv4{get_u32(wire, off + 2)};
        break;
      default:
        break;  // unknown options are skipped
    }
    off += len;
  }
  return hdr;
}

}  // namespace

std::optional<TcpSegment> TcpSegment::parse(BytesView wire, ip::Ipv4 src_ip,
                                            ip::Ipv4 dst_ip,
                                            bool verify_checksum) {
  TcpSegment seg;
  const auto hdr = parse_header(wire, src_ip, dst_ip, seg, verify_checksum);
  if (!hdr) return std::nullopt;
  seg.payload = wire::PacketBuffer::copy_of(wire.subspan(*hdr));
  return seg;
}

std::optional<TcpSegment> TcpSegment::parse(const wire::PacketBuffer& wire,
                                            ip::Ipv4 src_ip, ip::Ipv4 dst_ip,
                                            bool verify_checksum) {
  TcpSegment seg;
  const auto hdr = parse_header(wire.view(), src_ip, dst_ip, seg, verify_checksum);
  if (!hdr) return std::nullopt;
  // Zero-copy: the payload is a slice of the arriving buffer.
  seg.payload = wire;
  seg.payload.trim_front(*hdr);
  return seg;
}

std::string TcpSegment::summary() const {
  std::ostringstream os;
  if (syn()) os << "SYN ";
  if (fin()) os << "FIN ";
  if (rst()) os << "RST ";
  os << "seq=" << seq;
  if (has_ack()) os << " ack=" << ack;
  os << " win=" << window << " len=" << payload.size();
  if (mss) os << " mss=" << *mss;
  if (orig_dst) os << " odst=" << orig_dst->str();
  return os.str();
}

void patch_checksum_for_address_change(Bytes& tcp_wire, ip::Ipv4 old_addr,
                                       ip::Ipv4 new_addr) {
  if (tcp_wire.size() < 20) return;
  const std::uint16_t old_ck = get_u16(tcp_wire, TcpSegment::kChecksumOffset);
  const std::uint16_t new_ck = checksum_update32(old_ck, old_addr.v, new_addr.v);
  set_u16(tcp_wire, TcpSegment::kChecksumOffset, new_ck);
}

void patch_checksum_for_address_change(wire::PacketBuffer& tcp_wire,
                                       ip::Ipv4 old_addr, ip::Ipv4 new_addr) {
  if (tcp_wire.size() < 20) return;
  const std::uint16_t old_ck = get_u16(tcp_wire, TcpSegment::kChecksumOffset);
  const std::uint16_t new_ck = checksum_update32(old_ck, old_addr.v, new_addr.v);
  // mutable_data() is the copy-on-write gate: exclusive storage patches in
  // place (the paper's two-byte fix-up); shared storage is unshared first.
  write_u16(tcp_wire.mutable_data() + TcpSegment::kChecksumOffset, new_ck);
}

}  // namespace tfo::tcp
