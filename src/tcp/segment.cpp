#include "tcp/segment.hpp"

#include <sstream>

#include "common/checksum.hpp"

namespace tfo::tcp {

namespace {

constexpr std::uint8_t kOptEnd = 0;
constexpr std::uint8_t kOptNop = 1;
constexpr std::uint8_t kOptMss = 2;
constexpr std::uint8_t kOptOrigDst = 253;  // experimental (RFC 4727 range)

Bytes pseudo_header(ip::Ipv4 src, ip::Ipv4 dst, std::size_t tcp_len) {
  Bytes ph;
  ph.reserve(12);
  put_u32(ph, src.v);
  put_u32(ph, dst.v);
  put_u8(ph, 0);
  put_u8(ph, 6);  // protocol: TCP
  put_u16(ph, static_cast<std::uint16_t>(tcp_len));
  return ph;
}

}  // namespace

std::size_t TcpSegment::header_bytes() const {
  std::size_t opts = 0;
  if (mss) opts += 4;
  if (orig_dst) opts += 6;
  // Pad options to a 32-bit boundary.
  opts = (opts + 3) & ~std::size_t{3};
  return 20 + opts;
}

Bytes TcpSegment::serialize(ip::Ipv4 src_ip, ip::Ipv4 dst_ip) const {
  Bytes out;
  const std::size_t hdr = header_bytes();
  out.reserve(hdr + payload.size());
  put_u16(out, src_port);
  put_u16(out, dst_port);
  put_u32(out, seq);
  put_u32(out, ack);
  put_u8(out, static_cast<std::uint8_t>((hdr / 4) << 4));  // data offset
  put_u8(out, flags);
  put_u16(out, window);
  put_u16(out, 0);  // checksum placeholder
  put_u16(out, 0);  // urgent pointer (unused)
  if (mss) {
    put_u8(out, kOptMss);
    put_u8(out, 4);
    put_u16(out, *mss);
  }
  if (orig_dst) {
    put_u8(out, kOptOrigDst);
    put_u8(out, 6);
    put_u32(out, orig_dst->v);
  }
  while (out.size() < hdr) put_u8(out, kOptEnd);
  append(out, payload);

  const std::uint32_t ph_sum =
      ones_complement_sum(pseudo_header(src_ip, dst_ip, out.size()));
  const std::uint16_t ck = static_cast<std::uint16_t>(
      ~ones_complement_sum(out, ph_sum) & 0xffff);
  set_u16(out, kChecksumOffset, ck);
  return out;
}

std::optional<TcpSegment> TcpSegment::parse(BytesView wire, ip::Ipv4 src_ip,
                                            ip::Ipv4 dst_ip) {
  if (wire.size() < 20) return std::nullopt;
  const std::size_t hdr = static_cast<std::size_t>(wire[12] >> 4) * 4;
  if (hdr < 20 || hdr > wire.size()) return std::nullopt;

  // Verify checksum: one's-complement sum over pseudo-header + segment
  // must fold to 0xffff (i.e. inet checksum over both is 0).
  const std::uint32_t ph_sum =
      ones_complement_sum(pseudo_header(src_ip, dst_ip, wire.size()));
  if (static_cast<std::uint16_t>(~ones_complement_sum(wire, ph_sum) & 0xffff) != 0) {
    return std::nullopt;
  }

  TcpSegment seg;
  seg.src_port = get_u16(wire, 0);
  seg.dst_port = get_u16(wire, 2);
  seg.seq = get_u32(wire, 4);
  seg.ack = get_u32(wire, 8);
  seg.flags = wire[13];
  seg.window = get_u16(wire, 14);

  std::size_t off = 20;
  while (off < hdr) {
    const std::uint8_t kind = wire[off];
    if (kind == kOptEnd) break;
    if (kind == kOptNop) {
      ++off;
      continue;
    }
    if (off + 1 >= hdr) return std::nullopt;
    const std::uint8_t len = wire[off + 1];
    if (len < 2 || off + len > hdr) return std::nullopt;
    switch (kind) {
      case kOptMss:
        if (len != 4) return std::nullopt;
        seg.mss = get_u16(wire, off + 2);
        break;
      case kOptOrigDst:
        if (len != 6) return std::nullopt;
        seg.orig_dst = ip::Ipv4{get_u32(wire, off + 2)};
        break;
      default:
        break;  // unknown options are skipped
    }
    off += len;
  }
  seg.payload.assign(wire.begin() + hdr, wire.end());
  return seg;
}

std::string TcpSegment::summary() const {
  std::ostringstream os;
  if (syn()) os << "SYN ";
  if (fin()) os << "FIN ";
  if (rst()) os << "RST ";
  os << "seq=" << seq;
  if (has_ack()) os << " ack=" << ack;
  os << " win=" << window << " len=" << payload.size();
  if (mss) os << " mss=" << *mss;
  if (orig_dst) os << " odst=" << orig_dst->str();
  return os.str();
}

void patch_checksum_for_address_change(Bytes& tcp_wire, ip::Ipv4 old_addr,
                                       ip::Ipv4 new_addr) {
  if (tcp_wire.size() < 20) return;
  const std::uint16_t old_ck = get_u16(tcp_wire, TcpSegment::kChecksumOffset);
  const std::uint16_t new_ck = checksum_update32(old_ck, old_addr.v, new_addr.v);
  set_u16(tcp_wire, TcpSegment::kChecksumOffset, new_ck);
}

}  // namespace tfo::tcp
