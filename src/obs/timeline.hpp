// The structured failover-timeline event log: an ordered, bounded record
// of the discrete events that make up a connection's failover story —
// creation, merge progress, retransmissions recognized, divergence,
// takeover, tombstone expiry. A post-mortem (or a bench's JSON artifact)
// replays the timeline to explain *why* a client observed the stall it
// did, the analysis §5 of the paper does by hand.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace tfo::obs {

enum class EventKind : std::uint8_t {
  kConnCreated,        // bridge started tracking a connection
  kHandshakeMerged,    // merged SYN sent to the remote
  kSegmentMerged,      // payload present in both replica streams went out
  kEmptyAckEmitted,    // pure ACK/window update passed the §3.4 filter
  kRetransmitForwarded,// §4: recognized retransmission, forwarded unqueued
  kDivergence,         // replica streams disagreed; connection reset
  kConnClosed,         // connection fully closed at the bridge
  kTombstoneCreated,   // §8 stray-FIN guard installed
  kTombstoneExpired,   // guard aged out (4*MSL)
  kStrayFinAcked,      // §8: manufactured ACK for a post-teardown FIN
  kStrayFinSuppressed, // stray FIN carried no usable sequence info
  kTakeoverStart,      // §5 step 1: secondary began takeover
  kTakeoverComplete,   // §5 step 5 done: transmission resumed as a_p
  kSecondaryFailed,    // §6: primary bridge entered solo mode
  kPeerDeclaredFailed, // fault detector verdict
  kHostFailed,         // fail-stop injection
};

/// Stable wire/JSON name of an event kind (snake_case).
const char* to_string(EventKind kind);

struct Event {
  SimTime t = 0;
  EventKind kind = EventKind::kConnCreated;
  /// Connection key string ("a.b.c.d:p <-> e.f.g.h:q"), empty for
  /// host-scope events.
  std::string conn;
  /// Free-form context: offsets, addresses, counts.
  std::string detail;
};

/// Bounded in-order event buffer. When full, the oldest events are
/// discarded and counted — a long soak keeps the *recent* story, which is
/// the one a failover post-mortem needs.
class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 4096) : cap_(capacity) {}

  void record(SimTime t, EventKind kind, std::string conn = {},
              std::string detail = {});

  const std::deque<Event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  std::uint64_t recorded_total() const { return recorded_; }
  std::uint64_t dropped() const { return recorded_ - events_.size(); }
  void clear() { events_.clear(); }

  /// Events of one kind, in order (tests and post-mortems).
  std::vector<Event> filter(EventKind kind) const;

 private:
  std::size_t cap_;
  std::deque<Event> events_;
  std::uint64_t recorded_ = 0;
};

}  // namespace tfo::obs
