#include "obs/json.hpp"

#include <cstdio>

namespace tfo::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::separator() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_elems_.empty()) {
    if (has_elems_.back()) out_ += ',';
    has_elems_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  separator();
  out_ += '{';
  has_elems_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  has_elems_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separator();
  out_ += '[';
  has_elems_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  has_elems_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  separator();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separator();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separator();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separator();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separator();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separator();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view fragment) {
  separator();
  out_ += fragment;
  return *this;
}

std::string metrics_json(std::string_view host, const Snapshot& snap) {
  JsonWriter w;
  w.begin_object();
  w.key("host").value(host);
  w.key("counters").begin_object();
  for (const auto& [name, v] : snap.counters) w.key(name).value(v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : snap.gauges) {
    w.key(name).begin_object();
    w.key("value").value(g.value);
    w.key("max").value(g.max);
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : snap.histograms) {
    w.key(name).begin_object();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    w.key("min").value(h.min);
    w.key("max").value(h.max);
    w.key("mean").value(h.mean);
    w.key("p50").value(h.p50);
    w.key("p99").value(h.p99);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

std::string timeline_json(std::string_view host, const EventLog& log) {
  JsonWriter w;
  w.begin_array();
  for (const auto& e : log.events()) {
    w.begin_object();
    w.key("t_ns").value(static_cast<std::uint64_t>(e.t));
    w.key("host").value(host);
    w.key("event").value(to_string(e.kind));
    w.key("conn").value(e.conn);
    w.key("detail").value(e.detail);
    w.end_object();
  }
  w.end_array();
  return w.str();
}

}  // namespace tfo::obs
