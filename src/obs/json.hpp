// Minimal JSON emission for observability snapshots and bench artifacts.
// No parsing, no DOM — a streaming writer with comma/nesting bookkeeping,
// plus canned serializers for the Registry/EventLog shapes documented in
// OBSERVABILITY.md. Output is deterministic (registry order is sorted by
// name, timeline order is record order) so BENCH_*.json files diff
// cleanly between runs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace tfo::obs {

/// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
std::string json_escape(std::string_view s);

/// Streaming JSON writer. The caller supplies structure via begin_*/end_*
/// and the writer inserts commas; keys are only legal inside objects.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  /// Splices a pre-rendered JSON fragment as one value.
  JsonWriter& raw(std::string_view fragment);

  const std::string& str() const { return out_; }

 private:
  void separator();
  std::string out_;
  /// One entry per open container: true once the first element was
  /// written (a comma is needed before the next one).
  std::vector<bool> has_elems_;
  bool after_key_ = false;
};

/// Renders one host's metrics as the OBSERVABILITY.md "metrics" entry:
/// {"host": ..., "counters": {...}, "gauges": {...}, "histograms": {...}}.
std::string metrics_json(std::string_view host, const Snapshot& snap);

/// Renders one host's timeline as a JSON array of event objects:
/// [{"t_ns": ..., "host": ..., "event": ..., "conn": ..., "detail": ...}].
std::string timeline_json(std::string_view host, const EventLog& log);

}  // namespace tfo::obs
