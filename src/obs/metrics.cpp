#include "obs/metrics.hpp"

#include <bit>

namespace tfo::obs {

void Histogram::observe(std::uint64_t sample) {
  const int b = sample == 0 ? 0 : std::bit_width(sample) - 1;
  ++buckets_[b >= kBuckets ? kBuckets - 1 : b];
  if (count_ == 0 || sample < min_) min_ = sample;
  if (sample > max_) max_ = sample;
  ++count_;
  sum_ += sample;
}

std::uint64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count_));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > rank) {
      // Report the bucket's upper bound, clamped to the observed extremes.
      const std::uint64_t hi = i >= 63 ? max_ : (std::uint64_t{1} << (i + 1)) - 1;
      return std::min(std::max(hi, min_), max_);
    }
  }
  return max_;
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

std::int64_t Registry::gauge_value(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second.value();
}

Snapshot Registry::snapshot() const {
  Snapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c.value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    s.gauges.emplace_back(name, Snapshot::GaugeStats{g.value(), g.max_value()});
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    Snapshot::HistogramStats st;
    st.count = h.count();
    st.sum = h.sum();
    st.min = h.min();
    st.max = h.max();
    st.mean = h.mean();
    st.p50 = h.quantile(0.50);
    st.p99 = h.quantile(0.99);
    s.histograms.emplace_back(name, st);
  }
  return s;
}

}  // namespace tfo::obs
