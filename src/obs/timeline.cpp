#include "obs/timeline.hpp"

namespace tfo::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kConnCreated: return "conn_created";
    case EventKind::kHandshakeMerged: return "handshake_merged";
    case EventKind::kSegmentMerged: return "segment_merged";
    case EventKind::kEmptyAckEmitted: return "empty_ack_emitted";
    case EventKind::kRetransmitForwarded: return "retransmit_forwarded";
    case EventKind::kDivergence: return "divergence";
    case EventKind::kConnClosed: return "conn_closed";
    case EventKind::kTombstoneCreated: return "tombstone_created";
    case EventKind::kTombstoneExpired: return "tombstone_expired";
    case EventKind::kStrayFinAcked: return "stray_fin_acked";
    case EventKind::kStrayFinSuppressed: return "stray_fin_suppressed";
    case EventKind::kTakeoverStart: return "takeover_start";
    case EventKind::kTakeoverComplete: return "takeover_complete";
    case EventKind::kSecondaryFailed: return "secondary_failed";
    case EventKind::kPeerDeclaredFailed: return "peer_declared_failed";
    case EventKind::kHostFailed: return "host_failed";
  }
  return "unknown";
}

void EventLog::record(SimTime t, EventKind kind, std::string conn,
                      std::string detail) {
  ++recorded_;
  if (cap_ == 0) return;
  if (events_.size() == cap_) events_.pop_front();
  events_.push_back(Event{t, kind, std::move(conn), std::move(detail)});
}

std::vector<Event> EventLog::filter(EventKind kind) const {
  std::vector<Event> out;
  for (const auto& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

}  // namespace tfo::obs
