// Umbrella header: the per-host observability hub. A Hub bundles the
// metric registry and the failover-timeline event log; apps::Host owns
// one and hands `Hub*` down to every layer it assembles. Components take
// a nullable `obs::Hub*` so unit tests can construct them bare.
#pragma once

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace tfo::obs {

struct Hub {
  Registry registry;
  EventLog timeline;

  Hub() = default;
  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;
};

}  // namespace tfo::obs
