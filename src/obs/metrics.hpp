// Lightweight per-host observability registry: named counters, gauges and
// latency histograms. Motivated by the per-stack measurement methodology
// of the Plug&Offload line of work (PAPERS.md): subtle bridge/TCP stack
// interactions — out-of-window segments, merge stalls, takeover latency —
// only surface when every layer is instrumented. The registry is the
// system-wide metric namespace; OBSERVABILITY.md lists the names each
// component publishes.
//
// Design constraints:
//   * hot-path friendly: a component resolves its handles once (a map
//     lookup at attach time) and then increments through a stable pointer;
//   * deterministic: iteration order is the lexicographic metric name, so
//     snapshots and their JSON form are reproducible run-to-run;
//   * dependency-free: only common/, so every layer (tcp, core, apps,
//     bench) can link against it without cycles.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tfo::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_ += n; }
  std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

/// Instantaneous level (queue depth, bytes buffered, live connections).
/// Signed so that add(-delta) bookkeeping cannot wrap; tracks its
/// high-water mark, the number most queue-depth questions actually need.
class Gauge {
 public:
  void set(std::int64_t v) {
    v_ = v;
    if (v_ > max_) max_ = v_;
  }
  void add(std::int64_t d) { set(v_ + d); }
  std::int64_t value() const { return v_; }
  /// High-water mark across the gauge's lifetime.
  std::int64_t max_value() const { return max_; }

 private:
  std::int64_t v_ = 0;
  std::int64_t max_ = 0;
};

/// Latency/size histogram: power-of-two buckets plus exact count/sum/
/// min/max, cheap enough for per-segment paths. Bucket i counts samples
/// in [2^i, 2^(i+1)); bucket 0 additionally holds 0.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(std::uint64_t sample);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const { return count_ ? static_cast<double>(sum_) / count_ : 0.0; }
  /// Approximate quantile (q in [0,1]) from the bucket boundaries.
  std::uint64_t quantile(double q) const;
  const std::uint64_t* buckets() const { return buckets_; }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0, sum_ = 0;
  std::uint64_t min_ = 0, max_ = 0;
};

/// Point-in-time copy of a registry, detached from the live objects.
struct Snapshot {
  struct GaugeStats {
    std::int64_t value = 0;
    std::int64_t max = 0;  // high-water mark
  };
  struct HistogramStats {
    std::uint64_t count = 0, sum = 0, min = 0, max = 0;
    double mean = 0;
    std::uint64_t p50 = 0, p99 = 0;
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, GaugeStats>> gauges;
  std::vector<std::pair<std::string, HistogramStats>> histograms;
};

/// Named metric namespace. Handles returned by counter()/gauge()/
/// histogram() are stable for the registry's lifetime (node-based map
/// storage); the same name always yields the same object.
class Registry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  /// Read-only lookup: value of a counter, or 0 if never registered.
  std::uint64_t counter_value(const std::string& name) const;
  /// Read-only lookup: value of a gauge, or 0 if never registered.
  std::int64_t gauge_value(const std::string& name) const;

  Snapshot snapshot() const;

 private:
  // std::map: deterministic order + pointer stability for the handles.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace tfo::obs
