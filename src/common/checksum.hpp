// Internet checksum (RFC 1071) and incremental update (RFC 1624).
//
// The paper's bridge rewrites IP/TCP header fields in flight and fixes the
// checksum incrementally ("we subtract the original bytes from the checksum,
// and add the new bytes", §3.1). `checksum_update*` implements exactly that.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace tfo {

/// One's-complement sum of a byte run, folded to 16 bits (not inverted).
std::uint16_t ones_complement_sum(BytesView data, std::uint32_t initial = 0);

/// Full Internet checksum of a byte run: ~fold(sum).
std::uint16_t inet_checksum(BytesView data);

/// Incrementally updates checksum `old_ck` after a 16-bit word changed from
/// `old_word` to `new_word` (RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')).
///
/// Zero-representation note: one's-complement zero is ambiguous (±0), and
/// eqn. 3 cannot always reproduce the encoding a full recompute would pick
/// — e.g. rewriting all-zero data back to itself. The result is therefore
/// normalized to never be 0x0000: 0xFFFF verifies everywhere 0x0000 would,
/// while the reverse does not hold. Consequently incremental and full
/// checksums agree except that full may say 0x0000 where this says 0xFFFF.
std::uint16_t checksum_update16(std::uint16_t old_ck, std::uint16_t old_word,
                                std::uint16_t new_word);

/// Incrementally updates checksum after a 32-bit field changed (e.g. an
/// IPv4 address in the TCP pseudo-header).
std::uint16_t checksum_update32(std::uint16_t old_ck, std::uint32_t old_val,
                                std::uint32_t new_val);

}  // namespace tfo
