// Deterministic random-number utilities.
//
// Every source of randomness in the simulation (ISNs, loss models, workload
// jitter) draws from an explicitly seeded Rng so that each experiment is
// reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <random>

namespace tfo {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    std::uniform_int_distribution<std::uint64_t> d(lo, hi);
    return d(engine_);
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(engine_()); }
  std::uint64_t next_u64() { return engine_(); }

  /// True with probability p.
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    std::uniform_real_distribution<double> d(0.0, 1.0);
    return d(engine_);
  }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) {
    std::exponential_distribution<double> d(1.0 / mean);
    return d(engine_);
  }

  /// Derives an independent child generator (for per-host streams).
  Rng fork() { return Rng(next_u64() ^ 0x9e3779b97f4a7c15ull); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tfo
