// 32-bit TCP sequence-number arithmetic (RFC 793 modular comparisons).
//
// TCP sequence numbers live on a mod-2^32 circle; comparisons are only
// meaningful for values within 2^31 of each other, which holds for any
// live connection. `SeqUnwrapper` lifts circle values onto a monotone
// 64-bit line so that containers can order them totally.
#pragma once

#include <cstdint>

namespace tfo {

using Seq32 = std::uint32_t;

/// Signed circular distance from `b` to `a` (a - b on the seq circle).
constexpr std::int32_t seq_diff(Seq32 a, Seq32 b) {
  return static_cast<std::int32_t>(a - b);
}

constexpr bool seq_lt(Seq32 a, Seq32 b) { return seq_diff(a, b) < 0; }
constexpr bool seq_le(Seq32 a, Seq32 b) { return seq_diff(a, b) <= 0; }
constexpr bool seq_gt(Seq32 a, Seq32 b) { return seq_diff(a, b) > 0; }
constexpr bool seq_ge(Seq32 a, Seq32 b) { return seq_diff(a, b) >= 0; }

constexpr Seq32 seq_add(Seq32 a, std::int64_t n) {
  return static_cast<Seq32>(a + static_cast<std::uint32_t>(n));
}

constexpr Seq32 seq_max(Seq32 a, Seq32 b) { return seq_gt(a, b) ? a : b; }
constexpr Seq32 seq_min(Seq32 a, Seq32 b) { return seq_lt(a, b) ? a : b; }

/// Maps 32-bit sequence numbers near a moving reference point onto a
/// monotonically comparable 64-bit stream offset. The reference advances
/// as larger values are observed, so a long-lived connection can wrap the
/// 32-bit space arbitrarily many times.
class SeqUnwrapper {
 public:
  /// `origin` is the initial sequence number mapping to offset 0.
  explicit SeqUnwrapper(Seq32 origin = 0) : origin_(origin) {}

  /// Unwraps `s` to a 64-bit offset relative to the origin. `s` must lie
  /// within 2^31 of the highest offset seen so far (true for live TCP).
  std::uint64_t unwrap(Seq32 s) const {
    // Offset of s relative to the current epoch base.
    const std::int32_t d = seq_diff(s, static_cast<Seq32>(origin_ + high_));
    const std::int64_t off = static_cast<std::int64_t>(high_) + d;
    return static_cast<std::uint64_t>(off);
  }

  /// Unwraps and advances the high-water mark.
  std::uint64_t unwrap_advance(Seq32 s) {
    const std::uint64_t off = unwrap(s);
    if (off > high_) high_ = off;
    return off;
  }

  /// Rewraps a 64-bit offset back onto the sequence circle.
  Seq32 wrap(std::uint64_t off) const {
    return static_cast<Seq32>(origin_ + static_cast<std::uint32_t>(off));
  }

  Seq32 origin() const { return origin_; }

 private:
  Seq32 origin_;
  std::uint64_t high_ = 0;
};

}  // namespace tfo
