// RSS-style sharding wrapper over FlatMap.
//
// The lane data path splits per-connection tables into N independent
// shards selected by the connection hash — the same steering the NIC's
// lane partition uses — so each lane's demux work touches only its own
// shard. The wrapper preserves the FlatMap calling conventions the demux
// paths use (find_value, try_emplace, erase) at one extra modulo per
// probe, and keeps the single-shard case allocation-identical to a bare
// FlatMap.
//
// Iteration (for_each) visits shards in index order; order therefore
// *changes with the shard count*. Callers that need an iteration order
// independent of sharding — anything whose side effects reach the wire —
// must collect and sort by a stable key themselves, exactly as they
// already must for FlatMap's hash-dependent slot order (see
// TcpLayer::rekey_local_address). Like FlatMap, value pointers are
// invalidated by any insert or erase.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/assert.hpp"
#include "common/flat_map.hpp"

namespace tfo {

template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
class ShardedMap {
 public:
  using Shard = FlatMap<K, V, Hash, Eq>;

  explicit ShardedMap(unsigned shards = 1)
      : shards_(shards == 0 ? 1 : shards) {}

  /// Re-shards the (empty) table; the shard count is fixed once entries
  /// exist — a live resharding would silently rehome keys.
  void set_shard_count(unsigned n) {
    TFO_ASSERT(size() == 0, "cannot re-shard a non-empty ShardedMap");
    shards_.clear();
    shards_.resize(n == 0 ? 1 : n);
  }

  unsigned shard_count() const { return static_cast<unsigned>(shards_.size()); }

  /// Which shard owns `key` (the lane steering decision).
  unsigned shard_of(const K& key) const {
    return static_cast<unsigned>(hash_(key) % shards_.size());
  }

  Shard& shard(unsigned i) { return shards_[i]; }
  const Shard& shard(unsigned i) const { return shards_[i]; }

  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) n += s.size();
    return n;
  }
  bool empty() const { return size() == 0; }

  void reserve(std::size_t n) {
    for (Shard& s : shards_) s.reserve(n / shards_.size() + 1);
  }

  bool contains(const K& key) const {
    return shards_[shard_of(key)].contains(key);
  }

  V* find_value(const K& key) { return shards_[shard_of(key)].find_value(key); }
  const V* find_value(const K& key) const {
    return shards_[shard_of(key)].find_value(key);
  }

  template <typename... Args>
  std::pair<V*, bool> try_emplace(const K& key, Args&&... args) {
    return shards_[shard_of(key)].try_emplace(key, std::forward<Args>(args)...);
  }

  void insert_or_assign(const K& key, V value) {
    shards_[shard_of(key)].insert_or_assign(key, std::move(value));
  }

  bool erase(const K& key) { return shards_[shard_of(key)].erase(key); }

  void clear() {
    for (Shard& s : shards_) s.clear();
  }

  /// Visits shard 0's entries (slot order), then shard 1's, … — see the
  /// header comment about order stability. fn must not insert or erase.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Shard& s : shards_) s.for_each(fn);
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Shard& s : shards_) s.for_each(fn);
  }

 private:
  std::vector<Shard> shards_;
  Hash hash_;
};

}  // namespace tfo
