#include "common/checksum.hpp"

#include <bit>
#include <cstring>

namespace tfo {

std::uint16_t ones_complement_sum(BytesView data, std::uint32_t initial) {
  // Hot path: every TCP segment passes through here at least once (send
  // compute, receive verify) and the GRO engine adds more passes. Two
  // RFC 1071 identities make a wide host-order accumulator legal:
  // 2^16 ≡ 1 (mod 2^16 - 1), so a 64-bit end-around-carry sum is
  // congruent to the 16-bit word sum, and byte-swapping every addend
  // byte-swaps the result (swap is ×2^8 mod 2^16-1), so little-endian
  // loads need just one swap at the end.
  constexpr bool kLittle = std::endian::native == std::endian::little;
  std::uint32_t init = initial;
  while (init >> 16) init = (init & 0xffff) + (init >> 16);
  std::uint64_t sum =
      kLittle ? (((init >> 8) | (init << 8)) & 0xffff) : init;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    sum += w;
    if (sum < w) ++sum;  // end-around carry
    p += 8;
    n -= 8;
  }
  if (n >= 4) {
    std::uint32_t w;
    std::memcpy(&w, p, 4);
    sum += w;
    if (sum < w) ++sum;
    p += 4;
    n -= 4;
  }
  if (n >= 2) {
    std::uint16_t w;
    std::memcpy(&w, p, 2);
    sum += w;
    if (sum < w) ++sum;
    p += 2;
    n -= 2;
  }
  if (n > 0) {
    // The dangling byte is the high half of its padded word in network
    // order; in the little-endian convention that is the low half.
    const std::uint64_t w = kLittle ? p[0] : (std::uint64_t{p[0]} << 8);
    sum += w;
    if (sum < w) ++sum;
  }
  sum = (sum & 0xffffffffull) + (sum >> 32);
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  auto folded = static_cast<std::uint16_t>(sum);
  if constexpr (kLittle) {
    folded = static_cast<std::uint16_t>((folded >> 8) | (folded << 8));
  }
  return folded;
}

std::uint16_t inet_checksum(BytesView data) {
  return static_cast<std::uint16_t>(~ones_complement_sum(data) & 0xffff);
}

std::uint16_t checksum_update16(std::uint16_t old_ck, std::uint16_t old_word,
                                std::uint16_t new_word) {
  // RFC 1624: HC' = ~(~HC + ~m + m'), all in one's-complement arithmetic.
  std::uint32_t sum = static_cast<std::uint16_t>(~old_ck);
  sum += static_cast<std::uint16_t>(~old_word);
  sum += new_word;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  const std::uint16_t ck = static_cast<std::uint16_t>(~sum & 0xffff);
  // One's-complement zero has two encodings; the incremental formula can
  // produce 0x0000 where a full recompute yields 0xFFFF (the checksum of
  // all-zero data). Receivers verify by summing to -0, and 0xFFFF passes
  // wherever 0x0000 does but not vice versa — so never emit 0x0000.
  // (UDP makes the same normalization for its it-is-zero sentinel.)
  return ck == 0 ? 0xffff : ck;
}

std::uint16_t checksum_update32(std::uint16_t old_ck, std::uint32_t old_val,
                                std::uint32_t new_val) {
  std::uint16_t ck = checksum_update16(old_ck, static_cast<std::uint16_t>(old_val >> 16),
                                       static_cast<std::uint16_t>(new_val >> 16));
  return checksum_update16(ck, static_cast<std::uint16_t>(old_val & 0xffff),
                           static_cast<std::uint16_t>(new_val & 0xffff));
}

}  // namespace tfo
