#include "common/checksum.hpp"

namespace tfo {

std::uint16_t ones_complement_sum(BytesView data, std::uint32_t initial) {
  std::uint64_t sum = initial;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(data[i] << 8);  // pad final odd byte
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(sum);
}

std::uint16_t inet_checksum(BytesView data) {
  return static_cast<std::uint16_t>(~ones_complement_sum(data) & 0xffff);
}

std::uint16_t checksum_update16(std::uint16_t old_ck, std::uint16_t old_word,
                                std::uint16_t new_word) {
  // RFC 1624: HC' = ~(~HC + ~m + m'), all in one's-complement arithmetic.
  std::uint32_t sum = static_cast<std::uint16_t>(~old_ck);
  sum += static_cast<std::uint16_t>(~old_word);
  sum += new_word;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  const std::uint16_t ck = static_cast<std::uint16_t>(~sum & 0xffff);
  // One's-complement zero has two encodings; the incremental formula can
  // produce 0x0000 where a full recompute yields 0xFFFF (the checksum of
  // all-zero data). Receivers verify by summing to -0, and 0xFFFF passes
  // wherever 0x0000 does but not vice versa — so never emit 0x0000.
  // (UDP makes the same normalization for its it-is-zero sentinel.)
  return ck == 0 ? 0xffff : ck;
}

std::uint16_t checksum_update32(std::uint16_t old_ck, std::uint32_t old_val,
                                std::uint32_t new_val) {
  std::uint16_t ck = checksum_update16(old_ck, static_cast<std::uint16_t>(old_val >> 16),
                                       static_cast<std::uint16_t>(new_val >> 16));
  return checksum_update16(ck, static_cast<std::uint16_t>(old_val & 0xffff),
                           static_cast<std::uint16_t>(new_val & 0xffff));
}

}  // namespace tfo
