#include "common/logging.hpp"

#include <cstdio>

namespace tfo {

LogConfig& log_config() {
  static LogConfig cfg;
  return cfg;
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_config().level);
}

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?";
}
}  // namespace

void log_emit(LogLevel level, const std::string& component, const std::string& msg) {
  if (!log_enabled(level)) return;
  double t_us = 0.0;
  if (log_config().clock) t_us = static_cast<double>(log_config().clock()) / 1e3;
  std::fprintf(stderr, "[%12.1fus] %s %-10s %s\n", t_us, level_name(level),
               component.c_str(), msg.c_str());
}

}  // namespace tfo
