// Sample accumulation and table formatting for the benchmark harnesses.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tfo {

/// Collects scalar samples and reports order statistics. Used by every
/// bench to produce the paper's "median / maximum" style rows.
class Sampler {
 public:
  void add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  double median() const { return percentile(50.0); }
  /// Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;
  double stddev() const;

 private:
  // Sorted lazily by the accessors.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void sort() const;
};

/// Fixed-width text table, printed in the style of the paper's figures.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  /// Renders with column widths fitted to content.
  std::string render() const;

  // Structured access for machine-readable bench artifacts.
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Formats a double with `prec` digits after the point.
  static std::string num(double v, int prec = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tfo
