// Minimal leveled logger with a pluggable simulated-clock source.
//
// The logger is process-global (the simulation is single-threaded by
// design; see DESIGN.md). Tests and benches keep the level at kWarn to
// stay quiet; examples raise it to show the protocol at work.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "common/time.hpp"

namespace tfo {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log configuration.
struct LogConfig {
  LogLevel level = LogLevel::kWarn;
  /// Supplies the current simulated time for timestamps; may be null.
  std::function<SimTime()> clock;
};

LogConfig& log_config();

/// True if messages at `level` would currently be emitted.
bool log_enabled(LogLevel level);

/// Emits one log line (no trailing newline needed).
void log_emit(LogLevel level, const std::string& component, const std::string& msg);

/// Stream-style log statement builder:
///   TFO_LOG(kDebug, "tcp") << "snd_nxt=" << snd_nxt;
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { log_emit(level_, component_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};

}  // namespace tfo

#define TFO_LOG(level, component)                          \
  if (!::tfo::log_enabled(::tfo::LogLevel::level)) {       \
  } else                                                   \
    ::tfo::LogLine(::tfo::LogLevel::level, (component))
