#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace tfo {

void Sampler::sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Sampler::min() const {
  if (samples_.empty()) throw std::logic_error("Sampler::min on empty sampler");
  sort();
  return samples_.front();
}

double Sampler::max() const {
  if (samples_.empty()) throw std::logic_error("Sampler::max on empty sampler");
  sort();
  return samples_.back();
}

double Sampler::mean() const {
  if (samples_.empty()) throw std::logic_error("Sampler::mean on empty sampler");
  double s = 0;
  for (double v : samples_) s += v;
  return s / static_cast<double>(samples_.size());
}

double Sampler::percentile(double p) const {
  if (samples_.empty()) throw std::logic_error("Sampler::percentile on empty sampler");
  sort();
  if (samples_.size() == 1) return samples_[0];
  const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double Sampler::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace tfo
