// Byte-sequence helpers shared by every layer of the stack.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tfo {

/// The universal payload type: a contiguous, owned run of octets.
using Bytes = std::vector<std::uint8_t>;

/// A non-owning view of octets.
using BytesView = std::span<const std::uint8_t>;

/// Builds a Bytes from arbitrary text (useful for line-based app protocols).
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Interprets a byte run as text.
inline std::string to_string(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// Appends `src` to `dst`.
inline void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Big-endian field writers into raw memory. Serializers pre-size their
/// output (or claim headroom in a wire::PacketBuffer) and write fields at
/// known offsets through these — no per-byte push_back growth on the hot
/// path. Each returns the position just past the written field so header
/// builders can chain them cursor-style.
inline std::uint8_t* write_u8(std::uint8_t* p, std::uint8_t v) {
  *p = v;
  return p + 1;
}
inline std::uint8_t* write_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
  return p + 2;
}
inline std::uint8_t* write_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
  return p + 4;
}

/// Legacy growth-style writers, kept for cold paths (app-level protocol
/// builders); wire-format serializers use the bulk writers above.
inline void put_u8(Bytes& b, std::uint8_t v) { b.push_back(v); }
inline void put_u16(Bytes& b, std::uint16_t v) {
  const std::uint8_t w[2] = {static_cast<std::uint8_t>(v >> 8),
                             static_cast<std::uint8_t>(v)};
  b.insert(b.end(), w, w + 2);
}
inline void put_u32(Bytes& b, std::uint32_t v) {
  const std::uint8_t w[4] = {
      static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
      static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
  b.insert(b.end(), w, w + 4);
}

inline void put_u64(Bytes& b, std::uint64_t v) {
  put_u32(b, static_cast<std::uint32_t>(v >> 32));
  put_u32(b, static_cast<std::uint32_t>(v));
}

inline std::uint8_t get_u8(BytesView b, std::size_t off) { return b[off]; }
inline std::uint16_t get_u16(BytesView b, std::size_t off) {
  return static_cast<std::uint16_t>((b[off] << 8) | b[off + 1]);
}
inline std::uint32_t get_u32(BytesView b, std::size_t off) {
  return (static_cast<std::uint32_t>(b[off]) << 24) |
         (static_cast<std::uint32_t>(b[off + 1]) << 16) |
         (static_cast<std::uint32_t>(b[off + 2]) << 8) |
         static_cast<std::uint32_t>(b[off + 3]);
}

inline std::uint64_t get_u64(BytesView b, std::size_t off) {
  return (static_cast<std::uint64_t>(get_u32(b, off)) << 32) | get_u32(b, off + 4);
}

/// Overwrites a big-endian u16 in place (header field rewrite).
inline void set_u16(Bytes& b, std::size_t off, std::uint16_t v) {
  b[off] = static_cast<std::uint8_t>(v >> 8);
  b[off + 1] = static_cast<std::uint8_t>(v);
}

/// Overwrites a big-endian u32 in place (header field rewrite).
inline void set_u32(Bytes& b, std::size_t off, std::uint32_t v) {
  b[off] = static_cast<std::uint8_t>(v >> 24);
  b[off + 1] = static_cast<std::uint8_t>(v >> 16);
  b[off + 2] = static_cast<std::uint8_t>(v >> 8);
  b[off + 3] = static_cast<std::uint8_t>(v);
}

}  // namespace tfo
