// Open-addressing hash containers for the hot demux tables.
//
// The 4-tuple lookups on the segment path (TcpLayer::conns_, the primary
// bridge's connection/tombstone tables) ran on node-based unordered_map:
// one allocation per entry, a pointer chase per probe, and a rehash policy
// tuned for generality. FlatMap replaces that with linear probing over a
// power-of-two slot array, the 64-bit hash stored per slot so probes and
// rehashes never re-run the hasher, and backward-shift deletion so
// tombstones never accumulate (a failover storm deletes 100k entries in
// one burst — erase must not degrade future probes).
//
// Deliberately minimal: the subset of the std::unordered_map interface the
// stack uses. Iteration order is slot order, which depends on hashes —
// callers that need determinism iterate keys deterministically themselves
// (see TcpLayer::rekey_local_address). Iterators and value pointers are
// invalidated by any insert or erase.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace tfo {

template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
class FlatMap {
  struct Slot {
    std::pair<K, V> kv{};
    std::uint64_t hash = 0;
    bool used = false;
  };

 public:
  using value_type = std::pair<K, V>;

  class iterator {
   public:
    iterator() = default;
    iterator(Slot* cur, Slot* end) : cur_(cur), end_(end) { skip(); }
    value_type& operator*() const { return cur_->kv; }
    value_type* operator->() const { return &cur_->kv; }
    iterator& operator++() {
      ++cur_;
      skip();
      return *this;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.cur_ == b.cur_;
    }
    friend bool operator!=(const iterator& a, const iterator& b) {
      return a.cur_ != b.cur_;
    }

   private:
    void skip() {
      while (cur_ != end_ && !cur_->used) ++cur_;
    }
    Slot* cur_ = nullptr;
    Slot* end_ = nullptr;
    friend class FlatMap;
  };

  FlatMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    size_ = 0;
  }

  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 3 < n * 4) cap <<= 1;  // keep load factor under 0.75
    if (cap > slots_.size()) rehash(cap);
  }

  iterator begin() {
    return iterator(slots_.data(), slots_.data() + slots_.size());
  }
  iterator end() {
    return iterator(slots_.data() + slots_.size(), slots_.data() + slots_.size());
  }

  bool contains(const K& key) const { return find_index(key) != kNpos; }

  iterator find(const K& key) {
    const std::size_t i = find_index(key);
    if (i == kNpos) return end();
    iterator it;
    it.cur_ = slots_.data() + i;
    it.end_ = slots_.data() + slots_.size();
    return it;
  }

  V* find_value(const K& key) {
    const std::size_t i = find_index(key);
    return i == kNpos ? nullptr : &slots_[i].kv.second;
  }
  const V* find_value(const K& key) const {
    const std::size_t i = find_index(key);
    return i == kNpos ? nullptr : &slots_[i].kv.second;
  }

  V& operator[](const K& key) { return *try_emplace(key).first; }

  /// Inserts {key, V(args...)} if absent. Returns {pointer to value,
  /// inserted}. (Pointer, not iterator: every caller wants the value.)
  template <typename... Args>
  std::pair<V*, bool> try_emplace(const K& key, Args&&... args) {
    grow_if_needed();
    const std::uint64_t h = hash_(key);
    std::size_t i = h & mask();
    while (slots_[i].used) {
      if (slots_[i].hash == h && eq_(slots_[i].kv.first, key)) {
        return {&slots_[i].kv.second, false};
      }
      i = (i + 1) & mask();
    }
    Slot& s = slots_[i];
    s.kv.first = key;
    s.kv.second = V(std::forward<Args>(args)...);
    s.hash = h;
    s.used = true;
    ++size_;
    return {&s.kv.second, true};
  }

  /// unordered_map-style insert-or-keep; returns {value pointer, inserted}.
  std::pair<V*, bool> emplace(const K& key, V value) {
    auto r = try_emplace(key);
    if (r.second) *r.first = std::move(value);
    return r;
  }

  /// Inserts or overwrites.
  void insert_or_assign(const K& key, V value) {
    *try_emplace(key).first = std::move(value);
  }

  bool erase(const K& key) {
    const std::size_t i = find_index(key);
    if (i == kNpos) return false;
    erase_slot(i);
    return true;
  }

  /// Calls fn(key, value) for every entry (slot order). fn must not
  /// insert or erase.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Slot& s : slots_) {
      if (s.used) fn(s.kv.first, s.kv.second);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.used) fn(s.kv.first, s.kv.second);
    }
  }

 private:
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinCapacity = 16;

  std::size_t mask() const { return slots_.size() - 1; }

  std::size_t find_index(const K& key) const {
    if (slots_.empty()) return kNpos;
    const std::uint64_t h = hash_(key);
    std::size_t i = h & mask();
    while (slots_[i].used) {
      if (slots_[i].hash == h && eq_(slots_[i].kv.first, key)) return i;
      i = (i + 1) & mask();
    }
    return kNpos;
  }

  void grow_if_needed() {
    if (slots_.empty()) {
      rehash(kMinCapacity);
    } else if ((size_ + 1) * 4 > slots_.size() * 3) {
      rehash(slots_.size() * 2);
    }
  }

  void rehash(std::size_t new_cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(new_cap);
    for (Slot& s : old) {
      if (!s.used) continue;
      std::size_t i = s.hash & mask();
      while (slots_[i].used) i = (i + 1) & mask();
      slots_[i].kv = std::move(s.kv);
      slots_[i].hash = s.hash;
      slots_[i].used = true;
    }
  }

  /// Backward-shift deletion: pulls displaced successors into the hole so
  /// probe chains stay dense and no tombstone marker is ever needed.
  void erase_slot(std::size_t i) {
    std::size_t hole = i;
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask();
      if (!slots_[j].used) break;
      const std::size_t home = slots_[j].hash & mask();
      // j's entry may move into the hole only if the hole lies on its
      // probe path, i.e. home is not cyclically inside (hole, j].
      if (((j - home) & mask()) >= ((j - hole) & mask())) {
        slots_[hole].kv = std::move(slots_[j].kv);
        slots_[hole].hash = slots_[j].hash;
        hole = j;
      }
    }
    slots_[hole].kv = value_type{};
    slots_[hole].used = false;
    --size_;
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  [[no_unique_address]] Hash hash_;
  [[no_unique_address]] Eq eq_;
};

/// Open-addressing set with the same probing scheme (thin wrapper).
template <typename K, typename Hash = std::hash<K>, typename Eq = std::equal_to<K>>
class FlatSet {
 public:
  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }
  void reserve(std::size_t n) { map_.reserve(n); }
  bool contains(const K& key) const { return map_.contains(key); }
  bool insert(const K& key) { return map_.try_emplace(key).second; }
  bool erase(const K& key) { return map_.erase(key); }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    map_.for_each([&fn](const K& k, char) { fn(k); });
  }

 private:
  FlatMap<K, char, Hash, Eq> map_;
};

}  // namespace tfo
