// Internal invariant checking, active in all build types.
//
// TFO_ASSERT guards *programming* invariants of this library. Violations of
// protocol expectations by peers (e.g. a bad checksum off the wire) are
// handled as data, never asserted.
#pragma once

#include <cstdio>
#include <cstdlib>

#define TFO_ASSERT(cond, msg)                                                  \
  do {                                                                         \
    if (!(cond)) {                                                             \
      std::fprintf(stderr, "TFO_ASSERT failed at %s:%d: %s — %s\n", __FILE__,  \
                   __LINE__, #cond, (msg));                                    \
      std::abort();                                                            \
    }                                                                          \
  } while (0)
