// Simulated-time primitives.
//
// All timestamps in the simulation are nanoseconds since simulation start,
// carried in a 64-bit unsigned integer. Durations are signed so that
// interval arithmetic (t2 - t1) is well behaved.
#pragma once

#include <cstdint>

namespace tfo {

/// Absolute simulated time, in nanoseconds since simulation start.
using SimTime = std::uint64_t;

/// A span of simulated time, in nanoseconds.
using SimDuration = std::int64_t;

constexpr SimDuration nanoseconds(std::int64_t n) { return n; }
constexpr SimDuration microseconds(std::int64_t us) { return us * 1'000; }
constexpr SimDuration milliseconds(std::int64_t ms) { return ms * 1'000'000; }
constexpr SimDuration seconds(std::int64_t s) { return s * 1'000'000'000; }

/// Converts a duration to fractional seconds (for reporting only).
constexpr double to_seconds(SimDuration d) { return static_cast<double>(d) / 1e9; }

/// Converts a duration to fractional microseconds (for reporting only).
constexpr double to_microseconds(SimDuration d) { return static_cast<double>(d) / 1e3; }

/// Converts a duration to fractional milliseconds (for reporting only).
constexpr double to_milliseconds(SimDuration d) { return static_cast<double>(d) / 1e6; }

}  // namespace tfo
