// Lane scheduler: sharded speculative execution with a deterministic merge.
//
// The simulation's hot paths (NIC rx batches, GRO coalescing) shard work
// RSS-style by connection hash across N *lanes*. Lane work runs
// speculatively — possibly on worker threads — against lane-private state
// only, and produces a *commit* closure. Commits are applied on the
// simulation thread in global submission order, so every side effect on
// shared state (connection tables, counters, frame delivery) happens in
// exactly the same order regardless of lane count or whether worker
// threads are enabled. That is the merge-order invariant `determinism_test`
// pins down: results are bit-identical for lanes ∈ {1, 2, 4} × {serial,
// parallel} × SchedulerKind.
//
// Formally the merge key is (virtual time, lane id, per-lane seq). Rounds
// only ever run at a single virtual instant, and submission order encodes
// (lane, seq) the same way for every lane count (callers submit lane 0's
// batch first), so the comparator reduces to the global submission index —
// which is what makes the order *independent* of how many lanes the work
// happened to be sharded across.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tfo::sim {

struct LaneConfig {
  /// Number of shards the data path is split into (>= 1).
  unsigned lanes = 1;
  /// Run lane work on persistent worker threads. Off by default: serial
  /// execution visits the same lanes in the same order and is the
  /// reference behaviour the parallel mode must reproduce bit-for-bit.
  bool parallel = false;
};

/// Applies the `TFO_LANES` environment override: "N" with N >= 2 enables N
/// parallel lanes, "1" forces serial single-lane, unset/invalid keeps
/// `base`.
LaneConfig lane_config_from_env(LaneConfig base = {});

class LaneSet {
 public:
  /// Applied on the simulation thread, in submission order.
  using Commit = std::function<void()>;
  /// Runs speculatively (worker thread in parallel mode); must touch only
  /// lane-private state plus thread-safe globals, and returns the commit
  /// that publishes its results.
  using Work = std::function<Commit()>;

  explicit LaneSet(LaneConfig cfg);
  ~LaneSet();
  LaneSet(const LaneSet&) = delete;
  LaneSet& operator=(const LaneSet&) = delete;

  unsigned lanes() const { return cfg_.lanes; }
  bool parallel() const { return cfg_.parallel; }
  const LaneConfig& config() const { return cfg_; }

  /// RSS steering: which lane owns a flow with this hash.
  unsigned lane_for(std::size_t hash) const {
    return static_cast<unsigned>(hash % cfg_.lanes);
  }

  /// Stages one unit of work for `lane` in the current round.
  void submit(unsigned lane, Work work);

  /// Executes all staged work — on worker threads when parallel — then
  /// applies every commit in submission order on the calling thread.
  void run_round();

  struct Stats {
    std::uint64_t rounds = 0;          ///< run_round calls with work staged
    std::uint64_t parallel_rounds = 0; ///< rounds executed on worker threads
    std::uint64_t tasks = 0;           ///< units of lane work executed
    /// Commits the merger had to wait for because an earlier-ordered
    /// lane's work had not finished yet (parallel mode only): a direct
    /// measure of merge-barrier skew between lanes.
    std::uint64_t merge_stalls = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Task {
    unsigned lane = 0;
    Work work;
    Commit commit;
    std::atomic<bool> done{false};
  };

  void start_workers();
  void worker_loop(unsigned lane);

  LaneConfig cfg_;
  Stats stats_;
  std::vector<std::unique_ptr<Task>> round_;  // submission order

  // Parallel mode plumbing (threads start lazily on the first parallel
  // round, so serial hosts never pay for a pool).
  std::vector<std::thread> workers_;
  std::vector<std::deque<Task*>> lane_queues_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
};

}  // namespace tfo::sim
