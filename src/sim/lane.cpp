#include "sim/lane.hpp"

#include <atomic>
#include <cstdlib>

#include "common/assert.hpp"

namespace tfo::sim {

LaneConfig lane_config_from_env(LaneConfig base) {
  const char* env = std::getenv("TFO_LANES");
  if (env == nullptr || *env == '\0') return base;
  char* end = nullptr;
  const long n = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || n < 1 || n > 64) return base;
  LaneConfig cfg;
  cfg.lanes = static_cast<unsigned>(n);
  cfg.parallel = n >= 2;
  return cfg;
}

LaneSet::LaneSet(LaneConfig cfg) : cfg_(cfg) {
  if (cfg_.lanes == 0) cfg_.lanes = 1;
  if (cfg_.lanes == 1) cfg_.parallel = false;  // nothing to parallelize
}

LaneSet::~LaneSet() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }
}

void LaneSet::submit(unsigned lane, Work work) {
  TFO_ASSERT(lane < cfg_.lanes, "lane index out of range");
  auto task = std::make_unique<Task>();
  task->lane = lane;
  task->work = std::move(work);
  round_.push_back(std::move(task));
}

void LaneSet::start_workers() {
  lane_queues_.resize(cfg_.lanes);
  workers_.reserve(cfg_.lanes);
  for (unsigned lane = 0; lane < cfg_.lanes; ++lane) {
    workers_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

void LaneSet::worker_loop(unsigned lane) {
  for (;;) {
    Task* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || !lane_queues_[lane].empty(); });
      if (lane_queues_[lane].empty()) return;  // stop_ && drained
      task = lane_queues_[lane].front();
      lane_queues_[lane].pop_front();
    }
    task->commit = task->work();
    {
      // The store must happen under the mutex the merger's predicate runs
      // under, or a notify landing between its predicate check and its
      // sleep would be lost.
      std::lock_guard<std::mutex> lock(mu_);
      task->done.store(true, std::memory_order_release);
    }
    done_cv_.notify_all();
  }
}

void LaneSet::run_round() {
  if (round_.empty()) return;
  ++stats_.rounds;
  stats_.tasks += round_.size();

  if (!cfg_.parallel) {
    // Serial reference execution: same two-phase shape as the parallel
    // path (all work, then all commits in submission order) so the only
    // difference between modes is *where* work runs, never *when* its
    // effects land.
    for (auto& task : round_) task->commit = task->work();
  } else {
    ++stats_.parallel_rounds;
    if (workers_.empty()) start_workers();
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& task : round_) lane_queues_[task->lane].push_back(task.get());
    }
    work_cv_.notify_all();
    // Deterministic merge: wait for and commit each task in submission
    // order. A task still in flight when the merger reaches it is a
    // merge stall — the lanes finished out of order.
    for (auto& task : round_) {
      if (!task->done.load(std::memory_order_acquire)) {
        ++stats_.merge_stalls;
        std::unique_lock<std::mutex> lock(mu_);
        done_cv_.wait(lock, [&] {
          return task->done.load(std::memory_order_acquire);
        });
      }
    }
  }

  // Commits mutate shared state; they run here, on the simulation thread,
  // in submission order — identical for every lane count and mode.
  for (auto& task : round_) {
    if (task->commit) task->commit();
  }
  round_.clear();
}

}  // namespace tfo::sim
