#include "sim/simulator.hpp"

#include "common/assert.hpp"

namespace tfo::sim {

EventId Simulator::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) t = now_;
  auto ev = std::make_shared<Event>();
  ev->time = t;
  ev->order = next_order_++;
  ev->id = next_id_++;
  ev->fn = std::move(fn);
  by_id_[ev->id] = ev;
  queue_.push(ev);
  ++live_events_;
  return ev->id;
}

EventId Simulator::schedule_after(SimDuration d, std::function<void()> fn) {
  const SimTime t = d <= 0 ? now_ : now_ + static_cast<SimTime>(d);
  return schedule_at(t, std::move(fn));
}

void Simulator::cancel(EventId id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return;
  if (auto ev = it->second.lock(); ev && !ev->cancelled) {
    ev->cancelled = true;
    --live_events_;
  }
  by_id_.erase(it);
}

bool Simulator::step() {
  while (!queue_.empty()) {
    auto ev = queue_.top();
    queue_.pop();
    if (ev->cancelled) continue;
    by_id_.erase(ev->id);
    --live_events_;
    TFO_ASSERT(ev->time >= now_, "event queue went backwards in time");
    now_ = ev->time;
    // Move the closure out so re-entrant scheduling during the call is safe.
    auto fn = std::move(ev->fn);
    fn();
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (step()) {
    TFO_ASSERT(++n <= max_events, "simulator exceeded max_events (runaway loop?)");
  }
}

void Simulator::run_until(SimTime t, std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    // Skip cancelled tombstones at the head without advancing time.
    auto ev = queue_.top();
    if (ev->cancelled) {
      queue_.pop();
      continue;
    }
    if (ev->time > t) break;
    step();
    TFO_ASSERT(++n <= max_events, "simulator exceeded max_events (runaway loop?)");
  }
  if (now_ < t) now_ = t;
}

void Simulator::run_for(SimDuration d, std::uint64_t max_events) {
  run_until(d <= 0 ? now_ : now_ + static_cast<SimTime>(d), max_events);
}

}  // namespace tfo::sim
