#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "common/assert.hpp"

namespace tfo::sim {

namespace {

/// Exact execution order: earliest time first, then schedule order.
struct HeapAfter {
  template <typename E>
  bool operator()(const E& a, const E& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.order > b.order;
  }
};

}  // namespace

struct Simulator::LegacyIndex {
  std::unordered_map<EventId, std::weak_ptr<LegacyEvent>> map;
};

Simulator::Simulator(SchedulerKind kind) : kind_(kind) {
  for (Level& lv : levels_) {
    std::fill(std::begin(lv.head), std::end(lv.head), kNil);
    std::fill(std::begin(lv.tail), std::end(lv.tail), kNil);
  }
  if (kind_ == SchedulerKind::kLegacyHeap) {
    legacy_by_id_ = std::make_unique<LegacyIndex>();
  }
}

Simulator::~Simulator() = default;

const Simulator::Stats& Simulator::stats() const {
  stats_.pool_events = pool_.size();
  return stats_;
}

// ------------------------------------------------------------- event pool

std::uint32_t Simulator::alloc_event(SimTime t, std::function<void()> fn) {
  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(pool_.size());
    TFO_ASSERT(pool_.size() < kNil, "simulator event pool exhausted");
    pool_.emplace_back();
  }
  Event& ev = pool_[idx];
  ev.time = t;
  ev.order = next_order_++;
  ev.prev = ev.next = kNil;
  ev.fn = std::move(fn);
  return idx;
}

void Simulator::free_event(std::uint32_t idx) {
  Event& ev = pool_[idx];
  ev.fn = nullptr;  // release the closure (and captured buffers) eagerly
  ev.loc = Loc::kFree;
  if (++ev.gen == 0) ev.gen = 1;  // gen 0 would make id 0 == kNoEvent
  free_.push_back(idx);
}

// ------------------------------------------------------------------ wheel

void Simulator::heap_push(std::uint32_t idx) {
  Event& ev = pool_[idx];
  ev.loc = Loc::kHeap;
  heap_.push_back(HeapEntry{ev.time, ev.order, idx, ev.gen});
  std::push_heap(heap_.begin(), heap_.end(), HeapAfter{});
  ++stats_.heap_inserts;
}

void Simulator::wheel_insert(std::uint32_t idx, bool cascading) {
  Event& ev = pool_[idx];
  const std::uint64_t tick = ev.time >> kTickShift;
  if (tick <= cur_tick_) {
    heap_push(idx);
    return;
  }
  const std::uint64_t delta = tick - cur_tick_;
  const unsigned level = (static_cast<unsigned>(std::bit_width(delta)) - 1) / kSlotBits;
  if (level >= kLevels) {
    // Beyond the wheel horizon (~52 simulated days): park in the exact
    // heap permanently; it is never migrated back.
    heap_push(idx);
    return;
  }
  const unsigned shift = kSlotBits * level;
  const std::uint64_t coarse = tick >> shift;
  const unsigned slot = static_cast<unsigned>(coarse & (kSlots - 1));
  Level& lv = levels_[level];
  ev.level = static_cast<std::uint16_t>(level);
  ev.slot = static_cast<std::uint16_t>(slot);
  ev.loc = Loc::kWheel;
  ev.prev = lv.tail[slot];
  ev.next = kNil;
  if (lv.tail[slot] != kNil) {
    pool_[lv.tail[slot]].next = idx;
  } else {
    lv.head[slot] = idx;
    lv.occupied |= std::uint64_t{1} << slot;
  }
  lv.tail[slot] = idx;
  if (cascading) {
    ++stats_.cascades;
  } else {
    ++stats_.wheel_inserts;
  }
}

void Simulator::slot_unlink(std::uint32_t idx) {
  Event& ev = pool_[idx];
  Level& lv = levels_[ev.level];
  if (ev.prev != kNil) {
    pool_[ev.prev].next = ev.next;
  } else {
    lv.head[ev.slot] = ev.next;
  }
  if (ev.next != kNil) {
    pool_[ev.next].prev = ev.prev;
  } else {
    lv.tail[ev.slot] = ev.prev;
  }
  if (lv.head[ev.slot] == kNil) lv.occupied &= ~(std::uint64_t{1} << ev.slot);
  ev.prev = ev.next = kNil;
}

void Simulator::drain_slot(unsigned level, std::uint64_t coarse) {
  Level& lv = levels_[level];
  const unsigned slot = static_cast<unsigned>(coarse & (kSlots - 1));
  std::uint32_t idx = lv.head[slot];
  lv.head[slot] = lv.tail[slot] = kNil;
  lv.occupied &= ~(std::uint64_t{1} << slot);
  while (idx != kNil) {
    const std::uint32_t next = pool_[idx].next;
    pool_[idx].prev = pool_[idx].next = kNil;
    if (level == 0) {
      heap_push(idx);
    } else {
      // Re-files at a strictly finer level (or the heap): the event's
      // remaining delta is below this level's slot width.
      wheel_insert(idx, /*cascading=*/true);
    }
    idx = next;
  }
}

std::uint64_t Simulator::wheel_next_tick() const {
  std::uint64_t best = UINT64_MAX;
  for (unsigned l = 0; l < kLevels; ++l) {
    const std::uint64_t occ = levels_[l].occupied;
    if (occ == 0) continue;
    const unsigned shift = kSlotBits * l;
    const std::uint64_t c = cur_tick_ >> shift;
    // Occupied slots all start after the cursor, so rotating the bitmap to
    // put coarse tick c+1 at bit 0 makes countr_zero the next occupied
    // slot's distance.
    const std::uint64_t rot = std::rotr(occ, static_cast<int>((c + 1) & (kSlots - 1)));
    const std::uint64_t coarse = c + 1 + static_cast<unsigned>(std::countr_zero(rot));
    const std::uint64_t start = coarse << shift;
    if (start < best) best = start;
  }
  return best;
}

bool Simulator::prepare_next() {
  while (true) {
    // Drop cancelled entries parked at the heap top.
    while (!heap_.empty()) {
      const HeapEntry& top = heap_.front();
      if (pool_[top.idx].gen == top.gen) break;
      std::pop_heap(heap_.begin(), heap_.end(), HeapAfter{});
      heap_.pop_back();
      --heap_stale_;
    }
    const std::uint64_t wt = wheel_next_tick();
    if (heap_.empty() && wt == UINT64_MAX) return false;
    // A slot's start time lower-bounds every event it holds, so the heap
    // top is the true global next exactly when it fires before any
    // occupied slot opens. Ties must drain the slot first: it may hold an
    // equal-time event with an earlier schedule order.
    if (!heap_.empty() &&
        (wt == UINT64_MAX || heap_.front().time < (wt << kTickShift))) {
      return true;
    }
    cur_tick_ = wt;
    // Drain every level whose slot opens exactly at the cursor, coarsest
    // first so cascades land in finer levels before those are drained.
    for (unsigned l = kLevels; l-- > 0;) {
      const unsigned shift = kSlotBits * l;
      const std::uint64_t coarse = wt >> shift;
      if ((coarse << shift) != wt) continue;
      if (levels_[l].occupied & (std::uint64_t{1} << (coarse & (kSlots - 1)))) {
        drain_slot(l, coarse);
      }
    }
  }
}

void Simulator::heap_compact() {
  std::erase_if(heap_, [this](const HeapEntry& e) {
    return pool_[e.idx].gen != e.gen;
  });
  std::make_heap(heap_.begin(), heap_.end(), HeapAfter{});
  heap_stale_ = 0;
  ++stats_.heap_compactions;
}

void Simulator::execute_heap_top() {
  std::pop_heap(heap_.begin(), heap_.end(), HeapAfter{});
  const HeapEntry top = heap_.back();
  heap_.pop_back();
  Event& ev = pool_[top.idx];
  TFO_ASSERT(ev.time >= now_, "event queue went backwards in time");
  now_ = ev.time;
  // Move the closure out so re-entrant scheduling during the call is safe,
  // and recycle the pool slot before invoking (the callback may re-arm).
  auto fn = std::move(ev.fn);
  free_event(top.idx);
  --live_events_;
  ++stats_.fired;
  fn();
}

// ------------------------------------------------------------- public API

EventId Simulator::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) t = now_;
  ++stats_.scheduled;
  if (kind_ == SchedulerKind::kLegacyHeap) return legacy_schedule(t, std::move(fn));
  const std::uint32_t idx = alloc_event(t, std::move(fn));
  wheel_insert(idx, /*cascading=*/false);
  ++live_events_;
  return (static_cast<EventId>(pool_[idx].gen) << 32) | idx;
}

EventId Simulator::schedule_after(SimDuration d, std::function<void()> fn) {
  const SimTime t = d <= 0 ? now_ : now_ + static_cast<SimTime>(d);
  return schedule_at(t, std::move(fn));
}

void Simulator::cancel(EventId id) {
  if (id == kNoEvent) return;
  if (kind_ == SchedulerKind::kLegacyHeap) {
    legacy_cancel(id);
    return;
  }
  const std::uint32_t idx = static_cast<std::uint32_t>(id & 0xffffffffu);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (idx >= pool_.size()) return;
  Event& ev = pool_[idx];
  if (ev.gen != gen || ev.loc == Loc::kFree) return;
  if (ev.loc == Loc::kWheel) {
    slot_unlink(idx);
  } else {
    // Heap entries are purged lazily; compact when the dead outnumber the
    // live so a cancel-heavy phase cannot pin the heap's high-water mark.
    ++heap_stale_;
    if (heap_.size() > 64 && heap_stale_ * 2 > heap_.size()) heap_compact();
  }
  free_event(idx);
  --live_events_;
  ++stats_.cancelled;
}

bool Simulator::step() {
  if (kind_ == SchedulerKind::kLegacyHeap) return legacy_step();
  if (!prepare_next()) return false;
  execute_heap_top();
  return true;
}

void Simulator::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (step()) {
    TFO_ASSERT(++n <= max_events, "simulator exceeded max_events (runaway loop?)");
  }
}

void Simulator::run_until(SimTime t, std::uint64_t max_events) {
  if (kind_ == SchedulerKind::kLegacyHeap) {
    legacy_run_until(t, max_events);
    return;
  }
  std::uint64_t n = 0;
  while (prepare_next()) {
    if (heap_.front().time > t) break;
    execute_heap_top();
    TFO_ASSERT(++n <= max_events, "simulator exceeded max_events (runaway loop?)");
  }
  if (now_ < t) now_ = t;
}

void Simulator::run_for(SimDuration d, std::uint64_t max_events) {
  run_until(d <= 0 ? now_ : now_ + static_cast<SimTime>(d), max_events);
}

// ----------------------------------------------------------------- legacy

EventId Simulator::legacy_schedule(SimTime t, std::function<void()> fn) {
  auto ev = std::make_shared<LegacyEvent>();
  ev->time = t;
  ev->order = next_order_++;
  ev->id = legacy_next_id_++;
  ev->fn = std::move(fn);
  legacy_by_id_->map[ev->id] = ev;
  legacy_heap_.push_back(ev);
  std::push_heap(legacy_heap_.begin(), legacy_heap_.end(), LegacyCmp{});
  ++live_events_;
  return ev->id;
}

void Simulator::legacy_cancel(EventId id) {
  auto it = legacy_by_id_->map.find(id);
  if (it == legacy_by_id_->map.end()) return;
  if (auto ev = it->second.lock(); ev && !ev->cancelled) {
    ev->cancelled = true;
    ev->fn = nullptr;  // release the closure eagerly, not at the deadline
    --live_events_;
    ++legacy_tombstones_;
    ++stats_.cancelled;
  }
  legacy_by_id_->map.erase(it);
  // Tombstones ride in the heap until their deadline; rebuild once they
  // outnumber the live events so a storm of cancelled retransmit timers
  // cannot pin the queue's memory.
  if (legacy_tombstones_ > live_events_ && legacy_tombstones_ > 64) legacy_compact();
}

void Simulator::legacy_compact() {
  std::erase_if(legacy_heap_,
                [](const std::shared_ptr<LegacyEvent>& e) { return e->cancelled; });
  std::make_heap(legacy_heap_.begin(), legacy_heap_.end(), LegacyCmp{});
  legacy_tombstones_ = 0;
  ++stats_.legacy_compactions;
}

bool Simulator::legacy_step() {
  while (!legacy_heap_.empty()) {
    std::pop_heap(legacy_heap_.begin(), legacy_heap_.end(), LegacyCmp{});
    auto ev = std::move(legacy_heap_.back());
    legacy_heap_.pop_back();
    if (ev->cancelled) {
      if (legacy_tombstones_ > 0) --legacy_tombstones_;
      continue;
    }
    legacy_by_id_->map.erase(ev->id);
    --live_events_;
    TFO_ASSERT(ev->time >= now_, "event queue went backwards in time");
    now_ = ev->time;
    // Move the closure out so re-entrant scheduling during the call is safe.
    auto fn = std::move(ev->fn);
    ++stats_.fired;
    fn();
    return true;
  }
  return false;
}

void Simulator::legacy_run_until(SimTime t, std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (!legacy_heap_.empty()) {
    // Skip cancelled tombstones at the head without advancing time.
    const auto& ev = legacy_heap_.front();
    if (ev->cancelled) {
      std::pop_heap(legacy_heap_.begin(), legacy_heap_.end(), LegacyCmp{});
      legacy_heap_.pop_back();
      if (legacy_tombstones_ > 0) --legacy_tombstones_;
      continue;
    }
    if (ev->time > t) break;
    legacy_step();
    TFO_ASSERT(++n <= max_events, "simulator exceeded max_events (runaway loop?)");
  }
  if (now_ < t) now_ = t;
}

}  // namespace tfo::sim
