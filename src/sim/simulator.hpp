// Deterministic discrete-event simulator.
//
// All network and protocol activity in this library is driven by a single
// Simulator instance. Events scheduled for the same instant run in
// scheduling order (a strictly increasing tiebreaker), which makes every
// run bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"

namespace tfo::sim {

/// Opaque handle identifying a scheduled event, usable for cancellation.
/// Value 0 is "no event".
using EventId = std::uint64_t;
constexpr EventId kNoEvent = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (clamped to now()).
  EventId schedule_at(SimTime t, std::function<void()> fn);

  /// Schedules `fn` to run `d` after now (negative d is clamped to now).
  EventId schedule_after(SimDuration d, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-run or invalid id is a
  /// harmless no-op, so callers need not track completion.
  void cancel(EventId id);

  /// Runs the single next event. Returns false if the queue was empty.
  bool step();

  /// Runs until the queue drains (or `max_events` is hit, a runaway guard).
  void run(std::uint64_t max_events = kDefaultMaxEvents);

  /// Runs events with time <= t, then sets now() to t.
  void run_until(SimTime t, std::uint64_t max_events = kDefaultMaxEvents);

  /// Runs events for duration `d` from the current time.
  void run_for(SimDuration d, std::uint64_t max_events = kDefaultMaxEvents);

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return live_events_; }

  static constexpr std::uint64_t kDefaultMaxEvents = 500'000'000;

 private:
  struct Event {
    SimTime time;
    std::uint64_t order;  // tiebreaker: schedule order
    EventId id;
    std::function<void()> fn;
    bool cancelled = false;
  };
  struct Cmp {
    bool operator()(const std::shared_ptr<Event>& a,
                    const std::shared_ptr<Event>& b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->order > b->order;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_order_ = 1;
  EventId next_id_ = 1;
  std::size_t live_events_ = 0;
  std::priority_queue<std::shared_ptr<Event>, std::vector<std::shared_ptr<Event>>, Cmp>
      queue_;
  // Cancellation: ids of events flagged dead before they fire. We flag via
  // the shared Event; this map finds the Event by id.
  std::unordered_map<EventId, std::weak_ptr<Event>> by_id_;
};

}  // namespace tfo::sim
