// Deterministic discrete-event simulator.
//
// All network and protocol activity in this library is driven by a single
// Simulator instance. Events scheduled for the same instant run in
// scheduling order (a strictly increasing tiebreaker), which makes every
// run bit-for-bit reproducible.
//
// Two schedulers implement that contract:
//
//   * kTimingWheel (default) — a hierarchical timing wheel over a pooled
//     event store. schedule/cancel are O(1) and allocation-free once the
//     pool is warm, which is what lets 100k connections each hold armed
//     retransmit timers without the event queue becoming the bottleneck.
//     The wheel is a *staging area*, not the execution order: every event
//     funnels through one exact (time, order) min-heap before running, so
//     drain order is bit-for-bit identical to the legacy scheduler's.
//   * kLegacyHeap — the original shared_ptr priority queue, retained for
//     A/B benchmarking and the equivalence property test.
//
// Wheel shape: kLevels levels of kSlots slots. Level 0 slots are one tick
// (2^kTickShift ns ≈ 65.5 µs) wide; each higher level is kSlots× coarser.
// An event due in slot range [start, start + width) is parked in that slot
// and either cascades to a finer level or enters the exact heap when the
// cursor reaches `start`. Events beyond the wheel horizon (~52 simulated
// days) go straight to the exact heap. Because a slot's start time is a
// lower bound on every event it holds, the heap top at time T is safe to
// run exactly when every slot with start ≤ T has been drained — that
// single invariant is what preserves the (time, schedule-order) contract.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/time.hpp"

namespace tfo::sim {

/// Opaque handle identifying a scheduled event, usable for cancellation.
/// Value 0 is "no event". Internally (generation << 32) | pool index, so a
/// recycled pool slot never honours a stale cancel.
using EventId = std::uint64_t;
constexpr EventId kNoEvent = 0;

/// Which event-queue implementation a Simulator runs on.
enum class SchedulerKind {
  kTimingWheel,  ///< pooled hierarchical wheel + exact heap (default)
  kLegacyHeap,   ///< original shared_ptr priority queue (A/B reference)
};

class Simulator {
 public:
  explicit Simulator(SchedulerKind kind = SchedulerKind::kTimingWheel);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SchedulerKind scheduler_kind() const { return kind_; }

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (clamped to now()).
  EventId schedule_at(SimTime t, std::function<void()> fn);

  /// Schedules `fn` to run `d` after now (negative d is clamped to now).
  EventId schedule_after(SimDuration d, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-run or invalid id is a
  /// harmless no-op, so callers need not track completion. The event's
  /// closure (and anything it captured) is released eagerly, not at the
  /// deadline.
  void cancel(EventId id);

  /// Runs the single next event. Returns false if the queue was empty.
  bool step();

  /// Runs until the queue drains (or `max_events` is hit, a runaway guard).
  void run(std::uint64_t max_events = kDefaultMaxEvents);

  /// Runs events with time <= t, then sets now() to t.
  void run_until(SimTime t, std::uint64_t max_events = kDefaultMaxEvents);

  /// Runs events for duration `d` from the current time.
  void run_for(SimDuration d, std::uint64_t max_events = kDefaultMaxEvents);

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return live_events_; }

  /// Scheduler instrumentation, mirrored into per-host obs snapshots as
  /// sim.wheel.* (see OBSERVABILITY.md). Monotonic counters plus the
  /// current pool footprint.
  struct Stats {
    std::uint64_t scheduled = 0;        ///< schedule_at/schedule_after calls
    std::uint64_t cancelled = 0;        ///< cancels that hit a live event
    std::uint64_t fired = 0;            ///< events executed
    std::uint64_t wheel_inserts = 0;    ///< events parked in a wheel slot
    std::uint64_t heap_inserts = 0;     ///< events entering the exact heap
    std::uint64_t cascades = 0;         ///< wheel events re-filed at a finer level
    std::uint64_t heap_compactions = 0; ///< stale-entry purges of the exact heap
    std::uint64_t pool_events = 0;      ///< event-pool capacity (wheel mode)
    std::uint64_t legacy_compactions = 0; ///< tombstone purges (legacy mode)
  };
  const Stats& stats() const;

  static constexpr std::uint64_t kDefaultMaxEvents = 500'000'000;

  // Wheel geometry (public for the property test / docs).
  static constexpr unsigned kTickShift = 16;  ///< level-0 tick = 2^16 ns
  static constexpr unsigned kSlotBits = 6;    ///< 64 slots per level
  static constexpr unsigned kSlots = 1u << kSlotBits;
  static constexpr unsigned kLevels = 6;

 private:
  // ------------------------------------------------------- wheel scheduler
  static constexpr std::uint32_t kNil = 0xffffffffu;

  enum class Loc : std::uint8_t { kFree, kWheel, kHeap };

  struct Event {
    SimTime time = 0;
    std::uint64_t order = 0;
    std::uint32_t gen = 1;  // bumped on free; id = (gen << 32) | index
    std::uint32_t prev = kNil, next = kNil;  // intrusive slot list
    std::uint16_t level = 0, slot = 0;
    Loc loc = Loc::kFree;
    std::function<void()> fn;
  };

  struct HeapEntry {
    SimTime time;
    std::uint64_t order;
    std::uint32_t idx;
    std::uint32_t gen;
  };

  struct Level {
    std::uint64_t occupied = 0;           // bit s set ⇔ slot s non-empty
    std::uint32_t head[kSlots];
    std::uint32_t tail[kSlots];
  };

  std::uint32_t alloc_event(SimTime t, std::function<void()> fn);
  void free_event(std::uint32_t idx);
  void wheel_insert(std::uint32_t idx, bool cascading);
  void heap_push(std::uint32_t idx);
  void slot_unlink(std::uint32_t idx);
  void drain_slot(unsigned level, std::uint64_t coarse);
  /// Min start time (absolute tick) over all occupied slots; UINT64_MAX if
  /// the wheel is empty.
  std::uint64_t wheel_next_tick() const;
  /// Advances the wheel until the exact heap's top is the globally next
  /// event. Returns false when nothing is pending.
  bool prepare_next();
  void heap_compact();
  void execute_heap_top();

  SchedulerKind kind_;
  SimTime now_ = 0;
  std::uint64_t next_order_ = 1;
  std::size_t live_events_ = 0;
  mutable Stats stats_;

  std::deque<Event> pool_;
  std::vector<std::uint32_t> free_;
  std::vector<HeapEntry> heap_;  // min-heap on (time, order)
  std::size_t heap_stale_ = 0;   // cancelled entries still parked in heap_
  Level levels_[kLevels];
  std::uint64_t cur_tick_ = 0;   // wheel cursor: slots before it are drained

  // ------------------------------------------------------ legacy scheduler
  // The original implementation: one shared_ptr heap entry per event, an
  // id→event side table, cancellation by tombstone flag. Kept verbatim in
  // behaviour (plus the tombstone-compaction and eager-closure-free fixes)
  // as the A/B baseline.
  struct LegacyEvent {
    SimTime time;
    std::uint64_t order;
    EventId id;
    std::function<void()> fn;
    bool cancelled = false;
  };
  struct LegacyCmp {
    bool operator()(const std::shared_ptr<LegacyEvent>& a,
                    const std::shared_ptr<LegacyEvent>& b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->order > b->order;
    }
  };
  EventId legacy_schedule(SimTime t, std::function<void()> fn);
  void legacy_cancel(EventId id);
  bool legacy_step();
  void legacy_run_until(SimTime t, std::uint64_t max_events);
  void legacy_compact();

  EventId legacy_next_id_ = 1;
  std::vector<std::shared_ptr<LegacyEvent>> legacy_heap_;
  std::size_t legacy_tombstones_ = 0;
  struct LegacyIndex;  // unordered_map<EventId, weak_ptr<LegacyEvent>>
  std::unique_ptr<LegacyIndex> legacy_by_id_;
};

}  // namespace tfo::sim
