// RAII one-shot timer bound to a Simulator.
//
// Protocol state machines hold Timers as members; destruction (or restart)
// cancels the pending callback, so a destroyed connection can never be
// called back — the idiomatic fix for the classic "timer fires into freed
// TCB" lifetime bug.
//
// The callback is stored in the Timer itself and the simulator event is
// just `[this] { fire(); }` — small enough for std::function's inline
// buffer. On the timing-wheel scheduler an arm/cancel/re-arm cycle
// therefore performs no heap allocation at all (the dominant timer pattern
// in a TCP stack: every ACKed segment re-arms the retransmit timer).
#pragma once

#include <functional>
#include <utility>

#include "sim/simulator.hpp"

namespace tfo::sim {

class Timer {
 public:
  explicit Timer(Simulator& sim) : sim_(&sim) {}
  ~Timer() { stop(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)arms the timer to fire `d` from now. A pending arm is cancelled.
  void start(SimDuration d, std::function<void()> fn) {
    stop();
    fn_ = std::move(fn);
    deadline_ = sim_->now() + static_cast<SimTime>(d < 0 ? 0 : d);
    id_ = sim_->schedule_at(deadline_, [this] { fire(); });
  }

  /// Cancels the pending callback, if any, releasing it eagerly.
  void stop() {
    if (id_ != kNoEvent) {
      sim_->cancel(id_);
      id_ = kNoEvent;
    }
    fn_ = nullptr;
  }

  bool armed() const { return id_ != kNoEvent; }

  /// Absolute fire time of the armed timer (meaningless when not armed).
  SimTime deadline() const { return deadline_; }

 private:
  void fire() {
    id_ = kNoEvent;
    // Run from a local so the callback may restart — or even destroy —
    // this Timer: after the move, fire() never touches members again.
    std::function<void()> fn = std::move(fn_);
    fn_ = nullptr;
    fn();
  }

  Simulator* sim_;
  std::function<void()> fn_;
  EventId id_ = kNoEvent;
  SimTime deadline_ = 0;
};

}  // namespace tfo::sim
