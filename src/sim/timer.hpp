// RAII one-shot timer bound to a Simulator.
//
// Protocol state machines hold Timers as members; destruction (or restart)
// cancels the pending callback, so a destroyed connection can never be
// called back — the idiomatic fix for the classic "timer fires into freed
// TCB" lifetime bug.
#pragma once

#include <functional>
#include <utility>

#include "sim/simulator.hpp"

namespace tfo::sim {

class Timer {
 public:
  explicit Timer(Simulator& sim) : sim_(&sim) {}
  ~Timer() { stop(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)arms the timer to fire `d` from now. A pending arm is cancelled.
  void start(SimDuration d, std::function<void()> fn) {
    stop();
    deadline_ = sim_->now() + static_cast<SimTime>(d < 0 ? 0 : d);
    id_ = sim_->schedule_after(d, [this, fn = std::move(fn)] {
      id_ = kNoEvent;
      fn();
    });
  }

  /// Cancels the pending callback, if any.
  void stop() {
    if (id_ != kNoEvent) {
      sim_->cancel(id_);
      id_ = kNoEvent;
    }
  }

  bool armed() const { return id_ != kNoEvent; }

  /// Absolute fire time of the armed timer (meaningless when not armed).
  SimTime deadline() const { return deadline_; }

 private:
  Simulator* sim_;
  EventId id_ = kNoEvent;
  SimTime deadline_ = 0;
};

}  // namespace tfo::sim
