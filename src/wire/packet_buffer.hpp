// PacketBuffer: the stack's single-allocation wire buffer.
//
// The paper's bridge is a rewrite-in-place design — §3.1 patches the
// destination address of an already-serialized segment and fixes the
// checksum incrementally. A stack that re-serializes and re-copies the
// packet at every layer boundary cannot express that operation; this
// buffer can. It is the simulator's analogue of the kernel sk_buff:
//
//   * one contiguous allocation per packet, with reserved *headroom* so
//     each layer prepends its header in place instead of copying the
//     payload into a larger buffer;
//   * offset-based views: parsing a layer strips its header by moving the
//     logical start forward (trim_front) — no bytes move;
//   * cheap shared ownership: duplicating a frame to N receivers, or
//     retaining a payload slice in an OutputQueue, shares the storage and
//     bumps a refcount;
//   * copy-on-write: any byte mutation first proves exclusive ownership
//     (storage refcount == 1) or deep-copies. This is what makes the
//     §3.1 in-place rewrite safe on a promiscuously snooped frame whose
//     storage the primary's pending delivery still shares — and what
//     keeps a header prepend from clobbering a sibling slice retained by
//     an OutputQueue out of the same storage.
//
// All mutating entry points funnel through the refcount discipline;
// offset-only trims never touch bytes and are therefore always safe on
// shared storage.
#pragma once

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <iterator>
#include <memory>

#include "common/bytes.hpp"

namespace tfo::wire {

/// Process-wide buffer accounting, mirrored into per-host obs snapshots as
/// net.alloc.* / net.bytes_copied (see OBSERVABILITY.md). Returned as a
/// plain snapshot; the counters themselves are relaxed atomics internally,
/// because GRO lane workers allocate and copy buffers concurrently when
/// the parallel lane pool is enabled (TFO_LANES).
struct BufferStats {
  std::uint64_t allocations = 0;    ///< fresh storage blocks created
  std::uint64_t allocated_bytes = 0;///< capacity of those blocks
  std::uint64_t deep_copies = 0;    ///< CoW / reallocation byte copies
  std::uint64_t copied_bytes = 0;   ///< bytes moved by those copies
  std::uint64_t shares = 0;         ///< zero-copy duplications (refcount bumps)
};

BufferStats buffer_stats();
void reset_buffer_stats();

class PacketBuffer {
 public:
  /// Reference-counted backing block. Public only so the allocation
  /// helper in the .cpp can construct it; not part of the API. The
  /// destructor recycles MTU-class blocks into a thread-local pool.
  struct Storage {
    Bytes buf;
    ~Storage();
  };

  /// Headroom reserved in front of a payload allocation: enough for the
  /// largest TCP header (60), the IP header (20) and a future link-layer
  /// header (14), rounded up.
  static constexpr std::size_t kDefaultHeadroom = 96;
  /// Tailroom reserved behind a payload allocation: covers Ethernet
  /// minimum-frame padding of runt segments without reallocating.
  static constexpr std::size_t kDefaultTailroom = 46;

  PacketBuffer() = default;

  // Copy/move of the handle shares storage (refcount bump, no byte copy);
  // the copy operations record the share for the stats counters.
  PacketBuffer(const PacketBuffer& other);
  PacketBuffer& operator=(const PacketBuffer& other);
  PacketBuffer(PacketBuffer&&) noexcept = default;
  PacketBuffer& operator=(PacketBuffer&&) noexcept = default;

  /// Adopts an existing byte vector (no byte copy; the vector's buffer
  /// becomes the storage, with zero headroom/tailroom). Implicit on
  /// purpose: every legacy `frame.payload = some_bytes` call site keeps
  /// compiling, paying one storage-adoption and nothing else.
  PacketBuffer(Bytes b);  // NOLINT(google-explicit-constructor)

  /// Fresh storage with default headroom/tailroom, contents copied in.
  static PacketBuffer copy_of(BytesView src);

  /// Fresh zero-filled storage of `len` payload bytes with the given
  /// head/tail reserves.
  static PacketBuffer alloc(std::size_t len,
                            std::size_t headroom = kDefaultHeadroom,
                            std::size_t tailroom = kDefaultTailroom);

  /// Replaces contents with [first, last), allocating fresh storage with
  /// default headroom so later header prepends stay in place.
  template <typename It>
  void assign(It first, It last) {
    const auto n = static_cast<std::size_t>(std::distance(first, last));
    *this = alloc(n);
    std::uint8_t* p = storage_ ? storage_->buf.data() + head_ : nullptr;
    for (; first != last; ++first) *p++ = *first;
  }

  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  void clear() {
    storage_.reset();
    head_ = len_ = 0;
  }

  const std::uint8_t* data() const {
    return storage_ ? storage_->buf.data() + head_ : nullptr;
  }
  /// Mutable access — copy-on-write: unshares first.
  std::uint8_t* mutable_data() {
    unshare();
    return storage_ ? storage_->buf.data() + head_ : nullptr;
  }

  const std::uint8_t* begin() const { return data(); }
  const std::uint8_t* end() const { return data() + len_; }

  std::uint8_t operator[](std::size_t i) const { return data()[i]; }
  /// Mutable indexing — copy-on-write: unshares first.
  std::uint8_t& operator[](std::size_t i) { return mutable_data()[i]; }

  BytesView view() const { return BytesView(data(), len_); }
  operator BytesView() const { return view(); }  // NOLINT

  /// Strips `n` bytes from the front by advancing the view offset. Never
  /// copies; safe on shared storage (this is how rx parsing peels layer
  /// headers without touching bytes).
  void trim_front(std::size_t n) {
    head_ += n;
    len_ -= n;
  }

  /// Keeps only the first `n` bytes (n <= size). Never copies; this is
  /// how IP `total_length` trims Ethernet minimum-frame padding.
  void trim_to(std::size_t n) {
    if (n < len_) len_ = n;
  }

  /// Grows the front by `n` bytes and returns a pointer to the new region
  /// (a layer's header slot). In place when this buffer exclusively owns
  /// its storage and headroom suffices; otherwise reallocates — exclusive
  /// ownership is required even with headroom available, because shared
  /// storage may carry a sibling slice (or a pending rx delivery) in the
  /// bytes a prepend would claim.
  std::uint8_t* prepend(std::size_t n);

  /// Grows the back by `n` zero bytes and returns a pointer to the new
  /// region (Ethernet runt padding). Same exclusivity rule as prepend.
  std::uint8_t* append(std::size_t n);

  /// Forces exclusive ownership: deep-copies the visible range into fresh
  /// storage (with default headroom) when the storage is shared. The
  /// §3.1 rewrite calls this before patching a snooped frame the
  /// primary's delivery may still be reading.
  void unshare();

  /// True when no other PacketBuffer shares this storage.
  bool unique() const { return !storage_ || storage_.use_count() == 1; }
  std::size_t headroom() const { return head_; }
  std::size_t tailroom() const {
    return storage_ ? storage_->buf.size() - head_ - len_ : 0;
  }

  friend bool operator==(const PacketBuffer& a, const PacketBuffer& b) {
    return a.len_ == b.len_ &&
           (a.len_ == 0 || std::memcmp(a.data(), b.data(), a.len_) == 0);
  }
  friend bool operator!=(const PacketBuffer& a, const PacketBuffer& b) {
    return !(a == b);
  }

 private:
  PacketBuffer(std::shared_ptr<Storage> s, std::size_t head, std::size_t len)
      : storage_(std::move(s)), head_(head), len_(len) {}

  std::shared_ptr<Storage> storage_;
  std::size_t head_ = 0;
  std::size_t len_ = 0;
};

/// Copies a buffer's contents out into a plain Bytes (test/diagnostic use).
inline Bytes to_bytes(const PacketBuffer& b) {
  return Bytes(b.begin(), b.end());
}

std::ostream& operator<<(std::ostream& os, const PacketBuffer& b);

}  // namespace tfo::wire
