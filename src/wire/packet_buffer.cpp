#include "wire/packet_buffer.hpp"

#include <ostream>

namespace tfo::wire {

namespace {
BufferStats g_stats;

std::shared_ptr<PacketBuffer::Storage> make_storage(std::size_t cap) {
  auto s = std::make_shared<PacketBuffer::Storage>();
  s->buf.resize(cap);
  ++g_stats.allocations;
  g_stats.allocated_bytes += cap;
  return s;
}
}  // namespace

const BufferStats& buffer_stats() { return g_stats; }
void reset_buffer_stats() { g_stats = BufferStats{}; }

PacketBuffer::PacketBuffer(Bytes b) {
  len_ = b.size();
  head_ = 0;
  storage_ = std::make_shared<Storage>();
  storage_->buf = std::move(b);
  ++g_stats.allocations;  // adopted, but a distinct storage block
  g_stats.allocated_bytes += len_;
}

PacketBuffer PacketBuffer::copy_of(BytesView src) {
  PacketBuffer b = alloc(src.size());
  if (!src.empty()) {
    std::memcpy(b.storage_->buf.data() + b.head_, src.data(), src.size());
    ++g_stats.deep_copies;
    g_stats.copied_bytes += src.size();
  }
  return b;
}

PacketBuffer PacketBuffer::alloc(std::size_t len, std::size_t headroom,
                                 std::size_t tailroom) {
  return PacketBuffer(make_storage(headroom + len + tailroom), headroom, len);
}

PacketBuffer::PacketBuffer(const PacketBuffer& other)
    : storage_(other.storage_), head_(other.head_), len_(other.len_) {
  if (storage_) ++g_stats.shares;
}

PacketBuffer& PacketBuffer::operator=(const PacketBuffer& other) {
  if (this != &other) {
    storage_ = other.storage_;
    head_ = other.head_;
    len_ = other.len_;
    if (storage_) ++g_stats.shares;
  }
  return *this;
}

std::uint8_t* PacketBuffer::prepend(std::size_t n) {
  if (storage_ && storage_.use_count() == 1 && head_ >= n) {
    head_ -= n;
    len_ += n;
    return storage_->buf.data() + head_;
  }
  // Reallocate: new storage with headroom for further prepends, visible
  // range copied behind the freshly claimed header slot.
  const std::size_t new_head =
      kDefaultHeadroom >= n ? kDefaultHeadroom - n : 0;
  PacketBuffer grown(make_storage(new_head + n + len_ + kDefaultTailroom),
                     new_head, n + len_);
  if (len_ != 0) {
    std::memcpy(grown.storage_->buf.data() + new_head + n, data(), len_);
    ++g_stats.deep_copies;
    g_stats.copied_bytes += len_;
  }
  *this = std::move(grown);
  return storage_->buf.data() + head_;
}

std::uint8_t* PacketBuffer::append(std::size_t n) {
  if (storage_ && storage_.use_count() == 1 &&
      storage_->buf.size() - head_ - len_ >= n) {
    std::uint8_t* p = storage_->buf.data() + head_ + len_;
    std::memset(p, 0, n);
    len_ += n;
    return p;
  }
  PacketBuffer grown(make_storage(head_ + len_ + n + kDefaultTailroom), head_,
                     len_ + n);
  if (len_ != 0) {
    std::memcpy(grown.storage_->buf.data() + head_, data(), len_);
    ++g_stats.deep_copies;
    g_stats.copied_bytes += len_;
  }
  std::memset(grown.storage_->buf.data() + head_ + len_, 0, n);
  *this = std::move(grown);
  return storage_->buf.data() + head_ + len_ - n;
}

void PacketBuffer::unshare() {
  if (!storage_ || storage_.use_count() == 1) return;
  PacketBuffer fresh = alloc(len_);
  if (len_ != 0) {
    std::memcpy(fresh.storage_->buf.data() + fresh.head_, data(), len_);
    ++g_stats.deep_copies;
    g_stats.copied_bytes += len_;
  }
  *this = std::move(fresh);
}

std::ostream& operator<<(std::ostream& os, const PacketBuffer& b) {
  os << "PacketBuffer(" << b.size() << "B)";
  return os;
}

}  // namespace tfo::wire
