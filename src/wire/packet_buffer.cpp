#include "wire/packet_buffer.hpp"

#include <atomic>
#include <ostream>

namespace tfo::wire {

namespace {

/// The live counters: relaxed atomics, because parallel GRO lane workers
/// allocate/copy buffers concurrently. Relaxed is enough — these are pure
/// statistics with no ordering relationship to anything; the lane merge
/// barrier (LaneSet::run_round) sequences them before any snapshot is
/// taken on the simulation thread, so snapshots stay deterministic.
struct AtomicBufferStats {
  std::atomic<std::uint64_t> allocations{0};
  std::atomic<std::uint64_t> allocated_bytes{0};
  std::atomic<std::uint64_t> deep_copies{0};
  std::atomic<std::uint64_t> copied_bytes{0};
  std::atomic<std::uint64_t> shares{0};
};
AtomicBufferStats g_stats;

constexpr auto kRelaxed = std::memory_order_relaxed;

inline void bump(std::atomic<std::uint64_t>& c, std::uint64_t n = 1) {
  c.fetch_add(n, kRelaxed);
}

/// Thread-local recycling pool for MTU-class storage blocks. The data
/// path churns one block per segment; recycling the backing vectors
/// avoids a malloc/free pair and the zero-fill of ~2 KB per packet.
/// Recycled blocks keep their stale bytes — every allocation site writes
/// its full visible range (header prepends included), which the
/// determinism suite would expose if violated. Per-thread on purpose:
/// parallel GRO lane workers allocate without synchronization.
///
/// A second, smaller class recycles jumbo blocks (GRO-merged frames: up
/// to 32 coalesced MSS payloads plus headers). Jumbo blocks keep their
/// high-water size across reuse — a block is never shrunk on reuse nor
/// regrown on recycle — so in steady state a merged-frame allocation
/// costs no zero-fill at all; `vector::resize` only value-initializes
/// when an allocation exceeds every size the block has served before.
constexpr std::size_t kPoolBlockBytes = 2048;
constexpr std::size_t kPoolMaxBlocks = 1024;
constexpr std::size_t kJumboBlockBytes = 64 * 1024;
constexpr std::size_t kJumboMaxBlocks = 32;

// Trivially destructible on purpose: its storage stays readable while
// other thread-locals (the pool itself) wind down, so a Storage dying
// during thread exit can tell whether recycling is still safe.
thread_local bool g_pool_alive = false;

struct StoragePool {
  std::vector<Bytes> blocks;
  std::vector<Bytes> jumbo;
  StoragePool() { g_pool_alive = true; }
  ~StoragePool() { g_pool_alive = false; }
};

StoragePool& pool() {
  thread_local StoragePool p;
  return p;
}

std::shared_ptr<PacketBuffer::Storage> make_storage(std::size_t cap) {
  bump(g_stats.allocations);
  bump(g_stats.allocated_bytes, cap);
  auto s = std::make_shared<PacketBuffer::Storage>();
  if (cap <= kPoolBlockBytes) {
    StoragePool& p = pool();
    if (!p.blocks.empty()) {
      s->buf = std::move(p.blocks.back());
      p.blocks.pop_back();
      s->buf.resize(cap);  // shrink within the block: no fill, no realloc
      return s;
    }
    s->buf.reserve(kPoolBlockBytes);  // fresh block, pool-class capacity
  } else if (cap <= kJumboBlockBytes) {
    StoragePool& p = pool();
    if (!p.jumbo.empty()) {
      s->buf = std::move(p.jumbo.back());
      p.jumbo.pop_back();
      // Grow only past the block's high-water mark; a smaller request
      // keeps the larger size (the excess is just extra tailroom), so
      // steady-state reuse never value-initializes a byte.
      if (s->buf.size() < cap) s->buf.resize(cap);
      return s;
    }
    s->buf.reserve(kJumboBlockBytes);  // fresh block, jumbo-class capacity
  }
  s->buf.resize(cap);
  return s;
}
}  // namespace

PacketBuffer::Storage::~Storage() {
  if (!g_pool_alive || buf.capacity() < kPoolBlockBytes) return;
  StoragePool& p = pool();
  if (buf.capacity() >= kJumboBlockBytes) {
    // Recycled at current (high-water) size on purpose — see the pool
    // comment above.
    if (p.jumbo.size() < kJumboMaxBlocks) p.jumbo.push_back(std::move(buf));
    return;
  }
  if (p.blocks.size() >= kPoolMaxBlocks) return;
  buf.resize(kPoolBlockBytes);
  p.blocks.push_back(std::move(buf));
}

BufferStats buffer_stats() {
  BufferStats out;
  out.allocations = g_stats.allocations.load(kRelaxed);
  out.allocated_bytes = g_stats.allocated_bytes.load(kRelaxed);
  out.deep_copies = g_stats.deep_copies.load(kRelaxed);
  out.copied_bytes = g_stats.copied_bytes.load(kRelaxed);
  out.shares = g_stats.shares.load(kRelaxed);
  return out;
}

void reset_buffer_stats() {
  g_stats.allocations.store(0, kRelaxed);
  g_stats.allocated_bytes.store(0, kRelaxed);
  g_stats.deep_copies.store(0, kRelaxed);
  g_stats.copied_bytes.store(0, kRelaxed);
  g_stats.shares.store(0, kRelaxed);
}

PacketBuffer::PacketBuffer(Bytes b) {
  len_ = b.size();
  head_ = 0;
  storage_ = std::make_shared<Storage>();
  storage_->buf = std::move(b);
  bump(g_stats.allocations);  // adopted, but a distinct storage block
  bump(g_stats.allocated_bytes, len_);
}

PacketBuffer PacketBuffer::copy_of(BytesView src) {
  PacketBuffer b = alloc(src.size());
  if (!src.empty()) {
    std::memcpy(b.storage_->buf.data() + b.head_, src.data(), src.size());
    bump(g_stats.deep_copies);
    bump(g_stats.copied_bytes, src.size());
  }
  return b;
}

PacketBuffer PacketBuffer::alloc(std::size_t len, std::size_t headroom,
                                 std::size_t tailroom) {
  return PacketBuffer(make_storage(headroom + len + tailroom), headroom, len);
}

PacketBuffer::PacketBuffer(const PacketBuffer& other)
    : storage_(other.storage_), head_(other.head_), len_(other.len_) {
  if (storage_) bump(g_stats.shares);
}

PacketBuffer& PacketBuffer::operator=(const PacketBuffer& other) {
  if (this != &other) {
    storage_ = other.storage_;
    head_ = other.head_;
    len_ = other.len_;
    if (storage_) bump(g_stats.shares);
  }
  return *this;
}

std::uint8_t* PacketBuffer::prepend(std::size_t n) {
  if (storage_ && storage_.use_count() == 1 && head_ >= n) {
    head_ -= n;
    len_ += n;
    return storage_->buf.data() + head_;
  }
  // Reallocate: new storage with headroom for further prepends, visible
  // range copied behind the freshly claimed header slot.
  const std::size_t new_head =
      kDefaultHeadroom >= n ? kDefaultHeadroom - n : 0;
  PacketBuffer grown(make_storage(new_head + n + len_ + kDefaultTailroom),
                     new_head, n + len_);
  if (len_ != 0) {
    std::memcpy(grown.storage_->buf.data() + new_head + n, data(), len_);
    bump(g_stats.deep_copies);
    bump(g_stats.copied_bytes, len_);
  }
  *this = std::move(grown);
  return storage_->buf.data() + head_;
}

std::uint8_t* PacketBuffer::append(std::size_t n) {
  if (storage_ && storage_.use_count() == 1 &&
      storage_->buf.size() - head_ - len_ >= n) {
    std::uint8_t* p = storage_->buf.data() + head_ + len_;
    std::memset(p, 0, n);
    len_ += n;
    return p;
  }
  PacketBuffer grown(make_storage(head_ + len_ + n + kDefaultTailroom), head_,
                     len_ + n);
  if (len_ != 0) {
    std::memcpy(grown.storage_->buf.data() + head_, data(), len_);
    bump(g_stats.deep_copies);
    bump(g_stats.copied_bytes, len_);
  }
  std::memset(grown.storage_->buf.data() + head_ + len_, 0, n);
  *this = std::move(grown);
  return storage_->buf.data() + head_ + len_ - n;
}

void PacketBuffer::unshare() {
  if (!storage_ || storage_.use_count() == 1) return;
  PacketBuffer fresh = alloc(len_);
  if (len_ != 0) {
    std::memcpy(fresh.storage_->buf.data() + fresh.head_, data(), len_);
    bump(g_stats.deep_copies);
    bump(g_stats.copied_bytes, len_);
  }
  *this = std::move(fresh);
}

std::ostream& operator<<(std::ostream& os, const PacketBuffer& b) {
  os << "PacketBuffer(" << b.size() << "B)";
  return os;
}

}  // namespace tfo::wire
