// N-way replication by daisy-chaining — the extension the paper names but
// leaves out of scope (§1: "Higher degrees of replication can be achieved
// by daisy-chaining multiple backup servers").
//
// Chain layout for hosts H0 (head, owns the service address) … Hn (tail):
//
//   client ──►  H0  ◄── divert ──  H1  ◄── divert ── … ◄── divert ──  Hn
//              merge              merge                              (tail)
//
// * every non-head host snoops client traffic promiscuously and
//   translates it to itself (§3.1, against the *service* address);
// * the tail diverts its client-bound TCP output to its upstream;
// * every intermediate host merges its own output with the diverted
//   stream from its downstream and diverts the merged result upstream;
// * the head performs the final merge and transmits to the client.
//
// The client is synchronized to the **tail's** sequence space, which
// makes reconfiguration composable: the Δseq bookkeeping at every level
// maps into the same tail space, so any member can die — head, middle or
// tail — and the survivors re-aim their divert/merge targets without any
// sequence rewriting. Head failure additionally runs the §5 IP takeover.
//
// Fail-stop model, like the paper: members never return. Determinism
// requirements are unchanged (all replicas must produce identical
// streams per connection).
#pragma once

#include <memory>
#include <vector>

#include "apps/host.hpp"
#include "core/fault_detector.hpp"
#include "core/failover_config.hpp"
#include "core/primary_bridge.hpp"
#include "core/secondary_bridge.hpp"

namespace tfo::core {

class ReplicaChain {
 public:
  /// `hosts[0]` is the initial head and owner of the service address;
  /// the rest follow in chain order (hosts[n-1] is the tail).
  ReplicaChain(std::vector<apps::Host*> hosts, FailoverConfig cfg);

  /// Starts the heartbeat mesh. Call after the topology is in place.
  void start();

  std::size_t size() const { return members_.size(); }
  std::size_t alive_count() const;
  /// The member currently serving the client (first live member).
  apps::Host* head() const;
  bool is_alive(std::size_t index) const { return members_[index].alive; }

  PrimaryBridge* merge_bridge(std::size_t index) {
    return members_[index].merge.get();
  }
  SecondaryBridge* divert_bridge(std::size_t index) {
    return members_[index].divert.get();
  }

  /// Convenience fault injection: crashes member `index`.
  void crash(std::size_t index);

 private:
  struct Member {
    apps::Host* host = nullptr;
    std::unique_ptr<PrimaryBridge> merge;    // absent on the initial tail
    std::unique_ptr<SecondaryBridge> divert; // absent on the initial head
    std::unique_ptr<HeartbeatMesh> mesh;
    bool alive = true;
  };

  void on_member_failed(std::size_t observer, std::size_t dead);
  void reconfigure(std::size_t member_index);
  std::size_t prev_alive(std::size_t index) const;  // size() if none
  std::size_t next_alive(std::size_t index) const;  // size() if none

  std::vector<Member> members_;
  FailoverConfig cfg_;
  ip::Ipv4 service_addr_;
};

}  // namespace tfo::core
