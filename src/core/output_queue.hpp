// The primary/secondary server output queues of §3.2/§3.4.
//
// A queue holds reply-stream payload bytes keyed by *stream offset* (the
// 64-bit unwrapped position in the server→client byte stream; offset 0 is
// the SYN, data starts at 1). The primary bridge keeps one queue for bytes
// produced by the primary's TCP layer and one for bytes diverted from the
// secondary, and sends to the client only byte runs present in both
// (Figure 2 of the paper).
//
// Because the replicas are required to be deterministic, bytes inserted at
// overlapping offsets must agree; a mismatch is surfaced as replica
// divergence rather than silently corrupting the stream.
//
// Storage is zero-copy: each run is a wire::PacketBuffer slice sharing the
// storage of the frame the bytes arrived in — insertion retains references,
// never deep copies. Runs are non-overlapping but may abut; contiguity
// queries walk adjacent runs, and single-run extraction returns a slice of
// the retained buffer without touching bytes.
#pragma once

#include <cstdint>
#include <map>

#include "common/bytes.hpp"
#include "obs/metrics.hpp"
#include "wire/packet_buffer.hpp"

namespace tfo::core {

class OutputQueue {
 public:
  OutputQueue() = default;
  ~OutputQueue() {
    // Retire this queue's contribution from the shared gauges.
    if (gauge_bytes_) gauge_bytes_->add(-published_bytes_);
    if (gauge_depth_) gauge_depth_->add(-published_depth_);
  }
  // Bound gauges account this queue's contribution by delta; copying
  // would double-count it.
  OutputQueue(const OutputQueue&) = delete;
  OutputQueue& operator=(const OutputQueue&) = delete;

  /// Publishes this queue's buffered bytes and run count (depth) into
  /// host-wide gauges by delta, so several queues can share one gauge
  /// (the bridge aggregates across connections). Either may be null.
  /// The destructor retires the queue's remaining contribution.
  void bind_gauges(obs::Gauge* bytes, obs::Gauge* depth) {
    gauge_bytes_ = bytes;
    gauge_depth_ = depth;
    publish_gauges();
  }

  /// Inserts `data` at `offset`. Bytes not already present are retained
  /// as slices sharing `data`'s storage (no copy). Returns false (and
  /// leaves the queue unchanged) when an overlapping byte disagrees with
  /// previously inserted content — replica divergence.
  [[nodiscard]] bool insert(std::uint64_t offset,
                            const wire::PacketBuffer& data);
  /// Copying fallback for callers holding loose bytes (tests, probes).
  [[nodiscard]] bool insert(std::uint64_t offset, BytesView data) {
    return insert(offset, wire::PacketBuffer::copy_of(data));
  }
  /// Disambiguator: a Bytes argument converts equally well to BytesView
  /// and PacketBuffer.
  [[nodiscard]] bool insert(std::uint64_t offset, const Bytes& data) {
    return insert(offset, wire::PacketBuffer(data));
  }

  /// Number of contiguous bytes available starting exactly at `offset`
  /// (spans abutting runs).
  std::size_t contiguous_at(std::uint64_t offset) const;

  /// Removes and returns exactly `n` bytes starting at `offset`
  /// (requires contiguous_at(offset) >= n). When the span lies within a
  /// single retained run this is zero-copy — the result is a slice of
  /// the run's storage; spans crossing run boundaries gather into a
  /// fresh buffer.
  wire::PacketBuffer extract(std::uint64_t offset, std::size_t n);

  /// Drops all bytes below `offset` (already sent to the client). Pure
  /// offset trims — never copies.
  void drop_below(std::uint64_t offset);

  bool empty() const { return runs_.empty(); }
  std::size_t total_bytes() const { return total_; }
  /// Lowest offset present (queue must not be empty).
  std::uint64_t min_offset() const { return runs_.begin()->first; }
  /// One past the highest offset present (queue must not be empty).
  std::uint64_t max_end() const;

  void clear() {
    runs_.clear();
    total_ = 0;
    publish_gauges();
  }

 private:
  void publish_gauges() {
    if (gauge_bytes_) {
      gauge_bytes_->add(static_cast<std::int64_t>(total_) - published_bytes_);
      published_bytes_ = static_cast<std::int64_t>(total_);
    }
    if (gauge_depth_) {
      gauge_depth_->add(static_cast<std::int64_t>(runs_.size()) - published_depth_);
      published_depth_ = static_cast<std::int64_t>(runs_.size());
    }
  }

  // Non-overlapping (possibly abutting) runs: offset -> buffer slice.
  std::map<std::uint64_t, wire::PacketBuffer> runs_;
  std::size_t total_ = 0;
  obs::Gauge* gauge_bytes_ = nullptr;
  obs::Gauge* gauge_depth_ = nullptr;
  std::int64_t published_bytes_ = 0, published_depth_ = 0;
};

}  // namespace tfo::core
