// The primary/secondary server output queues of §3.2/§3.4.
//
// A queue holds reply-stream payload bytes keyed by *stream offset* (the
// 64-bit unwrapped position in the server→client byte stream; offset 0 is
// the SYN, data starts at 1). The primary bridge keeps one queue for bytes
// produced by the primary's TCP layer and one for bytes diverted from the
// secondary, and sends to the client only byte runs present in both
// (Figure 2 of the paper).
//
// Because the replicas are required to be deterministic, bytes inserted at
// overlapping offsets must agree; a mismatch is surfaced as replica
// divergence rather than silently corrupting the stream.
#pragma once

#include <cstdint>
#include <map>

#include "common/bytes.hpp"

namespace tfo::core {

class OutputQueue {
 public:
  /// Inserts `data` at `offset`, merging with adjacent/overlapping runs.
  /// Returns false (and leaves the queue unchanged) when an overlapping
  /// byte disagrees with previously inserted content — replica divergence.
  [[nodiscard]] bool insert(std::uint64_t offset, BytesView data);

  /// Number of contiguous bytes available starting exactly at `offset`.
  std::size_t contiguous_at(std::uint64_t offset) const;

  /// Removes and returns exactly `n` bytes starting at `offset`
  /// (requires contiguous_at(offset) >= n).
  Bytes extract(std::uint64_t offset, std::size_t n);

  /// Drops all bytes below `offset` (already sent to the client).
  void drop_below(std::uint64_t offset);

  bool empty() const { return runs_.empty(); }
  std::size_t total_bytes() const { return total_; }
  /// Lowest offset present (queue must not be empty).
  std::uint64_t min_offset() const { return runs_.begin()->first; }
  /// One past the highest offset present (queue must not be empty).
  std::uint64_t max_end() const;

  void clear() {
    runs_.clear();
    total_ = 0;
  }

 private:
  // Non-overlapping, non-adjacent runs: offset -> bytes.
  std::map<std::uint64_t, Bytes> runs_;
  std::size_t total_ = 0;
};

}  // namespace tfo::core
