#include "core/primary_bridge.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace tfo::core {

using tcp::ConnKey;
using tcp::Flags;
using tcp::TapVerdict;
using tcp::TcpSegment;

PrimaryBridge::PrimaryBridge(apps::Host& host, FailoverConfig cfg)
    : host_(host), cfg_(std::move(cfg)), sweep_timer_(host.simulator()) {
  tombstone_ttl_ = 4 * host_.tcp().params().msl;
  // Mirror the TCP layer's lane layout so a lane's segments touch only
  // their own bridge shard.
  const unsigned lanes = host_.tcp().params().lanes;
  conns_.set_shard_count(lanes == 0 ? 1 : lanes);
  auto& reg = host_.obs().registry;
  ctr_merged_ = &reg.counter("bridge.merged_segments");
  ctr_stray_fin_acks_ = &reg.counter("bridge.stray_fin_acks");
  ctr_stray_fin_suppressed_ = &reg.counter("bridge.stray_fin_suppressed");
  ctr_divergences_ = &reg.counter("bridge.divergences");
  ctr_embryonic_reaped_ = &reg.counter("bridge.embryonic_reaped");
  ctr_spoof_dropped_ = &reg.counter("bridge.spoof_dropped");
  gau_connections_ = &reg.gauge("bridge.connections");
  gau_tombstones_ = &reg.gauge("bridge.tombstones");
  out_tap_ = host_.tcp().add_outbound_tap(
      [this](TcpSegment& seg, ip::Ipv4& src, ip::Ipv4& dst) {
        return outbound_tap(seg, src, dst);
      });
  in_tap_ = host_.tcp().add_inbound_tap(
      [this](TcpSegment& seg, ip::Ipv4& src, ip::Ipv4& dst, const ip::RxMeta& meta) {
        return inbound_tap(seg, src, dst, meta);
      });
}

PrimaryBridge::~PrimaryBridge() {
  alive_.reset();
  host_.tcp().remove_tap(out_tap_);
  host_.tcp().remove_tap(in_tap_);
}

BridgeConn* PrimaryBridge::find(const ConnKey& key) {
  auto* v = conns_.find_value(key);
  return v == nullptr ? nullptr : v->get();
}

std::uint64_t PrimaryBridge::merged_segments_sent() const {
  return host_.obs().registry.counter_value("bridge.merged_segments");
}
std::uint64_t PrimaryBridge::retransmissions_forwarded() const {
  return host_.obs().registry.counter_value("bridge.retransmissions_forwarded");
}
std::uint64_t PrimaryBridge::stray_fin_acks() const {
  return host_.obs().registry.counter_value("bridge.stray_fin_acks");
}
std::uint64_t PrimaryBridge::divergences() const {
  return host_.obs().registry.counter_value("bridge.divergences");
}

void PrimaryBridge::note_event(obs::EventKind kind, const ConnKey& key,
                               std::string detail) {
  host_.obs().timeline.record(host_.simulator().now(), kind, key.str(),
                              std::move(detail));
}

void PrimaryBridge::publish_gauges() {
  gau_connections_->set(static_cast<std::int64_t>(conns_.size()));
  gau_tombstones_->set(static_cast<std::int64_t>(tombstones_.size()));
}

void PrimaryBridge::exclude_existing_connections() {
  host_.tcp().for_each_connection(
      [this](const tcp::Connection& conn) { excluded_.insert(conn.key()); });
  TFO_LOG(kInfo, "bridge") << "primary bridge: " << excluded_.size()
                           << " pre-existing connections exempt from bridging";
}

bool PrimaryBridge::is_failover(const ConnKey& key) const {
  if (excluded_.contains(key)) return false;
  if (conns_.contains(key)) return true;
  // §7 method 2: configured port set. The server-side port is the local
  // port of the connection as seen from this (server) host.
  if (cfg_.is_failover_port(key.local_port)) return true;
  // §7 method 1: per-socket option on an existing connection or listener.
  if (auto conn = host_.tcp().find(key); conn && conn->failover_flagged()) return true;
  if (host_.tcp().listener_is_failover(key.local_port)) return true;
  return false;
}

BridgeConn& PrimaryBridge::conn_for(const ConnKey& key) {
  auto r = conns_.try_emplace(key);
  if (r.second) {
    *r.first = std::make_unique<BridgeConn>(*this, key, cfg_.secondary_addr);
    (*r.first)->attach_obs(&host_.obs(), &host_.simulator());
    if (secondary_failed_) (*r.first)->on_secondary_failed();
    // Watch the handshake: if it never completes (SYN dropped in a
    // backlog overflow, client gone), the sweep reaps this entry — a SYN
    // burst must not grow the bridge table without bound.
    const SimTime deadline =
        host_.simulator().now() + static_cast<SimTime>(tombstone_ttl_);
    embryonic_.insert_or_assign(key, deadline);
    arm_tombstone_sweep(deadline);
    publish_gauges();
    note_event(obs::EventKind::kConnCreated, key);
    TFO_LOG(kDebug, "bridge") << "primary bridge: new connection " << key.str();
  }
  return **r.first;
}

// ------------------------------------------------------------------ taps

TapVerdict PrimaryBridge::outbound_tap(TcpSegment& seg, ip::Ipv4& src, ip::Ipv4& dst) {
  const ConnKey key{src, seg.src_port, dst, seg.dst_port};
  if (dst == cfg_.secondary_addr) return TapVerdict::kContinue;
  if (tombstoned(key)) {
    // Late retransmission from our own TCP layer after bridge teardown —
    // it must not leak out with untranslated sequence numbers.
    return TapVerdict::kDrop;
  }
  if (!is_failover(key)) return TapVerdict::kContinue;
  conn_for(key).on_primary_segment(seg);
  return TapVerdict::kConsume;
}

TapVerdict PrimaryBridge::inbound_tap(TcpSegment& seg, ip::Ipv4& src, ip::Ipv4& dst,
                                      const ip::RxMeta& meta) {
  (void)meta;
  if (seg.orig_dst.has_value()) {
    // Diverted traffic from the secondary (§3.1): never reaches our TCP.
    const ConnKey key{dst, seg.src_port, *seg.orig_dst, seg.dst_port};
    if (secondary_failed_) return TapVerdict::kDrop;  // §6 step 2
    if (auto* conn = find(key)) {
      if (!conn->secondary_seq_plausible(seg)) {
        // A forged orig-dst segment would otherwise feed the merge queues
        // and manufacture a "divergence" teardown. Genuine secondary
        // segments always sit near the merge point.
        ctr_spoof_dropped_->inc();
        TFO_LOG(kDebug, "bridge")
            << "implausible diverted segment dropped " << seg.summary();
        return TapVerdict::kDrop;
      }
      conn->on_secondary_segment(seg);
    } else if (tombstoned(key) && seg.fin()) {
      // §8: "When the bridge receives a FIN that S sent after the bridge
      // removed all internal data structures ... it creates an ACK and
      // sends it back to S."
      ack_stray_fin_from_secondary(seg);
    } else if (seg.syn()) {
      conn_for(key).on_secondary_segment(seg);
    } else {
      TFO_LOG(kDebug, "bridge")
          << "dropping secondary segment for unknown connection " << key.str();
    }
    return TapVerdict::kConsume;
  }

  // Segment from the remote endpoint (client, or server T for §7.2).
  const ConnKey key{dst, seg.dst_port, src, seg.src_port};
  if (auto* conn = find(key)) {
    if (seg.rst()) {
      // A reset tombstones the bridge connection, so it may mutate bridge
      // state only when provably genuine: sequence number exactly at our
      // TCP's RCV.NXT (the same test RFC 5961 §3.2 applies for teardown).
      // Anything else is left to the TCP layer, which challenges or drops
      // it — a genuine peer answers the challenge with an exact RST that
      // passes here on the second round.
      const auto tc = host_.tcp().find(key);
      if (!tc || seg.seq != tc->rcv_nxt_abs()) {
        ctr_spoof_dropped_->inc();
        return TapVerdict::kContinue;
      }
    } else if (!conn->remote_seq_plausible(seg)) {
      // Blind injection: do not let it advance unwrap state, the merged
      // ACK, or the FIN bookkeeping. Forwarded untranslated, the TCP
      // layer's own RFC 5961 window checks dispose of it.
      ctr_spoof_dropped_->inc();
      return TapVerdict::kContinue;
    }
    conn->on_remote_segment(seg);
    return TapVerdict::kContinue;
  }
  if (tombstoned(key)) {
    if (seg.fin()) {
      // §8: ACK a client FIN retransmitted after teardown, and keep it
      // away from the TCP layer (which would answer with a RST).
      ack_stray_fin_from_remote(seg, src, dst);
    }
    return TapVerdict::kDrop;
  }
  if (!secondary_failed_ && seg.syn() && !seg.has_ack() && is_failover(key)) {
    conn_for(key).on_remote_segment(seg);
  }
  return TapVerdict::kContinue;
}

// ------------------------------------------------------------------ sink

void PrimaryBridge::emit(const TcpSegment& seg, ip::Ipv4 src, ip::Ipv4 dst) {
  ctr_merged_->inc();
  if (upstream_) {
    // Chain-intermediate role: the merged stream is itself diverted to
    // the next replica up, which merges it with its own TCP's output.
    TcpSegment diverted = seg;
    diverted.orig_dst = dst;
    host_.tcp().send_segment_raw(diverted, host_.address(), *upstream_);
    return;
  }
  host_.tcp().send_segment_raw(seg, src, dst);
}

void PrimaryBridge::rekey_local(ip::Ipv4 from, ip::Ipv4 to) {
  // Collect-sort-then-move: shard/slot iteration order depends on the
  // lane count, so the move order is pinned to the key's total order —
  // identical for every sharding (cross-shard handoffs included).
  std::vector<std::pair<ConnKey, std::unique_ptr<BridgeConn>>> moved;
  conns_.for_each([&](const ConnKey& key, std::unique_ptr<BridgeConn>& conn) {
    if (key.local_ip == from) moved.emplace_back(key, std::move(conn));
  });
  std::sort(moved.begin(), moved.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [key, conn] : moved) conns_.erase(key);
  for (auto& [old_key, conn] : moved) {
    conn->rebind_local(to);
    const ConnKey key = conn->key();
    conns_.insert_or_assign(key, std::move(conn));
  }
}

void PrimaryBridge::divergence(const ConnKey& key) {
  ctr_divergences_->inc();
  note_event(obs::EventKind::kDivergence, key);
  TFO_LOG(kError, "bridge") << "replica divergence on " << key.str()
                            << " — resetting connection";
  // The stream can no longer be kept consistent: reset the remote and our
  // own TCP endpoint, then tombstone. The RST must carry the connection's
  // client-facing SND.NXT (in the secondary's sequence space, which the
  // client is synchronized to) — a conforming receiver silently discards
  // out-of-window resets, so a seq=0 placeholder would leave the client
  // hanging until its own timeout.
  TcpSegment rst;
  rst.src_port = key.local_port;
  rst.dst_port = key.remote_port;
  rst.flags = Flags::kRst;
  if (const BridgeConn* bc = find(key)) {
    rst.seq = bc->remote_facing_seq();
    if (auto ack = bc->remote_facing_ack()) {
      rst.flags |= Flags::kAck;
      rst.ack = *ack;
    }
  }
  host_.tcp().send_segment_raw(rst, key.local_ip, key.remote_ip);
  if (auto conn = host_.tcp().find(key)) conn->abort();
  schedule_removal(key);
}

void PrimaryBridge::fully_closed(const ConnKey& key) {
  TFO_LOG(kDebug, "bridge") << "primary bridge: connection fully closed " << key.str();
  note_event(obs::EventKind::kConnClosed, key);
  schedule_removal(key);
}

void PrimaryBridge::schedule_removal(const ConnKey& key) {
  const SimTime expiry =
      host_.simulator().now() + static_cast<SimTime>(tombstone_ttl_);
  tombstones_.insert_or_assign(key, expiry);
  note_event(obs::EventKind::kTombstoneCreated, key,
             "ttl_ns=" + std::to_string(tombstone_ttl_));
  publish_gauges();
  arm_tombstone_sweep(expiry);
  // Deferred erase: we may be inside this connection's own event handler.
  // Removals arriving in the same instant share one event (a mass-close
  // storm would otherwise schedule one per connection). The sentinel
  // keeps the event inert if the bridge is replaced meanwhile.
  pending_removals_.push_back(key);
  if (!removal_scheduled_) {
    removal_scheduled_ = true;
    host_.simulator().schedule_after(0, [this, w = std::weak_ptr<bool>(alive_)] {
      if (w.expired()) return;
      removal_scheduled_ = false;
      for (const ConnKey& k : pending_removals_) conns_.erase(k);
      pending_removals_.clear();
      publish_gauges();
    });
  }
}

void PrimaryBridge::arm_tombstone_sweep(SimTime deadline) {
  // One timer tracks the earliest pending expiry; sweeping re-arms it for
  // the next. Entries all share one TTL, so a later insert never needs to
  // pull the deadline earlier.
  if (sweep_timer_.armed() && sweep_timer_.deadline() <= deadline) return;
  sweep_timer_.start(static_cast<SimDuration>(deadline - host_.simulator().now()),
                     [this] { sweep_tombstones(); });
}

void PrimaryBridge::sweep_tombstones() {
  const SimTime now = host_.simulator().now();
  std::vector<ConnKey> expired;
  SimTime next = 0;
  tombstones_.for_each([&](const ConnKey& key, SimTime deadline) {
    if (deadline <= now) {
      expired.push_back(key);
    } else if (next == 0 || deadline < next) {
      next = deadline;
    }
  });
  for (const ConnKey& key : expired) {
    note_event(obs::EventKind::kTombstoneExpired, key);
    tombstones_.erase(key);
  }
  // Handshake watch: entries past their deadline leave the watch list;
  // those whose BridgeConn never completed the handshake take the
  // stillborn connection state with them.
  std::vector<ConnKey> watch_done;
  embryonic_.for_each([&](const ConnKey& key, SimTime deadline) {
    if (deadline <= now) {
      watch_done.push_back(key);
    } else if (next == 0 || deadline < next) {
      next = deadline;
    }
  });
  for (const ConnKey& key : watch_done) {
    embryonic_.erase(key);
    auto* v = conns_.find_value(key);
    if (v != nullptr && !(*v)->handshake_done()) {
      conns_.erase(key);
      ctr_embryonic_reaped_->inc();
      TFO_LOG(kDebug, "bridge")
          << "primary bridge: reaped embryonic connection " << key.str();
    }
  }
  publish_gauges();
  if (next != 0) arm_tombstone_sweep(next);
}

bool PrimaryBridge::tombstoned(const ConnKey& key) const {
  return tombstones_.contains(key);
}

// §8 stray-FIN replies. The reply ACK is unsolicited, so its sequence
// number must sit inside the FIN sender's receive window or a conforming
// peer discards it. The only in-window value the bridge can reconstruct
// after teardown is the stray FIN's own ACK field (the sender's RCV.NXT).
// A FIN carrying no ACK flag gives us nothing to anchor on — fabricating
// seq=0 would be discarded (or worse, misinterpreted) — so the reply is
// suppressed and the sender's own retransmission timer tries again with,
// eventually, an ACK-bearing FIN.

void PrimaryBridge::ack_stray_fin_from_remote(const TcpSegment& seg, ip::Ipv4 remote,
                                              ip::Ipv4 local) {
  const ConnKey key{local, seg.dst_port, remote, seg.src_port};
  if (!seg.has_ack()) {
    ctr_stray_fin_suppressed_->inc();
    note_event(obs::EventKind::kStrayFinSuppressed, key, "from=remote");
    TFO_LOG(kDebug, "bridge") << "stray FIN without ACK from remote — no reply";
    return;
  }
  ctr_stray_fin_acks_->inc();
  note_event(obs::EventKind::kStrayFinAcked, key, "from=remote");
  TcpSegment ack;
  ack.src_port = seg.dst_port;
  ack.dst_port = seg.src_port;
  ack.flags = Flags::kAck;
  ack.seq = seg.ack;
  ack.ack = seq_add(seg.seq, seg.seg_len());
  // Reply from the address the remote addressed (the service address —
  // not necessarily this host's interface address after a promotion).
  host_.tcp().send_segment_raw(ack, local, remote);
}

void PrimaryBridge::ack_stray_fin_from_secondary(const TcpSegment& seg) {
  const ConnKey key{*seg.orig_dst, seg.dst_port, cfg_.secondary_addr, seg.src_port};
  if (!seg.has_ack()) {
    ctr_stray_fin_suppressed_->inc();
    note_event(obs::EventKind::kStrayFinSuppressed, key, "from=secondary");
    TFO_LOG(kDebug, "bridge") << "stray FIN without ACK from secondary — no reply";
    return;
  }
  ctr_stray_fin_acks_->inc();
  note_event(obs::EventKind::kStrayFinAcked, key, "from=secondary");
  // The reply must look like it came from the client so the secondary's
  // TCP layer matches it to its connection (keyed remote = client).
  TcpSegment ack;
  ack.src_port = seg.dst_port;  // client port
  ack.dst_port = seg.src_port;  // server port
  ack.flags = Flags::kAck;
  ack.seq = seg.ack;
  ack.ack = seq_add(seg.seq, seg.seg_len());
  host_.tcp().send_segment_raw(ack, *seg.orig_dst, cfg_.secondary_addr);
}

void PrimaryBridge::on_secondary_failed() {
  if (secondary_failed_) return;
  secondary_failed_ = true;
  TFO_LOG(kInfo, "bridge") << "primary bridge: secondary failed, entering solo mode";
  host_.obs().timeline.record(host_.simulator().now(),
                              obs::EventKind::kSecondaryFailed, {},
                              "conns=" + std::to_string(conns_.size()));
  // Sort by key: the solo-mode flush emits segments, and the emission
  // order must not depend on how the table is sharded across lanes.
  std::vector<BridgeConn*> flushing;
  conns_.for_each([&](const ConnKey&, std::unique_ptr<BridgeConn>& conn) {
    flushing.push_back(conn.get());
  });
  std::sort(flushing.begin(), flushing.end(),
            [](const BridgeConn* a, const BridgeConn* b) {
              return a->key() < b->key();
            });
  for (BridgeConn* conn : flushing) conn->on_secondary_failed();
}

}  // namespace tfo::core
