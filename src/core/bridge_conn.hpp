// Per-connection merge state at the primary server bridge (§3 of the
// paper): the primary and secondary output queues, sequence-number
// synchronization, ACK/window minimum selection, and the connection
// establishment/termination bookkeeping of §7/§8.
//
// Sequence spaces. The client is synchronized to the *secondary's*
// sequence numbers (§3.3): the bridge subtracts Δseq = iss_P − iss_S from
// everything the primary's TCP layer emits, and adds it to the ACK field
// of everything the client sends before the primary's TCP layer sees it.
// Internally we express this with 64-bit unwrapped stream offsets —
// offset 0 is the server SYN in either space, so a byte at offset k of
// P's stream and a byte at offset k of S's stream are replicas of the
// same application byte, and wire sequence numbers are recovered as
// iss_X + k. The arithmetic is identical to the paper's Δseq form but
// immune to 32-bit wraparound bookkeeping errors.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/seq32.hpp"
#include "core/output_queue.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"
#include "tcp/conn_key.hpp"
#include "tcp/segment.hpp"

namespace tfo::core {

/// How the primary bridge disposes of a client-bound segment or event.
class BridgeConn;

/// Emission/teardown interface the owning bridge provides to connections.
class BridgeConnSink {
 public:
  virtual ~BridgeConnSink() = default;
  /// Sends a finished segment to the wire, bypassing the bridge's own
  /// taps. `src`/`dst` are IP endpoints.
  virtual void emit(const tcp::TcpSegment& seg, ip::Ipv4 src, ip::Ipv4 dst) = 0;
  /// Replica divergence detected: the connection cannot be kept.
  virtual void divergence(const tcp::ConnKey& key) = 0;
  /// The connection is fully closed; the bridge may tombstone it.
  virtual void fully_closed(const tcp::ConnKey& key) = 0;
};

class BridgeConn {
 public:
  /// `key` is the client's view: local = a_p (primary), remote = client.
  BridgeConn(BridgeConnSink& sink, tcp::ConnKey key, ip::Ipv4 secondary_addr);

  // ------------------------------------------------------------- events
  /// Inbound segment from the remote endpoint (the unreplicated client,
  /// or server T for §7.2 connections). Mutates the ACK field into the
  /// primary's sequence space; the caller then forwards it to the
  /// primary's TCP layer.
  void on_remote_segment(tcp::TcpSegment& seg);

  /// Outbound segment from the primary's TCP layer (consumed: the bridge
  /// decides what actually reaches the wire).
  void on_primary_segment(const tcp::TcpSegment& seg);

  /// Diverted segment from the secondary (carried the orig-dst option).
  void on_secondary_segment(const tcp::TcpSegment& seg);

  /// §6: the secondary failed. Flushes the primary output queue and
  /// switches to solo mode (no delaying/merging, but the Δseq adjustment
  /// continues for the connection's lifetime).
  void on_secondary_failed();

  /// Rebinds the local (server-side) address of the connection key —
  /// used when the owning host is promoted to head of a replica chain
  /// and takes over the service address.
  void rebind_local(ip::Ipv4 addr) { key_.local_ip = addr; }

  /// Attaches this connection to a host observability hub (counters,
  /// queue gauges, timeline events). `sim` supplies event timestamps.
  /// Bare connections (unit tests) simply skip instrumentation.
  void attach_obs(obs::Hub* hub, sim::Simulator* sim);

  // ---- bridge-constructed control segments (§8 teardown, divergence).
  /// Wire sequence number an unsolicited bridge-constructed segment
  /// (RST, pure ACK) must carry to land inside the remote's receive
  /// window: the connection's client-facing SND.NXT — `next_to_client_`
  /// translated into the secondary's sequence space, which the remote is
  /// synchronized to (§3.3). RFC 793 peers discard out-of-window
  /// segments silently, so `seq = 0` placeholders are never acceptable.
  tfo::Seq32 remote_facing_seq() const;
  /// Matching ACK value (the merged cumulative ACK translated into the
  /// remote's own sequence space); nullopt before the remote ISN is
  /// known, in which case the caller must omit the ACK flag.
  std::optional<tfo::Seq32> remote_facing_ack() const;

  /// Off-path hardening: true when `seg`'s sequence number is plausible
  /// for this connection's remote endpoint — a handshake SYN restating the
  /// known ISN (or fixing it, before it is known), or a sequence number
  /// within one window's slack of the merged cumulative ACK. The owning
  /// bridge consults this before letting a snooped segment mutate replica
  /// state (bridge.spoof_dropped); a blind injector that cannot guess the
  /// remote's sequence space fails it.
  bool remote_seq_plausible(const tcp::TcpSegment& seg) const;

  /// Same test for diverted segments claiming to come from the secondary:
  /// their sequence numbers live in the secondary's server→client stream,
  /// so a genuine one sits near the merge point (`next_to_client_`). A
  /// forged orig-dst segment that fails this must not reach the merge
  /// queues, where it would manufacture a spurious divergence teardown.
  bool secondary_seq_plausible(const tcp::TcpSegment& seg) const;

  // -------------------------------------------------------------- state
  bool solo() const { return solo_; }
  bool dead() const { return dead_; }
  const tcp::ConnKey& key() const { return key_; }
  std::size_t primary_queue_bytes() const { return p_queue_.total_bytes(); }
  std::size_t secondary_queue_bytes() const { return s_queue_.total_bytes(); }
  std::uint64_t merged_bytes_sent() const { return next_to_client_ <= 1 ? 0 : next_to_client_ - 1; }
  bool handshake_done() const { return syn_sent_to_remote_; }

 private:
  void try_send_syn();
  void pump();
  void emit_payload(std::uint64_t offset, wire::PacketBuffer payload, bool fin);
  void emit_empty_ack_if_progress();
  void emit_retransmission(std::uint64_t offset,
                           const wire::PacketBuffer& payload, bool fin);
  void note_server_ack(std::uint64_t& slot, const tcp::TcpSegment& seg);
  void check_fully_closed();
  // "The acknowledgment field contains ... whichever is smaller" (§3.2);
  // after the secondary fails the primary's own values are used (§6).
  std::uint64_t min_ack() const { return solo_ ? ack_p_ : std::min(ack_p_, ack_s_); }
  std::uint16_t min_win() const { return solo_ ? win_p_ : std::min(win_p_, win_s_); }
  tcp::TcpSegment base_segment_to_remote() const;

  BridgeConnSink& sink_;
  tcp::ConnKey key_;           // local = a_p, remote = client/T
  ip::Ipv4 secondary_addr_;

  // Handshake (§7.1 / §7.2).
  bool have_p_syn_ = false;
  bool have_s_syn_ = false;
  bool syn_sent_to_remote_ = false;
  bool server_initiated_ = false;  // our SYNs carry no ACK (§7.2)
  bool remote_isn_known_ = false;
  tfo::Seq32 iss_p_ = 0, iss_s_ = 0, irs_ = 0;
  std::uint16_t mss_p_ = 0, mss_s_ = 0;
  std::uint16_t syn_win_p_ = 0, syn_win_s_ = 0;

  // Server→remote stream state (offsets relative to the server ISNs).
  SeqUnwrapper unwrap_p_, unwrap_s_, unwrap_c_;
  std::uint64_t next_to_client_ = 1;  // next stream offset to put on the wire
  OutputQueue p_queue_, s_queue_;
  std::optional<std::uint64_t> fin_p_, fin_s_;
  bool fin_sent_to_remote_ = false;

  // ACK/window merge state (§3.2): offsets into the *remote's* stream.
  std::uint64_t ack_p_ = 0, ack_s_ = 0;
  std::uint16_t win_p_ = 0, win_s_ = 0;
  std::uint64_t last_ack_to_remote_ = 0;
  std::uint16_t last_win_to_remote_ = 0;

  // Termination bookkeeping (§8).
  std::optional<std::uint64_t> remote_fin_offset_;  // offset in remote stream
  bool remote_acked_our_fin_ = false;

  bool solo_ = false;  // §6 mode after secondary failure
  bool dead_ = false;

  // Observability (null when unattached). Counter/histogram handles are
  // resolved once in attach_obs; the timeline caches the key string.
  void note_event(obs::EventKind kind, std::string detail = {});
  obs::Hub* obs_ = nullptr;
  sim::Simulator* obs_sim_ = nullptr;
  std::string key_str_;
  obs::Counter* ctr_retransmits_ = nullptr;
  obs::Counter* ctr_empty_acks_ = nullptr;
  obs::Histogram* hist_merged_bytes_ = nullptr;
};

}  // namespace tfo::core
