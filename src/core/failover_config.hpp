// Configuration shared by the primary and secondary bridges.
//
// §7 of the paper offers two ways to mark a connection as a TCP failover
// connection: a per-socket option (tcp::SocketOptions::failover) and a
// configured set of port numbers. Both are supported; the port set must be
// identical on the primary and the secondary hosts, as the paper requires.
#pragma once

#include <cstdint>
#include <set>

#include "common/time.hpp"
#include "ip/addr.hpp"

namespace tfo::core {

struct FailoverConfig {
  /// §7 method 2: any connection using one of these ports (on the server
  /// side of the connection) is a failover connection.
  std::set<std::uint16_t> ports;

  /// Addresses of the replica pair.
  ip::Ipv4 primary_addr;
  ip::Ipv4 secondary_addr;

  /// Fault-detector heartbeat period and declaration timeout.
  SimDuration heartbeat_period = milliseconds(10);
  SimDuration failure_timeout = milliseconds(50);

  /// Shared key for the heartbeat nonce chain (core/fault_detector.hpp):
  /// both replicas must hold the same value, and an off-path attacker must
  /// not — a forged or replayed heartbeat then fails verification
  /// (fault.hb_auth_failed) instead of masking a dead peer or suppressing
  /// takeover.
  std::uint64_t hb_auth_seed = 0x4842'6175'7468'2e31ull;

  /// Pause between starting the §5 takeover and resuming transmission
  /// (models the reconfiguration steps taking nonzero time).
  SimDuration takeover_pause = 0;

  /// The gratuitous ARP of §5 step 5 is a single unacknowledged broadcast;
  /// on a lossy medium it is repeated so the client/router tables are
  /// updated with overwhelming probability.
  int gratuitous_arp_repeats = 4;
  SimDuration gratuitous_arp_interval = milliseconds(50);

  bool is_failover_port(std::uint16_t port) const { return ports.contains(port); }
};

}  // namespace tfo::core
