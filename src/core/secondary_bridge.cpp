#include "core/secondary_bridge.hpp"

#include "common/logging.hpp"
#include "tcp/segment.hpp"

namespace tfo::core {

using ip::HookVerdict;
using tcp::TapVerdict;
using tcp::TcpSegment;

SecondaryBridge::SecondaryBridge(apps::Host& host, FailoverConfig cfg)
    : host_(host), cfg_(std::move(cfg)), divert_to_(cfg_.primary_addr) {
  auto& reg = host_.obs().registry;
  ctr_translated_ = &reg.counter("secondary.datagrams_translated");
  ctr_diverted_ = &reg.counter("secondary.segments_diverted");
  ctr_snooped_dropped_ = &reg.counter("secondary.snooped_dropped");
  ctr_spoof_dropped_ = &reg.counter("bridge.spoof_dropped");
  host_.nic().set_promiscuous(true);
  ip_hook_ = host_.ip().add_inbound_hook(
      [this](ip::IpDatagram& d, const ip::RxMeta& m) { return ip_inbound(d, m); });
  out_tap_ = host_.tcp().add_outbound_tap(
      [this](TcpSegment& seg, ip::Ipv4& src, ip::Ipv4& dst) {
        return tcp_outbound(seg, src, dst);
      });
}

SecondaryBridge::~SecondaryBridge() {
  alive_.reset();
  host_.ip().remove_hook(ip_hook_);
  host_.tcp().remove_tap(out_tap_);
}

std::uint64_t SecondaryBridge::datagrams_translated() const {
  return host_.obs().registry.counter_value("secondary.datagrams_translated");
}
std::uint64_t SecondaryBridge::segments_diverted() const {
  return host_.obs().registry.counter_value("secondary.segments_diverted");
}
std::uint64_t SecondaryBridge::snooped_dropped() const {
  return host_.obs().registry.counter_value("secondary.snooped_dropped");
}

bool SecondaryBridge::failover_traffic_inbound(std::uint16_t src_port,
                                               std::uint16_t dst_port) const {
  // Client→server traffic: the server-side port is the destination.
  (void)src_port;
  return cfg_.is_failover_port(dst_port) || host_.tcp().listener_is_failover(dst_port);
}

HookVerdict SecondaryBridge::ip_inbound(ip::IpDatagram& dgram, const ip::RxMeta& meta) {
  if (taken_over_) return HookVerdict::kContinue;  // §5 step 3: disabled
  if (dgram.dst == host_.address()) return HookVerdict::kContinue;

  if (!meta.to_our_mac) {
    // Promiscuously captured. §3.1: "The secondary server bridge discards
    // all datagrams that do not contain a TCP segment or that are not
    // addressed to P."
    if (dgram.proto != ip::Proto::kTcp || dgram.dst != cfg_.primary_addr ||
        dgram.payload.size() < 20) {
      ctr_snooped_dropped_->inc();
      return HookVerdict::kDrop;
    }
    const std::uint16_t src_port = get_u16(dgram.payload, 0);
    const std::uint16_t dst_port = get_u16(dgram.payload, 2);
    bool match = failover_traffic_inbound(src_port, dst_port);
    if (!match) {
      // §7 method 1 for established connections: is there a flagged
      // connection of ours matching this 4-tuple?
      tcp::ConnKey key{host_.address(), dst_port, dgram.src, src_port};
      if (auto conn = host_.tcp().find(key); conn && conn->failover_flagged()) {
        match = true;
      }
    }
    if (!match) {
      ctr_snooped_dropped_->inc();
      return HookVerdict::kDrop;
    }
    // Off-path hardening: before translating the snooped segment into our
    // replica's receive path, check its sequence number against the
    // connection it claims to belong to. State-changing segments (RST,
    // SYN) must sit exactly at the replica's RCV.NXT — the same test RFC
    // 5961 applies for teardown — and data must land within a window or
    // two of it. A blind injector guessing sequence numbers fails this
    // and never perturbs the replica; a genuine peer that trips it (e.g.
    // an inexact RST) is re-challenged by the primary's TCP layer and
    // passes on the exact retry.
    if (auto conn = host_.tcp().find(
            tcp::ConnKey{host_.address(), dst_port, dgram.src, src_port});
        conn && conn->state() != tcp::TcpState::kSynSent) {
      // In SYN_SENT (server-initiated connections, §7.2) the replica has
      // not learned the remote ISN yet — the snooped SYN|ACK is what
      // fixes it, so there is nothing to check the sequence against; the
      // TCP layer's own SYN_SENT rule (ACK must equal ISS+1) gates
      // forgeries there.
      constexpr std::int32_t kSlack = 2 * 65536;
      const std::int32_t rel =
          seq_diff(Seq32{get_u32(dgram.payload, 4)}, conn->rcv_nxt_abs());
      const bool state_changing =
          get_u8(dgram.payload, 13) & (tcp::Flags::kRst | tcp::Flags::kSyn);
      if (state_changing ? rel != 0 : (rel < -kSlack || rel > kSlack)) {
        ctr_spoof_dropped_->inc();
        return HookVerdict::kDrop;
      }
    }
    // Rewrite a_p -> a_s and fix the TCP checksum incrementally in the
    // serialized segment (the pseudo-header destination changed). This is
    // the paper's rewrite-in-place: two bytes patched directly in the
    // arriving wire buffer — copy-on-write guards the case where the
    // primary's own pending delivery still shares the frame storage.
    tcp::patch_checksum_for_address_change(dgram.payload, dgram.dst, host_.address());
    dgram.dst = host_.address();
    ctr_translated_->inc();
    return HookVerdict::kContinue;
  }
  return HookVerdict::kContinue;
}

TapVerdict SecondaryBridge::tcp_outbound(TcpSegment& seg, ip::Ipv4& src, ip::Ipv4& dst) {
  if (taken_over_ && !paused_) return TapVerdict::kContinue;
  if (dst == cfg_.primary_addr || dst == divert_to_) return TapVerdict::kContinue;

  // Only failover-connection traffic is diverted.
  const tcp::ConnKey key{src, seg.src_port, dst, seg.dst_port};
  bool failover = cfg_.is_failover_port(seg.src_port) ||
                  host_.tcp().listener_is_failover(seg.src_port);
  if (!failover) {
    if (auto conn = host_.tcp().find(key); conn && conn->failover_flagged()) {
      failover = true;
    }
  }
  if (!failover) return TapVerdict::kContinue;

  if (paused_) {
    // §5 step 1: hold client-bound segments during reconfiguration.
    pause_buffer_.push_back({seg, dst});
    return TapVerdict::kConsume;
  }

  // §3.1: divert to the primary (or, in a replica chain, the next live
  // replica up), recording the true destination in a TCP header option.
  seg.orig_dst = dst;
  dst = divert_to_;
  ctr_diverted_->inc();
  return TapVerdict::kContinue;
}

void SecondaryBridge::take_over() {
  if (taken_over_) return;
  TFO_LOG(kInfo, "bridge") << "secondary bridge: taking over "
                           << cfg_.primary_addr.str();
  takeover_time_ = host_.simulator().now();
  host_.obs().timeline.record(takeover_time_, obs::EventKind::kTakeoverStart, {},
                              "addr=" + cfg_.primary_addr.str());

  // Step 1: stop sending client-bound segments.
  paused_ = true;

  // Step 2: disable promiscuous receive.
  host_.nic().set_promiscuous(false);

  // Steps 3 & 4 (disable both translations) are keyed off this flag.
  taken_over_ = true;

  // Step 5: IP takeover — claim a_p, announce it, and rebind the failover
  // connections our TCP layer keyed under a_s (DESIGN.md §5.2). The
  // announcement is repeated: any single gratuitous ARP may be lost.
  host_.ip().add_alias(cfg_.primary_addr);
  host_.arp().announce(cfg_.primary_addr);
  for (int i = 1; i <= cfg_.gratuitous_arp_repeats; ++i) {
    host_.simulator().schedule_after(
        i * cfg_.gratuitous_arp_interval,
        [this, w = std::weak_ptr<bool>(alive_)] {
          if (!w.expired()) host_.arp().announce(cfg_.primary_addr);
        });
  }
  host_.tcp().rekey_local_address(
      host_.address(), cfg_.primary_addr, [this](const tcp::Connection& c) {
        return c.failover_flagged() || cfg_.is_failover_port(c.key().local_port) ||
               host_.tcp().listener_is_failover(c.key().local_port);
      });

  // "After the change of IP address is completed, the bridge resumes
  // sending TCP segments."
  host_.simulator().schedule_after(cfg_.takeover_pause,
                                   [this, w = std::weak_ptr<bool>(alive_)] {
    if (w.expired()) return;
    paused_ = false;
    auto held = std::move(pause_buffer_);
    pause_buffer_.clear();
    host_.obs().timeline.record(host_.simulator().now(),
                                obs::EventKind::kTakeoverComplete, {},
                                "held_segments=" + std::to_string(held.size()));
    for (auto& h : held) {
      // Held segments were generated under a_s; they go out re-sourced
      // from the taken-over address.
      host_.tcp().send_segment_raw(h.seg, cfg_.primary_addr, h.dst);
    }
  });
}

}  // namespace tfo::core
