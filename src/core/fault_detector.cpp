#include "core/fault_detector.hpp"

#include "common/logging.hpp"

namespace tfo::core {

namespace {

std::uint64_t hb_mix(std::uint64_t x) {
  // splitmix64 finalizer: cheap, deterministic, and — keyed with a seed
  // the attacker does not hold — unguessable enough for a simulation.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t hb_nonce(std::uint64_t seed, ip::Ipv4 sender, std::uint64_t k) {
  // Folding the sender address prevents reflection: a captured P→S
  // heartbeat replayed back at P verifies against S's address, not P's.
  return hb_mix(seed ^ hb_mix(sender.v) ^ hb_mix(k));
}

Bytes hb_payload(std::uint64_t seed, ip::Ipv4 sender, std::uint64_t k) {
  Bytes b = to_bytes("HB");
  put_u64(b, k);
  put_u64(b, hb_nonce(seed, sender, k));
  return b;
}

constexpr std::size_t kHbBytes = 18;  // "HB" + k:u64 + nonce:u64

/// Validates an inbound heartbeat against the nonce chain and the
/// caller's anti-replay high-water mark; advances the mark on success.
bool hb_verify(std::uint64_t seed, const ip::IpDatagram& d, std::uint64_t& expect_k) {
  const BytesView pl(d.payload);
  if (pl.size() < kHbBytes || pl[0] != 'H' || pl[1] != 'B') return false;
  const std::uint64_t k = get_u64(pl, 2);
  if (k < expect_k) return false;  // replayed or reordered stale heartbeat
  if (get_u64(pl, 10) != hb_nonce(seed, d.src, k)) return false;
  expect_k = k + 1;
  return true;
}

}  // namespace

FaultDetector::FaultDetector(apps::Host& host, ip::Ipv4 peer, SimDuration period,
                             SimDuration timeout, ip::Ipv4 src,
                             std::uint64_t auth_seed)
    : host_(host),
      peer_(peer),
      period_(period),
      timeout_(timeout),
      src_(src),
      auth_seed_(auth_seed),
      send_timer_(host.simulator()),
      deadline_(host.simulator()) {
  // Registry counters are cumulative across detector instances on the
  // host; the accessors stay per-instance (a replaced detector restarts
  // its own counts), so both are kept.
  auto& reg = host_.obs().registry;
  ctr_sent_ = &reg.counter("fd.heartbeats_sent");
  ctr_received_ = &reg.counter("fd.heartbeats_received");
  ctr_auth_failed_ = &reg.counter("fault.hb_auth_failed");
  host_.ip().register_protocol(
      ip::Proto::kHeartbeat,
      [this, w = std::weak_ptr<bool>(alive_)](const ip::IpDatagram& d,
                                              const ip::RxMeta&) {
        if (w.expired()) return;  // stale registration of a replaced detector
        if (!running_ || d.src != peer_) return;
        if (!hb_verify(auth_seed_, d, expect_k_)) {
          // Forged, replayed, or reflected: it must not refresh liveness
          // (a forger could otherwise mask a dead peer forever).
          ++auth_failed_;
          ctr_auth_failed_->inc();
          return;
        }
        ++received_;
        ctr_received_->inc();
        arm_deadline();
      });
}

FaultDetector::~FaultDetector() { alive_.reset(); }

void FaultDetector::start() {
  running_ = true;
  declared_ = false;
  send_heartbeat();
  arm_deadline();
}

void FaultDetector::stop() {
  running_ = false;
  send_timer_.stop();
  deadline_.stop();
}

void FaultDetector::send_heartbeat() {
  if (!running_) return;
  ++sent_;
  ctr_sent_->inc();
  // k is the simulation clock: monotonic even across detector replacement
  // (reintegration), so the peer's anti-replay mark never needs resetting.
  const ip::Ipv4 effective_src = src_.is_any() ? host_.address() : src_;
  host_.ip().send(ip::Proto::kHeartbeat, src_, peer_,
                  hb_payload(auth_seed_, effective_src,
                             static_cast<std::uint64_t>(host_.simulator().now())));
  send_timer_.start(period_, [this] { send_heartbeat(); });
}

void FaultDetector::arm_deadline() {
  deadline_.start(timeout_, [this] {
    if (declared_) return;
    declared_ = true;
    running_ = false;
    send_timer_.stop();
    TFO_LOG(kInfo, "fd") << host_.name() << " declares peer " << peer_.str()
                         << " FAILED";
    host_.obs().timeline.record(host_.simulator().now(),
                                obs::EventKind::kPeerDeclaredFailed, {},
                                "peer=" + peer_.str());
    if (on_peer_failed) on_peer_failed();
  });
}

// ------------------------------------------------------- HeartbeatMesh

HeartbeatMesh::HeartbeatMesh(apps::Host& host, SimDuration period, SimDuration timeout,
                             std::uint64_t auth_seed)
    : host_(host),
      period_(period),
      timeout_(timeout),
      auth_seed_(auth_seed),
      send_timer_(host.simulator()) {
  ctr_auth_failed_ = &host_.obs().registry.counter("fault.hb_auth_failed");
  host_.ip().register_protocol(
      ip::Proto::kHeartbeat,
      [this, w = std::weak_ptr<bool>(alive_)](const ip::IpDatagram& d,
                                              const ip::RxMeta&) {
        if (w.expired() || !running_) return;
        for (auto& peer : peers_) {
          if (peer->addr == d.src && !peer->declared) {
            if (!hb_verify(auth_seed_, d, peer->expect_k)) {
              ctr_auth_failed_->inc();
              return;
            }
            arm(*peer);
            return;
          }
        }
      });
}

HeartbeatMesh::~HeartbeatMesh() { alive_.reset(); }

void HeartbeatMesh::watch(ip::Ipv4 peer, std::function<void()> on_failed) {
  auto p = std::make_unique<Peer>();
  p->addr = peer;
  p->on_failed = std::move(on_failed);
  p->deadline = std::make_unique<sim::Timer>(host_.simulator());
  peers_.push_back(std::move(p));
  // A peer registered after the mesh started (reintegration) would never
  // get a deadline until its first heartbeat arrived — a permanently
  // silent peer would go undetected. Arm it now.
  if (running_) arm(*peers_.back());
}

void HeartbeatMesh::start() {
  running_ = true;
  send_heartbeats();
  for (auto& peer : peers_) arm(*peer);
}

void HeartbeatMesh::stop() {
  running_ = false;
  send_timer_.stop();
  for (auto& peer : peers_) peer->deadline->stop();
}

bool HeartbeatMesh::peer_failed(ip::Ipv4 peer) const {
  for (const auto& p : peers_) {
    if (p->addr == peer) return p->declared;
  }
  return false;
}

void HeartbeatMesh::send_heartbeats() {
  if (!running_) return;
  const std::uint64_t k = static_cast<std::uint64_t>(host_.simulator().now());
  for (const auto& peer : peers_) {
    if (!peer->declared) {
      host_.ip().send(ip::Proto::kHeartbeat, ip::Ipv4::any(), peer->addr,
                      hb_payload(auth_seed_, host_.address(), k));
    }
  }
  send_timer_.start(period_, [this] { send_heartbeats(); });
}

void HeartbeatMesh::arm(Peer& peer) {
  // `peer` lives in stable unique_ptr storage (see peers_), so capturing
  // the raw pointer across later watch() calls is safe.
  Peer* p = &peer;
  peer.deadline->start(timeout_, [this, p] {
    if (p->declared) return;
    p->declared = true;
    TFO_LOG(kInfo, "fd") << host_.name() << " declares chain peer "
                         << p->addr.str() << " FAILED";
    host_.obs().timeline.record(host_.simulator().now(),
                                obs::EventKind::kPeerDeclaredFailed, {},
                                "peer=" + p->addr.str());
    if (p->on_failed) p->on_failed();
  });
}

}  // namespace tfo::core
