#include "core/fault_detector.hpp"

#include "common/logging.hpp"

namespace tfo::core {

FaultDetector::FaultDetector(apps::Host& host, ip::Ipv4 peer, SimDuration period,
                             SimDuration timeout, ip::Ipv4 src)
    : host_(host),
      peer_(peer),
      period_(period),
      timeout_(timeout),
      src_(src),
      send_timer_(host.simulator()),
      deadline_(host.simulator()) {
  // Registry counters are cumulative across detector instances on the
  // host; the accessors stay per-instance (a replaced detector restarts
  // its own counts), so both are kept.
  auto& reg = host_.obs().registry;
  ctr_sent_ = &reg.counter("fd.heartbeats_sent");
  ctr_received_ = &reg.counter("fd.heartbeats_received");
  host_.ip().register_protocol(
      ip::Proto::kHeartbeat,
      [this, w = std::weak_ptr<bool>(alive_)](const ip::IpDatagram& d,
                                              const ip::RxMeta&) {
        if (w.expired()) return;  // stale registration of a replaced detector
        if (!running_ || d.src != peer_) return;
        ++received_;
        ctr_received_->inc();
        arm_deadline();
      });
}

FaultDetector::~FaultDetector() { alive_.reset(); }

void FaultDetector::start() {
  running_ = true;
  declared_ = false;
  send_heartbeat();
  arm_deadline();
}

void FaultDetector::stop() {
  running_ = false;
  send_timer_.stop();
  deadline_.stop();
}

void FaultDetector::send_heartbeat() {
  if (!running_) return;
  ++sent_;
  ctr_sent_->inc();
  host_.ip().send(ip::Proto::kHeartbeat, src_, peer_, to_bytes("HB"));
  send_timer_.start(period_, [this] { send_heartbeat(); });
}

void FaultDetector::arm_deadline() {
  deadline_.start(timeout_, [this] {
    if (declared_) return;
    declared_ = true;
    running_ = false;
    send_timer_.stop();
    TFO_LOG(kInfo, "fd") << host_.name() << " declares peer " << peer_.str()
                         << " FAILED";
    host_.obs().timeline.record(host_.simulator().now(),
                                obs::EventKind::kPeerDeclaredFailed, {},
                                "peer=" + peer_.str());
    if (on_peer_failed) on_peer_failed();
  });
}

// ------------------------------------------------------- HeartbeatMesh

HeartbeatMesh::HeartbeatMesh(apps::Host& host, SimDuration period, SimDuration timeout)
    : host_(host), period_(period), timeout_(timeout), send_timer_(host.simulator()) {
  host_.ip().register_protocol(
      ip::Proto::kHeartbeat,
      [this, w = std::weak_ptr<bool>(alive_)](const ip::IpDatagram& d,
                                              const ip::RxMeta&) {
        if (w.expired() || !running_) return;
        for (auto& peer : peers_) {
          if (peer->addr == d.src && !peer->declared) {
            arm(*peer);
            return;
          }
        }
      });
}

HeartbeatMesh::~HeartbeatMesh() { alive_.reset(); }

void HeartbeatMesh::watch(ip::Ipv4 peer, std::function<void()> on_failed) {
  auto p = std::make_unique<Peer>();
  p->addr = peer;
  p->on_failed = std::move(on_failed);
  p->deadline = std::make_unique<sim::Timer>(host_.simulator());
  peers_.push_back(std::move(p));
  // A peer registered after the mesh started (reintegration) would never
  // get a deadline until its first heartbeat arrived — a permanently
  // silent peer would go undetected. Arm it now.
  if (running_) arm(*peers_.back());
}

void HeartbeatMesh::start() {
  running_ = true;
  send_heartbeats();
  for (auto& peer : peers_) arm(*peer);
}

void HeartbeatMesh::stop() {
  running_ = false;
  send_timer_.stop();
  for (auto& peer : peers_) peer->deadline->stop();
}

bool HeartbeatMesh::peer_failed(ip::Ipv4 peer) const {
  for (const auto& p : peers_) {
    if (p->addr == peer) return p->declared;
  }
  return false;
}

void HeartbeatMesh::send_heartbeats() {
  if (!running_) return;
  for (const auto& peer : peers_) {
    if (!peer->declared) {
      host_.ip().send(ip::Proto::kHeartbeat, ip::Ipv4::any(), peer->addr,
                      to_bytes("HB"));
    }
  }
  send_timer_.start(period_, [this] { send_heartbeats(); });
}

void HeartbeatMesh::arm(Peer& peer) {
  // `peer` lives in stable unique_ptr storage (see peers_), so capturing
  // the raw pointer across later watch() calls is safe.
  Peer* p = &peer;
  peer.deadline->start(timeout_, [this, p] {
    if (p->declared) return;
    p->declared = true;
    TFO_LOG(kInfo, "fd") << host_.name() << " declares chain peer "
                         << p->addr.str() << " FAILED";
    host_.obs().timeline.record(host_.simulator().now(),
                                obs::EventKind::kPeerDeclaredFailed, {},
                                "peer=" + p->addr.str());
    if (p->on_failed) p->on_failed();
  });
}

}  // namespace tfo::core
