// Top-level convenience wiring: given a primary host and a secondary host
// running the (actively replicated) server application, assemble the two
// bridges and the fault detectors and react to failures with the paper's
// §5/§6 procedures. This is the public entry point most users of the
// library want; examples/quickstart.cpp shows the full flow.
#pragma once

#include <memory>

#include "apps/host.hpp"
#include "core/fault_detector.hpp"
#include "core/failover_config.hpp"
#include "core/primary_bridge.hpp"
#include "core/secondary_bridge.hpp"

namespace tfo::core {

class ReplicaGroup {
 public:
  ReplicaGroup(apps::Host& primary, apps::Host& secondary, FailoverConfig cfg);

  /// Starts the fault detectors. Call after the topology is in place.
  void start();

  PrimaryBridge& primary_bridge() { return *primary_bridge_; }
  SecondaryBridge& secondary_bridge() { return *secondary_bridge_; }
  FaultDetector& detector_on_primary() { return *fd_primary_; }
  FaultDetector& detector_on_secondary() { return *fd_secondary_; }
  const FailoverConfig& config() const { return cfg_; }

  /// Convenience fault injection: crashes the host; the surviving
  /// replica's detector notices and runs the corresponding recovery.
  void crash_primary();
  void crash_secondary();

  /// Reintegration (the paper leaves this out of scope; see DESIGN.md):
  /// after one replica failed and the survivor recovered (§5 or §6),
  /// `recruit` — a fresh host already running the replicated application —
  /// becomes the new secondary. Connections established from now on are
  /// fully replicated again; connections that predate the reintegration
  /// keep running unreplicated on the survivor (their application state
  /// cannot be reconstructed without state transfer). The recruit must be
  /// on the same segment with its listeners installed before the call.
  void reintegrate_secondary(apps::Host& recruit);

  /// The host currently serving the service address.
  apps::Host& current_server();

 private:
  void wire_detectors();

  apps::Host* primary_host_;    // current merge-side host
  apps::Host* secondary_host_;  // current divert-side host
  FailoverConfig cfg_;
  std::unique_ptr<PrimaryBridge> primary_bridge_;
  std::unique_ptr<SecondaryBridge> secondary_bridge_;
  std::unique_ptr<FaultDetector> fd_primary_;    // runs on P, watches S
  std::unique_ptr<FaultDetector> fd_secondary_;  // runs on S, watches P
};

}  // namespace tfo::core
