#include "core/output_queue.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/assert.hpp"

namespace tfo::core {

bool OutputQueue::insert(std::uint64_t offset, const wire::PacketBuffer& data) {
  if (data.empty()) return true;
  const std::uint64_t end = offset + data.size();

  // Pass 1: verify all overlaps agree (divergence check) without mutating.
  auto it = runs_.upper_bound(offset);
  if (it != runs_.begin()) --it;
  for (auto probe = it; probe != runs_.end() && probe->first < end; ++probe) {
    const std::uint64_t r_off = probe->first;
    const std::uint64_t r_end = r_off + probe->second.size();
    const std::uint64_t lo = std::max(offset, r_off);
    const std::uint64_t hi = std::min(end, r_end);
    if (lo < hi &&
        std::memcmp(probe->second.data() + (lo - r_off),
                    data.data() + (lo - offset),
                    static_cast<std::size_t>(hi - lo)) != 0) {
      return false;
    }
  }

  // Pass 2: retain only the uncovered gaps, each as a slice sharing
  // `data`'s storage — existing runs are left in place untouched.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> gaps;  // [lo, hi)
  std::uint64_t pos = offset;
  auto p = runs_.upper_bound(offset);
  if (p != runs_.begin()) --p;
  for (; p != runs_.end() && p->first < end && pos < end; ++p) {
    const std::uint64_t r_off = p->first;
    const std::uint64_t r_end = r_off + p->second.size();
    if (r_end <= pos) continue;
    if (r_off > pos) gaps.emplace_back(pos, std::min(r_off, end));
    pos = std::max(pos, std::min(r_end, end));
  }
  if (pos < end) gaps.emplace_back(pos, end);

  for (const auto& [lo, hi] : gaps) {
    wire::PacketBuffer slice = data;
    slice.trim_front(static_cast<std::size_t>(lo - offset));
    slice.trim_to(static_cast<std::size_t>(hi - lo));
    total_ += slice.size();
    runs_.emplace(lo, std::move(slice));
  }
  publish_gauges();
  return true;
}

std::size_t OutputQueue::contiguous_at(std::uint64_t offset) const {
  auto it = runs_.upper_bound(offset);
  if (it == runs_.begin()) return 0;
  --it;
  std::uint64_t r_end = it->first + it->second.size();
  if (offset >= r_end) return 0;
  std::size_t n = static_cast<std::size_t>(r_end - offset);
  // Runs are kept as independent slices; contiguity spans abutting ones.
  for (++it; it != runs_.end() && it->first == r_end; ++it) {
    n += it->second.size();
    r_end += it->second.size();
  }
  return n;
}

wire::PacketBuffer OutputQueue::extract(std::uint64_t offset, std::size_t n) {
  TFO_ASSERT(contiguous_at(offset) >= n, "extract beyond contiguous run");
  auto it = runs_.upper_bound(offset);
  --it;

  const std::uint64_t r_off = it->first;
  const std::size_t head = static_cast<std::size_t>(offset - r_off);
  if (head + n <= it->second.size()) {
    // Fast path: the span lies within one run — the result and any
    // retained left/right remainders are all slices of the same storage;
    // no bytes move.
    wire::PacketBuffer run = std::move(it->second);
    runs_.erase(it);
    total_ -= run.size();
    if (head > 0) {
      wire::PacketBuffer left = run;
      left.trim_to(head);
      total_ += left.size();
      runs_.emplace(r_off, std::move(left));
    }
    if (head + n < run.size()) {
      wire::PacketBuffer right = run;
      right.trim_front(head + n);
      total_ += right.size();
      runs_.emplace(offset + n, std::move(right));
    }
    run.trim_front(head);
    run.trim_to(n);
    publish_gauges();
    return run;
  }

  // Slow path: gather across abutting runs into a fresh buffer.
  wire::PacketBuffer out = wire::PacketBuffer::alloc(n);
  std::uint8_t* w = out.mutable_data();
  std::uint64_t pos = offset;
  std::size_t remaining = n;
  while (remaining > 0) {
    it = runs_.upper_bound(pos);
    --it;
    wire::PacketBuffer run = std::move(it->second);
    const std::uint64_t run_off = it->first;
    runs_.erase(it);
    total_ -= run.size();
    const std::size_t skip = static_cast<std::size_t>(pos - run_off);
    if (skip > 0) {
      wire::PacketBuffer left = run;
      left.trim_to(skip);
      total_ += left.size();
      runs_.emplace(run_off, std::move(left));
    }
    const std::size_t take = std::min(run.size() - skip, remaining);
    std::memcpy(w, run.data() + skip, take);
    w += take;
    remaining -= take;
    pos += take;
    if (skip + take < run.size()) {
      run.trim_front(skip + take);
      total_ += run.size();
      runs_.emplace(pos, std::move(run));
    }
  }
  publish_gauges();
  return out;
}

void OutputQueue::drop_below(std::uint64_t offset) {
  while (!runs_.empty()) {
    auto it = runs_.begin();
    const std::uint64_t r_off = it->first;
    const std::uint64_t r_end = r_off + it->second.size();
    if (r_off >= offset) break;
    if (r_end <= offset) {
      total_ -= it->second.size();
      runs_.erase(it);
      continue;
    }
    // Trim the head of this run — an offset move on the retained slice.
    wire::PacketBuffer tail = std::move(it->second);
    runs_.erase(it);
    total_ -= tail.size();
    tail.trim_front(static_cast<std::size_t>(offset - r_off));
    total_ += tail.size();
    runs_.emplace(offset, std::move(tail));
    break;
  }
  publish_gauges();
}

std::uint64_t OutputQueue::max_end() const {
  TFO_ASSERT(!runs_.empty(), "max_end on empty queue");
  auto it = std::prev(runs_.end());
  return it->first + it->second.size();
}

}  // namespace tfo::core
