#include "core/output_queue.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace tfo::core {

bool OutputQueue::insert(std::uint64_t offset, BytesView data) {
  if (data.empty()) return true;
  const std::uint64_t end = offset + data.size();

  // Pass 1: verify all overlaps agree (divergence check) without mutating.
  auto it = runs_.upper_bound(offset);
  if (it != runs_.begin()) --it;
  for (auto probe = it; probe != runs_.end() && probe->first < end; ++probe) {
    const std::uint64_t r_off = probe->first;
    const std::uint64_t r_end = r_off + probe->second.size();
    const std::uint64_t lo = std::max(offset, r_off);
    const std::uint64_t hi = std::min(end, r_end);
    for (std::uint64_t i = lo; i < hi; ++i) {
      if (probe->second[static_cast<std::size_t>(i - r_off)] !=
          data[static_cast<std::size_t>(i - offset)]) {
        return false;
      }
    }
  }

  // Pass 2: union the new run with every overlapping or abutting run.
  auto first = runs_.upper_bound(offset);
  if (first != runs_.begin()) {
    auto prev = std::prev(first);
    if (prev->first + prev->second.size() >= offset) first = prev;
  }
  std::uint64_t span_off = offset, span_end = end;
  auto last = first;
  while (last != runs_.end() && last->first <= end) {
    span_off = std::min(span_off, last->first);
    span_end = std::max(span_end, last->first + last->second.size());
    ++last;
  }
  Bytes merged(static_cast<std::size_t>(span_end - span_off));
  for (auto p = first; p != last; ++p) {
    std::copy(p->second.begin(), p->second.end(),
              merged.begin() + static_cast<long>(p->first - span_off));
    total_ -= p->second.size();
  }
  std::copy(data.begin(), data.end(),
            merged.begin() + static_cast<long>(offset - span_off));
  runs_.erase(first, last);
  total_ += merged.size();
  runs_.emplace(span_off, std::move(merged));
  publish_gauges();
  return true;
}

std::size_t OutputQueue::contiguous_at(std::uint64_t offset) const {
  auto it = runs_.upper_bound(offset);
  if (it == runs_.begin()) return 0;
  --it;
  const std::uint64_t r_end = it->first + it->second.size();
  return offset < r_end ? static_cast<std::size_t>(r_end - offset) : 0;
}

Bytes OutputQueue::extract(std::uint64_t offset, std::size_t n) {
  TFO_ASSERT(contiguous_at(offset) >= n, "extract beyond contiguous run");
  auto it = runs_.upper_bound(offset);
  --it;
  const std::uint64_t r_off = it->first;
  Bytes run = std::move(it->second);
  total_ -= run.size();
  runs_.erase(it);

  const std::size_t head = static_cast<std::size_t>(offset - r_off);
  Bytes out(run.begin() + static_cast<long>(head),
            run.begin() + static_cast<long>(head + n));
  if (head > 0) {
    Bytes left(run.begin(), run.begin() + static_cast<long>(head));
    total_ += left.size();
    runs_.emplace(r_off, std::move(left));
  }
  if (head + n < run.size()) {
    Bytes right(run.begin() + static_cast<long>(head + n), run.end());
    total_ += right.size();
    runs_.emplace(offset + n, std::move(right));
  }
  publish_gauges();
  return out;
}

void OutputQueue::drop_below(std::uint64_t offset) {
  while (!runs_.empty()) {
    auto it = runs_.begin();
    const std::uint64_t r_end = it->first + it->second.size();
    if (it->first >= offset) break;
    if (r_end <= offset) {
      total_ -= it->second.size();
      runs_.erase(it);
      continue;
    }
    // Trim the head of this run.
    Bytes tail(it->second.begin() + static_cast<long>(offset - it->first),
               it->second.end());
    total_ -= it->second.size();
    runs_.erase(it);
    total_ += tail.size();
    runs_.emplace(offset, std::move(tail));
    break;
  }
  publish_gauges();
}

std::uint64_t OutputQueue::max_end() const {
  TFO_ASSERT(!runs_.empty(), "max_end on empty queue");
  auto it = std::prev(runs_.end());
  return it->first + it->second.size();
}

}  // namespace tfo::core
