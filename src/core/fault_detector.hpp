// Heartbeat-based fault detector (§2: "the system employs a fault
// detector"). Each replica streams heartbeat datagrams to its peer over a
// raw IP protocol; silence for `failure_timeout` declares the peer dead
// (fail-stop model). Detection latency is one of the knobs swept by the
// failover-time bench (EXPERIMENTS.md E1).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "apps/host.hpp"
#include "sim/timer.hpp"

namespace tfo::core {

/// Key for the heartbeat nonce chain, shared by both ends of a detector
/// pair (FailoverConfig::hb_auth_seed). Heartbeats carry
/// ["HB", k:u64, nonce:u64] where k is the sender's simulation clock
/// (monotonic across detector replacement) and nonce is a keyed hash of
/// (seed, sender address, k). A receiver accepts only a matching nonce
/// with k at or above its high-water mark, so an off-path attacker can
/// neither forge a heartbeat (to suppress a takeover) nor replay or
/// reflect a captured one (fault.hb_auth_failed counts the attempts).
constexpr std::uint64_t kDefaultHbAuthSeed = 0x4842'6175'7468'2e31ull;

class FaultDetector {
 public:
  /// `src` is the source address stamped on outgoing heartbeats — it must
  /// be the address the peer's detector watches (after an IP takeover the
  /// serving host speaks as the service address, not its interface).
  /// any() uses the egress interface address.
  FaultDetector(apps::Host& host, ip::Ipv4 peer, SimDuration period,
                SimDuration timeout, ip::Ipv4 src = ip::Ipv4::any(),
                std::uint64_t auth_seed = kDefaultHbAuthSeed);
  ~FaultDetector();

  /// Fired exactly once when the peer is declared failed.
  std::function<void()> on_peer_failed;

  void start();
  void stop();
  bool running() const { return running_; }
  bool peer_declared_failed() const { return declared_; }
  std::uint64_t heartbeats_sent() const { return sent_; }
  std::uint64_t heartbeats_received() const { return received_; }
  std::uint64_t auth_failures() const { return auth_failed_; }

 private:
  void send_heartbeat();
  void arm_deadline();

  apps::Host& host_;
  ip::Ipv4 peer_;
  SimDuration period_;
  SimDuration timeout_;
  ip::Ipv4 src_;
  sim::Timer send_timer_;
  sim::Timer deadline_;
  bool running_ = false;
  bool declared_ = false;
  std::uint64_t sent_ = 0, received_ = 0, auth_failed_ = 0;
  std::uint64_t auth_seed_;
  /// Anti-replay high-water mark: smallest k the next heartbeat may carry.
  std::uint64_t expect_k_ = 0;
  obs::Counter* ctr_sent_ = nullptr;
  obs::Counter* ctr_received_ = nullptr;
  obs::Counter* ctr_auth_failed_ = nullptr;
  /// Liveness sentinel: the protocol-handler registration on the host
  /// outlives this object when a detector is replaced (reintegration);
  /// the handler checks the sentinel before touching `this`.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

/// Multi-peer heartbeat monitor for replica chains: one instance per host
/// exchanges heartbeats with every other chain member and reports each
/// peer's failure exactly once. (FaultDetector handles the two-replica
/// case; only one of the two may be attached to a host, as each claims
/// the host's heartbeat protocol number.)
class HeartbeatMesh {
 public:
  HeartbeatMesh(apps::Host& host, SimDuration period, SimDuration timeout,
                std::uint64_t auth_seed = kDefaultHbAuthSeed);
  ~HeartbeatMesh();

  /// Registers a peer to watch. May be called after start() (e.g. when a
  /// repaired member reintegrates); the new peer's deadline arms at once.
  void watch(ip::Ipv4 peer, std::function<void()> on_failed);

  void start();
  void stop();
  bool peer_failed(ip::Ipv4 peer) const;
  std::size_t peers_watched() const { return peers_.size(); }

 private:
  struct Peer {
    ip::Ipv4 addr;
    std::function<void()> on_failed;
    std::unique_ptr<sim::Timer> deadline;
    bool declared = false;
    std::uint64_t expect_k = 0;  // per-sender anti-replay high-water mark
  };
  void send_heartbeats();
  void arm(Peer& peer);

  apps::Host& host_;
  SimDuration period_;
  SimDuration timeout_;
  std::uint64_t auth_seed_;
  /// Peers get stable heap storage: armed deadline callbacks capture a
  /// `Peer*`, and a `watch()` issued after timers are armed (reintegration)
  /// must not invalidate it by reallocating the vector.
  std::vector<std::unique_ptr<Peer>> peers_;
  sim::Timer send_timer_;
  obs::Counter* ctr_auth_failed_ = nullptr;
  bool running_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace tfo::core
