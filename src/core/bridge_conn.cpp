#include "core/bridge_conn.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace tfo::core {

using tcp::Flags;
using tcp::TcpSegment;

BridgeConn::BridgeConn(BridgeConnSink& sink, tcp::ConnKey key, ip::Ipv4 secondary_addr)
    : sink_(sink), key_(key), secondary_addr_(secondary_addr) {}

void BridgeConn::attach_obs(obs::Hub* hub, sim::Simulator* sim) {
  obs_ = hub;
  obs_sim_ = sim;
  if (!hub) {
    ctr_retransmits_ = ctr_empty_acks_ = nullptr;
    hist_merged_bytes_ = nullptr;
    return;
  }
  key_str_ = key_.str();
  auto& reg = hub->registry;
  ctr_retransmits_ = &reg.counter("bridge.retransmissions_forwarded");
  ctr_empty_acks_ = &reg.counter("bridge.empty_acks_emitted");
  hist_merged_bytes_ = &reg.histogram("bridge.merged_payload_bytes");
  p_queue_.bind_gauges(&reg.gauge("bridge.pqueue_bytes"),
                       &reg.gauge("bridge.pqueue_depth"));
  s_queue_.bind_gauges(&reg.gauge("bridge.squeue_bytes"),
                       &reg.gauge("bridge.squeue_depth"));
}

void BridgeConn::note_event(obs::EventKind kind, std::string detail) {
  if (!obs_ || !obs_sim_) return;
  obs_->timeline.record(obs_sim_->now(), kind, key_str_, std::move(detail));
}

tfo::Seq32 BridgeConn::remote_facing_seq() const {
  return unwrap_s_.wrap(next_to_client_);
}

std::optional<tfo::Seq32> BridgeConn::remote_facing_ack() const {
  if (!remote_isn_known_) return std::nullopt;
  return unwrap_c_.wrap(min_ack());
}

TcpSegment BridgeConn::base_segment_to_remote() const {
  TcpSegment seg;
  seg.src_port = key_.local_port;
  seg.dst_port = key_.remote_port;
  seg.flags = Flags::kAck;
  return seg;
}

// ----------------------------------------------------------- remote side

bool BridgeConn::remote_seq_plausible(const TcpSegment& seg) const {
  // One advertised window (≤ 64 KiB) of slack behind the merged ACK for
  // retransmissions, twice that ahead for in-flight data.
  constexpr std::int64_t kSlack = 65536;
  if (!remote_isn_known_) {
    // Nothing to validate against yet: only a handshake SYN may touch the
    // connection — it is what fixes the remote ISN.
    return seg.syn();
  }
  if (seg.syn()) return seg.seq == irs_;  // handshake retransmission only
  const std::int64_t off = static_cast<std::int64_t>(unwrap_c_.unwrap(seg.seq));
  const std::int64_t base = static_cast<std::int64_t>(min_ack());
  return off >= base - kSlack && off <= base + 2 * kSlack;
}

bool BridgeConn::secondary_seq_plausible(const TcpSegment& seg) const {
  constexpr std::int64_t kSlack = 65536;
  if (!have_s_syn_) return seg.syn();  // only the handshake may fix iss_s_
  if (seg.syn()) return seg.seq == iss_s_;
  const std::int64_t off = static_cast<std::int64_t>(unwrap_s_.unwrap(seg.seq));
  const std::int64_t base = static_cast<std::int64_t>(next_to_client_);
  return off >= base - kSlack && off <= base + 2 * kSlack;
}

void BridgeConn::on_remote_segment(TcpSegment& seg) {
  if (dead_) return;

  if (seg.syn()) {
    // Client SYN (client-initiated, §7.1) or T's SYN+ACK (server-
    // initiated, §7.2): fixes the remote's ISN.
    if (!remote_isn_known_) {
      irs_ = seg.seq;
      unwrap_c_ = SeqUnwrapper(irs_);
      remote_isn_known_ = true;
    }
  }

  if (seg.rst()) {
    dead_ = true;
    sink_.fully_closed(key_);
    return;  // still forwarded to the primary's TCP by the bridge
  }

  if (seg.fin() && remote_isn_known_) {
    const std::uint64_t off = unwrap_c_.unwrap_advance(seg.seq) + seg.payload.size();
    if (!remote_fin_offset_) remote_fin_offset_ = off;
  }

  // Translate the ACK from the secondary's sequence space (which the
  // remote endpoint is synchronized to, §3.3) into the primary's space
  // before the primary's TCP layer sees it.
  if (seg.has_ack() && have_p_syn_ && have_s_syn_) {
    const std::uint64_t acked = unwrap_s_.unwrap(seg.ack);
    if (fin_sent_to_remote_ && fin_p_ && acked >= *fin_p_ + 1) {
      remote_acked_our_fin_ = true;
    }
    seg.ack = unwrap_p_.wrap(acked);
    check_fully_closed();
  }
}

// ----------------------------------------------------------- server side

void BridgeConn::note_server_ack(std::uint64_t& slot, const TcpSegment& seg) {
  if (!seg.has_ack() || !remote_isn_known_) return;
  const std::uint64_t off = unwrap_c_.unwrap_advance(seg.ack);
  if (off > slot) slot = off;
}

void BridgeConn::on_primary_segment(const TcpSegment& seg) {
  TFO_LOG(kTrace, "bridge") << key_.str() << " from-P " << seg.summary();
  if (dead_) return;

  if (seg.rst()) {
    // The primary's TCP layer gave up on the connection (application
    // abort or retransmission exhaustion). Propagate in the remote's
    // sequence space when we can, verbatim otherwise.
    TcpSegment out = seg;
    if (have_p_syn_ && have_s_syn_) {
      out.seq = unwrap_s_.wrap(unwrap_p_.unwrap(seg.seq));
    }
    sink_.emit(out, key_.local_ip, key_.remote_ip);
    dead_ = true;
    sink_.fully_closed(key_);
    return;
  }

  if (seg.syn()) {
    server_initiated_ = !seg.has_ack();
    if (!have_p_syn_) {
      have_p_syn_ = true;
      iss_p_ = seg.seq;
      unwrap_p_ = SeqUnwrapper(iss_p_);
      mss_p_ = seg.mss.value_or(536);
      syn_win_p_ = seg.window;
      win_p_ = seg.window;
      note_server_ack(ack_p_, seg);
      if (solo_ && !have_s_syn_) {
        // §6 corner: the secondary died before producing its SYN and we
        // have promised the remote nothing — adopt the primary's space.
        have_s_syn_ = true;
        iss_s_ = iss_p_;
        unwrap_s_ = unwrap_p_;
        mss_s_ = mss_p_;
        syn_win_s_ = syn_win_p_;
      }
      try_send_syn();
    } else if (syn_sent_to_remote_) {
      // SYN(-ACK) retransmission by the primary's TCP: the merged SYN was
      // lost — resend it (§4 retransmission handling).
      syn_sent_to_remote_ = false;
      try_send_syn();
    }
    return;
  }

  if (!have_p_syn_ || !syn_sent_to_remote_) {
    TFO_LOG(kWarn, "bridge") << key_.str() << " primary segment before handshake: "
                             << seg.summary();
    return;
  }

  note_server_ack(ack_p_, seg);
  win_p_ = seg.window;

  const std::uint64_t offset = unwrap_p_.unwrap_advance(seg.seq);

  if (solo_) {
    // §6: no more delaying or merging, but the sequence-number offset
    // compensation continues for the lifetime of the connection.
    TcpSegment out = seg;
    out.seq = unwrap_s_.wrap(offset);
    sink_.emit(out, key_.local_ip, key_.remote_ip);
    const std::uint64_t end = offset + seg.payload.size() + (seg.fin() ? 1 : 0);
    if (seg.fin() && !fin_sent_to_remote_) {
      fin_sent_to_remote_ = true;
      fin_p_ = offset + seg.payload.size();
    }
    if (end > next_to_client_) next_to_client_ = end;
    check_fully_closed();
    return;
  }

  const std::uint64_t end = offset + seg.payload.size();
  const bool fully_old = end + (seg.fin() ? 1 : 0) <= next_to_client_;

  if ((!seg.payload.empty() || seg.fin()) && fully_old) {
    // §4: a retransmission — the bridge receives only a single copy, so it
    // must not enqueue it but send it on immediately.
    emit_retransmission(offset, seg.payload, seg.fin());
    return;
  }

  if (seg.payload.empty() && !seg.fin()) {
    // Delayed/pure ACK from the primary's TCP layer (§3.4).
    emit_empty_ack_if_progress();
    return;
  }

  // Retain a slice of the arriving frame's storage; the prefix trim is an
  // offset move, and the queue keeps the slice without copying.
  wire::PacketBuffer data = seg.payload;
  std::uint64_t ins_off = offset;
  if (ins_off < next_to_client_) {
    // Partially old: the prefix already went to the client.
    data.trim_front(static_cast<std::size_t>(next_to_client_ - ins_off));
    ins_off = next_to_client_;
  }
  if (!data.empty() && !p_queue_.insert(ins_off, data)) {
    TFO_LOG(kError, "bridge") << key_.str() << " replica divergence in primary stream";
    dead_ = true;
    sink_.divergence(key_);
    return;
  }
  if (seg.fin()) {
    const std::uint64_t fin_off = end;
    if (fin_s_ && *fin_s_ != fin_off) {
      dead_ = true;
      sink_.divergence(key_);
      return;
    }
    fin_p_ = fin_off;
  }
  pump();
  if (!dead_) emit_empty_ack_if_progress();
}

void BridgeConn::on_secondary_segment(const TcpSegment& seg) {
  TFO_LOG(kTrace, "bridge") << key_.str() << " from-S " << seg.summary();
  if (dead_ || solo_) return;

  if (seg.rst()) {
    TFO_LOG(kWarn, "bridge") << key_.str()
                             << " RST from secondary ignored: " << seg.summary();
    return;
  }

  if (seg.syn()) {
    if (!have_s_syn_) {
      have_s_syn_ = true;
      iss_s_ = seg.seq;
      unwrap_s_ = SeqUnwrapper(iss_s_);
      mss_s_ = seg.mss.value_or(536);
      syn_win_s_ = seg.window;
      win_s_ = seg.window;
      note_server_ack(ack_s_, seg);
      if (!remote_isn_known_ && seg.has_ack()) {
        // The primary missed the client's SYN; recover the client ISN
        // from the secondary's SYN+ACK (it acknowledges ISN+1).
        irs_ = seq_add(seg.ack, -1);
        unwrap_c_ = SeqUnwrapper(irs_);
        remote_isn_known_ = true;
        ack_s_ = 1;
      }
      try_send_syn();
    } else if (syn_sent_to_remote_) {
      syn_sent_to_remote_ = false;
      try_send_syn();
    }
    return;
  }

  if (!have_s_syn_ || !syn_sent_to_remote_) {
    TFO_LOG(kWarn, "bridge") << key_.str()
                             << " secondary segment before handshake: " << seg.summary();
    return;
  }

  note_server_ack(ack_s_, seg);
  win_s_ = seg.window;

  const std::uint64_t offset = unwrap_s_.unwrap_advance(seg.seq);
  const std::uint64_t end = offset + seg.payload.size();
  const bool fully_old = end + (seg.fin() ? 1 : 0) <= next_to_client_;

  if ((!seg.payload.empty() || seg.fin()) && fully_old) {
    emit_retransmission(offset, seg.payload, seg.fin());
    return;
  }
  if (seg.payload.empty() && !seg.fin()) {
    emit_empty_ack_if_progress();
    return;
  }

  wire::PacketBuffer data = seg.payload;
  std::uint64_t ins_off = offset;
  if (ins_off < next_to_client_) {
    data.trim_front(static_cast<std::size_t>(next_to_client_ - ins_off));
    ins_off = next_to_client_;
  }
  if (!data.empty() && !s_queue_.insert(ins_off, data)) {
    TFO_LOG(kError, "bridge") << key_.str() << " replica divergence in secondary stream";
    dead_ = true;
    sink_.divergence(key_);
    return;
  }
  if (seg.fin()) {
    const std::uint64_t fin_off = end;
    if (fin_p_ && *fin_p_ != fin_off) {
      dead_ = true;
      sink_.divergence(key_);
      return;
    }
    fin_s_ = fin_off;
  }
  pump();
  if (!dead_) emit_empty_ack_if_progress();
}

// ------------------------------------------------------------- handshake

void BridgeConn::try_send_syn() {
  if (syn_sent_to_remote_ || !have_p_syn_ || !have_s_syn_) return;
  TcpSegment syn = base_segment_to_remote();
  syn.flags = Flags::kSyn;
  syn.seq = iss_s_;  // the remote synchronizes to the secondary's space
  if (!server_initiated_) {
    syn.flags |= Flags::kAck;
    syn.ack = remote_isn_known_ ? unwrap_c_.wrap(1) : 0;
  }
  // §7.1: MSS is the minimum of what the two TCP layers offered; same for
  // the window.
  syn.mss = std::min(mss_p_, mss_s_);
  syn.window = std::min(syn_win_p_, syn_win_s_);
  sink_.emit(syn, key_.local_ip, key_.remote_ip);
  syn_sent_to_remote_ = true;
  next_to_client_ = 1;
  last_ack_to_remote_ = server_initiated_ ? 0 : 1;
  last_win_to_remote_ = syn.window;
  note_event(obs::EventKind::kHandshakeMerged,
             "iss_s=" + std::to_string(iss_s_));
}

// ---------------------------------------------------------------- output

void BridgeConn::pump() {
  const std::size_t emit_mss = std::max<std::uint16_t>(std::min(mss_p_, mss_s_), 1);
  for (;;) {
    const std::size_t n = std::min(
        {p_queue_.contiguous_at(next_to_client_), s_queue_.contiguous_at(next_to_client_),
         emit_mss});
    if (n > 0) {
      wire::PacketBuffer from_p = p_queue_.extract(next_to_client_, n);
      wire::PacketBuffer from_s = s_queue_.extract(next_to_client_, n);
      if (from_p != from_s) {
        TFO_LOG(kError, "bridge") << key_.str() << " replica divergence at offset "
                                  << next_to_client_;
        dead_ = true;
        sink_.divergence(key_);
        return;
      }
      const bool fin_now = !fin_sent_to_remote_ && fin_p_ && fin_s_ &&
                           *fin_p_ == *fin_s_ && *fin_p_ == next_to_client_ + n;
      emit_payload(next_to_client_, std::move(from_p), fin_now);
      continue;
    }
    // A FIN with all payload already merged (§8: the bridge sends the
    // server FIN only once both replicas produced it).
    if (!fin_sent_to_remote_ && fin_p_ && fin_s_ && *fin_p_ == *fin_s_ &&
        *fin_p_ == next_to_client_) {
      emit_payload(next_to_client_, wire::PacketBuffer{}, /*fin=*/true);
      continue;
    }
    break;
  }
}

void BridgeConn::emit_payload(std::uint64_t offset, wire::PacketBuffer payload,
                              bool fin) {
  TcpSegment seg = base_segment_to_remote();
  seg.seq = unwrap_s_.wrap(offset);
  seg.payload = std::move(payload);
  if (fin) seg.flags |= Flags::kFin;
  if (p_queue_.empty() && s_queue_.empty()) seg.flags |= Flags::kPsh;
  seg.ack = remote_isn_known_ ? unwrap_c_.wrap(min_ack()) : 0;
  seg.window = min_win();
  last_ack_to_remote_ = min_ack();
  last_win_to_remote_ = seg.window;
  next_to_client_ = offset + seg.payload.size() + (fin ? 1 : 0);
  if (fin) fin_sent_to_remote_ = true;
  TFO_LOG(kTrace, "bridge") << key_.str() << " to-remote " << seg.summary();
  if (hist_merged_bytes_) hist_merged_bytes_->observe(seg.payload.size());
  note_event(obs::EventKind::kSegmentMerged,
             "off=" + std::to_string(offset) +
                 " len=" + std::to_string(seg.payload.size()) +
                 (fin ? " fin" : ""));
  sink_.emit(seg, key_.local_ip, key_.remote_ip);
  check_fully_closed();
}

void BridgeConn::emit_retransmission(std::uint64_t offset,
                                     const wire::PacketBuffer& payload,
                                     bool fin) {
  TcpSegment seg = base_segment_to_remote();
  seg.seq = unwrap_s_.wrap(offset);
  seg.payload = payload;
  if (fin) seg.flags |= Flags::kFin;
  seg.ack = remote_isn_known_ ? unwrap_c_.wrap(min_ack()) : 0;
  seg.window = min_win();
  TFO_LOG(kTrace, "bridge") << key_.str() << " to-remote(rexmit) " << seg.summary();
  if (ctr_retransmits_) ctr_retransmits_->inc();
  note_event(obs::EventKind::kRetransmitForwarded,
             "off=" + std::to_string(offset) +
                 " len=" + std::to_string(payload.size()));
  sink_.emit(seg, key_.local_ip, key_.remote_ip);
}

void BridgeConn::emit_empty_ack_if_progress() {
  if (!syn_sent_to_remote_ || !remote_isn_known_) return;
  const std::uint64_t m = min_ack();
  const std::uint16_t w = min_win();
  const bool ack_progress = m > last_ack_to_remote_;
  // Window-reopen exception: when the merged window was advertised as
  // closed, a pure window update must get through or the remote stalls
  // until its persist timer fires.
  const bool window_reopen = last_win_to_remote_ == 0 && w > 0;
  if (!ack_progress && !window_reopen) return;
  TcpSegment seg = base_segment_to_remote();
  seg.seq = unwrap_s_.wrap(next_to_client_);
  seg.ack = unwrap_c_.wrap(m);
  seg.window = w;
  last_ack_to_remote_ = m;
  last_win_to_remote_ = w;
  if (ctr_empty_acks_) ctr_empty_acks_->inc();
  note_event(obs::EventKind::kEmptyAckEmitted,
             "ack=" + std::to_string(m) + " win=" + std::to_string(w));
  sink_.emit(seg, key_.local_ip, key_.remote_ip);
  check_fully_closed();
}

void BridgeConn::check_fully_closed() {
  if (dead_) return;
  if (!fin_sent_to_remote_ || !remote_acked_our_fin_) return;
  if (!remote_fin_offset_) return;
  const std::uint64_t needed = *remote_fin_offset_ + 1;
  const std::uint64_t acked = solo_ ? ack_p_ : min_ack();
  if (acked < needed) return;
  dead_ = true;
  sink_.fully_closed(key_);
}

// ------------------------------------------------------------- failures

void BridgeConn::on_secondary_failed() {
  if (dead_ || solo_) return;
  solo_ = true;

  if (!have_s_syn_) {
    if (have_p_syn_) {
      // Nothing was promised to the remote yet; adopt the primary's
      // sequence space as "the secondary's".
      have_s_syn_ = true;
      iss_s_ = iss_p_;
      unwrap_s_ = unwrap_p_;
      mss_s_ = mss_p_;
      syn_win_s_ = syn_win_p_;
      win_s_ = win_p_;
      try_send_syn();
    }
    s_queue_.clear();
    return;
  }

  // §6 step 1: remove all payload from the primary output queue and send
  // it to the client (it is exactly the replicated stream the client is
  // waiting for).
  const std::size_t emit_mss = std::max<std::uint16_t>(std::min(mss_p_, mss_s_), 1);
  while (p_queue_.contiguous_at(next_to_client_) > 0) {
    const std::size_t n =
        std::min(p_queue_.contiguous_at(next_to_client_), emit_mss);
    wire::PacketBuffer data = p_queue_.extract(next_to_client_, n);
    TcpSegment seg = base_segment_to_remote();
    seg.seq = unwrap_s_.wrap(next_to_client_);
    seg.payload = std::move(data);
    // §6 step 3: from now on the segments carry the primary's own ACK and
    // window choices.
    seg.ack = remote_isn_known_ ? unwrap_c_.wrap(ack_p_) : 0;
    seg.window = win_p_;
    const bool fin_now =
        fin_p_ && *fin_p_ == next_to_client_ + n && !fin_sent_to_remote_;
    if (fin_now) {
      seg.flags |= Flags::kFin;
      fin_sent_to_remote_ = true;
    }
    next_to_client_ += n + (fin_now ? 1 : 0);
    last_ack_to_remote_ = ack_p_;
    last_win_to_remote_ = win_p_;
    sink_.emit(seg, key_.local_ip, key_.remote_ip);
  }
  if (fin_p_ && *fin_p_ == next_to_client_ && !fin_sent_to_remote_) {
    TcpSegment seg = base_segment_to_remote();
    seg.seq = unwrap_s_.wrap(next_to_client_);
    seg.flags |= Flags::kFin;
    seg.ack = remote_isn_known_ ? unwrap_c_.wrap(ack_p_) : 0;
    seg.window = win_p_;
    fin_sent_to_remote_ = true;
    next_to_client_ += 1;
    sink_.emit(seg, key_.local_ip, key_.remote_ip);
  }
  if (!p_queue_.empty()) {
    TFO_LOG(kWarn, "bridge")
        << key_.str()
        << " non-contiguous primary queue at secondary failure; remainder "
           "will be re-delivered by TCP retransmission";
    p_queue_.clear();
  }
  s_queue_.clear();
  check_fully_closed();
}

}  // namespace tfo::core
