#include "core/replica_chain.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace tfo::core {

ReplicaChain::ReplicaChain(std::vector<apps::Host*> hosts, FailoverConfig cfg)
    : cfg_(std::move(cfg)) {
  TFO_ASSERT(hosts.size() >= 2, "a replica chain needs at least two members");
  service_addr_ = hosts.front()->address();
  cfg_.primary_addr = service_addr_;

  for (std::size_t i = 0; i < hosts.size(); ++i) {
    Member m;
    m.host = hosts[i];
    // Construction order fixes tap precedence: the merge bridge's
    // outbound tap must consume client-bound traffic before the divert
    // bridge's tap would.
    if (i + 1 < hosts.size()) {
      FailoverConfig merge_cfg = cfg_;
      merge_cfg.secondary_addr = hosts[i + 1]->address();
      m.merge = std::make_unique<PrimaryBridge>(*m.host, merge_cfg);
      if (i > 0) m.merge->set_upstream(hosts[i - 1]->address());
    }
    if (i > 0) {
      FailoverConfig divert_cfg = cfg_;
      divert_cfg.secondary_addr = m.host->address();
      m.divert = std::make_unique<SecondaryBridge>(*m.host, divert_cfg);
      // Initial upstream: i-1; the head is addressed by the service
      // address (== its interface address initially).
      m.divert->set_divert_to(i == 1 ? service_addr_ : hosts[i - 1]->address());
    }
    m.mesh = std::make_unique<HeartbeatMesh>(*m.host, cfg_.heartbeat_period,
                                             cfg_.failure_timeout,
                                             cfg_.hb_auth_seed);
    members_.push_back(std::move(m));
  }
  // Full-mesh watching: any member's detector may be first to notice.
  for (std::size_t i = 0; i < members_.size(); ++i) {
    for (std::size_t j = 0; j < members_.size(); ++j) {
      if (i == j) continue;
      members_[i].mesh->watch(members_[j].host->address(),
                              [this, i, j] { on_member_failed(i, j); });
    }
  }
}

void ReplicaChain::start() {
  for (auto& m : members_) m.mesh->start();
}

std::size_t ReplicaChain::alive_count() const {
  std::size_t n = 0;
  for (const auto& m : members_) n += m.alive ? 1 : 0;
  return n;
}

apps::Host* ReplicaChain::head() const {
  for (const auto& m : members_) {
    if (m.alive) return m.host;
  }
  return nullptr;
}

void ReplicaChain::crash(std::size_t index) { members_.at(index).host->fail(); }

std::size_t ReplicaChain::prev_alive(std::size_t index) const {
  for (std::size_t i = index; i-- > 0;) {
    if (members_[i].alive) return i;
  }
  return members_.size();
}

std::size_t ReplicaChain::next_alive(std::size_t index) const {
  for (std::size_t i = index + 1; i < members_.size(); ++i) {
    if (members_[i].alive) return i;
  }
  return members_.size();
}

void ReplicaChain::on_member_failed(std::size_t observer, std::size_t dead) {
  // A crashed member's own timers keep running in the simulation; its
  // "detections" (it hears nobody) must not poison the membership view.
  if (!members_[observer].alive || members_[observer].host->failed()) return;
  if (!members_[dead].alive) return;  // already handled (fail-stop model)
  members_[dead].alive = false;
  TFO_LOG(kInfo, "chain") << "member " << dead << " ("
                          << members_[dead].host->name() << ") failed; "
                          << alive_count() << " remain";
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].alive) reconfigure(i);
  }
}

void ReplicaChain::reconfigure(std::size_t i) {
  Member& m = members_[i];
  const std::size_t up = prev_alive(i);
  const std::size_t down = next_alive(i);

  if (up == members_.size()) {
    // This member is now the head.
    if (m.divert && !m.divert->taken_over()) {
      // §5 takeover of the service address, plus rekeying the merge
      // bridge's connection table into the service address space.
      m.divert->take_over();
      if (m.merge) {
        m.merge->rekey_local(m.host->address(), service_addr_);
        m.merge->set_upstream(std::nullopt);
      }
    }
  } else {
    // The upstream may have moved closer: re-aim diversion and merged
    // emission. The head is addressed via the (taken-over) service
    // address; intermediates via their interface address.
    const bool up_is_head = prev_alive(up) == members_.size();
    const ip::Ipv4 up_addr =
        up_is_head ? service_addr_ : members_[up].host->address();
    if (m.divert) m.divert->set_divert_to(up_addr);
    if (m.merge) m.merge->set_upstream(up_addr);
  }

  if (m.merge) {
    if (down == members_.size()) {
      // Became the tail: finish any pending merges solo (§6).
      if (!m.merge->secondary_failed()) m.merge->on_secondary_failed();
    } else if (!m.merge->secondary_failed()) {
      m.merge->set_downstream(members_[down].host->address());
    }
  }
}

}  // namespace tfo::core
