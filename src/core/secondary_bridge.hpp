// The secondary server bridge (§3.1): address translation around the
// secondary's TCP layer, and the §5 takeover procedure.
//
// Attachment points on the host:
//   * the NIC is put in promiscuous mode so the host sees the client's
//     datagrams addressed to the primary;
//   * an IP inbound hook discards snooped datagrams that are not failover
//     TCP traffic for the primary, and rewrites the destination a_p→a_s
//     of the rest — patching the TCP checksum *incrementally* in the
//     serialized payload, exactly as §3.1 describes;
//   * a TCP outbound tap diverts client-bound segments to the primary
//     (a_c→a_p), recording the original destination in a TCP option.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/host.hpp"
#include "core/failover_config.hpp"
#include "sim/timer.hpp"

namespace tfo::core {

class SecondaryBridge {
 public:
  SecondaryBridge(apps::Host& host, FailoverConfig cfg);
  ~SecondaryBridge();
  SecondaryBridge(const SecondaryBridge&) = delete;
  SecondaryBridge& operator=(const SecondaryBridge&) = delete;

  /// §5: the fault detector declared the primary dead. Executes the five
  /// takeover steps; transmission resumes after cfg.takeover_pause.
  void take_over();
  bool taken_over() const { return taken_over_; }

  /// Simulated time at which take_over() ran (0 if it has not).
  SimTime takeover_time() const { return takeover_time_; }

  /// Re-aims the diversion target (replica-chain support: when this
  /// host's upstream neighbour dies, client-bound output is diverted to
  /// the next live replica up instead). The snoop translation keeps
  /// matching the *service* address from the config.
  void set_divert_to(ip::Ipv4 addr) { divert_to_ = addr; }
  ip::Ipv4 divert_to() const { return divert_to_; }

  // Statistics (thin views over the host metrics registry).
  std::uint64_t datagrams_translated() const;
  std::uint64_t segments_diverted() const;
  std::uint64_t snooped_dropped() const;

 private:
  ip::HookVerdict ip_inbound(ip::IpDatagram& dgram, const ip::RxMeta& meta);
  tcp::TapVerdict tcp_outbound(tcp::TcpSegment& seg, ip::Ipv4& src, ip::Ipv4& dst);
  bool failover_traffic_inbound(std::uint16_t src_port, std::uint16_t dst_port) const;

  apps::Host& host_;
  FailoverConfig cfg_;
  ip::Ipv4 divert_to_;
  bool taken_over_ = false;
  bool paused_ = false;
  SimTime takeover_time_ = 0;
  struct HeldSegment {
    tcp::TcpSegment seg;
    ip::Ipv4 dst;
  };
  std::vector<HeldSegment> pause_buffer_;
  ip::HookId ip_hook_ = 0;
  tcp::TapId out_tap_ = 0;
  /// Liveness sentinel for deferred events (ARP repeats, pause resume).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  // Registry handles (resolved once in the constructor).
  obs::Counter* ctr_translated_ = nullptr;
  obs::Counter* ctr_diverted_ = nullptr;
  obs::Counter* ctr_snooped_dropped_ = nullptr;
  obs::Counter* ctr_spoof_dropped_ = nullptr;
};

}  // namespace tfo::core
