// The primary server bridge (§3.2): intercepts the primary TCP layer's
// client-bound segments, merges them with the secondary's diverted
// segments, and is the only party that actually transmits to the client.
//
// Attachment points on the host:
//   * a TCP outbound tap consumes every failover-connection segment the
//     primary's TCP layer tries to send to the client;
//   * a TCP inbound tap (a) consumes segments carrying the orig-dst
//     option (the secondary's diverted traffic) and (b) rewrites the ACK
//     field of client segments into the primary's sequence space before
//     the TCP layer sees them.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/host.hpp"
#include "common/flat_map.hpp"
#include "common/sharded.hpp"
#include "core/bridge_conn.hpp"
#include "core/failover_config.hpp"
#include "sim/timer.hpp"

namespace tfo::core {

class PrimaryBridge : public BridgeConnSink {
 public:
  PrimaryBridge(apps::Host& host, FailoverConfig cfg);
  ~PrimaryBridge() override;
  PrimaryBridge(const PrimaryBridge&) = delete;
  PrimaryBridge& operator=(const PrimaryBridge&) = delete;

  /// §6: the fault detector declared the secondary dead. Flushes every
  /// connection's primary output queue and switches them to solo mode.
  void on_secondary_failed();
  bool secondary_failed() const { return secondary_failed_; }

  // --- replica-chain support (daisy-chaining, the paper's §1 extension).

  /// When set, merged output is not sent to the remote endpoint but
  /// diverted (orig-dst option) to this upstream replica, which merges it
  /// again with its own stream. Unset (the default) for the chain head /
  /// two-way primary: merged output goes on the wire to the client.
  void set_upstream(std::optional<ip::Ipv4> upstream) { upstream_ = upstream; }

  /// Re-aims the "secondary" this bridge merges with (the next replica
  /// down the chain). Clears solo mode so merging resumes with the new
  /// downstream.
  void set_downstream(ip::Ipv4 addr) {
    cfg_.secondary_addr = addr;
    secondary_failed_ = false;
  }

  /// Rekeys every bridged connection's local address (head promotion:
  /// the host just took over the service address).
  void rekey_local(ip::Ipv4 from, ip::Ipv4 to);

  // --- reintegration support (replacing a failed replica).

  /// Exempts every connection currently live on the host's TCP layer
  /// from bridging: when a bridge is attached to a host that has been
  /// serving alone, the in-flight connections cannot be replicated
  /// retroactively and must keep flowing untouched.
  void exclude_existing_connections();

  /// Re-arms merging against a replacement secondary after
  /// on_secondary_failed(): connections created from now on are bridged
  /// against `addr`; previously-solo connections stay solo.
  void resume_with_secondary(ip::Ipv4 addr) {
    cfg_.secondary_addr = addr;
    secondary_failed_ = false;
  }

  std::size_t connection_count() const { return conns_.size(); }
  std::size_t tombstone_count() const { return tombstones_.size(); }
  BridgeConn* find(const tcp::ConnKey& key);

  // Statistics (thin views over the host metrics registry — the
  // authoritative values live in obs::Registry under the bridge.* names).
  std::uint64_t merged_segments_sent() const;
  std::uint64_t retransmissions_forwarded() const;
  std::uint64_t stray_fin_acks() const;
  std::uint64_t divergences() const;

  // BridgeConnSink:
  void emit(const tcp::TcpSegment& seg, ip::Ipv4 src, ip::Ipv4 dst) override;
  void divergence(const tcp::ConnKey& key) override;
  void fully_closed(const tcp::ConnKey& key) override;

 private:
  tcp::TapVerdict outbound_tap(tcp::TcpSegment& seg, ip::Ipv4& src, ip::Ipv4& dst);
  tcp::TapVerdict inbound_tap(tcp::TcpSegment& seg, ip::Ipv4& src, ip::Ipv4& dst,
                              const ip::RxMeta& meta);
  bool is_failover(const tcp::ConnKey& key) const;
  BridgeConn& conn_for(const tcp::ConnKey& key);
  void schedule_removal(const tcp::ConnKey& key);
  bool tombstoned(const tcp::ConnKey& key) const;
  /// (Re)arms the sweep timer for the earliest tombstone deadline.
  void arm_tombstone_sweep(SimTime deadline);
  /// Timer-driven tombstone expiry: runs at the earliest deadline and
  /// re-arms for the next one, so an idle bridge still drains its table
  /// (the old expiry only ran opportunistically on incoming traffic).
  void sweep_tombstones();
  void ack_stray_fin_from_remote(const tcp::TcpSegment& seg, ip::Ipv4 remote,
                                 ip::Ipv4 local);
  void ack_stray_fin_from_secondary(const tcp::TcpSegment& seg);
  void note_event(obs::EventKind kind, const tcp::ConnKey& key,
                  std::string detail = {});
  void publish_gauges();

  apps::Host& host_;
  FailoverConfig cfg_;
  std::optional<ip::Ipv4> upstream_;
  /// Bridged-connection state, sharded by ConnKeyHash to mirror the TCP
  /// layer's lane layout (the bridge is part of the per-lane data path).
  /// Order-sensitive sweeps over it sort by key first: shard iteration
  /// order varies with the lane count and must never reach the wire.
  ShardedMap<tcp::ConnKey, std::unique_ptr<BridgeConn>, tcp::ConnKeyHash> conns_;
  /// Connections exempt from bridging (pre-dating this bridge).
  FlatSet<tcp::ConnKey, tcp::ConnKeyHash> excluded_;
  /// Recently closed connections (§8: the bridge must still acknowledge
  /// FIN retransmissions after deleting a connection's data structures),
  /// keyed to their expiry time. Drained by sweep_timer_.
  FlatMap<tcp::ConnKey, SimTime, tcp::ConnKeyHash> tombstones_;
  /// Newly created bridge connections, keyed to a handshake deadline. A
  /// client SYN creates a BridgeConn before the server TCP decides to
  /// accept — if the SYN dies in a backlog overflow (or the client
  /// vanishes), no teardown ever fires fully_closed, and without this
  /// sweep a SYN burst would grow conns_ forever. Entries whose
  /// connection completed the handshake are simply dropped at deadline;
  /// the rest are reaped (bridge.embryonic_reaped).
  FlatMap<tcp::ConnKey, SimTime, tcp::ConnKeyHash> embryonic_;
  SimDuration tombstone_ttl_;
  sim::Timer sweep_timer_;
  /// Connections awaiting deferred erase (batched into one event per
  /// simulation instant instead of one per removal — a mass close storm
  /// must not flood the scheduler).
  std::vector<tcp::ConnKey> pending_removals_;
  bool removal_scheduled_ = false;
  bool secondary_failed_ = false;
  tcp::TapId out_tap_ = 0, in_tap_ = 0;
  /// Liveness sentinel for deferred events (tombstone expiry, deferred
  /// connection removal) that may fire after the bridge was replaced.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  // Registry handles (resolved once in the constructor).
  obs::Counter* ctr_merged_ = nullptr;
  obs::Counter* ctr_stray_fin_acks_ = nullptr;
  obs::Counter* ctr_stray_fin_suppressed_ = nullptr;
  obs::Counter* ctr_divergences_ = nullptr;
  obs::Counter* ctr_embryonic_reaped_ = nullptr;
  obs::Counter* ctr_spoof_dropped_ = nullptr;
  obs::Gauge* gau_connections_ = nullptr;
  obs::Gauge* gau_tombstones_ = nullptr;
};

}  // namespace tfo::core
