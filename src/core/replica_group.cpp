#include "core/replica_group.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace tfo::core {

ReplicaGroup::ReplicaGroup(apps::Host& primary, apps::Host& secondary,
                           FailoverConfig cfg)
    : primary_host_(&primary), secondary_host_(&secondary), cfg_(std::move(cfg)) {
  if (cfg_.primary_addr.is_any()) cfg_.primary_addr = primary.address();
  if (cfg_.secondary_addr.is_any()) cfg_.secondary_addr = secondary.address();

  primary_bridge_ = std::make_unique<PrimaryBridge>(*primary_host_, cfg_);
  secondary_bridge_ = std::make_unique<SecondaryBridge>(*secondary_host_, cfg_);
  fd_primary_ = std::make_unique<FaultDetector>(
      *primary_host_, cfg_.secondary_addr, cfg_.heartbeat_period,
      cfg_.failure_timeout, ip::Ipv4::any(), cfg_.hb_auth_seed);
  fd_secondary_ = std::make_unique<FaultDetector>(
      *secondary_host_, cfg_.primary_addr, cfg_.heartbeat_period,
      cfg_.failure_timeout, ip::Ipv4::any(), cfg_.hb_auth_seed);

  wire_detectors();
}

void ReplicaGroup::wire_detectors() {
  // A crashed host's own timers still run in the simulation; its detector
  // hears nobody and would otherwise trigger recovery on a dead host.
  fd_primary_->on_peer_failed = [this] {
    if (primary_host_->failed()) return;
    primary_bridge_->on_secondary_failed();
  };
  fd_secondary_->on_peer_failed = [this] {
    if (secondary_host_->failed()) return;
    secondary_bridge_->take_over();
  };
}

void ReplicaGroup::start() {
  fd_primary_->start();
  fd_secondary_->start();
}

void ReplicaGroup::crash_primary() { primary_host_->fail(); }

void ReplicaGroup::crash_secondary() { secondary_host_->fail(); }

apps::Host& ReplicaGroup::current_server() {
  return secondary_bridge_->taken_over() ? *secondary_host_ : *primary_host_;
}

void ReplicaGroup::reintegrate_secondary(apps::Host& recruit) {
  TFO_ASSERT(!recruit.failed(), "cannot reintegrate a failed host");
  apps::Host& server = current_server();
  TFO_ASSERT(&server != &recruit, "the recruit must be a different host");
  TFO_LOG(kInfo, "group") << "reintegrating " << recruit.name()
                          << " behind " << server.name();

  cfg_.secondary_addr = recruit.address();

  if (secondary_bridge_->taken_over()) {
    // The old primary died and the survivor took over the service
    // address. It becomes the merge side of a fresh pair; connections it
    // has been serving alone stay unbridged.
    primary_host_ = &server;
    primary_bridge_ = std::make_unique<PrimaryBridge>(server, cfg_);
    primary_bridge_->exclude_existing_connections();
  } else {
    // The old secondary died (§6 recovery): the existing bridge resumes
    // merging for new connections; solo connections remain solo.
    primary_bridge_->resume_with_secondary(recruit.address());
  }

  secondary_host_ = &recruit;
  secondary_bridge_ = std::make_unique<SecondaryBridge>(recruit, cfg_);

  // Heartbeats from the serving side are stamped with the service address
  // (the survivor may be speaking through a takeover alias).
  fd_primary_ = std::make_unique<FaultDetector>(
      *primary_host_, cfg_.secondary_addr, cfg_.heartbeat_period,
      cfg_.failure_timeout, cfg_.primary_addr, cfg_.hb_auth_seed);
  fd_secondary_ = std::make_unique<FaultDetector>(
      *secondary_host_, cfg_.primary_addr, cfg_.heartbeat_period,
      cfg_.failure_timeout, ip::Ipv4::any(), cfg_.hb_auth_seed);
  wire_detectors();
  start();
}

}  // namespace tfo::core
