// IPv4 datagrams: structured form plus wire serialization with a real
// RFC 791 header checksum.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "ip/addr.hpp"

namespace tfo::ip {

/// IP protocol numbers the stack demultiplexes.
enum class Proto : std::uint8_t {
  kTcp = 6,
  /// Fault-detector heartbeats (an unassigned experimental number).
  kHeartbeat = 200,
};

struct IpDatagram {
  Ipv4 src;
  Ipv4 dst;
  Proto proto = Proto::kTcp;
  std::uint8_t ttl = 64;
  std::uint16_t id = 0;
  Bytes payload;

  static constexpr std::size_t kHeaderBytes = 20;

  std::size_t total_length() const { return kHeaderBytes + payload.size(); }

  /// Serializes header + payload; computes the header checksum.
  Bytes serialize() const;

  /// Parses a wire datagram; verifies the header checksum and length.
  /// Returns nullopt on malformed input.
  static std::optional<IpDatagram> parse(BytesView wire);
};

}  // namespace tfo::ip
