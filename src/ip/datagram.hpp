// IPv4 datagrams: structured form plus wire serialization with a real
// RFC 791 header checksum.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "ip/addr.hpp"
#include "wire/packet_buffer.hpp"

namespace tfo::ip {

/// IP protocol numbers the stack demultiplexes.
enum class Proto : std::uint8_t {
  /// Control messages (fragmentation-needed for PMTUD; see ip/icmp.hpp).
  kIcmp = 1,
  kTcp = 6,
  /// Fault-detector heartbeats (an unassigned experimental number).
  kHeartbeat = 200,
};

struct IpDatagram {
  Ipv4 src;
  Ipv4 dst;
  Proto proto = Proto::kTcp;
  std::uint8_t ttl = 64;
  std::uint16_t id = 0;
  /// Shared wire buffer: on rx this is a zero-copy slice of the frame the
  /// datagram arrived in; on tx its headroom receives the IP header.
  wire::PacketBuffer payload;

  static constexpr std::size_t kHeaderBytes = 20;

  std::size_t total_length() const { return kHeaderBytes + payload.size(); }

  /// Serializes header + payload into a fresh Bytes; computes the header
  /// checksum. Legacy copying path, kept as the byte-identical reference
  /// for to_wire() (and for cold callers that want a detached copy).
  Bytes serialize() const;

  /// Zero-copy serialization: prepends the IP header into the payload
  /// buffer's headroom (in place when the storage is exclusively owned)
  /// and returns the buffer. Consumes the payload — the datagram's
  /// payload is empty afterwards. Byte-identical to serialize().
  wire::PacketBuffer to_wire();

  /// Parses a wire datagram; verifies the header checksum and length.
  /// Returns nullopt on malformed input. Copies the payload out.
  static std::optional<IpDatagram> parse(BytesView wire);

  /// Zero-copy parse: the returned datagram's payload is a slice of
  /// `wire`'s storage (trimmed to total_length, so Ethernet minimum-frame
  /// padding is dropped here). No byte copies.
  static std::optional<IpDatagram> parse(const wire::PacketBuffer& wire);

  /// Disambiguator: a Bytes argument converts equally well to BytesView
  /// and PacketBuffer, so route it to the view overload explicitly.
  static std::optional<IpDatagram> parse(const Bytes& wire) {
    return parse(BytesView(wire));
  }
};

}  // namespace tfo::ip
