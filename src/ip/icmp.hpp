// ICMP messages — specifically the one that matters for TCP hardening:
// type 3 code 4, "fragmentation needed and DF set" (RFC 792/1191). A
// router on the path quotes the IP header and the first 8 transport bytes
// of the datagram it could not forward, plus the next-hop MTU. Because
// ICMP is neither authenticated nor connection-bound, an off-path
// attacker can forge these to clamp a victim's MSS or black-hole its path
// (the PMTUD attacks of the off-path literature); the TCP layer therefore
// validates the quoted bytes against in-flight segments and clamps the
// claimed MTU at TcpParams::min_pmtu before acting.
//
// Wire format (22 bytes, all fields big-endian):
//   [0]      type              [1]      code            [2..3]  next-hop MTU
//   [4..7]   quoted src IP     [8..11]  quoted dst IP   [12]    quoted proto
//   [13]     reserved
//   [14..21] quoted first 8 transport-header bytes — for TCP: src port (2),
//            dst port (2), sequence number (4).
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "ip/addr.hpp"

namespace tfo::ip {

constexpr std::uint8_t kIcmpDestUnreachable = 3;
constexpr std::uint8_t kIcmpFragNeeded = 4;  // code under type 3

struct IcmpMessage {
  std::uint8_t type = kIcmpDestUnreachable;
  std::uint8_t code = kIcmpFragNeeded;
  /// Next-hop MTU (frag-needed only; 0 for pre-RFC 1191 routers).
  std::uint16_t mtu = 0;

  // The quoted offending datagram: IP header essentials plus the first 8
  // transport bytes — for TCP that is both ports and the sequence number,
  // exactly what RFC 792 guarantees and what validation needs.
  Ipv4 quoted_src;
  Ipv4 quoted_dst;
  std::uint8_t quoted_proto = 6;
  std::uint16_t quoted_src_port = 0;
  std::uint16_t quoted_dst_port = 0;
  std::uint32_t quoted_seq = 0;

  static constexpr std::size_t kWireBytes = 22;

  Bytes serialize() const {
    Bytes b;
    b.reserve(kWireBytes);
    put_u8(b, type);
    put_u8(b, code);
    put_u16(b, mtu);
    put_u32(b, quoted_src.v);
    put_u32(b, quoted_dst.v);
    put_u8(b, quoted_proto);
    put_u8(b, 0);  // reserved
    put_u16(b, quoted_src_port);
    put_u16(b, quoted_dst_port);
    put_u32(b, quoted_seq);
    return b;
  }

  static std::optional<IcmpMessage> parse(BytesView w) {
    if (w.size() < kWireBytes) return std::nullopt;
    IcmpMessage m;
    m.type = get_u8(w, 0);
    m.code = get_u8(w, 1);
    m.mtu = get_u16(w, 2);
    m.quoted_src = Ipv4{get_u32(w, 4)};
    m.quoted_dst = Ipv4{get_u32(w, 8)};
    m.quoted_proto = get_u8(w, 12);
    m.quoted_src_port = get_u16(w, 14);
    m.quoted_dst_port = get_u16(w, 16);
    m.quoted_seq = get_u32(w, 18);
    return m;
  }
};

}  // namespace tfo::ip
