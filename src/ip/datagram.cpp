#include "ip/datagram.hpp"

#include <cstring>

#include "common/checksum.hpp"

namespace tfo::ip {

namespace {
/// Writes the 20-byte header (checksum included) for a datagram whose
/// total length is `tot_len` into `h`. Single writer shared by the
/// copying and in-place serialization paths so they stay byte-identical.
void write_header(std::uint8_t* h, const IpDatagram& d, std::size_t tot_len) {
  std::uint8_t* p = h;
  p = write_u8(p, 0x45);  // version 4, IHL 5
  p = write_u8(p, 0);     // TOS
  p = write_u16(p, static_cast<std::uint16_t>(tot_len));
  p = write_u16(p, d.id);
  p = write_u16(p, 0);  // flags/fragment: never fragmented (MSS <= MTU)
  p = write_u8(p, d.ttl);
  p = write_u8(p, static_cast<std::uint8_t>(d.proto));
  p = write_u16(p, 0);  // checksum placeholder
  p = write_u32(p, d.src.v);
  write_u32(p, d.dst.v);
  const std::uint16_t ck =
      inet_checksum(BytesView(h, IpDatagram::kHeaderBytes));
  write_u16(h + 10, ck);
}
}  // namespace

Bytes IpDatagram::serialize() const {
  Bytes out(total_length());
  write_header(out.data(), *this, total_length());
  if (!payload.empty()) {
    std::memcpy(out.data() + kHeaderBytes, payload.data(), payload.size());
  }
  return out;
}

wire::PacketBuffer IpDatagram::to_wire() {
  const std::size_t tot_len = total_length();
  wire::PacketBuffer w = std::move(payload);
  payload.clear();
  std::uint8_t* h = w.prepend(kHeaderBytes);
  write_header(h, *this, tot_len);
  return w;
}

namespace {
/// Header validation shared by both parse overloads; fills every field
/// except the payload. Returns the trimmed payload length, or nullopt.
std::optional<std::size_t> parse_header(BytesView wire, IpDatagram& d) {
  if (wire.size() < IpDatagram::kHeaderBytes) return std::nullopt;
  if (get_u8(wire, 0) != 0x45) return std::nullopt;  // no options supported
  const std::uint16_t tot_len = get_u16(wire, 2);
  if (tot_len < IpDatagram::kHeaderBytes || tot_len > wire.size()) {
    return std::nullopt;
  }
  if (inet_checksum(wire.subspan(0, IpDatagram::kHeaderBytes)) != 0) {
    return std::nullopt;
  }
  d.id = get_u16(wire, 4);
  d.ttl = get_u8(wire, 8);
  d.proto = static_cast<Proto>(get_u8(wire, 9));
  d.src = Ipv4{get_u32(wire, 12)};
  d.dst = Ipv4{get_u32(wire, 16)};
  return tot_len - IpDatagram::kHeaderBytes;
}
}  // namespace

std::optional<IpDatagram> IpDatagram::parse(BytesView wire) {
  IpDatagram d;
  const auto payload_len = parse_header(wire, d);
  if (!payload_len) return std::nullopt;
  d.payload =
      wire::PacketBuffer::copy_of(wire.subspan(kHeaderBytes, *payload_len));
  return d;
}

std::optional<IpDatagram> IpDatagram::parse(const wire::PacketBuffer& wire) {
  IpDatagram d;
  const auto payload_len = parse_header(wire.view(), d);
  if (!payload_len) return std::nullopt;
  // Zero-copy: slice the arriving buffer past the header and drop any
  // Ethernet minimum-frame padding via total_length.
  d.payload = wire;
  d.payload.trim_front(kHeaderBytes);
  d.payload.trim_to(*payload_len);
  return d;
}

}  // namespace tfo::ip
