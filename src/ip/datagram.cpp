#include "ip/datagram.hpp"

#include "common/checksum.hpp"

namespace tfo::ip {

Bytes IpDatagram::serialize() const {
  Bytes out;
  out.reserve(total_length());
  put_u8(out, 0x45);  // version 4, IHL 5
  put_u8(out, 0);     // TOS
  put_u16(out, static_cast<std::uint16_t>(total_length()));
  put_u16(out, id);
  put_u16(out, 0);  // flags/fragment: never fragmented (MSS <= MTU)
  put_u8(out, ttl);
  put_u8(out, static_cast<std::uint8_t>(proto));
  put_u16(out, 0);  // checksum placeholder
  put_u32(out, src.v);
  put_u32(out, dst.v);
  const std::uint16_t ck = inet_checksum(BytesView(out.data(), kHeaderBytes));
  set_u16(out, 10, ck);
  append(out, payload);
  return out;
}

std::optional<IpDatagram> IpDatagram::parse(BytesView wire) {
  if (wire.size() < kHeaderBytes) return std::nullopt;
  if (get_u8(wire, 0) != 0x45) return std::nullopt;  // no options supported
  const std::uint16_t tot_len = get_u16(wire, 2);
  if (tot_len < kHeaderBytes || tot_len > wire.size()) return std::nullopt;
  if (inet_checksum(wire.subspan(0, kHeaderBytes)) != 0) return std::nullopt;
  IpDatagram d;
  d.id = get_u16(wire, 4);
  d.ttl = get_u8(wire, 8);
  d.proto = static_cast<Proto>(get_u8(wire, 9));
  d.src = Ipv4{get_u32(wire, 12)};
  d.dst = Ipv4{get_u32(wire, 16)};
  d.payload.assign(wire.begin() + kHeaderBytes, wire.begin() + tot_len);
  return d;
}

}  // namespace tfo::ip
