#include "ip/arp.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace tfo::ip {

namespace {

constexpr std::uint16_t kOpRequest = 1;
constexpr std::uint16_t kOpReply = 2;

// RFC 826 packet for Ethernet/IPv4: 28 bytes, written into a pre-sized
// buffer (no push_back growth).
Bytes serialize_arp(std::uint16_t op, net::MacAddress sha, Ipv4 spa,
                    net::MacAddress tha, Ipv4 tpa) {
  Bytes out(28);
  std::uint8_t* p = out.data();
  p = write_u16(p, 1);       // htype: Ethernet
  p = write_u16(p, 0x0800);  // ptype: IPv4
  p = write_u8(p, 6);        // hlen
  p = write_u8(p, 4);        // plen
  p = write_u16(p, op);
  p = std::copy(sha.b.begin(), sha.b.end(), p);
  p = write_u32(p, spa.v);
  p = std::copy(tha.b.begin(), tha.b.end(), p);
  write_u32(p, tpa.v);
  return out;
}

struct ArpPacket {
  std::uint16_t op;
  net::MacAddress sha, tha;
  Ipv4 spa, tpa;
};

bool parse_arp(BytesView wire, ArpPacket* out) {
  if (wire.size() < 28) return false;
  if (get_u16(wire, 0) != 1 || get_u16(wire, 2) != 0x0800) return false;
  out->op = get_u16(wire, 6);
  std::copy_n(wire.begin() + 8, 6, out->sha.b.begin());
  out->spa = Ipv4{get_u32(wire, 14)};
  std::copy_n(wire.begin() + 18, 6, out->tha.b.begin());
  out->tpa = Ipv4{get_u32(wire, 24)};
  return true;
}

}  // namespace

ArpEntity::ArpEntity(sim::Simulator& sim, net::Nic& nic, LocalAddressesFn local_addrs,
                     ArpParams params)
    : sim_(sim), nic_(nic), local_addrs_(std::move(local_addrs)), params_(params) {}

bool ArpEntity::lookup(Ipv4 addr, net::MacAddress* out) const {
  auto it = cache_.find(addr);
  if (it == cache_.end()) return false;
  if (out != nullptr) *out = it->second;
  return true;
}

void ArpEntity::resolve(Ipv4 addr, ResolveCallback cb) {
  if (auto it = cache_.find(addr); it != cache_.end()) {
    cb(it->second);
    return;
  }
  auto [it, fresh] = pending_.try_emplace(addr);
  it->second.callbacks.push_back(std::move(cb));
  if (fresh) {
    it->second.retries = 0;
    send_request(addr);
  }
}

void ArpEntity::send_request(Ipv4 addr) {
  const auto locals = local_addrs_();
  const Ipv4 spa = locals.empty() ? Ipv4::any() : locals.front();
  net::EthernetFrame frame;
  frame.dst = net::MacAddress::broadcast();
  frame.type = net::EtherType::kArp;
  frame.payload = serialize_arp(kOpRequest, nic_.mac(), spa, net::MacAddress{}, addr);
  nic_.send(std::move(frame));
  auto& p = pending_[addr];
  p.timer = sim_.schedule_after(params_.request_timeout,
                                [this, addr] { on_request_timeout(addr); });
}

void ArpEntity::on_request_timeout(Ipv4 addr) {
  auto it = pending_.find(addr);
  if (it == pending_.end()) return;
  if (++it->second.retries > params_.max_retries) {
    TFO_LOG(kWarn, "arp") << nic_.name() << " resolution failed for " << addr.str();
    pending_.erase(it);
    return;
  }
  send_request(addr);
}

void ArpEntity::learn(Ipv4 addr, net::MacAddress mac, bool update_only) {
  auto apply = [this, addr, mac, update_only] {
    auto it = cache_.find(addr);
    if (it != cache_.end()) {
      it->second = mac;
    } else if (!update_only) {
      cache_[addr] = mac;
    } else {
      return;
    }
    // Complete any resolutions waiting on this mapping.
    if (auto p = pending_.find(addr); p != pending_.end()) {
      sim_.cancel(p->second.timer);
      auto callbacks = std::move(p->second.callbacks);
      pending_.erase(p);
      for (auto& cb : callbacks) cb(mac);
    }
  };
  if (params_.update_latency > 0) {
    sim_.schedule_after(params_.update_latency, apply);
  } else {
    apply();
  }
}

void ArpEntity::handle_frame(const net::EthernetFrame& frame) {
  ArpPacket pkt;
  if (!parse_arp(frame.payload, &pkt)) return;
  const auto locals = local_addrs_();
  const bool for_us =
      std::find(locals.begin(), locals.end(), pkt.tpa) != locals.end();
  const bool have_pending = pending_.contains(pkt.spa);

  // RFC 826 merge: update an existing entry for the sender unconditionally;
  // create one only if the packet targets us or we asked for it. Gratuitous
  // ARP (spa == tpa) rides on the update path, which is exactly how the §5
  // IP takeover flips the client/router tables to the secondary's MAC.
  if (!pkt.spa.is_any()) {
    learn(pkt.spa, pkt.sha, /*update_only=*/!(for_us || have_pending));
  }

  if (pkt.op == kOpRequest && for_us) {
    net::EthernetFrame reply;
    reply.dst = pkt.sha;
    reply.type = net::EtherType::kArp;
    reply.payload = serialize_arp(kOpReply, nic_.mac(), pkt.tpa, pkt.sha, pkt.spa);
    nic_.send(std::move(reply));
  }
}

void ArpEntity::announce(Ipv4 addr) {
  net::EthernetFrame frame;
  frame.dst = net::MacAddress::broadcast();
  frame.type = net::EtherType::kArp;
  // Gratuitous request: spa == tpa == announced address.
  frame.payload = serialize_arp(kOpRequest, nic_.mac(), addr, net::MacAddress{}, addr);
  nic_.send(std::move(frame));
}

}  // namespace tfo::ip
