// A multi-homed IP router joining network segments.
//
// The paper's WAN FTP experiment (Figure 6) places a router between the
// server LAN and a wide-area link; the router's ARP table is also the one
// whose update latency defines the §5 takeover interval T.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ip/arp.hpp"
#include "ip/ip_layer.hpp"
#include "net/medium.hpp"
#include "net/nic.hpp"
#include "sim/simulator.hpp"

namespace tfo::ip {

class Router {
 public:
  Router(sim::Simulator& sim, std::string name);

  /// Attaches a port to `medium` with the given address/prefix.
  /// Returns the interface index.
  std::size_t add_port(net::Medium& medium, Ipv4 addr, int prefix_len,
                       net::NicParams nic_params = {}, ArpParams arp_params = {});

  IpLayer& ip() { return ip_; }
  net::Nic& nic(std::size_t port) { return *ports_.at(port)->nic; }
  ArpEntity& arp(std::size_t port) { return *ports_.at(port)->arp; }
  const std::string& name() const { return name_; }

 private:
  struct Port {
    std::unique_ptr<net::Nic> nic;
    std::unique_ptr<ArpEntity> arp;
  };

  sim::Simulator& sim_;
  std::string name_;
  IpLayer ip_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::uint32_t next_mac_id_;
  static std::uint32_t next_router_id_;
};

}  // namespace tfo::ip
