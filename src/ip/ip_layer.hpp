// The IP layer: routing, protocol demux, and — crucially for this paper —
// the hook chains where the failover bridge inserts itself between TCP
// and IP (the paper's "bridge" sublayer, §1).
//
// Inbound hooks run after header validation but *before* the
// local-destination check, so a hook can rewrite the destination address
// (secondary bridge, §3.1) or consume a datagram outright (primary bridge
// demultiplexing the secondary's diverted segments, §3.2). Outbound hooks
// run before routing/ARP so a hook can divert or hold traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/logging.hpp"
#include "ip/addr.hpp"
#include "ip/arp.hpp"
#include "ip/datagram.hpp"
#include "net/nic.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"

namespace tfo::ip {

enum class HookVerdict {
  kContinue,  // proceed with normal processing (possibly mutated)
  kConsume,   // the hook took responsibility; stop processing
  kDrop,      // discard silently
};

/// Link-level metadata accompanying a received datagram.
struct RxMeta {
  bool to_our_mac = true;  // false for promiscuous captures
  net::MacAddress src_mac;
  /// The NIC's GRO engine already verified the transport checksum
  /// (receive offload); protocol handlers may skip re-verification.
  bool checksums_verified = false;
};

using InboundHook = std::function<HookVerdict(IpDatagram&, const RxMeta&)>;
using OutboundHook = std::function<HookVerdict(IpDatagram&)>;
using HookId = std::uint64_t;

/// Handler for a locally delivered datagram of a registered protocol.
using ProtoHandler = std::function<void(const IpDatagram&, const RxMeta&)>;

class IpLayer {
 public:
  struct Interface {
    net::Nic* nic = nullptr;
    ArpEntity* arp = nullptr;
    Ipv4 addr;
    int prefix_len = 24;
  };

  explicit IpLayer(sim::Simulator& sim) : sim_(sim) {}

  /// Adds an interface; returns its index.
  std::size_t add_interface(Interface iface);
  Interface& interface(std::size_t idx) { return interfaces_.at(idx); }
  std::size_t interface_count() const { return interfaces_.size(); }

  /// Routes everything off-subnet via `gateway` on interface `iface_idx`.
  void set_default_gateway(Ipv4 gateway, std::size_t iface_idx = 0);

  /// All local addresses (interface addresses plus takeover aliases).
  std::vector<Ipv4> local_addresses() const;
  bool is_local(Ipv4 addr) const;

  /// Adds an address alias (IP takeover: the secondary claims a_p, §5.5).
  void add_alias(Ipv4 addr) { aliases_.push_back(addr); }
  void remove_alias(Ipv4 addr);

  /// Primary address of the first interface.
  Ipv4 address() const { return interfaces_.empty() ? Ipv4::any() : interfaces_[0].addr; }

  /// Sends a datagram. `src` may be any() to use the egress interface
  /// address. Payload must already be serialized for the wire (a Bytes
  /// argument converts implicitly, adopting its storage).
  void send(Proto proto, Ipv4 src, Ipv4 dst, wire::PacketBuffer payload);

  /// Sends a fully formed datagram (bridge re-emission path).
  void send_datagram(IpDatagram dgram);

  /// Entry point from the host's ethertype demux.
  void handle_frame(const net::EthernetFrame& frame, bool to_our_mac);

  void register_protocol(Proto proto, ProtoHandler handler);

  HookId add_inbound_hook(InboundHook hook);
  HookId add_outbound_hook(OutboundHook hook);
  void remove_hook(HookId id);

  /// Routers forward datagrams not addressed to them.
  void set_forwarding(bool on) { forwarding_ = on; }

  std::uint64_t datagrams_sent() const { return tx_count_; }
  std::uint64_t datagrams_delivered() const { return rx_delivered_; }
  std::uint64_t datagrams_dropped() const { return rx_dropped_; }
  /// Frames rejected by header validation (bad checksum, malformed) —
  /// unlike `datagrams_dropped`, never incremented for routing decisions,
  /// so it cleanly witnesses corrupted frames caught at the receive path.
  std::uint64_t datagrams_parse_failed() const { return rx_parse_failed_; }

  /// Attaches this layer to a host's observability hub (null detaches);
  /// mirrors parse failures as `ip.datagrams_parse_failed`.
  void set_observability(obs::Hub* hub);

 private:
  struct Route {
    Ipv4 next_hop;           // any() == deliver directly to dst
    std::size_t iface_idx;
  };
  std::optional<Route> route_for(Ipv4 dst) const;
  void transmit_on(std::size_t iface_idx, Ipv4 next_hop, IpDatagram dgram);
  void forward(IpDatagram dgram);

  sim::Simulator& sim_;
  std::vector<Interface> interfaces_;
  std::vector<Ipv4> aliases_;
  std::optional<std::pair<Ipv4, std::size_t>> default_gw_;
  std::unordered_map<std::uint8_t, ProtoHandler> protocols_;
  std::vector<std::pair<HookId, InboundHook>> inbound_hooks_;
  std::vector<std::pair<HookId, OutboundHook>> outbound_hooks_;
  HookId next_hook_id_ = 1;
  bool forwarding_ = false;
  std::uint16_t next_ip_id_ = 1;
  std::uint64_t tx_count_ = 0, rx_delivered_ = 0, rx_dropped_ = 0;
  std::uint64_t rx_parse_failed_ = 0;
  obs::Counter* ctr_parse_failed_ = nullptr;
};

}  // namespace tfo::ip
