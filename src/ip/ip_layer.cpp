#include "ip/ip_layer.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace tfo::ip {

std::size_t IpLayer::add_interface(Interface iface) {
  TFO_ASSERT(iface.nic != nullptr && iface.arp != nullptr,
             "interface requires a NIC and an ARP entity");
  interfaces_.push_back(iface);
  return interfaces_.size() - 1;
}

void IpLayer::set_default_gateway(Ipv4 gateway, std::size_t iface_idx) {
  default_gw_ = {gateway, iface_idx};
}

void IpLayer::set_observability(obs::Hub* hub) {
  if (!hub) {
    ctr_parse_failed_ = nullptr;
    return;
  }
  ctr_parse_failed_ = &hub->registry.counter("ip.datagrams_parse_failed");
  ctr_parse_failed_->inc(rx_parse_failed_);
}

std::vector<Ipv4> IpLayer::local_addresses() const {
  std::vector<Ipv4> out;
  out.reserve(interfaces_.size() + aliases_.size());
  for (const auto& iface : interfaces_) out.push_back(iface.addr);
  out.insert(out.end(), aliases_.begin(), aliases_.end());
  return out;
}

bool IpLayer::is_local(Ipv4 addr) const {
  for (const auto& iface : interfaces_) {
    if (iface.addr == addr) return true;
  }
  return std::find(aliases_.begin(), aliases_.end(), addr) != aliases_.end();
}

void IpLayer::remove_alias(Ipv4 addr) {
  aliases_.erase(std::remove(aliases_.begin(), aliases_.end(), addr), aliases_.end());
}

std::optional<IpLayer::Route> IpLayer::route_for(Ipv4 dst) const {
  for (std::size_t i = 0; i < interfaces_.size(); ++i) {
    if (in_subnet(dst, interfaces_[i].addr, interfaces_[i].prefix_len)) {
      return Route{Ipv4::any(), i};
    }
  }
  if (default_gw_) return Route{default_gw_->first, default_gw_->second};
  return std::nullopt;
}

void IpLayer::send(Proto proto, Ipv4 src, Ipv4 dst,
                   wire::PacketBuffer payload) {
  IpDatagram d;
  d.proto = proto;
  d.src = src;
  d.dst = dst;
  d.id = next_ip_id_++;
  d.payload = std::move(payload);
  send_datagram(std::move(d));
}

void IpLayer::send_datagram(IpDatagram dgram) {
  for (auto& [id, hook] : outbound_hooks_) {
    switch (hook(dgram)) {
      case HookVerdict::kContinue: break;
      case HookVerdict::kConsume: return;
      case HookVerdict::kDrop: return;
    }
  }
  const auto route = route_for(dgram.dst);
  if (!route) {
    TFO_LOG(kWarn, "ip") << "no route to " << dgram.dst.str();
    return;
  }
  if (dgram.src.is_any()) dgram.src = interfaces_[route->iface_idx].addr;
  const Ipv4 next_hop = route->next_hop.is_any() ? dgram.dst : route->next_hop;
  transmit_on(route->iface_idx, next_hop, std::move(dgram));
}

void IpLayer::transmit_on(std::size_t iface_idx, Ipv4 next_hop, IpDatagram dgram) {
  Interface& iface = interfaces_[iface_idx];
  ++tx_count_;
  // Zero-copy: the IP header goes into the payload buffer's headroom; the
  // resolve callback moves the buffer into the frame (a share at worst —
  // never a byte copy).
  wire::PacketBuffer wire = dgram.to_wire();
  iface.arp->resolve(next_hop, [nic = iface.nic, wire = std::move(wire)](
                                   net::MacAddress mac) mutable {
    net::EthernetFrame frame;
    frame.dst = mac;
    frame.type = net::EtherType::kIpv4;
    frame.payload = std::move(wire);
    nic->send(std::move(frame));
  });
}

void IpLayer::handle_frame(const net::EthernetFrame& frame, bool to_our_mac) {
  auto parsed = IpDatagram::parse(frame.payload);
  if (!parsed) {
    ++rx_dropped_;
    ++rx_parse_failed_;
    if (ctr_parse_failed_) ctr_parse_failed_->inc();
    return;
  }
  IpDatagram dgram = std::move(*parsed);
  RxMeta meta{to_our_mac, frame.src, frame.checksums_verified};

  for (auto& [id, hook] : inbound_hooks_) {
    switch (hook(dgram, meta)) {
      case HookVerdict::kContinue: break;
      case HookVerdict::kConsume: return;
      case HookVerdict::kDrop:
        ++rx_dropped_;
        return;
    }
  }

  if (is_local(dgram.dst)) {
    auto it = protocols_.find(static_cast<std::uint8_t>(dgram.proto));
    if (it == protocols_.end()) {
      ++rx_dropped_;
      return;
    }
    ++rx_delivered_;
    it->second(dgram, meta);
    return;
  }

  // Not addressed to a frame we own at L2 either: only routers proceed.
  if (forwarding_ && to_our_mac) {
    forward(std::move(dgram));
    return;
  }
  ++rx_dropped_;
}

void IpLayer::forward(IpDatagram dgram) {
  if (dgram.ttl <= 1) {
    ++rx_dropped_;
    return;
  }
  dgram.ttl -= 1;
  const auto route = route_for(dgram.dst);
  if (!route) {
    ++rx_dropped_;
    return;
  }
  const Ipv4 next_hop = route->next_hop.is_any() ? dgram.dst : route->next_hop;
  transmit_on(route->iface_idx, next_hop, std::move(dgram));
}

void IpLayer::register_protocol(Proto proto, ProtoHandler handler) {
  protocols_[static_cast<std::uint8_t>(proto)] = std::move(handler);
}

HookId IpLayer::add_inbound_hook(InboundHook hook) {
  const HookId id = next_hook_id_++;
  inbound_hooks_.emplace_back(id, std::move(hook));
  return id;
}

HookId IpLayer::add_outbound_hook(OutboundHook hook) {
  const HookId id = next_hook_id_++;
  outbound_hooks_.emplace_back(id, std::move(hook));
  return id;
}

void IpLayer::remove_hook(HookId id) {
  auto drop = [id](auto& vec) {
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [id](const auto& p) { return p.first == id; }),
              vec.end());
  };
  drop(inbound_hooks_);
  drop(outbound_hooks_);
}

}  // namespace tfo::ip
