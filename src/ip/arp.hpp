// Address Resolution Protocol (RFC 826) with gratuitous-ARP support.
//
// IP takeover (§5 of the paper) works by the secondary claiming the
// primary's IP address and broadcasting a gratuitous ARP; peers that hold
// a cache entry for that address rewrite it to the new MAC. The interval T
// the paper analyses — failure to ARP-table update — can be stretched via
// `ArpParams::update_latency` to study its effect on failover time.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "ip/addr.hpp"
#include "net/frame.hpp"
#include "net/nic.hpp"
#include "sim/simulator.hpp"

namespace tfo::ip {

struct ArpParams {
  /// Retransmit interval for unanswered requests.
  SimDuration request_timeout = milliseconds(500);
  int max_retries = 3;
  /// Delay between receiving an ARP packet and the cache update becoming
  /// visible (models switch/router table-update latency; default: none).
  SimDuration update_latency = 0;
};

class ArpEntity {
 public:
  using ResolveCallback = std::function<void(net::MacAddress)>;
  /// Supplies the set of local IPv4 addresses this entity answers for
  /// (queried per packet so IP takeover is picked up immediately).
  using LocalAddressesFn = std::function<std::vector<Ipv4>()>;

  ArpEntity(sim::Simulator& sim, net::Nic& nic, LocalAddressesFn local_addrs,
            ArpParams params = {});

  /// Resolves `addr` to a MAC. Invokes `cb` immediately on a cache hit,
  /// otherwise after the request/reply exchange. On resolution failure the
  /// callback is dropped (IP datagrams are best-effort).
  void resolve(Ipv4 addr, ResolveCallback cb);

  /// Handles an incoming ARP frame (called by the host's ethertype demux).
  void handle_frame(const net::EthernetFrame& frame);

  /// Broadcasts a gratuitous ARP announcing `addr` at this NIC's MAC.
  void announce(Ipv4 addr);

  /// Pre-installs a static entry (benches warm caches like the paper did).
  void add_static(Ipv4 addr, net::MacAddress mac) { cache_[addr] = mac; }

  bool lookup(Ipv4 addr, net::MacAddress* out) const;
  std::size_t cache_size() const { return cache_.size(); }

 private:
  struct Pending {
    std::vector<ResolveCallback> callbacks;
    int retries = 0;
    sim::EventId timer = sim::kNoEvent;
  };

  void send_request(Ipv4 addr);
  void on_request_timeout(Ipv4 addr);
  void learn(Ipv4 addr, net::MacAddress mac, bool update_only);

  sim::Simulator& sim_;
  net::Nic& nic_;
  LocalAddressesFn local_addrs_;
  ArpParams params_;
  std::unordered_map<Ipv4, net::MacAddress> cache_;
  std::unordered_map<Ipv4, Pending> pending_;
};

}  // namespace tfo::ip
