// IPv4 addresses and prefixes.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>

namespace tfo::ip {

struct Ipv4 {
  std::uint32_t v = 0;  // host byte order

  static constexpr Ipv4 any() { return Ipv4{0}; }

  /// Parses dotted-quad text; returns any() on malformed input.
  static Ipv4 parse(std::string_view s) {
    unsigned a = 0, b = 0, c = 0, d = 0;
    char tail = 0;
    const std::string str(s);
    if (std::sscanf(str.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail) != 4 ||
        a > 255 || b > 255 || c > 255 || d > 255) {
      return any();
    }
    return Ipv4{(a << 24) | (b << 16) | (c << 8) | d};
  }

  std::string str() const {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (v >> 24) & 0xff,
                  (v >> 16) & 0xff, (v >> 8) & 0xff, v & 0xff);
    return buf;
  }

  bool is_any() const { return v == 0; }

  friend bool operator==(const Ipv4&, const Ipv4&) = default;
  friend auto operator<=>(const Ipv4&, const Ipv4&) = default;
};

/// True if `addr` falls inside `network`/`prefix_len`.
constexpr bool in_subnet(Ipv4 addr, Ipv4 network, int prefix_len) {
  if (prefix_len <= 0) return true;
  const std::uint32_t mask =
      prefix_len >= 32 ? 0xffffffffu : ~((1u << (32 - prefix_len)) - 1);
  return (addr.v & mask) == (network.v & mask);
}

}  // namespace tfo::ip

template <>
struct std::hash<tfo::ip::Ipv4> {
  std::size_t operator()(const tfo::ip::Ipv4& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.v);
  }
};
