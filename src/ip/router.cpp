#include "ip/router.hpp"

namespace tfo::ip {

std::uint32_t Router::next_router_id_ = 0x70000000;

Router::Router(sim::Simulator& sim, std::string name)
    : sim_(sim), name_(std::move(name)), ip_(sim) {
  ip_.set_forwarding(true);
  next_mac_id_ = next_router_id_;
  next_router_id_ += 0x100;
}

std::size_t Router::add_port(net::Medium& medium, Ipv4 addr, int prefix_len,
                             net::NicParams nic_params, ArpParams arp_params) {
  auto port = std::make_unique<Port>();
  port->nic = std::make_unique<net::Nic>(
      sim_, name_ + ".eth" + std::to_string(ports_.size()),
      net::MacAddress::from_id(next_mac_id_++), nic_params);
  port->arp = std::make_unique<ArpEntity>(
      sim_, *port->nic, [this] { return ip_.local_addresses(); }, arp_params);

  net::Nic* nic = port->nic.get();
  ArpEntity* arp = port->arp.get();
  nic->set_rx_handler([this, arp](const net::EthernetFrame& frame, bool to_us) {
    switch (frame.type) {
      case net::EtherType::kArp:
        arp->handle_frame(frame);
        break;
      case net::EtherType::kIpv4:
        ip_.handle_frame(frame, to_us);
        break;
    }
  });
  nic->attach(medium);

  const std::size_t idx =
      ip_.add_interface({nic, arp, addr, prefix_len});
  ports_.push_back(std::move(port));
  return idx;
}

}  // namespace tfo::ip
