// Experiment E3: micro-benchmarks of the hot paths (google-benchmark).
//
//  * full Internet checksum vs the paper's incremental update (§3.1) —
//    the reason the bridge patches instead of recomputing;
//  * TCP segment serialize/parse;
//  * OutputQueue insert/extract (the §3.2 merge data structure);
//  * simulator event throughput.
#include <benchmark/benchmark.h>

#include "common/checksum.hpp"
#include "core/output_queue.hpp"
#include "sim/simulator.hpp"
#include "tcp/segment.hpp"

namespace {

using namespace tfo;

Bytes make_payload(std::size_t n) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(i * 31);
  return b;
}

void BM_ChecksumFull(benchmark::State& state) {
  const Bytes data = make_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(inet_checksum(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ChecksumFull)->Arg(64)->Arg(536)->Arg(1460);

void BM_ChecksumIncrementalUpdate(benchmark::State& state) {
  // The §3.1 address rewrite: one 32-bit pseudo-header field changes.
  std::uint16_t ck = 0x1234;
  std::uint32_t a = 0x0a000001, b = 0x0a000002;
  for (auto _ : state) {
    ck = checksum_update32(ck, a, b);
    benchmark::DoNotOptimize(ck);
    std::swap(a, b);
  }
}
BENCHMARK(BM_ChecksumIncrementalUpdate);

void BM_SegmentSerialize(benchmark::State& state) {
  tcp::TcpSegment seg;
  seg.src_port = 7777;
  seg.dst_port = 49152;
  seg.seq = 123456;
  seg.ack = 654321;
  seg.flags = tcp::Flags::kAck;
  seg.window = 65535;
  seg.payload = make_payload(static_cast<std::size_t>(state.range(0)));
  const ip::Ipv4 src = ip::Ipv4::parse("10.0.0.1");
  const ip::Ipv4 dst = ip::Ipv4::parse("10.0.0.10");
  for (auto _ : state) {
    benchmark::DoNotOptimize(seg.serialize(src, dst));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SegmentSerialize)->Arg(0)->Arg(1460);

void BM_SegmentParse(benchmark::State& state) {
  tcp::TcpSegment seg;
  seg.src_port = 7777;
  seg.dst_port = 49152;
  seg.flags = tcp::Flags::kAck;
  seg.payload = make_payload(1460);
  const ip::Ipv4 src = ip::Ipv4::parse("10.0.0.1");
  const ip::Ipv4 dst = ip::Ipv4::parse("10.0.0.10");
  const Bytes wire = seg.serialize(src, dst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tcp::TcpSegment::parse(wire, src, dst));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1460);
}
BENCHMARK(BM_SegmentParse);

void BM_OutputQueueMatchCycle(benchmark::State& state) {
  // The steady-state §3.2 merge: insert a segment's bytes from each
  // replica, extract the matched run.
  const std::size_t n = 1460;
  const Bytes payload = make_payload(n);
  core::OutputQueue p, s;
  std::uint64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.insert(off, payload));
    benchmark::DoNotOptimize(s.insert(off, payload));
    benchmark::DoNotOptimize(p.extract(off, n));
    benchmark::DoNotOptimize(s.extract(off, n));
    off += n;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_OutputQueueMatchCycle);

void BM_OutputQueueFragmented(benchmark::State& state) {
  // Worst-ish case: many small out-of-order runs that later coalesce.
  const std::size_t runs = static_cast<std::size_t>(state.range(0));
  const Bytes piece = make_payload(64);
  for (auto _ : state) {
    core::OutputQueue q;
    for (std::size_t i = 0; i < runs; ++i) {
      // Even offsets first, then odd: maximal fragmentation then merge.
      const std::uint64_t off = (i % 2 == 0 ? i : runs - i) * 128;
      benchmark::DoNotOptimize(q.insert(off, piece));
    }
    benchmark::DoNotOptimize(q.total_bytes());
  }
}
BENCHMARK(BM_OutputQueueFragmented)->Arg(64)->Arg(512);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int count = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(static_cast<SimTime>(i), [&count] { ++count; });
    }
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_SimulatorTimerChurn(benchmark::State& state) {
  // Schedule-then-cancel, the RTO-timer pattern on every ACK.
  sim::Simulator sim;
  for (auto _ : state) {
    const auto id = sim.schedule_after(1'000'000, [] {});
    sim.cancel(id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorTimerChurn);

}  // namespace

BENCHMARK_MAIN();
