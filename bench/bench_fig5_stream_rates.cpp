// Figure 5: send and receive rates for long data streams (100 MBytes),
// standard TCP vs TCP Failover.
//
// Paper result (KB/s):
//                 standard TCP    TCP Failover
//   send rate        7833.70         5835.80
//   receive rate     8707.88         3510.03
//
// The shape to reproduce: the receive (server→client) rate collapses to
// well under half under failover because every reply crosses the
// half-duplex wire twice and the merge adds per-segment latency, while
// the send (client→server) rate degrades more mildly — the client's data
// reaches both replicas in one transmission (promiscuous snooping) and
// only the min-ACK discipline slows it.
#include "bench_util.hpp"

namespace tfo::bench {
namespace {

constexpr std::size_t kStreamBytes = 100 * 1000 * 1000;

double send_rate_kbs(bool failover) {
  // Declared before the servers: the LAN (and its simulator) must
  // outlive the servers' connections at scope exit.
  Testbed t;
  std::unique_ptr<apps::SinkServer> s1, s2;
  t = make_testbed(failover, [&](apps::Host& h) {
    auto s = std::make_unique<apps::SinkServer>(h.tcp(), kPort);
    (s1 ? s2 : s1) = std::move(s);
  });
  t.sim().run_for(milliseconds(100));

  auto conn = t.client().tcp().connect(t.server_addr(), kPort, {.nodelay = true});
  bool established = false;
  conn->on_established = [&] { established = true; };
  t.run_until([&] { return established; }, seconds(10));

  // Stream in 256KB application writes, keeping the send buffer fed.
  const SimTime start = t.sim().now();
  std::size_t queued = 0;
  std::function<void()> feed = [&] {
    if (queued >= kStreamBytes) return;
    const std::size_t n = std::min<std::size_t>(256 * 1024, kStreamBytes - queued);
    queued += n;
    conn->send(apps::deterministic_payload(n, static_cast<std::uint32_t>(queued)),
               [&] { feed(); });
  };
  feed();
  if (!t.run_until([&] { return s1->bytes_received() >= kStreamBytes; },
                   seconds(3600))) {
    return -1;
  }
  const double secs = to_seconds(static_cast<SimDuration>(t.sim().now() - start));
  return static_cast<double>(kStreamBytes) / 1000.0 / secs;
}

double receive_rate_kbs(bool failover) {
  // Declared before the servers: the LAN (and its simulator) must
  // outlive the servers' connections at scope exit.
  Testbed t;
  std::unique_ptr<apps::BlastServer> b1, b2;
  t = make_testbed(failover, [&](apps::Host& h) {
    auto b = std::make_unique<apps::BlastServer>(h.tcp(), kPort);
    (b1 ? b2 : b1) = std::move(b);
  });
  t.sim().run_for(milliseconds(100));

  auto conn = t.client().tcp().connect(t.server_addr(), kPort, {.nodelay = true});
  bool established = false;
  conn->on_established = [&] { established = true; };
  t.run_until([&] { return established; }, seconds(10));

  std::size_t received = 0;
  conn->on_readable = [&] {
    Bytes b;
    conn->recv(b);
    received += b.size();
  };
  const SimTime start = t.sim().now();
  char req[48];
  std::snprintf(req, sizeof(req), "GET %zu 1\n", kStreamBytes);
  conn->send(to_bytes(req));
  if (!t.run_until([&] { return received >= kStreamBytes; }, seconds(3600))) return -1;
  const double secs = to_seconds(static_cast<SimDuration>(t.sim().now() - start));
  return static_cast<double>(kStreamBytes) / 1000.0 / secs;
}

}  // namespace
}  // namespace tfo::bench

int main() {
  using namespace tfo;
  using namespace tfo::bench;
  print_header("Figure 5: send/receive rates for 100 MB data streams",
               "paper Fig. 5 — send 7833.70 vs 5835.80, recv 8707.88 vs 3510.03 KB/s");

  const double send_std = send_rate_kbs(false);
  const double send_fo = send_rate_kbs(true);
  const double recv_std = receive_rate_kbs(false);
  const double recv_fo = receive_rate_kbs(true);

  TextTable table({"direction", "std TCP [KB/s]", "failover [KB/s]", "failover/std",
                   "paper std", "paper failover", "paper ratio"});
  table.add_row({"send rate (client->server)", TextTable::num(send_std, 2),
                 TextTable::num(send_fo, 2), TextTable::num(send_fo / send_std, 2),
                 "7833.70", "5835.80", "0.75"});
  table.add_row({"receive rate (server->client)", TextTable::num(recv_std, 2),
                 TextTable::num(recv_fo, 2), TextTable::num(recv_fo / recv_std, 2),
                 "8707.88", "3510.03", "0.40"});
  std::printf("%s", table.render().c_str());
  return 0;
}
