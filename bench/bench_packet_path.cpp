// Experiment E7: the cost of the packet path itself — heap allocations and
// copies per forwarded segment on the secondary→primary diversion path
// (paper §3.1: snoop, rewrite the destination address, fix the checksum
// incrementally, re-emit).
//
// The pre-refactor pipeline is reconstructed from the legacy copying
// primitives that are still kept as byte-identical references
// (TcpSegment::serialize / IpDatagram::serialize / copying parses), so the
// baseline is captured in this same binary and the reduction factor in
// BENCH_packet_path.json is an apples-to-apples A/B:
//
//   legacy:   frame deep-copy → IP parse (payload copy) → checksum patch →
//             TCP parse (payload copy) → TCP re-serialize → IP re-serialize
//   zerocopy: frame share → IP slice parse → in-place patch (one CoW for
//             the snooped share) → TCP slice parse → headers prepended
//             into the same storage's headroom
//
// A macro phase runs a real replicated echo transfer and reports the live
// per-diverted-segment allocation rate plus the net.alloc.* counters now
// mirrored into each host's observability snapshot.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>

#include "bench_util.hpp"
#include "failover_fixture.hpp"  // test::EchoDriver (shared with the tests)
#include "ip/datagram.hpp"
#include "tcp/segment.hpp"
#include "wire/packet_buffer.hpp"

// ---------------------------------------------------------------------------
// Global allocation counters: every operator new in this binary is counted,
// so the per-segment numbers include vector bookkeeping, not just the
// PacketBuffer-level accounting.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
std::atomic<std::uint64_t> g_heap_bytes{0};

void* counted_alloc(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  g_heap_bytes.fetch_add(n, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tfo::bench {
namespace {

const ip::Ipv4 kClient = ip::Ipv4::parse("10.0.0.100");
const ip::Ipv4 kPrimary = ip::Ipv4::parse("10.0.0.1");
const ip::Ipv4 kSecondary = ip::Ipv4::parse("10.0.0.2");

/// The client→primary frame payload the secondary snoops promiscuously:
/// a TCP segment wrapped in an IP datagram.
Bytes make_snooped_wire(std::size_t payload_len) {
  tcp::TcpSegment s;
  s.src_port = 4242;
  s.dst_port = kPort;
  s.seq = 1000;
  s.ack = 2000;
  s.flags = tcp::Flags::kAck | tcp::Flags::kPsh;
  s.window = 8192;
  Bytes payload(payload_len);
  for (std::size_t i = 0; i < payload_len; ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  s.payload = payload;
  ip::IpDatagram d;
  d.src = kClient;
  d.dst = kPrimary;
  d.id = 99;
  d.payload = s.serialize(kClient, kPrimary);
  return d.serialize();
}

/// Pre-refactor diversion path, reconstructed from the legacy copying
/// primitives. Returns the emitted frame length (consumed so the work is
/// not optimized away).
std::size_t legacy_divert(const Bytes& wire) {
  // Medium hands each receiver its own deep copy of the frame payload.
  Bytes frame_payload = wire;
  // IP parse copied the payload bytes out of the frame...
  Bytes ip_payload(frame_payload.begin() + ip::IpDatagram::kHeaderBytes,
                   frame_payload.end());
  // ...the §3.1 rewrite patched the serialized-TCP byte vector...
  tcp::patch_checksum_for_address_change(ip_payload, kPrimary, kSecondary);
  // ...TCP parse copied the payload again...
  auto seg = tcp::TcpSegment::parse(BytesView(ip_payload), kClient, kSecondary);
  if (!seg) return 0;
  // ...and re-emission re-serialized both layers into fresh vectors.
  seg->orig_dst = kClient;
  ip::IpDatagram out;
  out.src = kSecondary;
  out.dst = kPrimary;
  out.id = 100;
  out.payload = seg->serialize(kSecondary, kPrimary);
  return out.serialize().size();
}

/// The refactored diversion path: shared-storage slices all the way, one
/// copy-on-write when the snooped share is patched, headers prepended into
/// the same storage's headroom.
std::size_t zerocopy_divert(const wire::PacketBuffer& wire) {
  wire::PacketBuffer frame_payload = wire;  // share, no bytes copied
  auto d = ip::IpDatagram::parse(frame_payload);
  if (!d) return 0;
  // §3.1 rewrite in place; the snooped frame's storage is shared, so this
  // is the path's one copy (the CoW that protects the other receivers).
  tcp::patch_checksum_for_address_change(d->payload, kPrimary, kSecondary);
  auto seg = tcp::TcpSegment::parse(d->payload, kClient, kSecondary);
  if (!seg) return 0;
  d.reset();  // the datagram's handle released: the segment owns the bytes
  seg->orig_dst = kClient;
  ip::IpDatagram out;
  out.src = kSecondary;
  out.dst = kPrimary;
  out.id = 100;
  out.payload = seg->take_wire(kSecondary, kPrimary);
  return out.to_wire().size();
}

struct PathCost {
  double allocs_per_seg = 0;
  double heap_bytes_per_seg = 0;
  double copied_bytes_per_seg = 0;  // wire::BufferStats deep-copy bytes
  double ns_per_seg = 0;
  double segs_per_sec = 0;
};

template <typename Fn>
PathCost measure_path(std::size_t iters, const Fn& fn) {
  PathCost c;
  volatile std::size_t sink = 0;
  wire::reset_buffer_stats();
  const std::uint64_t a0 = g_heap_allocs.load(std::memory_order_relaxed);
  const std::uint64_t b0 = g_heap_bytes.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) sink += fn();
  const auto t1 = std::chrono::steady_clock::now();
  const double n = static_cast<double>(iters);
  c.allocs_per_seg =
      static_cast<double>(g_heap_allocs.load(std::memory_order_relaxed) - a0) / n;
  c.heap_bytes_per_seg =
      static_cast<double>(g_heap_bytes.load(std::memory_order_relaxed) - b0) / n;
  c.copied_bytes_per_seg =
      static_cast<double>(wire::buffer_stats().copied_bytes) / n;
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              t1 - t0).count());
  c.ns_per_seg = ns / n;
  c.segs_per_sec = ns > 0 ? n / (ns * 1e-9) : 0;
  return c;
}

}  // namespace
}  // namespace tfo::bench

int main(int argc, char** argv) {
  using namespace tfo;
  using namespace tfo::bench;
  // --quick: fewer iterations and a short transfer — used by the CTest step
  // that validates the BENCH_packet_path.json artifact schema.
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  print_header("E7: packet-path allocations and copies per forwarded segment",
               "cost model behind paper §3.1's rewrite-in-place bridge; "
               "no table in the paper");

  const std::size_t iters = quick ? 5'000 : 200'000;
  const std::size_t payload_len = 512;
  const Bytes snooped = make_snooped_wire(payload_len);
  const wire::PacketBuffer snooped_buf = wire::PacketBuffer::copy_of(snooped);

  // Warm up both paths (page in code, fault the allocator) before counting.
  for (int i = 0; i < 100; ++i) {
    legacy_divert(snooped);
    zerocopy_divert(snooped_buf);
  }

  const PathCost legacy = measure_path(iters, [&] { return legacy_divert(snooped); });
  const PathCost zc = measure_path(iters, [&] { return zerocopy_divert(snooped_buf); });

  const double reduction =
      zc.allocs_per_seg > 0 ? legacy.allocs_per_seg / zc.allocs_per_seg : 0;

  BenchJson json("packet_path");
  TextTable table({"path", "allocs/seg", "heap B/seg", "copied B/seg",
                   "ns/seg", "segs/s"});
  const auto row = [&](const char* name, const PathCost& c) {
    table.add_row({name, TextTable::num(c.allocs_per_seg, 2),
                   TextTable::num(c.heap_bytes_per_seg, 0),
                   TextTable::num(c.copied_bytes_per_seg, 0),
                   TextTable::num(c.ns_per_seg, 0),
                   TextTable::num(c.segs_per_sec, 0)});
  };
  row("legacy (copying)", legacy);
  row("zero-copy", zc);
  std::printf("%s", table.render().c_str());
  std::printf("per-segment heap allocations: %.2f -> %.2f (%.1fx reduction; "
              "gate: >= 2x)\n",
              legacy.allocs_per_seg, zc.allocs_per_seg, reduction);
  json.add_table("diversion path: per-forwarded-segment cost "
                 "(payload " + std::to_string(payload_len) + "B)", table);

  TextTable summary({"metric", "legacy", "zero-copy", "reduction"});
  summary.add_row({"allocs/segment", TextTable::num(legacy.allocs_per_seg, 2),
                   TextTable::num(zc.allocs_per_seg, 2),
                   TextTable::num(reduction, 1) + "x"});
  json.add_table("allocation reduction vs pre-refactor baseline", summary);

  // Macro phase: a real replicated echo transfer — every secondary reply
  // crosses the diversion path — measured live, with the net.alloc.*
  // mirror landing in the captured host snapshots.
  Testbed t;
  std::unique_ptr<apps::EchoServer> e1, e2;
  t = make_testbed(true, [&](apps::Host& h) {
    auto e = std::make_unique<apps::EchoServer>(h.tcp(), kPort);
    (e1 ? e2 : e1) = std::move(e);
  });
  t.sim().run_for(milliseconds(100));

  const std::size_t total = quick ? 64 * 1024 : 512 * 1024;
  const std::uint64_t a0 = g_heap_allocs.load(std::memory_order_relaxed);
  const auto w0 = std::chrono::steady_clock::now();
  test::EchoDriver d(t.client(), t.server_addr(), kPort, total, 4096);
  const bool done = t.run_until([&] { return d.done(); }, seconds(600));
  const auto w1 = std::chrono::steady_clock::now();
  const std::uint64_t allocs = g_heap_allocs.load(std::memory_order_relaxed) - a0;
  const double wall_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(w1 - w0).count() / 1e3;
  const std::uint64_t diverted = t.group->secondary_bridge().segments_diverted();

  TextTable macro({"transfer", "diverted segs", "heap allocs", "allocs/div seg",
                   "wall [ms]", "verified"});
  macro.add_row({size_label(total), std::to_string(diverted),
                 std::to_string(allocs),
                 diverted ? TextTable::num(static_cast<double>(allocs) /
                                           static_cast<double>(diverted), 1)
                          : "-",
                 TextTable::num(wall_ms, 1),
                 done && d.verify() ? "yes" : "NO"});
  std::printf("%s", macro.render().c_str());
  json.add_table("live replicated echo transfer (whole-simulation heap "
                 "allocations per diverted segment)", macro);

  json.capture_host(*t.lan->primary);
  json.capture_host(*t.lan->secondary);
  json.capture_host(t.client());
  if (!json.write()) return 1;

  const bool green = done && d.verify() && reduction >= 2.0;
  if (!green) {
    std::printf("RED: reduction %.1fx below the 2x gate or transfer failed\n",
                reduction);
  }
  return green ? 0 : 1;
}
