// Figure 3: client-to-server data transfer — the median time for a client
// application's send of an L-byte message to return (i.e. the last byte
// accepted by the stack), L = 64 B … 1 MB, standard TCP vs TCP Failover.
//
// Paper shape: flat-ish below ~32 KB (the 64 KB socket send buffer
// absorbs the message), then linear growth; TCP Failover above standard
// at every size, with the gap widening once the buffer no longer hides
// the replicated-acknowledgment path.
#include "bench_util.hpp"

namespace tfo::bench {
namespace {

double median_send_time_us(bool failover, std::size_t msg_size, int samples) {
  // Declared before the servers: the LAN (and its simulator) must
  // outlive the servers' connections at scope exit.
  Testbed t;
  std::unique_ptr<apps::SinkServer> sink_p, sink_s;
  t = make_testbed(failover, [&](apps::Host& h) {
    auto sink = std::make_unique<apps::SinkServer>(h.tcp(), kPort);
    (sink_p ? sink_s : sink_p) = std::move(sink);
  });
  t.sim().run_for(milliseconds(100));

  Sampler us;
  for (int i = 0; i < samples; ++i) {
    auto conn = t.client().tcp().connect(t.server_addr(), kPort, {.nodelay = true});
    bool established = false;
    conn->on_established = [&] { established = true; };
    if (!t.run_until([&] { return established; }, seconds(10))) continue;

    const SimTime start = t.sim().now();
    bool accepted = false;
    conn->send(apps::deterministic_payload(msg_size, static_cast<std::uint32_t>(i)),
               [&] { accepted = true; });
    if (!t.run_until([&] { return accepted; }, seconds(120))) continue;
    us.add(to_microseconds(static_cast<SimDuration>(t.sim().now() - start)));

    // Drain fully so the next sample starts clean.
    t.run_until([&] { return conn->send_buffer_used() == 0; }, seconds(120));
    conn->abort();
    t.sim().run_for(milliseconds(5));
  }
  return us.empty() ? -1.0 : us.median();
}

}  // namespace
}  // namespace tfo::bench

int main() {
  using namespace tfo;
  using namespace tfo::bench;
  print_header("Figure 3: client-to-server data transfer (send time vs message size)",
               "paper Fig. 3 — flat below ~32KB (64KB send buffer), then linear;"
               " failover above standard throughout");

  const std::size_t sizes[] = {64,        256,        1024,       4 * 1024,
                               16 * 1024, 32 * 1024,  64 * 1024,  128 * 1024,
                               256 * 1024, 512 * 1024, 1024 * 1024};
  TextTable table({"message", "std TCP [us]", "failover [us]", "ratio"});
  for (std::size_t size : sizes) {
    const int samples = size >= 256 * 1024 ? 5 : 9;
    const double s = median_send_time_us(false, size, samples);
    const double f = median_send_time_us(true, size, samples);
    table.add_row({size_label(size), TextTable::num(s, 1), TextTable::num(f, 1),
                   TextTable::num(f / s, 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("note: send time = until the last byte enters the 64KB socket send\n"
              "buffer (the paper's definition), hence the sub-linear region below it.\n");
  return 0;
}
