// Experiment E1 (extension of the paper's §5 analysis): client-observed
// failover time — the longest stall in a client's byte stream around a
// primary crash — swept over the fault-detector timeout and the
// ARP-table update latency T that §5 analyses qualitatively.
#include "bench_util.hpp"
#include "failover_fixture.hpp"  // test::EchoDriver (shared with the tests)

namespace tfo::bench {
namespace {

/// Crashes the primary mid-transfer and returns the longest stall (ms) in
/// client progress plus the takeover latency reported by the bridge.
struct FailoverMeasurement {
  double longest_stall_ms = -1;
  double detect_ms = -1;
};

FailoverMeasurement measure(SimDuration fd_timeout, SimDuration arp_latency,
                            std::uint64_t seed, BenchJson* json = nullptr) {
  apps::LanParams lp = paper_lan_params();
  lp.arp.update_latency = arp_latency;
  lp.seed = seed;
  core::FailoverConfig cfg;
  cfg.heartbeat_period = std::max<SimDuration>(fd_timeout / 5, milliseconds(1));
  cfg.failure_timeout = fd_timeout;

  // Declared before the servers: the LAN (and its simulator) must
  // outlive the servers' connections at scope exit.
  Testbed t;
  std::unique_ptr<apps::EchoServer> e1, e2;
  t = make_testbed(true, [&](apps::Host& h) {
    auto e = std::make_unique<apps::EchoServer>(h.tcp(), kPort);
    (e1 ? e2 : e1) = std::move(e);
  }, lp, cfg);
  t.sim().run_for(milliseconds(100));

  test::EchoDriver d(t.client(), t.server_addr(), kPort, 300 * 1024, 8192);
  if (!t.run_until([&] { return d.received().size() > 100 * 1024; }, seconds(600))) {
    return {};
  }
  const SimTime crash_at = t.sim().now();
  t.lan->primary->fail();

  FailoverMeasurement m;
  SimTime last_progress = t.sim().now();
  std::size_t last_size = d.received().size();
  SimDuration longest = 0;
  const SimTime deadline = t.sim().now() + static_cast<SimTime>(seconds(600));
  while (!d.done() && t.sim().pending() > 0 && t.sim().now() < deadline) {
    t.sim().step();
    if (d.received().size() != last_size) {
      longest = std::max<SimDuration>(
          longest, static_cast<SimDuration>(t.sim().now() - last_progress));
      last_size = d.received().size();
      last_progress = t.sim().now();
    }
  }
  if (!d.done() || !d.verify()) return {};
  m.longest_stall_ms = to_milliseconds(longest);
  m.detect_ms = to_milliseconds(
      static_cast<SimDuration>(t.group->secondary_bridge().takeover_time() - crash_at));
  if (json) {
    // Snapshot every host's registry and failover timeline while the
    // testbed is still alive: the crashed primary's event log shows the
    // pre-crash merge activity, the secondary's shows the takeover.
    json->capture_host(*t.lan->primary);
    json->capture_host(*t.lan->secondary);
    json->capture_host(t.client());
  }
  return m;
}

}  // namespace
}  // namespace tfo::bench

int main(int argc, char** argv) {
  using namespace tfo;
  using namespace tfo::bench;
  // --quick: single configuration, single seed — used by the CTest step
  // that validates the BENCH_failover_time.json artifact schema.
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  print_header("E1: client-observed failover time",
               "extension of paper §5 (interval T analysis); no table in the paper");

  BenchJson json("failover_time");
  TextTable table({"detector timeout", "ARP latency T", "detect [ms]",
                   "longest client stall [ms]"});
  std::vector<SimDuration> timeouts = {milliseconds(10), milliseconds(50),
                                       milliseconds(100), milliseconds(500)};
  std::vector<SimDuration> arps = {0, milliseconds(10), milliseconds(100),
                                   milliseconds(500)};
  std::uint64_t seeds = 3;
  if (quick) {
    timeouts = {milliseconds(50)};
    arps = {milliseconds(10)};
    seeds = 1;
  }
  bool captured = false;
  for (SimDuration to : timeouts) {
    for (SimDuration arp : arps) {
      Sampler stall, detect;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        const auto m = measure(to, arp, seed, captured ? nullptr : &json);
        if (m.longest_stall_ms >= 0) {
          captured = true;
          stall.add(m.longest_stall_ms);
          detect.add(m.detect_ms);
        }
      }
      table.add_row({TextTable::num(to_milliseconds(to), 0) + "ms",
                     TextTable::num(to_milliseconds(arp), 0) + "ms",
                     stall.empty() ? "-" : TextTable::num(detect.median(), 1),
                     stall.empty() ? "-" : TextTable::num(stall.median(), 1)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("expected shape: stall ~ detector timeout + max(ARP latency, one\n"
              "retransmission cycle); the detector dominates when T is small.\n");
  json.add_table("failover time vs detector timeout and ARP latency", table);
  if (!json.write()) return 1;
  return 0;
}
