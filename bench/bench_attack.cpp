// Experiment E7: the off-path adversary matrix — blind and partially
// informed RST/SYN sweeps, blind data injection, ACK-window probing,
// forged ICMP fragmentation-needed and forged heartbeats — run in steady
// state and across a primary crash. Every run is judged by the attack
// oracles (transfer completes byte-identical, no client-visible RST, no
// replica divergence, the attacked connection survives, the defenses
// engage) and the verdicts land in BENCH_attack.json's "profiles" array;
// the "attack" summary section carries the headline numbers the schema
// gates: spoof attempts versus connections killed (which must be zero)
// plus challenge-ACK rates and goodput degradation against an unattacked
// baseline.
//
// Profiles and seeds are the exact ones tests/attack_soak_test.cpp pins
// (shared via tests/attack_util.hpp), so a red oracle here reproduces
// under the soak test with the same seed.
#include "attack_util.hpp"
#include "bench_util.hpp"

namespace tfo::bench {
namespace {

std::string attack_params_json(const test::AttackProfile& p) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("rate").value(p.rate);
  w.key("kinds").value(static_cast<std::uint64_t>(p.kinds.size()));
  w.key("informed").value(p.informed);
  w.key("ack_informed").value(p.ack_informed);
  w.key("forge_heartbeats").value(p.forge_heartbeats);
  w.end_object();
  return w.str();
}

}  // namespace
}  // namespace tfo::bench

int main(int argc, char** argv) {
  using namespace tfo;
  using namespace tfo::bench;
  // --quick: a 2-profile subset with a shorter transfer — used by the CTest
  // step that validates the BENCH_attack.json artifact schema.
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  print_header("E7: off-path adversary soak matrix",
               "RFC 5961 hardening of the paper's client-transparent "
               "failover; no table in the paper");

  auto profiles = test::attack_profiles();
  std::size_t total = 24000;
  if (quick) {
    // blind_rst and icmp_hb: one pure sweep, one multi-vector profile that
    // exercises the ICMP validator and the heartbeat nonce chain.
    decltype(profiles) subset;
    for (const auto& p : profiles) {
      if (p.name == "blind_rst" || p.name == "icmp_hb") subset.push_back(p);
    }
    profiles = std::move(subset);
    total = 8000;
  }

  // Unattacked baselines, one per mode, for the goodput-degradation column.
  double baseline_ms[2] = {0, 0};
  for (const bool fail_primary : {false, true}) {
    test::AttackProfile idle;
    idle.name = "baseline";
    idle.kinds = {apps::AttackKind::kBlindRst};
    idle.rate = 0.0;  // the attacker never fires
    const auto res = test::run_attack_scenario(
        idle, fail_primary ? 400 : 300, fail_primary, total);
    if (!res.completed) {
      std::fprintf(stderr, "baseline run did not complete\n");
      return 1;
    }
    baseline_ms[fail_primary ? 1 : 0] = res.transfer_ms;
  }

  BenchJson json("attack");
  TextTable table({"profile", "mode", "seed", "transfer [ms]", "slowdown",
                   "injected", "spoof_drop", "chal_ack", "chal_lim",
                   "icmp_rej", "hb_fail", "oracles"});
  bool captured = false;
  bool all_green = true;
  std::uint64_t injected_total = 0, killed = 0;
  std::uint64_t spoof_dropped = 0, challenge_acks = 0, challenge_limited = 0;
  std::uint64_t icmp_rejected = 0, hb_auth_failed = 0;
  double worst_slowdown = 1.0;
  // Seeds match tests/attack_soak_test.cpp: 301.. steady, 401.. failover.
  std::uint64_t seed = 301;
  for (const auto& prof : test::attack_profiles()) {
    bool in_subset = false;
    for (const auto& p : profiles) in_subset |= p.name == prof.name;
    for (const bool fail_primary : {false, true}) {
      const std::uint64_t run_seed = seed + (fail_primary ? 100 : 0);
      if (!in_subset) continue;
      // Capture the first completed run's hosts so the artifact carries
      // the hardening counters (tcp.challenge_acks, bridge.spoof_dropped,
      // fault.hb_auth_failed, ...).
      const auto res = test::run_attack_scenario(
          prof, run_seed, fail_primary, total, nullptr, {},
          captured ? std::function<void(apps::Host&)>{}
                   : [&](apps::Host& h) { json.capture_host(h); });
      captured = captured || res.completed;
      all_green = all_green && res.all_green();
      injected_total += res.injected;
      killed += res.conn_survived ? 0 : 1;
      spoof_dropped += res.spoof_dropped;
      challenge_acks += res.challenge_acks;
      challenge_limited += res.challenge_limited;
      icmp_rejected += res.icmp_rejected;
      hb_auth_failed += res.hb_auth_failed;
      const double base = baseline_ms[fail_primary ? 1 : 0];
      const double slowdown = res.completed && base > 0 ? res.transfer_ms / base : 0;
      worst_slowdown = std::max(worst_slowdown, slowdown);
      const std::string mode = fail_primary ? "failover" : "steady";
      table.add_row({prof.name, mode, std::to_string(run_seed),
                     res.completed ? TextTable::num(res.transfer_ms, 1) : "-",
                     res.completed ? TextTable::num(slowdown, 2) : "-",
                     std::to_string(res.injected),
                     std::to_string(res.spoof_dropped),
                     std::to_string(res.challenge_acks),
                     std::to_string(res.challenge_limited),
                     std::to_string(res.icmp_rejected),
                     std::to_string(res.hb_auth_failed),
                     res.all_green() ? "green" : "RED"});
      json.add_profile(prof.name + "_" + mode, run_seed,
                       attack_params_json(prof),
                       {{"completed", res.completed},
                        {"stream_intact", res.stream_intact},
                        {"no_client_rst", res.no_client_rst},
                        {"no_divergence", res.no_divergence},
                        {"conn_survived", res.conn_survived},
                        {"attack_engaged", res.attack_engaged}});
    }
    ++seed;
  }
  std::printf("%s", table.render().c_str());
  std::printf("oracles: transfer completes byte-identical, no RST reaches the\n"
              "client, replicas never diverge, the attacked connection survives\n"
              "every profile, and the defenses demonstrably engage. All green;\n"
              "connections killed must be exactly zero.\n");
  json.add_table("off-path adversary soak matrix", table);

  obs::JsonWriter sw;
  sw.begin_object();
  sw.key("injected_total").value(injected_total);
  sw.key("connections_killed").value(killed);
  sw.key("spoof_dropped").value(spoof_dropped);
  sw.key("challenge_acks").value(challenge_acks);
  sw.key("challenge_acks_limited").value(challenge_limited);
  sw.key("icmp_rejected").value(icmp_rejected);
  sw.key("hb_auth_failed").value(hb_auth_failed);
  sw.key("baseline_steady_ms").value(baseline_ms[0]);
  sw.key("baseline_failover_ms").value(baseline_ms[1]);
  sw.key("worst_slowdown").value(worst_slowdown);
  sw.end_object();
  json.add_section("attack", sw.str());

  if (!json.write()) return 1;
  return all_green && killed == 0 ? 0 : 1;
}
