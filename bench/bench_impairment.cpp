// Experiment E6: transfer behaviour over adversarial wires — the impairment
// profile matrix (uniform/bursty loss, duplication, reorder jitter, byte
// corruption) run in steady state and across a primary crash. Every run is
// judged by the soak oracles (stream integrity, no client RST, corrupted
// copies caught at receive-path checksums, conservation + registry mirror)
// and the verdicts land in BENCH_impairment.json's "profiles" array.
//
// Profiles and seeds are the exact ones tests/impairment_soak_test.cpp pins
// (shared via tests/impairment_util.hpp), so a red oracle here reproduces
// under the soak test with the same seed.
#include "bench_util.hpp"
#include "impairment_util.hpp"

namespace tfo::bench {
namespace {

std::string impairment_params_json(const net::ImpairmentParams& p) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("loss").value(p.loss);
  w.key("gilbert").begin_object();
  w.key("p_enter_bad").value(p.gilbert.p_enter_bad);
  w.key("p_exit_bad").value(p.gilbert.p_exit_bad);
  w.key("loss_good").value(p.gilbert.loss_good);
  w.key("loss_bad").value(p.gilbert.loss_bad);
  w.end_object();
  w.key("duplicate").value(p.duplicate);
  w.key("duplicate_delay_ns").value(static_cast<std::int64_t>(p.duplicate_delay));
  w.key("reorder").value(p.reorder);
  w.key("reorder_delay_ns").value(static_cast<std::int64_t>(p.reorder_delay));
  w.key("corrupt").value(p.corrupt);
  w.key("corrupt_max_bytes").value(p.corrupt_max_bytes);
  w.key("seed").value(p.seed);
  w.end_object();
  return w.str();
}

struct RunResult {
  bool completed = false;
  double transfer_ms = -1;
  net::Impairment::Counters c;
  // The soak oracles, in the order they are reported.
  bool stream_intact = false;
  bool no_client_rst = false;
  bool corruption_caught = true;  // vacuously true when nothing was corrupted
  bool conserved = false;
  bool mirror_consistent = false;

  bool all_green() const {
    return completed && stream_intact && no_client_rst && corruption_caught &&
           conserved && mirror_consistent;
  }
};

/// One matrix cell: an echo transfer under `imp`, optionally with the
/// primary crashed at one third of the stream. Mirrors the soak test run
/// for run, so the pinned seeds reproduce bit-for-bit.
RunResult run_profile(const net::ImpairmentParams& imp, std::uint64_t seed,
                      bool fail_primary, std::size_t total,
                      BenchJson* json = nullptr) {
  apps::LanParams lp;
  lp.medium.impairment = imp;
  lp.medium.impairment.seed = seed;
  lp.tcp.max_rto = seconds(5);  // keep recovery seconds-scale under loss
  core::FailoverConfig cfg;
  cfg.heartbeat_period = milliseconds(5);
  cfg.failure_timeout = milliseconds(200);
  auto r = test::make_replicated_lan(lp, cfg);
  auto& eng = r->lan->wire->impairment();
  eng.set_target(test::processed_by);
  eng.bind_registry(r->client().metrics());
  test::RstCounter rsts(r->sim(), r->client().nic());

  const SimTime start = r->sim().now();
  test::EchoDriver d(r->client(), r->primary().address(), test::kEchoPort,
                     total, 1500);
  RunResult res;
  if (fail_primary) {
    if (!test::run_until(r->sim(),
                         [&] { return d.received().size() > total / 3; },
                         seconds(600))) {
      return res;
    }
    r->group->crash_primary();
  }
  if (!test::run_until(r->sim(), [&] { return d.done(); }, seconds(1200))) {
    return res;
  }
  res.completed = true;
  res.transfer_ms = to_milliseconds(static_cast<SimDuration>(r->sim().now() - start));
  res.stream_intact = d.verify();
  res.no_client_rst = rsts.count() == 0;

  // Freeze the pipeline and drain in-flight delayed copies so the
  // conservation audit is exact (heartbeat traffic never stops).
  eng.configure({});
  r->sim().run_for(seconds(1));
  res.c = eng.counters();
  if (res.c.corrupted > 0) {
    res.corruption_caught = test::checksum_rejects(*r) >= 1;
  }
  res.conserved = eng.conserved();
  const auto& reg = r->client().metrics();
  res.mirror_consistent =
      reg.counter_value("net.impairment.offered") == res.c.offered &&
      reg.counter_value("net.impairment.dropped") == res.c.dropped &&
      reg.counter_value("net.impairment.duplicated") == res.c.duplicated &&
      reg.counter_value("net.impairment.reordered") == res.c.reordered &&
      reg.counter_value("net.impairment.corrupted") == res.c.corrupted &&
      reg.counter_value("net.impairment.delivered") == res.c.delivered &&
      reg.counter_value("net.impairment.detached") == res.c.detached;

  if (json) {
    json->capture_host(*r->lan->primary);
    json->capture_host(*r->lan->secondary);
    json->capture_host(r->client());
  }
  return res;
}

}  // namespace
}  // namespace tfo::bench

int main(int argc, char** argv) {
  using namespace tfo;
  using namespace tfo::bench;
  // --quick: a 3-profile subset with a shorter transfer — used by the CTest
  // step that validates the BENCH_impairment.json artifact schema.
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  print_header("E6: adversarial-wire soak matrix",
               "extension of paper §4 (loss cases) and §8 (teardown corner "
               "cases); no table in the paper");

  auto profiles = test::impairment_profiles();
  std::size_t total = 24000;
  if (quick) {
    // uniform2, corrupt2, chaos: one pure-loss, one pure-corruption, one
    // everything-at-once profile.
    decltype(profiles) subset;
    for (const auto& p : profiles) {
      if (p.name == "uniform2" || p.name == "corrupt2" || p.name == "chaos") {
        subset.push_back(p);
      }
    }
    profiles = std::move(subset);
    total = 8000;
  }

  BenchJson json("impairment");
  TextTable table({"profile", "mode", "seed", "transfer [ms]", "offered",
                   "dropped", "dup", "reord", "corrupt", "oracles"});
  bool captured = false;
  bool all_green = true;
  // Seeds match tests/impairment_soak_test.cpp: 101.. steady, 201.. failover.
  std::uint64_t seed = 101;
  for (const auto& prof : test::impairment_profiles()) {
    bool in_subset = false;
    for (const auto& p : profiles) in_subset |= p.name == prof.name;
    for (const bool fail_primary : {false, true}) {
      const std::uint64_t run_seed = seed + (fail_primary ? 100 : 0);
      if (!in_subset) continue;
      const auto res = run_profile(prof.imp, run_seed, fail_primary, total,
                                   captured ? nullptr : &json);
      captured = captured || res.completed;
      all_green = all_green && res.all_green();
      const std::string mode = fail_primary ? "failover" : "steady";
      table.add_row({prof.name, mode, std::to_string(run_seed),
                     res.completed ? TextTable::num(res.transfer_ms, 1) : "-",
                     std::to_string(res.c.offered), std::to_string(res.c.dropped),
                     std::to_string(res.c.duplicated),
                     std::to_string(res.c.reordered),
                     std::to_string(res.c.corrupted),
                     res.all_green() ? "green" : "RED"});
      net::ImpairmentParams imp = prof.imp;
      imp.seed = run_seed;
      json.add_profile(prof.name + "_" + mode, run_seed,
                       impairment_params_json(imp),
                       {{"completed", res.completed},
                        {"stream_intact", res.stream_intact},
                        {"no_client_rst", res.no_client_rst},
                        {"corruption_caught", res.corruption_caught},
                        {"conserved", res.conserved},
                        {"mirror_consistent", res.mirror_consistent}});
    }
    ++seed;
  }
  std::printf("%s", table.render().c_str());
  std::printf("oracles: stream byte-identical, no RST at the client, corrupted\n"
              "copies caught by receive-path checksums, conservation identity\n"
              "and registry mirror exact. All must be green.\n");
  json.add_table("adversarial-wire soak matrix", table);
  if (!json.write()) return 1;
  return all_green ? 0 : 1;
}
