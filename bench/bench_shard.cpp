// Shard bench: the sharded parallel data path's headline numbers.
//
// Phase 1 — GRO/batching gate, measured on the path GRO actually
// optimizes: frame delivery up the receive stack into a live endpoint. A
// bulk echo transfer is captured once off the wire (the echo connection's
// client-to-server frames, handshake included), then the identical frame
// stream is replayed twice — legacy per-frame path vs batched rx with GRO
// coalescing — into a standalone server rig built from the real NIC, IP
// layer, TCP layer and echo application (the rig's ISN is pinned to the
// captured handshake so the replayed stream is acceptable; every rig
// transmission is dropped before the route lookup, so nothing but the
// replay drives it). The rig pays the true per-segment receive costs —
// demux, reassembly, ack generation, app delivery — which is exactly the
// fixed work GRO amortizes. Headline metric is wall-clock data segments/s
// through the rig; the run FAILS unless batching+GRO alone is >= 1.3x or
// the echoed byte count differs between the two paths (stream
// conservation across the batched path).
//
// Phase 2 — lane sweep. The same transfer plus a mini failover storm at
// lanes in {1, 2, 4, 8}. Per point: segments/s, wall seconds, and the
// storm's takeover p99 in *simulated* time — which must be bit-identical
// across lane counts (the merge-order invariant, DESIGN.md §8); the run
// FAILS if any lane count shifts it.
//
// Artifact: BENCH_shard.json ("shard" section schema validated by
// scripts/check_bench_json.py).
#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "failover_fixture.hpp"
#include "ip/arp.hpp"
#include "ip/ip_layer.hpp"
#include "net/frame.hpp"
#include "net/nic.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_layer.hpp"

namespace tfo::bench {
namespace {

/// Sanitizer instrumentation reshapes the cost model (interceptors tax
/// per-byte work far more than per-event work), so wall-clock perf gates
/// are demoted to report-only under TFO_SANITIZE builds; every
/// correctness gate (stream conservation, coalescing, p99 determinism)
/// still fails the run.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

/// Storm-style scale knobs: gigabit wire, light per-frame host cost. The
/// bench measures data-path execution cost, not the paper's 100 Mb/s
/// testbed, and must not be bandwidth-bound.
apps::LanParams shard_lan_params(unsigned lanes, bool batching) {
  apps::LanParams lp = paper_lan_params();
  lp.medium.bandwidth_bps = 1'000'000'000;
  lp.nic.rx_processing = microseconds(2);
  lp.nic.rx_jitter = 0;
  lp.lanes = {.lanes = lanes, .parallel = false};
  if (batching) {
    lp.nic.rx_batch_max = 32;
    lp.nic.rx_batch_window = microseconds(400);
    lp.nic.tx_batch_max = 32;
    lp.nic.gro.max_merged = 32;
  }
  return lp;
}

struct XferResult {
  double wall_s = 0;
  double segments_per_s = 0;
  std::uint64_t frames_batched = 0;
  std::uint64_t gro_coalesced = 0;
  bool ok = false;
};

/// Bulk echo transfer (client streams `bytes`, server echoes them back)
/// through the full failover machinery; segments/s counts MSS-sized data
/// segments across both directions per wall-clock second.
XferResult run_transfer(std::size_t bytes, unsigned lanes, bool batching,
                        BenchJson* json) {
  const apps::LanParams lp = shard_lan_params(lanes, batching);

  Testbed t;
  std::unique_ptr<apps::EchoServer> e1, e2;
  t = make_testbed(true, [&](apps::Host& h) {
    auto e = std::make_unique<apps::EchoServer>(h.tcp(), kPort);
    (e1 ? e2 : e1) = std::move(e);
  }, lp);
  t.sim().run_for(milliseconds(100));

  // Clock the transfer only: testbed construction and detector settling
  // are identical for every configuration and would dilute the ratio.
  const auto wall_start = std::chrono::steady_clock::now();
  test::EchoDriver d(t.client(), t.server_addr(), kPort, bytes, 32768);
  if (!t.run_until([&] { return d.done(); }, seconds(3600)) || !d.verify()) {
    std::fprintf(stderr, "transfer lanes=%u batching=%d did not complete\n",
                 lanes, batching);
    return {};
  }

  XferResult r;
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           wall_start)
                 .count();
  const double segments =
      2.0 * static_cast<double>(bytes) / static_cast<double>(lp.tcp.mss);
  r.segments_per_s = segments / (r.wall_s > 0 ? r.wall_s : 1e-9);
  r.frames_batched = t.client().nic().batch_stats().frames_batched +
                     t.lan->primary->nic().batch_stats().frames_batched;
  r.gro_coalesced = t.client().nic().gro_stats().coalesced +
                    t.lan->primary->nic().gro_stats().coalesced;
  r.ok = true;
  if (json != nullptr) {
    json->capture_host(*t.lan->primary);
    json->capture_host(*t.lan->client);
  }
  return r;
}

/// One captured wire stream: the echo connection's client-to-server TCP
/// frames in arrival order, as the secondary's promiscuous NIC saw them,
/// plus the handshake facts the replay rig needs to accept the stream.
struct WireCapture {
  std::vector<net::EthernetFrame> frames;  ///< client->server direction only
  ip::Ipv4 server_ip{};
  net::MacAddress server_mac{};
  std::uint32_t server_isn = 0;  ///< seq of the wire SYN-ACK toward the client
  bool have_isn = false;
  std::uint64_t stream_bytes = 0;   ///< unique in-order client payload bytes
  std::uint64_t data_segments = 0;  ///< stored frames carrying TCP payload
  std::uint64_t payload_bytes = 0;  ///< total TCP payload across them
};

/// Decoded header facts of one echo-connection frame.
struct EchoFrameInfo {
  ip::Ipv4 src{}, dst{};
  std::size_t payload_len = 0;
  std::uint32_t seq = 0;
  bool syn = false;
};

/// True when `f` is a TCP frame of the echo connection (either port is
/// kPort); fills `*info` from the headers. Filtering matters: the capture
/// must exclude replica heartbeats and bridge control traffic so the
/// replay is a pure TCP data stream.
bool echo_tcp_frame(const net::EthernetFrame& f, EchoFrameInfo* info) {
  if (f.type != net::EtherType::kIpv4 || f.payload.size() < 20) return false;
  const std::uint8_t* p = f.payload.data();
  if ((p[0] >> 4) != 4 || p[9] != 6) return false;  // IPv4 + TCP
  const std::size_t ihl = std::size_t{static_cast<std::uint8_t>(p[0] & 0x0f)} * 4;
  const std::size_t total = (std::size_t{p[2]} << 8) | p[3];
  if (ihl < 20 || total < ihl + 20 || f.payload.size() < ihl + 20) return false;
  const std::uint8_t* tcp = p + ihl;
  const auto sport = static_cast<std::uint16_t>((tcp[0] << 8) | tcp[1]);
  const auto dport = static_cast<std::uint16_t>((tcp[2] << 8) | tcp[3]);
  if (sport != kPort && dport != kPort) return false;
  const std::size_t doff = std::size_t{static_cast<std::uint8_t>(tcp[12] >> 4)} * 4;
  info->src = ip::Ipv4{(std::uint32_t{p[12]} << 24) | (std::uint32_t{p[13]} << 16) |
                       (std::uint32_t{p[14]} << 8) | p[15]};
  info->dst = ip::Ipv4{(std::uint32_t{p[16]} << 24) | (std::uint32_t{p[17]} << 16) |
                       (std::uint32_t{p[18]} << 8) | p[19]};
  info->payload_len = total > ihl + doff ? total - ihl - doff : 0;
  info->seq = (std::uint32_t{tcp[4]} << 24) | (std::uint32_t{tcp[5]} << 16) |
              (std::uint32_t{tcp[6]} << 8) | tcp[7];
  info->syn = (tcp[13] & 0x02) != 0;
  return true;
}

/// Runs a bulk echo transfer on the legacy path and records the echo
/// connection's frame stream off the secondary's NIC. Frame copies share
/// the wire buffers (CoW), so the capture costs refcounts, not byte
/// copies.
WireCapture capture_echo_stream(std::size_t bytes) {
  const apps::LanParams lp = shard_lan_params(1, false);
  Testbed t;
  std::unique_ptr<apps::EchoServer> e1, e2;
  t = make_testbed(true, [&](apps::Host& h) {
    auto e = std::make_unique<apps::EchoServer>(h.tcp(), kPort);
    (e1 ? e2 : e1) = std::move(e);
  }, lp);
  t.sim().run_for(milliseconds(100));

  WireCapture cap;
  cap.stream_bytes = bytes;
  cap.server_ip = t.server_addr();
  t.lan->secondary->nic().add_observer(
      [&cap](const net::EthernetFrame& f, bool /*to_us*/) {
        EchoFrameInfo fi;
        if (!echo_tcp_frame(f, &fi)) return;
        if (fi.src == cap.server_ip) {
          // Server->client frames are not replayed, but the wire SYN-ACK
          // carries the ISN the client's acks are built against — the
          // replay rig must issue the same one.
          if (fi.syn && !cap.have_isn) {
            cap.server_isn = fi.seq;
            cap.have_isn = true;
          }
          return;
        }
        if (fi.dst != cap.server_ip) return;
        if (cap.frames.empty()) cap.server_mac = f.dst;
        cap.frames.push_back(f);
        if (fi.payload_len > 0) ++cap.data_segments;
        cap.payload_bytes += fi.payload_len;
      });
  test::EchoDriver d(t.client(), t.server_addr(), kPort, bytes, 32768);
  if (!t.run_until([&] { return d.done(); }, seconds(3600)) || !d.verify() ||
      !cap.have_isn) {
    std::fprintf(stderr, "capture transfer did not complete\n");
    cap.frames.clear();
  }
  return cap;
}

/// Replays the captured client stream into a standalone server endpoint:
/// the real NIC (per-frame or batched+GRO), IP layer, TCP layer and echo
/// application, wearing the captured server's MAC/IP/ISN so the replayed
/// handshake and acks are acceptable as-is. An outbound hook drops every
/// rig transmission before the route lookup — no medium, no ARP, nothing
/// but the replay drives the rig — so the wall clock covers the receive
/// path plus the per-segment endpoint work (demux, reassembly, ack
/// generation, app delivery) that frame batching exists to amortize.
/// `echoed_bytes` returns what the echo app consumed and re-sent; stream
/// conservation requires it to equal the capture's unique payload exactly.
XferResult replay_rx_path(const WireCapture& cap, bool batching,
                          std::uint64_t* echoed_bytes) {
  const apps::LanParams lp = shard_lan_params(1, batching);
  sim::Simulator sim;
  net::Nic nic(sim, "rx-rig", cap.server_mac, lp.nic);
  ip::IpLayer ip(sim);
  ip::ArpEntity arp(sim, nic,
                    [&cap] { return std::vector<ip::Ipv4>{cap.server_ip}; });
  ip.add_interface({&nic, &arp, cap.server_ip, 24});
  ip.add_outbound_hook([](ip::IpDatagram&) { return ip::HookVerdict::kDrop; });
  tcp::TcpLayer tcp(sim, ip, lp.tcp, /*seed=*/1);
  tcp.set_next_isn(cap.server_isn);
  apps::EchoServer echo(tcp, kPort);
  nic.set_rx_handler(
      [&ip](const net::EthernetFrame& f, bool to_us) { ip.handle_frame(f, to_us); });

  const auto wall_start = std::chrono::steady_clock::now();
  std::size_t delivered = 0;
  for (const net::EthernetFrame& f : cap.frames) {
    nic.deliver(f);
    // Drain in 64-frame groups: enough sim headroom for the batch window
    // (400 us) plus processing floors, deterministic for both configs,
    // and close to the capture's own pacing so the rig's retransmission
    // clocks stay quiet.
    if ((++delivered & 63u) == 0) sim.run_for(microseconds(900));
  }
  sim.run_for(milliseconds(5));  // tail: let the ack/echo machinery settle

  XferResult r;
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           wall_start)
                 .count();
  r.segments_per_s = static_cast<double>(cap.data_segments) /
                     (r.wall_s > 0 ? r.wall_s : 1e-9);
  r.frames_batched = nic.batch_stats().frames_batched;
  r.gro_coalesced = nic.gro_stats().coalesced;
  *echoed_bytes = echo.bytes_echoed();
  r.ok = echo.bytes_echoed() == cap.stream_bytes;
  if (!r.ok) {
    std::fprintf(stderr,
                 "replay batching=%d: rig echoed %llu bytes of a %llu byte "
                 "stream — data lost or duplicated crossing the rx path\n",
                 batching, static_cast<unsigned long long>(echo.bytes_echoed()),
                 static_cast<unsigned long long>(cap.stream_bytes));
  }
  return r;
}

/// Mini failover storm: `n_conns` live connections all probe the instant
/// the primary dies; returns the p99 takeover stall in simulated ns.
/// Runs on the batched data path so the lane sweep exercises sharded
/// delivery end to end.
double storm_takeover_p99_ns(std::size_t n_conns, unsigned lanes) {
  constexpr std::size_t kProbeBytes = 16;
  const apps::LanParams lp = shard_lan_params(lanes, true);

  Testbed t;
  std::unique_ptr<apps::EchoServer> e1, e2;
  t = make_testbed(true, [&](apps::Host& h) {
    auto e = std::make_unique<apps::EchoServer>(h.tcp(), kPort);
    (e1 ? e2 : e1) = std::move(e);
  }, lp);
  t.sim().run_for(milliseconds(100));

  struct StormConn {
    std::shared_ptr<tcp::Connection> conn;
    std::size_t rx_bytes = 0;
    bool ready = false;
    SimTime replied_at = 0;
  };
  std::vector<StormConn> conns(n_conns);
  std::size_t ready = 0;
  for (std::size_t i = 0; i < n_conns; ++i) {
    t.sim().schedule_after(static_cast<SimDuration>(i) * 2'000, [&, i] {
      StormConn& sc = conns[i];
      sc.conn = t.client().tcp().connect(t.server_addr(), kPort, {.nodelay = true});
      tcp::Connection* raw = sc.conn.get();
      raw->on_established = [raw] {
        raw->send(apps::deterministic_payload(kProbeBytes, 1));
      };
      raw->on_readable = [&, i, raw] {
        Bytes data;
        raw->recv(data);
        StormConn& c = conns[i];
        c.rx_bytes += data.size();
        if (!c.ready && c.rx_bytes >= kProbeBytes) {
          c.ready = true;
          ++ready;
        }
      };
    });
  }
  if (!t.run_until([&] { return ready == n_conns; }, seconds(1200))) {
    std::fprintf(stderr, "shard storm lanes=%u: only %zu/%zu ready\n", lanes,
                 ready, n_conns);
    return -1;
  }

  const SimTime crash_at = t.sim().now();
  std::size_t replied = 0;
  for (std::size_t i = 0; i < n_conns; ++i) {
    t.sim().schedule_after(0, [&, i] {
      StormConn& sc = conns[i];
      tcp::Connection* raw = sc.conn.get();
      raw->on_readable = [&, i, raw] {
        Bytes data;
        raw->recv(data);
        StormConn& c = conns[i];
        c.rx_bytes += data.size();
        if (c.replied_at == 0 && c.rx_bytes >= 2 * kProbeBytes) {
          c.replied_at = t.sim().now();
          ++replied;
        }
      };
      raw->send(apps::deterministic_payload(kProbeBytes, 2));
    });
  }
  t.group->crash_primary();
  if (!t.run_until([&] { return replied == n_conns; }, seconds(1200))) {
    std::fprintf(stderr, "shard storm lanes=%u: only %zu/%zu probes answered\n",
                 lanes, replied, n_conns);
    return -1;
  }

  Sampler latency;
  for (const StormConn& sc : conns) {
    latency.add(static_cast<double>(sc.replied_at - crash_at));
  }
  conns.clear();  // destructors cancel timers before the testbed dies
  return latency.percentile(99);
}

struct SweepPoint {
  unsigned lanes = 0;
  double segments_per_s = 0;
  double takeover_p99_ns = -1;
  double wall_s = 0;
};

}  // namespace
}  // namespace tfo::bench

int main(int argc, char** argv) {
  using namespace tfo;
  using namespace tfo::bench;
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  // The sweep controls the lane layout explicitly; a TFO_LANES override
  // would silently collapse every point onto one configuration.
  ::unsetenv("TFO_LANES");
  print_header("E8: sharded data path — batched frames, GRO, lane sweep",
               "extension (no table in the paper): execution-layout scaling "
               "of the failover data path");

  const std::size_t xfer_bytes = quick ? 24u * 1024 * 1024 : 96u * 1024 * 1024;
  const std::size_t storm_conns = quick ? 300 : 1'500;

  // Profiling hook: TFO_REPLAY_PROFILE=legacy|batched loops one replay leg
  // so a sampling profiler sees only that path. Not part of the bench run.
  if (const char* prof = std::getenv("TFO_REPLAY_PROFILE")) {
    const bool batching = std::string(prof) == "batched";
    const WireCapture cap = capture_echo_stream(16u * 1024 * 1024);
    std::uint64_t bytes = 0;
    for (int i = 0; i < 10; ++i) {
      const XferResult r = replay_rx_path(cap, batching, &bytes);
      std::printf("replay %s: %.3fs\n", prof, r.wall_s);
    }
    return 0;
  }

  BenchJson json("shard");

  // --- phase 1: GRO/batching gate on the server receive path, lanes = 1.
  const std::size_t capture_bytes = quick ? 16u * 1024 * 1024 : 48u * 1024 * 1024;
  std::printf("\nphase 1: capture %zu MB echo stream, replay the client "
              "frames into a standalone server endpoint, legacy vs "
              "batched+GRO\n",
              capture_bytes >> 20);
  std::fflush(stdout);
  const WireCapture cap = capture_echo_stream(capture_bytes);
  if (cap.frames.empty() || cap.data_segments < 1000) {
    std::fprintf(stderr, "FAIL: capture produced %zu frames / %llu data segments\n",
                 cap.frames.size(),
                 static_cast<unsigned long long>(cap.data_segments));
    return 1;
  }
  std::printf("captured %zu frames (%llu data segments, %llu payload bytes)\n",
              cap.frames.size(),
              static_cast<unsigned long long>(cap.data_segments),
              static_cast<unsigned long long>(cap.payload_bytes));
  std::fflush(stdout);
  // Interleaved repeats, best-of-N per leg: a single replay lasts tens of
  // milliseconds, where allocator warm-up and scheduling noise can swamp
  // the true ratio. The fastest run is the cleanest observation of each
  // path's cost.
  const int reps = quick ? 5 : 7;
  XferResult base, gro;
  std::uint64_t base_bytes = 0, gro_bytes = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const XferResult b = replay_rx_path(cap, false, &base_bytes);
    const XferResult g = replay_rx_path(cap, true, &gro_bytes);
    if (!b.ok || !g.ok) return 1;
    if (!base.ok || b.wall_s < base.wall_s) base = b;
    if (!gro.ok || g.wall_s < gro.wall_s) gro = g;
  }
  const double speedup =
      gro.segments_per_s / (base.segments_per_s > 0 ? base.segments_per_s : 1e-9);
  {
    TextTable table({"rx path", "data segments/s", "wall [s]",
                     "frames batched", "gro coalesced"});
    table.add_row({"per-frame (legacy)", TextTable::num(base.segments_per_s, 0),
                   TextTable::num(base.wall_s, 2), "0", "0"});
    table.add_row({"batched + GRO", TextTable::num(gro.segments_per_s, 0),
                   TextTable::num(gro.wall_s, 2),
                   std::to_string(gro.frames_batched),
                   std::to_string(gro.gro_coalesced)});
    std::printf("%s", table.render().c_str());
    std::printf("speedup: %.2fx (gate: >= 1.3x)\n", speedup);
    json.add_table("GRO/batching gate on the server rx path at lanes=1", table);
  }
  if (speedup < 1.3) {
    if (kSanitized) {
      std::printf("note: %.2fx below the 1.3x gate, waived under sanitizer "
                  "instrumentation (wall-clock gates are native-build only)\n",
                  speedup);
    } else {
      std::fprintf(stderr,
                   "FAIL: batched+GRO rx path is only %.2fx the legacy path "
                   "(gate: >= 1.3x)\n",
                   speedup);
      return 1;
    }
  }
  if (gro.gro_coalesced == 0) {
    std::fprintf(stderr, "FAIL: the batched run never coalesced a frame\n");
    return 1;
  }

  // --- phase 2: lane sweep with the takeover-determinism proof.
  std::vector<SweepPoint> points;
  TextTable table({"lanes", "segments/s", "takeover p99 [ms]", "wall [s]"});
  for (unsigned lanes : {1u, 2u, 4u, 8u}) {
    std::printf("\nrunning lane sweep point lanes=%u ...\n", lanes);
    std::fflush(stdout);
    const auto wall_start = std::chrono::steady_clock::now();
    const XferResult x =
        run_transfer(xfer_bytes, lanes, true, lanes == 1 ? &json : nullptr);
    const double p99 = storm_takeover_p99_ns(storm_conns, lanes);
    if (!x.ok || p99 < 0) return 1;
    SweepPoint p;
    p.lanes = lanes;
    p.segments_per_s = x.segments_per_s;
    p.takeover_p99_ns = p99;
    p.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             wall_start)
                   .count();
    table.add_row({std::to_string(lanes), TextTable::num(p.segments_per_s, 0),
                   TextTable::num(p.takeover_p99_ns / 1e6, 3),
                   TextTable::num(p.wall_s, 2)});
    points.push_back(p);
  }
  std::printf("%s", table.render().c_str());
  std::printf("expected: takeover p99 identical for every lane count — the\n"
              "lane merge is deterministic, so sharding is invisible in\n"
              "simulated time and only wall-clock cost may vary.\n");
  json.add_table("lane sweep: throughput and takeover latency", table);

  for (const SweepPoint& p : points) {
    if (p.takeover_p99_ns != points.front().takeover_p99_ns) {
      std::fprintf(stderr,
                   "FAIL: lanes=%u shifted takeover p99 (%.0f ns vs %.0f ns) — "
                   "the lane merge leaked into simulated behaviour\n",
                   p.lanes, p.takeover_p99_ns, points.front().takeover_p99_ns);
      return 1;
    }
  }

  // Machine-readable shard section (validated by check_bench_json.py).
  {
    obs::JsonWriter w;
    w.begin_object();
    w.key("gro").begin_object();
    w.key("mss").value(static_cast<std::uint64_t>(1460));
    w.key("base_segments_per_s").value(base.segments_per_s);
    w.key("gro_segments_per_s").value(gro.segments_per_s);
    w.key("speedup").value(speedup);
    w.key("sanitized").value(kSanitized);
    w.key("frames_batched").value(gro.frames_batched);
    w.key("gro_coalesced").value(gro.gro_coalesced);
    w.end_object();
    w.key("points").begin_array();
    for (const SweepPoint& p : points) {
      w.begin_object();
      w.key("lanes").value(static_cast<std::uint64_t>(p.lanes));
      w.key("segments_per_s").value(p.segments_per_s);
      w.key("takeover_p99_ns").value(p.takeover_p99_ns);
      w.key("wall_s").value(p.wall_s);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    json.add_section("shard", w.str());
  }
  if (!json.write()) return 1;
  return 0;
}
