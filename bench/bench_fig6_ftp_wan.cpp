// Figure 6: FTP send and receive rates over a wide-area network, for the
// paper's five file sizes, standard TCP vs TCP Failover.
//
// Paper result (KB/s):
//   file[KB]   get std   get fo    put std   put fo
//   0.2        8.75      8.75      512.38    536.05
//   1.3        59.03     59.03     2033.76   2036.87
//   18.2       90.41     70.74     3846.13   3890.42
//   144.9      156.80    138.35    219.52    200.31
//   1738.1     176.03    171.72    168.07    176.63
//
// Shapes to reproduce: (1) small downloads are RTT-bound, so standard and
// failover match; (2) uploads of buffer-sized files report enormous rates
// (the client clocks the local write); (3) large transfers converge to
// the WAN link rate (~175 KB/s) for all four configurations.
//
// Rates are computed "as indicated by the FTP client" (§9): downloads
// over the data-connection lifetime, uploads until the client has written
// the file to the socket (or the connection lifetime, whichever is
// longer per definition of done).
#include "apps/ftp.hpp"
#include "bench_util.hpp"
#include "core/replica_group.hpp"

namespace tfo::bench {
namespace {

constexpr double kFileSizesKb[] = {0.2, 1.3, 18.2, 144.9, 1738.1};

apps::WanParams wan_params() {
  apps::WanParams wp;
  // A ~1.5 Mb/s WAN path with 10 ms one-way delay and light loss —
  // matches the paper's observed ~175 KB/s ceiling for large files.
  wp.wan_link.bandwidth_bps = 1'500'000;
  wp.wan_link.propagation = milliseconds(10);
  wp.wan_link.loss_probability = 0.002;
  wp.wan_link.queue_limit = 40;
  wp.nic.rx_processing = microseconds(135);
  // The FTP client's user→kernel write path (a 2001-era Linux box writing
  // through the FTP client software): sets the reported small-upload rates.
  wp.tcp.send_copy_ns_per_byte = 250;
  wp.tcp.nagle = false;
  return wp;
}

struct Rates {
  double get_kbs = -1;
  double put_kbs = -1;
};

Rates measure(bool failover, double file_kb) {
  auto wan = apps::make_wan(wan_params());
  std::unique_ptr<core::ReplicaGroup> group;
  apps::FtpServer ftp_p(wan->primary->tcp());
  std::unique_ptr<apps::FtpServer> ftp_s;
  if (failover) {
    core::FailoverConfig cfg;
    cfg.ports = {21, 20};
    group = std::make_unique<core::ReplicaGroup>(*wan->primary, *wan->secondary, cfg);
    ftp_s = std::make_unique<apps::FtpServer>(wan->secondary->tcp());
    group->start();
  }
  const std::size_t bytes = static_cast<std::size_t>(file_kb * 1000);
  const Bytes content = apps::deterministic_payload(bytes, 17);
  ftp_p.add_file("f.bin", content);
  if (ftp_s) ftp_s->add_file("f.bin", content);

  apps::FtpClient client(wan->client->tcp(), wan->primary->address());
  auto run_until = [&](const std::function<bool()>& pred, SimDuration to) {
    const SimTime deadline = wan->sim.now() + static_cast<SimTime>(to);
    while (!pred()) {
      if (wan->sim.now() > deadline || wan->sim.pending() == 0) return pred();
      wan->sim.step();
    }
    return true;
  };

  bool login_done = false;
  client.login([&](bool) { login_done = true; });
  if (!run_until([&] { return login_done; }, seconds(60))) return {};
  wan->sim.run_for(milliseconds(200));

  Rates r;
  // --- download (RETR)
  bool get_done = false;
  Bytes got;
  const SimTime get_start = wan->sim.now();
  client.get("f.bin", [&](bool ok, Bytes b) {
    if (ok) got = std::move(b);
    get_done = true;
  });
  if (!run_until([&] { return get_done; }, seconds(3600)) || got.size() != bytes) {
    return {};
  }
  (void)get_start;
  {
    // Client-reported rate: over the data-connection lifetime (what an
    // FTP client clocks for a download).
    const SimTime open = client.data_opened_at();
    const SimTime close = client.data_closed_at();
    const double secs =
        close > open ? to_seconds(static_cast<SimDuration>(close - open)) : 1e-9;
    r.get_kbs = file_kb / secs;
  }
  wan->sim.run_for(seconds(2));

  // --- upload (STOR)
  bool put_done = false, put_ok = false;
  client.put("up.bin", content, [&](bool ok) {
    put_ok = ok;
    put_done = true;
  });
  if (!run_until([&] { return put_done; }, seconds(3600)) || !put_ok) return r;
  {
    // Client-reported rate: from data-connection open until the client
    // finished writing the file into the socket — the measurement that
    // produces the paper's very high small-file upload rates. A fixed
    // ~0.35 ms accounts for the client's per-transfer setup/syscall cost.
    const SimTime open = client.data_opened_at();
    const SimTime written = client.put_written_at();
    const double secs =
        (written > open ? to_seconds(static_cast<SimDuration>(written - open)) : 0.0) +
        3.5e-4;
    r.put_kbs = file_kb / secs;
  }
  client.quit();
  return r;
}

}  // namespace
}  // namespace tfo::bench

int main() {
  using namespace tfo;
  using namespace tfo::bench;
  print_header("Figure 6: FTP get/put rates over a WAN [KB/s]",
               "paper Fig. 6 — small gets RTT-bound (std == failover); small puts"
               " report local-write rates; large transfers converge to link rate");

  TextTable table({"file [KB]", "get std", "get failover", "put std", "put failover",
                   "paper get std/fo", "paper put std/fo"});
  const char* paper_get[] = {"8.75/8.75", "59.03/59.03", "90.41/70.74",
                             "156.80/138.35", "176.03/171.72"};
  const char* paper_put[] = {"512.38/536.05", "2033.76/2036.87", "3846.13/3890.42",
                             "219.52/200.31", "168.07/176.63"};
  int i = 0;
  for (double kb : kFileSizesKb) {
    const Rates std_r = measure(false, kb);
    const Rates fo_r = measure(true, kb);
    table.add_row({TextTable::num(kb, 1), TextTable::num(std_r.get_kbs, 2),
                   TextTable::num(fo_r.get_kbs, 2), TextTable::num(std_r.put_kbs, 2),
                   TextTable::num(fo_r.put_kbs, 2), paper_get[i], paper_put[i]});
    ++i;
  }
  std::printf("%s", table.render().c_str());
  std::printf("note: WAN rates \"are highly dependent on competing traffic and on\n"
              "packet loss rates\" (§9); the link here is a seeded 1.5 Mb/s, 20 ms\n"
              "RTT path with 0.2%% loss.\n");
  return 0;
}
