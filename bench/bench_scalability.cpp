// Experiment E5 (extension): bridge scalability. The paper measures one
// connection at a time; a production failover deployment serves many.
// Measures (a) aggregate echo throughput across 1..64 concurrent
// connections, standard vs failover, (b) connection churn (sessions
// established+closed per second) through the bridge, and (c) churn at
// storm scale knobs across lane configurations — the timing-wheel
// scheduler, the flat sharded connection tables and the batched NIC path
// all in one loop, with wall-clock cost per configuration.
#include <algorithm>
#include <chrono>

#include "bench_util.hpp"
#include "failover_fixture.hpp"

namespace tfo::bench {
namespace {

double aggregate_rate_kbs(bool failover, int conns) {
  // Declared before the servers: the LAN (and its simulator) must
  // outlive the servers' connections at scope exit.
  Testbed t;
  std::unique_ptr<apps::EchoServer> e1, e2;
  t = make_testbed(failover, [&](apps::Host& h) {
    auto e = std::make_unique<apps::EchoServer>(h.tcp(), kPort);
    (e1 ? e2 : e1) = std::move(e);
  });
  t.sim().run_for(milliseconds(100));

  const std::size_t per_conn = 2 * 1000 * 1000 / static_cast<std::size_t>(conns);
  std::vector<std::unique_ptr<test::EchoDriver>> drivers;
  const SimTime start = t.sim().now();
  for (int i = 0; i < conns; ++i) {
    drivers.push_back(std::make_unique<test::EchoDriver>(
        t.client(), t.server_addr(), kPort, per_conn, 8192));
  }
  const bool ok = t.run_until([&] {
    for (auto& d : drivers) {
      if (!d->done()) return false;
    }
    return true;
  }, seconds(3600));
  if (!ok) return -1;
  const double secs = to_seconds(static_cast<SimDuration>(t.sim().now() - start));
  return static_cast<double>(per_conn) * conns / 1000.0 / secs;
}

double churn_per_second(bool failover, int sessions) {
  // Declared before the servers: the LAN (and its simulator) must
  // outlive the servers' connections at scope exit.
  Testbed t;
  std::unique_ptr<apps::EchoServer> e1, e2;
  t = make_testbed(failover, [&](apps::Host& h) {
    auto e = std::make_unique<apps::EchoServer>(h.tcp(), kPort);
    (e1 ? e2 : e1) = std::move(e);
  });
  t.sim().run_for(milliseconds(100));

  const SimTime start = t.sim().now();
  int completed = 0;
  for (int i = 0; i < sessions; ++i) {
    auto conn = t.client().tcp().connect(t.server_addr(), kPort, {.nodelay = true});
    Bytes got;
    // Raw captures: a shared_ptr self-capture in the connection's own
    // callbacks is an ownership cycle and leaks one connection per session.
    conn->on_established = [c = conn.get()] { c->send(to_bytes("hi")); };
    conn->on_readable = [&got, c = conn.get()] { c->recv(got); };
    if (!t.run_until([&] { return got.size() == 2; }, seconds(30))) break;
    conn->close();
    if (!t.run_until([&] {
          return conn->state() == tcp::TcpState::kClosed ||
                 conn->state() == tcp::TcpState::kTimeWait;
        }, seconds(30))) {
      break;
    }
    ++completed;
  }
  const double secs = to_seconds(static_cast<SimDuration>(t.sim().now() - start));
  return completed / secs;
}

struct LaneChurnResult {
  double sessions_per_s = 0;  // simulated-time rate
  double wall_s = 0;          // wall-clock cost of the whole run
};

/// Session churn (connect + echo + close) in 64-wide concurrent waves at
/// storm scale knobs: gigabit wire, light per-frame cost, the wheel
/// scheduler and the flat sharded connection tables doing the work. The
/// simulated rate must be identical for every lane count (determinism);
/// the wall column is where layout cost shows up.
LaneChurnResult churn_lane_config(int sessions, unsigned lanes, bool batching) {
  const auto wall_start = std::chrono::steady_clock::now();
  apps::LanParams lp = paper_lan_params();
  lp.medium.bandwidth_bps = 1'000'000'000;
  lp.nic.rx_processing = microseconds(2);
  lp.nic.rx_jitter = 0;
  lp.lanes = {.lanes = lanes, .parallel = false};
  if (batching) {
    lp.nic.rx_batch_max = 32;
    lp.nic.rx_batch_window = microseconds(400);
    lp.nic.tx_batch_max = 32;
    lp.nic.gro.max_merged = 32;
  }

  Testbed t;
  std::unique_ptr<apps::EchoServer> e1, e2;
  t = make_testbed(true, [&](apps::Host& h) {
    auto e = std::make_unique<apps::EchoServer>(h.tcp(), kPort);
    (e1 ? e2 : e1) = std::move(e);
  }, lp);
  t.sim().run_for(milliseconds(100));

  constexpr int kWave = 64;
  const SimTime start = t.sim().now();
  int completed = 0;
  for (int base = 0; base < sessions; base += kWave) {
    const int wave = std::min(kWave, sessions - base);
    std::vector<std::shared_ptr<tcp::Connection>> conns(wave);
    std::vector<Bytes> got(wave);
    for (int i = 0; i < wave; ++i) {
      conns[i] = t.client().tcp().connect(t.server_addr(), kPort, {.nodelay = true});
      tcp::Connection* c = conns[i].get();
      c->on_established = [c] { c->send(to_bytes("hi")); };
      c->on_readable = [&got, i, c] { c->recv(got[i]); };
    }
    const bool echoed = t.run_until([&] {
      for (const Bytes& g : got) {
        if (g.size() != 2) return false;
      }
      return true;
    }, seconds(60));
    if (!echoed) break;
    for (auto& c : conns) c->close();
    if (!t.run_until([&] {
          for (const auto& c : conns) {
            if (c->state() != tcp::TcpState::kClosed &&
                c->state() != tcp::TcpState::kTimeWait) {
              return false;
            }
          }
          return true;
        }, seconds(60))) {
      break;
    }
    completed += wave;
  }
  LaneChurnResult r;
  const double secs = to_seconds(static_cast<SimDuration>(t.sim().now() - start));
  r.sessions_per_s = completed / secs;
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           wall_start)
                 .count();
  return r;
}

}  // namespace
}  // namespace tfo::bench

int main() {
  using namespace tfo;
  using namespace tfo::bench;
  print_header("E5: bridge scalability (extension; no table in the paper)",
               "aggregate throughput over concurrent connections + session churn");

  {
    TextTable table({"concurrent conns", "std TCP [KB/s]", "failover [KB/s]", "ratio"});
    for (int conns : {1, 4, 16, 64}) {
      const double s = aggregate_rate_kbs(false, conns);
      const double f = aggregate_rate_kbs(true, conns);
      table.add_row({std::to_string(conns), TextTable::num(s, 1), TextTable::num(f, 1),
                     TextTable::num(f / s, 2)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("expected: the failover/std ratio is flat in the connection count —\n"
                "the bridge's per-connection state is O(window), not O(stream), and\n"
                "the shared wire is the bottleneck either way.\n");
  }
  {
    TextTable table({"configuration", "sessions/second (connect+echo+close)"});
    table.add_row({"standard TCP", TextTable::num(churn_per_second(false, 200), 1)});
    table.add_row({"TCP failover", TextTable::num(churn_per_second(true, 200), 1)});
    std::printf("%s", table.render().c_str());
    std::printf("expected: churn overhead tracks the T1 connection-setup overhead\n"
                "(~1.5x), plus §8's merged four-way close.\n");
  }
  {
    const int sessions = 512;
    TextTable table({"lane configuration", "sessions/s (sim)", "wall [s]"});
    struct Config {
      const char* label;
      unsigned lanes;
      bool batching;
    };
    for (const Config& c :
         {Config{"per-frame, lanes=1", 1, false},
          Config{"batched+GRO, lanes=1", 1, true},
          Config{"batched+GRO, lanes=4", 4, true},
          Config{"batched+GRO, lanes=8", 8, true}}) {
      const LaneChurnResult r = churn_lane_config(sessions, c.lanes, c.batching);
      table.add_row({c.label, TextTable::num(r.sessions_per_s, 1),
                     TextTable::num(r.wall_s, 2)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("expected: the simulated rate is identical for every lane count\n"
                "(batching changes it only via the coalescing window) — the lane\n"
                "layout may only move the wall-clock column.\n");
  }
  return 0;
}
