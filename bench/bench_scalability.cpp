// Experiment E5 (extension): bridge scalability. The paper measures one
// connection at a time; a production failover deployment serves many.
// Measures (a) aggregate echo throughput across 1..64 concurrent
// connections, standard vs failover, and (b) connection churn (sessions
// established+closed per second) through the bridge.
#include "bench_util.hpp"
#include "failover_fixture.hpp"

namespace tfo::bench {
namespace {

double aggregate_rate_kbs(bool failover, int conns) {
  // Declared before the servers: the LAN (and its simulator) must
  // outlive the servers' connections at scope exit.
  Testbed t;
  std::unique_ptr<apps::EchoServer> e1, e2;
  t = make_testbed(failover, [&](apps::Host& h) {
    auto e = std::make_unique<apps::EchoServer>(h.tcp(), kPort);
    (e1 ? e2 : e1) = std::move(e);
  });
  t.sim().run_for(milliseconds(100));

  const std::size_t per_conn = 2 * 1000 * 1000 / static_cast<std::size_t>(conns);
  std::vector<std::unique_ptr<test::EchoDriver>> drivers;
  const SimTime start = t.sim().now();
  for (int i = 0; i < conns; ++i) {
    drivers.push_back(std::make_unique<test::EchoDriver>(
        t.client(), t.server_addr(), kPort, per_conn, 8192));
  }
  const bool ok = t.run_until([&] {
    for (auto& d : drivers) {
      if (!d->done()) return false;
    }
    return true;
  }, seconds(3600));
  if (!ok) return -1;
  const double secs = to_seconds(static_cast<SimDuration>(t.sim().now() - start));
  return static_cast<double>(per_conn) * conns / 1000.0 / secs;
}

double churn_per_second(bool failover, int sessions) {
  // Declared before the servers: the LAN (and its simulator) must
  // outlive the servers' connections at scope exit.
  Testbed t;
  std::unique_ptr<apps::EchoServer> e1, e2;
  t = make_testbed(failover, [&](apps::Host& h) {
    auto e = std::make_unique<apps::EchoServer>(h.tcp(), kPort);
    (e1 ? e2 : e1) = std::move(e);
  });
  t.sim().run_for(milliseconds(100));

  const SimTime start = t.sim().now();
  int completed = 0;
  for (int i = 0; i < sessions; ++i) {
    auto conn = t.client().tcp().connect(t.server_addr(), kPort, {.nodelay = true});
    Bytes got;
    // Raw captures: a shared_ptr self-capture in the connection's own
    // callbacks is an ownership cycle and leaks one connection per session.
    conn->on_established = [c = conn.get()] { c->send(to_bytes("hi")); };
    conn->on_readable = [&got, c = conn.get()] { c->recv(got); };
    if (!t.run_until([&] { return got.size() == 2; }, seconds(30))) break;
    conn->close();
    if (!t.run_until([&] {
          return conn->state() == tcp::TcpState::kClosed ||
                 conn->state() == tcp::TcpState::kTimeWait;
        }, seconds(30))) {
      break;
    }
    ++completed;
  }
  const double secs = to_seconds(static_cast<SimDuration>(t.sim().now() - start));
  return completed / secs;
}

}  // namespace
}  // namespace tfo::bench

int main() {
  using namespace tfo;
  using namespace tfo::bench;
  print_header("E5: bridge scalability (extension; no table in the paper)",
               "aggregate throughput over concurrent connections + session churn");

  {
    TextTable table({"concurrent conns", "std TCP [KB/s]", "failover [KB/s]", "ratio"});
    for (int conns : {1, 4, 16, 64}) {
      const double s = aggregate_rate_kbs(false, conns);
      const double f = aggregate_rate_kbs(true, conns);
      table.add_row({std::to_string(conns), TextTable::num(s, 1), TextTable::num(f, 1),
                     TextTable::num(f / s, 2)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("expected: the failover/std ratio is flat in the connection count —\n"
                "the bridge's per-connection state is O(window), not O(stream), and\n"
                "the shared wire is the bottleneck either way.\n");
  }
  {
    TextTable table({"configuration", "sessions/second (connect+echo+close)"});
    table.add_row({"standard TCP", TextTable::num(churn_per_second(false, 200), 1)});
    table.add_row({"TCP failover", TextTable::num(churn_per_second(true, 200), 1)});
    std::printf("%s", table.render().c_str());
    std::printf("expected: churn overhead tracks the T1 connection-setup overhead\n"
                "(~1.5x), plus §8's merged four-way close.\n");
  }
  return 0;
}
