// Experiment E2: ablations of the bridge's design choices (DESIGN.md §5).
//
//  A. min-window adaptation (§3.2 "adapts the client's send rate to the
//     slower of the two servers"): slow the secondary's protocol
//     processing and watch the client's achieved send rate track the
//     slower replica instead of overrunning it.
//  B. output-queue occupancy: peak bytes parked in the primary/secondary
//     output queues as a function of reply size — the memory cost of the
//     merge stage.
//  C. gratuitous-ARP repeats (takeover hardening) under loss: probability
//     that a failover strands the client, vs number of repeats.
//  D. medium duplexing: the paper attributes the Figure 5 receive-rate
//     collapse to the diverted reply traffic sharing one half-duplex
//     collision domain. Re-running the stream on a full-duplex (switched)
//     fabric isolates that effect.
#include "bench_util.hpp"
#include "failover_fixture.hpp"

namespace tfo::bench {
namespace {

// ------------------------------------------------------------------- A

double send_rate_with_slow_secondary(SimDuration extra_proc) {
  apps::LanParams lp = paper_lan_params();
  // Declared before the servers: the LAN (and its simulator) must
  // outlive the servers' connections at scope exit.
  Testbed t;
  std::unique_ptr<apps::SinkServer> s1, s2;
  t = make_testbed(true, [&](apps::Host& h) {
    auto s = std::make_unique<apps::SinkServer>(h.tcp(), kPort);
    (s1 ? s2 : s1) = std::move(s);
  }, lp);
  // The secondary's application drains its receive buffer slowly: model a
  // slower replica by shrinking its receive buffer (less drain headroom).
  // extra_proc scales the handicap.
  const double slowdown = 1.0 + to_seconds(extra_proc) * 1e3;  // ms -> factor
  t.lan->secondary->tcp().mutable_params().recv_buf =
      static_cast<std::size_t>(65536 / slowdown);

  t.sim().run_for(milliseconds(100));
  auto conn = t.client().tcp().connect(t.server_addr(), kPort, {.nodelay = true});
  bool established = false;
  conn->on_established = [&] { established = true; };
  t.run_until([&] { return established; }, seconds(10));

  constexpr std::size_t kTotal = 20 * 1000 * 1000;
  const SimTime start = t.sim().now();
  std::size_t queued = 0;
  std::function<void()> feed = [&] {
    if (queued >= kTotal) return;
    const std::size_t n = std::min<std::size_t>(128 * 1024, kTotal - queued);
    queued += n;
    conn->send(apps::deterministic_payload(n, 1), [&] { feed(); });
  };
  feed();
  if (!t.run_until([&] {
        return s1->bytes_received() >= kTotal && s2->bytes_received() >= kTotal;
      }, seconds(3600))) {
    return -1;
  }
  const double secs = to_seconds(static_cast<SimDuration>(t.sim().now() - start));
  return static_cast<double>(kTotal) / 1000.0 / secs;
}

// ------------------------------------------------------------------- B

std::size_t peak_queue_bytes(std::size_t reply_size, SimDuration secondary_delack) {
  // Declared before the servers: the LAN (and its simulator) must
  // outlive the servers' connections at scope exit.
  Testbed t;
  std::unique_ptr<apps::BlastServer> b1, b2;
  apps::LanParams lp = paper_lan_params();
  t = make_testbed(true, [&](apps::Host& h) {
    auto b = std::make_unique<apps::BlastServer>(h.tcp(), kPort);
    (b1 ? b2 : b1) = std::move(b);
  }, lp);
  t.lan->secondary->tcp().mutable_params().delayed_ack = secondary_delack;
  t.lan->secondary->nic();  // (secondary skew comes from delack alone)
  t.sim().run_for(milliseconds(100));

  auto conn = t.client().tcp().connect(t.server_addr(), kPort, {.nodelay = true});
  bool established = false;
  conn->on_established = [&] { established = true; };
  t.run_until([&] { return established; }, seconds(10));

  std::size_t received = 0;
  conn->on_readable = [&] {
    Bytes b;
    conn->recv(b);
    received += b.size();
  };
  char req[48];
  std::snprintf(req, sizeof(req), "GET %zu 1\n", reply_size);
  conn->send(to_bytes(req));

  std::size_t peak = 0;
  const tcp::ConnKey key{t.server_addr(), kPort, t.client().address(),
                         conn->key().local_port};
  while (received < reply_size && t.sim().pending() > 0) {
    t.sim().step();
    if (auto* bc = t.group->primary_bridge().find(key)) {
      peak = std::max(peak, bc->primary_queue_bytes() + bc->secondary_queue_bytes());
    }
  }
  return peak;
}

// ------------------------------------------------------------------- C

/// Returns true if the client finished its transfer after a primary crash
/// with the given number of gratuitous-ARP repeats under heavy loss.
bool takeover_succeeds(int repeats, double loss, std::uint64_t seed) {
  apps::LanParams lp;  // default fast params: this is a yes/no experiment
  lp.medium.loss_probability = loss;
  lp.medium.loss_seed = seed;
  lp.tcp.max_rto = seconds(5);
  core::FailoverConfig cfg;
  cfg.heartbeat_period = milliseconds(5);
  cfg.failure_timeout = milliseconds(100);
  cfg.gratuitous_arp_repeats = repeats;
  // Declared before the servers: the LAN (and its simulator) must
  // outlive the servers' connections at scope exit.
  Testbed t;
  std::unique_ptr<apps::EchoServer> e1, e2;
  t = make_testbed(true, [&](apps::Host& h) {
    auto e = std::make_unique<apps::EchoServer>(h.tcp(), kPort);
    (e1 ? e2 : e1) = std::move(e);
  }, lp, cfg);
  t.sim().run_for(milliseconds(100));
  test::EchoDriver d(t.client(), t.server_addr(), kPort, 30000, 1500);
  if (!t.run_until([&] { return d.received().size() > 10000; }, seconds(300))) {
    return false;
  }
  t.lan->primary->fail();
  return t.run_until([&] { return d.done(); }, seconds(300)) && d.verify();
}

// ------------------------------------------------------------------- D

double receive_rate_kbs(bool failover, bool half_duplex) {
  apps::LanParams lp = paper_lan_params();
  lp.medium.half_duplex = half_duplex;
  // Declared before the servers: the LAN (and its simulator) must
  // outlive the servers' connections at scope exit.
  Testbed t;
  std::unique_ptr<apps::BlastServer> b1, b2;
  t = make_testbed(failover, [&](apps::Host& h) {
    auto b = std::make_unique<apps::BlastServer>(h.tcp(), kPort);
    (b1 ? b2 : b1) = std::move(b);
  }, lp);
  t.sim().run_for(milliseconds(100));
  auto conn = t.client().tcp().connect(t.server_addr(), kPort, {.nodelay = true});
  bool established = false;
  conn->on_established = [&] { established = true; };
  t.run_until([&] { return established; }, seconds(10));
  std::size_t received = 0;
  conn->on_readable = [&] {
    Bytes b;
    conn->recv(b);
    received += b.size();
  };
  constexpr std::size_t kBytes = 20 * 1000 * 1000;
  const SimTime start = t.sim().now();
  char req[48];
  std::snprintf(req, sizeof(req), "GET %zu 1\n", kBytes);
  conn->send(to_bytes(req));
  if (!t.run_until([&] { return received >= kBytes; }, seconds(3600))) return -1;
  return static_cast<double>(kBytes) / 1000.0 /
         to_seconds(static_cast<SimDuration>(t.sim().now() - start));
}

}  // namespace
}  // namespace tfo::bench

int main() {
  using namespace tfo;
  using namespace tfo::bench;

  print_header("E2-A: min-window adaptation to the slower replica",
               "paper §3.2: \"adapts the client's send rate to the slower of the"
               " two servers\"");
  {
    TextTable table({"secondary handicap", "client send rate [KB/s]"});
    struct Case {
      const char* label;
      SimDuration extra;
    } cases[] = {{"none (buffers equal)", 0},
                 {"2x smaller recv buffer", milliseconds(1)},
                 {"4x smaller recv buffer", milliseconds(3)},
                 {"8x smaller recv buffer", milliseconds(7)}};
    for (const auto& c : cases) {
      table.add_row({c.label, TextTable::num(send_rate_with_slow_secondary(c.extra), 1)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("expected: rate falls monotonically — min(win_P, win_S) throttles the\n"
                "client to what the slower replica can absorb.\n");
  }

  print_header("E2-B: bridge output-queue occupancy",
               "cost of the §3.2 merge stage (no table in the paper)");
  {
    TextTable table({"reply size", "peak queued bytes (balanced)",
                     "peak queued bytes (secondary delack 200ms)"});
    for (std::size_t size : {16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024}) {
      table.add_row({size_label(size),
                     std::to_string(peak_queue_bytes(size, milliseconds(100))),
                     std::to_string(peak_queue_bytes(size, milliseconds(200)))});
    }
    std::printf("%s", table.render().c_str());
    std::printf("expected: occupancy is bounded by the slower replica's lag (roughly\n"
                "one window), not by the reply size.\n");
  }

  print_header("E2-C: gratuitous-ARP repeats vs takeover success under loss",
               "hardening of §5 step 5 (single ARP broadcast is a single point of"
               " loss)");
  {
    TextTable table({"repeats", "loss", "takeovers ok / trials"});
    for (int repeats : {0, 1, 4}) {
      for (double loss : {0.1, 0.3}) {
        int ok = 0;
        const int trials = 10;
        for (std::uint64_t seed = 1; seed <= trials; ++seed) {
          if (takeover_succeeds(repeats, loss, seed * 131)) ++ok;
        }
        table.add_row({std::to_string(repeats), TextTable::num(loss, 2),
                       std::to_string(ok) + " / " + std::to_string(trials)});
      }
    }
    std::printf("%s", table.render().c_str());
    std::printf("expected: without repeats, a lost gratuitous ARP strands the client\n"
                "at high loss rates; a handful of repeats makes takeover reliable.\n");
  }

  print_header("E2-D: the Figure 5 receive-rate collapse is medium contention",
               "paper §9: the diverted S->P reply stream shares the half-duplex"
               " wire with the P->client stream");
  {
    TextTable table({"medium", "std TCP [KB/s]", "failover [KB/s]", "failover/std"});
    for (bool hd : {true, false}) {
      const double s = receive_rate_kbs(false, hd);
      const double f = receive_rate_kbs(true, hd);
      table.add_row({hd ? "half duplex (paper's hub)" : "full duplex (switch)",
                     TextTable::num(s, 1), TextTable::num(f, 1),
                     TextTable::num(f / s, 2)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("expected: on a switch, the diverted traffic no longer contends with\n"
                "the client-bound stream, so the failover penalty largely vanishes —\n"
                "the paper's collapse is a property of its shared Ethernet, not of\n"
                "the bridge protocol itself.\n");
  }
  return 0;
}
