// Experiment E4 (extension): the cost of replication degree. Sweeps the
// replica-chain length from 1 (plain TCP) to 4 and measures request/reply
// latency, bulk receive rate, and the client-observed stall when the head
// crashes. Quantifies the paper's §1 claim that higher replication
// degrees are achievable by daisy-chaining.
#include "bench_util.hpp"
#include "core/replica_chain.hpp"
#include "failover_fixture.hpp"

namespace tfo::bench {
namespace {

struct ChainBed {
  std::unique_ptr<apps::Lan> lan;
  std::vector<std::unique_ptr<apps::Host>> extra;
  std::vector<apps::Host*> servers;
  std::vector<std::unique_ptr<apps::EchoServer>> echoes;
  std::unique_ptr<core::ReplicaChain> chain;

  bool run_until(const std::function<bool()>& pred, SimDuration to) {
    const SimTime deadline = lan->sim.now() + static_cast<SimTime>(to);
    while (!pred()) {
      if (lan->sim.now() > deadline || lan->sim.pending() == 0) return pred();
      lan->sim.step();
    }
    return true;
  }
};

ChainBed make_chain(std::size_t n) {
  ChainBed bed;
  bed.lan = apps::make_lan(paper_lan_params());
  bed.servers = {bed.lan->primary.get()};
  if (n >= 2) bed.servers.push_back(bed.lan->secondary.get());
  for (std::size_t i = 2; i < n; ++i) {
    apps::HostParams hp;
    hp.name = "backup" + std::to_string(i);
    hp.addr = ip::Ipv4::parse(("10.0.0." + std::to_string(20 + i)).c_str());
    hp.nic = paper_lan_params().nic;
    hp.tcp = paper_lan_params().tcp;
    hp.seed = 100 + i;
    auto host = std::make_unique<apps::Host>(bed.lan->sim, hp, *bed.lan->wire);
    bed.servers.push_back(host.get());
    bed.extra.push_back(std::move(host));
  }
  std::vector<apps::Host*> all = bed.servers;
  all.push_back(bed.lan->client.get());
  for (auto* a : all) {
    for (auto* b : all) {
      if (a != b) a->arp().add_static(b->address(), b->nic().mac());
    }
  }
  for (auto* s : bed.servers) {
    bed.echoes.push_back(std::make_unique<apps::EchoServer>(s->tcp(), kPort));
  }
  if (n >= 2) {
    core::FailoverConfig cfg;
    cfg.ports = {kPort};
    bed.chain = std::make_unique<core::ReplicaChain>(bed.servers, cfg);
    bed.chain->start();
  }
  bed.lan->sim.run_for(milliseconds(100));
  return bed;
}

double echo_latency_us(std::size_t n, std::size_t msg) {
  auto bed = make_chain(n);
  auto conn = bed.lan->client->tcp().connect(bed.servers[0]->address(), kPort,
                                             {.nodelay = true});
  bool established = false;
  conn->on_established = [&] { established = true; };
  bed.run_until([&] { return established; }, seconds(10));
  Sampler us;
  Bytes got;
  conn->on_readable = [&] { conn->recv(got); };
  for (int i = 0; i < 15; ++i) {
    got.clear();
    const SimTime start = bed.lan->sim.now();
    conn->send(apps::deterministic_payload(msg, static_cast<std::uint32_t>(i)));
    if (!bed.run_until([&] { return got.size() >= msg; }, seconds(30))) return -1;
    us.add(to_microseconds(static_cast<SimDuration>(bed.lan->sim.now() - start)));
  }
  return us.median();
}

double bulk_rate_kbs(std::size_t n) {
  auto bed = make_chain(n);
  test::EchoDriver d(*bed.lan->client, bed.servers[0]->address(), kPort,
                     5 * 1000 * 1000, 32 * 1024);
  const SimTime start = bed.lan->sim.now();
  if (!bed.run_until([&] { return d.done(); }, seconds(3600))) return -1;
  const double secs = to_seconds(static_cast<SimDuration>(bed.lan->sim.now() - start));
  return 5e6 / 1000.0 / secs;
}

double head_crash_stall_ms(std::size_t n) {
  auto bed = make_chain(n);
  test::EchoDriver d(*bed.lan->client, bed.servers[0]->address(), kPort, 300 * 1024,
                     8192);
  if (!bed.run_until([&] { return d.received().size() > 100 * 1024; }, seconds(600))) {
    return -1;
  }
  bed.chain->crash(0);
  SimTime last_progress = bed.lan->sim.now();
  std::size_t last = d.received().size();
  SimDuration longest = 0;
  while (!d.done() && bed.lan->sim.pending() > 0) {
    bed.lan->sim.step();
    if (d.received().size() != last) {
      longest = std::max<SimDuration>(
          longest, static_cast<SimDuration>(bed.lan->sim.now() - last_progress));
      last = d.received().size();
      last_progress = bed.lan->sim.now();
    }
  }
  return d.done() && d.verify() ? to_milliseconds(longest) : -1;
}

}  // namespace
}  // namespace tfo::bench

int main() {
  using namespace tfo;
  using namespace tfo::bench;
  print_header("E4: replication degree (daisy-chained replicas)",
               "paper §1: higher degrees of replication via daisy-chaining"
               " (out of the paper's scope; implemented and measured here)");

  TextTable table({"replicas", "4KB echo [us]", "64KB echo [us]",
                   "bulk receive [KB/s]", "head-crash stall [ms]"});
  for (std::size_t n : {1u, 2u, 3u, 4u}) {
    const double lat4 = echo_latency_us(n, 4096);
    const double lat64 = echo_latency_us(n, 65536);
    const double rate = bulk_rate_kbs(n);
    const double stall = n >= 2 ? head_crash_stall_ms(n) : -1;
    table.add_row({std::to_string(n), TextTable::num(lat4, 1), TextTable::num(lat64, 1),
                   TextTable::num(rate, 1),
                   n >= 2 ? TextTable::num(stall, 1) : std::string("n/a")});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "expected shape: every reply crosses the wire once per chain hop, so\n"
      "latency and the bulk-rate penalty grow roughly linearly with the\n"
      "replica count, while the failover stall stays flat (detection +\n"
      "one retransmission cycle, §5) regardless of depth.\n");
  return 0;
}
