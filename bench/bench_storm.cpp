// Storm bench: N connections are live when the primary dies and all of
// them take over at once. This is the scale experiment behind the
// timing-wheel scheduler and the flat connection tables: the paper's §9
// measurements stop at a handful of connections, so this bench probes the
// regime the failover design claims to support — a server's entire
// connection population failing over simultaneously.
//
// Reported per population size N:
//   * whole-system memory per connection (client + both replicas +
//     bridges), from the process allocator;
//   * per-connection takeover latency: each client connection sends a
//     probe the instant the primary dies and the stall until its echo
//     returns is one sample — p50/p99 over all N;
//   * scheduler counters (wheel inserts, cascades, exact-heap traffic).
//
// A scheduler A/B phase also measures heap allocations per
// armed-then-cancelled timer (the dominant timer pattern: every ACK
// re-arms the retransmit timer) on the timing wheel vs the legacy
// priority-queue scheduler, and FAILS the run if the wheel is not at
// least 5x cheaper.
//
// Artifact: BENCH_storm.json ("storm" section schema validated by
// scripts/check_bench_json.py).
#include <malloc.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>

#include "bench_util.hpp"
#include "sim/timer.hpp"

// ----------------------------------------------------------------------
// Global allocation accounting. Counts every operator new/delete in the
// process; live_bytes uses the allocator's real block size so the
// bytes-per-connection figure reflects actual footprint, not requested
// sizes.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_live_bytes{0};

void* counted_alloc(std::size_t n) {
  void* p = std::malloc(n ? n : 1);
  if (p) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    g_live_bytes.fetch_add(malloc_usable_size(p), std::memory_order_relaxed);
  }
  return p;
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n ? n : 1) != 0) {
    return nullptr;
  }
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_live_bytes.fetch_add(malloc_usable_size(p), std::memory_order_relaxed);
  return p;
}

void counted_free(void* p) noexcept {
  if (!p) return;
  g_live_bytes.fetch_sub(malloc_usable_size(p), std::memory_order_relaxed);
  std::free(p);
}
}  // namespace

void* operator new(std::size_t n) {
  void* p = counted_alloc(n);
  if (!p) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}
void* operator new(std::size_t n, std::align_val_t a) {
  void* p = counted_aligned_alloc(n, static_cast<std::size_t>(a));
  if (!p) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}

namespace tfo::bench {
namespace {

// ------------------------------------------------------- scheduler A/B

/// Heap allocations for `cycles` armed-then-cancelled timer cycles on one
/// scheduler (pool pre-warmed so steady state is measured, not growth).
std::uint64_t timer_cycle_allocs(sim::SchedulerKind kind, int cycles) {
  sim::Simulator sim(kind);
  sim::Timer timer(sim);
  for (int i = 0; i < 1024; ++i) {
    timer.start(milliseconds(1), [] {});
    timer.stop();
  }
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < cycles; ++i) {
    timer.start(milliseconds(1), [] {});
    timer.stop();
  }
  return g_alloc_count.load(std::memory_order_relaxed) - before;
}

// ------------------------------------------------------------ the storm

struct StormResult {
  std::size_t conns = 0;
  std::uint64_t bytes_per_conn = 0;
  double p50_ns = -1;
  double p99_ns = -1;
  double wall_s = 0;
  sim::Simulator::Stats sched;
  bool ok = false;
};

constexpr std::size_t kProbeBytes = 16;
constexpr std::size_t kConnsPerClientHost = 15'000;  // < 16384 ephemerals

/// One client-side storm connection: completes an echo round-trip before
/// the crash, then probes at the crash instant and records its stall.
struct StormConn {
  std::shared_ptr<tcp::Connection> conn;
  std::size_t rx_bytes = 0;
  bool ready = false;     // pre-crash echo completed
  SimTime replied_at = 0;  // probe echo completed (0 = still waiting)
};

StormResult run_storm(std::size_t n_conns, BenchJson* json) {
  const auto wall_start = std::chrono::steady_clock::now();

  apps::LanParams lp = paper_lan_params();
  // Scale knobs: the storm measures scheduler/table behaviour, not the
  // paper's 100 Mb/s testbed, so the wire is gigabit and per-frame host
  // processing light — otherwise N=100k is bandwidth-bound and every
  // latency collapses into the serialization queue.
  lp.medium.bandwidth_bps = 1'000'000'000;
  lp.nic.rx_processing = microseconds(2);
  lp.nic.rx_jitter = 0;

  Testbed t;
  std::unique_ptr<apps::EchoServer> e1, e2;
  t = make_testbed(true, [&](apps::Host& h) {
    auto e = std::make_unique<apps::EchoServer>(h.tcp(), kPort);
    (e1 ? e2 : e1) = std::move(e);
  }, lp);

  // Extra client hosts: one ephemeral-port space holds ~16k connections,
  // so the population is spread over ceil(N / 15k) hosts on the segment.
  std::vector<std::unique_ptr<apps::Host>> clients;
  clients.reserve(1 + n_conns / kConnsPerClientHost);
  {
    apps::HostParams hp;
    hp.nic = lp.nic;
    hp.arp = lp.arp;
    hp.tcp = lp.tcp;
    for (std::size_t i = 0; kConnsPerClientHost * (i + 1) < n_conns; ++i) {
      hp.name = "client" + std::to_string(i + 1);
      hp.addr = ip::Ipv4::parse(("10.0.0." + std::to_string(100 + i)).c_str());
      hp.seed = 1000 + i;
      clients.push_back(
          std::make_unique<apps::Host>(t.sim(), hp, *t.lan->wire));
      clients.back()->arp().add_static(t.lan->primary->address(),
                                       t.lan->primary->nic().mac());
      clients.back()->arp().add_static(t.lan->secondary->address(),
                                       t.lan->secondary->nic().mac());
    }
  }
  t.sim().run_for(milliseconds(100));  // detectors and ARP settle

  const std::uint64_t bytes_baseline = g_live_bytes.load(std::memory_order_relaxed);

  std::vector<StormConn> conns(n_conns);
  std::size_t ready = 0;

  // Ramp the population up: one open per 2 µs keeps the handshake burst
  // from overflowing queues while still exercising bulk insertion.
  apps::Host* client0 = t.lan->client.get();
  for (std::size_t i = 0; i < n_conns; ++i) {
    apps::Host* ch = (i / kConnsPerClientHost) == 0
                         ? client0
                         : clients[i / kConnsPerClientHost - 1].get();
    t.sim().schedule_after(static_cast<SimDuration>(i) * 2'000, [&, i, ch] {
      StormConn& sc = conns[i];
      sc.conn = ch->tcp().connect(t.server_addr(), kPort, {.nodelay = true});
      tcp::Connection* raw = sc.conn.get();
      raw->on_established = [raw] {
        raw->send(apps::deterministic_payload(kProbeBytes, 1));
      };
      raw->on_readable = [&, i, raw] {
        Bytes data;
        raw->recv(data);
        StormConn& c = conns[i];
        c.rx_bytes += data.size();
        if (!c.ready && c.rx_bytes >= kProbeBytes) {
          c.ready = true;
          ++ready;
        }
      };
    });
  }
  if (!t.run_until([&] { return ready == n_conns; }, seconds(1200))) {
    std::fprintf(stderr, "storm N=%zu: only %zu/%zu connections ready\n",
                 n_conns, ready, n_conns);
    return {};
  }

  const std::uint64_t bytes_loaded = g_live_bytes.load(std::memory_order_relaxed);

  // The crash. Every connection fires a probe at the same instant: the
  // probes die on the dark primary, the detector declares it dead, the
  // secondary takes over the service address, and each connection's
  // retransmission finds the adopted state.
  const SimTime crash_at = t.sim().now();
  std::size_t replied = 0;
  for (std::size_t i = 0; i < n_conns; ++i) {
    t.sim().schedule_after(0, [&, i] {
      StormConn& sc = conns[i];
      tcp::Connection* raw = sc.conn.get();
      raw->on_readable = [&, i, raw] {
        Bytes data;
        raw->recv(data);
        StormConn& c = conns[i];
        c.rx_bytes += data.size();
        if (c.replied_at == 0 && c.rx_bytes >= 2 * kProbeBytes) {
          c.replied_at = t.sim().now();
          ++replied;
        }
      };
      raw->send(apps::deterministic_payload(kProbeBytes, 2));
    });
  }
  t.group->crash_primary();
  if (!t.run_until([&] { return replied == n_conns; }, seconds(1200))) {
    std::fprintf(stderr, "storm N=%zu: only %zu/%zu probes answered\n",
                 n_conns, replied, n_conns);
    return {};
  }

  Sampler latency;
  for (const StormConn& sc : conns) {
    latency.add(static_cast<double>(sc.replied_at - crash_at));
  }

  StormResult r;
  r.conns = n_conns;
  r.bytes_per_conn = bytes_loaded > bytes_baseline
                         ? (bytes_loaded - bytes_baseline) / n_conns
                         : 0;
  r.p50_ns = latency.percentile(50);
  r.p99_ns = latency.percentile(99);
  r.sched = t.sim().stats();
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           wall_start)
                 .count();
  r.ok = true;
  if (json) {
    json->capture_host(*t.lan->secondary);
    json->capture_host(*t.lan->client);
  }
  // Teardown hygiene: drop the connections before the testbed leaves
  // scope (their destructors cancel timers on the simulator).
  conns.clear();
  return r;
}

}  // namespace
}  // namespace tfo::bench

int main(int argc, char** argv) {
  using namespace tfo;
  using namespace tfo::bench;
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  print_header("E7: failover storm at scale",
               "extension of paper §9 (the paper measures single connections; "
               "this sweeps the whole population)");

  // --- scheduler A/B: allocations per armed-then-cancelled timer.
  const int ab_cycles = quick ? 20'000 : 200'000;
  const std::uint64_t wheel_allocs =
      timer_cycle_allocs(sim::SchedulerKind::kTimingWheel, ab_cycles);
  const std::uint64_t legacy_allocs =
      timer_cycle_allocs(sim::SchedulerKind::kLegacyHeap, ab_cycles);
  const double ratio =
      static_cast<double>(legacy_allocs) /
      static_cast<double>(wheel_allocs == 0 ? 1 : wheel_allocs);
  std::printf("\nscheduler A/B over %d arm-then-cancel timer cycles:\n"
              "  legacy heap : %llu allocs (%.2f per cycle)\n"
              "  timing wheel: %llu allocs (%.2f per cycle)\n"
              "  ratio       : %.0fx\n",
              ab_cycles, static_cast<unsigned long long>(legacy_allocs),
              static_cast<double>(legacy_allocs) / ab_cycles,
              static_cast<unsigned long long>(wheel_allocs),
              static_cast<double>(wheel_allocs) / ab_cycles, ratio);
  if (ratio < 5.0) {
    std::fprintf(stderr,
                 "FAIL: timing wheel is only %.1fx cheaper than the legacy "
                 "scheduler (gate: >= 5x)\n",
                 ratio);
    return 1;
  }

  // --- the storm sweep.
  std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{1'000, 5'000}
            : std::vector<std::size_t>{1'000, 10'000, 100'000};

  BenchJson json("storm");
  TextTable table({"conns", "mem/conn", "takeover p50 [ms]",
                   "takeover p99 [ms]", "wheel inserts", "cascades", "wall [s]"});
  std::vector<StormResult> results;
  for (std::size_t n : sizes) {
    std::printf("\nrunning storm N=%zu ...\n", n);
    std::fflush(stdout);
    // Capture host snapshots from the smallest run (bounded timelines).
    StormResult r = run_storm(n, results.empty() ? &json : nullptr);
    if (!r.ok) {
      std::fprintf(stderr, "FAIL: storm N=%zu did not complete\n", n);
      return 1;
    }
    table.add_row({std::to_string(r.conns), size_label(r.bytes_per_conn),
                   TextTable::num(r.p50_ns / 1e6, 2),
                   TextTable::num(r.p99_ns / 1e6, 2),
                   std::to_string(r.sched.wheel_inserts),
                   std::to_string(r.sched.cascades), TextTable::num(r.wall_s, 1)});
    results.push_back(r);
  }
  std::printf("%s", table.render().c_str());
  std::printf("expected shape: p50 ~ detector timeout + probe retransmission;\n"
              "p99 adds the takeover burst's queueing; mem/conn flat in N.\n");
  json.add_table("failover storm: population size vs takeover latency", table);

  // Machine-readable storm section (validated by check_bench_json.py).
  {
    obs::JsonWriter w;
    w.begin_object();
    w.key("points").begin_array();
    for (const StormResult& r : results) {
      w.begin_object();
      w.key("conns").value(static_cast<std::uint64_t>(r.conns));
      w.key("bytes_per_conn").value(r.bytes_per_conn);
      w.key("takeover_p50_ns").value(r.p50_ns);
      w.key("takeover_p99_ns").value(r.p99_ns);
      w.end_object();
    }
    w.end_array();
    w.key("alloc").begin_object();
    w.key("cycles").value(static_cast<std::uint64_t>(ab_cycles));
    w.key("legacy_allocs").value(legacy_allocs);
    w.key("wheel_allocs").value(wheel_allocs);
    w.key("ratio").value(ratio);
    w.end_object();
    w.end_object();
    json.add_section("storm", w.str());
  }
  if (!json.write()) return 1;
  return 0;
}
