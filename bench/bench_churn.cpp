// Churn bench: an open-loop HTTP load generator (apps::LoadGen, the
// jtest shape) drives the replicated web server at a configured
// connections/s rate — arrivals come from a seeded schedule, never from
// completions, so a stalling server faces undiminished offered load.
// Mid-run the primary is crashed: the bench reports sustained requests/s,
// established connections, and the client-visible p50/p99 request latency
// *across the failover*, at churn rates up to 10k conn/s.
//
// What the accept-path work has to sustain here:
//   * a real listen backlog — SYN bursts beyond it are dropped and
//     counted (tcp.listen_overflows), never allocated;
//   * TIME_WAIT recycling — at the top churn rate the client's ephemeral
//     port space wraps inside 2*MSL, so every reused 4-tuple lands on a
//     server connection still parked in TIME_WAIT and must displace it
//     via the newer-ISN criterion (tcp.time_wait_recycled);
//   * bounded memory — the run fails if process growth scales with the
//     total number of connections churned through.
//
// Artifact: BENCH_churn.json ("churn" section schema validated by
// scripts/check_bench_json.py).
#include <malloc.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>

#include "apps/echo.hpp"
#include "apps/http.hpp"
#include "apps/loadgen.hpp"
#include "bench_util.hpp"

// ----------------------------------------------------------------------
// Global allocation accounting (the storm bench's counted allocator):
// live_bytes uses the allocator's real block size so the growth gate
// reflects actual footprint.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_live_bytes{0};

void* counted_alloc(std::size_t n) {
  void* p = std::malloc(n ? n : 1);
  if (p) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    g_live_bytes.fetch_add(malloc_usable_size(p), std::memory_order_relaxed);
  }
  return p;
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n ? n : 1) != 0) {
    return nullptr;
  }
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_live_bytes.fetch_add(malloc_usable_size(p), std::memory_order_relaxed);
  return p;
}

void counted_free(void* p) noexcept {
  if (!p) return;
  g_live_bytes.fetch_sub(malloc_usable_size(p), std::memory_order_relaxed);
  std::free(p);
}
}  // namespace

void* operator new(std::size_t n) {
  void* p = counted_alloc(n);
  if (!p) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}
void* operator new(std::size_t n, std::align_val_t a) {
  void* p = counted_aligned_alloc(n, static_cast<std::size_t>(a));
  if (!p) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}

namespace tfo::bench {
namespace {

constexpr std::uint16_t kHttpPort = 80;
constexpr int kRequestsPerConn = 2;  // keep-alive depth

struct ChurnResult {
  double offered_cps = 0;
  double duration_s = 0;
  std::uint64_t started = 0;
  std::uint64_t established = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t responses_ok = 0;
  double requests_per_s = 0;
  double p50_ns = -1;
  double p99_ns = -1;
  double setup_p50_ns = -1;
  double setup_p99_ns = -1;
  std::uint64_t listen_overflows = 0;
  std::uint64_t tw_recycled = 0;
  std::uint64_t embryonic_reaped = 0;
  std::uint64_t growth_bytes = 0;
  double growth_per_conn = 0;
  double wall_s = 0;
  bool ok = false;
};

ChurnResult run_churn(double cps, SimDuration duration, BenchJson* json) {
  const auto wall_start = std::chrono::steady_clock::now();

  apps::LanParams lp = paper_lan_params();
  // Churn measures the accept path, not the paper's 100 Mb/s testbed:
  // gigabit wire, light per-frame processing. MSL is raised to 1 s so
  // that at 10k conn/s the client's 16384-port ephemeral space wraps
  // (1.64 s) inside 2*MSL and tuple reuse must go through TIME_WAIT
  // recycling rather than waiting out the quiet period.
  lp.medium.bandwidth_bps = 1'000'000'000;
  lp.nic.rx_processing = microseconds(2);
  lp.nic.rx_jitter = 0;
  lp.tcp.msl = seconds(1);

  core::FailoverConfig cfg;
  cfg.ports = {kHttpPort};

  Testbed t;
  std::unique_ptr<apps::HttpServer> w1, w2;
  t = make_testbed(true, [&](apps::Host& h) {
    auto w = std::make_unique<apps::HttpServer>(h.tcp(), kHttpPort);
    w->add_document("/", apps::deterministic_payload(512, 7));
    w->add_document("/small", apps::deterministic_payload(128, 8));
    w->add_document("/big", apps::deterministic_payload(4096, 9));
    (w1 ? w2 : w1) = std::move(w);
  }, lp, cfg);
  t.sim().run_for(milliseconds(100));  // detectors and ARP settle

  apps::LoadGenConfig lg_cfg;
  lg_cfg.server = t.server_addr();
  lg_cfg.port = kHttpPort;
  lg_cfg.conns_per_sec = cps;
  lg_cfg.duration = duration;
  lg_cfg.requests_per_conn = kRequestsPerConn;
  lg_cfg.think_time = microseconds(200);
  lg_cfg.mix = {{"/", 6}, {"/small", 3}, {"/big", 1}};
  lg_cfg.seed = 42;
  apps::LoadGen lg(t.sim(), {&t.client().tcp()}, lg_cfg, &t.client().obs());

  const std::uint64_t bytes_baseline = g_live_bytes.load(std::memory_order_relaxed);

  lg.start();
  // The mid-run crash: half the arrival window is served by the primary,
  // the rest lands on (or diverts to) the secondary.
  t.sim().schedule_after(duration / 2, [&] { t.group->crash_primary(); });

  if (!t.run_until([&] { return lg.done(); }, seconds(120))) {
    std::fprintf(stderr, "churn %.0f conn/s: %llu connections still live\n", cps,
                 static_cast<unsigned long long>(lg.live_conns()));
    return {};
  }
  // Drain: let server-side TIME_WAIT expire and sweeps run so the growth
  // figure measures leaks, not the quiet period.
  t.sim().run_for(2 * lp.tcp.msl + milliseconds(600));

  const std::uint64_t bytes_end = g_live_bytes.load(std::memory_order_relaxed);

  ChurnResult r;
  r.offered_cps = cps;
  r.duration_s = static_cast<double>(duration) / 1e9;
  r.started = lg.conns_started();
  r.established = lg.conns_established();
  r.completed = lg.conns_completed();
  r.failed = lg.conns_failed();
  r.requests_sent = lg.requests_sent();
  r.responses_ok = lg.responses_ok();
  r.requests_per_s = static_cast<double>(r.responses_ok) / r.duration_s;

  Sampler latency;
  for (SimDuration s : lg.latencies()) latency.add(static_cast<double>(s));
  if (!latency.empty()) {
    r.p50_ns = latency.percentile(50);
    r.p99_ns = latency.percentile(99);
  }
  Sampler setup;
  for (SimDuration s : lg.setup_latencies()) setup.add(static_cast<double>(s));
  if (!setup.empty()) {
    r.setup_p50_ns = setup.percentile(50);
    r.setup_p99_ns = setup.percentile(99);
  }

  const auto host_ctr = [](const apps::Host& h, const char* name) {
    return h.obs().registry.counter_value(name);
  };
  r.listen_overflows = host_ctr(*t.lan->primary, "tcp.listen_overflows") +
                       host_ctr(*t.lan->secondary, "tcp.listen_overflows");
  r.tw_recycled = host_ctr(*t.lan->primary, "tcp.time_wait_recycled") +
                  host_ctr(*t.lan->secondary, "tcp.time_wait_recycled");
  r.embryonic_reaped = host_ctr(*t.lan->primary, "bridge.embryonic_reaped");
  r.growth_bytes = bytes_end > bytes_baseline ? bytes_end - bytes_baseline : 0;
  r.growth_per_conn =
      r.started ? static_cast<double>(r.growth_bytes) / static_cast<double>(r.started)
                : 0;
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           wall_start)
                 .count();
  r.ok = true;
  if (json) {
    json->capture_host(*t.lan->primary);
    json->capture_host(*t.lan->secondary);
    json->capture_host(*t.lan->client);
  }
  return r;
}

}  // namespace
}  // namespace tfo::bench

int main(int argc, char** argv) {
  using namespace tfo;
  using namespace tfo::bench;
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  print_header("E8: high-churn HTTP with mid-run failover",
               "extension of paper §9 (short keep-alive exchanges at up to "
               "10k conn/s across a primary crash)");

  struct Point {
    double cps;
    SimDuration duration;
  };
  const std::vector<Point> points =
      quick ? std::vector<Point>{{1'000, seconds(1)}, {2'500, seconds(1)}}
            : std::vector<Point>{{2'000, seconds(3)},
                                 {5'000, seconds(3)},
                                 {10'000, seconds(3)}};

  BenchJson json("churn");
  TextTable table({"offered conn/s", "started", "completed", "failed", "req/s",
                   "p50 [ms]", "p99 [ms]", "setup p99 [ms]", "overflows",
                   "tw recycled", "growth/conn", "wall [s]"});
  std::vector<ChurnResult> results;
  for (const Point& p : points) {
    std::printf("\nrunning churn %.0f conn/s for %.1f s (failover at %.1f s) ...\n",
                p.cps, static_cast<double>(p.duration) / 1e9,
                static_cast<double>(p.duration) / 2e9);
    std::fflush(stdout);
    ChurnResult r = run_churn(p.cps, p.duration, results.empty() ? &json : nullptr);
    if (!r.ok) {
      std::fprintf(stderr, "FAIL: churn %.0f conn/s did not complete\n", p.cps);
      return 1;
    }
    table.add_row({TextTable::num(r.offered_cps, 0), std::to_string(r.started),
                   std::to_string(r.completed), std::to_string(r.failed),
                   TextTable::num(r.requests_per_s, 0),
                   TextTable::num(r.p50_ns / 1e6, 2),
                   TextTable::num(r.p99_ns / 1e6, 2),
                   TextTable::num(r.setup_p99_ns / 1e6, 2),
                   std::to_string(r.listen_overflows),
                   std::to_string(r.tw_recycled),
                   TextTable::num(r.growth_per_conn, 0),
                   TextTable::num(r.wall_s, 1)});
    results.push_back(r);
  }
  std::printf("%s", table.render().c_str());
  std::printf("expected shape: request p50/p99 ~ RTT and flat across the failover —\n"
              "at this churn a connection's whole life is shorter than the blackout,\n"
              "so the outage lands on connection setup (SYN retries against a full\n"
              "backlog: see setup p99 and the overflow drops) while established\n"
              "exchanges stay unaffected; growth/conn stays near zero — churned-\n"
              "through state is reclaimed.\n");
  json.add_table("open-loop HTTP churn across a mid-run failover", table);

  // ------------------------------------------------------------- gates
  bool fail = false;
  for (const ChurnResult& r : results) {
    const double failed_frac =
        r.started ? static_cast<double>(r.failed) / static_cast<double>(r.started) : 1;
    if (failed_frac > 0.05) {
      std::fprintf(stderr, "FAIL: churn %.0f conn/s: %.1f%% connections failed "
                   "(gate: <= 5%%)\n", r.offered_cps, failed_frac * 100);
      fail = true;
    }
    if (!(r.p99_ns >= r.p50_ns) || !(r.p50_ns > 0)) {
      std::fprintf(stderr, "FAIL: churn %.0f conn/s: implausible latency "
                   "p50=%.0fns p99=%.0fns\n", r.offered_cps, r.p50_ns, r.p99_ns);
      fail = true;
    }
    const double offered_rps = r.offered_cps * kRequestsPerConn;
    if (r.requests_per_s < 0.8 * offered_rps) {
      std::fprintf(stderr, "FAIL: churn %.0f conn/s: sustained only %.0f req/s "
                   "of %.0f offered (gate: >= 80%%)\n",
                   r.offered_cps, r.requests_per_s, offered_rps);
      fail = true;
    }
    // Bounded memory: growth must not scale with the churned population.
    const std::uint64_t growth_gate =
        std::max<std::uint64_t>(8u << 20, 1024 * r.started);
    if (r.growth_bytes > growth_gate) {
      std::fprintf(stderr, "FAIL: churn %.0f conn/s: %llu bytes growth "
                   "(gate: <= %llu)\n", r.offered_cps,
                   static_cast<unsigned long long>(r.growth_bytes),
                   static_cast<unsigned long long>(growth_gate));
      fail = true;
    }
  }
  if (!quick) {
    // At 10k conn/s the port space wraps inside 2*MSL: recycling must
    // actually fire or the bench is not exercising it.
    if (results.back().tw_recycled == 0) {
      std::fprintf(stderr,
                   "FAIL: top churn rate recycled no TIME_WAIT connections\n");
      fail = true;
    }
    if (results.back().offered_cps < 10'000) {
      std::fprintf(stderr, "FAIL: top churn rate below 10k conn/s\n");
      fail = true;
    }
  }

  // Machine-readable churn section (validated by check_bench_json.py).
  {
    obs::JsonWriter w;
    w.begin_object();
    w.key("requests_per_conn").value(static_cast<std::uint64_t>(kRequestsPerConn));
    w.key("points").begin_array();
    for (const ChurnResult& r : results) {
      w.begin_object();
      w.key("offered_cps").value(r.offered_cps);
      w.key("duration_s").value(r.duration_s);
      w.key("conns_started").value(r.started);
      w.key("conns_established").value(r.established);
      w.key("conns_completed").value(r.completed);
      w.key("conns_failed").value(r.failed);
      w.key("requests_sent").value(r.requests_sent);
      w.key("responses_ok").value(r.responses_ok);
      w.key("requests_per_s").value(r.requests_per_s);
      w.key("latency_p50_ns").value(r.p50_ns);
      w.key("latency_p99_ns").value(r.p99_ns);
      w.key("setup_p50_ns").value(r.setup_p50_ns);
      w.key("setup_p99_ns").value(r.setup_p99_ns);
      w.key("listen_overflows").value(r.listen_overflows);
      w.key("time_wait_recycled").value(r.tw_recycled);
      w.key("embryonic_reaped").value(r.embryonic_reaped);
      w.key("growth_bytes_per_conn").value(r.growth_per_conn);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    json.add_section("churn", w.str());
  }
  if (!json.write()) return 1;
  return fail ? 1 : 0;
}
