// Experiment T1 (§9, text): TCP connection setup time, standard TCP vs
// TCP Failover, warm ARP caches.
//
// Paper result: median 294 µs / max 603 µs (standard TCP) versus
//               median 505 µs / max 1193 µs (TCP Failover).
#include "bench_util.hpp"

namespace tfo::bench {
namespace {

struct Result {
  Sampler us;
};

Result measure(bool failover, int samples) {
  // Declared before the accepted-connection holder: the LAN (and its
  // simulator) must outlive the connections at scope exit.
  Testbed t;
  std::vector<std::shared_ptr<tcp::Connection>> held;
  t = make_testbed(failover, [&held](apps::Host& h) {
    h.tcp().listen(kPort, [&held](std::shared_ptr<tcp::Connection> c) {
      held.push_back(std::move(c));
    });
  });
  // Let fault detectors settle.
  t.sim().run_for(milliseconds(100));

  Result r;
  for (int i = 0; i < samples; ++i) {
    const SimTime start = t.sim().now();
    auto conn = t.client().tcp().connect(t.server_addr(), kPort);
    bool established = false;
    conn->on_established = [&] { established = true; };
    if (!t.run_until([&] { return established; }, seconds(10))) {
      std::fprintf(stderr, "connection %d failed to establish\n", i);
      continue;
    }
    r.us.add(to_microseconds(static_cast<SimDuration>(t.sim().now() - start)));
    conn->abort();  // RST: no TIME_WAIT pile-up between samples
    t.sim().run_for(milliseconds(5));
  }
  return r;
}

}  // namespace
}  // namespace tfo::bench

int main() {
  using namespace tfo;
  using namespace tfo::bench;
  print_header("T1: connection setup time (client -> replicated server)",
               "paper §9 text: std 294/603 us, failover 505/1193 us (median/max)");

  constexpr int kSamples = 300;
  const Result std_tcp = measure(false, kSamples);
  const Result fo = measure(true, kSamples);

  TextTable table({"configuration", "median [us]", "max [us]", "p90 [us]", "samples",
                   "paper median [us]", "paper max [us]"});
  table.add_row({"standard TCP", TextTable::num(std_tcp.us.median(), 1),
                 TextTable::num(std_tcp.us.max(), 1), TextTable::num(std_tcp.us.percentile(90), 1),
                 std::to_string(std_tcp.us.count()), "294", "603"});
  table.add_row({"TCP Failover", TextTable::num(fo.us.median(), 1),
                 TextTable::num(fo.us.max(), 1), TextTable::num(fo.us.percentile(90), 1),
                 std::to_string(fo.us.count()), "505", "1193"});
  std::printf("%s", table.render().c_str());
  std::printf("overhead ratio (median): %.2fx   (paper: %.2fx)\n",
              fo.us.median() / std_tcp.us.median(), 505.0 / 294.0);
  return 0;
}
