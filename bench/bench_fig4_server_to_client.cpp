// Figure 4: server-to-client data transfer — the client sends a small
// request and measures the time until the last byte of an L-byte reply
// arrives, L = 64 B … 1 MB, standard TCP vs TCP Failover.
//
// Paper shape: failover above standard at all sizes; the gap grows with
// size because every reply byte crosses the shared wire twice (secondary
// → primary diversion, then primary → client).
#include "bench_util.hpp"

namespace tfo::bench {
namespace {

double median_reply_time_us(bool failover, std::size_t reply_size, int samples) {
  // Declared before the servers: the LAN (and its simulator) must
  // outlive the servers' connections at scope exit.
  Testbed t;
  std::unique_ptr<apps::BlastServer> blast_p, blast_s;
  t = make_testbed(failover, [&](apps::Host& h) {
    auto blast = std::make_unique<apps::BlastServer>(h.tcp(), kPort);
    (blast_p ? blast_s : blast_p) = std::move(blast);
  });
  t.sim().run_for(milliseconds(100));

  Sampler us;
  for (int i = 0; i < samples; ++i) {
    auto conn = t.client().tcp().connect(t.server_addr(), kPort, {.nodelay = true});
    bool established = false;
    conn->on_established = [&] { established = true; };
    if (!t.run_until([&] { return established; }, seconds(10))) continue;

    std::size_t received = 0;
    conn->on_readable = [&] {
      Bytes b;
      conn->recv(b);
      received += b.size();
    };
    const SimTime start = t.sim().now();
    // The paper's 4-byte request plus our framing.
    char req[48];
    std::snprintf(req, sizeof(req), "GET %zu %d\n", reply_size, i);
    conn->send(to_bytes(req));
    if (!t.run_until([&] { return received >= reply_size; }, seconds(300))) continue;
    us.add(to_microseconds(static_cast<SimDuration>(t.sim().now() - start)));
    conn->abort();
    t.sim().run_for(milliseconds(5));
  }
  return us.empty() ? -1.0 : us.median();
}

}  // namespace
}  // namespace tfo::bench

int main() {
  using namespace tfo;
  using namespace tfo::bench;
  print_header(
      "Figure 4: server-to-client data transfer (request->full reply latency)",
      "paper Fig. 4 — failover above standard at all sizes; gap grows with size");

  const std::size_t sizes[] = {64,        256,        1024,       4 * 1024,
                               16 * 1024, 32 * 1024,  64 * 1024,  128 * 1024,
                               256 * 1024, 512 * 1024, 1024 * 1024};
  TextTable table({"reply", "std TCP [us]", "failover [us]", "ratio"});
  for (std::size_t size : sizes) {
    const int samples = size >= 256 * 1024 ? 5 : 9;
    const double s = median_reply_time_us(false, size, samples);
    const double f = median_reply_time_us(true, size, samples);
    table.add_row({size_label(size), TextTable::num(s, 1), TextTable::num(f, 1),
                   TextTable::num(f / s, 2)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
