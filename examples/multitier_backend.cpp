// Multi-tier deployment (§7.2): a replicated application server is the
// TCP *client* of an unreplicated back-end database. Both replicas call
// connect(); the bridge merges their handshakes so the database sees a
// single client; queries flow replicated; a primary crash leaves the
// database session intact on the survivor.
//
//   $ ./multitier_backend
#include <cstdio>

#include "apps/echo.hpp"
#include "apps/topology.hpp"
#include "core/replica_group.hpp"

using namespace tfo;

int main() {
  apps::LanParams lp;
  lp.with_backend = true;  // the unreplicated database host T
  auto lan = apps::make_lan(lp);

  core::FailoverConfig cfg;
  cfg.ports = {9100};  // the replicas connect out from this fixed port
  core::ReplicaGroup group(*lan->primary, *lan->secondary, cfg);
  group.start();

  // The "database": an echo server standing in for a query/response DB.
  apps::EchoServer database(lan->backend->tcp(), 5432);

  // The replicated application tier: both replicas run identical logic.
  struct Replica {
    std::shared_ptr<tcp::Connection> db;
    Bytes results;
  } rep_p, rep_s;
  auto start_replica = [&](apps::Host& host, Replica& r) {
    r.db = host.tcp().connect(lan->backend->address(), 5432, {.nodelay = true}, 9100);
    r.db->on_readable = [&r] { r.db->recv(r.results); };
  };
  start_replica(*lan->primary, rep_p);
  start_replica(*lan->secondary, rep_s);

  auto query = [&](const char* sql) {
    // Deterministic replicas issue the same query.
    const std::size_t want = rep_s.results.size() + std::string(sql).size();
    rep_p.db->send(to_bytes(sql));
    rep_s.db->send(to_bytes(sql));
    while (rep_s.results.size() < want && lan->sim.pending() > 0) lan->sim.step();
  };
  auto query_solo = [&](const char* sql) {
    const std::size_t want = rep_s.results.size() + std::string(sql).size();
    rep_s.db->send(to_bytes(sql));
    while (rep_s.results.size() < want && lan->sim.pending() > 0) lan->sim.step();
  };

  while (rep_s.db->state() != tcp::TcpState::kEstablished && lan->sim.pending() > 0) {
    lan->sim.step();
  }
  std::printf("replicated app tier connected to db %s (one session at the db: %zu)\n",
              lan->backend->address().str().c_str(), database.live_sessions());

  query("SELECT * FROM users;");
  query("UPDATE cart SET qty=2;");
  std::printf("2 queries executed; db saw %llu bytes (each query once, not twice)\n",
              static_cast<unsigned long long>(database.bytes_echoed()));

  std::printf("--- primary app server crashes ---\n");
  group.crash_primary();
  query_solo("COMMIT;");
  std::printf("post-crash query answered on the same db session: \"%s\"\n",
              to_string(BytesView(rep_s.results).last(7)).c_str());
  std::printf("db sessions now: %zu (still exactly one)\n", database.live_sessions());
  return database.live_sessions() == 1 ? 0 : 1;
}
