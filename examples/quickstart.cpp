// Quickstart: transparent TCP failover in ~60 lines of user code.
//
// Builds the paper's Figure 1 topology — client C, primary server P,
// secondary server S on one Ethernet segment — runs an actively
// replicated echo service behind the failover bridge, crashes the primary
// mid-conversation, and shows the client's connection surviving without
// any client-side involvement.
//
//   $ ./quickstart
#include <cstdio>

#include "apps/echo.hpp"
#include "apps/topology.hpp"
#include "core/replica_group.hpp"

using namespace tfo;

int main() {
  // 1. The network: a 100 Mb/s shared Ethernet with three hosts.
  auto lan = apps::make_lan();

  // 2. The failover group: bridges on P and S plus fault detectors.
  //    Port 7 is declared a failover port (§7 method 2 of the paper).
  core::FailoverConfig cfg;
  cfg.ports = {7};
  core::ReplicaGroup group(*lan->primary, *lan->secondary, cfg);

  // 3. The *actively replicated* application: the same echo server runs
  //    on both hosts. Neither instance knows about replication.
  apps::EchoServer echo_p(lan->primary->tcp(), 7);
  apps::EchoServer echo_s(lan->secondary->tcp(), 7);
  group.start();

  // 4. An ordinary, unmodified TCP client connects to the primary's
  //    address and chats over a single connection.
  auto conn = lan->client->tcp().connect(lan->primary->address(), 7,
                                         {.nodelay = true});
  Bytes inbox;
  conn->on_readable = [&] { conn->recv(inbox); };

  auto chat = [&](const char* msg) {
    inbox.clear();
    const std::size_t want = std::string(msg).size();
    conn->send(to_bytes(msg));
    while (inbox.size() < want && lan->sim.pending() > 0) lan->sim.step();
    std::printf("  [%8.3f ms] client sent %-28s echoed back: \"%s\"\n",
                to_milliseconds(static_cast<SimDuration>(lan->sim.now())),
                (std::string("\"") + msg + "\",").c_str(), to_string(inbox).c_str());
  };

  std::printf("--- fault-free operation (both replicas serving) ---\n");
  chat("hello replicated world");
  chat("the bridge merges both replies");

  std::printf("--- crashing the primary server ---\n");
  group.crash_primary();

  chat("same connection, after the crash");
  chat("nobody told the client anything");

  std::printf("--- done ---\n");
  std::printf("secondary took over %s at t=%.3f ms; the client's connection was\n"
              "never reset and no client-side software changed.\n",
              lan->primary->address().str().c_str(),
              to_milliseconds(static_cast<SimDuration>(
                  group.secondary_bridge().takeover_time())));
  return 0;
}
