// Daisy-chained replication — the extension the paper names in §1 but
// leaves out of scope. Three replicas survive TWO successive crashes
// (head, then the promoted head) while one client connection keeps
// streaming, untouched.
//
//   $ ./chain_failover
#include <cstdio>

#include "apps/echo.hpp"
#include "apps/topology.hpp"
#include "core/replica_chain.hpp"

using namespace tfo;

int main() {
  auto lan = apps::make_lan();

  // A third replica on the same segment.
  apps::HostParams hp;
  hp.name = "backup2";
  hp.addr = ip::Ipv4::parse("10.0.0.22");
  hp.seed = 102;
  apps::Host backup2(lan->sim, hp, *lan->wire);
  std::vector<apps::Host*> servers = {lan->primary.get(), lan->secondary.get(),
                                      &backup2};
  std::vector<apps::Host*> all = servers;
  all.push_back(lan->client.get());
  for (auto* a : all) {
    for (auto* b : all) {
      if (a != b) a->arp().add_static(b->address(), b->nic().mac());
    }
  }

  core::FailoverConfig cfg;
  cfg.ports = {7};
  core::ReplicaChain chain(servers, cfg);
  apps::EchoServer e0(servers[0]->tcp(), 7);
  apps::EchoServer e1(servers[1]->tcp(), 7);
  apps::EchoServer e2(servers[2]->tcp(), 7);
  chain.start();

  auto conn = lan->client->tcp().connect(servers[0]->address(), 7, {.nodelay = true});
  Bytes inbox;
  conn->on_readable = [&] { conn->recv(inbox); };
  auto chat = [&](const char* msg) {
    inbox.clear();
    conn->send(to_bytes(msg));
    while (inbox.size() < std::string(msg).size() && lan->sim.pending() > 0) {
      lan->sim.step();
    }
    std::printf("  [%9.3f ms] head=%-10s  \"%s\" -> \"%s\"\n",
                to_milliseconds(static_cast<SimDuration>(lan->sim.now())),
                chain.head() ? chain.head()->name().c_str() : "NONE", msg,
                to_string(inbox).c_str());
  };

  std::printf("=== 3-way replica chain: primary <- secondary <- backup2 ===\n");
  chat("all three replicas serving");

  std::printf("--- crash #1: the head (primary) dies ---\n");
  chain.crash(0);
  chat("secondary was promoted to head");

  std::printf("--- crash #2: the new head (secondary) dies too ---\n");
  chain.crash(1);
  chat("backup2 serves alone now");

  std::printf("=== the client's single TCP connection survived BOTH crashes ===\n");
  std::printf("survivors: %zu of 3; the client still talks to %s\n",
              chain.alive_count(), servers[0]->address().str().c_str());
  return chain.alive_count() == 1 ? 0 : 1;
}
