// FTP failover: the paper's §9 real-world application. An active-mode
// FTP server pair (control port 21, data connections opened *by the
// server* from port 20 — the §7.2 server-initiated path) serves a
// download; the primary crashes mid-transfer; the file arrives intact.
//
//   $ ./ftp_failover
#include <cstdio>

#include "apps/echo.hpp"  // deterministic_payload
#include "apps/ftp.hpp"
#include "apps/topology.hpp"
#include "core/replica_group.hpp"

using namespace tfo;

int main() {
  auto lan = apps::make_lan();
  core::FailoverConfig cfg;
  cfg.ports = {21, 20};  // control + data are both failover connections
  core::ReplicaGroup group(*lan->primary, *lan->secondary, cfg);

  apps::FtpServer ftp_p(lan->primary->tcp());
  apps::FtpServer ftp_s(lan->secondary->tcp());
  const Bytes image = apps::deterministic_payload(1024 * 1024, 2024);
  ftp_p.add_file("disk.img", image);
  ftp_s.add_file("disk.img", image);
  group.start();

  apps::FtpClient client(lan->client->tcp(), lan->primary->address());

  bool logged_in = false;
  client.login([&](bool ok) { logged_in = ok; });
  while (!logged_in && lan->sim.pending() > 0) lan->sim.step();
  std::printf("logged in to replicated ftp server at %s\n",
              lan->primary->address().str().c_str());

  bool done = false, ok = false;
  Bytes got;
  client.get("disk.img", [&](bool r, Bytes b) {
    ok = r;
    got = std::move(b);
    done = true;
  });

  // Crash the primary once the data connection is up and flowing.
  bool crashed = false;
  while (!done && lan->sim.pending() > 0) {
    lan->sim.step();
    if (!crashed && lan->client->tcp().connection_count() >= 2 &&
        lan->sim.now() > seconds(1) / 50) {
      std::printf("[%7.1f ms] primary crashed mid-transfer\n",
                  to_milliseconds(static_cast<SimDuration>(lan->sim.now())));
      group.crash_primary();
      crashed = true;
    }
  }

  std::printf("[%7.1f ms] transfer finished: ok=%s, %zu bytes, intact=%s\n",
              to_milliseconds(static_cast<SimDuration>(lan->sim.now())),
              ok ? "yes" : "no", got.size(), got == image ? "yes" : "NO");
  std::printf("the data connection was *opened by the server* (active mode, local\n"
              "port 20): both replicas connected, the primary bridge merged the two\n"
              "SYNs (§7.2), and after the crash the secondary finished the stream.\n");
  client.quit();
  return got == image ? 0 : 1;
}
