// Repair cycle: failover + reintegration keep a service alive through an
// unbounded sequence of failures, as long as spare hardware shows up.
//
//   1. (P, S) serve replicated; P crashes; S takes over the address.
//   2. A recruit R reintegrates: (S, R) serve replicated again.
//   3. S crashes; R takes over — the SECOND takeover of the same address.
//
// A client connection opened in phase 2 lives through phase 3.
//
//   $ ./repair_cycle
#include <cstdio>

#include "apps/echo.hpp"
#include "apps/topology.hpp"
#include "core/replica_group.hpp"

using namespace tfo;

int main() {
  auto lan = apps::make_lan();

  apps::HostParams hp;
  hp.name = "recruit";
  hp.addr = ip::Ipv4::parse("10.0.0.30");
  hp.seed = 303;
  apps::Host recruit(lan->sim, hp, *lan->wire);
  for (apps::Host* h :
       {lan->client.get(), lan->primary.get(), lan->secondary.get()}) {
    h->arp().add_static(recruit.address(), recruit.nic().mac());
    recruit.arp().add_static(h->address(), h->nic().mac());
  }

  core::FailoverConfig cfg;
  cfg.ports = {7};
  core::ReplicaGroup group(*lan->primary, *lan->secondary, cfg);
  apps::EchoServer e_p(lan->primary->tcp(), 7);
  apps::EchoServer e_s(lan->secondary->tcp(), 7);
  apps::EchoServer e_r(recruit.tcp(), 7);
  group.start();

  auto banner = [&](const char* msg) {
    std::printf("[%8.1f ms] %s (serving: %s)\n",
                to_milliseconds(static_cast<SimDuration>(lan->sim.now())), msg,
                group.current_server().name().c_str());
  };

  banner("phase 1: (primary, secondary) replicated");
  std::printf("  ... primary crashes ...\n");
  group.crash_primary();
  lan->sim.run_for(milliseconds(300));
  banner("phase 1 done: secondary took over 10.0.0.1");

  group.reintegrate_secondary(recruit);
  lan->sim.run_for(milliseconds(100));
  banner("phase 2: recruit reintegrated — replication restored");

  // A fresh client session under the repaired pair.
  auto conn = lan->client->tcp().connect(lan->primary->address(), 7, {.nodelay = true});
  Bytes inbox;
  conn->on_readable = [&] { conn->recv(inbox); };
  auto chat = [&](const char* msg) {
    inbox.clear();
    conn->send(to_bytes(msg));
    while (inbox.size() < std::string(msg).size() && lan->sim.pending() > 0) {
      lan->sim.step();
    }
    std::printf("  client: \"%s\" -> \"%s\"\n", msg, to_string(inbox).c_str());
  };
  chat("hello repaired service");

  std::printf("  ... the survivor (old secondary) crashes too ...\n");
  group.current_server().fail();
  chat("second takeover, same connection");
  lan->sim.run_for(milliseconds(100));
  banner("phase 3 done: recruit serves alone");

  std::printf("two failures, one address, zero client reconnects.\n");
  std::printf("recruit echoed %llu bytes of the phase-2 session.\n",
              static_cast<unsigned long long>(e_r.bytes_echoed()));
  return 0;
}
