// Web-store failover: the paper's own motivating example (§1) — "an
// on-line store is an example of a deterministic service". A customer
// browses and buys over one TCP connection; the primary server crashes
// between two purchases; the order counter, per-session inventory, and
// the connection itself all survive on the secondary.
//
//   $ ./webstore_failover
#include <cstdio>

#include "apps/store.hpp"
#include "apps/topology.hpp"
#include "core/replica_group.hpp"

using namespace tfo;

namespace {

void shop(apps::Lan& lan, apps::StoreClient& client, const char* request) {
  const std::size_t before = client.replies().size();
  client.request(request);
  while (client.replies().size() == before && lan.sim.pending() > 0) lan.sim.step();
  std::printf("  > %-22s  < %s\n", request,
              client.replies().empty() ? "(no reply)" : client.replies().back().c_str());
}

}  // namespace

int main() {
  auto lan = apps::make_lan();
  core::FailoverConfig cfg;
  cfg.ports = {8000};
  core::ReplicaGroup group(*lan->primary, *lan->secondary, cfg);
  apps::StoreServer store_p(lan->primary->tcp(), 8000);
  apps::StoreServer store_s(lan->secondary->tcp(), 8000);
  group.start();

  apps::StoreClient customer(lan->client->tcp(), lan->primary->address(), 8000);

  std::printf("--- shopping on the replicated store ---\n");
  shop(*lan, customer, "BROWSE espresso-machine");
  shop(*lan, customer, "BUY espresso-machine 1");
  shop(*lan, customer, "BROWSE grinder");

  std::printf("--- primary crashes between two purchases ---\n");
  group.crash_primary();

  shop(*lan, customer, "BUY grinder 1");
  shop(*lan, customer, "BROWSE espresso-machine");
  shop(*lan, customer, "BUY filter-papers 10");

  std::printf("--- session wrap-up ---\n");
  std::printf("order ids continued seamlessly (1, 2, 3, ...): the secondary's\n"
              "replica of the session had identical state at the instant of the\n"
              "crash, because the bridge never acknowledged a request the\n"
              "secondary had not also received (paper §2, requirement 2).\n");
  customer.quit();
  lan->sim.run_for(seconds(5));
  std::printf("connection closed gracefully: %s\n", customer.closed() ? "yes" : "no");
  return 0;
}
