// Shared helpers for the test suite.
#pragma once

#include <functional>

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "sim/simulator.hpp"

namespace tfo::test {

/// Runs the simulator until `pred` holds or `timeout` elapses. Returns
/// true if the predicate became true.
inline bool run_until(sim::Simulator& sim, const std::function<bool()>& pred,
                      SimDuration timeout = seconds(60)) {
  const SimTime deadline = sim.now() + static_cast<SimTime>(timeout);
  while (!pred()) {
    if (sim.now() > deadline || sim.pending() == 0) return pred();
    sim.step();
  }
  return true;
}

/// Deterministic pseudo-random payload of length n (seeded by `seed`).
inline Bytes pattern_bytes(std::size_t n, std::uint32_t seed = 0) {
  Bytes b(n);
  std::uint32_t x = seed * 2654435761u + 12345u;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    b[i] = static_cast<std::uint8_t>(x >> 24);
  }
  return b;
}

}  // namespace tfo::test
