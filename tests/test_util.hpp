// Shared helpers for the test suite.
#pragma once

#include <functional>
#include <utility>

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "sim/simulator.hpp"

namespace tfo::test {

/// Runs the simulator until `pred` holds or `timeout` elapses. Returns
/// true if the predicate became true.
inline bool run_until(sim::Simulator& sim, const std::function<bool()>& pred,
                      SimDuration timeout = seconds(60)) {
  const SimTime deadline = sim.now() + static_cast<SimTime>(timeout);
  while (!pred()) {
    if (sim.now() > deadline || sim.pending() == 0) return pred();
    sim.step();
  }
  return true;
}

/// Deterministic pseudo-random payload of length n (seeded by `seed`).
/// Eight interleaved LCG lanes break the serial multiply-add dependency
/// (bulk benches generate tens of MB through here); the output is
/// byte-identical to the scalar recurrence x = x*1664525 + 1013904223.
inline Bytes pattern_bytes(std::size_t n, std::uint32_t seed = 0) {
  constexpr std::uint32_t kA = 1664525u, kC = 1013904223u;
  // f^8 jump constants: f^k(x) = A_k*x + C_k with A_{i+1} = a*A_i,
  // C_{i+1} = a*C_i + c.
  constexpr auto jump = [] {
    std::uint32_t a = 1, c = 0;
    for (int i = 0; i < 8; ++i) {
      a *= kA;
      c = c * kA + kC;
    }
    return std::pair<std::uint32_t, std::uint32_t>{a, c};
  }();
  Bytes b(n);
  std::uint32_t lane[8];
  std::uint32_t x = seed * 2654435761u + 12345u;
  for (auto& l : lane) {
    x = x * kA + kC;
    l = x;
  }
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int j = 0; j < 8; ++j) {
      b[i + j] = static_cast<std::uint8_t>(lane[j] >> 24);
      lane[j] = lane[j] * jump.first + jump.second;
    }
  }
  for (int j = 0; i < n; ++i, ++j) {
    b[i] = static_cast<std::uint8_t>(lane[j] >> 24);
  }
  return b;
}

}  // namespace tfo::test
