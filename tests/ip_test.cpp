// Unit tests for the IP layer: datagram wire format, ARP (including
// gratuitous updates used by IP takeover), routing, hooks, and forwarding.
#include <gtest/gtest.h>

#include "apps/host.hpp"
#include "apps/topology.hpp"
#include "ip/datagram.hpp"
#include "ip/router.hpp"
#include "test_util.hpp"

namespace tfo::ip {
namespace {

using apps::Host;
using apps::HostParams;

TEST(Ipv4, ParseAndFormat) {
  EXPECT_EQ(Ipv4::parse("10.0.0.1").str(), "10.0.0.1");
  EXPECT_EQ(Ipv4::parse("255.255.255.255").v, 0xffffffffu);
  EXPECT_TRUE(Ipv4::parse("not-an-ip").is_any());
  EXPECT_TRUE(Ipv4::parse("1.2.3.999").is_any());
  EXPECT_TRUE(Ipv4::parse("1.2.3").is_any());
}

TEST(Ipv4, SubnetMembership) {
  const Ipv4 net = Ipv4::parse("10.0.0.0");
  EXPECT_TRUE(in_subnet(Ipv4::parse("10.0.0.200"), net, 24));
  EXPECT_FALSE(in_subnet(Ipv4::parse("10.0.1.200"), net, 24));
  EXPECT_TRUE(in_subnet(Ipv4::parse("10.0.1.200"), net, 16));
  EXPECT_TRUE(in_subnet(Ipv4::parse("99.0.0.1"), net, 0));
}

TEST(IpDatagram, SerializeParseRoundTrip) {
  IpDatagram d;
  d.src = Ipv4::parse("10.0.0.1");
  d.dst = Ipv4::parse("10.0.0.2");
  d.proto = Proto::kTcp;
  d.ttl = 33;
  d.id = 777;
  d.payload = to_bytes("payload!");
  const Bytes wire = d.serialize();
  auto back = IpDatagram::parse(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->src, d.src);
  EXPECT_EQ(back->dst, d.dst);
  EXPECT_EQ(back->proto, d.proto);
  EXPECT_EQ(back->ttl, 33);
  EXPECT_EQ(back->id, 777);
  EXPECT_EQ(back->payload, d.payload);
}

TEST(IpDatagram, CorruptHeaderRejected) {
  IpDatagram d;
  d.src = Ipv4::parse("1.1.1.1");
  d.dst = Ipv4::parse("2.2.2.2");
  Bytes wire = d.serialize();
  wire[12] ^= 0x01;  // flip a source-address bit
  EXPECT_FALSE(IpDatagram::parse(wire).has_value());
}

TEST(IpDatagram, TruncatedRejected) {
  IpDatagram d;
  d.payload = Bytes(100, 1);
  Bytes wire = d.serialize();
  wire.resize(50);
  EXPECT_FALSE(IpDatagram::parse(wire).has_value());
}

// ------------------------------------------------------------------ ARP

struct ArpFixture : ::testing::Test {
  sim::Simulator sim;
  net::SharedMediumParams mp;
  std::unique_ptr<net::SharedMedium> wire;
  std::unique_ptr<Host> a, b;

  void build(ArpParams ap = {}) {
    wire = std::make_unique<net::SharedMedium>(sim, mp);
    a = make_host("a", "10.0.0.1", ap);
    b = make_host("b", "10.0.0.2", ap);
  }
  std::unique_ptr<Host> make_host(const char* name, const char* addr, ArpParams ap) {
    HostParams hp;
    hp.name = name;
    hp.addr = Ipv4::parse(addr);
    hp.arp = ap;
    return std::make_unique<Host>(sim, hp, *wire);
  }
};

TEST_F(ArpFixture, ResolveViaRequestReply) {
  build();
  net::MacAddress got{};
  bool done = false;
  a->arp().resolve(b->address(), [&](net::MacAddress m) {
    got = m;
    done = true;
  });
  EXPECT_TRUE(test::run_until(sim, [&] { return done; }));
  EXPECT_EQ(got, b->nic().mac());
  // And the reply's sender was learned on b's side too (merge rule).
  net::MacAddress learned{};
  EXPECT_TRUE(b->arp().lookup(a->address(), &learned));
  EXPECT_EQ(learned, a->nic().mac());
}

TEST_F(ArpFixture, CacheHitIsSynchronous) {
  build();
  a->arp().add_static(b->address(), b->nic().mac());
  bool done = false;
  a->arp().resolve(b->address(), [&](net::MacAddress) { done = true; });
  EXPECT_TRUE(done);  // no simulation steps needed
}

TEST_F(ArpFixture, ResolutionFailureDropsCallback) {
  build();
  bool called = false;
  a->arp().resolve(Ipv4::parse("10.0.0.99"), [&](net::MacAddress) { called = true; });
  sim.run();
  EXPECT_FALSE(called);
}

TEST_F(ArpFixture, GratuitousArpUpdatesExistingEntriesOnly) {
  build();
  // a knows the address 10.0.0.50 maps to some old MAC.
  const Ipv4 moved = Ipv4::parse("10.0.0.50");
  a->arp().add_static(moved, net::MacAddress::from_id(999));
  // b announces itself as the new owner of 10.0.0.50 (IP takeover).
  b->ip().add_alias(moved);
  b->arp().announce(moved);
  sim.run();
  net::MacAddress m{};
  ASSERT_TRUE(a->arp().lookup(moved, &m));
  EXPECT_EQ(m, b->nic().mac());
  // A host with no prior entry must NOT have created one.
  EXPECT_FALSE(b->arp().lookup(Ipv4::parse("10.0.0.51"), nullptr));
}

TEST_F(ArpFixture, UpdateLatencyDelaysVisibility) {
  ArpParams ap;
  ap.update_latency = milliseconds(10);
  build(ap);
  const Ipv4 moved = Ipv4::parse("10.0.0.50");
  a->arp().add_static(moved, net::MacAddress::from_id(999));
  b->ip().add_alias(moved);
  b->arp().announce(moved);
  sim.run_for(milliseconds(5));
  net::MacAddress m{};
  ASSERT_TRUE(a->arp().lookup(moved, &m));
  EXPECT_EQ(m, net::MacAddress::from_id(999));  // still the old mapping
  sim.run_for(milliseconds(20));
  ASSERT_TRUE(a->arp().lookup(moved, &m));
  EXPECT_EQ(m, b->nic().mac());
}

// ------------------------------------------------------- IpLayer basics

struct IpFixture : ArpFixture {};

TEST_F(IpFixture, DeliverByProtocolToLocalAddress) {
  build();
  Bytes got;
  b->ip().register_protocol(Proto::kHeartbeat,
                            [&](const IpDatagram& d, const RxMeta&) { got = to_bytes(d.payload); });
  a->ip().send(Proto::kHeartbeat, Ipv4::any(), b->address(), to_bytes("hb"));
  sim.run();
  EXPECT_EQ(to_string(got), "hb");
}

TEST_F(IpFixture, DatagramForForeignAddressDropped) {
  build();
  int got = 0;
  b->ip().register_protocol(Proto::kHeartbeat,
                            [&](const IpDatagram&, const RxMeta&) { ++got; });
  // Address to an IP that resolves to b's MAC via a poisoned cache so the
  // frame physically arrives, but the datagram isn't for b.
  a->arp().add_static(Ipv4::parse("10.0.0.77"), b->nic().mac());
  a->ip().send(Proto::kHeartbeat, Ipv4::any(), Ipv4::parse("10.0.0.77"), to_bytes("x"));
  sim.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(b->ip().datagrams_dropped(), 1u);
}

TEST_F(IpFixture, AliasReceivesTraffic) {
  build();
  const Ipv4 alias = Ipv4::parse("10.0.0.70");
  b->ip().add_alias(alias);
  a->arp().add_static(alias, b->nic().mac());
  Bytes got;
  b->ip().register_protocol(Proto::kHeartbeat,
                            [&](const IpDatagram& d, const RxMeta&) { got = to_bytes(d.payload); });
  a->ip().send(Proto::kHeartbeat, Ipv4::any(), alias, to_bytes("via-alias"));
  sim.run();
  EXPECT_EQ(to_string(got), "via-alias");
}

TEST_F(IpFixture, InboundHookCanRewriteDestination) {
  build();
  const Ipv4 other = Ipv4::parse("10.0.0.66");
  a->arp().add_static(other, b->nic().mac());
  // b rewrites datagrams addressed to `other` onto itself — the secondary
  // bridge's a_p -> a_s translation in miniature.
  b->ip().add_inbound_hook([&](IpDatagram& d, const RxMeta&) {
    if (d.dst == other) d.dst = b->address();
    return HookVerdict::kContinue;
  });
  Bytes got;
  b->ip().register_protocol(Proto::kHeartbeat,
                            [&](const IpDatagram& d, const RxMeta&) { got = to_bytes(d.payload); });
  a->ip().send(Proto::kHeartbeat, Ipv4::any(), other, to_bytes("rewritten"));
  sim.run();
  EXPECT_EQ(to_string(got), "rewritten");
}

TEST_F(IpFixture, OutboundHookCanConsume) {
  build();
  int consumed = 0;
  a->ip().add_outbound_hook([&](IpDatagram&) {
    ++consumed;
    return HookVerdict::kConsume;
  });
  a->ip().send(Proto::kHeartbeat, Ipv4::any(), b->address(), to_bytes("x"));
  sim.run();
  EXPECT_EQ(consumed, 1);
  EXPECT_EQ(b->ip().datagrams_delivered(), 0u);
}

TEST_F(IpFixture, HookRemovalStopsInterception) {
  build();
  int hits = 0;
  const HookId id = b->ip().add_inbound_hook([&](IpDatagram&, const RxMeta&) {
    ++hits;
    return HookVerdict::kContinue;
  });
  b->ip().register_protocol(Proto::kHeartbeat, [](const IpDatagram&, const RxMeta&) {});
  a->ip().send(Proto::kHeartbeat, Ipv4::any(), b->address(), to_bytes("1"));
  sim.run();
  b->ip().remove_hook(id);
  a->ip().send(Proto::kHeartbeat, Ipv4::any(), b->address(), to_bytes("2"));
  sim.run();
  EXPECT_EQ(hits, 1);
}

// ---------------------------------------------------------------- Router

TEST(Router, ForwardsAcrossSegmentsWithTtlDecrement) {
  apps::WanParams wp;
  auto wan = apps::make_wan(wp);
  Bytes got;
  std::uint8_t got_ttl = 0;
  wan->primary->ip().register_protocol(
      Proto::kHeartbeat, [&](const IpDatagram& d, const RxMeta&) {
        got = to_bytes(d.payload);
        got_ttl = d.ttl;
      });
  wan->client->ip().send(Proto::kHeartbeat, Ipv4::any(),
                         wan->primary->address(), to_bytes("over-the-wan"));
  wan->sim.run();
  EXPECT_EQ(to_string(got), "over-the-wan");
  EXPECT_EQ(got_ttl, 63);
}

TEST(Router, TtlExpiryDropsDatagram) {
  apps::WanParams wp;
  auto wan = apps::make_wan(wp);
  int got = 0;
  wan->primary->ip().register_protocol(
      Proto::kHeartbeat, [&](const IpDatagram&, const RxMeta&) { ++got; });
  IpDatagram d;
  d.src = wan->client->address();
  d.dst = wan->primary->address();
  d.proto = Proto::kHeartbeat;
  d.ttl = 1;  // dies at the router
  d.payload = to_bytes("x");
  wan->client->ip().send_datagram(std::move(d));
  wan->sim.run();
  EXPECT_EQ(got, 0);
}

}  // namespace
}  // namespace tfo::ip
