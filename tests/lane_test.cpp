// LaneSet unit tests: the merge-order invariant (commits apply in global
// submission order for every lane count, serial or parallel), TFO_LANES
// environment parsing, and the round/task statistics.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "sim/lane.hpp"

namespace tfo::sim {
namespace {

/// Runs one round of `tasks` work units spread across `cfg.lanes`
/// round-robin and returns the order in which their commits applied.
std::vector<int> commit_order(LaneConfig cfg, int tasks) {
  LaneSet set(cfg);
  std::vector<int> order;
  for (int i = 0; i < tasks; ++i) {
    set.submit(i % set.lanes(), [i, &order] {
      // Speculative phase: lane-private only. The commit publishes.
      const int doubled = i * 2;
      return [doubled, &order] { order.push_back(doubled / 2); };
    });
  }
  set.run_round();
  return order;
}

TEST(LaneSet, SerialCommitsApplyInSubmissionOrder) {
  const std::vector<int> order = commit_order({.lanes = 1}, 16);
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(LaneSet, CommitOrderIsIndependentOfLaneCount) {
  const std::vector<int> baseline = commit_order({.lanes = 1}, 64);
  for (unsigned lanes : {2u, 3u, 4u, 8u}) {
    EXPECT_EQ(commit_order({.lanes = lanes}, 64), baseline)
        << "lane count " << lanes << " changed the commit order";
  }
}

TEST(LaneSet, ParallelCommitOrderMatchesSerial) {
  const std::vector<int> baseline = commit_order({.lanes = 1}, 64);
  for (unsigned lanes : {2u, 4u}) {
    EXPECT_EQ(commit_order({.lanes = lanes, .parallel = true}, 64), baseline)
        << "parallel execution with " << lanes << " lanes diverged";
  }
}

TEST(LaneSet, ParallelOrderIsStableAcrossManyRounds) {
  // Repeated rounds on a live thread pool: worker scheduling jitter must
  // never leak into commit order.
  LaneConfig cfg{.lanes = 4, .parallel = true};
  LaneSet set(cfg);
  for (int round = 0; round < 50; ++round) {
    std::vector<int> order;
    for (int i = 0; i < 32; ++i) {
      set.submit(static_cast<unsigned>(i) % cfg.lanes,
                 [i, &order] { return [i, &order] { order.push_back(i); }; });
    }
    set.run_round();
    ASSERT_EQ(order.size(), 32u) << "round " << round;
    for (int i = 0; i < 32; ++i) ASSERT_EQ(order[i], i) << "round " << round;
  }
  EXPECT_EQ(set.stats().rounds, 50u);
  EXPECT_EQ(set.stats().parallel_rounds, 50u);
  EXPECT_EQ(set.stats().tasks, 50u * 32u);
}

TEST(LaneSet, SingleLaneConfigForcesSerial) {
  LaneSet set(LaneConfig{.lanes = 1, .parallel = true});
  EXPECT_EQ(set.lanes(), 1u);
  EXPECT_FALSE(set.parallel());
}

TEST(LaneSet, LaneForPartitionsTheHashSpace) {
  LaneSet set(LaneConfig{.lanes = 4});
  std::vector<int> hits(4, 0);
  for (std::size_t h = 0; h < 1000; ++h) {
    const unsigned lane = set.lane_for(h * 0x9E3779B97F4A7C15ull);
    ASSERT_LT(lane, 4u);
    ++hits[lane];
  }
  for (int lane = 0; lane < 4; ++lane) EXPECT_GT(hits[lane], 0) << lane;
}

TEST(LaneSet, EmptyRoundIsANoOp) {
  LaneSet set(LaneConfig{.lanes = 2});
  set.run_round();
  EXPECT_EQ(set.stats().rounds, 0u);
  EXPECT_EQ(set.stats().tasks, 0u);
}

TEST(LaneSet, WorkMayReturnNoCommit) {
  LaneSet set(LaneConfig{.lanes = 2});
  int ran = 0;
  set.submit(0, [&ran] {
    ++ran;
    return LaneSet::Commit{};  // nothing to publish
  });
  set.submit(1, [&ran] {
    ++ran;
    return LaneSet::Commit{};
  });
  set.run_round();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(set.stats().tasks, 2u);
}

class LaneEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prev = std::getenv("TFO_LANES");
    if (prev != nullptr) saved_ = prev;
  }
  void TearDown() override {
    if (saved_.empty()) {
      ::unsetenv("TFO_LANES");
    } else {
      ::setenv("TFO_LANES", saved_.c_str(), 1);
    }
  }
  std::string saved_;
};

TEST_F(LaneEnvTest, UnsetKeepsBase) {
  ::unsetenv("TFO_LANES");
  const LaneConfig cfg = lane_config_from_env({.lanes = 3, .parallel = false});
  EXPECT_EQ(cfg.lanes, 3u);
  EXPECT_FALSE(cfg.parallel);
}

TEST_F(LaneEnvTest, NumericValueEnablesParallelLanes) {
  ::setenv("TFO_LANES", "4", 1);
  const LaneConfig cfg = lane_config_from_env();
  EXPECT_EQ(cfg.lanes, 4u);
  EXPECT_TRUE(cfg.parallel);
}

TEST_F(LaneEnvTest, OneForcesSerial) {
  ::setenv("TFO_LANES", "1", 1);
  const LaneConfig cfg = lane_config_from_env({.lanes = 8, .parallel = true});
  EXPECT_EQ(cfg.lanes, 1u);
  EXPECT_FALSE(cfg.parallel);
}

TEST_F(LaneEnvTest, InvalidValueKeepsBase) {
  for (const char* bad : {"", "zero", "-2", "0", "9999"}) {
    ::setenv("TFO_LANES", bad, 1);
    const LaneConfig cfg = lane_config_from_env({.lanes = 2});
    EXPECT_EQ(cfg.lanes, 2u) << "TFO_LANES=" << bad;
  }
}

}  // namespace
}  // namespace tfo::sim
