// Unit tests for the discrete-event simulator.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace tfo::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterUsesNow) {
  Simulator sim;
  SimTime seen = 0;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 150u);
}

TEST(Simulator, PastTimesClampToNow) {
  Simulator sim;
  sim.schedule_at(100, [] {});
  sim.run();
  SimTime seen = 0;
  sim.schedule_at(5, [&] { seen = sim.now(); });  // in the past
  sim.run();
  EXPECT_EQ(seen, 100u);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(10, [&] { ran = true; });
  EXPECT_EQ(sim.pending(), 1u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending(), 0u);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelIsIdempotent) {
  Simulator sim;
  const EventId id = sim.schedule_at(10, [] {});
  sim.cancel(id);
  sim.cancel(id);       // double cancel
  sim.cancel(999999);   // bogus id
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(10, [&] { ++count; });
  sim.schedule_at(20, [&] { ++count; });
  sim.schedule_at(30, [&] { ++count; });
  sim.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 20u);
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunForAdvancesEvenWithoutEvents) {
  Simulator sim;
  sim.run_for(1000);
  EXPECT_EQ(sim.now(), 1000u);
}

TEST(Simulator, ReentrantScheduling) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_after(1, chain);
  };
  sim.schedule_after(1, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(Timer, StartStopRestart) {
  Simulator sim;
  Timer t(sim);
  int fired = 0;
  t.start(10, [&] { ++fired; });
  EXPECT_TRUE(t.armed());
  t.stop();
  EXPECT_FALSE(t.armed());
  sim.run();
  EXPECT_EQ(fired, 0);

  t.start(10, [&] { ++fired; });
  t.start(20, [&] { fired += 10; });  // restart supersedes
  sim.run();
  EXPECT_EQ(fired, 10);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, DestructionCancels) {
  Simulator sim;
  bool fired = false;
  {
    Timer t(sim);
    t.start(10, [&] { fired = true; });
  }
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Timer, DeadlineReported) {
  Simulator sim;
  sim.schedule_at(7, [] {});
  sim.run();
  Timer t(sim);
  t.start(13, [] {});
  EXPECT_EQ(t.deadline(), 20u);
}

}  // namespace
}  // namespace tfo::sim
