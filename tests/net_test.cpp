// Unit tests for the link layer: media timing, promiscuous delivery,
// per-receiver loss, and point-to-point queueing.
#include <gtest/gtest.h>

#include <vector>

#include "net/frame.hpp"
#include "net/medium.hpp"
#include "net/nic.hpp"
#include "sim/simulator.hpp"

namespace tfo::net {
namespace {

struct RxRecord {
  std::string nic;
  bool to_us;
  std::size_t len;
  SimTime at;
};

struct NetFixture : ::testing::Test {
  sim::Simulator sim;
  SharedMediumParams mp;
  std::unique_ptr<SharedMedium> wire;
  std::unique_ptr<Nic> a, b, c;
  std::vector<RxRecord> rx;

  void build() {
    wire = std::make_unique<SharedMedium>(sim, mp);
    a = make_nic("a", 1);
    b = make_nic("b", 2);
    c = make_nic("c", 3);
  }

  std::unique_ptr<Nic> make_nic(const std::string& name, std::uint32_t id) {
    NicParams np;
    np.rx_processing = 0;  // timing tests want raw wire time
    auto nic = std::make_unique<Nic>(sim, name, MacAddress::from_id(id), np);
    nic->set_rx_handler([this, name](const EthernetFrame& f, bool to_us) {
      rx.push_back({name, to_us, f.payload.size(), sim.now()});
    });
    nic->attach(*wire);
    return nic;
  }

  EthernetFrame frame_to(const Nic& dst, std::size_t len) {
    EthernetFrame f;
    f.dst = dst.mac();
    f.payload = Bytes(len, 0xab);
    return f;
  }
};

TEST_F(NetFixture, UnicastReachesOnlyAddressee) {
  build();
  a->send(frame_to(*b, 100));
  sim.run();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].nic, "b");
  EXPECT_TRUE(rx[0].to_us);
}

TEST_F(NetFixture, BroadcastReachesAll) {
  build();
  EthernetFrame f;
  f.dst = MacAddress::broadcast();
  f.payload = Bytes(10, 1);
  a->send(std::move(f));
  sim.run();
  EXPECT_EQ(rx.size(), 2u);  // b and c, not the sender
}

TEST_F(NetFixture, PromiscuousSeesForeignFrames) {
  build();
  c->set_promiscuous(true);
  a->send(frame_to(*b, 64));
  sim.run();
  ASSERT_EQ(rx.size(), 2u);
  // b got it addressed; c snooped it.
  bool saw_b = false, saw_c_promisc = false;
  for (const auto& r : rx) {
    if (r.nic == "b" && r.to_us) saw_b = true;
    if (r.nic == "c" && !r.to_us) saw_c_promisc = true;
  }
  EXPECT_TRUE(saw_b);
  EXPECT_TRUE(saw_c_promisc);
}

TEST_F(NetFixture, DisabledNicIsSilent) {
  build();
  b->set_enabled(false);
  a->send(frame_to(*b, 64));
  b->send(frame_to(*a, 64));
  sim.run();
  EXPECT_TRUE(rx.empty());
}

TEST_F(NetFixture, WireTimeMatchesBandwidth) {
  mp.bandwidth_bps = 100'000'000;
  mp.propagation = 0;
  build();
  // 1000B payload: frame = 14 + 1000 + 4 = 1018, +20 overhead = 1038 octets
  // = 8304 bits at 100 Mb/s = 83040 ns.
  a->send(frame_to(*b, 1000));
  sim.run();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].at, 83040u);
}

TEST_F(NetFixture, MinimumFramePadding) {
  mp.bandwidth_bps = 100'000'000;
  mp.propagation = 0;
  build();
  // 1B payload pads to 46: frame = 64, wire = 84 octets = 6720 ns.
  a->send(frame_to(*b, 1));
  sim.run();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].at, 6720u);
}

TEST_F(NetFixture, HalfDuplexSerializesTransmissions) {
  mp.bandwidth_bps = 100'000'000;
  mp.propagation = 0;
  build();
  a->send(frame_to(*c, 1000));
  b->send(frame_to(*c, 1000));  // same instant: must wait for the wire
  sim.run();
  ASSERT_EQ(rx.size(), 2u);
  EXPECT_EQ(rx[0].at, 83040u);
  EXPECT_EQ(rx[1].at, 2 * 83040u);
  EXPECT_EQ(wire->deferrals(), 1u);
}

TEST_F(NetFixture, FullDuplexDoesNotContend) {
  mp.bandwidth_bps = 100'000'000;
  mp.propagation = 0;
  mp.half_duplex = false;
  build();
  a->send(frame_to(*c, 1000));
  b->send(frame_to(*c, 1000));
  sim.run();
  ASSERT_EQ(rx.size(), 2u);
  EXPECT_EQ(rx[0].at, rx[1].at);
}

TEST_F(NetFixture, PerReceiverLossRule) {
  build();
  // Drop everything addressed to b, while promiscuous c still hears it —
  // the asymmetric loss the paper's §4 analysis needs.
  c->set_promiscuous(true);
  wire->set_loss_fn([this](const Nic&, const Nic& rxr, const EthernetFrame&) {
    return rxr.name() == "b";
  });
  a->send(frame_to(*b, 64));
  sim.run();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].nic, "c");
}

TEST_F(NetFixture, UniformLossDropsSomeFrames) {
  mp.loss_probability = 0.5;
  mp.loss_seed = 7;
  build();
  for (int i = 0; i < 100; ++i) a->send(frame_to(*b, 64));
  sim.run();
  EXPECT_GT(rx.size(), 20u);
  EXPECT_LT(rx.size(), 80u);
}

TEST_F(NetFixture, CountersTrackTraffic) {
  build();
  a->send(frame_to(*b, 500));
  sim.run();
  EXPECT_EQ(a->tx_frames(), 1u);
  EXPECT_EQ(a->tx_bytes(), 500u);
  EXPECT_EQ(b->rx_frames(), 1u);
  EXPECT_EQ(b->rx_bytes(), 500u);
}

TEST(PointToPoint, DeliversWithLatencyAndBandwidth) {
  sim::Simulator sim;
  PointToPointParams pp;
  pp.bandwidth_bps = 8'000'000;  // 1 byte/us
  pp.propagation = milliseconds(5);
  PointToPointLink link(sim, pp);
  NicParams np;
  np.rx_processing = 0;
  Nic a(sim, "a", MacAddress::from_id(1), np), b(sim, "b", MacAddress::from_id(2), np);
  a.attach(link);
  b.attach(link);
  SimTime got = 0;
  b.set_rx_handler([&](const EthernetFrame&, bool) { got = sim.now(); });
  EthernetFrame f;
  f.dst = b.mac();
  f.payload = Bytes(980, 1);  // wire 1018 octets -> 1018us
  a.send(std::move(f));
  sim.run();
  EXPECT_EQ(got, 1018u * 1000 + 5'000'000u);
}

TEST(PointToPoint, QueueLimitDropsTail) {
  sim::Simulator sim;
  PointToPointParams pp;
  pp.bandwidth_bps = 1'000'000;
  pp.queue_limit = 4;
  PointToPointLink link(sim, pp);
  NicParams np;
  np.rx_processing = 0;
  Nic a(sim, "a", MacAddress::from_id(1), np), b(sim, "b", MacAddress::from_id(2), np);
  a.attach(link);
  b.attach(link);
  int got = 0;
  b.set_rx_handler([&](const EthernetFrame&, bool) { ++got; });
  for (int i = 0; i < 10; ++i) {
    EthernetFrame f;
    f.dst = b.mac();
    f.payload = Bytes(1000, 1);
    a.send(std::move(f));
  }
  sim.run();
  EXPECT_EQ(got, 4);
  EXPECT_EQ(link.drops_queue(), 6u);
}

}  // namespace
}  // namespace tfo::net
