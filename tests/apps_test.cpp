// Tests for the application layer over plain (unreplicated) TCP: the
// deterministic web store and the active-mode FTP implementation.
#include <gtest/gtest.h>

#include "apps/echo.hpp"
#include "apps/ftp.hpp"
#include "apps/store.hpp"
#include "apps/topology.hpp"
#include "test_util.hpp"

namespace tfo::apps {
namespace {

using test::run_until;

struct AppsFixture : ::testing::Test {
  std::unique_ptr<Lan> lan = make_lan();
  sim::Simulator& sim() { return lan->sim; }
};

TEST_F(AppsFixture, StoreListBrowseBuy) {
  StoreServer server(lan->primary->tcp(), 8000);
  StoreClient client(lan->client->tcp(), lan->primary->address(), 8000);
  client.request("LIST");
  client.request("BROWSE grinder");
  client.request("BUY grinder 2");
  client.request("BUY grinder 1000");
  client.request("BROWSE nonsense");
  ASSERT_TRUE(run_until(sim(), [&] { return client.replies().size() >= 10; }));
  const auto& r = client.replies();
  // LIST: 5 items + END.
  EXPECT_EQ(r[0].rfind("ITEM espresso-machine", 0), 0u);
  EXPECT_EQ(r[5], "END");
  EXPECT_EQ(r[6], "ITEM grinder 8999 40");
  EXPECT_EQ(r[7], "OK 1 17998");
  EXPECT_EQ(r[8], "NOSTOCK");
  EXPECT_EQ(r[9], "NOITEM");
  EXPECT_EQ(server.orders_placed(), 1u);
}

TEST_F(AppsFixture, StoreStockIsPerConnection) {
  StoreServer server(lan->primary->tcp(), 8000);
  StoreClient a(lan->client->tcp(), lan->primary->address(), 8000);
  StoreClient b(lan->client->tcp(), lan->primary->address(), 8000);
  a.request("BUY scale 7");
  ASSERT_TRUE(run_until(sim(), [&] { return a.replies().size() >= 1; }));
  EXPECT_EQ(a.replies()[0].rfind("OK", 0), 0u);
  // A different connection still sees the full deterministic stock.
  b.request("BROWSE scale");
  ASSERT_TRUE(run_until(sim(), [&] { return b.replies().size() >= 1; }));
  EXPECT_EQ(b.replies()[0], "ITEM scale 2199 7");
}

TEST_F(AppsFixture, StoreQuitClosesConnection) {
  StoreServer server(lan->primary->tcp(), 8000);
  StoreClient client(lan->client->tcp(), lan->primary->address(), 8000);
  client.quit();
  ASSERT_TRUE(run_until(sim(), [&] { return client.closed(); }, seconds(30)));
  ASSERT_FALSE(client.replies().empty());
  EXPECT_EQ(client.replies().back(), "BYE");
}

struct FtpFixture : AppsFixture {
  std::unique_ptr<FtpServer> server;
  std::unique_ptr<FtpClient> client;

  void build() {
    server = std::make_unique<FtpServer>(lan->primary->tcp());
    server->add_file("hello.txt", to_bytes("hello ftp world"));
    server->add_file("big.bin", deterministic_payload(300 * 1024, 42));
    client = std::make_unique<FtpClient>(lan->client->tcp(), lan->primary->address());
  }

  bool login() {
    bool ok = false, done = false;
    client->login([&](bool r) {
      ok = r;
      done = true;
    });
    return run_until(sim(), [&] { return done; }, seconds(30)) && ok;
  }
};

TEST_F(FtpFixture, LoginSucceeds) {
  build();
  EXPECT_TRUE(login());
}

TEST_F(FtpFixture, CommandsBeforeLoginRejected) {
  build();
  // Drive the control channel manually: RETR before USER.
  bool got_530 = false;
  auto conn = lan->client->tcp().connect(lan->primary->address(), 21);
  std::string buf;
  conn->on_readable = [&] {
    Bytes d;
    conn->recv(d);
    buf += to_string(d);
    if (buf.find("530") != std::string::npos) got_530 = true;
  };
  conn->on_established = [&] { conn->send(to_bytes("RETR hello.txt\r\n")); };
  ASSERT_TRUE(run_until(sim(), [&] { return got_530; }, seconds(30)));
}

TEST_F(FtpFixture, GetSmallFile) {
  build();
  ASSERT_TRUE(login());
  Bytes content;
  bool ok = false, done = false;
  client->get("hello.txt", [&](bool r, Bytes b) {
    ok = r;
    content = std::move(b);
    done = true;
  });
  ASSERT_TRUE(run_until(sim(), [&] { return done; }, seconds(60)));
  EXPECT_TRUE(ok);
  EXPECT_EQ(to_string(content), "hello ftp world");
  EXPECT_EQ(server->transfers_completed(), 1u);
}

TEST_F(FtpFixture, GetLargeFile) {
  build();
  ASSERT_TRUE(login());
  Bytes content;
  bool done = false;
  client->get("big.bin", [&](bool, Bytes b) {
    content = std::move(b);
    done = true;
  });
  ASSERT_TRUE(run_until(sim(), [&] { return done; }, seconds(300)));
  EXPECT_EQ(content, deterministic_payload(300 * 1024, 42));
}

TEST_F(FtpFixture, GetMissingFileFails) {
  build();
  ASSERT_TRUE(login());
  bool ok = true, done = false;
  client->get("no-such-file", [&](bool r, Bytes) {
    ok = r;
    done = true;
  });
  ASSERT_TRUE(run_until(sim(), [&] { return done; }, seconds(30)));
  EXPECT_FALSE(ok);
}

TEST_F(FtpFixture, PutThenGetRoundTrip) {
  build();
  ASSERT_TRUE(login());
  const Bytes payload = deterministic_payload(80 * 1024, 7);
  bool put_ok = false, put_done = false;
  client->put("upload.bin", payload, [&](bool r) {
    put_ok = r;
    put_done = true;
  });
  ASSERT_TRUE(run_until(sim(), [&] { return put_done; }, seconds(120)));
  EXPECT_TRUE(put_ok);
  ASSERT_TRUE(server->files().contains("upload.bin"));
  EXPECT_EQ(server->files().at("upload.bin"), payload);

  Bytes back;
  bool get_done = false;
  client->get("upload.bin", [&](bool, Bytes b) {
    back = std::move(b);
    get_done = true;
  });
  ASSERT_TRUE(run_until(sim(), [&] { return get_done; }, seconds(120)));
  EXPECT_EQ(back, payload);
}

TEST_F(FtpFixture, SequentialTransfersReuseControlConnection) {
  build();
  ASSERT_TRUE(login());
  int completed = 0;
  std::function<void(int)> next = [&](int i) {
    if (i == 3) return;
    client->get("hello.txt", [&, i](bool ok, Bytes) {
      EXPECT_TRUE(ok);
      ++completed;
      next(i + 1);
    });
  };
  next(0);
  ASSERT_TRUE(run_until(sim(), [&] { return completed == 3; }, seconds(120)));
  EXPECT_EQ(server->transfers_completed(), 3u);
}

TEST_F(FtpFixture, WorksAcrossWan) {
  // The paper's Figure 6 environment: FTP across a router + WAN link.
  WanParams wp;
  wp.wan_link.propagation = milliseconds(10);
  wp.wan_link.bandwidth_bps = 8'000'000;
  auto wan = make_wan(wp);
  FtpServer srv(wan->primary->tcp());
  srv.add_file("wan.bin", deterministic_payload(50 * 1024, 3));
  FtpClient cli(wan->client->tcp(), wan->primary->address());
  bool login_done = false;
  cli.login([&](bool) { login_done = true; });
  ASSERT_TRUE(run_until(wan->sim, [&] { return login_done; }, seconds(30)));
  Bytes content;
  bool done = false;
  cli.get("wan.bin", [&](bool ok, Bytes b) {
    EXPECT_TRUE(ok);
    content = std::move(b);
    done = true;
  });
  ASSERT_TRUE(run_until(wan->sim, [&] { return done; }, seconds(300)));
  EXPECT_EQ(content, deterministic_payload(50 * 1024, 3));
}

}  // namespace
}  // namespace tfo::apps
