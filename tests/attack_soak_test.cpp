// Attack soak harness: the off-path adversary profile matrix run against
// the full replicated LAN, in steady state and across a primary crash.
// Each run is judged by the oracles in attack_util.hpp:
//   1. the transfer completes and the echoed stream is byte-identical
//      (no blind data injection ever reached a receive queue);
//   2. no RST reaches the client — spoofed teardowns are challenged or
//      dropped, never amplified into a client-visible reset;
//   3. the replicas never diverge (forged segments never perturb the
//      bridge merge state);
//   4. the attacked connection survives the whole run;
//   5. the defenses demonstrably engaged (challenge ACKs, spoof drops,
//      ICMP rejections, heartbeat auth failures — as the profile implies).
// Plus targeted scenarios: forged ICMP fragmentation-needed clamping at
// min_pmtu instead of collapsing the MSS, and determinism — the same
// attacked run, twice and across lane layouts, is bit-identical.
#include <gtest/gtest.h>

#include <cstdlib>

#include "attack_util.hpp"
#include "ip/icmp.hpp"

namespace tfo::core {
namespace {

using test::attack_profiles;
using test::AttackProfile;
using test::AttackRunResult;
using test::EchoDriver;
using test::kEchoPort;
using test::run_attack_scenario;
using test::run_until;

// ------------------------------------------------------------ soak matrix

struct AttackSoakParam {
  AttackProfile prof;
  bool fail_primary;
  std::uint64_t seed;
};

std::vector<AttackSoakParam> attack_matrix() {
  std::vector<AttackSoakParam> out;
  std::uint64_t seed = 301;
  for (const auto& prof : attack_profiles()) {
    out.push_back({prof, false, seed});
    out.push_back({prof, true, seed + 100});
    ++seed;
  }
  return out;
}

class AttackSoak : public ::testing::TestWithParam<AttackSoakParam> {};

TEST_P(AttackSoak, StreamSurvivesOffPathAdversary) {
  const AttackSoakParam& p = GetParam();
  const AttackRunResult res =
      run_attack_scenario(p.prof, p.seed, p.fail_primary, 24000);
  EXPECT_TRUE(res.completed);
  EXPECT_TRUE(res.stream_intact);
  EXPECT_TRUE(res.no_client_rst);
  EXPECT_TRUE(res.no_divergence);
  EXPECT_TRUE(res.conn_survived) << "attacker tore the connection down";
  EXPECT_TRUE(res.attack_engaged)
      << "injected=" << res.injected << " spoof_dropped=" << res.spoof_dropped
      << " challenge_acks=" << res.challenge_acks
      << " icmp_rejected=" << res.icmp_rejected
      << " hb_auth_failed=" << res.hb_auth_failed;
  EXPECT_GT(res.injected, 100u);
  if (p.prof.forge_heartbeats) {
    // The forged-liveness stream was rejected at the nonce chain — and in
    // the failover cell, detection was provably not suppressed (the
    // transfer finished via takeover).
    EXPECT_GT(res.hb_auth_failed, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AttackSoak, ::testing::ValuesIn(attack_matrix()),
    [](const ::testing::TestParamInfo<AttackSoakParam>& info) {
      return info.param.prof.name +
             (info.param.fail_primary ? "_failover" : "_steady") + "_s" +
             std::to_string(info.param.seed);
    });

// ------------------------------- forged ICMP clamps instead of collapsing

TEST(AttackScenario, ForgedIcmpFragNeededClampsAtMinPmtu) {
  // A forged "fragmentation needed, MTU 68" quoting a sequence number the
  // attacker aims into the victim's in-flight send window. The validated
  // accept path must clamp at min_pmtu (552 → MSS 512), never at the
  // claimed value — the transfer slows but completes; an unclamped
  // implementation would crawl at MSS 28.
  auto lan = apps::make_lan();
  std::shared_ptr<tcp::Connection> server;
  lan->primary->tcp().listen(kEchoPort, [&](std::shared_ptr<tcp::Connection> c) {
    server = std::move(c);
    auto* raw = server.get();
    raw->on_readable = [raw] {
      Bytes b;
      raw->recv(b);
      raw->send(std::move(b));
    };
  });
  EchoDriver d(*lan->client, lan->primary->address(), kEchoPort, 60000, 1500);
  ASSERT_TRUE(run_until(lan->sim, [&] { return d.received().size() > 3000; },
                        seconds(60)));

  // Inject from a free host on the wire for the rest of the transfer; the
  // quoted sequence rides the client's RCV.NXT — for this unbridged LAN
  // that is the primary's own send space, so forgeries land inside
  // [SND.UNA, SND.NXT) while the echo leg is in flight and outside it
  // during the request leg (nothing outstanding → rejected as stale).
  std::uint64_t sent = 0;
  std::function<void()> inject = [&] {
    if (d.done()) return;
    ip::IcmpMessage msg;
    msg.type = ip::kIcmpDestUnreachable;
    msg.code = ip::kIcmpFragNeeded;
    msg.mtu = 68;
    msg.quoted_src = lan->primary->address();
    msg.quoted_dst = lan->client->address();
    msg.quoted_src_port = kEchoPort;
    msg.quoted_dst_port = d.connection().key().local_port;
    msg.quoted_seq = d.connection().rcv_nxt_abs() + (sent % 4) * 256;
    ++sent;
    lan->secondary->ip().send(ip::Proto::kIcmp, ip::Ipv4::any(),
                              lan->primary->address(), msg.serialize());
    lan->sim.schedule_after(microseconds(250), inject);
  };
  lan->sim.schedule_after(microseconds(250), inject);
  ASSERT_TRUE(run_until(lan->sim, [&] { return d.done(); }, seconds(600)));
  EXPECT_TRUE(d.verify());
  const auto rejected =
      lan->primary->obs().registry.counter_value("tcp.icmp_rejected");
  EXPECT_GT(sent, 20u);
  // At least one forgery was validated and accepted (clamped — visible as
  // the shrunken MSS), and at least one was rejected by the in-flight
  // check.
  EXPECT_LT(rejected, sent);
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(server->effective_mss(), 512u);
}

// ----------------------------------------------- determinism under attack

std::string attacked_trace(std::uint64_t seed, apps::LanParams lp) {
  std::string trace;
  AttackProfile prof = attack_profiles()[1];  // informed_rst_syn
  const AttackRunResult res =
      run_attack_scenario(prof, seed, /*fail_primary=*/true, 16000, &trace, lp);
  EXPECT_TRUE(res.all_green());
  return trace;
}

TEST(AttackDeterminism, SameSeedSameTraceUnderAttack) {
  const std::string a = attacked_trace(401, {});
  const std::string b = attacked_trace(401, {});
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  const std::string c = attacked_trace(402, {});
  EXPECT_NE(a, c);  // the attack stream is seed-driven, not incidental
}

TEST(AttackDeterminism, LaneLayoutsAgreeUnderAttack) {
  // The determinism lane matrix must stay green with an adversary on the
  // wire: the attack stream rides the same seeded schedule whatever the
  // execution layout.
  ::unsetenv("TFO_LANES");
  apps::LanParams base;
  base.nic.rx_batch_max = 8;
  base.nic.rx_batch_window = microseconds(150);
  apps::LanParams l1 = base, l4 = base;
  l1.lanes = {.lanes = 1, .parallel = false};
  l4.lanes = {.lanes = 4, .parallel = false};
  const std::string a = attacked_trace(403, l1);
  const std::string b = attacked_trace(403, l4);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace tfo::core
