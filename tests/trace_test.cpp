// Tests for the frame tracer — and wire-level assertions about the
// failover bridge that only a tracer can make (e.g. "every segment the
// secondary emits during normal operation is addressed to the primary").
#include <gtest/gtest.h>

#include "apps/trace.hpp"
#include "failover_fixture.hpp"

namespace tfo::apps {
namespace {

using test::run_until;

TEST(FrameTracer, DecodesTcpSegments) {
  auto lan = make_lan();
  FrameTracer at_primary(lan->sim, lan->primary->nic());
  EchoServer echo(lan->primary->tcp(), 80);
  auto conn = lan->client->tcp().connect(lan->primary->address(), 80, {.nodelay = true});
  Bytes got;
  conn->on_established = [&] { conn->send(to_bytes("probe")); };
  conn->on_readable = [&] { conn->recv(got); };
  ASSERT_TRUE(run_until(lan->sim, [&] { return got.size() == 5; }));

  // The capture contains the client SYN and the 5-byte request.
  EXPECT_GE(at_primary.count([](const TraceRecord& r) {
    return r.has_tcp && (r.flags & tcp::Flags::kSyn) && !(r.flags & tcp::Flags::kAck);
  }), 1u);
  EXPECT_GE(at_primary.count([](const TraceRecord& r) {
    return r.has_tcp && r.payload_len == 5 && r.dst_port == 80;
  }), 1u);
  // Summaries render without crashing and mention the endpoints.
  EXPECT_NE(at_primary.dump().find("10.0.0.10"), std::string::npos);
}

TEST(FrameTracer, SeesArpTraffic) {
  apps::LanParams lp;
  lp.warm_arp = false;  // force a real ARP exchange
  auto lan = make_lan(lp);
  FrameTracer at_primary(lan->sim, lan->primary->nic());
  bool resolved = false;
  lan->client->arp().resolve(lan->primary->address(),
                             [&](net::MacAddress) { resolved = true; });
  ASSERT_TRUE(run_until(lan->sim, [&] { return resolved; }));
  EXPECT_GE(at_primary.count([](const TraceRecord& r) {
    return r.type == net::EtherType::kArp;
  }), 1u);
}

TEST(FrameTracer, PromiscuousCaptureFlagged) {
  auto r = test::make_replicated_lan();
  FrameTracer at_secondary(r->sim(), r->secondary().nic());
  test::EchoDriver d(r->client(), r->primary().address(), test::kEchoPort, 2000, 500);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }));
  // The secondary's NIC captured client->primary frames promiscuously.
  EXPECT_GE(at_secondary.count([&](const TraceRecord& r2) {
    return !r2.to_us && r2.has_tcp && r2.dst_ip == r->primary().address();
  }), 2u);
}

// Wire-level §3.1 property: in fault-free operation, the secondary never
// transmits a frame addressed (at the IP layer) to the client — all its
// TCP output is diverted to the primary carrying the orig-dst option.
TEST(WireProperties, SecondaryNeverAddressesClientBeforeFailover) {
  auto r = test::make_replicated_lan();
  FrameTracer at_client(r->sim(), r->client().nic());
  test::EchoDriver d(r->client(), r->primary().address(), test::kEchoPort, 20000, 2000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(120)));

  const auto from_secondary_to_client = at_client.count([&](const TraceRecord& rec) {
    return rec.has_ip && rec.src_ip == r->secondary().address() &&
           rec.dst_ip == r->client().address();
  });
  EXPECT_EQ(from_secondary_to_client, 0u);
}

// Wire-level §3.1 property: diverted segments carry the original
// destination as a TCP option.
TEST(WireProperties, DivertedSegmentsCarryOrigDstOption) {
  auto r = test::make_replicated_lan();
  FrameTracer at_primary(r->sim(), r->primary().nic());
  test::EchoDriver d(r->client(), r->primary().address(), test::kEchoPort, 5000, 1000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(60)));

  const auto diverted = at_primary.count([&](const TraceRecord& rec) {
    return rec.has_tcp && rec.src_ip == r->secondary().address() &&
           rec.dst_ip == r->primary().address();
  });
  const auto diverted_with_option = at_primary.count([&](const TraceRecord& rec) {
    return rec.has_tcp && rec.src_ip == r->secondary().address() &&
           rec.dst_ip == r->primary().address() && rec.has_orig_dst_option;
  });
  EXPECT_GT(diverted, 0u);
  EXPECT_EQ(diverted, diverted_with_option);
}

// Wire-level §5 property: after takeover the secondary sources frames
// from the primary's IP address.
TEST(WireProperties, AfterTakeoverSecondarySpeaksAsPrimary) {
  auto r = test::make_replicated_lan();
  test::EchoDriver d(r->client(), r->primary().address(), test::kEchoPort, 40000, 2000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.received().size() > 10000; }));
  r->group->crash_primary();
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return r->group->secondary_bridge().taken_over();
  }, seconds(10)));

  FrameTracer at_client(r->sim(), r->client().nic());
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(120)));
  EXPECT_GT(at_client.count([&](const TraceRecord& rec) {
    return rec.has_tcp && rec.src_ip == r->primary().address() &&
           rec.src_mac == r->secondary().nic().mac();
  }), 0u);
  // And never with its own (secondary) source address.
  EXPECT_EQ(at_client.count([&](const TraceRecord& rec) {
    return rec.has_ip && rec.src_ip == r->secondary().address();
  }), 0u);
}

}  // namespace
}  // namespace tfo::apps
