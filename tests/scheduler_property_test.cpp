// Equivalence property test: the timing-wheel scheduler must be
// observationally identical to the legacy priority-queue scheduler.
//
// Strategy: generate a random operation script (schedule with delays that
// straddle every wheel level, cancel, restart-from-callback, run-for) and
// replay it against two Simulators — one per SchedulerKind. The contract
// under test is the one DESIGN.md states: events run in (time,
// schedule-order) order, negative delays clamp to now, cancels are exact,
// and same-instant events preserve scheduling order. Any divergence shows
// up as a mismatch in the (now, label) firing traces.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace tfo::sim {
namespace {

// One scripted operation, interpreted identically by both harnesses.
struct Op {
  enum Kind { kSchedule, kChainSchedule, kCancel, kRunFor } kind;
  std::int64_t delay = 0;       // kSchedule / kChainSchedule / kRunFor
  std::int64_t child_delay = 0; // kChainSchedule: delay of the event the
                                // callback schedules (restart pattern)
  std::uint64_t pick = 0;       // kCancel: index into the id list (mod size)
  std::uint32_t label = 0;
};

/// Replays a script against one simulator, recording every firing as
/// (now(), label). Chained events append ids in firing order, so a
/// kCancel pick resolves to the same logical event on both sides as long
/// as the traces agree — and if they don't, the trace mismatch is the
/// failure we're looking for.
struct Harness {
  explicit Harness(SchedulerKind kind) : sim(kind) {}

  Simulator sim;
  std::vector<std::pair<SimTime, std::uint32_t>> trace;
  std::vector<EventId> ids;

  void schedule(std::int64_t delay, std::uint32_t label) {
    ids.push_back(sim.schedule_after(delay, [this, label] {
      trace.emplace_back(sim.now(), label);
    }));
  }

  void chain_schedule(std::int64_t delay, std::int64_t child_delay,
                      std::uint32_t label) {
    ids.push_back(sim.schedule_after(delay, [this, child_delay, label] {
      trace.emplace_back(sim.now(), label);
      // Restart-from-callback: scheduling from inside a firing event.
      schedule(child_delay, label ^ 0x80000000u);
    }));
  }

  void apply(const Op& op) {
    switch (op.kind) {
      case Op::kSchedule: schedule(op.delay, op.label); break;
      case Op::kChainSchedule:
        chain_schedule(op.delay, op.child_delay, op.label);
        break;
      case Op::kCancel:
        if (!ids.empty()) sim.cancel(ids[op.pick % ids.size()]);
        break;
      case Op::kRunFor: sim.run_for(op.delay); break;
    }
  }
};

/// Delay palette spanning the wheel geometry: negative (clamp), zero
/// (same-instant ordering), sub-tick, every level's slot width, and
/// beyond the wheel horizon (straight-to-heap path).
std::int64_t pick_delay(std::mt19937_64& rng) {
  const std::uint64_t r = rng();
  switch (r % 8) {
    case 0: return -static_cast<std::int64_t>(r % 1'000'000);  // clamped
    case 1: return 0;
    case 2: return static_cast<std::int64_t>(r % 1000);          // sub-tick
    case 3: return static_cast<std::int64_t>(r % (1ull << 16));  // ~1 tick
    case 4: return static_cast<std::int64_t>(r % (1ull << 22));  // level 0/1
    case 5: return static_cast<std::int64_t>(r % (1ull << 30));  // level 2/3
    case 6: return static_cast<std::int64_t>(r % (1ull << 40));  // level 4/5
    default:
      // Past the wheel horizon (2^(16+36) ns): exact-heap fallback.
      return static_cast<std::int64_t>((1ull << 53) + r % (1ull << 40));
  }
}

std::vector<Op> make_script(std::uint64_t seed, int steps) {
  std::mt19937_64 rng(seed);
  std::vector<Op> script;
  script.reserve(steps);
  std::uint32_t label = 0;
  for (int i = 0; i < steps; ++i) {
    const std::uint64_t r = rng();
    Op op;
    if (r % 10 < 4) {
      op.kind = Op::kSchedule;
      op.delay = pick_delay(rng);
      op.label = ++label;
    } else if (r % 10 < 6) {
      op.kind = Op::kChainSchedule;
      op.delay = pick_delay(rng);
      op.child_delay = pick_delay(rng);
      op.label = ++label;
    } else if (r % 10 < 8) {
      op.kind = Op::kCancel;
      op.pick = rng();
    } else {
      op.kind = Op::kRunFor;
      op.delay = static_cast<std::int64_t>(rng() % (1ull << 32));
    }
    script.push_back(op);
  }
  return script;
}

class SchedulerEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerEquivalence, IdenticalTraces) {
  const auto script = make_script(GetParam(), 600);
  Harness wheel(SchedulerKind::kTimingWheel);
  Harness legacy(SchedulerKind::kLegacyHeap);
  for (const Op& op : script) {
    wheel.apply(op);
    legacy.apply(op);
    ASSERT_EQ(wheel.sim.now(), legacy.sim.now());
    ASSERT_EQ(wheel.sim.pending(), legacy.sim.pending());
  }
  // Drain both to completion (chains are finite: one child per parent).
  wheel.sim.run();
  legacy.sim.run();

  EXPECT_EQ(wheel.trace, legacy.trace);
  EXPECT_EQ(wheel.sim.now(), legacy.sim.now());
  EXPECT_EQ(wheel.sim.pending(), 0u);
  EXPECT_EQ(legacy.sim.pending(), 0u);
  EXPECT_EQ(wheel.sim.stats().fired, legacy.sim.stats().fired);
  // The script must actually have exercised the wheel, not just the heap.
  EXPECT_GT(wheel.sim.stats().wheel_inserts, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerEquivalence,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

TEST(SchedulerEquivalence, NegativeDelayClampsToNow) {
  for (auto kind : {SchedulerKind::kTimingWheel, SchedulerKind::kLegacyHeap}) {
    Simulator sim(kind);
    sim.run_until(1'000'000);
    std::vector<int> order;
    sim.schedule_after(-500, [&] { order.push_back(1); });
    sim.schedule_at(5, [&] { order.push_back(2); });  // past absolute time
    sim.schedule_after(0, [&] { order.push_back(3); });
    sim.run();
    EXPECT_EQ(sim.now(), 1'000'000);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  }
}

TEST(SchedulerEquivalence, SameTickPreservesScheduleOrder) {
  // Many events inside one wheel tick (2^16 ns) and at identical instants:
  // execution must follow schedule order exactly on both schedulers.
  for (auto kind : {SchedulerKind::kTimingWheel, SchedulerKind::kLegacyHeap}) {
    Simulator sim(kind);
    std::vector<int> order;
    for (int i = 0; i < 100; ++i) {
      sim.schedule_at((i % 7) * 100, [&order, i] { order.push_back(i); });
    }
    sim.run();
    // Stable sort of (time, schedule index) is the expected order.
    std::vector<int> expect;
    for (int t = 0; t < 7; ++t) {
      for (int i = 0; i < 100; ++i) {
        if (i % 7 == t) expect.push_back(i);
      }
    }
    EXPECT_EQ(order, expect) << "kind=" << static_cast<int>(kind);
  }
}

TEST(SchedulerEquivalence, TimerRestartFromCallback) {
  // sim::Timer rides the wheel: restarting a timer from inside its own
  // callback (the retransmit pattern) must work on both schedulers.
  for (auto kind : {SchedulerKind::kTimingWheel, SchedulerKind::kLegacyHeap}) {
    Simulator sim(kind);
    Timer timer(sim);
    int fires = 0;
    std::function<void()> tick = [&] {
      if (++fires < 5) timer.start(1000, tick);
    };
    timer.start(1000, tick);
    sim.run();
    EXPECT_EQ(fires, 5);
    EXPECT_EQ(sim.now(), 5000);
    EXPECT_FALSE(timer.armed());
  }
}

TEST(SchedulerEquivalence, CancelReleasesClosureEagerly) {
  // The cancelled event's closure must be destroyed at cancel time (both
  // schedulers), not when the deadline passes — a cancelled retransmit
  // timer must not pin its segment buffers for the rest of the run.
  for (auto kind : {SchedulerKind::kTimingWheel, SchedulerKind::kLegacyHeap}) {
    Simulator sim(kind);
    auto token = std::make_shared<int>(42);
    std::weak_ptr<int> observe = token;
    EventId id = sim.schedule_after(1'000'000'000, [token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(observe.expired());
    sim.cancel(id);
    EXPECT_TRUE(observe.expired()) << "kind=" << static_cast<int>(kind);
  }
}

}  // namespace
}  // namespace tfo::sim
