// System-level property sweeps for failover: crashes at arbitrary
// *times* (not byte positions), multiple client hosts, double failures,
// and the secondary bridge's snoop-filtering rules.
#include <gtest/gtest.h>

#include "apps/trace.hpp"
#include "failover_fixture.hpp"
#include "ip/datagram.hpp"

namespace tfo::core {
namespace {

using test::kEchoPort;
using test::make_replicated_lan;
using test::run_until;

// ----------------------------------------------- crash-at-time property

struct CrashParam {
  bool crash_primary;
  SimDuration at;
  const char* label;
};

class CrashTimeSweep : public ::testing::TestWithParam<CrashParam> {};

TEST_P(CrashTimeSweep, ByteStreamIntact) {
  const CrashParam& p = GetParam();
  auto r = make_replicated_lan();
  test::EchoDriver d(r->client(), r->primary().address(), kEchoPort, 80 * 1024, 4096);
  r->sim().run_for(p.at);
  if (p.crash_primary) {
    r->group->crash_primary();
  } else {
    r->group->crash_secondary();
  }
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(300)))
      << "stalled at " << d.received().size();
  EXPECT_TRUE(d.verify());
  EXPECT_FALSE(d.close_reason().has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Times, CrashTimeSweep,
    ::testing::Values(
        CrashParam{true, 0, "P_at_t0"},
        CrashParam{true, microseconds(100), "P_during_handshake"},
        CrashParam{true, microseconds(500), "P_at_500us"},
        CrashParam{true, milliseconds(2), "P_at_2ms"},
        CrashParam{true, milliseconds(10), "P_at_10ms"},
        CrashParam{true, milliseconds(40), "P_at_40ms"},
        CrashParam{false, 0, "S_at_t0"},
        CrashParam{false, microseconds(100), "S_during_handshake"},
        CrashParam{false, microseconds(500), "S_at_500us"},
        CrashParam{false, milliseconds(2), "S_at_2ms"},
        CrashParam{false, milliseconds(10), "S_at_10ms"},
        CrashParam{false, milliseconds(40), "S_at_40ms"}),
    [](const ::testing::TestParamInfo<CrashParam>& info) { return info.param.label; });

// ------------------------------------------------------- multiple hosts

TEST(MultiClient, TwoClientHostsBothSurviveFailover) {
  auto r = make_replicated_lan();
  // A second, independent client machine on the same segment.
  apps::HostParams hp;
  hp.name = "client2";
  hp.addr = ip::Ipv4::parse("10.0.0.11");
  hp.seed = 77;
  apps::Host client2(r->sim(), hp, *r->lan->wire);
  client2.arp().add_static(r->primary().address(), r->primary().nic().mac());
  client2.arp().add_static(r->secondary().address(), r->secondary().nic().mac());
  r->primary().arp().add_static(hp.addr, client2.nic().mac());
  r->secondary().arp().add_static(hp.addr, client2.nic().mac());

  test::EchoDriver d1(r->client(), r->primary().address(), kEchoPort, 40000, 2000);
  test::EchoDriver d2(client2, r->primary().address(), kEchoPort, 40000, 2000);
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return d1.received().size() > 10000 && d2.received().size() > 10000;
  }, seconds(120)));
  r->group->crash_primary();
  ASSERT_TRUE(run_until(r->sim(), [&] { return d1.done() && d2.done(); },
                        seconds(300)));
  EXPECT_TRUE(d1.verify());
  EXPECT_TRUE(d2.verify());
  // The survivor served both sessions to completion.
  EXPECT_EQ(r->echo_s->bytes_echoed(), 80000u);
}

// -------------------------------------------------------- double failure

TEST(DoubleFailure, BothReplicasDieConnectionTimesOutCleanly) {
  apps::LanParams lp;
  lp.tcp.max_retries = 4;
  lp.tcp.max_rto = seconds(2);
  auto r = make_replicated_lan(lp);
  test::EchoDriver d(r->client(), r->primary().address(), kEchoPort, 40000, 2000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.received().size() > 5000; }));
  r->group->crash_primary();
  r->group->crash_secondary();
  // An idle TCP connection to a dead peer lives forever (no keepalive);
  // the timeout clock starts when the client next transmits.
  d.connection().send(to_bytes("probe"));
  // The client's connection must die by retransmission timeout — an
  // honest failure, not a hang or a crash of the framework.
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.close_reason().has_value(); },
                        seconds(300)));
  EXPECT_EQ(d.close_reason(), tcp::CloseReason::kTimeout);
}

TEST(DoubleFailure, SecondaryThenPrimaryServesUntilSecondCrash) {
  apps::LanParams lp;
  lp.tcp.max_retries = 4;
  lp.tcp.max_rto = seconds(2);
  auto r = make_replicated_lan(lp);
  test::EchoDriver d(r->client(), r->primary().address(), kEchoPort, 60000, 2000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.received().size() > 10000; }));
  r->group->crash_secondary();
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.received().size() > 30000; },
                        seconds(120)));
  r->group->crash_primary();
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.close_reason().has_value(); },
                        seconds(300)));
  EXPECT_EQ(d.close_reason(), tcp::CloseReason::kTimeout);
  // Even an honest double-failure death must never corrupt what was
  // delivered before it.
  EXPECT_TRUE(d.verify_prefix());
}

// ---------------------------------------------- secondary bridge filters

TEST(SecondaryFilter, NonFailoverSnoopedTrafficIsDiscarded) {
  auto r = make_replicated_lan();
  apps::EchoServer plain(r->primary().tcp(), 9999);  // not a failover port
  const auto dropped_before = r->group->secondary_bridge().snooped_dropped();
  auto conn = r->client().tcp().connect(r->primary().address(), 9999,
                                        {.nodelay = true});
  Bytes got;
  conn->on_established = [&] { conn->send(to_bytes("plain traffic")); };
  conn->on_readable = [&] { conn->recv(got); };
  ASSERT_TRUE(run_until(r->sim(), [&] { return got.size() == 13; }, seconds(30)));
  // The secondary saw the frames promiscuously but discarded them (§3.1),
  // and its TCP layer never created a connection.
  EXPECT_GT(r->group->secondary_bridge().snooped_dropped(), dropped_before);
  EXPECT_EQ(r->secondary().tcp().connection_count(), 0u);
}

TEST(SecondaryFilter, SnoopedNonTcpDatagramsAreDiscarded) {
  auto r = make_replicated_lan();
  const auto dropped_before = r->group->secondary_bridge().snooped_dropped();
  // A heartbeat-protocol datagram from the client to the primary: TCP-less.
  r->client().ip().send(ip::Proto::kHeartbeat, ip::Ipv4::any(),
                        r->primary().address(), to_bytes("not tcp"));
  r->sim().run_for(milliseconds(10));
  EXPECT_GT(r->group->secondary_bridge().snooped_dropped(), dropped_before);
}

TEST(SecondaryFilter, TranslationCountsOnlyFailoverTraffic) {
  auto r = make_replicated_lan();
  apps::EchoServer plain(r->primary().tcp(), 9999);
  const auto translated_before = r->group->secondary_bridge().datagrams_translated();

  // Failover traffic: translated.
  {
    test::EchoDriver d(r->client(), r->primary().address(), kEchoPort, 2000, 500);
    ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(30)));
    d.connection().abort();  // fully quiesce before the plain phase
  }
  r->sim().run_for(milliseconds(500));
  const auto translated_mid = r->group->secondary_bridge().datagrams_translated();
  EXPECT_GT(translated_mid, translated_before);

  // Plain traffic: not translated.
  auto conn = r->client().tcp().connect(r->primary().address(), 9999,
                                        {.nodelay = true});
  Bytes got;
  conn->on_established = [&] { conn->send(to_bytes("x")); };
  conn->on_readable = [&] { conn->recv(got); };
  ASSERT_TRUE(run_until(r->sim(), [&] { return got.size() == 1; }, seconds(30)));
  EXPECT_EQ(r->group->secondary_bridge().datagrams_translated(), translated_mid);
}

TEST(SecondaryFilter, AfterTakeoverSnoopFilterIsInert) {
  auto r = make_replicated_lan();
  r->group->crash_primary();
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return r->group->secondary_bridge().taken_over();
  }, seconds(10)));
  r->sim().run_for(milliseconds(100));
  const auto translated = r->group->secondary_bridge().datagrams_translated();
  const auto dropped = r->group->secondary_bridge().snooped_dropped();
  // New traffic to the taken-over address is served directly, with no
  // translation or snoop-dropping (§5 steps 2–4).
  test::EchoDriver d(r->client(), r->primary().address(), kEchoPort, 3000, 500);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(60)));
  EXPECT_TRUE(d.verify());
  EXPECT_EQ(r->group->secondary_bridge().datagrams_translated(), translated);
  EXPECT_EQ(r->group->secondary_bridge().snooped_dropped(), dropped);
}

}  // namespace
}  // namespace tfo::core
