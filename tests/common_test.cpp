// Unit tests for src/common: sequence arithmetic, checksums (including the
// paper's incremental update), stats, and byte helpers.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/checksum.hpp"
#include "common/rng.hpp"
#include "common/seq32.hpp"
#include "common/stats.hpp"

namespace tfo {
namespace {

// ---------------------------------------------------------------- seq32

TEST(Seq32, BasicOrdering) {
  EXPECT_TRUE(seq_lt(1, 2));
  EXPECT_TRUE(seq_le(2, 2));
  EXPECT_TRUE(seq_gt(3, 2));
  EXPECT_FALSE(seq_lt(2, 2));
}

TEST(Seq32, WrapAroundOrdering) {
  // 0xfffffff0 is "before" 0x10 on the circle.
  EXPECT_TRUE(seq_lt(0xfffffff0u, 0x10u));
  EXPECT_TRUE(seq_gt(0x10u, 0xfffffff0u));
  EXPECT_EQ(seq_diff(0x10u, 0xfffffff0u), 0x20);
}

TEST(Seq32, AddWraps) {
  EXPECT_EQ(seq_add(0xffffffffu, 1), 0u);
  EXPECT_EQ(seq_add(0xfffffff0u, 0x20), 0x10u);
  EXPECT_EQ(seq_add(5u, -10), 0xfffffffbu);
}

TEST(Seq32, MinMax) {
  EXPECT_EQ(seq_max(0xfffffff0u, 0x10u), 0x10u);
  EXPECT_EQ(seq_min(0xfffffff0u, 0x10u), 0xfffffff0u);
}

TEST(SeqUnwrapper, MonotoneAcrossWrap) {
  SeqUnwrapper u(0xffffff00u);
  EXPECT_EQ(u.unwrap_advance(0xffffff00u), 0u);
  EXPECT_EQ(u.unwrap_advance(0xffffffffu), 0xffu);
  EXPECT_EQ(u.unwrap_advance(0x00000010u), 0x110u);
  // Older value still maps below.
  EXPECT_EQ(u.unwrap(0xfffffff0u), 0xf0u);
  EXPECT_EQ(u.wrap(0x110u), 0x00000010u);
}

TEST(SeqUnwrapper, LongStream) {
  SeqUnwrapper u(0);
  std::uint64_t off = 0;
  Seq32 s = 0;
  for (int i = 0; i < 1000; ++i) {
    off += 0x10000000ull;  // quarter of the space per step, wraps many times
    s = seq_add(s, 0x10000000);
    EXPECT_EQ(u.unwrap_advance(s), off);
  }
}

// ------------------------------------------------------------- checksum

TEST(Checksum, KnownVector) {
  // RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2, ck ~0x220d.
  Bytes data = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(ones_complement_sum(data), 0xddf2);
  EXPECT_EQ(inet_checksum(data), static_cast<std::uint16_t>(~0xddf2 & 0xffff));
}

TEST(Checksum, OddLength) {
  Bytes data = {0x01, 0x02, 0x03};
  // Padded: 0x0102 + 0x0300 = 0x0402.
  EXPECT_EQ(ones_complement_sum(data), 0x0402);
}

TEST(Checksum, VerifyRoundTrip) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    // Even lengths only: a checksum field must sit on a 16-bit boundary,
    // as it does in every real header.
    Bytes data(2 * rng.uniform(1, 100));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u32());
    // Append the checksum; total must verify to zero.
    const std::uint16_t ck = inet_checksum(data);
    Bytes with_ck = data;
    put_u16(with_ck, ck);
    EXPECT_EQ(inet_checksum(with_ck), 0) << "trial " << trial;
  }
}

TEST(Checksum, IncrementalUpdate16MatchesRecompute) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes data(64);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u32());
    const std::uint16_t old_ck = inet_checksum(data);
    const std::size_t word = 2 * rng.uniform(0, 31);
    const std::uint16_t old_w = get_u16(data, word);
    const std::uint16_t new_w = static_cast<std::uint16_t>(rng.next_u32());
    set_u16(data, word, new_w);
    EXPECT_EQ(checksum_update16(old_ck, old_w, new_w), inet_checksum(data))
        << "trial " << trial;
  }
}

TEST(Checksum, IncrementalUpdate32MatchesRecompute) {
  Rng rng(8);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes data(64);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u32());
    const std::uint16_t old_ck = inet_checksum(data);
    const std::size_t off = 4 * rng.uniform(0, 15);
    const std::uint32_t old_v = get_u32(data, off);
    const std::uint32_t new_v = rng.next_u32();
    set_u32(data, off, new_v);
    EXPECT_EQ(checksum_update32(old_ck, old_v, new_v), inet_checksum(data))
        << "trial " << trial;
  }
}

TEST(Checksum, IncrementalUpdateNeverEmitsNegativeZero) {
  // One's-complement zero has two encodings, and RFC 1624 eqn. 3 cannot
  // always pick the one a full recompute would: the all-zero header has
  // full checksum 0xFFFF, but rewriting a zero word to zero pushes the
  // raw formula to 0x0000 — which a receiver summing the wire bytes
  // would reject. checksum_update16 must normalize that away.
  Bytes data(20, 0);
  const std::uint16_t full = inet_checksum(data);
  EXPECT_EQ(full, 0xffff);
  EXPECT_EQ(checksum_update16(full, 0, 0), 0xffff);
  EXPECT_EQ(checksum_update32(full, 0, 0), 0xffff);
}

TEST(Checksum, IncrementalRewritesVerifyLikeFullRecompute) {
  // Property, over chains of random 16/32-bit header rewrites (zero words
  // biased in, to sit on the ±0 boundary): the incrementally maintained
  // checksum (a) is never the forbidden 0x0000 encoding, (b) agrees with
  // the full recompute except in the provably ambiguous case where the
  // full sum is -0, and (c) — the property receivers actually depend on —
  // the header always verifies with the incremental value in place.
  Rng rng(4242);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes data(40);
    const bool sparse = rng.uniform(0, 3) == 0;  // mostly-zero headers
    for (auto& b : data) {
      b = sparse ? 0 : static_cast<std::uint8_t>(rng.next_u32());
    }
    std::uint16_t inc = inet_checksum(data);
    const int rewrites = static_cast<int>(rng.uniform(1, 4));
    for (int i = 0; i < rewrites; ++i) {
      const bool zero_biased = rng.uniform(0, 2) == 0;
      if (rng.uniform(0, 1) == 0) {
        const std::size_t off = 2 * rng.uniform(0, 19);
        const std::uint16_t old_w = get_u16(data, off);
        const std::uint16_t new_w =
            zero_biased ? 0 : static_cast<std::uint16_t>(rng.next_u32());
        set_u16(data, off, new_w);
        inc = checksum_update16(inc, old_w, new_w);
      } else {
        const std::size_t off = 4 * rng.uniform(0, 9);
        const std::uint32_t old_v = get_u32(data, off);
        const std::uint32_t new_v = zero_biased ? 0 : rng.next_u32();
        set_u32(data, off, new_v);
        inc = checksum_update32(inc, old_v, new_v);
      }
    }
    const std::uint16_t full = inet_checksum(data);
    EXPECT_NE(inc, 0x0000) << "trial " << trial;
    EXPECT_TRUE(inc == full || (full == 0x0000 && inc == 0xffff))
        << "trial " << trial << " inc=" << inc << " full=" << full;
    // Receiver-side check: header bytes plus the checksum sum to -0.
    Bytes wire = data;
    put_u16(wire, inc);
    EXPECT_EQ(inet_checksum(wire), 0) << "trial " << trial;
  }
}

// ----------------------------------------------------------------- stats

TEST(Sampler, MedianMaxPercentile) {
  Sampler s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1);
  EXPECT_DOUBLE_EQ(s.max(), 100);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(Sampler, AddAfterReadResorts) {
  Sampler s;
  s.add(10);
  EXPECT_DOUBLE_EQ(s.median(), 10);
  s.add(0);
  EXPECT_DOUBLE_EQ(s.min(), 0);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"a", "long-header"});
  t.add_row({"xxxx", "1"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| a    | long-header |"), std::string::npos);
  EXPECT_NE(out.find("| xxxx | 1           |"), std::string::npos);
}

// ----------------------------------------------------------------- bytes

TEST(Bytes, BigEndianRoundTrip) {
  Bytes b;
  put_u16(b, 0x1234);
  put_u32(b, 0xdeadbeef);
  EXPECT_EQ(get_u16(b, 0), 0x1234);
  EXPECT_EQ(get_u32(b, 2), 0xdeadbeefu);
  set_u32(b, 2, 0x01020304);
  EXPECT_EQ(get_u32(b, 2), 0x01020304u);
}

TEST(Bytes, StringConversions) {
  const Bytes b = to_bytes("hello");
  EXPECT_EQ(to_string(b), "hello");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(5), b(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkIsIndependent) {
  Rng a(5);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

}  // namespace
}  // namespace tfo
