// Tests for the HTTP/1.0 application — plain TCP and behind the failover
// bridge (the paper's §1 "replicated Web server" scenario).
#include <gtest/gtest.h>

#include "apps/http.hpp"
#include "core/replica_group.hpp"
#include "failover_fixture.hpp"

namespace tfo::apps {
namespace {

using test::run_until;

struct HttpFixture : ::testing::Test {
  std::unique_ptr<Lan> lan = make_lan();
  std::unique_ptr<HttpServer> server;

  void build() {
    server = std::make_unique<HttpServer>(lan->primary->tcp(), 80);
    server->add_document("/index.html", to_bytes("<html>hello</html>"));
    server->add_document("/big", deterministic_payload(200 * 1024, 77),
                         "application/octet-stream");
  }

  HttpClient::Response fetch(const std::string& path, bool* ok_out = nullptr) {
    HttpClient client(lan->client->tcp(), lan->primary->address());
    HttpClient::Response out;
    bool done = false, ok = false;
    client.get(path, [&](bool r, HttpClient::Response resp) {
      ok = r;
      out = std::move(resp);
      done = true;
    });
    EXPECT_TRUE(run_until(lan->sim, [&] { return done; }, seconds(120)));
    if (ok_out != nullptr) *ok_out = ok;
    return out;
  }
};

TEST_F(HttpFixture, GetSmallDocument) {
  build();
  bool ok = false;
  const auto resp = fetch("/index.html", &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(to_string(resp.body), "<html>hello</html>");
  EXPECT_NE(resp.headers.find("Content-Type: text/html"), std::string::npos);
  EXPECT_EQ(server->requests_served(), 1u);
}

TEST_F(HttpFixture, GetLargeDocument) {
  build();
  const auto resp = fetch("/big");
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, deterministic_payload(200 * 1024, 77));
}

TEST_F(HttpFixture, NotFoundIs404) {
  build();
  const auto resp = fetch("/missing");
  EXPECT_EQ(resp.status, 404);
  EXPECT_EQ(server->responses_404(), 1u);
}

TEST_F(HttpFixture, UnsupportedMethodIs501) {
  build();
  auto conn = lan->client->tcp().connect(lan->primary->address(), 80, {.nodelay = true});
  Bytes raw;
  conn->on_established = [&] { conn->send(to_bytes("POST /x HTTP/1.0\r\n\r\n")); };
  conn->on_readable = [&] { conn->recv(raw); };
  ASSERT_TRUE(run_until(lan->sim, [&] {
    return to_string(raw).find("501") != std::string::npos;
  }, seconds(30)));
}

TEST_F(HttpFixture, ContentLengthMatchesBody) {
  build();
  const auto resp = fetch("/index.html");
  EXPECT_NE(resp.headers.find("Content-Length: 18"), std::string::npos);
}

TEST_F(HttpFixture, SequentialRequestsUseFreshConnections) {
  build();
  for (int i = 0; i < 5; ++i) {
    const auto resp = fetch("/index.html");
    EXPECT_EQ(resp.status, 200);
  }
  EXPECT_EQ(server->requests_served(), 5u);
}

TEST(HttpFailover, DownloadSurvivesPrimaryCrash) {
  core::FailoverConfig cfg;
  cfg.ports = {80};
  auto r = test::make_replicated_lan({}, cfg, /*with_echo=*/false);
  HttpServer web_p(r->primary().tcp(), 80);
  HttpServer web_s(r->secondary().tcp(), 80);
  const Bytes page = deterministic_payload(500 * 1024, 3);
  web_p.add_document("/app.js", page, "text/javascript");
  web_s.add_document("/app.js", page, "text/javascript");

  HttpClient client(r->client().tcp(), r->primary().address());
  bool done = false, ok = false;
  HttpClient::Response resp;
  client.get("/app.js", [&](bool k, HttpClient::Response rr) {
    ok = k;
    resp = std::move(rr);
    done = true;
  });
  // Crash mid-download.
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return r->client().tcp().connection_count() >= 1 && r->sim().now() > milliseconds(5);
  }, seconds(30)));
  r->group->crash_primary();
  ASSERT_TRUE(run_until(r->sim(), [&] { return done; }, seconds(300)));
  EXPECT_TRUE(ok);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, page);
}

TEST(HttpFailover, BothReplicasServeEveryRequest) {
  core::FailoverConfig cfg;
  cfg.ports = {80};
  auto r = test::make_replicated_lan({}, cfg, /*with_echo=*/false);
  HttpServer web_p(r->primary().tcp(), 80);
  HttpServer web_s(r->secondary().tcp(), 80);
  web_p.add_document("/", to_bytes("root"));
  web_s.add_document("/", to_bytes("root"));

  for (int i = 0; i < 3; ++i) {
    HttpClient client(r->client().tcp(), r->primary().address());
    bool done = false;
    client.get("/", [&](bool, HttpClient::Response) { done = true; });
    ASSERT_TRUE(run_until(r->sim(), [&] { return done; }, seconds(60)));
  }
  EXPECT_EQ(web_p.requests_served(), 3u);
  EXPECT_EQ(web_s.requests_served(), 3u);
}

}  // namespace
}  // namespace tfo::apps
