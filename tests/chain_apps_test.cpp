// Real applications on N-way replica chains: the web store and HTTP
// running 3-way replicated, surviving successive crashes.
#include <gtest/gtest.h>

#include "apps/http.hpp"
#include "apps/store.hpp"
#include "core/replica_chain.hpp"
#include "failover_fixture.hpp"

namespace tfo::core {
namespace {

using test::run_until;

struct ChainAppsFixture : ::testing::Test {
  std::unique_ptr<apps::Lan> lan;
  std::unique_ptr<apps::Host> backup2;
  std::vector<apps::Host*> servers;
  std::unique_ptr<ReplicaChain> chain;

  void build(std::uint16_t port) {
    lan = apps::make_lan();
    apps::HostParams hp;
    hp.name = "backup2";
    hp.addr = ip::Ipv4::parse("10.0.0.22");
    hp.seed = 102;
    backup2 = std::make_unique<apps::Host>(lan->sim, hp, *lan->wire);
    servers = {lan->primary.get(), lan->secondary.get(), backup2.get()};
    std::vector<apps::Host*> all = servers;
    all.push_back(lan->client.get());
    for (auto* a : all) {
      for (auto* b : all) {
        if (a != b) a->arp().add_static(b->address(), b->nic().mac());
      }
    }
    FailoverConfig cfg;
    cfg.ports = {port};
    chain = std::make_unique<ReplicaChain>(servers, cfg);
    chain->start();
  }
};

TEST_F(ChainAppsFixture, StoreSessionSurvivesTwoCrashes) {
  build(8000);
  std::vector<std::unique_ptr<apps::StoreServer>> stores;
  for (auto* s : servers) {
    stores.push_back(std::make_unique<apps::StoreServer>(s->tcp(), 8000));
  }
  apps::StoreClient customer(lan->client->tcp(), servers[0]->address(), 8000);

  customer.request("BUY grinder 1");
  ASSERT_TRUE(run_until(lan->sim, [&] { return customer.replies().size() >= 1; },
                        seconds(60)));
  EXPECT_EQ(customer.replies()[0], "OK 1 8999");

  chain->crash(0);
  customer.request("BUY grinder 1");
  ASSERT_TRUE(run_until(lan->sim, [&] { return customer.replies().size() >= 2; },
                        seconds(120)));
  EXPECT_EQ(customer.replies()[1], "OK 2 8999");

  chain->crash(1);
  customer.request("BROWSE grinder");
  customer.request("BUY grinder 1");
  ASSERT_TRUE(run_until(lan->sim, [&] { return customer.replies().size() >= 4; },
                        seconds(120)));
  EXPECT_EQ(customer.replies()[2], "ITEM grinder 8999 38");
  EXPECT_EQ(customer.replies()[3], "OK 3 8999");
  EXPECT_FALSE(customer.closed());
  EXPECT_EQ(chain->alive_count(), 1u);
}

TEST_F(ChainAppsFixture, HttpDownloadSurvivesHeadCrash) {
  build(80);
  const Bytes page = apps::deterministic_payload(400 * 1024, 9);
  std::vector<std::unique_ptr<apps::HttpServer>> webs;
  for (auto* s : servers) {
    auto web = std::make_unique<apps::HttpServer>(s->tcp(), 80);
    web->add_document("/big", page, "application/octet-stream");
    webs.push_back(std::move(web));
  }
  apps::HttpClient client(lan->client->tcp(), servers[0]->address());
  bool done = false, ok = false;
  apps::HttpClient::Response resp;
  client.get("/big", [&](bool k, apps::HttpClient::Response rr) {
    ok = k;
    resp = std::move(rr);
    done = true;
  });
  ASSERT_TRUE(run_until(lan->sim, [&] {
    return lan->client->tcp().connection_count() >= 1 &&
           lan->sim.now() > milliseconds(10);
  }, seconds(30)));
  chain->crash(0);
  ASSERT_TRUE(run_until(lan->sim, [&] { return done; }, seconds(300)));
  EXPECT_TRUE(ok);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, page);
  // All three replicas (including the dead head, partially) saw the
  // request; the two survivors completed it.
  EXPECT_EQ(webs[1]->requests_served(), 1u);
  EXPECT_EQ(webs[2]->requests_served(), 1u);
}

TEST_F(ChainAppsFixture, SequentialHttpRequestsAcrossCrashes) {
  build(80);
  std::vector<std::unique_ptr<apps::HttpServer>> webs;
  for (auto* s : servers) {
    auto web = std::make_unique<apps::HttpServer>(s->tcp(), 80);
    web->add_document("/", to_bytes("alive"));
    webs.push_back(std::move(web));
  }
  auto fetch_ok = [&]() {
    apps::HttpClient client(lan->client->tcp(), servers[0]->address());
    bool done = false;
    int status = 0;
    client.get("/", [&](bool, apps::HttpClient::Response r2) {
      status = r2.status;
      done = true;
    });
    EXPECT_TRUE(run_until(lan->sim, [&] { return done; }, seconds(120)));
    return status == 200;
  };
  EXPECT_TRUE(fetch_ok());
  chain->crash(0);
  lan->sim.run_for(milliseconds(200));
  EXPECT_TRUE(fetch_ok());
  chain->crash(1);
  lan->sim.run_for(milliseconds(200));
  EXPECT_TRUE(fetch_ok());
}

}  // namespace
}  // namespace tfo::core
