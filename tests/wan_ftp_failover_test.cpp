// The paper's two evaluation environments combined with its core claim:
// FTP transfers across a WAN/router surviving replica failures at varied
// points — control-connection phase, data-connection handshake, and
// mid-transfer — in both transfer directions.
#include <gtest/gtest.h>

#include "apps/echo.hpp"
#include "apps/ftp.hpp"
#include "apps/topology.hpp"
#include "core/replica_group.hpp"
#include "test_util.hpp"

namespace tfo::core {
namespace {

using test::run_until;

struct WanFtpParam {
  bool upload;          // STOR instead of RETR
  bool crash_primary;   // which replica dies
  int crash_phase;      // 0 = before login, 1 = after login, 2 = mid-transfer
  const char* label;
};

class WanFtpFailover : public ::testing::TestWithParam<WanFtpParam> {};

TEST_P(WanFtpFailover, TransferCompletesIntact) {
  const WanFtpParam& p = GetParam();
  apps::WanParams wp;
  wp.wan_link.bandwidth_bps = 4'000'000;
  wp.wan_link.propagation = milliseconds(10);
  auto wan = apps::make_wan(wp);
  FailoverConfig cfg;
  cfg.ports = {21, 20};
  ReplicaGroup group(*wan->primary, *wan->secondary, cfg);
  apps::FtpServer ftp_p(wan->primary->tcp());
  apps::FtpServer ftp_s(wan->secondary->tcp());
  const Bytes file = apps::deterministic_payload(200 * 1024, 4);
  ftp_p.add_file("f.bin", file);
  ftp_s.add_file("f.bin", file);
  group.start();

  auto crash = [&] {
    if (p.crash_primary) {
      group.crash_primary();
    } else {
      group.crash_secondary();
    }
  };

  apps::FtpClient client(wan->client->tcp(), wan->primary->address());
  if (p.crash_phase == 0) crash();

  bool logged_in = false;
  client.login([&](bool ok) { logged_in = ok; });
  ASSERT_TRUE(run_until(wan->sim, [&] { return logged_in; }, seconds(120)));
  if (p.crash_phase == 1) crash();

  bool done = false, ok = false;
  Bytes got;
  if (p.upload) {
    client.put("up.bin", file, [&](bool k) {
      ok = k;
      done = true;
    });
  } else {
    client.get("f.bin", [&](bool k, Bytes b) {
      ok = k;
      got = std::move(b);
      done = true;
    });
  }
  if (p.crash_phase == 2) {
    // Let the data connection start moving first.
    ASSERT_TRUE(run_until(wan->sim, [&] {
      return wan->client->tcp().connection_count() >= 2;
    }, seconds(120)));
    wan->sim.run_for(milliseconds(100));
    crash();
  }
  ASSERT_TRUE(run_until(wan->sim, [&] { return done; }, seconds(1200)));
  EXPECT_TRUE(ok);
  if (p.upload) {
    const auto& fs = p.crash_primary ? ftp_s.files() : ftp_p.files();
    ASSERT_TRUE(fs.contains("up.bin"));
    EXPECT_EQ(fs.at("up.bin"), file);
  } else {
    EXPECT_EQ(got, file);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, WanFtpFailover,
    ::testing::Values(
        WanFtpParam{false, true, 0, "get_P_dies_before_login"},
        WanFtpParam{false, true, 1, "get_P_dies_after_login"},
        WanFtpParam{false, true, 2, "get_P_dies_mid_transfer"},
        WanFtpParam{false, false, 1, "get_S_dies_after_login"},
        WanFtpParam{false, false, 2, "get_S_dies_mid_transfer"},
        WanFtpParam{true, true, 1, "put_P_dies_after_login"},
        WanFtpParam{true, true, 2, "put_P_dies_mid_transfer"},
        WanFtpParam{true, false, 2, "put_S_dies_mid_transfer"}),
    [](const ::testing::TestParamInfo<WanFtpParam>& info) { return info.param.label; });

}  // namespace
}  // namespace tfo::core
