// Adversarial soak harness: a seeded matrix of impairment profiles ×
// failover timing, run against the full replicated LAN. Each run is
// checked by four oracles:
//   1. client byte-stream integrity (EchoDriver::verify);
//   2. no RST ever reaches the client — fabricated bridge segments must
//      never tear a healthy connection down (the out-of-window cases are
//      pinned exactly in failover_teardown_test.cpp);
//   3. corrupted copies are caught by the IP/TCP receive-path checksums,
//      never delivered as payload;
//   4. the impairment engine's conservation identity closes and its
//      registry mirror agrees with the internal counters.
// Plus targeted §4/§8 scenarios: a duplicated client FIN arriving after
// bridge teardown, diverted secondary segments jittered against primary
// retransmissions, and corrupted merged segments recovered by
// retransmission.
#include <gtest/gtest.h>

#include "impairment_util.hpp"
#include "ip/datagram.hpp"

namespace tfo::core {
namespace {

using test::checksum_rejects;
using test::EchoDriver;
using test::impairment_profiles;
using test::kEchoPort;
using test::make_replicated_lan;
using test::processed_by;
using test::RstCounter;
using test::run_until;

// ------------------------------------------------------------ soak matrix

struct SoakParam {
  std::string name;
  net::ImpairmentParams imp;
  bool fail_primary;
  std::uint64_t seed;
};

std::vector<SoakParam> soak_matrix() {
  std::vector<SoakParam> out;
  std::uint64_t seed = 101;
  for (const auto& [name, imp] : impairment_profiles()) {
    out.push_back({name, imp, false, seed});
    out.push_back({name, imp, true, seed + 100});
    ++seed;
  }
  return out;
}

class ImpairmentSoak : public ::testing::TestWithParam<SoakParam> {};

TEST_P(ImpairmentSoak, StreamSurvivesImpairedWire) {
  const SoakParam param = GetParam();
  apps::LanParams lp;
  lp.medium.impairment = param.imp;
  lp.medium.impairment.seed = param.seed;
  // Diverted replies cross the wire twice; cap RTO backoff so recovery
  // under sustained impairment stays seconds-scale (same reasoning as the
  // §4 random-loss sweeps).
  lp.tcp.max_rto = seconds(5);
  core::FailoverConfig cfg;
  cfg.heartbeat_period = milliseconds(5);
  cfg.failure_timeout = milliseconds(200);
  auto r = make_replicated_lan(lp, cfg);
  auto& eng = r->lan->wire->impairment();
  eng.set_target(processed_by);
  eng.bind_registry(r->client().metrics());
  RstCounter rsts(r->sim(), r->client().nic());

  const std::size_t total = 24000;
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, total, 1500);
  if (param.fail_primary) {
    ASSERT_TRUE(run_until(r->sim(), [&] { return d.received().size() > total / 3; },
                          seconds(600)));
    r->group->crash_primary();
  }
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(1200)))
      << "stalled at " << d.received().size() << "/" << total;

  // Oracle 1: the echoed stream is byte-identical to what was sent.
  EXPECT_TRUE(d.verify());
  // Oracle 2: nothing the bridges fabricated (or the impairments mangled)
  // reset the client.
  EXPECT_EQ(rsts.count(), 0u);

  // Freeze the pipeline, then let delayed/duplicated copies still in
  // flight settle: heartbeat traffic never stops, so an exact conservation
  // audit needs a point where no new deliveries enter the pipeline.
  eng.configure({});
  r->sim().run_for(seconds(1));
  const auto c = eng.counters();
  EXPECT_GT(c.offered, 0u);
  // Oracle 3: every corrupted copy was rejected at a receive-path checksum.
  if (c.corrupted > 0) {
    EXPECT_GE(checksum_rejects(*r), 1u);
  }
  // Oracle 4: conservation, internally and in the registry mirror.
  EXPECT_TRUE(eng.conserved())
      << "offered=" << c.offered << " dup=" << c.duplicated
      << " delivered=" << c.delivered << " dropped=" << c.dropped
      << " detached=" << c.detached;
  const auto& reg = r->client().metrics();
  EXPECT_EQ(reg.counter_value("net.impairment.offered"), c.offered);
  EXPECT_EQ(reg.counter_value("net.impairment.dropped"), c.dropped);
  EXPECT_EQ(reg.counter_value("net.impairment.duplicated"), c.duplicated);
  EXPECT_EQ(reg.counter_value("net.impairment.reordered"), c.reordered);
  EXPECT_EQ(reg.counter_value("net.impairment.corrupted"), c.corrupted);
  EXPECT_EQ(reg.counter_value("net.impairment.delivered"), c.delivered);
  EXPECT_EQ(reg.counter_value("net.impairment.detached"), c.detached);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ImpairmentSoak, ::testing::ValuesIn(soak_matrix()),
    [](const ::testing::TestParamInfo<SoakParam>& info) {
      return info.param.name + (info.param.fail_primary ? "_failover" : "_steady") +
             "_s" + std::to_string(info.param.seed);
    });

// ----------------------------------------- §8: duplicated FIN after teardown

TEST(ImpairmentScenario, DuplicatedClientFinAfterTeardownIsAckedNotReset) {
  // The wire duplicates the client's teardown segments towards the primary
  // with a one-second echo — long after the bridge removed the connection
  // (but inside the tombstone's 4*MSL lifetime). §8 requires the stray FIN
  // be ACKed from the tombstone, never RST.
  auto r = make_replicated_lan();
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 2000, 500);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(60)));

  auto& eng = r->lan->wire->impairment();
  net::ImpairmentParams imp;
  imp.duplicate = 1.0;
  imp.duplicate_delay = seconds(1);
  imp.seed = 31;
  eng.configure(imp);
  eng.set_target([](const net::Nic* s, const net::Nic& rx,
                    const net::EthernetFrame& f) {
    return s != nullptr && f.type == net::EtherType::kIpv4 &&
           s->name() == "client.eth0" && rx.name() == "primary.eth0";
  });

  RstCounter rsts(r->sim(), r->client().nic());
  d.connection().close();
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return d.connection().state() == tcp::TcpState::kClosed &&
           r->group->primary_bridge().connection_count() == 0;
  }, seconds(60)));
  ASSERT_GE(r->group->primary_bridge().tombstone_count(), 1u);

  // The duplicated FIN (and final ACK) land at the primary ~1s later.
  r->sim().run_for(milliseconds(1500));
  EXPECT_GE(r->group->primary_bridge().stray_fin_acks(), 1u);
  EXPECT_EQ(rsts.count(), 0u);
  EXPECT_EQ(d.close_reason(), tcp::CloseReason::kGraceful);
  EXPECT_TRUE(eng.conserved());
}

// ------------------- §4: diverted segments jittered against retransmissions

TEST(ImpairmentScenario, ReorderedDivertedSegmentRacesRetransmission) {
  // Merged segments are dropped at the client (forcing primary-side
  // retransmissions) while every diverted secondary→primary segment takes
  // milliseconds of extra jitter — so retransmitted server data races its
  // own late diverted counterpart at the merge point. §4's retransmission
  // recognition must keep the merged stream exact.
  auto r = make_replicated_lan();
  auto& eng = r->lan->wire->impairment();
  net::ImpairmentParams imp;
  imp.reorder = 1.0;
  imp.reorder_delay = milliseconds(4);
  imp.seed = 57;
  eng.configure(imp);
  eng.set_target([](const net::Nic* s, const net::Nic& rx,
                    const net::EthernetFrame& f) {
    return s != nullptr && f.type == net::EtherType::kIpv4 &&
           s->name() == "secondary.eth0" && rx.name() == "primary.eth0";
  });

  // Drop a few primary→client data frames to force retransmission cycles.
  auto dropped = std::make_shared<int>(0);
  auto seen = std::make_shared<int>(0);
  const ip::Ipv4 from = r->primary().address();
  r->lan->wire->set_loss_fn([=](const net::Nic&, const net::Nic& rx,
                                const net::EthernetFrame& f) {
    if (rx.name() != "client.eth0" || f.type != net::EtherType::kIpv4) return false;
    auto dg = ip::IpDatagram::parse(f.payload);
    if (!dg || dg->proto != ip::Proto::kTcp || dg->src != from) return false;
    if (dg->payload.size() < 20) return false;
    const std::size_t hdr = static_cast<std::size_t>(dg->payload[12] >> 4) * 4;
    if (dg->payload.size() <= hdr) return false;  // data segments only
    if ((*seen)++ < 2) return false;
    if (*dropped >= 3) return false;
    ++*dropped;
    return true;
  });

  RstCounter rsts(r->sim(), r->client().nic());
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 20000, 1000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(240)));
  EXPECT_TRUE(d.verify());
  EXPECT_EQ(*dropped, 3);
  EXPECT_EQ(rsts.count(), 0u);
  // The race actually happened: the bridge both forwarded retransmissions
  // and kept merging the jittered diverted stream.
  EXPECT_GE(r->group->primary_bridge().retransmissions_forwarded(), 1u);
  EXPECT_GT(r->group->primary_bridge().merged_segments_sent(), 20u);
  EXPECT_GT(eng.counters().reordered, 0u);
  // Freeze and drain in-flight jittered copies before the exact audit.
  eng.configure({});
  r->sim().run_for(seconds(1));
  EXPECT_TRUE(eng.conserved());
}

// ----------------- §4: corrupted merged segment recovered by retransmission

TEST(ImpairmentScenario, CorruptedMergedSegmentDroppedByChecksumThenRecovered) {
  // Mid-transfer, three consecutive primary→client copies are corrupted
  // (single-byte flips: always checksum-detectable). The client must drop
  // them at the IP/TCP receive path — never surface a damaged byte — and
  // the normal retransmission machinery must repair the stream.
  auto r = make_replicated_lan();
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 20000, 1000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.received().size() > 5000; },
                        seconds(60)));

  auto& eng = r->lan->wire->impairment();
  net::ImpairmentParams imp;
  imp.corrupt = 1.0;
  imp.corrupt_max_bytes = 1;
  imp.seed = 73;
  eng.configure(imp);
  eng.set_target([left = std::make_shared<int>(3)](
                     const net::Nic* s, const net::Nic& rx,
                     const net::EthernetFrame& f) {
    if (*left <= 0 || s == nullptr) return false;
    // Only frames the client will actually checksum: IPv4, addressed to its
    // MAC (a snooped heartbeat copy filtered at L2 exercises nothing, and
    // ARP carries no checksum for the receive path to reject).
    if (f.type != net::EtherType::kIpv4 || f.dst != rx.mac()) return false;
    if (s->name() != "primary.eth0" || rx.name() != "client.eth0") return false;
    --*left;
    return true;
  });

  RstCounter rsts(r->sim(), r->client().nic());
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(240)));
  EXPECT_TRUE(d.verify());
  EXPECT_EQ(eng.counters().corrupted, 3u);
  // Every corrupted copy was rejected by a checksum on the client side.
  EXPECT_GE(r->client().obs().registry.counter_value("tcp.segments_malformed") +
                r->client().ip().datagrams_parse_failed(),
            3u);
  EXPECT_EQ(rsts.count(), 0u);
  EXPECT_TRUE(eng.conserved());
}

}  // namespace
}  // namespace tfo::core
