// Unit tests for the heartbeat fault detector.
#include <gtest/gtest.h>

#include "apps/topology.hpp"
#include "core/fault_detector.hpp"
#include "test_util.hpp"

namespace tfo::core {
namespace {

struct FdFixture : ::testing::Test {
  std::unique_ptr<apps::Lan> lan = apps::make_lan();
  std::unique_ptr<FaultDetector> on_p, on_s;

  void build(SimDuration period = milliseconds(10), SimDuration timeout = milliseconds(50)) {
    on_p = std::make_unique<FaultDetector>(*lan->primary, lan->secondary->address(),
                                           period, timeout);
    on_s = std::make_unique<FaultDetector>(*lan->secondary, lan->primary->address(),
                                           period, timeout);
  }
};

TEST_F(FdFixture, NoFalsePositiveWhileBothAlive) {
  build();
  int p_fired = 0, s_fired = 0;
  on_p->on_peer_failed = [&] { ++p_fired; };
  on_s->on_peer_failed = [&] { ++s_fired; };
  on_p->start();
  on_s->start();
  lan->sim.run_for(seconds(5));
  EXPECT_EQ(p_fired, 0);
  EXPECT_EQ(s_fired, 0);
  EXPECT_GT(on_p->heartbeats_received(), 400u);
}

TEST_F(FdFixture, DetectsCrashWithinTimeout) {
  build(milliseconds(10), milliseconds(50));
  SimTime detected_at = 0;
  on_s->on_peer_failed = [&] { detected_at = lan->sim.now(); };
  on_p->start();
  on_s->start();
  lan->sim.run_for(seconds(1));
  const SimTime crash_at = lan->sim.now();
  lan->primary->fail();
  lan->sim.run_for(seconds(1));
  ASSERT_GT(detected_at, 0u);
  const SimDuration latency = static_cast<SimDuration>(detected_at - crash_at);
  EXPECT_GE(latency, milliseconds(30));  // at least timeout minus one period
  EXPECT_LE(latency, milliseconds(60));  // and not much more than timeout
}

TEST_F(FdFixture, FiresExactlyOnce) {
  build();
  int fired = 0;
  on_s->on_peer_failed = [&] { ++fired; };
  on_p->start();
  on_s->start();
  lan->primary->fail();
  lan->sim.run_for(seconds(5));
  EXPECT_EQ(fired, 1);
}

TEST_F(FdFixture, StopPreventsDetection) {
  build();
  int fired = 0;
  on_s->on_peer_failed = [&] { ++fired; };
  on_p->start();
  on_s->start();
  lan->sim.run_for(milliseconds(100));
  on_s->stop();
  lan->primary->fail();
  lan->sim.run_for(seconds(2));
  EXPECT_EQ(fired, 0);
}

TEST_F(FdFixture, IgnoresHeartbeatsFromWrongPeer) {
  // Detector on S watches P; heartbeats from the client must not feed it.
  build(milliseconds(10), milliseconds(50));
  int fired = 0;
  on_s->on_peer_failed = [&] { fired++; };
  on_s->start();
  // Only the *client* sends heartbeat-protocol datagrams to S.
  for (int i = 0; i < 100; ++i) {
    lan->sim.schedule_after(milliseconds(5) * i, [&] {
      lan->client->ip().send(ip::Proto::kHeartbeat, ip::Ipv4::any(),
                             lan->secondary->address(), to_bytes("HB"));
    });
  }
  lan->sim.run_for(seconds(1));
  EXPECT_EQ(fired, 1);  // P never spoke: declared failed despite client noise
  EXPECT_EQ(on_s->heartbeats_received(), 0u);
}

TEST_F(FdFixture, SurvivesModerateHeartbeatLoss) {
  apps::LanParams lp;
  lp.medium.loss_probability = 0.2;
  lan = apps::make_lan(lp);
  // Timeout of 10 periods tolerates long loss runs.
  build(milliseconds(10), milliseconds(100));
  int fired = 0;
  on_p->on_peer_failed = [&] { ++fired; };
  on_s->on_peer_failed = [&] { ++fired; };
  on_p->start();
  on_s->start();
  lan->sim.run_for(seconds(10));
  EXPECT_EQ(fired, 0);
}

TEST_F(FdFixture, MeshSurvivesWatchAfterStart) {
  // Regression: armed deadline callbacks capture a Peer*, and a watch()
  // issued after start() (reintegration) used to reallocate the peers
  // vector under them. With many late registrations every growth step is
  // exercised; all peers must still be declared exactly once, and the
  // early-armed timers must not touch freed storage.
  HeartbeatMesh mesh(*lan->primary, milliseconds(10), milliseconds(50));
  int fired = 0;
  mesh.watch(ip::Ipv4::parse("10.0.9.1"), [&] { ++fired; });
  mesh.start();
  for (int i = 2; i <= 30; ++i) {
    const std::string addr = "10.0.9." + std::to_string(i);
    mesh.watch(ip::Ipv4::parse(addr.c_str()), [&] { ++fired; });
  }
  lan->sim.run_for(seconds(1));
  EXPECT_EQ(fired, 30);
  EXPECT_EQ(mesh.peers_watched(), 30u);
  for (int i = 1; i <= 30; ++i) {
    const std::string addr = "10.0.9." + std::to_string(i);
    EXPECT_TRUE(mesh.peer_failed(ip::Ipv4::parse(addr.c_str()))) << addr;
  }
}

TEST_F(FdFixture, MeshLateWatchedPeerIsArmedImmediately) {
  // A silent peer registered after start() must still be detected: its
  // deadline arms at watch() time, not at its (never-arriving) first
  // heartbeat.
  HeartbeatMesh mesh(*lan->primary, milliseconds(10), milliseconds(50));
  mesh.start();
  lan->sim.run_for(milliseconds(100));
  SimTime declared_at = 0;
  const SimTime watched_at = lan->sim.now();
  mesh.watch(ip::Ipv4::parse("10.0.9.99"), [&] { declared_at = lan->sim.now(); });
  lan->sim.run_for(seconds(1));
  ASSERT_GT(declared_at, 0u);
  EXPECT_LE(declared_at - watched_at, static_cast<SimTime>(milliseconds(60)));
}

}  // namespace
}  // namespace tfo::core
