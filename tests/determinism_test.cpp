// Reproducibility: the entire simulation — media, stacks, bridges,
// failures — is deterministic. Identical configurations produce
// bit-identical wire traces; changing a seed changes the trace. This is
// the property that makes every number in EXPERIMENTS.md regenerable.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "apps/trace.hpp"
#include "failover_fixture.hpp"

namespace tfo {
namespace {

using test::kEchoPort;
using test::run_until;

/// Runs a full scenario (transfer + mid-way primary crash + completion)
/// and returns a canonical trace of every frame the client saw.
std::string run_scenario(std::uint64_t lan_seed, double loss, std::uint64_t loss_seed) {
  apps::LanParams lp;
  lp.seed = lan_seed;
  lp.medium.loss_probability = loss;
  lp.medium.loss_seed = loss_seed;
  lp.tcp.max_rto = seconds(5);
  auto r = test::make_replicated_lan(lp);
  apps::FrameTracer at_client(r->sim(), r->client().nic());
  test::EchoDriver d(r->client(), r->primary().address(), kEchoPort, 30000, 1500);
  EXPECT_TRUE(run_until(r->sim(), [&] { return d.received().size() > 10000; },
                        seconds(300)));
  r->group->crash_primary();
  EXPECT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(600)));
  EXPECT_TRUE(d.verify());
  return at_client.dump();
}

TEST(Determinism, IdenticalConfigurationsProduceIdenticalTraces) {
  const std::string a = run_scenario(11, 0.0, 42);
  const std::string b = run_scenario(11, 0.0, 42);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Determinism, IdenticalLossyRunsMatchExactly) {
  const std::string a = run_scenario(11, 0.05, 42);
  const std::string b = run_scenario(11, 0.05, 42);
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentHostSeedsProduceDifferentIsns) {
  // Different host seeds change ISNs, hence the trace.
  const std::string a = run_scenario(11, 0.0, 42);
  const std::string b = run_scenario(12, 0.0, 42);
  EXPECT_NE(a, b);
}

TEST(Determinism, DifferentLossSeedsDiverge) {
  const std::string a = run_scenario(11, 0.05, 42);
  const std::string b = run_scenario(11, 0.05, 43);
  EXPECT_NE(a, b);
}

// ------------------------------------------------------- lane matrix
//
// The sharded data path must be an execution-layout choice, not a
// behavioural one: for every lane count, serial or parallel, and both
// scheduler kinds, the wire traces and observability snapshots are
// bit-identical. Only the lane.* counters — execution-strategy telemetry
// by contract (DESIGN.md §8) — are excluded from the comparison.

/// Counters/gauges/histograms of a host, canonicalized, lane.* excluded.
std::string canonical_metrics(const apps::Host& h) {
  std::ostringstream os;
  const obs::Snapshot snap = h.metrics_snapshot();
  for (const auto& [name, v] : snap.counters) {
    if (name.rfind("lane.", 0) == 0) continue;
    os << name << '=' << v << '\n';
  }
  for (const auto& [name, g] : snap.gauges)
    os << name << '=' << g.value << '/' << g.max << '\n';
  for (const auto& [name, hist] : snap.histograms)
    os << name << '=' << hist.count << '/' << hist.sum << '/' << hist.min << '/'
       << hist.max << '\n';
  return os.str();
}

struct LaneRunResult {
  std::string trace;    // every frame the client saw, canonical form
  std::string metrics;  // client + secondary snapshots, lane.* filtered
};

/// Full failover scenario (transfer, mid-way crash, completion) on the
/// batched+GRO data path with the given lane layout and scheduler.
LaneRunResult run_lane_scenario(unsigned lanes, bool parallel,
                                sim::SchedulerKind kind) {
  apps::LanParams lp;
  lp.seed = 11;
  lp.tcp.max_rto = seconds(5);
  lp.scheduler = kind;
  lp.lanes = {.lanes = lanes, .parallel = parallel};
  lp.nic.rx_batch_max = 8;
  lp.nic.rx_batch_window = microseconds(150);
  auto r = test::make_replicated_lan(lp);
  apps::FrameTracer at_client(r->sim(), r->client().nic());
  test::EchoDriver d(r->client(), r->primary().address(), kEchoPort, 24000, 4096);
  EXPECT_TRUE(run_until(r->sim(), [&] { return d.received().size() > 8000; },
                        seconds(300)));
  r->group->crash_primary();
  EXPECT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(600)));
  EXPECT_TRUE(d.verify());
  return {at_client.dump(),
          canonical_metrics(r->client()) + canonical_metrics(r->secondary())};
}

TEST(Determinism, LaneMatrixProducesBitIdenticalResults) {
  ::unsetenv("TFO_LANES");  // the matrix controls the layout explicitly
  for (auto kind :
       {sim::SchedulerKind::kTimingWheel, sim::SchedulerKind::kLegacyHeap}) {
    const LaneRunResult baseline = run_lane_scenario(1, false, kind);
    ASSERT_FALSE(baseline.trace.empty());
    for (unsigned lanes : {2u, 4u}) {
      const LaneRunResult got = run_lane_scenario(lanes, false, kind);
      EXPECT_EQ(got.trace, baseline.trace) << "lanes=" << lanes;
      EXPECT_EQ(got.metrics, baseline.metrics) << "lanes=" << lanes;
    }
    // The stretch cell: real worker threads, same bits.
    const LaneRunResult threaded = run_lane_scenario(4, true, kind);
    EXPECT_EQ(threaded.trace, baseline.trace) << "parallel lanes=4";
    EXPECT_EQ(threaded.metrics, baseline.metrics) << "parallel lanes=4";
  }
}

TEST(Determinism, SchedulerKindsAgreeOnTheBatchedPath) {
  ::unsetenv("TFO_LANES");
  // The wheel and the legacy heap drain in the same order, so the batched
  // data path's wire trace is identical across kinds. (Snapshots are
  // compared within kind only: sim.wheel.* telemetry legitimately differs.)
  const LaneRunResult wheel =
      run_lane_scenario(2, false, sim::SchedulerKind::kTimingWheel);
  const LaneRunResult heap =
      run_lane_scenario(2, false, sim::SchedulerKind::kLegacyHeap);
  EXPECT_EQ(wheel.trace, heap.trace);
}

TEST(Determinism, SimulatorTimeIsIndependentOfWallClock) {
  // Two simulators stepped in interleaved order still agree event-wise.
  sim::Simulator s1, s2;
  std::ostringstream log1, log2;
  auto fill = [](sim::Simulator& s, std::ostringstream& log) {
    for (int i = 0; i < 50; ++i) {
      s.schedule_after(static_cast<SimDuration>((i * 37) % 19), [&log, i, &s] {
        log << i << '@' << s.now() << ';';
      });
    }
  };
  fill(s1, log1);
  fill(s2, log2);
  // Interleave stepping.
  bool any = true;
  while (any) {
    any = false;
    if (s1.step()) any = true;
    if (s2.step()) any = true;
  }
  EXPECT_EQ(log1.str(), log2.str());
}

}  // namespace
}  // namespace tfo
