// Reproducibility: the entire simulation — media, stacks, bridges,
// failures — is deterministic. Identical configurations produce
// bit-identical wire traces; changing a seed changes the trace. This is
// the property that makes every number in EXPERIMENTS.md regenerable.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/trace.hpp"
#include "failover_fixture.hpp"

namespace tfo {
namespace {

using test::kEchoPort;
using test::run_until;

/// Runs a full scenario (transfer + mid-way primary crash + completion)
/// and returns a canonical trace of every frame the client saw.
std::string run_scenario(std::uint64_t lan_seed, double loss, std::uint64_t loss_seed) {
  apps::LanParams lp;
  lp.seed = lan_seed;
  lp.medium.loss_probability = loss;
  lp.medium.loss_seed = loss_seed;
  lp.tcp.max_rto = seconds(5);
  auto r = test::make_replicated_lan(lp);
  apps::FrameTracer at_client(r->sim(), r->client().nic());
  test::EchoDriver d(r->client(), r->primary().address(), kEchoPort, 30000, 1500);
  EXPECT_TRUE(run_until(r->sim(), [&] { return d.received().size() > 10000; },
                        seconds(300)));
  r->group->crash_primary();
  EXPECT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(600)));
  EXPECT_TRUE(d.verify());
  return at_client.dump();
}

TEST(Determinism, IdenticalConfigurationsProduceIdenticalTraces) {
  const std::string a = run_scenario(11, 0.0, 42);
  const std::string b = run_scenario(11, 0.0, 42);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Determinism, IdenticalLossyRunsMatchExactly) {
  const std::string a = run_scenario(11, 0.05, 42);
  const std::string b = run_scenario(11, 0.05, 42);
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentHostSeedsProduceDifferentIsns) {
  // Different host seeds change ISNs, hence the trace.
  const std::string a = run_scenario(11, 0.0, 42);
  const std::string b = run_scenario(12, 0.0, 42);
  EXPECT_NE(a, b);
}

TEST(Determinism, DifferentLossSeedsDiverge) {
  const std::string a = run_scenario(11, 0.05, 42);
  const std::string b = run_scenario(11, 0.05, 43);
  EXPECT_NE(a, b);
}

TEST(Determinism, SimulatorTimeIsIndependentOfWallClock) {
  // Two simulators stepped in interleaved order still agree event-wise.
  sim::Simulator s1, s2;
  std::ostringstream log1, log2;
  auto fill = [](sim::Simulator& s, std::ostringstream& log) {
    for (int i = 0; i < 50; ++i) {
      s.schedule_after(static_cast<SimDuration>((i * 37) % 19), [&log, i, &s] {
        log << i << '@' << s.now() << ';';
      });
    }
  };
  fill(s1, log1);
  fill(s2, log2);
  // Interleave stepping.
  bool any = true;
  while (any) {
    any = false;
    if (s1.step()) any = true;
    if (s2.step()) any = true;
  }
  EXPECT_EQ(log1.str(), log2.str());
}

}  // namespace
}  // namespace tfo
