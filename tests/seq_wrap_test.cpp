// 32-bit sequence-number wraparound, end to end: ISNs parked just below
// 2^32 force every sequence field — client stream, both server streams,
// the bridge's Δseq translation, and the merge queues — across the wrap
// during a transfer, with and without failover.
#include <gtest/gtest.h>

#include "failover_fixture.hpp"

namespace tfo::core {
namespace {

using test::kEchoPort;
using test::make_replicated_lan;
using test::run_until;

struct WrapParam {
  Seq32 isn_client;
  Seq32 isn_primary;
  Seq32 isn_secondary;
  bool crash_primary;
  const char* label;
};

class SeqWrapSweep : public ::testing::TestWithParam<WrapParam> {};

TEST_P(SeqWrapSweep, TransferCrossesTheWrapIntact) {
  const WrapParam& p = GetParam();
  auto r = make_replicated_lan();
  r->client().tcp().set_next_isn(p.isn_client);
  r->primary().tcp().set_next_isn(p.isn_primary);
  r->secondary().tcp().set_next_isn(p.isn_secondary);

  // 96 KB each way guarantees the 16-bit-ish headroom below 2^32 is
  // crossed in every sequence space involved.
  test::EchoDriver d(r->client(), r->primary().address(), kEchoPort, 96 * 1024, 4096);
  if (p.crash_primary) {
    ASSERT_TRUE(run_until(r->sim(), [&] { return d.received().size() > 48 * 1024; },
                          seconds(300)));
    r->group->crash_primary();
  }
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(300)))
      << "stalled at " << d.received().size();
  EXPECT_TRUE(d.verify());
  EXPECT_EQ(r->group->primary_bridge().divergences(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Wraps, SeqWrapSweep,
    ::testing::Values(
        WrapParam{0xffffff00u, 1000, 2000, false, "client_wraps"},
        WrapParam{1000, 0xffffff00u, 2000, false, "primary_wraps"},
        WrapParam{1000, 2000, 0xffffff00u, false, "secondary_wraps"},
        WrapParam{0xfffffff0u, 0xffffff80u, 0xffffffc0u, false, "all_wrap"},
        WrapParam{0xffffff00u, 0xffffff00u, 0xffffff00u, false, "identical_isns"},
        WrapParam{1000, 0xffffff00u, 0x00000100u, false, "delta_spans_wrap"},
        WrapParam{0xffffff00u, 1000, 2000, true, "client_wraps_failover"},
        WrapParam{1000, 2000, 0xffffff00u, true, "secondary_wraps_failover"},
        WrapParam{0xfffffff0u, 0xffffff80u, 0xffffffc0u, true, "all_wrap_failover"}),
    [](const ::testing::TestParamInfo<WrapParam>& info) { return info.param.label; });

TEST(SeqWrap, DeltaSeqZeroWorks) {
  // Identical ISNs make Δseq == 0 — the degenerate case where translation
  // is the identity; nothing may assume Δseq != 0.
  auto r = make_replicated_lan();
  r->primary().tcp().set_next_isn(42);
  r->secondary().tcp().set_next_isn(42);
  test::EchoDriver d(r->client(), r->primary().address(), kEchoPort, 20000, 2000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(120)));
  EXPECT_TRUE(d.verify());
}

TEST(SeqWrap, CloseHandshakeAcrossWrap) {
  auto r = make_replicated_lan();
  r->secondary().tcp().set_next_isn(0xffffffe0u);  // FIN lands past the wrap
  test::EchoDriver d(r->client(), r->primary().address(), kEchoPort, 1000, 500);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(60)));
  d.connection().close();
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return d.connection().state() == tcp::TcpState::kClosed;
  }, seconds(60)));
  EXPECT_EQ(d.close_reason(), tcp::CloseReason::kGraceful);
}

}  // namespace
}  // namespace tfo::core
