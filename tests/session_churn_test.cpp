// Regression tests for session-key ABA under connection churn.
//
// The application servers keep per-connection session state in maps that
// were historically keyed by the Connection's address. Under churn the
// allocator hands a new connection the memory of a dead one, so a
// pointer key lets the new connection inherit the dead session's state —
// or lets the dead connection's deferred on_closed erase the *new*
// session. The maps are now keyed by Connection::id(), a monotonic
// counter that is never reused. These tests hammer connect/use/close
// cycles and assert (a) every cycle sees fresh per-connection state and
// (b) the session tables drain to empty.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "apps/attacker.hpp"
#include "apps/echo.hpp"
#include "apps/http.hpp"
#include "apps/loadgen.hpp"
#include "apps/store.hpp"
#include "apps/topology.hpp"
#include "failover_fixture.hpp"
#include "test_util.hpp"

namespace tfo::apps {
namespace {

using test::run_until;

struct ChurnFixture : ::testing::Test {
  std::unique_ptr<Lan> lan = make_lan();
  sim::Simulator& sim() { return lan->sim; }
};

TEST_F(ChurnFixture, StoreStateIsFreshAcrossChurn) {
  StoreServer server(lan->primary->tcp(), 8000);
  // Each cycle exhausts an item's per-connection stock and quits. If a
  // later connection ever inherited an earlier session (ABA), its BUY
  // would see the drained stock and answer NOSTOCK.
  for (int cycle = 0; cycle < 24; ++cycle) {
    auto client = std::make_unique<StoreClient>(
        lan->client->tcp(), lan->primary->address(), 8000);
    client->request("BROWSE scale");
    client->request("BUY scale 7");
    client->request("BROWSE scale");
    ASSERT_TRUE(run_until(sim(), [&] { return client->replies().size() >= 3; }))
        << "cycle " << cycle;
    const auto& r = client->replies();
    EXPECT_EQ(r[0], "ITEM scale 2199 7") << "stale session state, cycle " << cycle;
    EXPECT_EQ(r[1].rfind("OK 1 ", 0), 0u) << "stale order counter, cycle " << cycle;
    EXPECT_EQ(r[2], "ITEM scale 2199 0") << "cycle " << cycle;
    client->quit();
    ASSERT_TRUE(run_until(sim(), [&] { return client->closed(); }));
    client.reset();
    // Let teardown (deferred closes, TIME_WAIT turnover) fully settle so
    // the next cycle races against recycled allocations, not live state.
    sim().run_for(milliseconds(1));
  }
}

TEST_F(ChurnFixture, EchoSessionsDrainUnderOverlappingChurn) {
  EchoServer server(lan->primary->tcp(), 7000);
  // Overlapping churn: batches of connections that close out of order,
  // so deferred on_closed callbacks interleave with fresh accepts.
  for (int round = 0; round < 8; ++round) {
    std::vector<std::shared_ptr<tcp::Connection>> conns;
    for (int i = 0; i < 6; ++i) {
      auto c = lan->client->tcp().connect(lan->primary->address(), 7000, {});
      c->on_established = [raw = c.get()] { raw->send(to_bytes("ping")); };
      conns.push_back(std::move(c));
    }
    ASSERT_TRUE(run_until(sim(), [&] { return server.live_sessions() >= 6; }))
        << "round " << round;
    // Close even-indexed first, then odd, so erase order differs from
    // accept order.
    for (std::size_t i = 0; i < conns.size(); i += 2) conns[i]->close();
    sim().run_for(milliseconds(5));
    for (std::size_t i = 1; i < conns.size(); i += 2) conns[i]->close();
    ASSERT_TRUE(run_until(sim(), [&] { return server.live_sessions() == 0; }))
        << "round " << round << " leaked sessions: " << server.live_sessions();
  }
  EXPECT_GT(server.bytes_echoed(), 0u);
}

TEST_F(ChurnFixture, ConnectionIdsAreNeverReused) {
  // The key property the session maps rely on: ids are unique for the
  // lifetime of the TcpLayer even as Connection objects are recycled.
  std::set<std::uint64_t> seen;
  EchoServer server(lan->primary->tcp(), 7000);
  for (int cycle = 0; cycle < 16; ++cycle) {
    auto c = lan->client->tcp().connect(lan->primary->address(), 7000, {});
    ASSERT_TRUE(run_until(sim(), [&] {
      return c->state() == tcp::TcpState::kEstablished;
    }));
    EXPECT_TRUE(seen.insert(c->id()).second) << "duplicate id " << c->id();
    c->close();
    ASSERT_TRUE(run_until(sim(), [&] { return server.live_sessions() == 0; }));
    c.reset();
    sim().run_for(milliseconds(1));
  }
  EXPECT_EQ(seen.size(), 16u);
}

// Failover landing mid-handshake: the primary accepts the SYN (embryonic
// connection created, session not yet established) and dies before the
// handshake completes. The secondary — which accepted the same SYN
// through its promiscuous tap — takes over, finishes the handshake via
// SYN-ACK retransmission, and serves the connection's first request.
TEST(SessionChurnFailover, HandshakeStartedOnPrimaryServedBySecondary) {
  auto r = test::make_replicated_lan({}, {.ports = {8080}}, /*with_echo=*/false);
  HttpServer web_p(r->primary().tcp(), 8080);
  HttpServer web_s(r->secondary().tcp(), 8080);
  for (HttpServer* w : {&web_p, &web_s}) {
    w->add_document("/", to_bytes("<html>churn</html>"));
  }
  r->sim().run_for(milliseconds(100));  // detectors settle

  auto conn = r->client().tcp().connect(r->primary().address(), 8080,
                                        {.nodelay = true});
  // Stop the instant the primary holds the embryonic connection — before
  // any SYN-ACK can reach the client — and kill it right there.
  const tcp::ConnKey pk{r->primary().address(), 8080, r->client().address(),
                        conn->key().local_port};
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return r->primary().tcp().find(pk) != nullptr;
  }));
  ASSERT_NE(conn->state(), tcp::TcpState::kEstablished);
  r->group->crash_primary();

  std::string rx;
  conn->on_established = [c = conn.get()] {
    c->send(to_bytes("GET / HTTP/1.0\r\n\r\n"));
  };
  conn->on_readable = [&, c = conn.get()] {
    Bytes got;
    c->recv(got);
    rx += to_string(got);
  };
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return rx.find("</html>") != std::string::npos;
  }, seconds(30)));
  EXPECT_EQ(rx.rfind("HTTP/1.0 200 OK", 0), 0u);
  // The primary never served it; the secondary did.
  EXPECT_EQ(web_p.requests_served(), 0u);
  EXPECT_EQ(web_s.requests_served(), 1u);
}

// High-rate churn with a blind-RST attacker on the wire. A blind reset
// sweep against a port serving 10k conn/s must not kill a single
// established connection (every exact-RCV.NXT hit it could score is a
// 1-in-2^32 event per guess), and the handshake path — embryonic
// connections included — must not slow down: setup p99 under attack
// stays within tolerance of the unattacked baseline.

struct ChurnRun {
  std::uint64_t started = 0;
  std::uint64_t established = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t injected = 0;
  SimDuration setup_p99 = 0;
};

ChurnRun run_churn(bool attacked, std::uint64_t seed) {
  auto lan = make_lan();
  HttpServer web(lan->primary->tcp(), 8080);
  web.add_document("/", to_bytes("<html>churn-under-fire</html>"));

  LoadGenConfig cfg;
  cfg.server = lan->primary->address();
  cfg.port = 8080;
  cfg.conns_per_sec = 10000.0;
  cfg.duration = milliseconds(500);
  cfg.seed = seed;
  LoadGen gen(lan->sim, {&lan->client->tcp()}, cfg);

  std::unique_ptr<Attacker> attacker;
  if (attacked) {
    AttackerConfig ac;
    ac.victim = lan->primary->address();
    ac.spoof_src = lan->client->address();
    ac.victim_port = 8080;
    // Cover the generator's whole deterministic ephemeral-port range so
    // most guesses name a 4-tuple that exists or existed.
    ac.port_lo = 49152;
    ac.port_hi = 49152 + 5500;
    ac.kinds = {AttackKind::kBlindRst};
    ac.rate = 20000.0;
    ac.duration = seconds(600);
    ac.seed = seed ^ 0x5e7;
    attacker = std::make_unique<Attacker>(*lan->secondary, ac);
    attacker->start();
  }

  gen.start();
  EXPECT_TRUE(test::run_until(lan->sim, [&] { return gen.done(); }, seconds(120)));

  ChurnRun r;
  r.started = gen.conns_started();
  r.established = gen.conns_established();
  r.completed = gen.conns_completed();
  r.failed = gen.conns_failed();
  r.injected = attacker ? attacker->injected() : 0;
  auto lat = gen.setup_latencies();
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    r.setup_p99 = lat[std::min(lat.size() - 1, lat.size() * 99 / 100)];
  }
  return r;
}

TEST(ChurnUnderAttack, BlindRstSweepLosesNoConnectionsAndKeepsSetupLatency) {
  const ChurnRun base = run_churn(/*attacked=*/false, 7001);
  const ChurnRun atk = run_churn(/*attacked=*/true, 7001);

  ASSERT_GT(base.started, 4000u);
  EXPECT_EQ(base.failed, 0u);
  EXPECT_EQ(base.completed, base.established);

  // The attacker really swept — thousands of spoofed RSTs hit the wire —
  // and not one established connection died: every launched connection
  // finished its request cycle.
  EXPECT_GT(atk.injected, 5000u);
  EXPECT_EQ(atk.failed, 0u) << "blind RSTs killed connections";
  EXPECT_EQ(atk.completed, atk.established);
  EXPECT_EQ(atk.established, atk.started);

  // Setup latency is undisturbed within tolerance: the spoofed segments
  // are dropped or challenged off the fast path, not serialized into
  // handshake-blocking work. Tolerance covers added wire occupancy.
  EXPECT_LT(atk.setup_p99, 2 * base.setup_p99 + milliseconds(2))
      << "attacked p99 " << atk.setup_p99 << "ns vs baseline " << base.setup_p99
      << "ns";
}

}  // namespace
}  // namespace tfo::apps
