// Unit and property tests for the bridge output queues (§3.2/§3.4).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/output_queue.hpp"

namespace tfo::core {
namespace {

Bytes seq_bytes(std::uint64_t offset, std::size_t n) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((offset + i) * 131 + 7);
  }
  return b;
}

TEST(OutputQueue, InsertAndExtract) {
  OutputQueue q;
  ASSERT_TRUE(q.insert(10, seq_bytes(10, 5)));
  EXPECT_EQ(q.total_bytes(), 5u);
  EXPECT_EQ(q.contiguous_at(10), 5u);
  EXPECT_EQ(q.contiguous_at(12), 3u);
  EXPECT_EQ(q.contiguous_at(15), 0u);
  EXPECT_EQ(q.contiguous_at(9), 0u);
  const Bytes got = to_bytes(q.extract(10, 5));
  EXPECT_EQ(got, seq_bytes(10, 5));
  EXPECT_TRUE(q.empty());
}

TEST(OutputQueue, PartialExtractLeavesRemainder) {
  OutputQueue q;
  ASSERT_TRUE(q.insert(0, seq_bytes(0, 10)));
  EXPECT_EQ(q.extract(0, 4), seq_bytes(0, 4));
  EXPECT_EQ(q.contiguous_at(4), 6u);
  EXPECT_EQ(q.total_bytes(), 6u);
  EXPECT_EQ(q.extract(4, 6), seq_bytes(4, 6));
}

TEST(OutputQueue, ExtractFromMiddleSplitsRun) {
  OutputQueue q;
  ASSERT_TRUE(q.insert(0, seq_bytes(0, 10)));
  EXPECT_EQ(q.extract(3, 4), seq_bytes(3, 4));
  EXPECT_EQ(q.contiguous_at(0), 3u);
  EXPECT_EQ(q.contiguous_at(7), 3u);
  EXPECT_EQ(q.contiguous_at(3), 0u);
  EXPECT_EQ(q.total_bytes(), 6u);
}

TEST(OutputQueue, AdjacentRunsMerge) {
  OutputQueue q;
  ASSERT_TRUE(q.insert(0, seq_bytes(0, 5)));
  ASSERT_TRUE(q.insert(5, seq_bytes(5, 5)));
  EXPECT_EQ(q.contiguous_at(0), 10u);
}

TEST(OutputQueue, OverlappingIdenticalInsertIsIdempotent) {
  OutputQueue q;
  ASSERT_TRUE(q.insert(0, seq_bytes(0, 10)));
  ASSERT_TRUE(q.insert(3, seq_bytes(3, 10)));  // overlap, same content
  EXPECT_EQ(q.contiguous_at(0), 13u);
  EXPECT_EQ(q.total_bytes(), 13u);
}

TEST(OutputQueue, GapThenFill) {
  OutputQueue q;
  ASSERT_TRUE(q.insert(0, seq_bytes(0, 3)));
  ASSERT_TRUE(q.insert(10, seq_bytes(10, 3)));
  EXPECT_EQ(q.contiguous_at(0), 3u);
  EXPECT_EQ(q.min_offset(), 0u);
  EXPECT_EQ(q.max_end(), 13u);
  ASSERT_TRUE(q.insert(3, seq_bytes(3, 7)));  // fills the gap exactly
  EXPECT_EQ(q.contiguous_at(0), 13u);
}

TEST(OutputQueue, DivergenceDetected) {
  OutputQueue q;
  ASSERT_TRUE(q.insert(0, seq_bytes(0, 10)));
  Bytes bad = seq_bytes(5, 5);
  bad[2] ^= 0xff;
  EXPECT_FALSE(q.insert(5, bad));
  // Queue unchanged by the failed insert.
  EXPECT_EQ(q.total_bytes(), 10u);
  EXPECT_EQ(q.extract(0, 10), seq_bytes(0, 10));
}

TEST(OutputQueue, DropBelow) {
  OutputQueue q;
  ASSERT_TRUE(q.insert(0, seq_bytes(0, 10)));
  ASSERT_TRUE(q.insert(20, seq_bytes(20, 5)));
  q.drop_below(5);
  EXPECT_EQ(q.contiguous_at(0), 0u);
  EXPECT_EQ(q.contiguous_at(5), 5u);
  EXPECT_EQ(q.total_bytes(), 10u);
  q.drop_below(100);
  EXPECT_TRUE(q.empty());
}

TEST(OutputQueue, LargeOffsets) {
  OutputQueue q;
  const std::uint64_t base = 0xffffffff00ull;  // beyond 32-bit space
  ASSERT_TRUE(q.insert(base, seq_bytes(base, 100)));
  EXPECT_EQ(q.contiguous_at(base + 50), 50u);
  EXPECT_EQ(q.extract(base, 100), seq_bytes(base, 100));
}

// Property: inserting random (possibly overlapping, always consistent)
// fragments of a stream and then extracting from the front reproduces the
// stream exactly — the invariant the bridge merge relies on.
class OutputQueueProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OutputQueueProperty, RandomFragmentsReassemble) {
  Rng rng(GetParam());
  OutputQueue q;
  const std::uint64_t stream_len = 2000;
  // Cover the stream with random fragments.
  std::vector<bool> covered(stream_len, false);
  while (std::find(covered.begin(), covered.end(), false) != covered.end()) {
    const std::uint64_t off = rng.uniform(0, stream_len - 1);
    const std::size_t len =
        static_cast<std::size_t>(rng.uniform(1, std::min<std::uint64_t>(64, stream_len - off)));
    ASSERT_TRUE(q.insert(off, seq_bytes(off, len)));
    for (std::uint64_t i = off; i < off + len; ++i) covered[i] = true;
  }
  EXPECT_EQ(q.total_bytes(), stream_len);
  EXPECT_EQ(q.contiguous_at(0), stream_len);
  // Extract in random-sized chunks from the front.
  std::uint64_t pos = 0;
  while (pos < stream_len) {
    const std::size_t n = static_cast<std::size_t>(
        rng.uniform(1, std::min<std::uint64_t>(97, stream_len - pos)));
    EXPECT_EQ(q.extract(pos, n), seq_bytes(pos, n));
    pos += n;
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.total_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OutputQueueProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Property: a single corrupted fragment is always caught, regardless of
// how it overlaps existing content.
class DivergenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DivergenceProperty, CorruptOverlapAlwaysCaught) {
  Rng rng(GetParam() * 977);
  for (int trial = 0; trial < 50; ++trial) {
    OutputQueue q;
    ASSERT_TRUE(q.insert(100, seq_bytes(100, 200)));
    const std::uint64_t off = rng.uniform(100, 280);
    const std::size_t len = static_cast<std::size_t>(rng.uniform(1, 40));
    Bytes frag = seq_bytes(off, len);
    // Corrupt one byte that overlaps the existing [100, 300) run.
    const std::uint64_t overlap_end = std::min<std::uint64_t>(off + len, 300);
    const std::size_t idx = static_cast<std::size_t>(rng.uniform(0, overlap_end - off - 1));
    frag[idx] ^= 0x01;
    EXPECT_FALSE(q.insert(off, frag)) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DivergenceProperty, ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------- coalescing

TEST(OutputQueue, AbuttingRunsCoalesceIntoOne) {
  // Three runs inserted back-to-front, each exactly abutting the next:
  // the queue must store them as a single run (contiguous_at spans all).
  OutputQueue q;
  ASSERT_TRUE(q.insert(20, seq_bytes(20, 10)));
  ASSERT_TRUE(q.insert(10, seq_bytes(10, 10)));
  ASSERT_TRUE(q.insert(0, seq_bytes(0, 10)));
  EXPECT_EQ(q.contiguous_at(0), 30u);
  EXPECT_EQ(q.total_bytes(), 30u);
  EXPECT_EQ(q.min_offset(), 0u);
  EXPECT_EQ(q.max_end(), 30u);
}

TEST(OutputQueue, InsertBridgingTwoRunsCoalescesAll) {
  // [0,5) and [8,12) exist; inserting [4,9) touches both ends and must
  // union everything into [0,12) with correct totals.
  OutputQueue q;
  ASSERT_TRUE(q.insert(0, seq_bytes(0, 5)));
  ASSERT_TRUE(q.insert(8, seq_bytes(8, 4)));
  EXPECT_EQ(q.total_bytes(), 9u);
  ASSERT_TRUE(q.insert(4, seq_bytes(4, 5)));
  EXPECT_EQ(q.contiguous_at(0), 12u);
  EXPECT_EQ(q.total_bytes(), 12u);
  EXPECT_EQ(q.extract(0, 12), seq_bytes(0, 12));
}

TEST(OutputQueue, InsertAbuttingOnlyLeftDoesNotBridgeGap) {
  OutputQueue q;
  ASSERT_TRUE(q.insert(0, seq_bytes(0, 5)));
  ASSERT_TRUE(q.insert(10, seq_bytes(10, 5)));
  ASSERT_TRUE(q.insert(5, seq_bytes(5, 3)));  // abuts left run only
  EXPECT_EQ(q.contiguous_at(0), 8u);
  EXPECT_EQ(q.contiguous_at(10), 5u);
  EXPECT_EQ(q.total_bytes(), 13u);
}

// ------------------------------------------------------ gauge binding

TEST(OutputQueue, GaugesTrackTotalsByDelta) {
  obs::Gauge bytes, depth;
  {
    OutputQueue q;
    q.bind_gauges(&bytes, &depth);
    ASSERT_TRUE(q.insert(0, seq_bytes(0, 10)));
    ASSERT_TRUE(q.insert(20, seq_bytes(20, 5)));
    EXPECT_EQ(bytes.value(), 15);
    EXPECT_EQ(depth.value(), 2);
    q.drop_below(5);
    EXPECT_EQ(bytes.value(), 10);
    (void)q.extract(20, 5);
    EXPECT_EQ(bytes.value(), 5);
    EXPECT_EQ(depth.value(), 1);
    EXPECT_EQ(bytes.max_value(), 15);
  }
  // Destruction retires the queue's remaining contribution.
  EXPECT_EQ(bytes.value(), 0);
  EXPECT_EQ(depth.value(), 0);
}

TEST(OutputQueue, SharedGaugeAggregatesAcrossQueues) {
  obs::Gauge bytes;
  OutputQueue a, b;
  a.bind_gauges(&bytes, nullptr);
  b.bind_gauges(&bytes, nullptr);
  ASSERT_TRUE(a.insert(0, seq_bytes(0, 7)));
  ASSERT_TRUE(b.insert(0, seq_bytes(0, 3)));
  EXPECT_EQ(bytes.value(), 10);
  a.clear();
  EXPECT_EQ(bytes.value(), 3);
}

// ------------------------------------------- interleaved-operation fuzz

// Property: under random interleavings of insert / extract / drop_below,
// the queue agrees with a flat-buffer oracle on total_bytes, contiguous
// runs, and extracted content. This is the bookkeeping the bridge gauges
// publish, so drift here would silently corrupt the metrics too.
class OutputQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OutputQueueFuzz, MatchesFlatBufferOracle) {
  Rng rng(GetParam() * 7919 + 13);
  constexpr std::uint64_t kStream = 1024;
  OutputQueue q;
  obs::Gauge gauge_bytes, gauge_depth;
  q.bind_gauges(&gauge_bytes, &gauge_depth);
  std::vector<bool> present(kStream, false);  // oracle: which offsets held

  auto oracle_total = [&] {
    return static_cast<std::size_t>(
        std::count(present.begin(), present.end(), true));
  };
  auto oracle_contig = [&](std::uint64_t off) {
    std::size_t n = 0;
    while (off + n < kStream && present[off + n]) ++n;
    return n;
  };

  for (int step = 0; step < 600; ++step) {
    const std::uint64_t dice = rng.uniform(0, 9);
    if (dice < 5) {  // insert a consistent fragment
      const std::uint64_t off = rng.uniform(0, kStream - 1);
      const std::size_t len = static_cast<std::size_t>(
          rng.uniform(1, std::min<std::uint64_t>(48, kStream - off)));
      ASSERT_TRUE(q.insert(off, seq_bytes(off, len)));
      for (std::uint64_t i = off; i < off + len; ++i) present[i] = true;
    } else if (dice < 8) {  // extract a prefix of some present run
      const std::uint64_t probe = rng.uniform(0, kStream - 1);
      const std::size_t avail = oracle_contig(probe);
      ASSERT_EQ(q.contiguous_at(probe), avail) << "probe " << probe;
      if (avail > 0) {
        const std::size_t n = static_cast<std::size_t>(
            rng.uniform(1, static_cast<std::uint64_t>(avail)));
        ASSERT_EQ(q.extract(probe, n), seq_bytes(probe, n));
        for (std::uint64_t i = probe; i < probe + n; ++i) present[i] = false;
      }
    } else {  // drop everything below a random offset
      const std::uint64_t off = rng.uniform(0, kStream);
      q.drop_below(off);
      for (std::uint64_t i = 0; i < off && i < kStream; ++i) present[i] = false;
    }

    ASSERT_EQ(q.total_bytes(), oracle_total()) << "step " << step;
    ASSERT_EQ(gauge_bytes.value(),
              static_cast<std::int64_t>(q.total_bytes())) << "step " << step;
    // Spot-check run boundaries at random probes.
    for (int p = 0; p < 4; ++p) {
      const std::uint64_t probe = rng.uniform(0, kStream - 1);
      ASSERT_EQ(q.contiguous_at(probe), oracle_contig(probe))
          << "step " << step << " probe " << probe;
    }
  }
  // Drain and confirm the content is exactly the oracle's.
  for (std::uint64_t off = 0; off < kStream; ++off) {
    if (!present[off]) continue;
    const std::size_t n = oracle_contig(off);
    ASSERT_EQ(q.extract(off, n), seq_bytes(off, n));
    for (std::uint64_t i = off; i < off + n; ++i) present[i] = false;
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(gauge_bytes.value(), 0);
  EXPECT_EQ(gauge_depth.value(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OutputQueueFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace tfo::core
