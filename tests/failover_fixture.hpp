// Shared fixture for failover integration tests: a LAN with client C,
// primary P, secondary S (per the paper's Figure 1), a ReplicaGroup
// wiring the bridges and fault detectors, and replicated servers on P+S.
#pragma once

#include <memory>

#include "apps/echo.hpp"
#include "apps/topology.hpp"
#include "core/replica_group.hpp"
#include "test_util.hpp"

namespace tfo::test {

constexpr std::uint16_t kEchoPort = 7777;

struct ReplicatedLan {
  std::unique_ptr<apps::Lan> lan;
  /// Additional hosts on the same wire (recruits, extra clients).
  /// Declared after `lan` and before `group` so destruction order is:
  /// group/bridges first, then these hosts, then the network.
  std::vector<std::unique_ptr<apps::Host>> extra_hosts;
  std::unique_ptr<core::ReplicaGroup> group;
  std::unique_ptr<apps::EchoServer> echo_p, echo_s;

  /// Adds a host on the LAN with warm ARP to/from the three base hosts.
  apps::Host& add_host(const std::string& name, const char* addr,
                       std::uint64_t seed) {
    apps::HostParams hp;
    hp.name = name;
    hp.addr = ip::Ipv4::parse(addr);
    hp.seed = seed;
    auto host = std::make_unique<apps::Host>(lan->sim, hp, *lan->wire);
    for (apps::Host* h : {lan->client.get(), lan->primary.get(),
                          lan->secondary.get()}) {
      h->arp().add_static(host->address(), host->nic().mac());
      host->arp().add_static(h->address(), h->nic().mac());
    }
    extra_hosts.push_back(std::move(host));
    return *extra_hosts.back();
  }

  sim::Simulator& sim() { return lan->sim; }
  apps::Host& client() { return *lan->client; }
  apps::Host& primary() { return *lan->primary; }
  apps::Host& secondary() { return *lan->secondary; }
};

inline std::unique_ptr<ReplicatedLan> make_replicated_lan(
    apps::LanParams lp = {}, core::FailoverConfig cfg = {}, bool with_echo = true) {
  auto r = std::make_unique<ReplicatedLan>();
  r->lan = apps::make_lan(lp);
  if (cfg.ports.empty()) cfg.ports = {kEchoPort};
  cfg.primary_addr = r->lan->primary->address();
  cfg.secondary_addr = r->lan->secondary->address();
  r->group = std::make_unique<core::ReplicaGroup>(*r->lan->primary, *r->lan->secondary,
                                                  cfg);
  if (with_echo) {
    r->echo_p = std::make_unique<apps::EchoServer>(r->lan->primary->tcp(), kEchoPort);
    r->echo_s = std::make_unique<apps::EchoServer>(r->lan->secondary->tcp(), kEchoPort);
  }
  r->group->start();
  return r;
}

/// A client that sends `total` bytes in `chunk`-sized pieces as echoes
/// come back, verifying the echoed stream matches what was sent.
class EchoDriver {
 public:
  EchoDriver(apps::Host& client_host, ip::Ipv4 server, std::uint16_t port,
             std::size_t total, std::size_t chunk = 1024)
      : total_(total), chunk_(chunk) {
    // Sized upfront: vector growth re-copies megabytes mid-transfer and
    // the noise lands inside benchmark timing windows.
    expected_.reserve(total_);
    received_.reserve(total_);
    conn_ = client_host.tcp().connect(server, port, {.nodelay = true});
    conn_->on_established = [this] { pump(); };
    conn_->on_readable = [this] {
      conn_->recv(received_);
      pump();
    };
    conn_->on_closed = [this](tcp::CloseReason r) { close_reason_ = r; };
  }

  void pump() {
    // Keep one chunk in flight at a time (request/response style).
    if (sent_ < total_ && received_.size() == sent_) {
      const std::size_t n = std::min(chunk_, total_ - sent_);
      Bytes data(pattern_bytes(n, static_cast<std::uint32_t>(sent_)));
      sent_ += n;
      append(expected_, data);
      conn_->send(std::move(data));
    }
  }

  ~EchoDriver() {
    // The connection may outlive the driver; silence its callbacks.
    conn_->on_established = nullptr;
    conn_->on_readable = nullptr;
    conn_->on_closed = nullptr;
  }

  bool done() const { return received_.size() >= total_; }
  bool verify() const { return received_ == expected_; }
  /// Prefix property: everything received so far matches what was sent.
  bool verify_prefix() const {
    return received_.size() <= expected_.size() &&
           std::equal(received_.begin(), received_.end(), expected_.begin());
  }
  const Bytes& received() const { return received_; }
  std::size_t bytes_sent() const { return sent_; }
  tcp::Connection& connection() { return *conn_; }
  std::optional<tcp::CloseReason> close_reason() const { return close_reason_; }

 private:
  std::size_t total_, chunk_;
  std::size_t sent_ = 0;
  Bytes expected_, received_;
  std::shared_ptr<tcp::Connection> conn_;
  std::optional<tcp::CloseReason> close_reason_;
};

}  // namespace tfo::test
