// Unit tests for BridgeConn — the §3 merge engine — driven with synthetic
// segments through a mock sink, with byte-exact assertions on what
// reaches the client. Includes the paper's Figure 2 worked example.
#include <gtest/gtest.h>

#include "core/bridge_conn.hpp"
#include "tcp/segment.hpp"

namespace tfo::core {
namespace {

using tcp::ConnKey;
using tcp::Flags;
using tcp::TcpSegment;

const ip::Ipv4 kClient = ip::Ipv4::parse("10.0.0.10");
const ip::Ipv4 kPrimary = ip::Ipv4::parse("10.0.0.1");
const ip::Ipv4 kSecondary = ip::Ipv4::parse("10.0.0.2");
constexpr std::uint16_t kSrvPort = 80;
constexpr std::uint16_t kCliPort = 40000;

struct MockSink : BridgeConnSink {
  struct Emitted {
    TcpSegment seg;
    ip::Ipv4 src, dst;
  };
  std::vector<Emitted> out;
  int divergences = 0;
  int closures = 0;

  void emit(const TcpSegment& seg, ip::Ipv4 src, ip::Ipv4 dst) override {
    out.push_back({seg, src, dst});
  }
  void divergence(const ConnKey&) override { ++divergences; }
  void fully_closed(const ConnKey&) override { ++closures; }

  const TcpSegment& last() const { return out.back().seg; }
};

Bytes stream_bytes(std::uint64_t offset, std::size_t n) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((offset + i) * 37 + 5);
  }
  return b;
}

/// Test harness around one BridgeConn with chosen ISNs.
struct BridgeHarness {
  MockSink sink;
  ConnKey key{kPrimary, kSrvPort, kClient, kCliPort};
  BridgeConn conn{sink, key, kSecondary};
  Seq32 iss_p, iss_s, irs;

  explicit BridgeHarness(Seq32 p = 1000, Seq32 s = 5000, Seq32 c = 777)
      : iss_p(p), iss_s(s), irs(c) {}

  TcpSegment client_syn() {
    TcpSegment seg;
    seg.src_port = kCliPort;
    seg.dst_port = kSrvPort;
    seg.seq = irs;
    seg.flags = Flags::kSyn;
    seg.window = 65535;
    seg.mss = 1460;
    return seg;
  }
  TcpSegment server_synack(Seq32 iss, std::uint16_t mss, std::uint16_t win) {
    TcpSegment seg;
    seg.src_port = kSrvPort;
    seg.dst_port = kCliPort;
    seg.seq = iss;
    seg.ack = seq_add(irs, 1);
    seg.flags = Flags::kSyn | Flags::kAck;
    seg.window = win;
    seg.mss = mss;
    return seg;
  }
  /// Server data segment: `offset` is the server-stream offset (1 = first
  /// payload byte), in the given replica's sequence space.
  TcpSegment server_data(Seq32 iss, std::uint64_t offset, std::size_t len,
                         std::uint64_t ack_client_offset, std::uint16_t win,
                         bool fin = false) {
    TcpSegment seg;
    seg.src_port = kSrvPort;
    seg.dst_port = kCliPort;
    seg.seq = seq_add(iss, static_cast<std::int64_t>(offset));
    seg.ack = seq_add(irs, static_cast<std::int64_t>(ack_client_offset));
    seg.flags = Flags::kAck | (fin ? Flags::kFin : 0);
    seg.window = win;
    seg.payload = stream_bytes(offset, len);
    return seg;
  }

  /// Runs the §7.1 client-initiated handshake; leaves the merged SYN-ACK
  /// in sink.out[0].
  void handshake(std::uint16_t mss_p = 1460, std::uint16_t mss_s = 1460,
                 std::uint16_t win_p = 60000, std::uint16_t win_s = 60000) {
    auto syn = client_syn();
    conn.on_remote_segment(syn);
    conn.on_primary_segment(server_synack(iss_p, mss_p, win_p));
    conn.on_secondary_segment(server_synack(iss_s, mss_s, win_s));
  }
};

// ------------------------------------------------------------- handshake

TEST(BridgeHandshake, MergedSynAckUsesSecondarySeqAndMinima) {
  BridgeHarness h;
  h.handshake(1460, 700, 60000, 30000);
  ASSERT_EQ(h.sink.out.size(), 1u);
  const TcpSegment& syn = h.sink.last();
  EXPECT_TRUE(syn.syn());
  EXPECT_TRUE(syn.has_ack());
  EXPECT_EQ(syn.seq, h.iss_s);                       // §3.3: S's space
  EXPECT_EQ(syn.ack, seq_add(h.irs, 1));
  EXPECT_EQ(*syn.mss, 700);                          // §7.1: min MSS
  EXPECT_EQ(syn.window, 30000);                      // min window
  EXPECT_EQ(h.sink.out[0].src, kPrimary);
  EXPECT_EQ(h.sink.out[0].dst, kClient);
}

TEST(BridgeHandshake, NoSynAckUntilBothReplicasResponded) {
  BridgeHarness h;
  auto syn = h.client_syn();
  h.conn.on_remote_segment(syn);
  h.conn.on_primary_segment(h.server_synack(h.iss_p, 1460, 60000));
  EXPECT_TRUE(h.sink.out.empty());  // waiting for the secondary
  h.conn.on_secondary_segment(h.server_synack(h.iss_s, 1460, 60000));
  EXPECT_EQ(h.sink.out.size(), 1u);
}

TEST(BridgeHandshake, OrderOfReplicaSynsIrrelevant) {
  BridgeHarness h;
  auto syn = h.client_syn();
  h.conn.on_remote_segment(syn);
  h.conn.on_secondary_segment(h.server_synack(h.iss_s, 1460, 60000));
  EXPECT_TRUE(h.sink.out.empty());
  h.conn.on_primary_segment(h.server_synack(h.iss_p, 1460, 60000));
  ASSERT_EQ(h.sink.out.size(), 1u);
  EXPECT_EQ(h.sink.last().seq, h.iss_s);
}

TEST(BridgeHandshake, ClientIsnRecoveredFromSecondarySynAck) {
  // The primary missed the client SYN entirely; the bridge learns the
  // client ISN from the secondary's SYN+ACK (ack - 1).
  BridgeHarness h;
  h.conn.on_secondary_segment(h.server_synack(h.iss_s, 1460, 60000));
  h.conn.on_primary_segment(h.server_synack(h.iss_p, 1460, 60000));
  ASSERT_EQ(h.sink.out.size(), 1u);
  EXPECT_EQ(h.sink.last().ack, seq_add(h.irs, 1));
}

TEST(BridgeHandshake, SynRetransmissionResendsMergedSynAck) {
  BridgeHarness h;
  h.handshake();
  ASSERT_EQ(h.sink.out.size(), 1u);
  // P's TCP retransmits its SYN-ACK (the client's ACK was lost).
  h.conn.on_primary_segment(h.server_synack(h.iss_p, 1460, 60000));
  ASSERT_EQ(h.sink.out.size(), 2u);
  EXPECT_TRUE(h.sink.last().syn());
  EXPECT_EQ(h.sink.last().seq, h.iss_s);
}

TEST(BridgeHandshake, ServerInitiatedSynsMergeWithoutAck) {
  // §7.2: both replicas actively open toward unreplicated T.
  BridgeHarness h;
  TcpSegment syn_p;
  syn_p.src_port = kSrvPort;
  syn_p.dst_port = kCliPort;
  syn_p.seq = h.iss_p;
  syn_p.flags = Flags::kSyn;
  syn_p.window = 50000;
  syn_p.mss = 1460;
  TcpSegment syn_s = syn_p;
  syn_s.seq = h.iss_s;
  syn_s.mss = 900;

  h.conn.on_primary_segment(syn_p);
  EXPECT_TRUE(h.sink.out.empty());
  h.conn.on_secondary_segment(syn_s);
  ASSERT_EQ(h.sink.out.size(), 1u);
  const TcpSegment& merged = h.sink.last();
  EXPECT_TRUE(merged.syn());
  EXPECT_FALSE(merged.has_ack());
  EXPECT_EQ(merged.seq, h.iss_s);
  EXPECT_EQ(*merged.mss, 900);
}

// ----------------------------------------------------------------- merge

TEST(BridgeMerge, PaperFigure2Scenario) {
  // Figure 2 of the paper, adapted to our offsets: Δseq = 30, the bridge
  // has already sent stream bytes up to (but excluding) offset 23. The
  // primary's TCP delivers payload bytes at P-seq 51..54 (offsets 21..24:
  // 21,22 are old, 23,24 are new and enqueued); then the secondary's
  // segment carries offsets 23..26. Matching bytes 23,24 go out in a new
  // segment; 25,26 remain in the secondary output queue.
  BridgeHarness h(/*p=*/30, /*s=*/0);
  h.handshake();
  h.sink.out.clear();

  // Bring the connection to next_to_client == 23: both replicas send
  // offsets 1..22, which merge and go out.
  h.conn.on_primary_segment(h.server_data(h.iss_p, 1, 22, 1, 60000));
  h.conn.on_secondary_segment(h.server_data(h.iss_s, 1, 22, 1, 60000));
  ASSERT_FALSE(h.sink.out.empty());
  h.sink.out.clear();

  // P: bytes 51..54 in P space = offsets 21..24 (21,22 already sent).
  h.conn.on_primary_segment(h.server_data(h.iss_p, 21, 4, 1, 60000));
  EXPECT_TRUE(h.sink.out.empty());  // waiting for S's copy
  EXPECT_EQ(h.conn.primary_queue_bytes(), 2u);  // 23,24 queued; 21,22 trimmed

  // S: bytes 23..26.
  h.conn.on_secondary_segment(h.server_data(h.iss_s, 23, 4, 1, 60000));
  ASSERT_EQ(h.sink.out.size(), 1u);
  const TcpSegment& merged = h.sink.last();
  EXPECT_EQ(merged.seq, seq_add(h.iss_s, 23));   // S-space sequence number
  EXPECT_EQ(merged.payload, stream_bytes(23, 2));  // the matching bytes
  EXPECT_EQ(h.conn.secondary_queue_bytes(), 2u);   // bytes 25,26 wait for P
  EXPECT_EQ(h.conn.primary_queue_bytes(), 0u);
}

TEST(BridgeMerge, AckAndWindowAreMinima) {
  BridgeHarness h;
  h.handshake();
  h.sink.out.clear();
  // P acknowledges client offset 101 with window 4000; S acknowledges 81
  // with window 9000. The merged segment must carry ack=81, win=4000.
  h.conn.on_primary_segment(h.server_data(h.iss_p, 1, 10, 101, 4000));
  h.conn.on_secondary_segment(h.server_data(h.iss_s, 1, 10, 81, 9000));
  ASSERT_EQ(h.sink.out.size(), 1u);
  EXPECT_EQ(h.sink.last().ack, seq_add(h.irs, 81));
  EXPECT_EQ(h.sink.last().window, 4000);
}

TEST(BridgeMerge, DifferentSegmentationMergesByteExactly) {
  // §3.2: "one of the server's TCP layer might split the reply into
  // multiple TCP segments, whereas the other ... a single segment."
  BridgeHarness h;
  h.handshake();
  h.sink.out.clear();
  h.conn.on_primary_segment(h.server_data(h.iss_p, 1, 1000, 1, 60000));
  for (std::uint64_t off = 1; off < 1001; off += 100) {
    h.conn.on_secondary_segment(h.server_data(h.iss_s, off, 100, 1, 60000));
  }
  Bytes client_view;
  for (const auto& e : h.sink.out) append(client_view, e.seg.payload);
  EXPECT_EQ(client_view, stream_bytes(1, 1000));
}

TEST(BridgeMerge, EmptyAckEmittedOnlyOnProgress) {
  BridgeHarness h;
  h.handshake();
  h.sink.out.clear();
  // Delayed ACKs from both replicas acknowledging client offset 51.
  h.conn.on_primary_segment(h.server_data(h.iss_p, 1, 0, 51, 60000));
  EXPECT_TRUE(h.sink.out.empty());  // min(51, 1) == 1: no progress yet
  h.conn.on_secondary_segment(h.server_data(h.iss_s, 1, 0, 51, 60000));
  ASSERT_EQ(h.sink.out.size(), 1u);  // both at 51: merged empty ACK
  EXPECT_TRUE(h.sink.last().payload.empty());
  EXPECT_EQ(h.sink.last().ack, seq_add(h.irs, 51));

  // The same delayed ACK again: no progress, nothing emitted (§3.4).
  h.conn.on_primary_segment(h.server_data(h.iss_p, 1, 0, 51, 60000));
  h.conn.on_secondary_segment(h.server_data(h.iss_s, 1, 0, 51, 60000));
  EXPECT_EQ(h.sink.out.size(), 1u);
}

TEST(BridgeMerge, WindowReopenIsForwarded) {
  BridgeHarness h;
  h.handshake();
  h.sink.out.clear();
  // Both replicas advertise a closed window...
  h.conn.on_primary_segment(h.server_data(h.iss_p, 1, 0, 51, 0));
  h.conn.on_secondary_segment(h.server_data(h.iss_s, 1, 0, 51, 0));
  ASSERT_FALSE(h.sink.out.empty());
  EXPECT_EQ(h.sink.last().window, 0);
  h.sink.out.clear();
  // ...then both reopen without new ACK progress: must still go out.
  h.conn.on_primary_segment(h.server_data(h.iss_p, 1, 0, 51, 30000));
  h.conn.on_secondary_segment(h.server_data(h.iss_s, 1, 0, 51, 30000));
  ASSERT_FALSE(h.sink.out.empty());
  EXPECT_GT(h.sink.last().window, 0);
}

TEST(BridgeMerge, RetransmissionForwardedImmediatelyWithoutQueueing) {
  // §4: "it does not enqueue k, but sends k immediately."
  BridgeHarness h;
  h.handshake();
  h.conn.on_primary_segment(h.server_data(h.iss_p, 1, 100, 1, 60000));
  h.conn.on_secondary_segment(h.server_data(h.iss_s, 1, 100, 1, 60000));
  h.sink.out.clear();

  // The primary's TCP retransmits offsets 1..100 (all already sent).
  h.conn.on_primary_segment(h.server_data(h.iss_p, 1, 100, 1, 60000));
  ASSERT_EQ(h.sink.out.size(), 1u);
  EXPECT_EQ(h.sink.last().seq, seq_add(h.iss_s, 1));
  EXPECT_EQ(h.sink.last().payload.size(), 100u);
  EXPECT_EQ(h.conn.primary_queue_bytes(), 0u);

  // Same for a secondary retransmission: forwarded again (the client may
  // see duplicates; its TCP discards them).
  h.conn.on_secondary_segment(h.server_data(h.iss_s, 1, 100, 1, 60000));
  EXPECT_EQ(h.sink.out.size(), 2u);
}

// ------------------------------------------------------------ divergence

TEST(BridgeDivergence, PayloadMismatchDetected) {
  BridgeHarness h;
  h.handshake();
  h.sink.out.clear();
  h.conn.on_primary_segment(h.server_data(h.iss_p, 1, 50, 1, 60000));
  auto bad = h.server_data(h.iss_s, 1, 50, 1, 60000);
  bad.payload[10] ^= 0x40;
  h.conn.on_secondary_segment(bad);
  EXPECT_EQ(h.sink.divergences, 1);
  EXPECT_TRUE(h.conn.dead());
}

TEST(BridgeDivergence, FinPositionMismatchDetected) {
  BridgeHarness h;
  h.handshake();
  h.conn.on_primary_segment(h.server_data(h.iss_p, 1, 50, 1, 60000, /*fin=*/true));
  // Secondary claims the stream ends 10 bytes later: not the same reply.
  h.conn.on_secondary_segment(h.server_data(h.iss_s, 1, 60, 1, 60000, /*fin=*/true));
  EXPECT_EQ(h.sink.divergences, 1);
}

// ------------------------------------------------------------- failures

TEST(BridgeSoloMode, SecondaryFailureFlushesPrimaryQueue) {
  BridgeHarness h;
  h.handshake();
  h.sink.out.clear();
  // P produced offsets 1..500; S never confirmed them.
  h.conn.on_primary_segment(h.server_data(h.iss_p, 1, 500, 61, 45000));
  EXPECT_TRUE(h.sink.out.empty());
  h.conn.on_secondary_failed();
  ASSERT_FALSE(h.sink.out.empty());
  Bytes flushed;
  for (const auto& e : h.sink.out) append(flushed, e.seg.payload);
  EXPECT_EQ(flushed, stream_bytes(1, 500));
  // §6 step 3: the flushed segments carry the *primary's* ack and window.
  EXPECT_EQ(h.sink.last().ack, seq_add(h.irs, 61));
  EXPECT_EQ(h.sink.last().window, 45000);
}

TEST(BridgeSoloMode, SequenceTranslationContinuesForever) {
  BridgeHarness h;
  h.handshake();
  h.conn.on_secondary_failed();
  h.sink.out.clear();
  // §6: "the bridge of the primary server must not discontinue to
  // compensate the offset."
  h.conn.on_primary_segment(h.server_data(h.iss_p, 1, 10, 1, 60000));
  ASSERT_EQ(h.sink.out.size(), 1u);
  EXPECT_EQ(h.sink.last().seq, seq_add(h.iss_s, 1));
  h.conn.on_primary_segment(h.server_data(h.iss_p, 11, 10, 1, 60000));
  EXPECT_EQ(h.sink.last().seq, seq_add(h.iss_s, 11));
}

TEST(BridgeSoloMode, MidHandshakeSecondaryFailureAdoptsPrimarySpace) {
  BridgeHarness h;
  auto syn = h.client_syn();
  h.conn.on_remote_segment(syn);
  h.conn.on_primary_segment(h.server_synack(h.iss_p, 1460, 60000));
  EXPECT_TRUE(h.sink.out.empty());
  h.conn.on_secondary_failed();
  // Nothing was promised to the client yet: the bridge may now use the
  // primary's sequence numbers directly.
  ASSERT_EQ(h.sink.out.size(), 1u);
  EXPECT_EQ(h.sink.last().seq, h.iss_p);
  EXPECT_TRUE(h.sink.last().syn());
}

// ----------------------------------------------------------- termination

TEST(BridgeTermination, ServerFinSentOnlyWhenBothReplicasFinished) {
  BridgeHarness h;
  h.handshake();
  h.sink.out.clear();
  h.conn.on_primary_segment(h.server_data(h.iss_p, 1, 20, 1, 60000, /*fin=*/true));
  EXPECT_TRUE(h.sink.out.empty());  // §8: wait for the secondary's FIN
  h.conn.on_secondary_segment(h.server_data(h.iss_s, 1, 20, 1, 60000, /*fin=*/true));
  ASSERT_FALSE(h.sink.out.empty());
  EXPECT_TRUE(h.sink.last().fin());
  EXPECT_EQ(h.sink.last().payload.size(), 20u);
}

TEST(BridgeTermination, FullCloseReportsFullyClosed) {
  BridgeHarness h;
  h.handshake();
  // Client sends FIN at offset 1 (no data): remote stream offset 1.
  auto client_fin = h.client_syn();
  client_fin.flags = Flags::kFin | Flags::kAck;
  client_fin.seq = seq_add(h.irs, 1);
  client_fin.ack = seq_add(h.iss_s, 1);
  h.conn.on_remote_segment(client_fin);

  // Both replicas ACK the client FIN (offset 2) and send their own FINs.
  h.conn.on_primary_segment(h.server_data(h.iss_p, 1, 0, 2, 60000, /*fin=*/true));
  h.conn.on_secondary_segment(h.server_data(h.iss_s, 1, 0, 2, 60000, /*fin=*/true));
  EXPECT_EQ(h.sink.closures, 0);

  // Client acknowledges the server FIN (server offset 2).
  auto final_ack = client_fin;
  final_ack.flags = Flags::kAck;
  final_ack.seq = seq_add(h.irs, 2);
  final_ack.ack = seq_add(h.iss_s, 2);
  h.conn.on_remote_segment(final_ack);
  EXPECT_EQ(h.sink.closures, 1);
  EXPECT_TRUE(h.conn.dead());
}

TEST(BridgeTermination, ClientRstKillsConnection) {
  BridgeHarness h;
  h.handshake();
  auto rst = h.client_syn();
  rst.flags = Flags::kRst;
  rst.seq = seq_add(h.irs, 1);
  h.conn.on_remote_segment(rst);
  EXPECT_TRUE(h.conn.dead());
  EXPECT_EQ(h.sink.closures, 1);
}

// ------------------------------------------------------- ack translation

TEST(BridgeAckTranslation, ClientAckMappedIntoPrimarySpace) {
  BridgeHarness h;
  h.handshake();
  h.conn.on_primary_segment(h.server_data(h.iss_p, 1, 100, 1, 60000));
  h.conn.on_secondary_segment(h.server_data(h.iss_s, 1, 100, 1, 60000));

  // Client acknowledges server offset 101 — in S's sequence space.
  auto ack = h.client_syn();
  ack.flags = Flags::kAck;
  ack.seq = seq_add(h.irs, 1);
  ack.ack = seq_add(h.iss_s, 101);
  h.conn.on_remote_segment(ack);
  // After translation, the primary's TCP sees its own space.
  EXPECT_EQ(ack.ack, seq_add(h.iss_p, 101));
}

TEST(BridgeAckTranslation, WrapAroundSafe) {
  // ISNs straddling the 32-bit wrap: the translation must still be exact.
  BridgeHarness h(/*p=*/0xffffff00u, /*s=*/0x00000080u, /*c=*/0xfffffff0u);
  h.handshake();
  h.conn.on_primary_segment(h.server_data(h.iss_p, 1, 0x300, 1, 60000));
  h.conn.on_secondary_segment(h.server_data(h.iss_s, 1, 0x300, 1, 60000));
  auto ack = h.client_syn();
  ack.flags = Flags::kAck;
  ack.seq = seq_add(h.irs, 1);
  ack.ack = seq_add(h.iss_s, 0x301);  // wraps past 2^32 in P space
  h.conn.on_remote_segment(ack);
  EXPECT_EQ(ack.ack, seq_add(h.iss_p, 0x301));
  // And the emitted stream used S-space numbers throughout.
  bool found = false;
  for (const auto& e : h.sink.out) {
    if (!e.seg.payload.empty()) {
      EXPECT_EQ(e.seg.seq, seq_add(h.iss_s, 1));
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace tfo::core
