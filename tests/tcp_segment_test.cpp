// Unit tests for the TCP segment wire format: round trips, options,
// pseudo-header checksums, and the bridge's incremental checksum patch
// after an address rewrite (paper §3.1).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tcp/segment.hpp"

namespace tfo::tcp {
namespace {

const ip::Ipv4 kSrc = ip::Ipv4::parse("10.0.0.10");
const ip::Ipv4 kDst = ip::Ipv4::parse("10.0.0.1");

TcpSegment sample() {
  TcpSegment s;
  s.src_port = 4242;
  s.dst_port = 80;
  s.seq = 0xdeadbeef;
  s.ack = 0x01020304;
  s.flags = Flags::kAck | Flags::kPsh;
  s.window = 8192;
  s.payload = to_bytes("GET / HTTP/1.0\r\n\r\n");
  return s;
}

TEST(TcpSegment, RoundTripPlain) {
  const TcpSegment s = sample();
  const Bytes wire = s.serialize(kSrc, kDst);
  auto back = TcpSegment::parse(wire, kSrc, kDst);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->src_port, s.src_port);
  EXPECT_EQ(back->dst_port, s.dst_port);
  EXPECT_EQ(back->seq, s.seq);
  EXPECT_EQ(back->ack, s.ack);
  EXPECT_EQ(back->flags, s.flags);
  EXPECT_EQ(back->window, s.window);
  EXPECT_EQ(back->payload, s.payload);
  EXPECT_FALSE(back->mss.has_value());
  EXPECT_FALSE(back->orig_dst.has_value());
}

TEST(TcpSegment, RoundTripWithMssOption) {
  TcpSegment s = sample();
  s.flags = Flags::kSyn;
  s.mss = 1460;
  s.payload.clear();
  auto back = TcpSegment::parse(s.serialize(kSrc, kDst), kSrc, kDst);
  ASSERT_TRUE(back.has_value());
  ASSERT_TRUE(back->mss.has_value());
  EXPECT_EQ(*back->mss, 1460);
  EXPECT_TRUE(back->syn());
}

TEST(TcpSegment, RoundTripWithOrigDstOption) {
  TcpSegment s = sample();
  s.orig_dst = ip::Ipv4::parse("192.168.1.10");
  auto back = TcpSegment::parse(s.serialize(kSrc, kDst), kSrc, kDst);
  ASSERT_TRUE(back.has_value());
  ASSERT_TRUE(back->orig_dst.has_value());
  EXPECT_EQ(back->orig_dst->str(), "192.168.1.10");
}

TEST(TcpSegment, BothOptionsTogether) {
  TcpSegment s = sample();
  s.mss = 536;
  s.orig_dst = ip::Ipv4::parse("1.2.3.4");
  auto back = TcpSegment::parse(s.serialize(kSrc, kDst), kSrc, kDst);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back->mss, 536);
  EXPECT_EQ(back->orig_dst->v, ip::Ipv4::parse("1.2.3.4").v);
  EXPECT_EQ(back->payload, s.payload);
}

TEST(TcpSegment, ChecksumCoversPseudoHeader) {
  const TcpSegment s = sample();
  const Bytes wire = s.serialize(kSrc, kDst);
  // Same bytes, different claimed endpoints: checksum must fail.
  EXPECT_FALSE(TcpSegment::parse(wire, kSrc, ip::Ipv4::parse("10.0.0.2")).has_value());
  EXPECT_FALSE(TcpSegment::parse(wire, ip::Ipv4::parse("9.9.9.9"), kDst).has_value());
}

TEST(TcpSegment, PayloadCorruptionDetected) {
  const TcpSegment s = sample();
  Bytes wire = s.serialize(kSrc, kDst);
  wire[wire.size() - 1] ^= 0xff;
  EXPECT_FALSE(TcpSegment::parse(wire, kSrc, kDst).has_value());
}

TEST(TcpSegment, TruncatedRejected) {
  Bytes tiny(10, 0);
  EXPECT_FALSE(TcpSegment::parse(tiny, kSrc, kDst).has_value());
}

TEST(TcpSegment, SegLenCountsSynAndFin) {
  TcpSegment s;
  s.flags = Flags::kSyn;
  EXPECT_EQ(s.seg_len(), 1u);
  s.flags = Flags::kSyn | Flags::kFin;
  s.payload = Bytes(10, 0);
  EXPECT_EQ(s.seg_len(), 12u);
}

// The §3.1 mechanism: rewrite an address in the pseudo-header and patch
// the checksum incrementally instead of recomputing it.
TEST(TcpSegment, IncrementalPatchAfterDstRewrite) {
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    TcpSegment s = sample();
    s.seq = rng.next_u32();
    Bytes random(rng.uniform(0, 300));
    for (auto& b : random) b = static_cast<std::uint8_t>(rng.next_u32());
    s.payload = random;

    const ip::Ipv4 new_dst{rng.next_u32()};
    Bytes wire = s.serialize(kSrc, kDst);
    patch_checksum_for_address_change(wire, kDst, new_dst);
    // Must now verify against the *new* pseudo-header...
    EXPECT_TRUE(TcpSegment::parse(wire, kSrc, new_dst).has_value()) << trial;
    // ...and equal a from-scratch serialization's checksum.
    const Bytes fresh = s.serialize(kSrc, new_dst);
    EXPECT_EQ(get_u16(wire, TcpSegment::kChecksumOffset),
              get_u16(fresh, TcpSegment::kChecksumOffset))
        << trial;
  }
}

TEST(TcpSegment, IncrementalPatchAfterSrcRewrite) {
  TcpSegment s = sample();
  const ip::Ipv4 new_src = ip::Ipv4::parse("10.0.0.2");
  Bytes wire = s.serialize(kSrc, kDst);
  patch_checksum_for_address_change(wire, kSrc, new_src);
  EXPECT_TRUE(TcpSegment::parse(wire, new_src, kDst).has_value());
}

TEST(TcpSegment, SummaryMentionsFlags) {
  TcpSegment s = sample();
  s.flags |= Flags::kSyn;
  const std::string txt = s.summary();
  EXPECT_NE(txt.find("SYN"), std::string::npos);
  EXPECT_NE(txt.find("ack="), std::string::npos);
}

}  // namespace
}  // namespace tfo::tcp
