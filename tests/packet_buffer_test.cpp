// Tests for the zero-copy wire buffer pipeline:
//   * PacketBuffer ownership semantics — sharing, copy-on-write, offset
//     trims, in-place header prepends, Ethernet-padding appends;
//   * byte-identity of the in-place serializers (TcpSegment::take_wire,
//     IpDatagram::to_wire) against the legacy copying serializers;
//   * the §3.1 property: an in-place incremental checksum patch after an
//     address rewrite agrees with a full pseudo-header recompute, across
//     randomized segments and the one's-complement zero edge cases;
//   * Ethernet minimum-frame regression: a runt TCP segment is padded on
//     the wire and the padding is trimmed away by the IP total_length on
//     parse, leaving the TCP checksum valid.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "ip/datagram.hpp"
#include "net/frame.hpp"
#include "net/medium.hpp"
#include "net/nic.hpp"
#include "sim/simulator.hpp"
#include "tcp/segment.hpp"
#include "wire/packet_buffer.hpp"

namespace tfo::wire {
namespace {

Bytes seq_bytes(std::size_t n, std::uint8_t start = 0) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(start + i);
  return b;
}

TEST(PacketBuffer, AllocZeroFilledWithReserves) {
  PacketBuffer b = PacketBuffer::alloc(10);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(b.headroom(), PacketBuffer::kDefaultHeadroom);
  EXPECT_GE(b.tailroom(), PacketBuffer::kDefaultTailroom);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i], 0u) << i;
}

TEST(PacketBuffer, AdoptionKeepsBytesNoHeadroom) {
  const Bytes src = seq_bytes(5);
  PacketBuffer b{Bytes(src)};
  EXPECT_EQ(b.headroom(), 0u);
  EXPECT_EQ(to_bytes(b), src);
}

TEST(PacketBuffer, CopySharesStorage) {
  PacketBuffer a = PacketBuffer::copy_of(seq_bytes(64));
  const std::uint64_t shares_before = buffer_stats().shares;
  PacketBuffer b = a;
  EXPECT_EQ(a.data(), b.data());  // same bytes, not a copy
  EXPECT_FALSE(a.unique());
  EXPECT_FALSE(b.unique());
  EXPECT_EQ(buffer_stats().shares, shares_before + 1);
}

TEST(PacketBuffer, MutationCopiesOnWrite) {
  PacketBuffer a = PacketBuffer::copy_of(seq_bytes(16));
  PacketBuffer b = a;
  b[3] = 0xff;  // non-const access unshares first
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(a[3], 3u);  // original untouched
  EXPECT_EQ(b[3], 0xffu);
  EXPECT_TRUE(a.unique());
  EXPECT_TRUE(b.unique());
}

TEST(PacketBuffer, TrimsAreOffsetOnlyAndSafeWhenShared) {
  PacketBuffer a = PacketBuffer::copy_of(seq_bytes(20));
  PacketBuffer b = a;
  b.trim_front(5);
  b.trim_to(10);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(b.data(), a.data() + 5);  // still the same storage
  EXPECT_EQ(b[0], 5u);
  EXPECT_EQ(to_bytes(a), seq_bytes(20));  // untouched
}

TEST(PacketBuffer, PrependUsesHeadroomInPlace) {
  PacketBuffer b = PacketBuffer::copy_of(seq_bytes(8));
  const std::uint8_t* payload_at = b.data();
  const std::uint64_t allocs_before = buffer_stats().allocations;
  std::uint8_t* h = b.prepend(20);
  EXPECT_EQ(buffer_stats().allocations, allocs_before);  // no new storage
  EXPECT_EQ(h, payload_at - 20);
  EXPECT_EQ(b.size(), 28u);
  EXPECT_EQ(b.data() + 20, payload_at);  // payload bytes never moved
  EXPECT_EQ(b[20], 0u);
  EXPECT_EQ(b[27], 7u);
}

TEST(PacketBuffer, PrependOnSharedStorageLeavesSiblingIntact) {
  PacketBuffer a = PacketBuffer::copy_of(seq_bytes(8));
  PacketBuffer b = a;  // shares storage — and conceptually "owns" the bytes
  std::uint8_t* h = b.prepend(4);
  for (int i = 0; i < 4; ++i) h[i] = 0xee;
  EXPECT_EQ(to_bytes(a), seq_bytes(8));  // sibling sees no header bytes
  EXPECT_EQ(b.size(), 12u);
  EXPECT_EQ(b[4], 0u);
}

TEST(PacketBuffer, AppendZeroFillsInTailroom) {
  PacketBuffer b = PacketBuffer::copy_of(seq_bytes(10));
  const std::uint8_t* at = b.data();
  const std::uint64_t allocs_before = buffer_stats().allocations;
  std::uint8_t* t = b.append(36);  // within kDefaultTailroom
  EXPECT_EQ(buffer_stats().allocations, allocs_before);
  EXPECT_EQ(b.data(), at);
  EXPECT_EQ(b.size(), 46u);
  for (int i = 0; i < 36; ++i) EXPECT_EQ(t[i], 0u) << i;
}

TEST(PacketBuffer, UnshareDetaches) {
  PacketBuffer a = PacketBuffer::copy_of(seq_bytes(12));
  PacketBuffer b = a;
  b.unshare();
  EXPECT_TRUE(a.unique());
  EXPECT_TRUE(b.unique());
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(a, b);  // contents equal
}

TEST(PacketBuffer, AssignReservesHeadroom) {
  const Bytes src = seq_bytes(32);
  PacketBuffer b;
  b.assign(src.begin(), src.end());
  EXPECT_EQ(b.headroom(), PacketBuffer::kDefaultHeadroom);
  EXPECT_EQ(to_bytes(b), src);
}

}  // namespace
}  // namespace tfo::wire

namespace tfo::tcp {
namespace {

const ip::Ipv4 kSrc = ip::Ipv4::parse("10.0.0.10");
const ip::Ipv4 kDst = ip::Ipv4::parse("10.0.0.1");

TcpSegment random_segment(Rng& rng) {
  TcpSegment s;
  s.src_port = static_cast<std::uint16_t>(rng.next_u32());
  s.dst_port = static_cast<std::uint16_t>(rng.next_u32());
  s.seq = rng.next_u32();
  s.ack = rng.next_u32();
  s.flags = Flags::kAck | (rng.bernoulli(0.3) ? Flags::kPsh : 0);
  s.window = static_cast<std::uint16_t>(rng.next_u32());
  if (rng.bernoulli(0.3)) s.mss = static_cast<std::uint16_t>(rng.next_u32());
  if (rng.bernoulli(0.3)) s.orig_dst = ip::Ipv4{rng.next_u32()};
  Bytes payload(rng.uniform(0, 200));
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u32());
  s.payload = payload;
  return s;
}

// take_wire() (in-place header prepend into the payload's headroom) must
// produce exactly the bytes of the legacy copying serializer.
TEST(WireIdentity, TcpTakeWireMatchesSerialize) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    TcpSegment s = random_segment(rng);
    const Bytes legacy = s.serialize(kSrc, kDst);
    wire::PacketBuffer w = s.take_wire(kSrc, kDst);
    EXPECT_TRUE(s.payload.empty());  // consumed
    EXPECT_EQ(to_bytes(w), legacy) << trial;
  }
}

TEST(WireIdentity, IpToWireMatchesSerialize) {
  Rng rng(12);
  for (int trial = 0; trial < 200; ++trial) {
    ip::IpDatagram d;
    d.src = ip::Ipv4{rng.next_u32()};
    d.dst = ip::Ipv4{rng.next_u32()};
    d.proto = rng.bernoulli(0.5) ? ip::Proto::kTcp : ip::Proto::kHeartbeat;
    d.ttl = static_cast<std::uint8_t>(rng.uniform(1, 255));
    d.id = static_cast<std::uint16_t>(rng.next_u32());
    Bytes payload(rng.uniform(0, 300));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u32());
    d.payload = payload;
    const Bytes legacy = d.serialize();
    wire::PacketBuffer w = d.to_wire();
    EXPECT_EQ(to_bytes(w), legacy) << trial;
  }
}

// The composite tx path — TCP header then IP header prepended into the
// same payload allocation — is byte-identical to the legacy chain and
// performs no additional storage allocation once the payload exists.
TEST(WireIdentity, CompositeTcpInIpSingleAllocation) {
  Rng rng(13);
  TcpSegment s = random_segment(rng);
  TcpSegment legacy_seg = s;  // shares payload; legacy path copies anyway

  const Bytes legacy_tcp = legacy_seg.serialize(kSrc, kDst);
  ip::IpDatagram legacy_ip;
  legacy_ip.src = kSrc;
  legacy_ip.dst = kDst;
  legacy_ip.id = 7;
  legacy_ip.payload = legacy_tcp;
  const Bytes legacy_wire = legacy_ip.serialize();

  // New path: payload -> TCP header prepend -> IP header prepend.
  s.payload.unshare();  // detach from legacy_seg's share of the storage
  const std::uint64_t allocs_before = wire::buffer_stats().allocations;
  ip::IpDatagram d;
  d.src = kSrc;
  d.dst = kDst;
  d.id = 7;
  d.payload = s.take_wire(kSrc, kDst);
  wire::PacketBuffer w = d.to_wire();
  EXPECT_EQ(wire::buffer_stats().allocations, allocs_before);
  EXPECT_EQ(to_bytes(w), legacy_wire);
}

// §3.1 property: patching the checksum in place on the shared wire buffer
// after a destination rewrite yields a segment that (a) verifies against
// the new pseudo-header, (b) carries the same checksum a from-scratch
// serialization would (modulo the documented 0x0000/0xFFFF equivalence),
// and (c) never corrupts another holder of the same storage.
TEST(ChecksumProperty, InPlacePatchEqualsRecompute) {
  Rng rng(17);
  for (int trial = 0; trial < 300; ++trial) {
    TcpSegment s = random_segment(rng);
    TcpSegment fresh_copy = s;
    const ip::Ipv4 new_dst{rng.next_u32()};

    wire::PacketBuffer wire = s.take_wire(kSrc, kDst);
    wire::PacketBuffer pending = wire;  // a second holder, e.g. an rx delivery
    const Bytes pending_before = to_bytes(pending);

    patch_checksum_for_address_change(wire, kDst, new_dst);

    // (a) verifies under the new pseudo-header.
    EXPECT_TRUE(TcpSegment::parse(wire, kSrc, new_dst).has_value()) << trial;
    // (b) agrees with a full recompute, except incremental never emits
    // 0x0000 (it says 0xFFFF instead; both verify).
    const Bytes fresh = fresh_copy.serialize(kSrc, new_dst);
    const std::uint16_t got = get_u16(wire, TcpSegment::kChecksumOffset);
    const std::uint16_t want = get_u16(fresh, TcpSegment::kChecksumOffset);
    EXPECT_TRUE(got == want || (got == 0xffff && want == 0x0000))
        << trial << " got=" << got << " want=" << want;
    // (c) copy-on-write protected the sharing holder.
    EXPECT_EQ(to_bytes(pending), pending_before) << trial;
  }
}

// Engineers the one's-complement zero edge cases explicitly: a segment
// whose full checksum is 0x0000, patched away from and back toward the
// address where that happens.
TEST(ChecksumProperty, ZeroChecksumEdgeCases) {
  TcpSegment s;
  s.src_port = 1000;
  s.dst_port = 2000;
  s.seq = 42;
  s.ack = 43;
  s.flags = Flags::kAck;
  s.window = 100;

  // Choose the last two payload bytes so serialize(kSrc, kDst) has
  // checksum 0x0000: with the field zeroed the checksum is ~S, and
  // setting the field to 0xffff - S makes the folded sum 0xffff.
  Bytes payload(32, 0);
  s.payload = payload;
  const Bytes probe = s.serialize(kSrc, kDst);
  const std::uint16_t ck = get_u16(probe, TcpSegment::kChecksumOffset);
  const std::uint16_t fill = static_cast<std::uint16_t>(
      0xffff - static_cast<std::uint16_t>(~ck & 0xffff));
  payload[30] = static_cast<std::uint8_t>(fill >> 8);
  payload[31] = static_cast<std::uint8_t>(fill & 0xff);
  s.payload = payload;
  TcpSegment copy = s;
  ASSERT_EQ(get_u16(copy.serialize(kSrc, kDst), TcpSegment::kChecksumOffset),
            0x0000);

  const ip::Ipv4 other = ip::Ipv4::parse("172.16.5.5");

  // Away from the zero point: old checksum is 0x0000; the patched segment
  // must verify under the new destination.
  {
    TcpSegment away = s;
    wire::PacketBuffer w = away.take_wire(kSrc, kDst);
    patch_checksum_for_address_change(w, kDst, other);
    EXPECT_TRUE(TcpSegment::parse(w, kSrc, other).has_value());
  }

  // Toward the zero point: a full recompute would say 0x0000; the
  // incremental patch is normalized to 0xFFFF and must still verify.
  {
    TcpSegment toward = s;
    wire::PacketBuffer w = toward.take_wire(kSrc, other);
    patch_checksum_for_address_change(w, other, kDst);
    EXPECT_NE(get_u16(w, TcpSegment::kChecksumOffset), 0x0000);
    EXPECT_EQ(get_u16(w, TcpSegment::kChecksumOffset), 0xffff);
    EXPECT_TRUE(TcpSegment::parse(w, kSrc, kDst).has_value());
  }
}

// Ethernet minimum-frame regression: a runt TCP-in-IP frame is physically
// padded to 46 payload bytes by the sending NIC, and the receiver's IP
// parse trims the padding via total_length, leaving the TCP checksum
// valid over exactly the original segment.
TEST(EthernetPadding, RuntFrameRoundTripsThroughPadding) {
  sim::Simulator sim;
  net::SharedMediumParams mp;
  net::SharedMedium medium(sim, mp);
  net::NicParams np;
  net::Nic a(sim, "a", net::MacAddress::from_id(1), np);
  net::Nic b(sim, "b", net::MacAddress::from_id(2), np);

  wire::PacketBuffer delivered;
  std::size_t wire_payload_len = 0;
  b.set_rx_handler([&](const net::EthernetFrame& f, bool) {
    wire_payload_len = f.payload.size();
    delivered = f.payload;
  });
  a.attach(medium);
  b.attach(medium);

  TcpSegment s;
  s.src_port = 5;
  s.dst_port = 6;
  s.flags = Flags::kAck;
  s.payload = to_bytes("hi");  // 2 bytes: 20 TCP + 20 IP + 2 = 42 < 46

  ip::IpDatagram d;
  d.src = kSrc;
  d.dst = kDst;
  d.payload = s.take_wire(kSrc, kDst);
  const std::size_t true_len = d.total_length();
  ASSERT_LT(true_len, net::EthernetFrame::kMinPayload);

  net::EthernetFrame f;
  f.dst = b.mac();
  f.type = net::EtherType::kIpv4;
  f.payload = d.to_wire();
  a.send(std::move(f));
  sim.run();

  // Physically padded on the wire...
  ASSERT_EQ(wire_payload_len, net::EthernetFrame::kMinPayload);
  // ...trimmed back by IP total_length on parse...
  auto dgram = ip::IpDatagram::parse(delivered);
  ASSERT_TRUE(dgram.has_value());
  EXPECT_EQ(ip::IpDatagram::kHeaderBytes + dgram->payload.size(), true_len);
  // ...and the TCP checksum verifies over exactly the unpadded segment.
  auto seg = TcpSegment::parse(dgram->payload, dgram->src, dgram->dst);
  ASSERT_TRUE(seg.has_value());
  EXPECT_EQ(to_bytes(seg->payload), to_bytes("hi"));
}

}  // namespace
}  // namespace tfo::tcp
