// Reintegration of replacement replicas — the paper's other named-but-
// out-of-scope item ("Reintegration of failed servers is beyond the scope
// of this paper"). Scope here: a fresh recruit becomes the new secondary;
// connections established after reintegration are fully replicated again;
// connections predating it keep running unreplicated on the survivor.
#include <gtest/gtest.h>

#include "failover_fixture.hpp"

namespace tfo::core {
namespace {

using test::kEchoPort;
using test::make_replicated_lan;
using test::run_until;

struct ReintegrationFixture : ::testing::Test {
  std::unique_ptr<test::ReplicatedLan> r;
  apps::Host* recruit = nullptr;
  std::unique_ptr<apps::EchoServer> echo_recruit;

  void build() {
    r = make_replicated_lan();
    recruit = &r->add_host("recruit", "10.0.0.30", 303);
    echo_recruit = std::make_unique<apps::EchoServer>(recruit->tcp(), kEchoPort);
  }
};

TEST_F(ReintegrationFixture, AfterSecondaryFailureNewConnectionsReplicate) {
  build();
  // Lose the secondary; the primary recovers per §6.
  r->group->crash_secondary();
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return r->group->primary_bridge().secondary_failed();
  }, seconds(10)));

  // A connection opened while unreplicated...
  test::EchoDriver old_conn(r->client(), r->primary().address(), kEchoPort, 5000, 500);
  ASSERT_TRUE(run_until(r->sim(), [&] { return old_conn.done(); }, seconds(60)));

  r->group->reintegrate_secondary(*recruit);
  r->sim().run_for(milliseconds(100));

  // ...keeps working after reintegration (still unreplicated),
  old_conn.pump();
  test::EchoDriver new_conn(r->client(), r->primary().address(), kEchoPort, 20000, 2000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return new_conn.done(); }, seconds(120)));
  EXPECT_TRUE(new_conn.verify());
  // ...while the new connection is served by BOTH replicas.
  EXPECT_EQ(echo_recruit->bytes_echoed(), 20000u);
  EXPECT_GE(r->group->primary_bridge().merged_segments_sent(), 1u);
}

TEST_F(ReintegrationFixture, NewConnectionsSurviveNextPrimaryCrash) {
  build();
  r->group->crash_secondary();
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return r->group->primary_bridge().secondary_failed();
  }, seconds(10)));
  r->group->reintegrate_secondary(*recruit);
  r->sim().run_for(milliseconds(100));

  test::EchoDriver d(r->client(), r->primary().address(), kEchoPort, 80 * 1024, 4096);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.received().size() > 30 * 1024; },
                        seconds(120)));
  // Second failure in the system's lifetime: the original primary dies;
  // the recruit takes over.
  r->group->crash_primary();
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(300)));
  EXPECT_TRUE(d.verify());
  EXPECT_TRUE(r->group->secondary_bridge().taken_over());
  EXPECT_TRUE(recruit->ip().is_local(r->primary().address()));
}

TEST_F(ReintegrationFixture, AfterPrimaryFailureSurvivorPairsWithRecruit) {
  build();
  // The primary dies; the old secondary takes over the service address.
  test::EchoDriver old_conn(r->client(), r->primary().address(), kEchoPort, 20000, 2000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return old_conn.received().size() > 5000; }));
  r->group->crash_primary();
  ASSERT_TRUE(run_until(r->sim(), [&] { return old_conn.done(); }, seconds(120)));
  EXPECT_TRUE(old_conn.verify());

  r->group->reintegrate_secondary(*recruit);
  EXPECT_EQ(&r->group->current_server(), r->lan->secondary.get());
  r->sim().run_for(milliseconds(100));

  // The surviving old connection still flows, unreplicated.
  old_conn.pump();
  // New connections are replicated on (survivor, recruit).
  test::EchoDriver new_conn(r->client(), r->primary().address(), kEchoPort, 30000, 2000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return new_conn.done(); }, seconds(120)));
  EXPECT_TRUE(new_conn.verify());
  EXPECT_EQ(echo_recruit->bytes_echoed(), 30000u);
}

TEST_F(ReintegrationFixture, FullRepairCycleSurvivesTwoFailures) {
  build();
  // Failure #1: primary dies; survivor takes over; recruit reintegrates.
  r->group->crash_primary();
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return r->group->secondary_bridge().taken_over();
  }, seconds(10)));
  r->sim().run_for(milliseconds(100));
  r->group->reintegrate_secondary(*recruit);
  r->sim().run_for(milliseconds(100));

  test::EchoDriver d(r->client(), r->primary().address(), kEchoPort, 60 * 1024, 4096);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.received().size() > 20 * 1024; },
                        seconds(120)));
  // Failure #2: the current server (the first failover's survivor) dies;
  // the recruit performs the *second* takeover of the same service
  // address and carries the connection home.
  r->group->current_server().fail();
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(300)));
  EXPECT_TRUE(d.verify());
  EXPECT_TRUE(recruit->ip().is_local(r->primary().address()));
}

}  // namespace
}  // namespace tfo::core
