// Shared pieces of the attack-soak harness: the off-path adversary
// profile matrix and the oracle-checked scenario runner. Used by
// tests/attack_soak_test.cpp and bench/bench_attack.cpp so the bench
// exercises exactly the profiles the regression tests pin — a red oracle
// in the bench reproduces under the soak test with the same seed.
//
// The threat model (PROTOCOL.md §9): a blind off-path attacker who knows
// the service 4-tuple (addresses, service port, and the deterministic
// ephemeral-port range) but none of the sequence numbers or the
// heartbeat key. The oracles assert the strongest property the RFC 5961
// defenses give: the attack stream is absorbed — challenged, rate
// limited, or dropped at the bridges — while the legitimate transfer
// completes byte-identical with zero attacker-caused teardowns.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "apps/attacker.hpp"
#include "impairment_util.hpp"

namespace tfo::test {

struct AttackProfile {
  std::string name;
  std::vector<apps::AttackKind> kinds;
  double rate = 4000.0;
  /// Informed attackers aim sequence guesses near the live connection's
  /// windows (a partial-information adversary) — the hard case for the
  /// challenge-ACK and spoof-gate paths. Blind attackers sweep.
  bool informed = false;
  /// Also hint the ACK field. Deliberately NOT set for the data-injection
  /// profile: an off-path attacker holding both an in-window sequence AND
  /// an acceptable ACK is indistinguishable from the genuine peer — that
  /// is beyond RFC 5961's threat model (it is what TLS is for). With the
  /// ACK blind, §5.2 must drop every payload whole.
  bool ack_informed = false;
  /// Adds a second injector forging heartbeats at the secondary, spoofed
  /// from the primary's address with a wrong key — the failover-
  /// suppression attack (the run must still fail over on time).
  bool forge_heartbeats = false;
};

inline std::vector<AttackProfile> attack_profiles() {
  using apps::AttackKind;
  return {
      {.name = "blind_rst", .kinds = {AttackKind::kBlindRst}},
      {.name = "informed_rst_syn",
       .kinds = {AttackKind::kBlindRst, AttackKind::kBlindSyn},
       .informed = true},
      {.name = "inject_data",
       .kinds = {AttackKind::kBlindData},
       .informed = true},
      {.name = "ack_probe",
       .kinds = {AttackKind::kAckProbe},
       .informed = true,
       .ack_informed = true},
      {.name = "icmp_hb",
       .kinds = {AttackKind::kIcmpFrag},
       .rate = 2000.0,
       .informed = true,
       .forge_heartbeats = true},
  };
}

/// Counts RSTs that land on one specific local port at `nic` — the only
/// resets that could tear the observed connection down. Spoofed data or
/// ACK probes naming ports with no connection legitimately draw an
/// RFC 793 reset back to the (spoofed) client address; those are inert —
/// the client has no connection on those ports either — and deliberately
/// not counted: the oracle is "no client-visible RST *teardown*", not
/// "the wire is silent".
class ConnRstCounter {
 public:
  ConnRstCounter(sim::Simulator& sim, net::Nic& nic, std::uint16_t local_port) {
    nic.add_observer([this, &sim, local_port, name = nic.name()](
                         const net::EthernetFrame& f, bool to_us) {
      if (!to_us) return;
      const auto rec = apps::FrameTracer::decode(f, to_us, sim.now(), name);
      if (rec.has_tcp && (rec.flags & tcp::Flags::kRst) &&
          rec.dst_port == local_port) {
        ++count_;
      }
    });
  }
  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

struct AttackRunResult {
  // Oracles, in reporting order.
  bool completed = false;       // transfer finished under attack
  bool stream_intact = false;   // echoed bytes identical (no data poisoning)
  bool no_client_rst = false;   // no RST aimed at the client's connection
  bool no_divergence = false;   // replicas never declared divergent
  bool conn_survived = false;   // the attacked connection was never torn down
  bool attack_engaged = false;  // injections happened and defenses fired

  double transfer_ms = -1;
  std::uint64_t injected = 0;
  std::uint64_t spoof_dropped = 0;
  std::uint64_t challenge_acks = 0;
  std::uint64_t challenge_limited = 0;
  std::uint64_t icmp_rejected = 0;
  std::uint64_t hb_auth_failed = 0;

  bool all_green() const {
    return completed && stream_intact && no_client_rst && no_divergence &&
           conn_survived && attack_engaged;
  }
};

/// One matrix cell: an echo transfer on the replicated LAN with an
/// off-path injector attached to the wire, optionally crashing the
/// primary at one third of the stream. `trace_out`, when non-null,
/// receives a canonical dump of every frame the client saw (for the
/// determinism cross-checks). `capture`, when set, is invoked with each
/// replica host after the run so callers can snapshot registries before
/// the topology is torn down (the bench artifact's hosts[] section).
inline AttackRunResult run_attack_scenario(
    const AttackProfile& prof, std::uint64_t seed, bool fail_primary,
    std::size_t total, std::string* trace_out = nullptr,
    apps::LanParams lp = {},
    const std::function<void(apps::Host&)>& capture = nullptr) {
  lp.tcp.max_rto = seconds(5);
  core::FailoverConfig cfg;
  cfg.heartbeat_period = milliseconds(5);
  cfg.failure_timeout = milliseconds(200);
  auto r = make_replicated_lan(lp, cfg);
  auto tracer = trace_out
                    ? std::make_unique<apps::FrameTracer>(r->sim(), r->client().nic())
                    : nullptr;
  apps::Host& mallory = r->add_host("mallory", "10.0.0.66", seed ^ 0xa77ac3);

  const SimTime start = r->sim().now();
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, total, 1500);
  AttackRunResult res;
  if (!run_until(r->sim(), [&] {
        return d.connection().state() == tcp::TcpState::kEstablished;
      }, seconds(30))) {
    return res;
  }
  ConnRstCounter rsts(r->sim(), r->client().nic(),
                      d.connection().key().local_port);

  apps::AttackerConfig ac;
  ac.victim = r->primary().address();
  ac.spoof_src = r->client().address();
  ac.victim_port = kEchoPort;
  ac.kinds = prof.kinds;
  ac.rate = prof.rate;
  ac.duration = seconds(600);
  ac.seed = seed;
  if (prof.informed) {
    // Partial information: the attacker aims near the connection's live
    // windows. Its receive-space hint comes from the primary's RCV.NXT,
    // its send-space (ACK) hint from the client's RCV.NXT.
    const tcp::ConnKey pk{r->primary().address(), kEchoPort,
                          r->client().address(),
                          d.connection().key().local_port};
    if (const auto pc = r->primary().tcp().find(pk)) {
      ac.seq_hint = pc->rcv_nxt_abs();
      ac.seq_spread = 1u << 17;
    }
    if (prof.ack_informed) ac.ack_hint = d.connection().rcv_nxt_abs();
  }
  apps::Attacker attacker(mallory, ac);
  attacker.start();

  std::unique_ptr<apps::Attacker> hb_attacker;
  if (prof.forge_heartbeats) {
    apps::AttackerConfig hc;
    hc.victim = r->secondary().address();
    hc.spoof_src = r->primary().address();
    hc.kinds = {apps::AttackKind::kForgedHeartbeat};
    hc.rate = 1000.0;
    hc.duration = seconds(600);
    hc.seed = seed + 1;
    hb_attacker = std::make_unique<apps::Attacker>(mallory, hc);
    hb_attacker->start();
  }

  if (fail_primary) {
    if (!run_until(r->sim(), [&] { return d.received().size() > total / 3; },
                   seconds(600))) {
      return res;
    }
    r->group->crash_primary();
  }
  if (!run_until(r->sim(), [&] { return d.done(); }, seconds(1200))) {
    return res;
  }
  res.completed = true;
  res.transfer_ms =
      to_milliseconds(static_cast<SimDuration>(r->sim().now() - start));
  res.stream_intact = d.verify();
  res.no_client_rst = rsts.count() == 0;
  res.no_divergence = r->group->primary_bridge().divergences() == 0;
  res.conn_survived = !d.close_reason().has_value();

  res.injected = attacker.injected() + (hb_attacker ? hb_attacker->injected() : 0);
  for (apps::Host* h : {&r->primary(), &r->secondary()}) {
    const auto& reg = h->obs().registry;
    res.spoof_dropped += reg.counter_value("bridge.spoof_dropped");
    res.challenge_acks += reg.counter_value("tcp.challenge_acks");
    res.challenge_limited += reg.counter_value("tcp.challenge_acks_limited");
    res.icmp_rejected += reg.counter_value("tcp.icmp_rejected");
    res.hb_auth_failed += reg.counter_value("fault.hb_auth_failed");
  }
  // Engagement: injections flowed, and — for attackers with enough
  // information to land near the windows — at least one defense visibly
  // fired. (A fully blind sweep may legitimately die entirely at the
  // out-of-window silent-drop path.)
  std::uint64_t defenses = res.spoof_dropped + res.challenge_acks +
                           res.icmp_rejected + res.hb_auth_failed;
  res.attack_engaged =
      res.injected > 0 &&
      (!(prof.informed || prof.forge_heartbeats) || defenses > 0);

  if (capture) {
    capture(r->primary());
    capture(r->secondary());
    capture(r->client());
  }
  if (trace_out) *trace_out = tracer->dump();
  return res;
}

}  // namespace tfo::test
