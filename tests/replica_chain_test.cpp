// Tests for N-way daisy-chained replication (the paper's §1 extension):
// fault-free operation and every crash pattern of 3- and 4-member chains,
// always asserting the client's byte stream is exactly preserved.
#include <gtest/gtest.h>

#include "apps/echo.hpp"
#include "core/replica_chain.hpp"
#include "failover_fixture.hpp"

namespace tfo::core {
namespace {

using test::kEchoPort;
using test::run_until;

struct ChainFixture : ::testing::Test {
  std::unique_ptr<apps::Lan> lan;
  std::vector<std::unique_ptr<apps::Host>> extra_hosts;
  std::vector<apps::Host*> servers;
  std::vector<std::unique_ptr<apps::EchoServer>> echoes;
  std::unique_ptr<ReplicaChain> chain;

  /// Builds a chain of `n` replicas: H0 = lan->primary (service address),
  /// H1 = lan->secondary, H2+ are extra hosts on the same wire.
  void build(std::size_t n, apps::LanParams lp = {}) {
    lan = apps::make_lan(lp);
    servers = {lan->primary.get(), lan->secondary.get()};
    for (std::size_t i = 2; i < n; ++i) {
      apps::HostParams hp;
      hp.name = "backup" + std::to_string(i);
      hp.addr = ip::Ipv4::parse(("10.0.0." + std::to_string(20 + i)).c_str());
      hp.nic = lp.nic;
      hp.tcp = lp.tcp;
      hp.seed = 100 + i;
      auto host = std::make_unique<apps::Host>(lan->sim, hp, *lan->wire);
      servers.push_back(host.get());
      extra_hosts.push_back(std::move(host));
    }
    // Warm ARP everywhere (including the client).
    std::vector<apps::Host*> all = servers;
    all.push_back(lan->client.get());
    for (auto* a : all) {
      for (auto* b : all) {
        if (a != b) a->arp().add_static(b->address(), b->nic().mac());
      }
    }
    FailoverConfig cfg;
    cfg.ports = {kEchoPort};
    chain = std::make_unique<ReplicaChain>(servers, cfg);
    for (auto* s : servers) {
      echoes.push_back(std::make_unique<apps::EchoServer>(s->tcp(), kEchoPort));
    }
    chain->start();
  }

  /// Runs a full transfer, crashing members at the given received-byte
  /// thresholds; returns driver success.
  void run_with_crashes(std::vector<std::pair<std::size_t, std::size_t>> crashes,
                        std::size_t total = 120 * 1024) {
    test::EchoDriver d(*lan->client, servers[0]->address(), kEchoPort, total, 4096);
    for (auto [member, at_bytes] : crashes) {
      ASSERT_TRUE(run_until(lan->sim, [&] { return d.received().size() >= at_bytes; },
                            seconds(600)))
          << "stalled before crash of member " << member << " at "
          << d.received().size();
      chain->crash(member);
    }
    ASSERT_TRUE(run_until(lan->sim, [&] { return d.done(); }, seconds(600)))
        << "stalled at " << d.received().size() << "/" << total;
    EXPECT_TRUE(d.verify());
    EXPECT_FALSE(d.close_reason().has_value());
  }
};

TEST_F(ChainFixture, ThreeWayFaultFreeReplicatesToAll) {
  build(3);
  test::EchoDriver d(*lan->client, servers[0]->address(), kEchoPort, 50000, 2000);
  ASSERT_TRUE(run_until(lan->sim, [&] { return d.done(); }, seconds(300)));
  EXPECT_TRUE(d.verify());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(echoes[i]->bytes_echoed(), 50000u) << "replica " << i;
  }
}

TEST_F(ChainFixture, ClientSynchronizedToTailSequenceSpace) {
  build(3);
  auto conn = lan->client->tcp().connect(servers[0]->address(), kEchoPort,
                                         {.nodelay = true});
  Bytes got;
  conn->on_established = [&] { conn->send(to_bytes("ping-the-chain")); };
  conn->on_readable = [&] { conn->recv(got); };
  ASSERT_TRUE(run_until(lan->sim, [&] { return got.size() == 14; }, seconds(60)));
  // The tail's TCP connection and the client agree on byte counts; the
  // wire sequence numbers the client sees are the tail's (checked
  // indirectly: head/middle ISNs differ yet the stream works, and the
  // merge bridges report no divergence).
  const tcp::ConnKey tail_key{servers[2]->address(), kEchoPort,
                              lan->client->address(), conn->key().local_port};
  auto tail_conn = servers[2]->tcp().find(tail_key);
  ASSERT_NE(tail_conn, nullptr);
  EXPECT_EQ(tail_conn->bytes_sent_total(), conn->bytes_received_total());
  EXPECT_EQ(chain->merge_bridge(0)->divergences(), 0u);
  EXPECT_EQ(chain->merge_bridge(1)->divergences(), 0u);
}

TEST_F(ChainFixture, HeadCrashPromotesSecond) {
  build(3);
  run_with_crashes({{0, 40 * 1024}});
  EXPECT_EQ(chain->head(), servers[1]);
  EXPECT_TRUE(chain->divert_bridge(1)->taken_over());
  EXPECT_TRUE(servers[1]->ip().is_local(servers[0]->address()));
}

TEST_F(ChainFixture, MiddleCrashBridgesAroundIt) {
  build(3);
  run_with_crashes({{1, 40 * 1024}});
  EXPECT_EQ(chain->head(), servers[0]);
  // The tail now diverts straight to the head (the service address).
  EXPECT_EQ(chain->divert_bridge(2)->divert_to(), servers[0]->address());
}

TEST_F(ChainFixture, TailCrashLeavesPairRunning) {
  build(3);
  run_with_crashes({{2, 40 * 1024}});
  // The middle member finished the chain solo below the head.
  EXPECT_TRUE(chain->merge_bridge(1)->secondary_failed());
  EXPECT_FALSE(chain->merge_bridge(0)->secondary_failed());
}

TEST_F(ChainFixture, HeadThenMiddleLeavesTailServing) {
  build(3);
  run_with_crashes({{0, 30 * 1024}, {1, 70 * 1024}});
  EXPECT_EQ(chain->head(), servers[2]);
  EXPECT_TRUE(servers[2]->ip().is_local(servers[0]->address()));
}

TEST_F(ChainFixture, HeadThenTailLeavesMiddleServing) {
  build(3);
  run_with_crashes({{0, 30 * 1024}, {2, 70 * 1024}});
  EXPECT_EQ(chain->head(), servers[1]);
  EXPECT_TRUE(chain->merge_bridge(1)->secondary_failed());
}

TEST_F(ChainFixture, TailThenHeadLeavesMiddleServing) {
  build(3);
  run_with_crashes({{2, 30 * 1024}, {0, 70 * 1024}});
  EXPECT_EQ(chain->head(), servers[1]);
}

TEST_F(ChainFixture, MiddleThenHeadLeavesTailServing) {
  build(3);
  run_with_crashes({{1, 30 * 1024}, {0, 70 * 1024}});
  EXPECT_EQ(chain->head(), servers[2]);
}

TEST_F(ChainFixture, FourWayChainSurvivesThreeSequentialCrashes) {
  build(4);
  run_with_crashes({{0, 20 * 1024}, {1, 60 * 1024}, {2, 100 * 1024}},
                   160 * 1024);
  EXPECT_EQ(chain->head(), servers[3]);
  EXPECT_EQ(chain->alive_count(), 1u);
}

TEST_F(ChainFixture, FourWayChainSurvivesOutOfOrderCrashes) {
  build(4);
  // Kill the two middles first, then the head: tail must end up serving.
  run_with_crashes({{2, 20 * 1024}, {1, 60 * 1024}, {0, 100 * 1024}},
                   160 * 1024);
  EXPECT_EQ(chain->head(), servers[3]);
}

TEST_F(ChainFixture, NewConnectionsServedAfterHeadPromotion) {
  build(3);
  chain->crash(0);
  ASSERT_TRUE(run_until(lan->sim, [&] {
    return chain->divert_bridge(1)->taken_over();
  }, seconds(10)));
  lan->sim.run_for(milliseconds(50));
  test::EchoDriver d(*lan->client, servers[0]->address(), kEchoPort, 30000, 2000);
  ASSERT_TRUE(run_until(lan->sim, [&] { return d.done(); }, seconds(300)));
  EXPECT_TRUE(d.verify());
  // Both survivors replicated the new session.
  EXPECT_EQ(echoes[1]->bytes_echoed(), echoes[2]->bytes_echoed());
}

TEST_F(ChainFixture, ChainWithLossStillExact) {
  apps::LanParams lp;
  lp.medium.loss_probability = 0.03;
  lp.medium.loss_seed = 99;
  lp.tcp.max_rto = seconds(5);
  build(3, lp);
  run_with_crashes({{0, 40 * 1024}}, 80 * 1024);
}

}  // namespace
}  // namespace tfo::core
