// TCP loss-recovery machinery: RTO with exponential backoff and reset,
// Tahoe-style go-back-N refill, fast retransmit, persist probing, and
// retransmission-limit abort.
#include <gtest/gtest.h>

#include "apps/echo.hpp"
#include "apps/topology.hpp"
#include "apps/trace.hpp"
#include "ip/datagram.hpp"
#include "test_util.hpp"

namespace tfo::tcp {
namespace {

using apps::Lan;
using apps::LanParams;
using apps::make_lan;
using test::run_until;

struct RetxFixture : ::testing::Test {
  std::unique_ptr<Lan> lan;
  std::shared_ptr<Connection> server, client;

  void build(LanParams p = {}) {
    lan = make_lan(p);
    lan->primary->tcp().listen(80, [this](std::shared_ptr<Connection> c) {
      server = std::move(c);
    });
    client = lan->client->tcp().connect(lan->primary->address(), 80, {.nodelay = true});
    ASSERT_TRUE(run_until(lan->sim, [&] {
      return server && client->state() == TcpState::kEstablished;
    }));
  }

  /// Drops the next `count` TCP frames with payload from `src_ip`
  /// delivered to `nic_name`.
  void drop_next_data(ip::Ipv4 src_ip, const std::string& nic_name, int count) {
    auto remaining = std::make_shared<int>(count);
    lan->wire->set_loss_fn([=](const net::Nic&, const net::Nic& rx,
                               const net::EthernetFrame& f) {
      if (*remaining <= 0 || rx.name() != nic_name) return false;
      auto d = ip::IpDatagram::parse(f.payload);
      if (!d || d->proto != ip::Proto::kTcp || d->src != src_ip) return false;
      const std::size_t hdr = static_cast<std::size_t>(d->payload[12] >> 4) * 4;
      if (d->payload.size() <= hdr) return false;  // no payload
      --*remaining;
      return true;
    });
  }
};

TEST_F(RetxFixture, RtoRecoversSingleLoss) {
  build();
  drop_next_data(lan->client->address(), "primary.eth0", 1);
  Bytes got;
  server->on_readable = [&] { server->recv(got); };
  client->send(to_bytes("lost-then-found"));
  ASSERT_TRUE(run_until(lan->sim, [&] { return got.size() == 15; }, seconds(30)));
  EXPECT_EQ(to_string(got), "lost-then-found");
  EXPECT_GE(client->info().timeouts, 1u);
}

TEST_F(RetxFixture, RetransmissionSpacingBacksOffExponentially) {
  build();
  // Black-hole all client data; watch retransmission times at the wire.
  lan->wire->set_loss_fn([&](const net::Nic&, const net::Nic& rx,
                             const net::EthernetFrame& f) {
    if (rx.name() != "primary.eth0") return false;
    auto d = ip::IpDatagram::parse(f.payload);
    if (!d || d->proto != ip::Proto::kTcp) return false;
    const std::size_t hdr = static_cast<std::size_t>(d->payload[12] >> 4) * 4;
    return d->payload.size() > hdr;
  });
  apps::FrameTracer at_client_wire(lan->sim, lan->primary->nic());  // unused sink
  std::vector<SimTime> tx_times;
  lan->client->nic().add_observer([&](const net::EthernetFrame& f, bool) {
    (void)f;  // observer on client NIC sees rx only; use a medium-side count
  });
  // Track transmissions via the client's segment counter instead.
  const auto before = client->info().segments_sent;
  client->send(to_bytes("x"));
  std::vector<SimTime> timeout_times;
  std::uint64_t last_timeouts = 0;
  const SimTime deadline = lan->sim.now() + static_cast<SimTime>(seconds(20));
  while (lan->sim.now() < deadline && lan->sim.pending() > 0) {
    lan->sim.step();
    const auto t = client->info().timeouts;
    if (t != last_timeouts) {
      last_timeouts = t;
      timeout_times.push_back(lan->sim.now());
    }
    if (timeout_times.size() >= 5) break;
  }
  ASSERT_GE(timeout_times.size(), 4u);
  // Consecutive gaps double (exponential backoff).
  for (std::size_t i = 2; i < timeout_times.size(); ++i) {
    const double g1 = static_cast<double>(timeout_times[i - 1] - timeout_times[i - 2]);
    const double g2 = static_cast<double>(timeout_times[i] - timeout_times[i - 1]);
    EXPECT_NEAR(g2 / g1, 2.0, 0.2) << "at timeout " << i;
  }
  EXPECT_GT(client->info().segments_sent, before);
}

TEST_F(RetxFixture, BackoffCollapsesAfterRecovery) {
  LanParams p;
  build(p);
  drop_next_data(lan->client->address(), "primary.eth0", 4);  // several timeouts
  Bytes got;
  server->on_readable = [&] { server->recv(got); };
  client->send(to_bytes("abc"));
  ASSERT_TRUE(run_until(lan->sim, [&] { return got.size() == 3; }, seconds(60)));
  const auto inflated = client->info().rto;
  // Exchange fresh data: a clean RTT sample plus ack collapse the RTO.
  lan->wire->set_loss_fn(nullptr);
  client->send(test::pattern_bytes(5000, 1));
  ASSERT_TRUE(run_until(lan->sim, [&] { return got.size() == 5003; }, seconds(30)));
  EXPECT_LT(client->info().rto, inflated);
  EXPECT_LE(client->info().rto, lan->client->tcp().params().min_rto);
}

TEST_F(RetxFixture, FastRetransmitOnTripleDupack) {
  build();
  // Lose exactly one mid-burst segment; the following segments generate
  // dup acks and trigger fast retransmit well before the 200 ms RTO.
  auto dropped = std::make_shared<int>(0);
  auto seen = std::make_shared<int>(0);
  lan->wire->set_loss_fn([=, this](const net::Nic&, const net::Nic& rx,
                                   const net::EthernetFrame& f) {
    if (rx.name() != "primary.eth0" || *dropped > 0) return false;
    auto d = ip::IpDatagram::parse(f.payload);
    if (!d || d->proto != ip::Proto::kTcp || d->src != lan->client->address()) {
      return false;
    }
    const std::size_t hdr = static_cast<std::size_t>(d->payload[12] >> 4) * 4;
    if (d->payload.size() <= hdr) return false;
    if (++*seen == 12) {  // mid-burst, once the window has opened up
      ++*dropped;
      return true;
    }
    return false;
  });
  Bytes got;
  server->on_readable = [&] { server->recv(got); };
  const Bytes data = test::pattern_bytes(30000, 2);
  const SimTime start = lan->sim.now();
  client->send(data);
  ASSERT_TRUE(run_until(lan->sim, [&] { return got.size() == data.size(); },
                        seconds(30)));
  EXPECT_EQ(got, data);
  EXPECT_GE(client->info().fast_retransmits, 1u);
  // Recovered well under the 200ms minimum RTO (fast retransmit path).
  EXPECT_LT(static_cast<SimDuration>(lan->sim.now() - start), milliseconds(150));
}

TEST_F(RetxFixture, GoBackNRefillsWholeGapQuickly) {
  LanParams p;
  p.tcp.congestion_control = false;  // whole 64KB window in flight at once
  build(p);
  // Drop a 20-segment hole out of the initial flight: frames 5..24 of the
  // client's transmission vanish, everything after (including
  // retransmissions) is delivered.
  auto seen = std::make_shared<int>(0);
  lan->wire->set_loss_fn([=, this](const net::Nic&, const net::Nic& rx,
                                   const net::EthernetFrame& f) {
    if (rx.name() != "primary.eth0") return false;
    auto d = ip::IpDatagram::parse(f.payload);
    if (!d || d->proto != ip::Proto::kTcp || d->src != lan->client->address()) {
      return false;
    }
    const std::size_t hdr = static_cast<std::size_t>(d->payload[12] >> 4) * 4;
    if (d->payload.size() <= hdr) return false;
    const int n = ++*seen;
    return n >= 5 && n < 25;
  });
  Bytes got;
  server->on_readable = [&] { server->recv(got); };
  const Bytes data = test::pattern_bytes(64 * 1024, 3);
  const SimTime start = lan->sim.now();
  client->send(data);
  ASSERT_TRUE(run_until(lan->sim, [&] { return got.size() == data.size(); },
                        seconds(60)));
  EXPECT_EQ(got, data);
  // One-segment-per-RTO recovery of a 20-segment gap would need >= 20
  // timeouts; go-back-N refill needs only a few.
  EXPECT_LE(client->info().timeouts, 6u);
  EXPECT_LT(static_cast<SimDuration>(lan->sim.now() - start), seconds(5));
}

TEST_F(RetxFixture, SynLossDelaysButCompletesConnect) {
  auto lan2 = make_lan();
  auto first = std::make_shared<bool>(true);
  lan2->wire->set_loss_fn([=](const net::Nic&, const net::Nic& rx,
                              const net::EthernetFrame& f) {
    if (!*first || rx.name() != "primary.eth0") return false;
    if (f.type != net::EtherType::kIpv4) return false;
    *first = false;
    return true;  // eat the very first SYN
  });
  apps::EchoServer echo(lan2->primary->tcp(), 80);
  const SimTime start = lan2->sim.now();
  auto conn = lan2->client->tcp().connect(lan2->primary->address(), 80);
  ASSERT_TRUE(run_until(lan2->sim, [&] {
    return conn->state() == TcpState::kEstablished;
  }, seconds(30)));
  // Establishment took at least one initial RTO (1s).
  EXPECT_GE(static_cast<SimDuration>(lan2->sim.now() - start), milliseconds(900));
}

TEST_F(RetxFixture, RetransmissionLimitAbortsConnection) {
  LanParams p;
  p.tcp.max_retries = 3;
  p.tcp.min_rto = milliseconds(50);
  p.tcp.initial_rto = milliseconds(100);
  p.tcp.max_rto = milliseconds(400);
  build(p);
  // Permanent black hole for client data after establishment.
  lan->wire->set_loss_fn([&](const net::Nic&, const net::Nic& rx,
                             const net::EthernetFrame& f) {
    if (rx.name() != "primary.eth0") return false;
    auto d = ip::IpDatagram::parse(f.payload);
    return d && d->proto == ip::Proto::kTcp && d->src == lan->client->address();
  });
  CloseReason reason{};
  bool closed = false;
  client->on_closed = [&](CloseReason r) {
    reason = r;
    closed = true;
  };
  client->send(to_bytes("into the void"));
  ASSERT_TRUE(run_until(lan->sim, [&] { return closed; }, seconds(60)));
  EXPECT_EQ(reason, CloseReason::kTimeout);
}

TEST_F(RetxFixture, SrttConvergesToPathRtt) {
  build();
  Bytes got;
  server->on_readable = [&] {
    Bytes b;
    server->recv(b);
    server->send(std::move(b));  // echo
  };
  client->on_readable = [&] { client->recv(got); };
  // Several request/response rounds to feed the estimator.
  std::size_t sent = 0;
  for (int i = 0; i < 20; ++i) {
    client->send(test::pattern_bytes(500, i));
    sent += 500;
    ASSERT_TRUE(run_until(lan->sim, [&] { return got.size() >= sent; }, seconds(30)));
  }
  // LAN RTT here is ~2*(wire + 30us processing) ≈ 80-120us.
  const auto srtt = client->info().srtt;
  EXPECT_GT(srtt, microseconds(20));
  EXPECT_LT(srtt, microseconds(500));
}

TEST_F(RetxFixture, PersistProbesAreSpacedAndBounded) {
  LanParams p;
  p.tcp.recv_buf = 2048;
  build(p);
  // Fill the receiver without draining: window goes to zero.
  client->send(test::pattern_bytes(32 * 1024, 9));
  const auto before = client->info().timeouts;
  lan->sim.run_for(seconds(4));
  const auto probes = client->info().timeouts - before;
  // Persist probing fires, but backs off rather than spamming.
  EXPECT_GE(probes, 2u);
  EXPECT_LE(probes, 12u);
  // Draining the receiver reopens the window and completes the transfer.
  Bytes got;
  server->on_readable = [&] { server->recv(got); };
  server->recv(got);
  ASSERT_TRUE(run_until(lan->sim, [&] { return got.size() == 32 * 1024; },
                        seconds(240)));
}

}  // namespace
}  // namespace tfo::tcp
