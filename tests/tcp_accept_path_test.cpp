// Accept-path hardening tests: listen backlog bounds under SYN bursts,
// single-fire accept across retransmitted SYNs, TIME_WAIT recycling on
// 4-tuple reuse (BSD rule: the new ISN must be strictly newer than the
// old connection's receive point), RFC 1337 TIME-WAIT assassination
// resistance, and ephemeral-port exhaustion/reuse.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/topology.hpp"
#include "test_util.hpp"

namespace tfo::tcp {
namespace {

using apps::Lan;
using apps::LanParams;
using apps::make_lan;
using test::run_until;

struct AcceptPathFixture : ::testing::Test {
  std::unique_ptr<Lan> lan;
  std::vector<std::shared_ptr<Connection>> accepted;

  void build(LanParams p = {}) { lan = make_lan(p); }

  void listen(std::uint16_t port = 80, SocketOptions opts = {}) {
    lan->primary->tcp().listen(
        port,
        [this](std::shared_ptr<Connection> c) { accepted.push_back(std::move(c)); },
        opts);
  }

  std::shared_ptr<Connection> connect(std::uint16_t port = 80,
                                      SocketOptions opts = {}) {
    return lan->client->tcp().connect(lan->primary->address(), port, opts);
  }

  std::uint64_t server_counter(const char* name) {
    return lan->primary->metrics().counter_value(name);
  }

  /// Drops server->client SYN-ACKs so embryonic connections pile up in
  /// the listener; returns the tap id for later removal.
  TapId drop_syn_acks() {
    return lan->primary->tcp().add_outbound_tap(
        [](TcpSegment& seg, ip::Ipv4&, ip::Ipv4&) {
          return (seg.syn() && seg.has_ack()) ? TapVerdict::kDrop
                                              : TapVerdict::kContinue;
        });
  }
};

// A SYN burst beyond the listener's backlog is dropped and counted; the
// embryonic population never exceeds the bound, and once the queue
// drains the dropped clients get in via ordinary SYN retransmission.
TEST_F(AcceptPathFixture, BacklogOverflowDropsExcessSyns) {
  build();
  listen(80, {.backlog = 4});
  const TapId tap = drop_syn_acks();

  std::vector<std::shared_ptr<Connection>> clients;
  for (int i = 0; i < 7; ++i) clients.push_back(connect());
  // Well before the first SYN retransmission (initial RTO 1 s): four
  // embryonic connections hold the backlog, three SYNs were refused.
  lan->sim.run_for(milliseconds(300));
  EXPECT_EQ(server_counter("tcp.listen_overflows"), 3u);
  EXPECT_EQ(server_counter("tcp.listen.80.overflows"), 3u);
  EXPECT_EQ(server_counter("tcp.listen.80.accepted"), 4u);
  EXPECT_TRUE(accepted.empty());  // nobody completed a handshake

  // Queue drains: the pending SYN-ACKs retransmit and establish, freeing
  // backlog slots for the refused clients' SYN retries.
  lan->primary->tcp().remove_tap(tap);
  ASSERT_TRUE(run_until(lan->sim, [&] { return accepted.size() == 7; },
                        seconds(30)));
  for (const auto& c : clients) {
    EXPECT_EQ(c->state(), TcpState::kEstablished);
  }
}

// A retransmitted SYN for an existing embryonic connection must not
// create a second connection or fire the accept handler twice.
TEST_F(AcceptPathFixture, RetransmittedSynDoesNotDoubleAccept) {
  build();
  listen();
  const TapId tap = drop_syn_acks();
  auto client = connect();
  // 1.5 s covers the client's first SYN retransmission; the retry finds
  // the embryonic connection and is handled there, not by the listener.
  lan->sim.run_for(milliseconds(1500));
  EXPECT_EQ(server_counter("tcp.listen.80.accepted"), 1u);
  EXPECT_TRUE(accepted.empty());

  lan->primary->tcp().remove_tap(tap);
  ASSERT_TRUE(run_until(lan->sim, [&] { return accepted.size() == 1; },
                        seconds(30)));
  EXPECT_EQ(client->state(), TcpState::kEstablished);
  EXPECT_EQ(server_counter("tcp.listen.80.accepted"), 1u);
}

// A duplicate of the original SYN arriving after the connection is
// established is ignored by the connection, never re-accepted.
TEST_F(AcceptPathFixture, DuplicateSynAfterEstablishIsIgnored) {
  build();
  listen();
  lan->client->tcp().set_next_isn(10000);
  auto client = connect();
  ASSERT_TRUE(run_until(lan->sim, [&] {
    return client->state() == TcpState::kEstablished && accepted.size() == 1;
  }));

  TcpSegment dup;
  dup.src_port = client->key().local_port;
  dup.dst_port = 80;
  dup.seq = 10000;
  dup.flags = Flags::kSyn;
  dup.mss = 1460;
  lan->client->tcp().send_segment_raw(std::move(dup), lan->client->address(),
                                      lan->primary->address());
  lan->sim.run_for(milliseconds(100));
  EXPECT_EQ(accepted.size(), 1u);
  EXPECT_EQ(server_counter("tcp.listen.80.accepted"), 1u);
  EXPECT_EQ(accepted[0]->state(), TcpState::kEstablished);
}

// TIME_WAIT helper: drive one HTTP-style exchange where the *server*
// closes first, leaving the server side in TIME_WAIT and freeing the
// client's ephemeral port. Returns the server-side connection.
struct TimeWaitFixture : AcceptPathFixture {
  std::shared_ptr<Connection> server_time_wait() {
    auto client = connect();
    if (!run_until(lan->sim, [&] {
          return client->state() == TcpState::kEstablished && !accepted.empty();
        })) {
      return nullptr;
    }
    auto server = accepted.back();
    bool client_closed = false;
    client->on_peer_fin = [c = client.get()] { c->close(); };
    client->on_closed = [&](CloseReason) { client_closed = true; };
    server->close();
    if (!run_until(lan->sim, [&] {
          return client_closed && server->state() == TcpState::kTimeWait;
        })) {
      return nullptr;
    }
    // Port release is deferred (connection_closed schedules the erase);
    // settle one tick so the client's ephemeral port is reusable.
    lan->sim.run_for(milliseconds(1));
    return server;
  }
};

// Reusing a 4-tuple whose server side sits in TIME_WAIT succeeds inside
// 2*MSL when the new SYN's ISN is newer than the old receive point: the
// old incarnation is displaced (tcp.time_wait_recycled) and the new
// handshake completes on the same tuple.
TEST_F(TimeWaitFixture, TupleReuseRecyclesTimeWait) {
  build();
  listen();
  // One ephemeral port: every reconnect lands on the same 4-tuple.
  lan->client->tcp().set_ephemeral_range(50000, 50000);
  auto old_server = server_time_wait();
  ASSERT_NE(old_server, nullptr);
  const SimTime closed_at = lan->sim.now();

  auto client2 = connect();
  ASSERT_NE(client2, nullptr);
  ASSERT_TRUE(run_until(lan->sim, [&] {
    return client2->state() == TcpState::kEstablished && accepted.size() == 2;
  }));
  // Inside the old incarnation's 2*MSL window — this was a recycle, not
  // an expiry.
  EXPECT_LT(lan->sim.now(), closed_at + 2 * static_cast<SimTime>(
                                            TcpParams{}.msl));
  EXPECT_EQ(server_counter("tcp.time_wait_recycled"), 1u);
  EXPECT_EQ(old_server->state(), TcpState::kClosed);
  EXPECT_EQ(accepted.size(), 2u);
}

// RFC 1337: a stray RST landing on TIME_WAIT must not assassinate it —
// the quiet period protects the new incarnation from old duplicates.
TEST_F(TimeWaitFixture, StrayRstDoesNotAssassinateTimeWait) {
  build();
  listen();
  lan->client->tcp().set_ephemeral_range(50000, 50000);
  auto server = server_time_wait();
  ASSERT_NE(server, nullptr);

  TcpSegment rst;
  rst.src_port = 50000;
  rst.dst_port = 80;
  rst.seq = server->rcv_nxt_abs();  // in-window: maximally tempting
  rst.flags = Flags::kRst | Flags::kAck;
  lan->client->tcp().send_segment_raw(std::move(rst), lan->client->address(),
                                      lan->primary->address());
  lan->sim.run_for(milliseconds(100));
  EXPECT_EQ(server->state(), TcpState::kTimeWait);

  // The full 2*MSL still elapses before the connection leaves.
  lan->sim.run_for(2 * TcpParams{}.msl);
  EXPECT_EQ(server->state(), TcpState::kClosed);
  EXPECT_EQ(server_counter("tcp.time_wait_recycled"), 0u);
}

// An old duplicate SYN (sequence number at or below the old receive
// point) fails the recycling criterion: TIME_WAIT stands.
TEST_F(TimeWaitFixture, OldDuplicateSynDoesNotRecycle) {
  build();
  listen();
  lan->client->tcp().set_ephemeral_range(50000, 50000);
  auto server = server_time_wait();
  ASSERT_NE(server, nullptr);

  TcpSegment old_syn;
  old_syn.src_port = 50000;
  old_syn.dst_port = 80;
  old_syn.seq = server->rcv_nxt_abs() - 100;
  old_syn.flags = Flags::kSyn;
  old_syn.mss = 1460;
  lan->client->tcp().send_segment_raw(std::move(old_syn), lan->client->address(),
                                      lan->primary->address());
  lan->sim.run_for(milliseconds(100));
  EXPECT_EQ(server->state(), TcpState::kTimeWait);
  EXPECT_EQ(server_counter("tcp.time_wait_recycled"), 0u);
  EXPECT_EQ(accepted.size(), 1u);  // the listener did not re-accept
}

// Ephemeral-port exhaustion: connect() refuses (returns null) instead of
// corrupting the use table, and a port freed by a full teardown is
// allocatable again.
TEST_F(AcceptPathFixture, EphemeralExhaustionRefusesAndRecovers) {
  build();
  listen();
  lan->client->tcp().set_ephemeral_range(50000, 50003);  // 4 ports

  std::vector<std::shared_ptr<Connection>> clients;
  for (int i = 0; i < 4; ++i) {
    auto c = connect();
    ASSERT_NE(c, nullptr);
    clients.push_back(std::move(c));
  }
  ASSERT_TRUE(run_until(lan->sim, [&] { return accepted.size() == 4; }));
  for (const auto& c : clients) {
    EXPECT_EQ(c->state(), TcpState::kEstablished);
  }
  EXPECT_EQ(connect(), nullptr);  // all four ports in use

  // Server-side close frees the client port without client TIME_WAIT.
  bool closed = false;
  clients[0]->on_peer_fin = [c = clients[0].get()] { c->close(); };
  clients[0]->on_closed = [&](CloseReason) { closed = true; };
  accepted[0]->close();
  ASSERT_TRUE(run_until(lan->sim, [&] { return closed; }));
  // The port release is a deferred erase; settle one tick before reusing.
  lan->sim.run_for(milliseconds(1));

  auto again = connect();
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again->key().local_port, clients[0]->key().local_port);
  ASSERT_TRUE(run_until(lan->sim, [&] {
    return again->state() == TcpState::kEstablished;
  }));
}

}  // namespace
}  // namespace tfo::tcp
