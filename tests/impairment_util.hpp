// Shared pieces of the adversarial-soak harness: the impairment profile
// matrix, the receiver-scoping predicate, and the oracles that every
// impaired run must satisfy. Used by tests/impairment_soak_test.cpp and
// bench/bench_impairment.cpp so the bench exercises exactly the profiles
// the regression tests pin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/trace.hpp"
#include "failover_fixture.hpp"
#include "net/impairment.hpp"
#include "tcp/segment.hpp"

namespace tfo::test {

/// Counts TCP RSTs a NIC receives (addressed frames only). No bridge- or
/// impairment-fabricated segment may ever reset a healthy client.
class RstCounter {
 public:
  explicit RstCounter(sim::Simulator& sim, net::Nic& nic) {
    nic.add_observer([this, &sim, name = nic.name()](const net::EthernetFrame& f,
                                                     bool to_us) {
      if (!to_us) return;
      const auto rec = apps::FrameTracer::decode(f, to_us, sim.now(), name);
      if (rec.has_tcp && (rec.flags & tcp::Flags::kRst)) ++count_;
    });
  }
  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

/// Frames whose corruption the receive path must have caught: TCP segments
/// failing their pseudo-header checksum plus frames rejected by IP header
/// validation (`datagrams_parse_failed` never counts routing drops, so the
/// promiscuous secondary's snooping does not pollute it).
inline std::uint64_t checksum_rejects(ReplicatedLan& r) {
  std::uint64_t n = 0;
  for (apps::Host* h : {r.lan->client.get(), r.lan->primary.get(),
                        r.lan->secondary.get()}) {
    n += h->obs().registry.counter_value("tcp.segments_malformed");
    n += h->ip().datagrams_parse_failed();
  }
  return n;
}

/// Restricts impairment to frames the receiving NIC will actually process:
/// corrupting a copy the NIC filters at L2 exercises nothing, and ARP
/// carries no checksum for the receive path to reject.
inline bool processed_by(const net::Nic* /*sender*/, const net::Nic& rx,
                         const net::EthernetFrame& f) {
  if (f.type != net::EtherType::kIpv4) return false;
  return rx.promiscuous() || f.dst == rx.mac() || f.dst.is_broadcast();
}

struct ImpairmentProfile {
  std::string name;
  net::ImpairmentParams imp;
};

/// The canonical profile matrix: uniform loss light/heavy, bursty
/// Gilbert–Elliott loss, duplication, reorder jitter, single-byte
/// corruption, and a combined "chaos" profile.
inline std::vector<ImpairmentProfile> impairment_profiles() {
  net::ImpairmentParams uniform2;
  uniform2.loss = 0.02;

  net::ImpairmentParams uniform10;
  uniform10.loss = 0.10;

  net::ImpairmentParams burst;
  burst.gilbert.p_enter_bad = 0.02;
  burst.gilbert.p_exit_bad = 0.25;
  burst.gilbert.loss_good = 0.0;
  burst.gilbert.loss_bad = 0.8;

  net::ImpairmentParams dup;
  dup.duplicate = 0.05;
  dup.duplicate_delay = milliseconds(1);

  net::ImpairmentParams reorder;
  reorder.reorder = 0.2;
  reorder.reorder_delay = milliseconds(3);

  net::ImpairmentParams corrupt;
  corrupt.corrupt = 0.02;
  corrupt.corrupt_max_bytes = 1;  // single flips: always checksum-detectable

  net::ImpairmentParams chaos;
  chaos.loss = 0.01;
  chaos.gilbert.p_enter_bad = 0.01;
  chaos.gilbert.p_exit_bad = 0.3;
  chaos.gilbert.loss_bad = 0.6;
  chaos.duplicate = 0.03;
  chaos.duplicate_delay = milliseconds(2);
  chaos.reorder = 0.1;
  chaos.reorder_delay = milliseconds(2);
  chaos.corrupt = 0.01;
  chaos.corrupt_max_bytes = 1;

  return {{"uniform2", uniform2}, {"uniform10", uniform10}, {"burst", burst},
          {"dup5", dup},          {"reorder20", reorder},   {"corrupt2", corrupt},
          {"chaos", chaos}};
}

}  // namespace tfo::test
