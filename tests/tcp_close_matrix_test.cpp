// The TCP close handshake as a matrix: initiator × pending data × loss ×
// simultaneity. Every cell must end with both endpoints in CLOSED, all
// data delivered, and the connection tables drained.
#include <gtest/gtest.h>

#include "apps/topology.hpp"
#include "ip/datagram.hpp"
#include "test_util.hpp"

namespace tfo::tcp {
namespace {

using apps::Lan;
using apps::LanParams;
using apps::make_lan;
using test::run_until;

struct CloseParam {
  bool client_first;       // who calls close() first
  std::size_t client_data;  // bytes still being sent by the client
  std::size_t server_data;  // bytes still being sent by the server
  double loss;
  bool simultaneous;        // both close() in the same instant
  const char* label;
};

class CloseMatrix : public ::testing::TestWithParam<CloseParam> {};

TEST_P(CloseMatrix, BothSidesReachClosedWithAllData) {
  const CloseParam& p = GetParam();
  LanParams lp;
  lp.medium.loss_probability = p.loss;
  lp.medium.loss_seed = 77;
  lp.tcp.max_rto = seconds(2);
  auto lan = make_lan(lp);

  std::shared_ptr<Connection> server;
  lan->primary->tcp().listen(80, [&](std::shared_ptr<Connection> c) {
    server = std::move(c);
  });
  auto client = lan->client->tcp().connect(lan->primary->address(), 80,
                                           {.nodelay = true});
  ASSERT_TRUE(run_until(lan->sim, [&] {
    return server && client->state() == TcpState::kEstablished;
  }, seconds(30)));

  Bytes got_up, got_down;
  server->on_readable = [&] { server->recv(got_up); };
  client->on_readable = [&] { client->recv(got_down); };
  // Passive side closes in response to the peer's FIN (unless this cell
  // is a simultaneous close).
  if (!p.simultaneous) {
    if (p.client_first) {
      server->on_peer_fin = [&] { server->close(); };
    } else {
      client->on_peer_fin = [&] { client->close(); };
    }
  }

  if (p.client_data > 0) client->send(test::pattern_bytes(p.client_data, 1));
  if (p.server_data > 0) server->send(test::pattern_bytes(p.server_data, 2));

  if (p.simultaneous) {
    client->close();
    server->close();
  } else if (p.client_first) {
    client->close();
  } else {
    server->close();
  }

  ASSERT_TRUE(run_until(lan->sim, [&] {
    return client->state() == TcpState::kClosed &&
           server->state() == TcpState::kClosed;
  }, seconds(300)))
      << "client " << state_name(client->state()) << ", server "
      << state_name(server->state());

  // close() is graceful: all data queued before it must still arrive.
  EXPECT_EQ(got_up.size(), p.client_data);
  EXPECT_EQ(got_down.size(), p.server_data);
  if (p.client_data > 0) {
    EXPECT_EQ(got_up, test::pattern_bytes(p.client_data, 1));
  }
  if (p.server_data > 0) {
    EXPECT_EQ(got_down, test::pattern_bytes(p.server_data, 2));
  }

  // Connection tables drain (TIME_WAIT and deferred removals included).
  ASSERT_TRUE(run_until(lan->sim, [&] {
    return lan->client->tcp().connection_count() == 0 &&
           lan->primary->tcp().connection_count() == 0;
  }, seconds(60)));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CloseMatrix,
    ::testing::Values(
        CloseParam{true, 0, 0, 0.0, false, "client_first_idle"},
        CloseParam{false, 0, 0, 0.0, false, "server_first_idle"},
        CloseParam{true, 50000, 0, 0.0, false, "client_first_with_upload"},
        CloseParam{true, 0, 50000, 0.0, false, "client_first_with_download"},
        CloseParam{false, 50000, 50000, 0.0, false, "server_first_bidi"},
        CloseParam{true, 100000, 100000, 0.0, false, "client_first_bidi_large"},
        CloseParam{true, 0, 0, 0.0, true, "simultaneous_idle"},
        CloseParam{true, 20000, 20000, 0.0, true, "simultaneous_with_data"},
        CloseParam{true, 0, 0, 0.05, false, "client_first_lossy"},
        CloseParam{false, 0, 0, 0.05, false, "server_first_lossy"},
        CloseParam{true, 30000, 30000, 0.05, false, "bidi_lossy"},
        CloseParam{true, 10000, 10000, 0.10, true, "simultaneous_very_lossy"}),
    [](const ::testing::TestParamInfo<CloseParam>& info) { return info.param.label; });

// Abort (RST) interactions with pending data: the peer learns promptly
// and pending writes are dropped, never half-delivered as corruption.
TEST(CloseEdge, AbortDuringTransferResetsPeer) {
  auto lan = make_lan();
  std::shared_ptr<Connection> server;
  lan->primary->tcp().listen(80, [&](std::shared_ptr<Connection> c) {
    server = std::move(c);
  });
  auto client = lan->client->tcp().connect(lan->primary->address(), 80);
  ASSERT_TRUE(run_until(lan->sim, [&] {
    return server && client->state() == TcpState::kEstablished;
  }, seconds(30)));
  Bytes got;
  server->on_readable = [&] { server->recv(got); };
  CloseReason server_reason{};
  bool server_closed = false;
  server->on_closed = [&](CloseReason r) {
    server_reason = r;
    server_closed = true;
  };
  client->send(test::pattern_bytes(200000, 5));
  lan->sim.run_for(milliseconds(5));
  client->abort();
  ASSERT_TRUE(run_until(lan->sim, [&] { return server_closed; }, seconds(30)));
  EXPECT_EQ(server_reason, CloseReason::kReset);
  // Whatever did arrive was a correct prefix.
  const Bytes full = test::pattern_bytes(200000, 5);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), full.begin()));
}

TEST(CloseEdge, CloseListenerStopsNewConnectionsOnly) {
  auto lan = make_lan();
  std::shared_ptr<Connection> server;
  lan->primary->tcp().listen(80, [&](std::shared_ptr<Connection> c) {
    server = std::move(c);
  });
  auto c1 = lan->client->tcp().connect(lan->primary->address(), 80, {.nodelay = true});
  ASSERT_TRUE(run_until(lan->sim, [&] {
    return server && c1->state() == TcpState::kEstablished;
  }, seconds(30)));
  lan->primary->tcp().close_listener(80);

  // The established connection still works...
  Bytes got;
  server->on_readable = [&] {
    Bytes b;
    server->recv(b);
    server->send(std::move(b));
  };
  c1->on_readable = [&] { c1->recv(got); };
  c1->send(to_bytes("still alive"));
  ASSERT_TRUE(run_until(lan->sim, [&] { return got.size() == 11; }, seconds(30)));

  // ...but a new connect is refused.
  auto c2 = lan->client->tcp().connect(lan->primary->address(), 80);
  CloseReason r2{};
  bool closed2 = false;
  c2->on_closed = [&](CloseReason r) {
    r2 = r;
    closed2 = true;
  };
  ASSERT_TRUE(run_until(lan->sim, [&] { return closed2; }, seconds(30)));
  EXPECT_EQ(r2, CloseReason::kRefused);
}

}  // namespace
}  // namespace tfo::tcp
