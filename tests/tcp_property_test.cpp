// Property sweeps over the TCP implementation: for a broad grid of
// configurations (MSS asymmetry, buffer sizes, Nagle, delayed-ACK, loss,
// congestion control, transfer direction) the delivered byte stream must
// equal the sent byte stream exactly.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/topology.hpp"
#include "test_util.hpp"

namespace tfo::tcp {
namespace {

using apps::Lan;
using apps::LanParams;
using apps::make_lan;
using test::run_until;

struct SweepParam {
  std::uint16_t mss_client = 1460;
  std::uint16_t mss_server = 1460;
  std::size_t send_buf = 65536;
  std::size_t recv_buf = 65536;
  bool nagle = true;
  bool congestion_control = true;
  SimDuration delack = milliseconds(100);
  double loss = 0.0;
  std::size_t transfer = 100 * 1024;
  bool bidirectional = false;
  std::uint64_t seed = 1;
  const char* label = "";
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return info.param.label;
}

class TcpSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(TcpSweep, StreamIntegrity) {
  const SweepParam& p = GetParam();
  LanParams lp;
  lp.medium.loss_probability = p.loss;
  lp.medium.loss_seed = p.seed;
  lp.tcp.send_buf = p.send_buf;
  lp.tcp.recv_buf = p.recv_buf;
  lp.tcp.nagle = p.nagle;
  lp.tcp.congestion_control = p.congestion_control;
  lp.tcp.delayed_ack = p.delack;
  lp.tcp.max_rto = seconds(5);
  auto lan = make_lan(lp);
  lan->client->tcp().mutable_params().mss = p.mss_client;
  lan->primary->tcp().mutable_params().mss = p.mss_server;

  std::shared_ptr<Connection> server;
  lan->primary->tcp().listen(80, [&](std::shared_ptr<Connection> c) {
    server = std::move(c);
  });
  auto client = lan->client->tcp().connect(lan->primary->address(), 80);
  ASSERT_TRUE(run_until(lan->sim, [&] {
    return server && client->state() == TcpState::kEstablished;
  }, seconds(30)));

  const Bytes up = test::pattern_bytes(p.transfer, 21);
  const Bytes down = test::pattern_bytes(p.bidirectional ? p.transfer : 0, 22);
  Bytes got_up, got_down;
  server->on_readable = [&] { server->recv(got_up); };
  client->on_readable = [&] { client->recv(got_down); };
  client->send(up);
  if (p.bidirectional) server->send(down);

  ASSERT_TRUE(run_until(lan->sim, [&] {
    return got_up.size() == up.size() && got_down.size() == down.size();
  }, seconds(1200)))
      << "up " << got_up.size() << "/" << up.size() << ", down " << got_down.size()
      << "/" << down.size();
  EXPECT_EQ(got_up, up);
  EXPECT_EQ(got_down, down);

  // Clean close in both directions as part of the property.
  client->close();
  server->on_peer_fin = [&] { server->close(); };
  if (server->state() == TcpState::kCloseWait) server->close();
  ASSERT_TRUE(run_until(lan->sim, [&] {
    return client->state() == TcpState::kClosed &&
           server->state() == TcpState::kClosed;
  }, seconds(120)));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TcpSweep,
    ::testing::Values(
        SweepParam{.label = "baseline"},
        SweepParam{.mss_client = 536, .label = "small_client_mss"},
        SweepParam{.mss_server = 536, .label = "small_server_mss"},
        SweepParam{.mss_client = 100, .mss_server = 1460, .label = "tiny_mss"},
        SweepParam{.send_buf = 4096, .label = "tiny_send_buf"},
        SweepParam{.recv_buf = 4096, .label = "tiny_recv_buf"},
        SweepParam{.send_buf = 2048, .recv_buf = 2048, .label = "tiny_both_bufs"},
        SweepParam{.nagle = false, .label = "nodelay"},
        SweepParam{.congestion_control = false, .label = "no_cc"},
        SweepParam{.delack = milliseconds(500), .label = "long_delack"},
        SweepParam{.delack = 0, .label = "zero_delack"},
        SweepParam{.loss = 0.02, .seed = 5, .label = "loss2"},
        SweepParam{.loss = 0.10, .transfer = 40 * 1024, .seed = 6, .label = "loss10"},
        SweepParam{.bidirectional = true, .label = "bidirectional"},
        SweepParam{.loss = 0.05, .transfer = 40 * 1024, .bidirectional = true,
                   .seed = 7, .label = "bidi_loss5"},
        SweepParam{.mss_client = 536, .recv_buf = 8192, .loss = 0.02,
                   .transfer = 60 * 1024, .seed = 8, .label = "mixed_hard"},
        SweepParam{.transfer = 1024 * 1024, .label = "large_1mb"},
        SweepParam{.transfer = 1, .label = "single_byte"},
        SweepParam{.transfer = 1460, .label = "exactly_one_mss"},
        SweepParam{.transfer = 1461, .label = "one_mss_plus_one"}),
    param_name);

// Many small writes with Nagle on/off must still produce an identical
// stream (write boundaries are not preserved, bytes are).
class WritePatternSweep : public ::testing::TestWithParam<int> {};

TEST_P(WritePatternSweep, ChunkedWritesCoalesceCorrectly) {
  const int chunk = GetParam();
  auto lan = make_lan();
  std::shared_ptr<Connection> server;
  lan->primary->tcp().listen(80, [&](std::shared_ptr<Connection> c) {
    server = std::move(c);
  });
  auto client = lan->client->tcp().connect(lan->primary->address(), 80);
  ASSERT_TRUE(run_until(lan->sim, [&] {
    return server && client->state() == TcpState::kEstablished;
  }, seconds(30)));
  const Bytes data = test::pattern_bytes(20000, 31);
  Bytes got;
  server->on_readable = [&] { server->recv(got); };
  for (std::size_t off = 0; off < data.size(); off += chunk) {
    const std::size_t n = std::min<std::size_t>(chunk, data.size() - off);
    client->send(Bytes(data.begin() + static_cast<long>(off),
                       data.begin() + static_cast<long>(off + n)));
  }
  ASSERT_TRUE(run_until(lan->sim, [&] { return got.size() == data.size(); },
                        seconds(120)));
  EXPECT_EQ(got, data);
}

INSTANTIATE_TEST_SUITE_P(Chunks, WritePatternSweep,
                         ::testing::Values(1, 7, 100, 1459, 1460, 1461, 9999));

// ----------------------------------------------------- RFC 5961 hardening
//
// Off-path RST/SYN handling, pinned exactly: an in-window-but-not-exact
// RST elicits a rate-limited challenge ACK (§3.2), only a RST at
// precisely RCV.NXT tears the connection down, and a SYN on a
// synchronized connection is always challenged, never honoured (§4.2).

struct Rfc5961Fixture : ::testing::Test {
  void SetUp() override {
    lan = make_lan();
    lan->primary->tcp().listen(80, [&](std::shared_ptr<Connection> c) {
      server = std::move(c);
    });
    client = lan->client->tcp().connect(lan->primary->address(), 80);
    ASSERT_TRUE(run_until(lan->sim, [&] {
      return server && client->state() == TcpState::kEstablished &&
             server->state() == TcpState::kEstablished;
    }, seconds(30)));
  }

  /// Injects a spoofed segment from a third host on the wire, claiming
  /// the client's address — the off-path adversary's only capability.
  void spoof(std::uint8_t flags, Seq32 seq, Seq32 ack = 0) {
    TcpSegment seg;
    seg.src_port = client->key().local_port;
    seg.dst_port = 80;
    seg.seq = seq;
    seg.flags = flags;
    if (flags & Flags::kAck) seg.ack = ack;
    seg.window = 65535;
    const ip::Ipv4 src = lan->client->address();
    const ip::Ipv4 dst = lan->primary->address();
    lan->secondary->ip().send(ip::Proto::kTcp, src, dst, seg.take_wire(src, dst));
    lan->sim.run_for(milliseconds(10));
  }

  std::uint64_t challenges() const {
    return lan->primary->obs().registry.counter_value("tcp.challenge_acks");
  }
  std::uint64_t limited() const {
    return lan->primary->obs().registry.counter_value("tcp.challenge_acks_limited");
  }

  std::unique_ptr<Lan> lan;
  std::shared_ptr<Connection> server, client;
};

TEST_F(Rfc5961Fixture, InWindowInexactRstElicitsChallengeAckNotTeardown) {
  const Seq32 rcv_nxt = server->rcv_nxt_abs();
  ASSERT_GE(server->advertised_window(), 100);

  spoof(Flags::kRst, rcv_nxt + 10);  // in window, not exact
  EXPECT_EQ(server->state(), TcpState::kEstablished);
  EXPECT_EQ(challenges(), 1u);

  // Out-of-window RST: dropped silently — no challenge, no teardown.
  spoof(Flags::kRst, rcv_nxt + server->advertised_window() + 50000);
  EXPECT_EQ(server->state(), TcpState::kEstablished);
  EXPECT_EQ(challenges(), 1u);
}

TEST_F(Rfc5961Fixture, OnlyExactRcvNxtRstTearsDown) {
  spoof(Flags::kRst, server->rcv_nxt_abs());
  EXPECT_EQ(server->state(), TcpState::kClosed);
  EXPECT_EQ(challenges(), 0u);
}

TEST_F(Rfc5961Fixture, SynOnSynchronizedConnectionIsChallengedNotHonoured) {
  const Seq32 rcv_nxt = server->rcv_nxt_abs();
  // §4.2: regardless of sequence number — exact, in-window, out-of-window.
  for (const Seq32 seq : {rcv_nxt, rcv_nxt + 17, rcv_nxt + 2'000'000u}) {
    spoof(Flags::kSyn, seq);
    EXPECT_EQ(server->state(), TcpState::kEstablished) << "seq " << seq;
  }
  EXPECT_EQ(challenges(), 3u);

  // The connection still works afterwards.
  Bytes got;
  server->on_readable = [&] { server->recv(got); };
  client->send(to_bytes("still alive"));
  ASSERT_TRUE(run_until(lan->sim, [&] { return got.size() == 11; }, seconds(10)));
}

TEST_F(Rfc5961Fixture, ChallengeAcksAreRateLimitedPerConnectionAndRefresh) {
  const auto per_conn = lan->primary->tcp().params().challenge_ack_per_conn;
  const Seq32 rcv_nxt = server->rcv_nxt_abs();
  // A burst of in-window inexact RSTs: only the per-connection budget is
  // answered inside one interval; the rest are counted as limited.
  for (std::uint32_t i = 0; i < per_conn + 5; ++i) {
    spoof(Flags::kRst, rcv_nxt + 1 + i);
  }
  EXPECT_EQ(server->state(), TcpState::kEstablished);
  EXPECT_EQ(challenges(), per_conn);
  EXPECT_EQ(limited(), 5u);

  // A new interval refreshes the budget.
  lan->sim.run_for(lan->primary->tcp().params().challenge_ack_interval);
  spoof(Flags::kRst, rcv_nxt + 1);
  EXPECT_EQ(challenges(), per_conn + 1);
}

TEST_F(Rfc5961Fixture, AckLessPayloadIsDroppedOnSynchronizedConnection) {
  // RFC 793 p.72 + §5.2 closure: payload must never bypass ACK
  // acceptability by clearing the ACK flag.
  Bytes got;
  server->on_readable = [&] { server->recv(got); };
  TcpSegment seg;
  seg.src_port = client->key().local_port;
  seg.dst_port = 80;
  seg.seq = server->rcv_nxt_abs();  // exactly in order — still dropped
  seg.flags = Flags::kPsh;          // no ACK
  seg.window = 65535;
  seg.payload = wire::PacketBuffer(Bytes(64, 0x41));
  const ip::Ipv4 src = lan->client->address();
  const ip::Ipv4 dst = lan->primary->address();
  lan->secondary->ip().send(ip::Proto::kTcp, src, dst, seg.take_wire(src, dst));
  lan->sim.run_for(milliseconds(20));
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(server->state(), TcpState::kEstablished);
}

TEST_F(Rfc5961Fixture, TimeWaitFailedRecycleSynIsChallengedThroughLimiter) {
  // Drive the server into TIME_WAIT (server closes first), then offer a
  // SYN whose sequence does not advance past the old connection's — the
  // recycle must fail and the reply must be a rate-limited challenge ACK,
  // not an unconditional ACK an attacker could use as an amplifier.
  server->close();
  client->on_peer_fin = [&] { client->close(); };
  if (client->state() == TcpState::kCloseWait) client->close();
  ASSERT_TRUE(run_until(lan->sim, [&] {
    return server->state() == TcpState::kTimeWait;
  }, seconds(30)));

  const std::uint64_t before = challenges();
  spoof(Flags::kSyn, server->rcv_nxt_abs() - 100000);  // not advancing
  EXPECT_EQ(server->state(), TcpState::kTimeWait);
  EXPECT_EQ(challenges(), before + 1);
}

}  // namespace
}  // namespace tfo::tcp
