// Unit tests for the tfo::obs observability subsystem: registry handles,
// histogram statistics, the bounded timeline, and the JSON serializers
// whose shape OBSERVABILITY.md documents and scripts/check_bench_json.py
// validates.
#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/timeline.hpp"

namespace tfo::obs {
namespace {

TEST(Registry, HandlesAreStableAndNamed) {
  Registry reg;
  Counter& a = reg.counter("x.a");
  a.inc();
  Counter& b = reg.counter("x.b");
  b.inc(5);
  // Same name -> same object, also after other insertions (node storage).
  EXPECT_EQ(&a, &reg.counter("x.a"));
  EXPECT_EQ(reg.counter_value("x.a"), 1u);
  EXPECT_EQ(reg.counter_value("x.b"), 5u);
  EXPECT_EQ(reg.counter_value("never.registered"), 0u);
}

TEST(Registry, GaugeTracksHighWaterMark) {
  Registry reg;
  Gauge& g = reg.gauge("queue.depth");
  g.set(3);
  g.add(4);   // 7
  g.add(-6);  // 1
  EXPECT_EQ(g.value(), 1);
  EXPECT_EQ(g.max_value(), 7);
  EXPECT_EQ(reg.gauge_value("queue.depth"), 1);
}

TEST(Registry, SnapshotIsSortedByName) {
  Registry reg;
  reg.counter("z.last").inc();
  reg.counter("a.first").inc();
  reg.counter("m.middle").inc();
  reg.gauge("g2").set(2);
  reg.gauge("g1").set(1);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "a.first");
  EXPECT_EQ(snap.counters[1].first, "m.middle");
  EXPECT_EQ(snap.counters[2].first, "z.last");
  ASSERT_EQ(snap.gauges.size(), 2u);
  EXPECT_EQ(snap.gauges[0].first, "g1");
}

TEST(Histogram, ExactStatsAndQuantiles) {
  Histogram h;
  for (std::uint64_t v : {1u, 2u, 4u, 8u, 100u}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 115u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 23.0);
  // Quantiles come from power-of-two bucket upper bounds: monotone and
  // within a factor of two of the true order statistic.
  EXPECT_LE(h.quantile(0.5), h.quantile(0.99));
  EXPECT_GE(h.quantile(0.99), 64u);  // 100 lands in [64,128)
  EXPECT_LE(h.quantile(0.0), 2u);
}

TEST(Histogram, ZeroSampleGoesToBucketZero) {
  Histogram h;
  h.observe(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.buckets()[0], 1u);
}

TEST(EventLog, BoundedDropsOldest) {
  EventLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.record(i, EventKind::kSegmentMerged, "c", std::to_string(i));
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.recorded_total(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  EXPECT_EQ(log.events().front().detail, "6");  // oldest surviving
  EXPECT_EQ(log.events().back().detail, "9");
}

TEST(EventLog, FilterPreservesOrder) {
  EventLog log;
  log.record(1, EventKind::kConnCreated, "a");
  log.record(2, EventKind::kSegmentMerged, "a");
  log.record(3, EventKind::kConnCreated, "b");
  const auto created = log.filter(EventKind::kConnCreated);
  ASSERT_EQ(created.size(), 2u);
  EXPECT_EQ(created[0].conn, "a");
  EXPECT_EQ(created[1].conn, "b");
}

// The snake_case names are the contract with scripts/check_bench_json.py
// (KNOWN_EVENTS) and OBSERVABILITY.md; renaming one breaks recorded
// artifacts, so the full mapping is pinned here.
TEST(EventKindNames, StableWireNames) {
  EXPECT_STREQ(to_string(EventKind::kConnCreated), "conn_created");
  EXPECT_STREQ(to_string(EventKind::kHandshakeMerged), "handshake_merged");
  EXPECT_STREQ(to_string(EventKind::kSegmentMerged), "segment_merged");
  EXPECT_STREQ(to_string(EventKind::kEmptyAckEmitted), "empty_ack_emitted");
  EXPECT_STREQ(to_string(EventKind::kRetransmitForwarded), "retransmit_forwarded");
  EXPECT_STREQ(to_string(EventKind::kDivergence), "divergence");
  EXPECT_STREQ(to_string(EventKind::kConnClosed), "conn_closed");
  EXPECT_STREQ(to_string(EventKind::kTombstoneCreated), "tombstone_created");
  EXPECT_STREQ(to_string(EventKind::kTombstoneExpired), "tombstone_expired");
  EXPECT_STREQ(to_string(EventKind::kStrayFinAcked), "stray_fin_acked");
  EXPECT_STREQ(to_string(EventKind::kStrayFinSuppressed), "stray_fin_suppressed");
  EXPECT_STREQ(to_string(EventKind::kTakeoverStart), "takeover_start");
  EXPECT_STREQ(to_string(EventKind::kTakeoverComplete), "takeover_complete");
  EXPECT_STREQ(to_string(EventKind::kSecondaryFailed), "secondary_failed");
  EXPECT_STREQ(to_string(EventKind::kPeerDeclaredFailed), "peer_declared_failed");
  EXPECT_STREQ(to_string(EventKind::kHostFailed), "host_failed");
}

TEST(Json, EscapesControlAndQuotes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("x\ny\t"), "x\\ny\\t");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(Json, WriterNestingAndCommas) {
  JsonWriter w;
  w.begin_object();
  w.key("a").value(std::uint64_t{1});
  w.key("b").begin_array().value("x").value("y").end_array();
  w.key("c").begin_object().key("d").value(true).end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":["x","y"],"c":{"d":true}})");
}

TEST(Json, MetricsShapeMatchesSchema) {
  Registry reg;
  reg.counter("tcp.segments_sent").inc(7);
  reg.gauge("bridge.connections").set(2);
  reg.histogram("bridge.merged_payload_bytes").observe(8);
  const std::string j = metrics_json("primary", reg.snapshot());
  EXPECT_NE(j.find("\"host\":\"primary\""), std::string::npos);
  EXPECT_NE(j.find("\"tcp.segments_sent\":7"), std::string::npos);
  EXPECT_NE(j.find("\"value\":2"), std::string::npos);
  EXPECT_NE(j.find("\"max\":2"), std::string::npos);
  EXPECT_NE(j.find("\"p50\""), std::string::npos);
  EXPECT_NE(j.find("\"p99\""), std::string::npos);
}

TEST(Json, TimelineShapeMatchesSchema) {
  EventLog log;
  log.record(42, EventKind::kTakeoverStart, "", "addr=10.0.0.1");
  const std::string j = timeline_json("secondary", log);
  EXPECT_NE(j.find("\"t_ns\":42"), std::string::npos);
  EXPECT_NE(j.find("\"event\":\"takeover_start\""), std::string::npos);
  EXPECT_NE(j.find("\"host\":\"secondary\""), std::string::npos);
  EXPECT_NE(j.find("\"detail\":\"addr=10.0.0.1\""), std::string::npos);
}

TEST(Hub, RegistryAndTimelineLiveTogether) {
  Hub hub;
  hub.registry.counter("k").inc();
  hub.timeline.record(1, EventKind::kConnCreated, "c");
  EXPECT_EQ(hub.registry.counter_value("k"), 1u);
  EXPECT_EQ(hub.timeline.size(), 1u);
}

}  // namespace
}  // namespace tfo::obs
