// Integration tests for the TCP state machine over the simulated network:
// handshake, data transfer, buffering semantics, close handshakes, resets.
#include <gtest/gtest.h>

#include <memory>

#include "apps/topology.hpp"
#include "test_util.hpp"

namespace tfo::tcp {
namespace {

using apps::Lan;
using apps::LanParams;
using apps::make_lan;

struct TcpFixture : ::testing::Test {
  std::unique_ptr<Lan> lan;
  std::shared_ptr<Connection> server;  // accepted connection on primary
  std::shared_ptr<Connection> client;

  void build(LanParams p = {}) { lan = make_lan(p); }

  /// Starts an echo-less listener capturing the accepted connection.
  void listen(std::uint16_t port = 80, SocketOptions opts = {}) {
    lan->primary->tcp().listen(
        port, [this](std::shared_ptr<Connection> c) { server = std::move(c); }, opts);
  }

  void connect(std::uint16_t port = 80, SocketOptions opts = {}) {
    client = lan->client->tcp().connect(lan->primary->address(), port, opts);
  }

  bool established() {
    return client && client->state() == TcpState::kEstablished && server != nullptr;
  }
};

TEST_F(TcpFixture, ThreeWayHandshake) {
  build();
  listen();
  connect();
  ASSERT_TRUE(test::run_until(lan->sim, [&] { return established(); }));
  EXPECT_EQ(server->state(), TcpState::kEstablished);
  EXPECT_EQ(server->key().remote_ip, lan->client->address());
  EXPECT_EQ(client->key().remote_port, 80);
}

TEST_F(TcpFixture, ConnectionRefusedWhenNoListener) {
  build();
  connect(12345);
  CloseReason reason{};
  bool closed = false;
  client->on_closed = [&](CloseReason r) {
    reason = r;
    closed = true;
  };
  ASSERT_TRUE(test::run_until(lan->sim, [&] { return closed; }));
  EXPECT_EQ(reason, CloseReason::kRefused);
}

TEST_F(TcpFixture, SmallDataRoundTrip) {
  build();
  listen();
  connect();
  ASSERT_TRUE(test::run_until(lan->sim, [&] { return established(); }));

  client->send(to_bytes("ping"));
  ASSERT_TRUE(test::run_until(lan->sim, [&] { return server->rx_available() >= 4; }));
  Bytes got;
  server->recv(got);
  EXPECT_EQ(to_string(got), "ping");

  server->send(to_bytes("pong!"));
  ASSERT_TRUE(test::run_until(lan->sim, [&] { return client->rx_available() >= 5; }));
  got.clear();
  client->recv(got);
  EXPECT_EQ(to_string(got), "pong!");
}

TEST_F(TcpFixture, MssNegotiationTakesMinimum) {
  LanParams p;
  p.tcp.mss = 1460;
  build(p);
  // Client advertises a smaller MSS.
  lan->client->tcp().mutable_params().mss = 500;
  listen();
  connect();
  ASSERT_TRUE(test::run_until(lan->sim, [&] { return established(); }));
  EXPECT_EQ(server->effective_mss(), 500u);
  EXPECT_EQ(client->effective_mss(), 500u);
}

TEST_F(TcpFixture, LargeTransferIsSegmentedAndComplete) {
  build();
  listen();
  connect();
  ASSERT_TRUE(test::run_until(lan->sim, [&] { return established(); }));

  const Bytes data = test::pattern_bytes(256 * 1024, 5);
  Bytes got;
  server->on_readable = [&] { server->recv(got); };
  server->recv(got);
  client->send(data);
  ASSERT_TRUE(test::run_until(
      lan->sim, [&] { return got.size() == data.size(); }, seconds(120)));
  EXPECT_EQ(got, data);
}

TEST_F(TcpFixture, SendCompletionTracksBufferAdmission) {
  build();
  listen();
  connect();
  ASSERT_TRUE(test::run_until(lan->sim, [&] { return established(); }));

  // A message larger than the 64KB send buffer cannot be accepted at once;
  // completion requires ACK progress.
  const Bytes big = test::pattern_bytes(200 * 1024, 1);
  bool accepted = false;
  client->send(big, [&] { accepted = true; });
  EXPECT_FALSE(accepted);
  EXPECT_GT(client->send_queue_pending(), 0u);

  Bytes sink;
  server->on_readable = [&] { server->recv(sink); };
  server->recv(sink);
  ASSERT_TRUE(test::run_until(lan->sim, [&] { return accepted; }, seconds(120)));
  ASSERT_TRUE(test::run_until(
      lan->sim, [&] { return sink.size() == big.size(); }, seconds(120)));
  EXPECT_EQ(sink, big);
}

TEST_F(TcpFixture, SmallMessageAcceptedImmediatelyIntoSendBuffer) {
  build();
  listen();
  connect();
  ASSERT_TRUE(test::run_until(lan->sim, [&] { return established(); }));
  bool accepted = false;
  client->send(test::pattern_bytes(16 * 1024, 2), [&] { accepted = true; });
  // Completion is deferred via a 0-delay event, not synchronous.
  EXPECT_FALSE(accepted);
  lan->sim.step();
  EXPECT_TRUE(accepted);
}

TEST_F(TcpFixture, ClientInitiatedClose) {
  build();
  listen();
  connect();
  ASSERT_TRUE(test::run_until(lan->sim, [&] { return established(); }));

  bool server_saw_fin = false, server_closed = false, client_closed = false;
  server->on_peer_fin = [&] {
    server_saw_fin = true;
    server->close();  // close our side in response
  };
  server->on_closed = [&](CloseReason r) {
    server_closed = true;
    EXPECT_EQ(r, CloseReason::kGraceful);
  };
  client->on_closed = [&](CloseReason r) {
    client_closed = true;
    EXPECT_EQ(r, CloseReason::kGraceful);
  };
  client->close();
  ASSERT_TRUE(test::run_until(lan->sim, [&] { return server_closed && client_closed; },
                              seconds(30)));
  EXPECT_TRUE(server_saw_fin);
}

TEST_F(TcpFixture, HalfCloseAllowsContinuedTransfer) {
  build();
  listen();
  connect();
  ASSERT_TRUE(test::run_until(lan->sim, [&] { return established(); }));

  // Client closes its sending direction, then the server keeps sending.
  client->close();
  ASSERT_TRUE(test::run_until(
      lan->sim, [&] { return server->state() == TcpState::kCloseWait; }));

  const Bytes reply = test::pattern_bytes(50000, 9);
  Bytes got;
  client->on_readable = [&] { client->recv(got); };
  server->send(reply);
  ASSERT_TRUE(test::run_until(
      lan->sim, [&] { return got.size() == reply.size(); }, seconds(60)));
  EXPECT_EQ(got, reply);

  bool both_closed = false;
  server->on_closed = [&](CloseReason) {
    both_closed = client->state() == TcpState::kClosed ||
                  client->state() == TcpState::kTimeWait;
  };
  server->close();
  ASSERT_TRUE(test::run_until(lan->sim, [&] {
    return server->state() == TcpState::kClosed &&
           (client->state() == TcpState::kTimeWait ||
            client->state() == TcpState::kClosed);
  }, seconds(30)));
}

TEST_F(TcpFixture, ServerInitiatedClose) {
  build();
  listen();
  connect();
  ASSERT_TRUE(test::run_until(lan->sim, [&] { return established(); }));
  bool client_saw_fin = false;
  client->on_peer_fin = [&] {
    client_saw_fin = true;
    client->close();
  };
  server->close();
  ASSERT_TRUE(test::run_until(lan->sim, [&] {
    return server->state() == TcpState::kTimeWait ||
           server->state() == TcpState::kClosed;
  }, seconds(30)));
  EXPECT_TRUE(client_saw_fin);
}

TEST_F(TcpFixture, AbortSendsRst) {
  build();
  listen();
  connect();
  ASSERT_TRUE(test::run_until(lan->sim, [&] { return established(); }));
  bool server_reset = false;
  server->on_closed = [&](CloseReason r) { server_reset = (r == CloseReason::kReset); };
  client->abort();
  ASSERT_TRUE(test::run_until(lan->sim, [&] { return server_reset; }));
}

TEST_F(TcpFixture, DataAfterCloseIsRejected) {
  build();
  listen();
  connect();
  ASSERT_TRUE(test::run_until(lan->sim, [&] { return established(); }));
  client->close();
  client->send(to_bytes("too late"));  // must be ignored, not crash
  lan->sim.run_for(seconds(5));
  EXPECT_EQ(server->rx_available(), 0u);
}

TEST_F(TcpFixture, EphemeralPortsAreDeterministicAcrossHosts) {
  build();
  // Two stacks with the same allocation history pick the same ports —
  // required for §7.2 replicated active opens.
  const std::uint16_t p1 = lan->primary->tcp().allocate_ephemeral_port();
  const std::uint16_t s1 = lan->secondary->tcp().allocate_ephemeral_port();
  EXPECT_EQ(p1, s1);
}

TEST_F(TcpFixture, TimeWaitEventuallyCleansUp) {
  build();
  listen();
  connect();
  ASSERT_TRUE(test::run_until(lan->sim, [&] { return established(); }));
  server->on_peer_fin = [&] { server->close(); };
  client->close();
  ASSERT_TRUE(test::run_until(
      lan->sim, [&] { return client->state() == TcpState::kTimeWait; }, seconds(30)));
  // 2*MSL later the connection is fully gone.
  ASSERT_TRUE(test::run_until(
      lan->sim, [&] { return client->state() == TcpState::kClosed; }, seconds(30)));
  ASSERT_TRUE(test::run_until(
      lan->sim, [&] { return lan->client->tcp().connection_count() == 0; }, seconds(5)));
}

TEST_F(TcpFixture, BidirectionalSimultaneousTransfer) {
  build();
  listen();
  connect();
  ASSERT_TRUE(test::run_until(lan->sim, [&] { return established(); }));

  const Bytes up = test::pattern_bytes(100000, 11);
  const Bytes down = test::pattern_bytes(120000, 13);
  Bytes got_up, got_down;
  server->on_readable = [&] { server->recv(got_up); };
  client->on_readable = [&] { client->recv(got_down); };
  client->send(up);
  server->send(down);
  ASSERT_TRUE(test::run_until(lan->sim, [&] {
    return got_up.size() == up.size() && got_down.size() == down.size();
  }, seconds(120)));
  EXPECT_EQ(got_up, up);
  EXPECT_EQ(got_down, down);
}

TEST_F(TcpFixture, ZeroWindowRecoveryViaPersist) {
  LanParams p;
  p.tcp.recv_buf = 4096;  // tiny receiver
  build(p);
  listen();
  connect();
  ASSERT_TRUE(test::run_until(lan->sim, [&] { return established(); }));

  // Server app does not read: the window closes. Then it starts reading.
  const Bytes data = test::pattern_bytes(64 * 1024, 17);
  client->send(data);
  lan->sim.run_for(seconds(3));
  EXPECT_LT(server->bytes_received_total(), data.size());

  Bytes got;
  server->on_readable = [&] { server->recv(got); };
  server->recv(got);
  ASSERT_TRUE(test::run_until(
      lan->sim, [&] { return got.size() == data.size(); }, seconds(240)));
  EXPECT_EQ(got, data);
}

TEST_F(TcpFixture, NagleCoalescesSmallWrites) {
  build();
  listen();
  connect();
  ASSERT_TRUE(test::run_until(lan->sim, [&] { return established(); }));
  // Nagle on (default): many small writes arrive complete.
  Bytes got;
  server->on_readable = [&] { server->recv(got); };
  for (int i = 0; i < 50; ++i) client->send(to_bytes("x"));
  ASSERT_TRUE(test::run_until(lan->sim, [&] { return got.size() == 50; }, seconds(30)));
  // Coalescing means far fewer data segments than writes.
  EXPECT_EQ(got.size(), 50u);
}

}  // namespace
}  // namespace tfo::tcp
