// TCP keepalive: idle-connection probing, dead-peer detection, and the
// interaction with the failover bridge (a keepalive probe is a §4
// retransmission from the bridge's point of view and must be forwarded).
#include <gtest/gtest.h>

#include "failover_fixture.hpp"

namespace tfo::tcp {
namespace {

using apps::LanParams;
using test::run_until;

struct KeepaliveFixture : ::testing::Test {
  std::unique_ptr<apps::Lan> lan;
  std::shared_ptr<Connection> server, client;

  void build(SimDuration idle, SimDuration interval = seconds(1), int probes = 3) {
    LanParams lp;
    lp.tcp.keepalive_idle = idle;
    lp.tcp.keepalive_interval = interval;
    lp.tcp.keepalive_probes = probes;
    lan = apps::make_lan(lp);
    lan->primary->tcp().listen(80, [this](std::shared_ptr<Connection> c) {
      server = std::move(c);
    });
    client = lan->client->tcp().connect(lan->primary->address(), 80, {.nodelay = true});
    ASSERT_TRUE(run_until(lan->sim, [&] {
      return server && client->state() == TcpState::kEstablished;
    }));
  }
};

TEST_F(KeepaliveFixture, IdleConnectionWithLivePeerStaysUp) {
  build(seconds(2));
  lan->sim.run_for(seconds(30));
  EXPECT_EQ(client->state(), TcpState::kEstablished);
  EXPECT_EQ(server->state(), TcpState::kEstablished);
  // Probes flowed (segments were exchanged despite app silence).
  EXPECT_GT(client->info().segments_sent, 5u);
}

TEST_F(KeepaliveFixture, DeadPeerDetectedAndAborted) {
  build(seconds(2), seconds(1), 3);
  CloseReason reason{};
  bool closed = false;
  client->on_closed = [&](CloseReason r) {
    reason = r;
    closed = true;
  };
  lan->primary->fail();
  // idle (2s) + 3 probes (3s) + final check => well under 30s.
  ASSERT_TRUE(run_until(lan->sim, [&] { return closed; }, seconds(30)));
  EXPECT_EQ(reason, CloseReason::kTimeout);
}

TEST_F(KeepaliveFixture, TrafficKeepsResettingTheIdleClock) {
  build(seconds(2), seconds(1), 2);
  Bytes got;
  server->on_readable = [&] { server->recv(got); };
  // Chat every second: the 2s idle threshold is never reached, so the
  // segments on the wire are data, not probes.
  const auto probes_before = client->info().segments_sent;
  for (int i = 0; i < 10; ++i) {
    client->send(to_bytes("tick"));
    lan->sim.run_for(seconds(1));
  }
  EXPECT_EQ(client->state(), TcpState::kEstablished);
  EXPECT_EQ(got.size(), 40u);
  (void)probes_before;
}

TEST_F(KeepaliveFixture, DisabledByDefault) {
  build(0);
  lan->primary->fail();
  lan->sim.run_for(seconds(60));
  // No keepalive: an idle connection to a dead peer just sits there.
  EXPECT_EQ(client->state(), TcpState::kEstablished);
}

TEST(KeepaliveFailover, IdleSessionSurvivesFailoverThanksToKeepalive) {
  // An idle client with keepalive enabled: the probes traverse the bridge
  // (and after the crash, the takeover), so the session stays verified
  // alive across the failover with zero application traffic.
  apps::LanParams lp;
  lp.tcp.keepalive_idle = seconds(1);
  lp.tcp.keepalive_interval = seconds(1);
  lp.tcp.keepalive_probes = 5;
  auto r = test::make_replicated_lan(lp);
  test::EchoDriver d(r->client(), r->primary().address(), test::kEchoPort, 1000, 500);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(60)));

  r->group->crash_primary();
  r->sim().run_for(seconds(20));  // long idle spanning the failover
  EXPECT_EQ(d.connection().state(), tcp::TcpState::kEstablished);

  // And the session still works afterwards.
  d.connection().send(to_bytes("still here?"));
  Bytes got;
  d.connection().on_readable = [&] { d.connection().recv(got); };
  ASSERT_TRUE(run_until(r->sim(), [&] { return got.size() == 11; }, seconds(60)));
  EXPECT_EQ(to_string(got), "still here?");
}

}  // namespace
}  // namespace tfo::tcp
