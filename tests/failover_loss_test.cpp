// Message-loss handling (§4 of the paper). The five enumerated loss cases
// are reproduced with targeted per-receiver frame drops, then random-loss
// property sweeps check stream integrity under sustained loss, with and
// without a concurrent failover.
#include <gtest/gtest.h>

#include "failover_fixture.hpp"
#include "ip/datagram.hpp"

namespace tfo::core {
namespace {

using test::EchoDriver;
using test::kEchoPort;
using test::make_replicated_lan;
using test::run_until;

/// Parsed view of a frame for loss targeting.
struct FrameInfo {
  ip::Ipv4 src, dst;
  bool tcp = false;
  std::size_t tcp_payload = 0;
};

std::optional<FrameInfo> classify(const net::EthernetFrame& f) {
  if (f.type != net::EtherType::kIpv4) return std::nullopt;
  auto d = ip::IpDatagram::parse(f.payload);
  if (!d) return std::nullopt;
  FrameInfo info;
  info.src = d->src;
  info.dst = d->dst;
  info.tcp = d->proto == ip::Proto::kTcp;
  if (info.tcp && d->payload.size() >= 20) {
    const std::size_t hdr = static_cast<std::size_t>(d->payload[12] >> 4) * 4;
    info.tcp_payload = d->payload.size() > hdr ? d->payload.size() - hdr : 0;
  }
  return info;
}

/// Installs a rule dropping the first `count` TCP *data* frames matching
/// (src, receiver-name) after `skip` matches.
void drop_data_frames(test::ReplicatedLan& r, ip::Ipv4 from, const std::string& rx_nic,
                      int skip, int count) {
  auto dropped = std::make_shared<int>(0);
  auto seen = std::make_shared<int>(0);
  r.lan->wire->set_loss_fn([=](const net::Nic&, const net::Nic& rx,
                               const net::EthernetFrame& f) {
    if (rx.name() != rx_nic) return false;
    auto info = classify(f);
    if (!info || !info->tcp || info->src != from || info->tcp_payload == 0) return false;
    if ((*seen)++ < skip) return false;
    if (*dropped >= count) return false;
    ++*dropped;
    return true;
  });
}

// §4 case 1: "The primary server does not receive a client segment m."
TEST(LossCases, PrimaryMissesClientSegment) {
  auto r = make_replicated_lan();
  drop_data_frames(*r, r->client().address(), "primary.eth0", 2, 3);
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 40000, 1000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(240)));
  EXPECT_TRUE(d.verify());
  // Both replicas saw the full request stream despite the drops.
  EXPECT_EQ(r->echo_p->bytes_echoed(), 40000u);
  EXPECT_EQ(r->echo_s->bytes_echoed(), 40000u);
}

// §4 case 2: "The secondary server drops the client segment although the
// primary server receives it."
TEST(LossCases, SecondaryMissesClientSegment) {
  auto r = make_replicated_lan();
  drop_data_frames(*r, r->client().address(), "secondary.eth0", 2, 3);
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 40000, 1000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(240)));
  EXPECT_TRUE(d.verify());
  EXPECT_EQ(r->echo_s->bytes_echoed(), 40000u);
}

// §4 case 3: "A client segment is lost on its way to the servers" (both
// replicas miss it; the bridge ends up forwarding the retransmission of
// the server segment twice — harmless duplicates for the client).
TEST(LossCases, BothServersMissClientSegment) {
  auto r = make_replicated_lan();
  auto dropped = std::make_shared<int>(0);
  auto seen = std::make_shared<int>(0);
  r->lan->wire->set_loss_fn([&, dropped, seen](const net::Nic&, const net::Nic& rx,
                                               const net::EthernetFrame& f) {
    if (rx.name() != "primary.eth0" && rx.name() != "secondary.eth0") return false;
    auto info = classify(f);
    if (!info || !info->tcp || info->src != r->client().address() ||
        info->tcp_payload == 0) {
      return false;
    }
    // Drop the same logical segment for both receivers: 2 matches each.
    if (*seen >= 4 && *seen < 6) {
      ++*seen;
      ++*dropped;
      return true;
    }
    ++*seen;
    return false;
  });
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 40000, 1000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(240)));
  EXPECT_TRUE(d.verify());
  EXPECT_GT(*dropped, 0);
}

// §4 case 4: "The secondary server's segment is dropped by the primary."
TEST(LossCases, PrimaryMissesSecondarysDivertedSegment) {
  auto r = make_replicated_lan();
  drop_data_frames(*r, r->secondary().address(), "primary.eth0", 2, 3);
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 40000, 1000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(240)));
  EXPECT_TRUE(d.verify());
}

// §4 case 5: "The primary server's segment is lost on its way to the
// client" (a merged segment vanishes; both replicas retransmit; the
// client sees duplicate copies and discards one).
TEST(LossCases, ClientMissesMergedSegment) {
  auto r = make_replicated_lan();
  drop_data_frames(*r, r->primary().address(), "client.eth0", 2, 3);
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 40000, 1000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(240)));
  EXPECT_TRUE(d.verify());
  // The bridge forwarded at least one retransmission (§4's duplicate-copy
  // behaviour).
  EXPECT_GT(r->group->primary_bridge().merged_segments_sent(), 40u);
}

// The lost-SYN variants of connection establishment (§7.1).
TEST(LossCases, ClientSynLostAtPrimary) {
  auto r = make_replicated_lan();
  auto dropped = std::make_shared<bool>(false);
  r->lan->wire->set_loss_fn([&, dropped](const net::Nic&, const net::Nic& rx,
                                         const net::EthernetFrame& f) {
    if (*dropped || rx.name() != "primary.eth0") return false;
    auto info = classify(f);
    if (info && info->tcp && info->src == r->client().address()) {
      *dropped = true;
      return true;  // drop the client's very first SYN at P only
    }
    return false;
  });
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 2000, 500);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(240)));
  EXPECT_TRUE(d.verify());
  EXPECT_TRUE(*dropped);
}

TEST(LossCases, ClientSynLostAtSecondary) {
  auto r = make_replicated_lan();
  auto dropped = std::make_shared<bool>(false);
  r->lan->wire->set_loss_fn([&, dropped](const net::Nic&, const net::Nic& rx,
                                         const net::EthernetFrame& f) {
    if (*dropped || rx.name() != "secondary.eth0") return false;
    auto info = classify(f);
    if (info && info->tcp && info->src == r->client().address()) {
      *dropped = true;
      return true;
    }
    return false;
  });
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 2000, 500);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(240)));
  EXPECT_TRUE(d.verify());
}

TEST(LossCases, MergedSynAckLost) {
  auto r = make_replicated_lan();
  auto dropped = std::make_shared<bool>(false);
  r->lan->wire->set_loss_fn([&, dropped](const net::Nic&, const net::Nic& rx,
                                         const net::EthernetFrame& f) {
    if (*dropped || rx.name() != "client.eth0") return false;
    auto info = classify(f);
    if (info && info->tcp) {
      *dropped = true;
      return true;  // the client misses the merged SYN-ACK
    }
    return false;
  });
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 2000, 500);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(240)));
  EXPECT_TRUE(d.verify());
}

// ------------------------------------------------- random-loss sweeps

struct LossSweepParam {
  double loss;
  bool fail_primary;
  std::uint64_t seed;
};

class RandomLossSweep : public ::testing::TestWithParam<LossSweepParam> {};

TEST_P(RandomLossSweep, StreamIntegrityUnderLoss) {
  const auto param = GetParam();
  apps::LanParams lp;
  lp.medium.loss_probability = param.loss;
  lp.medium.loss_seed = param.seed;
  // A diverted reply crosses the wire twice, so per-attempt delivery odds
  // compound; cap the RTO backoff at a LAN-appropriate bound so recovery
  // under heavy loss is measured in seconds, not minutes.
  lp.tcp.max_rto = seconds(5);
  core::FailoverConfig cfg;
  // Heartbeats ride the same lossy wire; use a tolerant detector so loss
  // alone does not trigger spurious failovers.
  cfg.heartbeat_period = milliseconds(5);
  cfg.failure_timeout = milliseconds(200);
  auto r = make_replicated_lan(lp, cfg);
  const std::size_t total = 30000;
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, total, 1500);
  if (param.fail_primary) {
    ASSERT_TRUE(run_until(r->sim(), [&] { return d.received().size() > total / 3; },
                          seconds(600)));
    r->group->crash_primary();
  }
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(1200)))
      << "stalled at " << d.received().size() << "/" << total;
  EXPECT_TRUE(d.verify());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomLossSweep,
    ::testing::Values(LossSweepParam{0.01, false, 11}, LossSweepParam{0.05, false, 12},
                      LossSweepParam{0.10, false, 13}, LossSweepParam{0.20, false, 14},
                      LossSweepParam{0.01, true, 21}, LossSweepParam{0.05, true, 22},
                      LossSweepParam{0.10, true, 23}),
    [](const ::testing::TestParamInfo<LossSweepParam>& info) {
      return "loss" + std::to_string(static_cast<int>(info.param.loss * 100)) +
             (info.param.fail_primary ? "_failover" : "_steady") + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace tfo::core
